// Shared evaluation harness behind the benches: feature-dataset construction
// from simulated cohorts, leave-one-participant-out cross-validation
// (paper §VI-A), train/test condition transfer, and the training-size sweep.
#pragma once

#include <cstddef>
#include <vector>

#include "baseline/chan.hpp"
#include "core/pipeline.hpp"
#include "ml/metrics.hpp"
#include "sim/dataset.hpp"

namespace earsonar::eval {

/// Features + ground truth + participant grouping, ready for CV splits.
struct EvalDataset {
  ml::Matrix features;
  std::vector<std::size_t> labels;   ///< state indices 0..3
  std::vector<std::size_t> groups;   ///< participant ids
  std::size_t skipped = 0;           ///< recordings with no segmentable echo

  [[nodiscard]] std::size_t size() const { return labels.size(); }
};

/// Runs the EarSonar front half on every recording; unusable recordings are
/// counted in `skipped` and dropped.
EvalDataset build_earsonar_dataset(const std::vector<sim::SessionRecording>& recordings,
                                   const core::EarSonar& pipeline);

/// Extracts the Chan-style coarse features for every recording.
EvalDataset build_chan_dataset(const std::vector<sim::SessionRecording>& recordings,
                               const baseline::ChanDetector& detector);

/// Leave-one-participant-out CV of the EarSonar detection head. Each fold
/// re-fits scaling, feature selection, clustering, and cluster mapping on the
/// other participants.
ml::ConfusionMatrix loocv_earsonar(const EvalDataset& dataset,
                                   const core::DetectorConfig& config);

/// Leave-one-participant-out CV of the Chan baseline classifier.
ml::ConfusionMatrix loocv_chan(const EvalDataset& dataset, const baseline::ChanConfig& config);

/// Fits on `train` and evaluates on `test` (used by the condition sweeps:
/// train at reference conditions, test under angle/noise/movement stress).
ml::ConfusionMatrix transfer_earsonar(const EvalDataset& train, const EvalDataset& test,
                                      const core::DetectorConfig& config);

/// Training-size study (Fig. 15b): holds out `holdout_fraction` of the
/// participants, then fits on stratified subsamples of the remaining data at
/// each `fraction` and reports test accuracy per fraction.
std::vector<double> training_size_sweep(const EvalDataset& dataset,
                                        const std::vector<double>& fractions,
                                        const core::DetectorConfig& config,
                                        double holdout_fraction, std::uint64_t seed);

}  // namespace earsonar::eval
