// Energy model for Table III.
//
// SUBSTITUTION (see DESIGN.md): the paper measures whole-phone power rails on
// three handsets during MEE detection (Huawei 2100 mW, Galaxy 2120 mW,
// MI 10 2243 mW). Without the handsets we reproduce the *methodology*:
// per-detection energy = measured pipeline latency x a device power profile
// whose constants come from the paper's own Table III.
#pragma once

#include <string>
#include <vector>

#include "core/pipeline.hpp"

namespace earsonar::eval {

struct PhonePowerProfile {
  std::string name;
  double active_power_mw = 0.0;  ///< average draw while the pipeline runs
  double idle_power_mw = 0.0;    ///< baseline draw subtracted for net energy
};

/// The three handsets of Table III with the paper's measured active powers.
std::vector<PhonePowerProfile> paper_phone_profiles();

/// Energy (millijoules) of one detection: active power x total latency.
double detection_energy_mj(const PhonePowerProfile& phone,
                           const core::StageTimings& timings);

/// Net energy above idle for one detection (mJ).
double detection_net_energy_mj(const PhonePowerProfile& phone,
                               const core::StageTimings& timings);

/// Detections per battery charge for the given battery capacity (mWh).
double detections_per_charge(const PhonePowerProfile& phone,
                             const core::StageTimings& timings, double battery_mwh);

}  // namespace earsonar::eval
