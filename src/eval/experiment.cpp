#include "eval/experiment.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "ml/crossval.hpp"

namespace earsonar::eval {

namespace {

// Extracts the subset of a dataset at the given indices.
EvalDataset subset(const EvalDataset& dataset, const std::vector<std::size_t>& indices) {
  EvalDataset out;
  out.features.reserve(indices.size());
  out.labels.reserve(indices.size());
  out.groups.reserve(indices.size());
  for (std::size_t idx : indices) {
    out.features.push_back(dataset.features[idx]);
    out.labels.push_back(dataset.labels[idx]);
    out.groups.push_back(dataset.groups[idx]);
  }
  return out;
}

// (truth, predicted) pairs from one CV fold, merged serially in fold order.
using FoldOutcomes = std::vector<std::pair<std::size_t, std::size_t>>;

}  // namespace

EvalDataset build_earsonar_dataset(const std::vector<sim::SessionRecording>& recordings,
                                   const core::EarSonar& pipeline) {
  require_nonempty("build_earsonar_dataset recordings", recordings.size());
  // analyze() is const and thread-safe: fan the recordings across the pool
  // into per-index slots, then collect serially so the dataset order (and the
  // skip counter) match the serial build exactly.
  std::vector<core::EchoAnalysis> analyses(recordings.size());
  parallel_for(recordings.size(), [&](std::size_t i) {
    analyses[i] = pipeline.analyze(recordings[i].waveform);
  });
  EvalDataset dataset;
  for (std::size_t i = 0; i < recordings.size(); ++i) {
    if (!analyses[i].usable()) {
      dataset.skipped++;
      continue;
    }
    dataset.features.push_back(std::move(analyses[i].features));
    dataset.labels.push_back(sim::state_index(recordings[i].state));
    dataset.groups.push_back(recordings[i].subject_id);
  }
  return dataset;
}

EvalDataset build_chan_dataset(const std::vector<sim::SessionRecording>& recordings,
                               const baseline::ChanDetector& detector) {
  require_nonempty("build_chan_dataset recordings", recordings.size());
  EvalDataset dataset;
  for (const sim::SessionRecording& rec : recordings) {
    dataset.features.push_back(detector.extract_features(rec.waveform));
    dataset.labels.push_back(sim::state_index(rec.state));
    dataset.groups.push_back(rec.subject_id);
  }
  return dataset;
}

ml::ConfusionMatrix loocv_earsonar(const EvalDataset& dataset,
                                   const core::DetectorConfig& config) {
  require_nonempty("loocv dataset", dataset.size());
  // Each fold trains its own detector, so folds run concurrently; outcomes
  // merge in fold order below.
  const auto outcomes = ml::map_splits(
      ml::leave_one_group_out(dataset.groups), [&](const ml::Split& split) {
        const EvalDataset train = subset(dataset, split.train);
        core::MeeDetector detector(config);
        detector.fit(train.features, train.labels);
        FoldOutcomes fold;
        fold.reserve(split.test.size());
        for (std::size_t idx : split.test)
          fold.emplace_back(dataset.labels[idx],
                            detector.predict(dataset.features[idx]).state);
        return fold;
      });
  ml::ConfusionMatrix cm(core::kMeeStateCount);
  for (const FoldOutcomes& fold : outcomes)
    for (const auto& [truth, predicted] : fold) cm.add(truth, predicted);
  return cm;
}

ml::ConfusionMatrix loocv_chan(const EvalDataset& dataset,
                               const baseline::ChanConfig& config) {
  require_nonempty("loocv dataset", dataset.size());
  const auto outcomes = ml::map_splits(
      ml::leave_one_group_out(dataset.groups), [&](const ml::Split& split) {
        const EvalDataset train = subset(dataset, split.train);
        baseline::ChanDetector detector(config);
        detector.fit_features(train.features, train.labels);
        FoldOutcomes fold;
        fold.reserve(split.test.size());
        for (std::size_t idx : split.test)
          fold.emplace_back(dataset.labels[idx],
                            detector.predict_features(dataset.features[idx]));
        return fold;
      });
  ml::ConfusionMatrix cm(core::kMeeStateCount);
  for (const FoldOutcomes& fold : outcomes)
    for (const auto& [truth, predicted] : fold) cm.add(truth, predicted);
  return cm;
}

ml::ConfusionMatrix transfer_earsonar(const EvalDataset& train, const EvalDataset& test,
                                      const core::DetectorConfig& config) {
  require_nonempty("transfer train", train.size());
  require_nonempty("transfer test", test.size());
  core::MeeDetector detector(config);
  detector.fit(train.features, train.labels);
  ml::ConfusionMatrix cm(core::kMeeStateCount);
  for (std::size_t i = 0; i < test.size(); ++i)
    cm.add(test.labels[i], detector.predict(test.features[i]).state);
  return cm;
}

std::vector<double> training_size_sweep(const EvalDataset& dataset,
                                        const std::vector<double>& fractions,
                                        const core::DetectorConfig& config,
                                        double holdout_fraction, std::uint64_t seed) {
  require_nonempty("sweep dataset", dataset.size());
  require_in_range("holdout_fraction", holdout_fraction, 0.05, 0.9);
  require_nonempty("sweep fractions", fractions.size());

  // Group-aware holdout: the last ceil(holdout * groups) participants test.
  std::vector<std::size_t> groups(dataset.groups);
  std::sort(groups.begin(), groups.end());
  groups.erase(std::unique(groups.begin(), groups.end()), groups.end());
  earsonar::Rng rng(seed);
  rng.shuffle(groups);
  const std::size_t holdout_count = std::max<std::size_t>(
      1, static_cast<std::size_t>(holdout_fraction * static_cast<double>(groups.size())));
  std::vector<bool> is_test_group(groups.size(), false);
  std::vector<std::size_t> test_groups(groups.end() - static_cast<std::ptrdiff_t>(holdout_count),
                                       groups.end());
  auto in_test = [&](std::size_t g) {
    return std::find(test_groups.begin(), test_groups.end(), g) != test_groups.end();
  };

  std::vector<std::size_t> train_idx, test_idx;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    if (in_test(dataset.groups[i])) test_idx.push_back(i);
    else train_idx.push_back(i);
  }
  const EvalDataset test = subset(dataset, test_idx);

  std::vector<double> accuracies;
  accuracies.reserve(fractions.size());
  for (double fraction : fractions) {
    require_in_range("sweep fraction", fraction, 0.01, 1.0);
    std::vector<std::size_t> train_labels;
    train_labels.reserve(train_idx.size());
    for (std::size_t idx : train_idx) train_labels.push_back(dataset.labels[idx]);
    const std::vector<std::size_t> picked =
        ml::stratified_subsample(train_labels, fraction, seed ^ 0x51Ee7);
    std::vector<std::size_t> chosen;
    chosen.reserve(picked.size());
    for (std::size_t local : picked) chosen.push_back(train_idx[local]);
    const EvalDataset train = subset(dataset, chosen);
    accuracies.push_back(transfer_earsonar(train, test, config).accuracy());
  }
  return accuracies;
}

}  // namespace earsonar::eval
