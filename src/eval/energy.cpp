#include "eval/energy.hpp"

#include "common/error.hpp"

namespace earsonar::eval {

std::vector<PhonePowerProfile> paper_phone_profiles() {
  // Active powers are the paper's Table III; idle draws are typical
  // screen-on-idle figures for the same handset class.
  return {
      {"Huawei", 2100.0, 850.0},
      {"Galaxy", 2120.0, 870.0},
      {"MI 10", 2243.0, 900.0},
  };
}

double detection_energy_mj(const PhonePowerProfile& phone,
                           const core::StageTimings& timings) {
  require_positive("active_power_mw", phone.active_power_mw);
  return phone.active_power_mw * timings.total_ms() / 1000.0;  // mW * s = mJ
}

double detection_net_energy_mj(const PhonePowerProfile& phone,
                               const core::StageTimings& timings) {
  require(phone.idle_power_mw >= 0.0 && phone.idle_power_mw < phone.active_power_mw,
          "PhonePowerProfile: idle power must be below active power");
  return (phone.active_power_mw - phone.idle_power_mw) * timings.total_ms() / 1000.0;
}

double detections_per_charge(const PhonePowerProfile& phone,
                             const core::StageTimings& timings, double battery_mwh) {
  require_positive("battery_mwh", battery_mwh);
  const double energy_mj = detection_energy_mj(phone, timings);
  require_positive("detection energy", energy_mj);
  return battery_mwh * 3600.0 / energy_mj;  // 1 mWh = 3.6 J = 3600 mJ
}

}  // namespace earsonar::eval
