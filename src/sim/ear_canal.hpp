// Ear-canal multipath geometry.
//
// Besides the eardrum echo, the probe signal reflects off the canal walls
// (paper challenge #1) and leaks directly from speaker to microphone. Each
// subject gets a fixed canal length in the anatomical 2-3.5 cm range plus a
// subject-specific set of wall-reflection paths.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace earsonar::sim {

/// One acoustic propagation path from speaker to microphone.
struct AcousticPath {
  double distance_m = 0.0;  ///< one-way reflector distance (round trip = 2x)
  double gain = 0.0;        ///< pressure gain of the path
};

/// Anatomical ranges for canal length (paper cites 2-3.5 cm, Keefe 1993).
inline constexpr double kMinCanalLengthM = 0.020;
inline constexpr double kMaxCanalLengthM = 0.035;

struct EarCanal {
  double length_m = 0.027;           ///< earphone tip to eardrum
  double diameter_m = 0.0065;
  /// Speaker-to-mic leakage inside the earbud. The prototype's extra
  /// microphone is mounted parallel to the speaker facing *into* the canal
  /// (paper Fig. 3/4), so it is acoustically shadowed from the speaker and
  /// the leak is an order of magnitude below the eardrum echo — consistent
  /// with the paper's Fig. 9(d), where even different subjects' echo PSDs
  /// correlate above 90% (impossible if subject-specific multipath
  /// interference shaped the band).
  AcousticPath direct{0.0015, 0.012};
  /// Canal-wall reflections (distances < length_m, modest gains).
  std::vector<AcousticPath> wall_paths;
  /// Pressure gain of the eardrum path excluding the drum reflectance itself
  /// (spreading + canal absorption losses).
  double eardrum_path_gain = 0.42;
};

/// Draws a subject-specific canal: length uniform in the anatomical range,
/// 2-4 wall paths with decreasing gain at random depths, slight gain jitter.
EarCanal sample_ear_canal(earsonar::Rng& rng);

/// Validates geometric invariants (paths inside the canal, positive gains).
void validate(const EarCanal& canal);

}  // namespace earsonar::sim
