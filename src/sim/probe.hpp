// End-to-end acoustic recording simulation.
//
// EarProbe plays the FMCW chirp train through an earphone model into a
// subject's ear and synthesizes what the in-ear microphone captures: the
// speaker-to-mic direct leak, canal-wall multipath, the eardrum echo shaped
// by the (possibly fluid-loaded) drum reflectance, wearing-angle and movement
// perturbations, ambient noise through the ear-tip isolation, and microphone
// self-noise. This is the substitute for the paper's modified-earbud
// hardware and clinical recordings.
#pragma once

#include <cstddef>

#include "audio/chirp.hpp"
#include "audio/waveform.hpp"
#include "common/rng.hpp"
#include "sim/conditions.hpp"
#include "sim/eardrum.hpp"
#include "sim/earphone.hpp"
#include "sim/subject.hpp"

namespace earsonar::sim {

struct ProbeConfig {
  audio::FmcwConfig chirp;          ///< paper defaults: 16-20 kHz, 0.5 ms / 5 ms
  std::size_t chirp_count = 40;     ///< chirps per recording (0.2 s by default)
  std::size_t drum_kernel_taps = 63;  ///< long enough to keep the notch ringing
  std::size_t speaker_kernel_taps = 21;
  std::size_t tail_samples = 512;   ///< room for the last echo to decay

  void validate() const;
};

class EarProbe {
 public:
  explicit EarProbe(ProbeConfig config = {});

  /// Records one session: the given subject with the given eardrum state
  /// under the given device and conditions. Each call draws fresh noise and
  /// per-chirp jitter from `rng`.
  [[nodiscard]] audio::Waveform record(const Subject& subject, const EardrumModel& eardrum,
                                       const Earphone& earphone,
                                       const RecordingCondition& condition,
                                       earsonar::Rng& rng) const;

  /// Convenience: state-typical fill drawn from the subject seed + session.
  [[nodiscard]] audio::Waveform record_state(const Subject& subject, EffusionState state,
                                             const Earphone& earphone,
                                             const RecordingCondition& condition,
                                             earsonar::Rng& rng,
                                             std::uint64_t session = 0) const;

  [[nodiscard]] const ProbeConfig& config() const { return config_; }

 private:
  ProbeConfig config_;
};

/// Adds `gain * pulse` into `out` starting at fractional sample position
/// `start` (may be negative: leading samples clip); samples past the end of
/// `out` are dropped. Exposed for tests.
void add_pulse_at(std::vector<double>& out, std::span<const double> pulse, double start,
                  double gain);

}  // namespace earsonar::sim
