#include "sim/probe.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"
#include "dsp/fir.hpp"
#include "dsp/interpolate.hpp"

namespace earsonar::sim {

void ProbeConfig::validate() const {
  chirp.validate();
  require(chirp_count >= 1, "ProbeConfig: need >= 1 chirp");
  require(drum_kernel_taps >= 3 && drum_kernel_taps % 2 == 1,
          "ProbeConfig: drum_kernel_taps must be odd >= 3");
  require(speaker_kernel_taps >= 3 && speaker_kernel_taps % 2 == 1,
          "ProbeConfig: speaker_kernel_taps must be odd >= 3");
}

EarProbe::EarProbe(ProbeConfig config) : config_(config) { config_.validate(); }

void add_pulse_at(std::vector<double>& out, std::span<const double> pulse, double start,
                  double gain) {
  // Negative starts clip the leading pulse samples (used when a filter's
  // group-delay compensation pushes the nominal start before the record).
  const std::ptrdiff_t first =
      std::max<std::ptrdiff_t>(0, static_cast<std::ptrdiff_t>(std::floor(start)));
  // One extra sample covers the fractional tail.
  const std::ptrdiff_t last =
      std::min<std::ptrdiff_t>(static_cast<std::ptrdiff_t>(out.size()),
                               first + static_cast<std::ptrdiff_t>(pulse.size()) + 1);
  for (std::ptrdiff_t i = first; i < last; ++i) {
    const double src = static_cast<double>(i) - start;
    out[static_cast<std::size_t>(i)] += gain * dsp::sample_fractional_sinc(pulse, src);
  }
}

audio::Waveform EarProbe::record(const Subject& subject, const EardrumModel& eardrum,
                                 const Earphone& earphone,
                                 const RecordingCondition& condition,
                                 earsonar::Rng& rng) const {
  condition.validate();
  validate(subject.canal);
  const double fs = config_.chirp.sample_rate;

  // Transmitted pulse after the speaker's frequency response.
  const audio::Waveform raw_pulse = audio::make_chirp(config_.chirp);
  const std::vector<double> speaker_fir =
      earphone.response_kernel(config_.speaker_kernel_taps, fs);
  const std::vector<double> tx = dsp::fir_filter_same(raw_pulse.view(), speaker_fir);

  // The eardrum echo pulse: tx shaped by the exact drum reflectance in the
  // frequency domain (FIR designs smear the deep fluid notch). The spectral
  // method's half-buffer group delay is compensated at placement.
  const EardrumModel::ReflectedPulse reflected = eardrum.reflect(tx, fs);
  const std::vector<double>& drum_pulse = reflected.samples;
  const double drum_group_delay = reflected.group_delay;

  const MovementProfile movement = movement_profile(condition.movement);
  // Motion re-seats the ear tip: one random coupling factor per recording.
  const double session_gain =
      std::max(0.2, 1.0 + rng.normal(0.0, movement.gain_drift));
  const double echo_gain_angle = angle_echo_gain(condition.angle_deg);
  const double misalign_gain = angle_extra_multipath_gain(condition.angle_deg);
  const double angle_jitter = angle_delay_jitter(condition.angle_deg);
  const double delay_sigma =
      std::hypot(movement.delay_jitter_samples, angle_jitter);

  const std::size_t total =
      config_.chirp_count * config_.chirp.interval_samples() + config_.tail_samples;
  std::vector<double> mix(total, 0.0);

  // Fixed path delays (in samples).
  const auto one_way = [&](double d_m) { return d_m / kSpeedOfSoundAir * fs; };
  const auto round_trip = [&](double d_m) { return 2.0 * d_m / kSpeedOfSoundAir * fs; };
  const double direct_delay = one_way(subject.canal.direct.distance_m);
  const double drum_delay = round_trip(subject.canal.length_m);
  const double misalign_delay = round_trip(subject.canal.length_m * 0.7);

  for (std::size_t k = 0; k < config_.chirp_count; ++k) {
    const double base =
        static_cast<double>(audio::chirp_start_sample(config_.chirp, k));
    const double jitter = rng.normal(0.0, delay_sigma);
    const double gain_wobble = 1.0 + rng.normal(0.0, movement.gain_jitter);

    // Speaker-to-mic leak: tight coupling, barely affected by movement.
    add_pulse_at(mix, tx, base + direct_delay,
                 subject.canal.direct.gain * earphone.leak_multiplier);

    // Canal-wall multipath.
    for (const AcousticPath& wall : subject.canal.wall_paths) {
      add_pulse_at(mix, tx, base + round_trip(wall.distance_m) + jitter,
                   wall.gain * gain_wobble);
    }

    // Misalignment path appears when the bud is worn off-axis.
    if (misalign_gain > 0.0)
      add_pulse_at(mix, tx, base + misalign_delay + jitter, misalign_gain * gain_wobble);

    // The eardrum echo itself.
    double drum_gain =
        subject.canal.eardrum_path_gain * echo_gain_angle * gain_wobble * session_gain;
    if (movement.dropout_probability > 0.0 && rng.bernoulli(movement.dropout_probability))
      drum_gain *= 0.2;  // contact shift momentarily decouples the echo
    add_pulse_at(mix, drum_pulse, base + drum_delay + jitter - drum_group_delay,
                 drum_gain);
  }

  audio::Waveform out(std::move(mix), fs);

  // Ambient noise attenuated by the ear-tip seal, then capsule self-noise,
  // then broadband electronic noise at the mic's SNR rating. Room noise is
  // modeled as the configured color (speech-band energy) plus a broadband
  // white component 5 dB below it — clinics with crying children have real
  // energy in the probe band, and that component is what degrades sensing.
  const double in_canal_spl =
      std::max(0.0, condition.noise_spl_db - earphone.isolation_db);
  if (in_canal_spl > 0.0)
    audio::add_noise_at_spl(out, condition.noise_color, in_canal_spl, rng);
  // Broadband component flanking the seal: passive isolation ratings hold in
  // the speech band, but high-frequency room noise leaks through the device
  // body and microphone port at roughly half the rated attenuation. This is
  // the component that actually reaches the 16-20 kHz sensing band.
  const double flanking_spl =
      condition.noise_spl_db - 0.35 * earphone.isolation_db - 4.0;
  if (flanking_spl > 0.0)
    audio::add_noise_at_spl(out, audio::NoiseColor::kWhite, flanking_spl, rng);
  audio::add_noise_at_spl(out, audio::NoiseColor::kWhite, earphone.mic_self_noise_spl, rng);
  audio::add_noise_at_snr(out, earphone.mic_snr_db, rng);

  return out;
}

audio::Waveform EarProbe::record_state(const Subject& subject, EffusionState state,
                                       const Earphone& earphone,
                                       const RecordingCondition& condition,
                                       earsonar::Rng& rng, std::uint64_t session) const {
  const EardrumModel drum = subject.eardrum(state, -1.0, session);
  return record(subject, drum, earphone, condition, rng);
}

}  // namespace earsonar::sim
