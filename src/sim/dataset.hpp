// Cohort and longitudinal dataset synthesis (paper §V-§VI data collection:
// 112 children followed from diagnosis to recovery, recordings twice daily,
// otoscope ground truth at every session).
#pragma once

#include <cstdint>
#include <vector>

#include "audio/waveform.hpp"
#include "sim/conditions.hpp"
#include "sim/earphone.hpp"
#include "sim/probe.hpp"
#include "sim/subject.hpp"

namespace earsonar::sim {

/// One labeled recording session.
struct SessionRecording {
  std::uint32_t subject_id = 0;
  std::uint32_t session = 0;     ///< per-subject session counter
  EffusionState state = EffusionState::kClear;  ///< otoscope ground truth
  double fill = 0.0;             ///< true fill fraction behind the drum
  audio::Waveform waveform;      ///< what the in-ear microphone captured
};

struct CohortConfig {
  std::size_t subject_count = 112;
  std::size_t sessions_per_state = 2;  ///< recordings per state per subject
  std::uint64_t seed = 42;
  ProbeConfig probe;
  RecordingCondition condition;
  Earphone earphone = reference_earphone();
  /// Clinical realism: each session perturbs the base condition with a small
  /// random wearing angle, clinic-room noise level, and occasional head
  /// movement (children do not sit perfectly still). Turn off to study one
  /// controlled condition (the Table I / Fig. 14 sweeps do).
  bool randomize_conditions = true;
  /// Worker threads for generate() (0 = auto via EARSONAR_THREADS env var or
  /// hardware concurrency). Each subject owns an independent RNG stream, so
  /// the cohort is bit-identical at every thread count.
  std::size_t threads = 0;
};

/// Generates a balanced cohort: every subject contributes
/// `sessions_per_state` recordings in each of the four states (the paper
/// follows each child through the full recovery arc, so all states are
/// observed for all participants).
class CohortGenerator {
 public:
  explicit CohortGenerator(CohortConfig config);

  /// All recordings for the whole cohort, subject-major order.
  [[nodiscard]] std::vector<SessionRecording> generate() const;

  /// All recordings for one subject.
  [[nodiscard]] std::vector<SessionRecording> generate_subject(
      std::uint32_t subject_id) const;

  /// The subject objects themselves (for anatomy inspection).
  [[nodiscard]] std::vector<Subject> subjects() const;

  [[nodiscard]] const CohortConfig& config() const { return config_; }

 private:
  CohortConfig config_;
  SubjectFactory factory_;
  EarProbe probe_;
};

/// The canonical recovery arc Purulent -> Mucoid -> Serous -> Clear sampled
/// over `days` days with two recordings per day (8 am / 6 pm as in the
/// paper). Day d's state follows the arc proportionally.
struct LongitudinalConfig {
  std::uint32_t subject_id = 0;
  std::size_t days = 20;
  std::uint64_t seed = 42;
  ProbeConfig probe;
  RecordingCondition condition;
  Earphone earphone = reference_earphone();
  EffusionState initial_state = EffusionState::kPurulent;
};

/// State scheduled for day `day` of `days` when recovering from
/// `initial_state` to Clear (piecewise-constant, monotone recovery).
EffusionState recovery_state_on_day(EffusionState initial_state, std::size_t day,
                                    std::size_t days);

/// Generates the two-a-day longitudinal series for one subject.
std::vector<SessionRecording> generate_longitudinal(const LongitudinalConfig& config);

}  // namespace earsonar::sim
