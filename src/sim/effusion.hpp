// Middle-ear effusion states and their physical fluid properties.
//
// The paper grades MEE into four states — Clear (healthy), Serous (thin,
// watery), Mucoid (thick, glue-ear), Purulent (pus) — and shows the reflected
// spectrum separates them (Fig. 11). Density/sound-speed/viscosity values
// below are drawn from the tissue-acoustics literature the paper cites
// (Ludwig 1950) and standard fluid references.
#pragma once

#include <array>
#include <string>

#include "common/rng.hpp"

namespace earsonar::sim {

enum class EffusionState { kClear = 0, kSerous = 1, kMucoid = 2, kPurulent = 3 };

inline constexpr std::size_t kEffusionStateCount = 4;

/// All four states in severity order (Clear -> Purulent).
std::array<EffusionState, kEffusionStateCount> all_effusion_states();

/// Human-readable label ("Clear", "Serous", ...).
std::string to_string(EffusionState state);

/// Parses a label produced by to_string (case-insensitive); throws on junk.
EffusionState effusion_state_from_string(const std::string& label);

/// Stable index (0..3) used for confusion matrices and cluster mapping.
std::size_t state_index(EffusionState state);

/// Inverse of state_index; throws when index > 3.
EffusionState state_from_index(std::size_t index);

/// Bulk physical properties of the effusion fluid.
struct EffusionProperties {
  double density_kg_m3 = 0.0;    ///< mass density of the fluid
  double sound_speed_m_s = 0.0;  ///< longitudinal sound speed in the fluid
  double viscosity_pa_s = 0.0;   ///< dynamic viscosity (drives damping width)
  double fill_mean = 0.0;        ///< typical middle-ear fill fraction [0,1]
  double fill_sigma = 0.0;       ///< patient-to-patient spread of the fill
};

/// Canonical properties for a state. Clear returns zero fill and air-like
/// placeholders (no fluid behind the drum).
EffusionProperties effusion_properties(EffusionState state);

/// Draws a patient-specific fill fraction for the state (clamped to [0, 1];
/// Clear always yields 0).
double sample_fill_fraction(EffusionState state, earsonar::Rng& rng);

/// True for any state with fluid behind the drum.
bool has_fluid(EffusionState state);

}  // namespace earsonar::sim
