#include "sim/absorbance.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "sim/eardrum.hpp"

namespace earsonar::sim {

std::vector<double> absorbance_curve(const Subject& subject, EffusionState state,
                                     double fill, std::span<const double> grid_hz,
                                     earsonar::Rng& rng, double noise_sigma) {
  require_nonempty("absorbance_curve grid_hz", grid_hz.size());
  require(noise_sigma >= 0.0, "absorbance_curve: noise_sigma must be >= 0");
  const EardrumModel drum(subject.drum, state, fill);
  std::vector<double> curve;
  curve.reserve(grid_hz.size());
  for (double f : grid_hz) {
    const double r = drum.reflectance(f);
    const double a = 1.0 - r * r;
    curve.push_back(std::clamp(a + rng.normal(0.0, noise_sigma), 0.0, 1.0));
  }
  return curve;
}

std::vector<double> absorbance_curve_state(const Subject& subject, EffusionState state,
                                           std::uint64_t session,
                                           std::span<const double> grid_hz,
                                           earsonar::Rng& rng, double noise_sigma) {
  // Reuse the subject's seeded fill-draw path so the same (subject, session,
  // state) triple measures the same ear the echo workload would see.
  const EardrumModel drum = subject.eardrum(state, -1.0, session);
  return absorbance_curve(subject, state, drum.fill(), grid_hz, rng, noise_sigma);
}

AbsorbanceDataset absorbance_dataset(std::size_t subject_count, std::size_t per_state,
                                     std::span<const double> grid_hz,
                                     std::uint64_t seed, double noise_sigma) {
  require(subject_count >= 1, "absorbance_dataset: subject_count must be >= 1");
  require(per_state >= 1, "absorbance_dataset: per_state must be >= 1");
  const SubjectFactory factory(seed);
  AbsorbanceDataset dataset;
  dataset.curves.reserve(subject_count * kEffusionStateCount * per_state);
  dataset.labels.reserve(dataset.curves.capacity());
  for (std::size_t i = 0; i < subject_count; ++i) {
    const Subject subject = factory.make(static_cast<std::uint32_t>(i));
    Rng rng(splitmix64(subject.seed ^ splitmix64(0xab50bACEULL)));
    for (EffusionState state : all_effusion_states()) {
      for (std::size_t s = 0; s < per_state; ++s) {
        dataset.curves.push_back(absorbance_curve_state(
            subject, state, s, grid_hz, rng, noise_sigma));
        dataset.labels.push_back(state_index(state));
      }
    }
  }
  return dataset;
}

}  // namespace earsonar::sim
