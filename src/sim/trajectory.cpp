#include "sim/trajectory.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "sim/eardrum.hpp"
#include "sim/effusion.hpp"

namespace earsonar::sim {

namespace {

/// One planned stretch of constant otoscope state.
struct Segment {
  EffusionState state = EffusionState::kClear;
  std::size_t dwell = 0;  ///< sessions spent in this state
};

std::size_t draw_dwell(earsonar::Rng& rng, std::int64_t lo, std::int64_t hi) {
  return static_cast<std::size_t>(rng.uniform_int(lo, hi));
}

/// Plans the full state arc for one subject as (state, dwell) segments:
/// seeded onset -> worsening (Serous, maybe Mucoid, maybe Purulent) ->
/// stepwise resolution -> possibly one milder relapse arc. The plan may
/// overrun the follow-up window; materialization truncates. All draws happen
/// unconditionally in a fixed order so the walk is a pure function of the rng.
std::vector<Segment> plan_arc(earsonar::Rng& rng, const TrajectoryConfig& config) {
  std::vector<Segment> segments;
  const bool onsets = rng.bernoulli(config.onset_probability);
  const std::size_t pre = draw_dwell(rng, 2, 8);
  if (!onsets) {
    // Healthy control: Clear for the whole window (dwell padded later).
    segments.push_back({EffusionState::kClear, pre});
    return segments;
  }
  segments.push_back({EffusionState::kClear, pre});

  // Worsening leg: every case passes through Serous; most thicken to Mucoid
  // (the paper's glue-ear bulk); some of those suppurate.
  segments.push_back({EffusionState::kSerous, draw_dwell(rng, 3, 8)});
  const bool to_mucoid = rng.bernoulli(0.7);
  const std::size_t mucoid_dwell = draw_dwell(rng, 4, 10);
  const bool to_purulent = rng.bernoulli(0.45);
  const std::size_t purulent_dwell = draw_dwell(rng, 3, 8);
  if (to_mucoid) {
    segments.push_back({EffusionState::kMucoid, mucoid_dwell});
    if (to_purulent)
      segments.push_back({EffusionState::kPurulent, purulent_dwell});
  }

  // Resolution leg: retrace the severity ladder down to Clear.
  const std::size_t down_mucoid = draw_dwell(rng, 2, 6);
  const std::size_t down_serous = draw_dwell(rng, 2, 6);
  if (to_mucoid && to_purulent)
    segments.push_back({EffusionState::kMucoid, down_mucoid});
  if (to_mucoid)
    segments.push_back({EffusionState::kSerous, down_serous});
  segments.push_back({EffusionState::kClear, draw_dwell(rng, 4, 10)});

  // Possible relapse: one milder Serous (maybe Mucoid) arc, then Clear.
  const bool relapses = rng.bernoulli(config.relapse_probability);
  const std::size_t re_serous = draw_dwell(rng, 3, 7);
  const bool re_mucoid = rng.bernoulli(0.5);
  const std::size_t re_mucoid_dwell = draw_dwell(rng, 3, 7);
  const std::size_t re_down_serous = draw_dwell(rng, 2, 5);
  if (relapses) {
    segments.push_back({EffusionState::kSerous, re_serous});
    if (re_mucoid) {
      segments.push_back({EffusionState::kMucoid, re_mucoid_dwell});
      segments.push_back({EffusionState::kSerous, re_down_serous});
    }
    segments.push_back({EffusionState::kClear, draw_dwell(rng, 4, 10)});
  }
  return segments;
}

}  // namespace

void TrajectoryConfig::validate() const {
  require(subject_count >= 1, "TrajectoryConfig: subject_count must be >= 1");
  require(days >= 1, "TrajectoryConfig: days must be >= 1");
  require_in_range("TrajectoryConfig onset_probability", onset_probability, 0.0, 1.0);
  require_in_range("TrajectoryConfig relapse_probability", relapse_probability, 0.0, 1.0);
  require(fill_smoothing > 0.0 && fill_smoothing <= 1.0,
          "TrajectoryConfig: fill_smoothing must be in (0, 1]");
  require(fill_noise_sigma >= 0.0,
          "TrajectoryConfig: fill_noise_sigma must be >= 0");
  require(notch_noise_db >= 0.0, "TrajectoryConfig: notch_noise_db must be >= 0");
}

TrajectoryGenerator::TrajectoryGenerator(TrajectoryConfig config)
    : config_(config), factory_(config.seed) {
  config_.validate();
}

double TrajectoryGenerator::surrogate_notch_depth_db(const Subject& subject,
                                                     EffusionState state,
                                                     double fill) const {
  // Depth of the reflectance notch across the 16-20 kHz probe band: the same
  // physics the waveform path convolves into the echo, read off |R(f)|
  // directly. Fluid loading pulls the drum resonance down into the band and
  // deepens the notch, which is exactly the feature the paper tracks.
  const EardrumModel drum(subject.drum, state, fill);
  constexpr double kLowHz = 16000.0;
  constexpr double kHighHz = 20000.0;
  constexpr std::size_t kPoints = 33;
  double r_min = 1e9;
  double r_max = 0.0;
  for (std::size_t i = 0; i < kPoints; ++i) {
    const double f =
        kLowHz + (kHighHz - kLowHz) * static_cast<double>(i) /
                     static_cast<double>(kPoints - 1);
    const double r = drum.reflectance(f);
    r_min = std::min(r_min, r);
    r_max = std::max(r_max, r);
  }
  return 20.0 * std::log10(std::max(r_max, 1e-9) / std::max(r_min, 1e-9));
}

SubjectTrajectory TrajectoryGenerator::generate_subject(std::uint32_t subject_id) const {
  const Subject subject = factory_.make(subject_id);
  Rng rng(splitmix64(subject.seed ^ splitmix64(0x7247ec70ULL)));
  const std::size_t total = config_.days * 2;  // twice-daily cadence

  SubjectTrajectory out;
  out.subject_id = subject_id;
  out.sessions.reserve(total);

  const std::vector<Segment> segments = plan_arc(rng, config_);

  // Ground-truth change points from segment boundaries that land inside the
  // window: Clear -> fluid is an onset, fluid -> Clear a resolution.
  {
    std::size_t cursor = 0;
    EffusionState previous = segments.front().state;
    for (std::size_t s = 0; s < segments.size(); ++s) {
      if (s > 0 && cursor < total) {
        const EffusionState next = segments[s].state;
        if (!has_fluid(previous) && has_fluid(next))
          out.change_points.push_back({static_cast<std::uint32_t>(cursor), true});
        if (has_fluid(previous) && !has_fluid(next))
          out.change_points.push_back({static_cast<std::uint32_t>(cursor), false});
        previous = next;
      }
      cursor += segments[s].dwell;
    }
  }

  // Roll the continuous fill path and the surrogate feature along the plan.
  // Each segment gets one fill target draw (its episode severity); the fill
  // relaxes toward the target exponentially with per-session jitter, so state
  // flips show up in the feature with realistic lag instead of as steps.
  double fill = 0.0;
  std::size_t segment_index = 0;
  std::size_t remaining = segments.front().dwell;
  double target = 0.0;
  auto draw_target = [&](EffusionState state) {
    const EffusionProperties props = effusion_properties(state);
    if (!has_fluid(state)) return 0.0;
    return std::clamp(rng.normal(props.fill_mean, props.fill_sigma), 0.0, 1.0);
  };
  target = draw_target(segments.front().state);
  for (std::size_t session = 0; session < total; ++session) {
    while (remaining == 0 && segment_index + 1 < segments.size()) {
      ++segment_index;
      remaining = segments[segment_index].dwell;
      target = draw_target(segments[segment_index].state);
    }
    const EffusionState state = segments[segment_index].state;
    if (remaining > 0) --remaining;

    fill += config_.fill_smoothing * (target - fill) +
            rng.normal(0.0, config_.fill_noise_sigma);
    fill = std::clamp(fill, 0.0, 1.0);

    TrajectorySession point;
    point.session = static_cast<std::uint32_t>(session);
    point.state = state;
    point.fill = fill;
    point.notch_depth_db = surrogate_notch_depth_db(subject, state, fill) +
                           rng.normal(0.0, config_.notch_noise_db);
    out.sessions.push_back(point);
  }
  return out;
}

std::vector<SubjectTrajectory> TrajectoryGenerator::generate() const {
  std::vector<SubjectTrajectory> cohort(config_.subject_count);
  parallel_for(
      config_.subject_count,
      [&](std::size_t i) {
        cohort[i] = generate_subject(static_cast<std::uint32_t>(i));
      },
      config_.threads);
  return cohort;
}

audio::Waveform TrajectoryGenerator::render_session(
    const SubjectTrajectory& trajectory, std::size_t session_index,
    const ProbeConfig& probe_config, const Earphone& earphone,
    const RecordingCondition& condition) const {
  require(session_index < trajectory.sessions.size(),
          "TrajectoryGenerator::render_session: session_index out of range");
  const Subject subject = factory_.make(trajectory.subject_id);
  const TrajectorySession& point = trajectory.sessions[session_index];
  const EardrumModel drum(subject.drum, point.state, point.fill);
  Rng rng(splitmix64(subject.seed ^ splitmix64(0x3e55ULL + point.session)));
  const EarProbe probe(probe_config);
  return probe.record(subject, drum, earphone, condition, rng);
}

}  // namespace earsonar::sim
