// Acoustic impedance theory (paper §II-A, Eq. 1-3).
//
// Implements the interface-reflection and thickness-impedance relations the
// paper builds its sensing principle on, plus the one-degree-of-freedom
// eardrum oscillator whose fluid loading produces the in-band absorption
// notch near 18 kHz that EarSonar keys off.
#pragma once

#include <complex>

#include "sim/effusion.hpp"

namespace earsonar::sim {

/// Eq. 1 (with the standard sign convention — the paper's denominator has a
/// typo): pressure reflection coefficient at a z1 -> z2 interface,
/// R = (z2 - z1) / (z2 + z1). Symmetric inputs must be positive.
double interface_reflectance(double z1_rayl, double z2_rayl);

/// Fraction of incident power transmitted across the interface, 1 - R^2.
double interface_transmittance(double z1_rayl, double z2_rayl);

/// Eq. 2: layer impedance as a function of thickness d,
/// Z(d) = sqrt(mu/xi) * tanh(2*pi*d*sqrt(xi*mu) / lambda).
/// Monotonically increasing in d; saturates at sqrt(mu/xi).
double layer_impedance(double mu, double xi, double thickness_m, double lambda_m);

/// Characteristic impedance rho*c of the given effusion state's fluid (rayl).
double effusion_characteristic_impedance(EffusionState state);

/// Parameters of the damped 1-DOF eardrum oscillator (per unit area):
///   Z_drum(w) = r + j*(w*m - s/w)
/// terminated against the ear-canal air column (z_air ~= 415 rayl). A clear
/// drum resonates above the probe band; fluid mass-loading pulls the
/// resonance into the 16-20 kHz band and viscous damping widens/deepens the
/// resulting reflectance notch.
struct DrumMechanics {
  double resistance_rayl = 62.0;     ///< r, viscous resistance per unit area
  double surface_density = 2.0e-3;   ///< m, kg/m^2 (drum + coupled ossicles)
  double stiffness = 0.0;            ///< s, N/m^3; set via with_resonance()
};

/// Builds DrumMechanics whose undamped resonance sits at `resonance_hz`.
DrumMechanics drum_with_resonance(double resonance_hz, double surface_density,
                                  double resistance_rayl);

/// Complex specific impedance of the oscillator at frequency f (Hz).
std::complex<double> drum_impedance(const DrumMechanics& drum, double frequency_hz);

/// Complex pressure reflection coefficient of the drum seen from the air
/// column: (Z_drum - z_air) / (Z_drum + z_air).
std::complex<double> drum_reflection(const DrumMechanics& drum, double frequency_hz,
                                     double z_air_rayl = 415.0);

/// |drum_reflection| — the quantity the probe spectrum measures.
double drum_reflectance_magnitude(const DrumMechanics& drum, double frequency_hz,
                                  double z_air_rayl = 415.0);

/// Applies effusion loading to a clear-drum model: added surface density from
/// the fluid column and added resistance from viscous losses. `fill` is the
/// middle-ear fill fraction in [0, 1]. Returns the loaded mechanics.
DrumMechanics load_with_effusion(const DrumMechanics& clear_drum, EffusionState state,
                                 double fill);

/// Resonance frequency sqrt(s/m)/(2*pi) of the oscillator.
double drum_resonance_hz(const DrumMechanics& drum);

}  // namespace earsonar::sim
