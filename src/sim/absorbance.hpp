// Wideband absorbance curve synthesis from the eardrum physics.
//
// The absorbance workload (core/wideband.hpp) classifies 226 Hz-8 kHz energy
// absorbance curves. The simulator derives them from the same fluid-loaded
// drum oscillator the echo path uses: a(f) = 1 - |R(f)|^2, where R is the
// subject's EardrumModel reflectance — fluid loading stiffens the system and
// depresses low-frequency absorbance, which is the clinical effusion
// signature. Per-measurement noise models probe-seal and placement variance.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "sim/effusion.hpp"
#include "sim/subject.hpp"

namespace earsonar::sim {

/// a(f) = 1 - |R(f)|^2 on `grid_hz` for this subject/state/fill, with
/// i.i.d. Gaussian measurement noise of `noise_sigma` per bin, clamped to
/// [0, 1]. Noise draws come from `rng` in grid order.
std::vector<double> absorbance_curve(const Subject& subject, EffusionState state,
                                     double fill, std::span<const double> grid_hz,
                                     earsonar::Rng& rng, double noise_sigma = 0.01);

/// Convenience: state-typical fill via the subject's seeded per-session draw
/// (same path Subject::eardrum uses), then absorbance_curve.
std::vector<double> absorbance_curve_state(const Subject& subject, EffusionState state,
                                           std::uint64_t session,
                                           std::span<const double> grid_hz,
                                           earsonar::Rng& rng,
                                           double noise_sigma = 0.01);

/// A labeled training/replay set for the wideband screener: `per_state`
/// curves per effusion state per subject, subject-major, states in severity
/// order. Returns curves and parallel state-index labels.
struct AbsorbanceDataset {
  std::vector<std::vector<double>> curves;
  std::vector<std::size_t> labels;
};
AbsorbanceDataset absorbance_dataset(std::size_t subject_count, std::size_t per_state,
                                     std::span<const double> grid_hz,
                                     std::uint64_t seed, double noise_sigma = 0.01);

}  // namespace earsonar::sim
