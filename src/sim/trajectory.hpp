// Per-subject effusion-state trajectories over a clinical follow-up window.
//
// The paper follows 112 children for >= 20 days from diagnosis through
// recovery, recording twice daily (8 am / 6 pm) with otoscope ground truth at
// every session. CohortGenerator emits a balanced state-grid — good for
// training classifiers, useless for longitudinal analysis, because no subject
// has a *history*. TrajectoryGenerator closes that gap: each subject walks a
// seeded semi-Markov chain over EffusionState (onset -> worsening ->
// resolution -> possible relapse) with dwell times measured in sessions, the
// fill fraction behind the drum evolving continuously along the arc, and the
// ground-truth onset/resolution change points recorded for the change-point
// detector in src/longitudinal/ to score against.
//
// Trajectories are feature-level, not waveform-level: each session carries a
// surrogate 18 kHz notch-depth measurement computed directly from the
// subject's EardrumModel reflectance (the same physics the waveform path
// renders, minus the audio), which is what makes 10^5-subject cohorts
// tractable. render_session() synthesizes the full microphone capture for any
// single (subject, session) when an end-to-end check needs real audio.
//
// Determinism: every draw for subject i derives from that subject's seed, and
// generate() writes each subject into its own pre-sized slot under
// parallel_for — the cohort is bit-identical at every thread count and
// identical to calling generate_subject(i) yourself.
#pragma once

#include <cstdint>
#include <vector>

#include "audio/waveform.hpp"
#include "sim/conditions.hpp"
#include "sim/earphone.hpp"
#include "sim/probe.hpp"
#include "sim/subject.hpp"

namespace earsonar::sim {

/// One session point on a subject's trajectory (half a day apart).
struct TrajectorySession {
  std::uint32_t session = 0;  ///< 0-based; day = session / 2 (am / pm)
  EffusionState state = EffusionState::kClear;  ///< otoscope ground truth
  double fill = 0.0;            ///< continuous fill fraction behind the drum
  /// Surrogate feature: depth (dB) of the drum-reflectance notch within the
  /// 16-20 kHz probe band, with per-session measurement jitter. This is the
  /// series the longitudinal change-point detector watches.
  double notch_depth_db = 0.0;
};

/// A ground-truth state-arc boundary the detector should find.
struct ChangePoint {
  std::uint32_t session = 0;  ///< first session at which the new regime holds
  bool onset = false;         ///< true: Clear -> fluid; false: fluid -> Clear
};

struct SubjectTrajectory {
  std::uint32_t subject_id = 0;
  std::vector<TrajectorySession> sessions;
  std::vector<ChangePoint> change_points;  ///< in session order
};

struct TrajectoryConfig {
  std::size_t subject_count = 112;
  std::size_t days = 20;  ///< follow-up window; two sessions per day
  std::uint64_t seed = 42;
  /// Probability a subject develops effusion at all during the window;
  /// the rest stay Clear throughout (healthy controls / false-positive fuel).
  double onset_probability = 0.85;
  /// Probability of a second (milder) arc after a resolution, while sessions
  /// remain in the window.
  double relapse_probability = 0.2;
  /// Per-session exponential-approach rate of fill toward the state target.
  double fill_smoothing = 0.35;
  /// Per-session jitter of the fill path (before clamping to [0, 1]).
  double fill_noise_sigma = 0.015;
  /// Measurement noise on the surrogate notch-depth feature, in dB.
  double notch_noise_db = 0.35;
  /// Worker threads for generate() (0 = auto, see common/parallel.hpp).
  std::size_t threads = 0;

  void validate() const;
};

/// Seeded semi-Markov trajectory synthesis for a whole cohort.
class TrajectoryGenerator {
 public:
  explicit TrajectoryGenerator(TrajectoryConfig config);

  /// Every subject's trajectory, index == subject id. Parallel over subjects;
  /// bit-identical at every thread count.
  [[nodiscard]] std::vector<SubjectTrajectory> generate() const;

  /// One subject's trajectory (exactly what generate()[id] contains).
  [[nodiscard]] SubjectTrajectory generate_subject(std::uint32_t subject_id) const;

  /// The noise-free notch depth the surrogate model assigns to this subject
  /// in this state at this fill — exposed so tests can separate the
  /// physics from the per-session jitter.
  [[nodiscard]] double surrogate_notch_depth_db(const Subject& subject,
                                                EffusionState state,
                                                double fill) const;

  /// Full microphone synthesis for one session of a generated trajectory:
  /// the same EardrumModel (state + exact fill) the surrogate feature used,
  /// rendered through EarProbe. For end-to-end tests; costs as much as one
  /// CohortGenerator recording.
  [[nodiscard]] audio::Waveform render_session(
      const SubjectTrajectory& trajectory, std::size_t session_index,
      const ProbeConfig& probe = {}, const Earphone& earphone = reference_earphone(),
      const RecordingCondition& condition = {}) const;

  [[nodiscard]] const TrajectoryConfig& config() const { return config_; }

 private:
  TrajectoryConfig config_;
  SubjectFactory factory_;
};

}  // namespace earsonar::sim
