#include "sim/subject.hpp"

#include <algorithm>

namespace earsonar::sim {

EardrumModel Subject::eardrum(EffusionState state, double fill, std::uint64_t session) const {
  if (fill < 0.0) {
    // Session-specific but reproducible fill draw. Mix each component through
    // splitmix64 independently before combining: folding session and state
    // additively into one constant ahead of a single hash leaves structured
    // correlation between adjacent (session, state) seeds.
    const std::uint64_t mixed =
        splitmix64(seed ^ 0xf111ULL) ^ splitmix64(session) ^
        splitmix64(0x57a7e000ULL + static_cast<std::uint64_t>(state_index(state)));
    Rng rng(splitmix64(mixed));
    fill = sample_fill_fraction(state, rng);
  }
  return EardrumModel(drum, state, fill);
}

SubjectFactory::SubjectFactory(std::uint64_t cohort_seed) : cohort_seed_(cohort_seed) {}

Subject contralateral_ear(const Subject& subject) {
  Subject other = subject;
  other.seed = splitmix64(subject.seed ^ 0x077e4ULL);
  Rng rng(other.seed);
  // Small within-person anatomical differences.
  other.canal.length_m = std::clamp(subject.canal.length_m * rng.normal(1.0, 0.03),
                                    kMinCanalLengthM, kMaxCanalLengthM);
  other.canal.eardrum_path_gain =
      std::clamp(subject.canal.eardrum_path_gain * rng.normal(1.0, 0.03), 0.3, 0.55);
  other.drum.clear_resonance_hz = subject.drum.clear_resonance_hz * rng.normal(1.0, 0.008);
  other.drum.surface_density = subject.drum.surface_density * rng.normal(1.0, 0.02);
  other.drum.resistance_rayl =
      std::max(20.0, subject.drum.resistance_rayl * rng.normal(1.0, 0.02));
  // The fingerprint ripple is mostly shared, perturbed slightly per knot.
  for (double& g : other.drum.ripple) g = std::max(0.5, g * rng.normal(1.0, 0.01));
  return other;
}

Subject SubjectFactory::make(std::uint32_t subject_id) const {
  Subject subject;
  subject.id = subject_id;
  subject.seed = splitmix64(cohort_seed_ ^ splitmix64(0x5b6ec7 + subject_id));
  Rng rng(subject.seed);
  subject.canal = sample_ear_canal(rng);
  subject.drum = sample_drum_anatomy(rng);
  subject.age_years = static_cast<int>(rng.uniform_int(4, 6));
  // Paper cohort: 60 male / 52 female out of 112.
  subject.male = rng.bernoulli(60.0 / 112.0);
  return subject;
}

}  // namespace earsonar::sim
