// Earphone device models (paper §VI-C4, Fig. 15a).
//
// The prototype embeds an extra microphone in commodity earbuds; the paper
// evaluates four models (CK35051, ATH-CKS550XIS, IE 100 PRO, BOSE QC20).
// Devices differ in speaker frequency-response ripple across the probe band,
// microphone SNR, and passive ambient isolation from the silicone tips.
#pragma once

#include <string>
#include <vector>

namespace earsonar::sim {

struct Earphone {
  std::string name = "Reference";
  /// Speaker magnitude response sampled at `response_freqs_hz` (linear gain);
  /// applied to the transmitted chirp by FIR approximation.
  std::vector<double> response_freqs_hz{12000.0, 15000.0, 18000.0, 21000.0, 24000.0};
  std::vector<double> response_gains{1.0, 1.0, 1.0, 1.0, 1.0};
  double mic_snr_db = 74.0;        ///< microphone SNR (paper: generally > 70 dB)
  double isolation_db = 25.0;      ///< passive attenuation of room noise
  double mic_self_noise_spl = 28.0;///< equivalent input noise of the capsule
  /// Multiplier on the speaker-to-mic direct leak. 1.0 for the prototype's
  /// shadowed in-ear microphone; large for open-coupling setups (the
  /// smartphone-plus-paper-funnel rig of the Chan et al. baseline).
  double leak_multiplier = 1.0;

  /// Linear-phase FIR approximating the speaker response.
  [[nodiscard]] std::vector<double> response_kernel(std::size_t taps,
                                                    double sample_rate) const;
};

/// The idealized flat device used when device effects are not under study.
Earphone reference_earphone();

/// The four commercial devices of Fig. 15(a), with plausible response
/// ripple / SNR / isolation differences (budget CK35051 roughest, IE 100 PRO
/// cleanest).
Earphone earphone_ck35051();
Earphone earphone_ath_cks550xis();
Earphone earphone_ie100pro();
Earphone earphone_bose_qc20();

/// All four commercial presets in Fig. 15(a) order.
std::vector<Earphone> commercial_earphones();

/// The prior-work acquisition rig (Chan et al., Sci. Transl. Med. 2019): a
/// smartphone speaker/mic coupled to the ear with a folded paper funnel — no
/// seal (ambient passes through), strong speaker-to-mic leak off the funnel
/// walls, phone-grade capsule, drooping high-band response.
Earphone smartphone_funnel();

}  // namespace earsonar::sim
