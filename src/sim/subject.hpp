// Synthetic study participants.
//
// Substitutes the paper's 112-child clinical cohort: each subject is a seeded
// bundle of fixed anatomy (canal geometry, drum mechanics, spectral
// fingerprint) whose effusion state can be varied session to session — the
// way a real patient's middle ear changes while their anatomy does not.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "sim/ear_canal.hpp"
#include "sim/eardrum.hpp"
#include "sim/effusion.hpp"

namespace earsonar::sim {

struct Subject {
  std::uint32_t id = 0;
  std::uint64_t seed = 0;        ///< every stochastic draw for this subject forks from here
  EarCanal canal;
  DrumAnatomy drum;
  int age_years = 5;             ///< cohort is 4-6 years old
  bool male = true;

  /// The subject's eardrum model in a given effusion state. `fill` < 0 draws
  /// a state-typical fill fraction deterministically from the subject seed
  /// and `session` (so repeated sessions differ slightly, as in Fig. 10).
  [[nodiscard]] EardrumModel eardrum(EffusionState state, double fill = -1.0,
                                     std::uint64_t session = 0) const;
};

/// Deterministic generator: subject `i` from cohort seed `s` is always the
/// same person.
class SubjectFactory {
 public:
  explicit SubjectFactory(std::uint64_t cohort_seed);

  [[nodiscard]] Subject make(std::uint32_t subject_id) const;

 private:
  std::uint64_t cohort_seed_;
};

/// The same person's other ear: anatomy is strongly correlated within a
/// person (canal length within ~4%, drum mechanics within ~2%, a largely
/// shared spectral fingerprint) — far closer than between two different
/// people. Deterministic in the subject's seed. Used by the bilateral
/// (own-control) screening extension.
Subject contralateral_ear(const Subject& subject);

}  // namespace earsonar::sim
