#include "sim/effusion.hpp"

#include <algorithm>
#include <cctype>

#include "common/error.hpp"

namespace earsonar::sim {

std::array<EffusionState, kEffusionStateCount> all_effusion_states() {
  return {EffusionState::kClear, EffusionState::kSerous, EffusionState::kMucoid,
          EffusionState::kPurulent};
}

std::string to_string(EffusionState state) {
  switch (state) {
    case EffusionState::kClear: return "Clear";
    case EffusionState::kSerous: return "Serous";
    case EffusionState::kMucoid: return "Mucoid";
    case EffusionState::kPurulent: return "Purulent";
  }
  throw std::invalid_argument("to_string: bad EffusionState");
}

EffusionState effusion_state_from_string(const std::string& label) {
  std::string lower(label);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "clear") return EffusionState::kClear;
  if (lower == "serous") return EffusionState::kSerous;
  if (lower == "mucoid") return EffusionState::kMucoid;
  if (lower == "purulent") return EffusionState::kPurulent;
  throw std::invalid_argument("effusion_state_from_string: unknown label '" + label + "'");
}

std::size_t state_index(EffusionState state) { return static_cast<std::size_t>(state); }

EffusionState state_from_index(std::size_t index) {
  require(index < kEffusionStateCount, "state_from_index: index out of range");
  return static_cast<EffusionState>(index);
}

EffusionProperties effusion_properties(EffusionState state) {
  switch (state) {
    case EffusionState::kClear:
      // Air-filled middle ear: no fluid load.
      return {1.204, 343.0, 1.8e-5, 0.0, 0.0};
    case EffusionState::kSerous:
      // Thin transudate, close to water.
      return {1005.0, 1490.0, 5e-3, 0.35, 0.06};
    case EffusionState::kMucoid:
      // "Glue ear": viscous mucus.
      return {1030.0, 1520.0, 0.5, 0.55, 0.07};
    case EffusionState::kPurulent:
      // Pus: densest and most viscous.
      return {1060.0, 1540.0, 5.0, 0.78, 0.07};
  }
  throw std::invalid_argument("effusion_properties: bad EffusionState");
}

double sample_fill_fraction(EffusionState state, earsonar::Rng& rng) {
  if (!has_fluid(state)) return 0.0;
  const EffusionProperties props = effusion_properties(state);
  const double fill = rng.normal(props.fill_mean, props.fill_sigma);
  return std::clamp(fill, 0.05, 1.0);
}

bool has_fluid(EffusionState state) { return state != EffusionState::kClear; }

}  // namespace earsonar::sim
