// Recording conditions: wearing angle, body movement, ambient noise
// (paper §VI-C1..C3). These perturb the channel geometry the way the paper's
// causal account describes — off-angle wear changes the multipath picture and
// weakens the drum echo; movement jitters path delays/gains per chirp.
#pragma once

#include <string>

#include "audio/noise.hpp"

namespace earsonar::sim {

enum class BodyMovement { kSit = 0, kHeadMovement = 1, kWalking = 2, kNodding = 3 };

std::string to_string(BodyMovement movement);

/// Per-chirp channel jitter magnitudes caused by a movement pattern.
struct MovementProfile {
  double delay_jitter_samples = 0.0;  ///< sigma of per-chirp path-delay jitter
  double gain_jitter = 0.0;           ///< sigma of per-chirp path-gain jitter
  double dropout_probability = 0.0;   ///< chance a chirp's drum echo is lost
  /// Sigma of a *recording-level* random coupling drift: motion re-seats the
  /// silicone tip, scaling the whole echo level for that session. This is
  /// the dominant error mechanism for walking/nodding (Fig. 14c-d).
  double gain_drift = 0.0;
};

/// Calibrated jitter profiles: sit < head < walking < nodding (paper
/// Fig. 14c-d shows sit/head barely matter while walking/nodding degrade).
MovementProfile movement_profile(BodyMovement movement);

struct RecordingCondition {
  double angle_deg = 0.0;             ///< wearing angle off the standard pose
  double noise_spl_db = 30.0;         ///< ambient sound pressure level
  audio::NoiseColor noise_color = audio::NoiseColor::kBabble;
  BodyMovement movement = BodyMovement::kSit;

  void validate() const;
};

/// Multiplicative loss on the eardrum-echo gain at a wearing angle
/// (1.0 at 0 degrees, decreasing; calibrated against the paper's Table I
/// accuracy fall-off 92.8% -> 86.4% over 0-40 degrees).
double angle_echo_gain(double angle_deg);

/// Gain of the extra misalignment-induced wall reflection at an angle
/// (0 at 0 degrees; grows roughly linearly).
double angle_extra_multipath_gain(double angle_deg);

/// Extra per-chirp delay jitter (samples) induced by off-angle wear.
double angle_delay_jitter(double angle_deg);

}  // namespace earsonar::sim
