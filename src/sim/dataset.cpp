#include "sim/dataset.hpp"

#include <algorithm>
#include <cmath>
#include "common/error.hpp"
#include "common/parallel.hpp"

namespace earsonar::sim {

CohortGenerator::CohortGenerator(CohortConfig config)
    : config_(std::move(config)), factory_(config_.seed), probe_(config_.probe) {
  require(config_.subject_count >= 1, "CohortConfig: need >= 1 subject");
  require(config_.sessions_per_state >= 1, "CohortConfig: need >= 1 session per state");
}

std::vector<SessionRecording> CohortGenerator::generate() const {
  // Each subject draws from its own RNG stream (seeded from the subject seed
  // in generate_subject), so subjects synthesize in parallel and the flatten
  // below reproduces the serial subject-major order bit for bit.
  std::vector<std::vector<SessionRecording>> per_subject(config_.subject_count);
  parallel_for(
      config_.subject_count,
      [&](std::size_t id) {
        per_subject[id] = generate_subject(static_cast<std::uint32_t>(id));
      },
      config_.threads);

  std::vector<SessionRecording> all;
  all.reserve(config_.subject_count * kEffusionStateCount * config_.sessions_per_state);
  for (auto& one : per_subject)
    for (auto& rec : one) all.push_back(std::move(rec));
  return all;
}

std::vector<SessionRecording> CohortGenerator::generate_subject(
    std::uint32_t subject_id) const {
  require(subject_id < config_.subject_count, "generate_subject: id out of range");
  const Subject subject = factory_.make(subject_id);
  Rng rng(splitmix64(subject.seed ^ 0xDA7A5E7ULL));

  std::vector<SessionRecording> recs;
  std::uint32_t session = 0;
  for (EffusionState state : all_effusion_states()) {
    for (std::size_t s = 0; s < config_.sessions_per_state; ++s) {
      const EardrumModel drum = subject.eardrum(state, -1.0, session);
      RecordingCondition condition = config_.condition;
      if (config_.randomize_conditions) {
        // A real collection never holds conditions perfectly constant:
        // children re-seat the earbud (small angle), the clinic hums at
        // 35-50 dB, and some sessions have restless heads.
        condition.angle_deg =
            std::min(15.0, std::abs(rng.normal(0.0, 5.0)) + condition.angle_deg);
        condition.noise_spl_db = rng.uniform(35.0, 50.0);
        condition.movement = rng.bernoulli(0.2) ? BodyMovement::kHeadMovement
                                                : condition.movement;
      }
      SessionRecording rec;
      rec.subject_id = subject_id;
      rec.session = session++;
      rec.state = state;
      rec.fill = drum.fill();
      rec.waveform = probe_.record(subject, drum, config_.earphone, condition, rng);
      recs.push_back(std::move(rec));
    }
  }
  return recs;
}

std::vector<Subject> CohortGenerator::subjects() const {
  std::vector<Subject> out;
  out.reserve(config_.subject_count);
  for (std::uint32_t id = 0; id < config_.subject_count; ++id)
    out.push_back(factory_.make(id));
  return out;
}

EffusionState recovery_state_on_day(EffusionState initial_state, std::size_t day,
                                    std::size_t days) {
  require(days >= 1, "recovery_state_on_day: days must be >= 1");
  require(day < days, "recovery_state_on_day: day out of range");
  // Stages from the initial state down to Clear, equal dwell time each.
  const std::size_t start = state_index(initial_state);  // Clear=0 .. Purulent=3
  const std::size_t stages = start + 1;                   // including Clear
  const std::size_t stage =
      (day * stages) / days;  // 0 .. stages-1 as the days progress
  const std::size_t remaining = start - stage;
  return state_from_index(remaining);
}

std::vector<SessionRecording> generate_longitudinal(const LongitudinalConfig& config) {
  require(config.days >= 1, "LongitudinalConfig: days must be >= 1");
  SubjectFactory factory(config.seed);
  const Subject subject = factory.make(config.subject_id);
  EarProbe probe(config.probe);
  Rng rng(splitmix64(subject.seed ^ 0x10f6ULL));

  std::vector<SessionRecording> recs;
  recs.reserve(config.days * 2);
  std::uint32_t session = 0;
  for (std::size_t day = 0; day < config.days; ++day) {
    const EffusionState state =
        recovery_state_on_day(config.initial_state, day, config.days);
    for (int half = 0; half < 2; ++half) {  // 8 am and 6 pm
      const EardrumModel drum = subject.eardrum(state, -1.0, session);
      SessionRecording rec;
      rec.subject_id = config.subject_id;
      rec.session = session++;
      rec.state = state;
      rec.fill = drum.fill();
      rec.waveform = probe.record(subject, drum, config.earphone, config.condition, rng);
      recs.push_back(std::move(rec));
    }
  }
  return recs;
}

}  // namespace earsonar::sim
