#include "sim/eardrum.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "dsp/fft.hpp"
#include "dsp/fir.hpp"

namespace earsonar::sim {

DrumAnatomy sample_drum_anatomy(earsonar::Rng& rng, double ripple_sigma,
                                std::size_t ripple_knots) {
  require(ripple_knots >= 2, "sample_drum_anatomy: need >= 2 ripple knots");
  DrumAnatomy anatomy;
  anatomy.clear_resonance_hz = 26000.0 * rng.normal(1.0, 0.015);
  anatomy.surface_density = 2.0e-3 * rng.normal(1.0, 0.05);
  anatomy.resistance_rayl = std::max(20.0, 60.0 * rng.normal(1.0, 0.05));
  anatomy.ripple.resize(ripple_knots);
  for (double& g : anatomy.ripple) g = std::max(0.5, rng.normal(1.0, ripple_sigma));
  return anatomy;
}

EardrumModel::EardrumModel(DrumAnatomy anatomy, EffusionState state, double fill)
    : anatomy_(std::move(anatomy)), state_(state), fill_(fill) {
  require_in_range("EardrumModel fill", fill, 0.0, 1.0);
  require_nonempty("DrumAnatomy ripple", anatomy_.ripple.size());
  const DrumMechanics clear = drum_with_resonance(
      anatomy_.clear_resonance_hz, anatomy_.surface_density, anatomy_.resistance_rayl);
  loaded_ = load_with_effusion(clear, state, fill);
}

double EardrumModel::ripple_gain(double frequency_hz) const {
  const auto& knots = anatomy_.ripple;
  if (knots.size() == 1) return knots.front();
  const double lo = anatomy_.ripple_low_hz;
  const double hi = anatomy_.ripple_high_hz;
  if (frequency_hz <= lo) return knots.front();
  if (frequency_hz >= hi) return knots.back();
  const double pos = (frequency_hz - lo) / (hi - lo) * static_cast<double>(knots.size() - 1);
  const std::size_t i = static_cast<std::size_t>(pos);
  const double t = pos - static_cast<double>(i);
  const std::size_t j = std::min(i + 1, knots.size() - 1);
  // Smoothstep blend keeps the fingerprint ripple differentiable.
  const double s = t * t * (3.0 - 2.0 * t);
  return knots[i] * (1.0 - s) + knots[j] * s;
}

double EardrumModel::reflectance(double frequency_hz) const {
  require_positive("frequency_hz", frequency_hz);
  const double base = drum_reflectance_magnitude(loaded_, frequency_hz);
  return std::clamp(base * ripple_gain(frequency_hz), 0.0, 1.0);
}

std::vector<double> EardrumModel::reflectance_curve(double low_hz, double high_hz,
                                                    std::size_t points) const {
  require(points >= 2, "reflectance_curve: need >= 2 points");
  require(low_hz > 0.0 && low_hz < high_hz, "reflectance_curve: bad band");
  std::vector<double> curve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double f = low_hz + (high_hz - low_hz) * static_cast<double>(i) /
                                  static_cast<double>(points - 1);
    curve[i] = reflectance(f);
  }
  return curve;
}

std::vector<double> EardrumModel::fir_kernel(std::size_t taps, double sample_rate) const {
  require_positive("sample_rate", sample_rate);
  // Sample the reflectance on a coarse grid up to Nyquist and fit an FIR.
  constexpr std::size_t kGridPoints = 48;
  std::vector<double> freqs(kGridPoints), mags(kGridPoints);
  const double nyquist = sample_rate / 2.0;
  for (std::size_t i = 0; i < kGridPoints; ++i) {
    const double f = nyquist * static_cast<double>(i + 1) / static_cast<double>(kGridPoints);
    freqs[i] = f;
    mags[i] = reflectance(f);
  }
  return dsp::fir_from_magnitude(freqs, mags, taps, sample_rate);
}

EardrumModel::ReflectedPulse EardrumModel::reflect(std::span<const double> tx,
                                                   double sample_rate) const {
  require_nonempty("reflect tx", tx.size());
  require_positive("sample_rate", sample_rate);
  // Zero-phase spectral multiplication: exact |R(f)|, no design smearing.
  // Zero-phase wraps half the impulse response to negative time, so the
  // buffer is rotated by half its length and that rotation reported as group
  // delay.
  const std::size_t n = dsp::next_power_of_two(2 * tx.size() + 256);
  std::vector<dsp::Complex> spec(n, dsp::Complex{0.0, 0.0});
  for (std::size_t i = 0; i < tx.size(); ++i) spec[i] = dsp::Complex{tx[i], 0.0};
  dsp::fft_radix2_inplace(spec);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t mirror = k <= n / 2 ? k : n - k;
    const double f = static_cast<double>(mirror) * sample_rate / static_cast<double>(n);
    const double r = f > 0.0 ? reflectance(f) : reflectance(1.0);
    spec[k] *= r;
  }
  std::vector<dsp::Complex> time = dsp::ifft(spec);

  ReflectedPulse pulse;
  const std::size_t half = n / 2;
  pulse.samples.resize(n);
  // Rotate so the (acausal) zero-phase response becomes causal with a known
  // half-buffer delay.
  for (std::size_t i = 0; i < n; ++i)
    pulse.samples[i] = time[(i + n - half) % n].real();
  pulse.group_delay = static_cast<double>(half);
  return pulse;
}

double EardrumModel::notch_frequency_hz() const { return drum_resonance_hz(loaded_); }

}  // namespace earsonar::sim
