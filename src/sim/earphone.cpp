#include "sim/earphone.hpp"

#include "common/error.hpp"
#include "dsp/fir.hpp"

namespace earsonar::sim {

std::vector<double> Earphone::response_kernel(std::size_t taps, double sample_rate) const {
  require(response_freqs_hz.size() == response_gains.size() && !response_freqs_hz.empty(),
          "Earphone: response tables must match and be non-empty");
  return dsp::fir_from_magnitude(response_freqs_hz, response_gains, taps, sample_rate);
}

Earphone reference_earphone() { return Earphone{}; }

Earphone earphone_ck35051() {
  Earphone e;
  e.name = "CK35051";
  // Budget driver: pronounced high-band ripple and early roll-off.
  e.response_gains = {0.95, 1.05, 0.88, 0.80, 0.70};
  e.mic_snr_db = 70.0;
  e.isolation_db = 22.0;
  e.mic_self_noise_spl = 31.0;
  return e;
}

Earphone earphone_ath_cks550xis() {
  Earphone e;
  e.name = "ATH-CKS550XIS";
  // Bass-tuned consumer driver: modest treble shelf.
  e.response_gains = {1.02, 0.98, 0.92, 0.88, 0.82};
  e.mic_snr_db = 72.0;
  e.isolation_db = 24.0;
  e.mic_self_noise_spl = 30.0;
  return e;
}

Earphone earphone_ie100pro() {
  Earphone e;
  e.name = "IE 100 PRO";
  // Studio monitor: flattest response, best capsule.
  e.response_gains = {1.0, 1.0, 0.98, 0.96, 0.92};
  e.mic_snr_db = 76.0;
  e.isolation_db = 26.0;
  e.mic_self_noise_spl = 27.0;
  return e;
}

Earphone earphone_bose_qc20() {
  Earphone e;
  e.name = "BOSE QC20";
  // Sealed ANC tip: strong isolation, slight treble dip.
  e.response_gains = {1.0, 0.97, 0.90, 0.86, 0.80};
  e.mic_snr_db = 74.0;
  e.isolation_db = 30.0;
  e.mic_self_noise_spl = 28.0;
  return e;
}

Earphone smartphone_funnel() {
  Earphone e;
  e.name = "Smartphone+funnel";
  // Phone speakers roll off hard approaching 20 kHz.
  e.response_gains = {0.92, 0.88, 0.75, 0.60, 0.45};
  e.mic_snr_db = 64.0;
  e.isolation_db = 8.0;        // the cone blocks some room noise, far from a seal
  e.mic_self_noise_spl = 33.0;
  e.leak_multiplier = 5.0;     // funnel walls reflect part of the probe back
  return e;
}

std::vector<Earphone> commercial_earphones() {
  return {earphone_ck35051(), earphone_ath_cks550xis(), earphone_ie100pro(),
          earphone_bose_qc20()};
}

}  // namespace earsonar::sim
