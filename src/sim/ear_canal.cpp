#include "sim/ear_canal.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace earsonar::sim {

EarCanal sample_ear_canal(earsonar::Rng& rng) {
  EarCanal canal;
  canal.length_m = rng.uniform(kMinCanalLengthM, kMaxCanalLengthM);
  canal.diameter_m = rng.uniform(0.0055, 0.0075);
  canal.direct.distance_m = rng.uniform(0.0010, 0.0022);
  canal.direct.gain = rng.uniform(0.008, 0.018);
  canal.eardrum_path_gain = rng.uniform(0.38, 0.46);

  const std::size_t wall_count = static_cast<std::size_t>(rng.uniform_int(2, 4));
  canal.wall_paths.clear();
  for (std::size_t i = 0; i < wall_count; ++i) {
    AcousticPath path;
    // Wall features sit strictly between the earbud tip and the drum; the
    // canal is a smooth tube, so wall reflections are an order weaker than
    // the drum echo and concentrate near the tip (tip/skin discontinuity).
    path.distance_m = rng.uniform(0.006, canal.length_m - 0.008);
    // Deeper reflectors are weaker (spreading + absorption).
    const double depth_factor = 1.0 - path.distance_m / canal.length_m;
    path.gain = rng.uniform(0.004, 0.012) * (0.6 + 0.8 * depth_factor);
    canal.wall_paths.push_back(path);
  }
  std::sort(canal.wall_paths.begin(), canal.wall_paths.end(),
            [](const AcousticPath& a, const AcousticPath& b) {
              return a.distance_m < b.distance_m;
            });
  validate(canal);
  return canal;
}

void validate(const EarCanal& canal) {
  require(canal.length_m >= kMinCanalLengthM && canal.length_m <= kMaxCanalLengthM,
          "EarCanal: length outside anatomical range");
  require_positive("EarCanal diameter", canal.diameter_m);
  require_positive("EarCanal direct gain", canal.direct.gain);
  require(canal.direct.distance_m > 0.0 && canal.direct.distance_m < canal.length_m,
          "EarCanal: direct path must be inside the canal");
  require(canal.eardrum_path_gain > 0.0 && canal.eardrum_path_gain <= 1.0,
          "EarCanal: eardrum path gain must be in (0, 1]");
  for (const AcousticPath& p : canal.wall_paths) {
    require(p.distance_m > 0.0 && p.distance_m < canal.length_m,
            "EarCanal: wall path outside the canal");
    require(p.gain > 0.0 && p.gain < 1.0, "EarCanal: wall gain must be in (0, 1)");
  }
}

}  // namespace earsonar::sim
