#include "sim/conditions.hpp"

#include <cmath>

#include "common/error.hpp"

namespace earsonar::sim {

std::string to_string(BodyMovement movement) {
  switch (movement) {
    case BodyMovement::kSit: return "Sit";
    case BodyMovement::kHeadMovement: return "Head";
    case BodyMovement::kWalking: return "Walking";
    case BodyMovement::kNodding: return "Nodding";
  }
  throw std::invalid_argument("to_string: bad BodyMovement");
}

MovementProfile movement_profile(BodyMovement movement) {
  switch (movement) {
    case BodyMovement::kSit:
      return {0.02, 0.01, 0.0, 0.01};
    case BodyMovement::kHeadMovement:
      return {0.08, 0.05, 0.01, 0.04};
    case BodyMovement::kWalking:
      return {0.9, 0.22, 0.12, 0.14};
    case BodyMovement::kNodding:
      return {1.5, 0.30, 0.20, 0.20};
  }
  throw std::invalid_argument("movement_profile: bad BodyMovement");
}

void RecordingCondition::validate() const {
  require_in_range("RecordingCondition.angle_deg", angle_deg, 0.0, 60.0);
  require_in_range("RecordingCondition.noise_spl_db", noise_spl_db, 0.0, 120.0);
}

double angle_echo_gain(double angle_deg) {
  require_in_range("angle_deg", angle_deg, 0.0, 60.0);
  // Gentle quadratic loss (~4% at 40 deg): the silicone tip keeps the bud
  // coupled; accuracy loss in Table I comes mostly from the extra
  // misalignment multipath, not from losing the echo outright.
  const double a = angle_deg / 40.0;
  return std::max(0.3, 1.0 - 0.035 * a * a - 0.008 * a);
}

double angle_extra_multipath_gain(double angle_deg) {
  require_in_range("angle_deg", angle_deg, 0.0, 60.0);
  // Off-axis wear reflects part of the probe off the canal entrance:
  // ~0.026 pressure gain at 40 deg (under a tenth of the drum echo).
  return 0.00065 * angle_deg;
}

double angle_delay_jitter(double angle_deg) {
  require_in_range("angle_deg", angle_deg, 0.0, 60.0);
  return 0.002 * angle_deg;
}

}  // namespace earsonar::sim
