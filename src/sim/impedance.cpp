#include "sim/impedance.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "common/units.hpp"

namespace earsonar::sim {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}

double interface_reflectance(double z1_rayl, double z2_rayl) {
  require_positive("z1", z1_rayl);
  require_positive("z2", z2_rayl);
  return (z2_rayl - z1_rayl) / (z2_rayl + z1_rayl);
}

double interface_transmittance(double z1_rayl, double z2_rayl) {
  const double r = interface_reflectance(z1_rayl, z2_rayl);
  return 1.0 - r * r;
}

double layer_impedance(double mu, double xi, double thickness_m, double lambda_m) {
  require_positive("mu", mu);
  require_positive("xi", xi);
  require(thickness_m >= 0.0, "layer_impedance: thickness must be >= 0");
  require_positive("lambda", lambda_m);
  return std::sqrt(mu / xi) * std::tanh(kTwoPi * thickness_m * std::sqrt(xi * mu) / lambda_m);
}

double effusion_characteristic_impedance(EffusionState state) {
  const EffusionProperties p = effusion_properties(state);
  return characteristic_impedance(p.density_kg_m3, p.sound_speed_m_s);
}

DrumMechanics drum_with_resonance(double resonance_hz, double surface_density,
                                  double resistance_rayl) {
  require_positive("resonance_hz", resonance_hz);
  require_positive("surface_density", surface_density);
  require_positive("resistance_rayl", resistance_rayl);
  DrumMechanics drum;
  drum.resistance_rayl = resistance_rayl;
  drum.surface_density = surface_density;
  const double w = kTwoPi * resonance_hz;
  drum.stiffness = w * w * surface_density;
  return drum;
}

std::complex<double> drum_impedance(const DrumMechanics& drum, double frequency_hz) {
  require_positive("frequency_hz", frequency_hz);
  const double w = kTwoPi * frequency_hz;
  return {drum.resistance_rayl, w * drum.surface_density - drum.stiffness / w};
}

std::complex<double> drum_reflection(const DrumMechanics& drum, double frequency_hz,
                                     double z_air_rayl) {
  require_positive("z_air", z_air_rayl);
  const std::complex<double> zd = drum_impedance(drum, frequency_hz);
  return (zd - z_air_rayl) / (zd + z_air_rayl);
}

double drum_reflectance_magnitude(const DrumMechanics& drum, double frequency_hz,
                                  double z_air_rayl) {
  return std::abs(drum_reflection(drum, frequency_hz, z_air_rayl));
}

DrumMechanics load_with_effusion(const DrumMechanics& clear_drum, EffusionState state,
                                 double fill) {
  require_in_range("fill", fill, 0.0, 1.0);
  if (!has_fluid(state) || fill <= 0.0) return clear_drum;

  const EffusionProperties props = effusion_properties(state);
  DrumMechanics loaded = clear_drum;

  // Mass loading. Only the boundary layer of fluid entrained by the
  // high-frequency drum mode co-moves with the membrane, so the added surface
  // density is far below the full fluid column; the sub-linear fill exponent
  // models the entrained area growing slower than the fill once the fluid
  // covers the drum. Calibrated so the mean fill of each state pulls the
  // clear-drum mode (26 kHz default) to the notch positions of the paper's
  // Fig. 11: serous ~19.4 kHz, mucoid ~17.7 kHz, purulent ~16.6 kHz.
  constexpr double kMassPerFill = 3.5e-3;  // kg/m^2 at fill = 1, rho = 1000
  loaded.surface_density +=
      kMassPerFill * std::pow(fill, 0.7) * (props.density_kg_m3 / 1000.0);

  // Viscous damping. The boundary-layer specific resistance sqrt(rho*eta*w)
  // spans three orders of magnitude between serous and purulent fluid, so a
  // compressive (saturating) map keeps the loaded resistance within the
  // physically sensible few-hundred-rayl range around the air impedance,
  // where the absorption notch depth is maximal.
  // Calibrated so the three fluids land at distinct damping regimes:
  // serous under-damped (r ~ 0.3 z_air, shallow notch), mucoid near-critical
  // (r ~ 1.3 z_air, deepest absorption), purulent over-damped (r ~ 2 z_air,
  // partially reflective again) — giving the level ordering
  // clear > serous > purulent > mucoid that makes mucoid/purulent the
  // natural confusion pair (paper Fig. 13d).
  constexpr double kZAir = 415.0;
  constexpr double kDampingGain = 2.2;
  constexpr double kDampingKnee = 2500.0;
  const double w_center = kTwoPi * 18000.0;
  const double boundary_layer =
      std::sqrt(props.density_kg_m3 * props.viscosity_pa_s * w_center) * fill;
  loaded.resistance_rayl +=
      kZAir * kDampingGain * boundary_layer / (boundary_layer + kDampingKnee);

  return loaded;
}

double drum_resonance_hz(const DrumMechanics& drum) {
  require_positive("stiffness", drum.stiffness);
  require_positive("surface_density", drum.surface_density);
  return std::sqrt(drum.stiffness / drum.surface_density) / kTwoPi;
}

}  // namespace earsonar::sim
