// Frequency-dependent eardrum reflectance and its FIR realization.
//
// Combines the fluid-loaded drum oscillator (sim/impedance) with a fixed
// per-subject spectral "fingerprint" ripple (Fig. 9 of the paper shows the
// same subject's echo spectrum is highly repeatable across sessions while
// different subjects differ slightly), and renders the resulting |R(f)| curve
// as a linear-phase FIR kernel the channel simulator convolves echoes with.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "sim/effusion.hpp"
#include "sim/impedance.hpp"

namespace earsonar::sim {

/// Per-subject anatomical variation of the drum model.
struct DrumAnatomy {
  double clear_resonance_hz = 26000.0;  ///< unloaded high-frequency drum mode
  double surface_density = 2.0e-3;      ///< kg/m^2
  double resistance_rayl = 60.0;        ///< clear-drum damping
  /// Smooth multiplicative ripple samples applied to |R(f)| across the band;
  /// fixed per subject (their spectral fingerprint).
  std::vector<double> ripple;            ///< one gain per ripple knot
  double ripple_low_hz = 14000.0;
  double ripple_high_hz = 22000.0;
};

/// Draws subject-to-subject anatomy variation (resonance +-3%, density and
/// damping +-8%, ripple +-`ripple_sigma` around 1.0 at `ripple_knots` knots).
DrumAnatomy sample_drum_anatomy(earsonar::Rng& rng, double ripple_sigma = 0.035,
                                std::size_t ripple_knots = 9);

/// The full eardrum reflectance model for one subject in one effusion state.
class EardrumModel {
 public:
  EardrumModel(DrumAnatomy anatomy, EffusionState state, double fill);

  /// |R(f)| including fluid loading and the subject fingerprint, in [0, ~1].
  [[nodiscard]] double reflectance(double frequency_hz) const;

  /// Samples reflectance on a uniform grid [low_hz, high_hz].
  [[nodiscard]] std::vector<double> reflectance_curve(double low_hz, double high_hz,
                                                      std::size_t points) const;

  /// Linear-phase FIR kernel (odd `taps`) whose magnitude approximates the
  /// reflectance across [0, Nyquist]; group delay = (taps-1)/2 samples.
  /// NOTE: windowed FIR design smears deep narrow notches; the channel
  /// simulator uses the exact spectral method `reflect` instead.
  [[nodiscard]] std::vector<double> fir_kernel(std::size_t taps, double sample_rate) const;

  /// The reflected pulse for a transmitted pulse `tx`: multiplies the pulse
  /// spectrum by the exact |R(f)| (zero-phase) in the frequency domain.
  /// Returns the reflected samples and the group delay (samples) that the
  /// caller must subtract when placing the pulse, so arrival time stays
  /// physical.
  struct ReflectedPulse {
    std::vector<double> samples;
    double group_delay = 0.0;
  };
  [[nodiscard]] ReflectedPulse reflect(std::span<const double> tx, double sample_rate) const;

  /// The loaded oscillator's resonance (== expected notch position).
  [[nodiscard]] double notch_frequency_hz() const;

  [[nodiscard]] EffusionState state() const { return state_; }
  [[nodiscard]] double fill() const { return fill_; }
  [[nodiscard]] const DrumAnatomy& anatomy() const { return anatomy_; }

 private:
  [[nodiscard]] double ripple_gain(double frequency_hz) const;

  DrumAnatomy anatomy_;
  EffusionState state_;
  double fill_;
  DrumMechanics loaded_;
};

}  // namespace earsonar::sim
