// End-to-end tracing: scoped spans collected into a per-process recorder,
// exportable as Chrome-trace / Perfetto JSON.
//
// The request path is instrumented with RAII `Span`s — `EarSonar::analyze`
// stages, per-chirp segmentation, `StreamingSession` chunk ingestion, and
// the serving engine's queue wait / worker / per-request execution — so one
// `earsonar analyze --trace-out trace.json` (or `serve --trace-out`) yields
// a timeline that chrome://tracing and https://ui.perfetto.dev open
// directly. The flat `core::StageTimings` aggregate is *derived from* these
// spans (`Span::elapsed_ms`), not timed separately.
//
// Cost model: tracing is off by default. A span on the disabled path does
// two steady_clock reads and nothing else — no lock, no allocation, no
// branch into the recorder — so instrumentation can stay on hot paths
// (per-chirp, per-chunk) permanently. When enabled, each span closure takes
// one mutex-guarded vector push; the recorder is a sink for profiling runs,
// not a telemetry pipeline.
//
// Threading: spans may open and close on any thread; every span records the
// id of the thread that *created* it (`TraceRecorder::this_thread_id`, a
// small stable per-thread ordinal), which is what groups rows in the trace
// viewer. Cross-thread intervals (queue wait measured from producer enqueue
// to consumer dequeue) use `record_complete` with explicit endpoints.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace earsonar::obs {

/// One completed span, timestamped in microseconds since the recorder epoch.
struct TraceEvent {
  std::string name;      ///< span name, e.g. "segment_chirp"
  std::string category;  ///< span category: "pipeline" | "stream" | "serve"
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;
  std::uint32_t tid = 0;
  std::string arg_name;       ///< optional argument ("" = none)
  std::int64_t arg_value = 0;
};

/// Collects spans for one process. `instance()` is the sink every Span uses
/// by default; tests may construct private recorders. All methods are
/// thread-safe.
class TraceRecorder {
 public:
  TraceRecorder();

  static TraceRecorder& instance();

  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Appends one event; dropped (cheaply) when tracing is disabled.
  void record(TraceEvent event);

  /// Records a span with explicit endpoints — for intervals that do not fit
  /// a scoped lifetime, e.g. queue wait measured across threads.
  void record_complete(std::string_view name, std::string_view category,
                       std::chrono::steady_clock::time_point start,
                       std::chrono::steady_clock::time_point end,
                       std::string_view arg_name = {}, std::int64_t arg_value = 0);

  /// Microseconds between the recorder epoch and `tp` (0 if `tp` precedes it).
  [[nodiscard]] std::uint64_t to_us(std::chrono::steady_clock::time_point tp) const;

  /// Small stable ordinal of the calling thread (1, 2, ... in first-use
  /// order); shared across all recorders so a process traces consistently.
  static std::uint32_t this_thread_id();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;
  void clear();

  /// Chrome trace-event JSON ({"traceEvents":[...]}, "X" complete events,
  /// ts/dur in microseconds) — the format chrome://tracing and Perfetto load.
  [[nodiscard]] std::string chrome_json() const;
  void write_chrome_json(const std::string& path) const;

 private:
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

/// RAII scoped span. Arms itself against the recorder's enabled flag at
/// construction: a span created while tracing is disabled never touches the
/// recorder (and never allocates), but still measures wall time so callers
/// can read `elapsed_ms()` for aggregate timings (core::StageTimings,
/// serve::ServeMetrics) whether or not a trace is being captured.
class Span {
 public:
  explicit Span(std::string_view name, std::string_view category = "pipeline",
                TraceRecorder& recorder = TraceRecorder::instance());
  ~Span() { end(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches one integer argument shown in the viewer (e.g. chirp index).
  void set_arg(std::string_view name, std::int64_t value);

  /// Closes the span and (when armed) records it; idempotent, called by the
  /// destructor. After end(), elapsed_ms() is frozen.
  void end();

  /// Wall milliseconds since construction, or the final duration once ended.
  [[nodiscard]] double elapsed_ms() const;

 private:
  TraceRecorder* recorder_;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point end_{};
  std::string name_;
  std::string category_;
  std::string arg_name_;
  std::int64_t arg_value_ = 0;
  std::uint32_t tid_ = 0;  ///< creating thread, captured when armed
  bool armed_ = false;     ///< recorder was enabled when the span opened
  bool open_ = true;
};

}  // namespace earsonar::obs
