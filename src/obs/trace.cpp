#include "obs/trace.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/error.hpp"

namespace earsonar::obs {

namespace {
using Clock = std::chrono::steady_clock;

std::uint64_t us_between(Clock::time_point a, Clock::time_point b) {
  if (b <= a) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(b - a).count());
}

/// Minimal JSON string escaping: quotes, backslashes, and control bytes.
void append_escaped(std::ostringstream& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

}  // namespace

TraceRecorder::TraceRecorder() : epoch_(Clock::now()) {}

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder recorder;
  return recorder;
}

void TraceRecorder::record(TraceEvent event) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

void TraceRecorder::record_complete(std::string_view name, std::string_view category,
                                    Clock::time_point start, Clock::time_point end,
                                    std::string_view arg_name,
                                    std::int64_t arg_value) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = std::string(name);
  event.category = std::string(category);
  event.ts_us = to_us(start);
  event.dur_us = us_between(start, end);
  event.tid = this_thread_id();
  event.arg_name = std::string(arg_name);
  event.arg_value = arg_value;
  record(std::move(event));
}

std::uint64_t TraceRecorder::to_us(Clock::time_point tp) const {
  return us_between(epoch_, tp);
}

std::uint32_t TraceRecorder::this_thread_id() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

std::string TraceRecorder::chrome_json() const {
  const std::vector<TraceEvent> events = snapshot();
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  // Process-name metadata row so the viewer labels the single pid.
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"earsonar\"}}";
  for (const TraceEvent& e : events) {
    out << ",\n{\"name\":\"";
    append_escaped(out, e.name);
    out << "\",\"cat\":\"";
    append_escaped(out, e.category);
    out << "\",\"ph\":\"X\",\"ts\":" << e.ts_us << ",\"dur\":" << e.dur_us
        << ",\"pid\":1,\"tid\":" << e.tid;
    if (!e.arg_name.empty()) {
      out << ",\"args\":{\"";
      append_escaped(out, e.arg_name);
      out << "\":" << e.arg_value << "}";
    }
    out << "}";
  }
  out << "\n]}\n";
  return out.str();
}

void TraceRecorder::write_chrome_json(const std::string& path) const {
  std::ofstream file(path);
  if (!file) fail("TraceRecorder: cannot open " + path + " for writing");
  file << chrome_json();
  if (!file) fail("TraceRecorder: write to " + path + " failed");
}

Span::Span(std::string_view name, std::string_view category,
           TraceRecorder& recorder)
    : recorder_(&recorder), start_(Clock::now()), armed_(recorder.enabled()) {
  if (armed_) {
    name_ = std::string(name);
    category_ = std::string(category);
    tid_ = TraceRecorder::this_thread_id();
  }
}

void Span::set_arg(std::string_view name, std::int64_t value) {
  if (!armed_) return;
  arg_name_ = std::string(name);
  arg_value_ = value;
}

void Span::end() {
  if (!open_) return;
  open_ = false;
  end_ = Clock::now();
  if (!armed_) return;
  TraceEvent event;
  event.name = std::move(name_);
  event.category = std::move(category_);
  event.ts_us = recorder_->to_us(start_);
  event.dur_us = us_between(start_, end_);
  event.tid = tid_;
  event.arg_name = std::move(arg_name_);
  event.arg_value = arg_value_;
  recorder_->record(std::move(event));
}

double Span::elapsed_ms() const {
  const Clock::time_point stop = open_ ? Clock::now() : end_;
  return std::chrono::duration<double, std::milli>(stop - start_).count();
}

}  // namespace earsonar::obs
