// The explicit stage graph behind analyze(): every request flows
//
//   filter -> event_detect -> segment -> echo_psd -> features -> inference
//
// (docs/architecture.md draws the full picture). core::EarSonar runs the
// stages fused, one request at a time; this layer names them as first-class
// nodes so the serving engine can batch homogeneous work across requests —
// one MultiBiquadCascade pass filtering many sessions' chunks, one
// power_spectrum_band_x4 pass computing many requests' chirp PSDs through a
// shared FftPlan + scratch arena — while the per-stage occupancy counters
// here prove where the batching wins.
//
// The graph is a straight line today (each stage's output feeds exactly the
// next stage), so the edge list is implicit in the StageId order; what the
// graph abstraction buys is the per-stage seam: a place to batch, a place to
// count, and a stable set of exported stage names the docs gate pins.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace earsonar::pipeline {

/// The stage nodes, in dataflow order.
enum class StageId : std::size_t {
  kFilter = 0,     ///< band-pass preprocessing (streaming: chunked biquads)
  kEventDetect,    ///< adaptive-energy chirp event detection
  kSegment,        ///< parity-decomposition echo segmentation, per chirp
  kEchoPsd,        ///< windowed band PSD per echo (the x4-lane batch point)
  kFeatures,       ///< 105-dim feature assembly from the per-echo PSDs
  kInference,      ///< detection head on the feature vector
};

inline constexpr std::size_t kStageCount = 6;

/// Stable exported stage name ("filter", "event_detect", ...). These names
/// appear in metric lines and spans, and scripts/check_docs.sh requires each
/// of them in docs/architecture.md.
[[nodiscard]] const char* stage_name(StageId id);

/// All stage names, in dataflow order.
[[nodiscard]] std::span<const char* const> stage_names();

/// Occupancy counters of one stage node. `items` counts units of work
/// entering the stage (requests, or chirps for the per-chirp stages);
/// `passes` counts executions; a pass covering more than one request is a
/// batched pass and its requests are also counted in `batched_items`.
/// Updated with relaxed atomics from worker threads; a snapshot is a
/// consistent-enough monotonic read, same as serve::ServeMetrics.
struct StageStats {
  std::atomic<std::uint64_t> items{0};
  std::atomic<std::uint64_t> passes{0};
  std::atomic<std::uint64_t> batched_items{0};
  std::atomic<std::uint64_t> busy_us{0};  ///< wall time inside the stage
};

/// The stage nodes plus their occupancy counters; one instance per serving
/// engine. Thread-safe.
class StageGraph {
 public:
  [[nodiscard]] StageStats& stats(StageId id) {
    return stats_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const StageStats& stats(StageId id) const {
    return stats_[static_cast<std::size_t>(id)];
  }

  /// Records one pass through `id`: `item_count` units of work took
  /// `busy_ms` wall milliseconds; `batched` marks a pass that carried more
  /// than one request.
  void record(StageId id, double busy_ms, std::size_t item_count, bool batched);

  /// Prometheus-style text lines (earsonar_serve_stage_* gauges with a
  /// stage label), appended to the serving metrics snapshot.
  [[nodiscard]] std::string text_snapshot() const;

 private:
  std::array<StageStats, kStageCount> stats_;
};

}  // namespace earsonar::pipeline
