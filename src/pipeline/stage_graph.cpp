#include "pipeline/stage_graph.hpp"

#include <sstream>

namespace earsonar::pipeline {

namespace {

// The one authoritative spelling of each exported stage name. The docs gate
// (scripts/check_docs.sh) greps these EARSONAR_STAGE(...) sites and requires
// every name in docs/architecture.md, so renaming or adding a stage without
// updating the architecture page fails the `docs` ctest.
#define EARSONAR_STAGE(name) #name
constexpr const char* kStageNames[kStageCount] = {
    EARSONAR_STAGE(filter),       EARSONAR_STAGE(event_detect),
    EARSONAR_STAGE(segment),      EARSONAR_STAGE(echo_psd),
    EARSONAR_STAGE(features),     EARSONAR_STAGE(inference),
};
#undef EARSONAR_STAGE

}  // namespace

const char* stage_name(StageId id) {
  return kStageNames[static_cast<std::size_t>(id)];
}

std::span<const char* const> stage_names() {
  return {kStageNames, kStageCount};
}

void StageGraph::record(StageId id, double busy_ms, std::size_t item_count,
                        bool batched) {
  StageStats& s = stats(id);
  s.items.fetch_add(item_count, std::memory_order_relaxed);
  s.passes.fetch_add(1, std::memory_order_relaxed);
  if (batched) s.batched_items.fetch_add(item_count, std::memory_order_relaxed);
  s.busy_us.fetch_add(static_cast<std::uint64_t>(busy_ms * 1000.0),
                      std::memory_order_relaxed);
}

std::string StageGraph::text_snapshot() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const StageStats& s = stats_[i];
    const char* name = kStageNames[i];
    os << "earsonar_serve_stage_items{stage=\"" << name << "\"} "
       << s.items.load(std::memory_order_relaxed) << "\n";
    os << "earsonar_serve_stage_passes{stage=\"" << name << "\"} "
       << s.passes.load(std::memory_order_relaxed) << "\n";
    os << "earsonar_serve_stage_batched_items{stage=\"" << name << "\"} "
       << s.batched_items.load(std::memory_order_relaxed) << "\n";
    os << "earsonar_serve_stage_busy_ms{stage=\"" << name << "\"} "
       << s.busy_us.load(std::memory_order_relaxed) / 1000.0 << "\n";
  }
  return os.str();
}

}  // namespace earsonar::pipeline
