// Cross-request batched execution of the analyze() stage graph.
//
// BatchExecutor runs N requests' post-filter analyses through per-stage
// passes instead of N independent analyze_filtered() walks: event_detect and
// segment run per request (their work is request-serial by nature), then ONE
// echo_psd pass packs every surviving request's chirp windows into
// four-lane FftPlan::power_spectrum_band_x4 groups that cross request
// boundaries, and features assembles each request's vector from its slice
// of the shared PSD pass.
//
// Bit-identity contract: every value each request observes is computed by
// the same code, in the same order, on the same inputs as a lone
// analyze_filtered() call would use. The only cross-request sharing is the
// lane packing, and the x4 kernel is bitwise-equal to four single calls
// (PowerSpectrumBandX4Test), so result[i] is bit-identical to
// pipeline.analyze_filtered(*items[i].filtered, items[i].cancel) — including
// degraded paths: a request whose chirps drop mid-batch re-runs its features
// recovery exactly as the unbatched path does, without disturbing lane-mates.
//
// Error isolation: one request's exception (degradation floor, cancellation)
// is captured in its BatchOutcome; lane-mates proceed. A failure of the
// shared PSD pass itself — or the `pipeline.batch` fault point — falls back
// to fully per-request processing for the affected requests.
#pragma once

#include <exception>
#include <span>
#include <vector>

#include "audio/waveform.hpp"
#include "common/cancel.hpp"
#include "core/pipeline.hpp"
#include "pipeline/stage_graph.hpp"

namespace earsonar::pipeline {

/// One request's input to a batched analysis pass: its preprocessed signal
/// at the probe sample rate (what analyze_filtered() takes) plus its own
/// cancellation token — deadlines stay per-request inside a batch.
struct BatchItem {
  const audio::Waveform* filtered = nullptr;
  CancelToken cancel;
};

/// One request's result: exactly one of `analysis` (success) or `error`
/// (whatever the per-request analyze_filtered() would have thrown:
/// degradation-floor runtime_error, CancelledError, ...).
struct BatchOutcome {
  core::EchoAnalysis analysis;
  std::exception_ptr error;

  [[nodiscard]] bool ok() const { return error == nullptr; }
};

/// How one batched pass executed, for serving metrics.
struct BatchRunInfo {
  bool psd_batched = false;      ///< the shared echo_psd pass ran
  bool forced_fallback = false;  ///< pipeline.batch fault forced per-request mode
  std::size_t psd_lanes = 0;     ///< chirp windows carried by the shared pass
};

class BatchExecutor {
 public:
  /// `graph` (optional) receives per-stage occupancy; it must outlive the
  /// executor's calls.
  explicit BatchExecutor(StageGraph* graph = nullptr) : graph_(graph) {}

  /// analyze_filtered() for every item, batched per stage. Outcome [i] is
  /// bit-identical to pipeline.analyze_filtered(*items[i].filtered,
  /// items[i].cancel) run alone. All items must target the same `pipeline`
  /// (the serving engine builds every session from one config).
  std::vector<BatchOutcome> analyze_filtered(const core::EarSonar& pipeline,
                                             std::span<const BatchItem> items,
                                             BatchRunInfo* info = nullptr) const;

 private:
  StageGraph* graph_;
};

}  // namespace earsonar::pipeline
