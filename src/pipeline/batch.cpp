#include "pipeline/batch.hpp"

#include <utility>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "obs/trace.hpp"

namespace earsonar::pipeline {

std::vector<BatchOutcome> BatchExecutor::analyze_filtered(
    const core::EarSonar& pipeline, std::span<const BatchItem> items,
    BatchRunInfo* info) const {
  std::vector<BatchOutcome> out(items.size());
  if (info) *info = {};
  if (items.empty()) return out;
  const bool multi = items.size() > 1;

  // Chaos drill: force the degenerate fully-per-request path, the same code
  // the engine would run unbatched (docs/robustness.md, `pipeline.batch`).
  if (fault::point("pipeline.batch")) {
    if (info) info->forced_fallback = true;
    for (std::size_t i = 0; i < items.size(); ++i) {
      try {
        out[i].analysis =
            pipeline.analyze_filtered(*items[i].filtered, items[i].cancel);
      } catch (...) {
        out[i].error = std::current_exception();
      }
    }
    return out;
  }

  // live[i]: request i has not failed yet. A request that throws in one
  // stage is finished (its error captured); lane-mates continue.
  std::vector<char> live(items.size(), 1);
  auto run = [&](std::size_t i, auto&& body) {
    if (!live[i]) return;
    try {
      body();
    } catch (...) {
      out[i].error = std::current_exception();
      live[i] = 0;
    }
  };

  // --- event_detect: per request, in submission order, so fault-point
  // counters and drop bookkeeping fire in the same sequence a sequential
  // unbatched run over these requests would produce.
  {
    obs::Span span("batch.event_detect", "pipeline");
    span.set_arg("requests", static_cast<std::int64_t>(items.size()));
    for (std::size_t i = 0; i < items.size(); ++i)
      run(i, [&] {
        require_nonempty("EarSonar::analyze_filtered signal",
                         items[i].filtered->size());
        out[i].analysis.quality.min_usable = pipeline.config_.min_usable_chirps;
        pipeline.stage_event_detect(*items[i].filtered, out[i].analysis);
      });
    span.end();
    if (graph_)
      graph_->record(StageId::kEventDetect, span.elapsed_ms(), items.size(), multi);
  }

  // --- segment: per request (the parity decomposition is request-serial).
  {
    obs::Span span("batch.segment", "pipeline");
    span.set_arg("requests", static_cast<std::int64_t>(items.size()));
    for (std::size_t i = 0; i < items.size(); ++i)
      run(i, [&] {
        items[i].cancel.check("segment");
        pipeline.stage_segment(*items[i].filtered, out[i].analysis, items[i].cancel);
      });
    span.end();
    if (graph_)
      graph_->record(StageId::kSegment, span.elapsed_ms(), items.size(), multi);
  }

  // --- echo_psd: ONE pass over every surviving request's chirp windows,
  // packed into four-lane groups that cross request boundaries. Each lane's
  // arithmetic is independent (x4 kernel == four single calls, bitwise), so
  // the shared pass yields exactly the PSDs each request would compute alone.
  std::vector<std::size_t> psd_idx;  // psd_items[j] belongs to items[psd_idx[j]]
  std::vector<core::EchoSpectrumExtractor::EchoBatch> psd_items;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (!live[i] || out[i].analysis.echoes.empty()) continue;
    run(i, [&] { items[i].cancel.check("features"); });
    if (!live[i]) continue;
    psd_idx.push_back(i);
    psd_items.push_back({items[i].filtered, &out[i].analysis.echoes});
  }
  std::vector<std::vector<dsp::Spectrum>> psds;
  bool psd_ok = false;
  if (!psd_items.empty()) {
    std::size_t lanes = 0;
    for (const auto& item : psd_items) lanes += item.echoes->size();
    obs::Span span("batch.echo_psd", "pipeline");
    span.set_arg("lanes", static_cast<std::int64_t>(lanes));
    try {
      psds = pipeline.extractor_.spectrum_extractor().extract_all_multi(psd_items);
      psd_ok = true;
      if (info) {
        info->psd_batched = true;
        info->psd_lanes = lanes;
      }
    } catch (...) {
      // The shared pass failed (e.g. an injected FFT fault). Fall back: each
      // request recomputes its own PSDs inside stage_features below, where
      // the per-request recovery machinery attributes the error to the
      // request (and chirp) that owns it.
      psd_ok = false;
    }
    span.end();
    if (graph_)
      graph_->record(StageId::kEchoPsd, span.elapsed_ms(), psd_items.size(), multi);
  }

  // --- features: per-request assembly from its slice of the shared pass.
  {
    obs::Span span("batch.features", "pipeline");
    span.set_arg("requests", static_cast<std::int64_t>(psd_idx.size()));
    for (std::size_t j = 0; j < psd_idx.size(); ++j) {
      const std::size_t i = psd_idx[j];
      run(i, [&] {
        pipeline.stage_features(*items[i].filtered, out[i].analysis,
                                items[i].cancel, psd_ok ? &psds[j] : nullptr);
      });
    }
    span.end();
    if (graph_)
      graph_->record(StageId::kFeatures, span.elapsed_ms(), psd_idx.size(), multi);
  }
  return out;
}

}  // namespace earsonar::pipeline
