// Eardrum-echo segmentation by even/odd (parity) decomposition
// (paper §IV-B3, following Gnutti et al.'s local-symmetry representation).
//
// Within each detected event the auto-convolution (x * x)[m] peaks at twice
// the centers of local even/odd symmetry. Each candidate center is validated
// by the parity energy ratio of a fixed-support subsequence, and the eardrum
// echo is the qualifying candidate that sits at a physically plausible
// ear-canal distance behind the direct (speaker-to-mic) pulse.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "audio/waveform.hpp"
#include "core/event_detect.hpp"

namespace earsonar::core {

struct SegmenterConfig {
  std::size_t min_support = 16;       ///< ml, symmetric support length (samples)
  double parity_threshold = 0.70;     ///< pt in (0.5, 1): even/odd energy ratio
  double min_distance_m = 0.019;      ///< echo search window behind the direct
  double max_distance_m = 0.038;      ///<   pulse: the anatomical 2-3.5 cm + margin
  double sample_rate = 48000.0;
  /// Probe design timing. The shadowed microphone makes the direct leak too
  /// weak to locate by amplitude, but the app drives the speaker itself, so
  /// emission times sit on a known grid: chirp k starts at k * interval and
  /// its direct pulse peaks T/2 later. The segmenter anchors the direct pulse
  /// to the grid point nearest the detected event.
  double chirp_duration_s = 0.0005;
  double chirp_interval_s = 0.005;

  void validate() const;
};

/// A symmetry candidate found inside an event.
struct SymmetryCandidate {
  double center = 0.0;        ///< position within the event (samples, may be x.5)
  double parity_ratio = 0.0;  ///< max(Ee, Eo) / E of the local support
  double energy = 0.0;        ///< energy of the local support
};

/// The segmented eardrum echo.
struct EchoSegment {
  std::size_t event_start = 0;       ///< event offset in the full recording
  std::size_t peak_index = 0;        ///< echo peak, absolute sample index
  std::size_t direct_peak_index = 0; ///< direct (speaker-to-mic) pulse peak
  double distance_m = 0.0;           ///< inferred reflector distance
  double parity_ratio = 0.0;
  bool from_fallback = false;        ///< true when the distance-prior fallback fired
};

class ParityEchoSegmenter {
 public:
  explicit ParityEchoSegmenter(SegmenterConfig config = {});

  /// Locates the eardrum echo inside one event of the (preprocessed)
  /// recording. Returns nullopt when the event is too short to contain an
  /// echo at the minimum distance.
  [[nodiscard]] std::optional<EchoSegment> segment(const audio::Waveform& signal,
                                                   const Event& event) const;

  /// Span variant for streaming callers holding only a window of the
  /// recording: `signal[i]` is the sample at absolute index
  /// `signal_offset + i`, and the event carries absolute indices (they must
  /// lie inside the window). The chirp-grid anchor works on absolute indices,
  /// so results are identical to the whole-recording overload. The Waveform
  /// overload equals signal_offset = 0.
  [[nodiscard]] std::optional<EchoSegment> segment(std::span<const double> signal,
                                                   const Event& event,
                                                   std::size_t signal_offset) const;

  /// All parity candidates of a sequence (exposed for tests/diagnostics).
  [[nodiscard]] std::vector<SymmetryCandidate> candidates(
      std::span<const double> x) const;

  [[nodiscard]] const SegmenterConfig& config() const { return config_; }

 private:
  SegmenterConfig config_;
};

/// Even/odd parity energies of `x` about center index n0 (Eq. 8-10):
/// returns {Ee, Eo}. n0 is expressed in half-sample units 2*n0 = k.
struct ParityEnergies {
  double even = 0.0;
  double odd = 0.0;
};
ParityEnergies parity_energies(std::span<const double> x, double n0);

/// Consensus re-anchoring over one recording's echoes: within a recording the
/// eardrum does not move, so each echo's offset behind its direct pulse is
/// re-set to the per-recording median, suppressing chirp-to-chirp anchor
/// jitter from movement or a wall reflection occasionally outscoring the drum
/// echo. No-op for fewer than three echoes (no consensus to take). Exposed as
/// a free function so callers that analyze a chirp *subset* (the degraded
/// path, tests reproducing it) anchor exactly like the full pipeline.
void reanchor_echoes(std::vector<EchoSegment>& echoes, double sample_rate);

}  // namespace earsonar::core
