// MEE detection head (paper §IV-C3-C4): feature standardization,
// Laplacian-score selection of the top 25 of 105 features, outlier-pruned
// k-means clustering into four clusters, and an optimal cluster -> state
// mapping fitted against the training ground truth (the paper evaluates its
// clusters against otoscope labels the same way).
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "ml/kmeans.hpp"
#include "ml/laplacian.hpp"
#include "ml/outlier.hpp"
#include "ml/scaler.hpp"

namespace earsonar::core {

/// Label space: indices 0..3 = Clear, Serous, Mucoid, Purulent.
inline constexpr std::size_t kMeeStateCount = 4;
inline constexpr std::array<const char*, kMeeStateCount> kMeeStateNames{
    "Clear", "Serous", "Mucoid", "Purulent"};

struct DetectorConfig {
  std::size_t selected_features = 25;
  ml::KMeansConfig kmeans{.k = kMeeStateCount, .restarts = 12, .seed = 17};
  ml::LaplacianConfig laplacian{};
  ml::OutlierConfig outlier{};
  bool remove_outliers = true;
  /// Paper §IV-C3: "we have given four cluster centers according to the four
  /// different states" — seed k-means at the per-state means of the training
  /// data instead of k-means++ (which is kept for ablation).
  bool seed_with_class_means = true;
};

struct Diagnosis {
  std::size_t state = 0;       ///< index into kMeeStateNames
  double distance = 0.0;       ///< Euclidean distance to the winning centroid
  double confidence = 0.0;     ///< margin-based confidence in [0, 1]
};

class MeeDetector {
 public:
  explicit MeeDetector(DetectorConfig config = {});

  /// Fits scaler, feature selection, clustering, and the cluster -> state
  /// mapping on labeled training features (labels in [0, 4)).
  void fit(const ml::Matrix& features, const std::vector<std::size_t>& labels);

  /// Diagnoses one feature vector (dimension = training dimension).
  [[nodiscard]] Diagnosis predict(const std::vector<double>& features) const;

  [[nodiscard]] bool fitted() const { return !centroids_.empty(); }
  [[nodiscard]] const std::vector<std::size_t>& selected_features() const {
    return selected_;
  }
  [[nodiscard]] const std::vector<double>& scaler_means() const {
    return scaler_.means();
  }
  [[nodiscard]] const std::vector<double>& scaler_stds() const {
    return scaler_.stds();
  }
  [[nodiscard]] const ml::Matrix& centroids() const { return centroids_; }
  [[nodiscard]] const std::vector<std::size_t>& cluster_to_state() const {
    return cluster_to_state_;
  }
  [[nodiscard]] const DetectorConfig& config() const { return config_; }

 private:
  DetectorConfig config_;
  ml::StandardScaler scaler_;
  std::vector<std::size_t> selected_;
  ml::Matrix centroids_;
  std::vector<std::size_t> cluster_to_state_;
};

}  // namespace earsonar::core
