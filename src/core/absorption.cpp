#include "core/absorption.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "dsp/fft.hpp"
#include "dsp/fft_plan.hpp"
#include "dsp/interpolate.hpp"
#include "dsp/window.hpp"

namespace earsonar::core {

namespace {

// Reused per-thread buffers for window_psd: the absorption stage runs one
// window/FFT per chirp (hundreds per recording), so the steady state must
// not allocate. The frequency axis is cached against (bins, rate) — every
// echo of a recording shares it.
struct WindowPsdScratch {
  dsp::FftScratch fft;
  std::vector<double> window;  ///< raw window samples
  std::vector<double> dense;   ///< interpolated + zero-padded FFT input
  dsp::Spectrum full;          ///< full-resolution PSD
  double axis_fs = 0.0;        ///< effective rate the cached axis was built at
};

WindowPsdScratch& window_psd_scratch() {
  thread_local WindowPsdScratch scratch;
  return scratch;
}

}  // namespace

void SpectrumConfig::validate() const {
  require(pre_peak >= 2, "SpectrumConfig: pre_peak must be >= 2");
  require(post_peak >= 8, "SpectrumConfig: post_peak must be >= 8");
  require(event_window_length >= 16,
          "SpectrumConfig: event_window_length must be >= 16");
  require(gate_start >= 1, "SpectrumConfig: gate_start must be >= 1");
  require(gate_length >= 8, "SpectrumConfig: gate_length must be >= 8");
  require(direct_half_window >= 4, "SpectrumConfig: direct_half_window must be >= 4");
  require(interpolated_length >= pre_peak + post_peak + 1 &&
              interpolated_length >= gate_length + 1 &&
              interpolated_length >= event_window_length + 1,
          "SpectrumConfig: interpolated_length must cover the window");
  require(dsp::is_power_of_two(fft_size), "SpectrumConfig: fft_size must be 2^n");
  require(fft_size >= interpolated_length, "SpectrumConfig: fft_size too small");
  require(band_low_hz > 0.0 && band_low_hz < band_high_hz,
          "SpectrumConfig: need 0 < low < high");
  require(band_bins >= 8, "SpectrumConfig: need >= 8 band bins");
}

EchoSpectrumExtractor::EchoSpectrumExtractor(SpectrumConfig config) : config_(config) {
  config_.validate();
}

void EchoSpectrumExtractor::set_reference(const audio::FmcwConfig& chirp) {
  // The clean chirp, padded into an event-length buffer at its natural
  // position and pushed through the identical window/FFT processing.
  const audio::Waveform pulse = audio::make_chirp(chirp);
  const std::size_t len =
      std::max({config_.event_window_length, config_.pre_peak + config_.post_peak,
                config_.gate_start + config_.gate_length}) +
      pulse.size() + 8;
  audio::Waveform padded = audio::Waveform::silence(len, chirp.sample_rate);
  padded.add_at(pulse, 0);
  switch (config_.anchor) {
    case WindowAnchor::kEventStart:
      reference_ = window_psd(padded, config_.event_window_length / 2,
                              config_.event_window_length / 2,
                              config_.event_window_length -
                                  config_.event_window_length / 2);
      break;
    case WindowAnchor::kEchoPeak: {
      // The clean pulse peaks mid-chirp; center the reference there.
      const std::size_t center = pulse.size() / 2;
      reference_ = window_psd(padded, center, config_.pre_peak, config_.post_peak);
      break;
    }
    case WindowAnchor::kDirectGate:
      // The gate excludes the pulse by construction; reference the full
      // pulse spectrum instead so the division still de-tilts the band.
      reference_ = window_psd(padded, pulse.size() / 2, config_.pre_peak,
                              config_.post_peak);
      break;
  }
  // Guard against divisions by near-zero edge bins.
  const double peak = max_value(reference_.psd);
  ensure(peak > 0.0, "set_reference: silent reference");
  for (double& v : reference_.psd) v = std::max(v, 1e-4 * peak);
}

dsp::Spectrum EchoSpectrumExtractor::window_psd(const audio::Waveform& signal,
                                                std::size_t center, std::size_t pre,
                                                std::size_t post) const {
  const double fs = signal.sample_rate();
  WindowPsdScratch& s = window_psd_scratch();

  // Fixed-length window zero-padded at the recording edges so every chirp
  // yields an identical analysis geometry.
  const std::size_t window_len = pre + post + 1;
  double* window_samples;
  if (config_.interpolate || config_.hann_taper) {
    s.window.assign(window_len, 0.0);
    window_samples = s.window.data();
  } else {
    // Fast path: the raw window IS the FFT input head — fill it in place.
    s.dense.assign(config_.fft_size, 0.0);
    window_samples = s.dense.data();
  }
  for (std::size_t i = 0; i < window_len; ++i) {
    const std::ptrdiff_t idx = static_cast<std::ptrdiff_t>(center) -
                               static_cast<std::ptrdiff_t>(pre) +
                               static_cast<std::ptrdiff_t>(i);
    if (idx >= 0 && idx < static_cast<std::ptrdiff_t>(signal.size()))
      window_samples[i] = signal.samples()[static_cast<std::size_t>(idx)];
  }

  // Optionally interpolate onto a denser uniform grid (paper: "FFT
  // processing on the interpolated signal"), taper, zero-pad, transform.
  std::size_t pre_pad = window_len;
  if (config_.interpolate || config_.hann_taper) {
    if (config_.interpolate) {
      s.dense = dsp::resample_to_length(s.window, config_.interpolated_length);
    } else {
      s.dense = s.window;
    }
    if (config_.hann_taper) {
      const std::vector<double> taper = dsp::hann_window(s.dense.size());
      dsp::apply_window_inplace(s.dense, taper);
    }
    pre_pad = s.dense.size();
    s.dense.resize(config_.fft_size, 0.0);
  }

  // Interpolation stretches the window in time, compressing the spectrum by
  // the same factor; use the effective rate to keep the axis physical.
  const double stretch =
      static_cast<double>(pre_pad) / static_cast<double>(window_len);
  const double effective_fs = fs * stretch;

  const auto plan = dsp::FftPlan::get(config_.fft_size, dsp::FftPlan::Kind::kReal);
  s.full.psd.resize(plan->real_bins());
  plan->power_spectrum(s.dense, s.full.psd,
                       1.0 / static_cast<double>(config_.fft_size), s.fft);
  if (s.axis_fs != effective_fs || s.full.frequency_hz.size() != s.full.psd.size()) {
    s.full.frequency_hz.resize(s.full.psd.size());
    for (std::size_t i = 0; i < s.full.psd.size(); ++i)
      s.full.frequency_hz[i] = dsp::bin_frequency(i, config_.fft_size, effective_fs);
    s.axis_fs = effective_fs;
  }

  return dsp::resample_spectrum(s.full, config_.band_low_hz, config_.band_high_hz,
                                config_.band_bins);
}

dsp::Spectrum EchoSpectrumExtractor::extract(const audio::Waveform& signal,
                                             const EchoSegment& echo) const {
  require(echo.peak_index < signal.size(), "extract: echo peak outside signal");
  const double fs = signal.sample_rate();
  require(config_.band_high_hz <= fs / 2.0, "extract: band exceeds Nyquist");

  dsp::Spectrum spectrum;
  switch (config_.anchor) {
    case WindowAnchor::kEventStart: {
      const std::size_t center = echo.event_start + config_.event_window_length / 2;
      spectrum = window_psd(signal, center, config_.event_window_length / 2,
                            config_.event_window_length -
                                config_.event_window_length / 2);
      break;
    }
    case WindowAnchor::kEchoPeak:
      spectrum = window_psd(signal, echo.peak_index, config_.pre_peak, config_.post_peak);
      break;
    case WindowAnchor::kDirectGate: {
      const std::size_t gate_center =
          echo.direct_peak_index + config_.gate_start + config_.gate_length / 2;
      spectrum = window_psd(signal, gate_center, config_.gate_length / 2,
                            config_.gate_length - config_.gate_length / 2);
      break;
    }
  }

  if (has_reference()) {
    for (std::size_t i = 0; i < spectrum.size(); ++i)
      spectrum.psd[i] /= reference_.psd[i];
  }
  if (config_.normalize_by_direct) {
    const dsp::Spectrum direct =
        window_psd(signal, echo.direct_peak_index, config_.direct_half_window,
                   config_.direct_half_window);
    const double floor = 1e-9 * std::max(1e-30, max_value(direct.psd));
    for (std::size_t i = 0; i < spectrum.size(); ++i)
      spectrum.psd[i] /= direct.psd[i] + floor;
  }
  return config_.peak_normalize ? dsp::normalize_peak(spectrum) : spectrum;
}

std::vector<dsp::Spectrum> EchoSpectrumExtractor::extract_all(
    const audio::Waveform& signal, const std::vector<EchoSegment>& echoes) const {
  std::vector<dsp::Spectrum> out;
  out.reserve(echoes.size());
  for (const EchoSegment& echo : echoes) out.push_back(extract(signal, echo));
  return out;
}

dsp::Spectrum EchoSpectrumExtractor::average_of(
    std::span<const dsp::Spectrum> spectra) const {
  require_nonempty("average_of spectra", spectra.size());
  dsp::Spectrum acc = spectra.front();
  for (std::size_t s = 1; s < spectra.size(); ++s)
    for (std::size_t i = 0; i < acc.psd.size(); ++i) acc.psd[i] += spectra[s].psd[i];
  for (double& v : acc.psd) v /= static_cast<double>(spectra.size());
  return config_.peak_normalize ? dsp::normalize_peak(acc) : acc;
}

dsp::Spectrum EchoSpectrumExtractor::average(
    const audio::Waveform& signal, const std::vector<EchoSegment>& echoes) const {
  require_nonempty("average echoes", echoes.size());
  return average_of(extract_all(signal, echoes));
}

}  // namespace earsonar::core
