#include "core/absorption.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "dsp/fft.hpp"
#include "dsp/fft_plan.hpp"
#include "dsp/interpolate.hpp"
#include "dsp/window.hpp"

namespace earsonar::core {

namespace {

// Reused per-thread buffers for window_psd: the absorption stage runs one
// window/FFT per chirp (hundreds per recording), so the steady state must
// not allocate. The frequency axis, the FFT plan, and the band-resample
// interpolation weights are cached against the effective sample rate —
// every echo of a recording shares them.
struct WindowPsdScratch {
  dsp::FftScratch fft;
  std::vector<double> window;  ///< raw window samples
  std::vector<double> dense;   ///< interpolated + zero-padded FFT input
  dsp::Spectrum full;          ///< full-resolution PSD
  double axis_fs = 0.0;        ///< effective rate the cached axis was built at
  std::shared_ptr<const dsp::FftPlan> plan;  ///< plan for the cached fft_size
  std::size_t plan_n = 0;
  // Band-resample cache: per output bin, the bracketing source bin and the
  // interpolation fraction (hi == lo marks an end-clamped bin), mirroring
  // dsp::resample_spectrum's cursor sweep. Rebuilt with the axis.
  std::vector<std::size_t> rs_lo, rs_hi;
  std::vector<double> rs_t;
  dsp::Spectrum band_grid;     ///< target frequency grid (psd unused)
  std::size_t band_klo = 0, band_khi = 0;  ///< source bins the band touches
  double cache_low = 0.0, cache_high = 0.0;  ///< band the cache was built for
  std::size_t cache_bins = 0;
  std::vector<double> dense4;  ///< batched path: four FFT inputs side by side
  std::vector<double> psd4;    ///< batched path: four full-resolution PSDs
};

WindowPsdScratch& window_psd_scratch() {
  thread_local WindowPsdScratch scratch;
  return scratch;
}

// Precomputes the dsp::resample_spectrum interpolation geometry for one
// (source axis, band, bins) combination, with the identical index and
// fraction arithmetic, so the per-echo resample is a weighted gather that
// reproduces the general routine bit for bit.
void build_resample_cache(WindowPsdScratch& s, double low_hz, double high_hz,
                          std::size_t bins) {
  const std::vector<double>& freq = s.full.frequency_hz;
  s.rs_lo.resize(bins);
  s.rs_hi.resize(bins);
  s.rs_t.assign(bins, 0.0);
  s.band_grid.frequency_hz.resize(bins);
  s.band_grid.psd.clear();
  std::size_t hi = 0;
  for (std::size_t i = 0; i < bins; ++i) {
    const double f = low_hz + (high_hz - low_hz) * static_cast<double>(i) /
                                  static_cast<double>(bins - 1);
    s.band_grid.frequency_hz[i] = f;
    if (f <= freq.front()) {
      s.rs_lo[i] = s.rs_hi[i] = 0;
    } else if (f >= freq.back()) {
      s.rs_lo[i] = s.rs_hi[i] = freq.size() - 1;
    } else {
      while (freq[hi] < f) ++hi;
      s.rs_lo[i] = hi - 1;
      s.rs_hi[i] = hi;
      s.rs_t[i] = (f - freq[hi - 1]) / (freq[hi] - freq[hi - 1]);
    }
  }
  s.band_klo = s.rs_lo.front();
  s.band_khi = s.rs_hi.front();
  for (std::size_t i = 0; i < bins; ++i) {
    s.band_klo = std::min(s.band_klo, s.rs_lo[i]);
    s.band_khi = std::max(s.band_khi, s.rs_hi[i]);
  }
}

// The cached-weight counterpart of dsp::resample_spectrum: same clamped
// linear interpolation, indices and fractions taken from the cache. `psd`
// points at the full-resolution bins (s.full.psd for the single path, one
// lane of the batched buffer otherwise).
dsp::Spectrum resample_with_cache(const WindowPsdScratch& s, const double* psd) {
  dsp::Spectrum out;
  out.frequency_hz = s.band_grid.frequency_hz;
  const std::size_t bins = out.frequency_hz.size();
  out.psd.resize(bins);
  for (std::size_t i = 0; i < bins; ++i) {
    const std::size_t lo = s.rs_lo[i], hi = s.rs_hi[i];
    out.psd[i] =
        lo == hi ? psd[lo] : psd[lo] * (1.0 - s.rs_t[i]) + psd[hi] * s.rs_t[i];
  }
  return out;
}

// Refreshes the cached plan, frequency axis, and band-resample weights for
// one effective sample rate; every echo of a recording shares them.
void ensure_psd_cache(WindowPsdScratch& s, const SpectrumConfig& config,
                      double effective_fs) {
  if (s.plan_n != config.fft_size || !s.plan) {
    s.plan = dsp::FftPlan::get(config.fft_size, dsp::FftPlan::Kind::kReal);
    s.plan_n = config.fft_size;
  }
  s.full.psd.resize(s.plan->real_bins());
  const bool cache_stale = s.axis_fs != effective_fs ||
                           s.full.frequency_hz.size() != s.full.psd.size() ||
                           s.cache_low != config.band_low_hz ||
                           s.cache_high != config.band_high_hz ||
                           s.cache_bins != config.band_bins;
  if (cache_stale) {
    s.full.frequency_hz.resize(s.full.psd.size());
    for (std::size_t i = 0; i < s.full.psd.size(); ++i)
      s.full.frequency_hz[i] = dsp::bin_frequency(i, config.fft_size, effective_fs);
    s.axis_fs = effective_fs;
    build_resample_cache(s, config.band_low_hz, config.band_high_hz,
                         config.band_bins);
    s.cache_low = config.band_low_hz;
    s.cache_high = config.band_high_hz;
    s.cache_bins = config.band_bins;
  }
}

// Window placement for one echo under the configured anchor — the switch
// from extract(), shared with the batched extract_all path.
struct WindowGeometry {
  std::size_t center = 0, pre = 0, post = 0;
};

WindowGeometry window_geometry(const SpectrumConfig& c, const EchoSegment& e) {
  switch (c.anchor) {
    case WindowAnchor::kEventStart:
      return {e.event_start + c.event_window_length / 2, c.event_window_length / 2,
              c.event_window_length - c.event_window_length / 2};
    case WindowAnchor::kEchoPeak:
      return {e.peak_index, c.pre_peak, c.post_peak};
    case WindowAnchor::kDirectGate:
      return {e.direct_peak_index + c.gate_start + c.gate_length / 2,
              c.gate_length / 2, c.gate_length - c.gate_length / 2};
  }
  return {};
}

}  // namespace

void SpectrumConfig::validate() const {
  require(pre_peak >= 2, "SpectrumConfig: pre_peak must be >= 2");
  require(post_peak >= 8, "SpectrumConfig: post_peak must be >= 8");
  require(event_window_length >= 16,
          "SpectrumConfig: event_window_length must be >= 16");
  require(gate_start >= 1, "SpectrumConfig: gate_start must be >= 1");
  require(gate_length >= 8, "SpectrumConfig: gate_length must be >= 8");
  require(direct_half_window >= 4, "SpectrumConfig: direct_half_window must be >= 4");
  require(interpolated_length >= pre_peak + post_peak + 1 &&
              interpolated_length >= gate_length + 1 &&
              interpolated_length >= event_window_length + 1,
          "SpectrumConfig: interpolated_length must cover the window");
  require(dsp::is_power_of_two(fft_size), "SpectrumConfig: fft_size must be 2^n");
  require(fft_size >= interpolated_length, "SpectrumConfig: fft_size too small");
  require(band_low_hz > 0.0 && band_low_hz < band_high_hz,
          "SpectrumConfig: need 0 < low < high");
  require(band_bins >= 8, "SpectrumConfig: need >= 8 band bins");
}

EchoSpectrumExtractor::EchoSpectrumExtractor(SpectrumConfig config) : config_(config) {
  config_.validate();
}

void EchoSpectrumExtractor::set_reference(const audio::FmcwConfig& chirp) {
  // The clean chirp, padded into an event-length buffer at its natural
  // position and pushed through the identical window/FFT processing.
  const audio::Waveform pulse = audio::make_chirp(chirp);
  const std::size_t len =
      std::max({config_.event_window_length, config_.pre_peak + config_.post_peak,
                config_.gate_start + config_.gate_length}) +
      pulse.size() + 8;
  audio::Waveform padded = audio::Waveform::silence(len, chirp.sample_rate);
  padded.add_at(pulse, 0);
  switch (config_.anchor) {
    case WindowAnchor::kEventStart:
      reference_ = window_psd(padded, config_.event_window_length / 2,
                              config_.event_window_length / 2,
                              config_.event_window_length -
                                  config_.event_window_length / 2);
      break;
    case WindowAnchor::kEchoPeak: {
      // The clean pulse peaks mid-chirp; center the reference there.
      const std::size_t center = pulse.size() / 2;
      reference_ = window_psd(padded, center, config_.pre_peak, config_.post_peak);
      break;
    }
    case WindowAnchor::kDirectGate:
      // The gate excludes the pulse by construction; reference the full
      // pulse spectrum instead so the division still de-tilts the band.
      reference_ = window_psd(padded, pulse.size() / 2, config_.pre_peak,
                              config_.post_peak);
      break;
  }
  // Guard against divisions by near-zero edge bins.
  const double peak = max_value(reference_.psd);
  ensure(peak > 0.0, "set_reference: silent reference");
  for (double& v : reference_.psd) v = std::max(v, 1e-4 * peak);
}

dsp::Spectrum EchoSpectrumExtractor::window_psd(const audio::Waveform& signal,
                                                std::size_t center, std::size_t pre,
                                                std::size_t post) const {
  const double fs = signal.sample_rate();
  WindowPsdScratch& s = window_psd_scratch();

  // Fixed-length window zero-padded at the recording edges so every chirp
  // yields an identical analysis geometry.
  const std::size_t window_len = pre + post + 1;
  double* window_samples;
  if (config_.interpolate || config_.hann_taper) {
    s.window.assign(window_len, 0.0);
    window_samples = s.window.data();
  } else {
    // Fast path: the raw window IS the FFT input head — fill it in place.
    s.dense.assign(config_.fft_size, 0.0);
    window_samples = s.dense.data();
  }
  for (std::size_t i = 0; i < window_len; ++i) {
    const std::ptrdiff_t idx = static_cast<std::ptrdiff_t>(center) -
                               static_cast<std::ptrdiff_t>(pre) +
                               static_cast<std::ptrdiff_t>(i);
    if (idx >= 0 && idx < static_cast<std::ptrdiff_t>(signal.size()))
      window_samples[i] = signal.samples()[static_cast<std::size_t>(idx)];
  }

  // Optionally interpolate onto a denser uniform grid (paper: "FFT
  // processing on the interpolated signal"), taper, zero-pad, transform.
  std::size_t pre_pad = window_len;
  if (config_.interpolate || config_.hann_taper) {
    if (config_.interpolate) {
      s.dense = dsp::resample_to_length(s.window, config_.interpolated_length);
    } else {
      s.dense = s.window;
    }
    if (config_.hann_taper) {
      const std::vector<double> taper = dsp::hann_window(s.dense.size());
      dsp::apply_window_inplace(s.dense, taper);
    }
    pre_pad = s.dense.size();
    s.dense.resize(config_.fft_size, 0.0);
  }

  // Interpolation stretches the window in time, compressing the spectrum by
  // the same factor; use the effective rate to keep the axis physical.
  const double stretch =
      static_cast<double>(pre_pad) / static_cast<double>(window_len);
  const double effective_fs = fs * stretch;

  ensure_psd_cache(s, config_, effective_fs);
  const dsp::FftPlan& plan = *s.plan;
  const double scale = 1.0 / static_cast<double>(config_.fft_size);
  // The band resample only reads source bins [band_klo, band_khi]; computing
  // just those (identical arithmetic per computed bin) skips ~80% of the
  // untangle + |X|^2 work per chirp. The float32 pipeline keeps the full
  // transform — its narrowed kernels batch over all bins anyway.
  if (config_.float32_kernels)
    plan.power_spectrum_f32(s.dense, s.full.psd, scale, s.fft);
  else
    plan.power_spectrum_band(s.dense, s.full.psd, scale, s.fft, s.band_klo,
                             s.band_khi);

  return resample_with_cache(s, s.full.psd.data());
}

dsp::Spectrum EchoSpectrumExtractor::extract(const audio::Waveform& signal,
                                             const EchoSegment& echo) const {
  require(echo.peak_index < signal.size(), "extract: echo peak outside signal");
  const double fs = signal.sample_rate();
  require(config_.band_high_hz <= fs / 2.0, "extract: band exceeds Nyquist");

  const WindowGeometry g = window_geometry(config_, echo);
  return finalize(window_psd(signal, g.center, g.pre, g.post), signal, echo);
}

dsp::Spectrum EchoSpectrumExtractor::finalize(dsp::Spectrum spectrum,
                                              const audio::Waveform& signal,
                                              const EchoSegment& echo) const {
  if (has_reference()) {
    for (std::size_t i = 0; i < spectrum.size(); ++i)
      spectrum.psd[i] /= reference_.psd[i];
  }
  if (config_.normalize_by_direct) {
    const dsp::Spectrum direct =
        window_psd(signal, echo.direct_peak_index, config_.direct_half_window,
                   config_.direct_half_window);
    const double floor = 1e-9 * std::max(1e-30, max_value(direct.psd));
    for (std::size_t i = 0; i < spectrum.size(); ++i)
      spectrum.psd[i] /= direct.psd[i] + floor;
  }
  return config_.peak_normalize ? dsp::normalize_peak(spectrum) : spectrum;
}

std::vector<dsp::Spectrum> EchoSpectrumExtractor::extract_all(
    const audio::Waveform& signal, const std::vector<EchoSegment>& echoes) const {
  std::vector<dsp::Spectrum> out;
  out.reserve(echoes.size());
  std::size_t i = 0;
  // Batched fast path: with no interpolation or taper the raw window IS the
  // FFT input, so four echoes' windows pack side by side into one four-lane
  // band PSD (FftPlan::power_spectrum_band_x4). Each lane runs the identical
  // arithmetic as the per-echo path and finalize() is the shared per-echo
  // tail, so every spectrum matches extract() bit for bit.
  if (!config_.interpolate && !config_.hann_taper && !config_.float32_kernels &&
      echoes.size() >= 4) {
    const double fs = signal.sample_rate();
    require(config_.band_high_hz <= fs / 2.0, "extract: band exceeds Nyquist");
    WindowPsdScratch& s = window_psd_scratch();
    ensure_psd_cache(s, config_, fs);  // no interpolation: effective rate == fs
    const dsp::FftPlan& plan = *s.plan;
    const std::size_t bins = plan.real_bins();
    const double scale = 1.0 / static_cast<double>(config_.fft_size);
    s.dense4.assign(4 * config_.fft_size, 0.0);
    s.psd4.resize(4 * bins);
    const std::vector<double>& x = signal.samples();
    for (; i + 4 <= echoes.size(); i += 4) {
      const double* in[4];
      double* psd[4];
      for (std::size_t l = 0; l < 4; ++l) {
        const EchoSegment& echo = echoes[i + l];
        require(echo.peak_index < signal.size(), "extract: echo peak outside signal");
        const WindowGeometry g = window_geometry(config_, echo);
        const std::size_t window_len = g.pre + g.post + 1;
        double* dense = s.dense4.data() + l * config_.fft_size;
        // Only the window head is dirty from the previous group; the
        // zero-padded tail beyond window_len is never written.
        std::fill_n(dense, window_len, 0.0);
        for (std::size_t k = 0; k < window_len; ++k) {
          const std::ptrdiff_t idx = static_cast<std::ptrdiff_t>(g.center) -
                                     static_cast<std::ptrdiff_t>(g.pre) +
                                     static_cast<std::ptrdiff_t>(k);
          if (idx >= 0 && idx < static_cast<std::ptrdiff_t>(signal.size()))
            dense[k] = x[static_cast<std::size_t>(idx)];
        }
        in[l] = dense;
        psd[l] = s.psd4.data() + l * bins;
      }
      plan.power_spectrum_band_x4(in, psd, scale, s.fft, s.band_klo, s.band_khi);
      for (std::size_t l = 0; l < 4; ++l)
        out.push_back(
            finalize(resample_with_cache(s, psd[l]), signal, echoes[i + l]));
    }
  }
  for (; i < echoes.size(); ++i) out.push_back(extract(signal, echoes[i]));
  return out;
}

std::vector<std::vector<dsp::Spectrum>> EchoSpectrumExtractor::extract_all_multi(
    std::span<const EchoBatch> items) const {
  std::vector<std::vector<dsp::Spectrum>> out(items.size());
  std::size_t total = 0;
  double fs0 = 0.0;
  bool uniform_fs = true;
  for (const EchoBatch& item : items) {
    require(item.signal != nullptr && item.echoes != nullptr,
            "extract_all_multi: null item");
    total += item.echoes->size();
    if (fs0 == 0.0) fs0 = item.signal->sample_rate();
    uniform_fs = uniform_fs && item.signal->sample_rate() == fs0;
  }
  if (config_.interpolate || config_.hann_taper || config_.float32_kernels ||
      !uniform_fs || total < 4) {
    for (std::size_t i = 0; i < items.size(); ++i)
      out[i] = extract_all(*items[i].signal, *items[i].echoes);
    return out;
  }

  // Flatten the (recording, echo) pairs in submission order; x4 groups then
  // slice the flat sequence, crossing recording boundaries where they fall.
  struct Slot {
    std::size_t item, echo;
  };
  std::vector<Slot> slots;
  slots.reserve(total);
  for (std::size_t i = 0; i < items.size(); ++i) {
    out[i].reserve(items[i].echoes->size());
    for (std::size_t e = 0; e < items[i].echoes->size(); ++e) slots.push_back({i, e});
  }

  require(config_.band_high_hz <= fs0 / 2.0, "extract: band exceeds Nyquist");
  WindowPsdScratch& s = window_psd_scratch();
  ensure_psd_cache(s, config_, fs0);  // no interpolation: effective rate == fs
  const dsp::FftPlan& plan = *s.plan;
  const std::size_t bins = plan.real_bins();
  const double scale = 1.0 / static_cast<double>(config_.fft_size);
  s.dense4.assign(4 * config_.fft_size, 0.0);
  s.psd4.resize(4 * bins);
  std::size_t k = 0;
  for (; k + 4 <= slots.size(); k += 4) {
    const double* in[4];
    double* psd[4];
    for (std::size_t l = 0; l < 4; ++l) {
      const Slot& slot = slots[k + l];
      const audio::Waveform& signal = *items[slot.item].signal;
      const EchoSegment& echo = (*items[slot.item].echoes)[slot.echo];
      require(echo.peak_index < signal.size(), "extract: echo peak outside signal");
      const WindowGeometry g = window_geometry(config_, echo);
      const std::size_t window_len = g.pre + g.post + 1;
      double* dense = s.dense4.data() + l * config_.fft_size;
      // Only the window head is dirty from the previous group; the
      // zero-padded tail beyond window_len is never written.
      std::fill_n(dense, window_len, 0.0);
      const std::vector<double>& x = signal.samples();
      for (std::size_t j = 0; j < window_len; ++j) {
        const std::ptrdiff_t idx = static_cast<std::ptrdiff_t>(g.center) -
                                   static_cast<std::ptrdiff_t>(g.pre) +
                                   static_cast<std::ptrdiff_t>(j);
        if (idx >= 0 && idx < static_cast<std::ptrdiff_t>(signal.size()))
          dense[j] = x[static_cast<std::size_t>(idx)];
      }
      in[l] = dense;
      psd[l] = s.psd4.data() + l * bins;
    }
    plan.power_spectrum_band_x4(in, psd, scale, s.fft, s.band_klo, s.band_khi);
    for (std::size_t l = 0; l < 4; ++l) {
      const Slot& slot = slots[k + l];
      out[slot.item].push_back(finalize(resample_with_cache(s, psd[l]),
                                        *items[slot.item].signal,
                                        (*items[slot.item].echoes)[slot.echo]));
    }
  }
  for (; k < slots.size(); ++k)
    out[slots[k].item].push_back(extract(*items[slots[k].item].signal,
                                         (*items[slots[k].item].echoes)[slots[k].echo]));
  return out;
}

dsp::Spectrum EchoSpectrumExtractor::average_of(
    std::span<const dsp::Spectrum> spectra) const {
  require_nonempty("average_of spectra", spectra.size());
  dsp::Spectrum acc = spectra.front();
  for (std::size_t s = 1; s < spectra.size(); ++s)
    for (std::size_t i = 0; i < acc.psd.size(); ++i) acc.psd[i] += spectra[s].psd[i];
  for (double& v : acc.psd) v /= static_cast<double>(spectra.size());
  return config_.peak_normalize ? dsp::normalize_peak(acc) : acc;
}

dsp::Spectrum EchoSpectrumExtractor::average(
    const audio::Waveform& signal, const std::vector<EchoSegment>& echoes) const {
  require_nonempty("average echoes", echoes.size());
  return average_of(extract_all(signal, echoes));
}

}  // namespace earsonar::core
