// Template matching against the transmit chirp (paper §III "we use the
// correlation coefficient to separate echos reflected by different in-ear
// objects" and §IV-B3 principle (i): the eardrum echo maintains a high
// correlation with the direct signal).
//
// Each echo is a delayed, filtered copy of the transmitted chirp, so sliding
// normalized correlation against the known template both locates reflector
// arrivals and scores how chirp-like each candidate is.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "audio/chirp.hpp"

namespace earsonar::core {

/// One reflector arrival found by template matching.
struct TemplateMatch {
  double position = 0.0;     ///< start of the matched template (samples)
  double correlation = 0.0;  ///< normalized correlation in [-1, 1] at that lag
};

class ChirpTemplateMatcher {
 public:
  /// Builds the matcher's template from the probe design.
  explicit ChirpTemplateMatcher(const audio::FmcwConfig& chirp = {});

  /// Sliding normalized correlation of the template against `signal`:
  /// out[i] = corr(signal[i .. i+T), template). Length = len - T + 1
  /// (empty when the signal is shorter than the template). Zero where the
  /// local signal energy is negligible.
  [[nodiscard]] std::vector<double> correlation_track(
      std::span<const double> signal) const;

  /// Local maxima of |correlation| above `min_correlation`, sorted by
  /// position — the reflector arrivals within `signal`.
  [[nodiscard]] std::vector<TemplateMatch> find_arrivals(
      std::span<const double> signal, double min_correlation = 0.5) const;

  /// Correlation score of one candidate echo: the best |correlation| within
  /// +-`slack` samples of `position`. Scores how chirp-like the segment is.
  [[nodiscard]] double score_at(std::span<const double> signal, double position,
                                std::size_t slack = 2) const;

  [[nodiscard]] std::size_t template_length() const { return template_.size(); }

 private:
  std::vector<double> template_;
};

}  // namespace earsonar::core
