#include "core/screening.hpp"

#include "common/error.hpp"
#include "core/detector.hpp"

namespace earsonar::core {

BinaryScreener::BinaryScreener(ScreeningConfig config)
    : config_(config), model_([&] {
        ml::LogisticConfig lc = config.logistic;
        lc.classes = 2;
        return lc;
      }()) {
  require_in_range("ScreeningConfig.decision_threshold", config.decision_threshold,
                   0.0, 1.0);
}

void BinaryScreener::fit(const ml::Matrix& features, const std::vector<bool>& has_fluid) {
  require_nonempty("BinaryScreener features", features.size());
  require(features.size() == has_fluid.size(), "BinaryScreener: size mismatch");
  scaler_.fit(features);
  std::vector<std::size_t> labels(has_fluid.size());
  for (std::size_t i = 0; i < has_fluid.size(); ++i) labels[i] = has_fluid[i] ? 1 : 0;
  model_.fit(scaler_.transform(features), labels);
}

double BinaryScreener::fluid_probability(const std::vector<double>& features) const {
  require(fitted(), "BinaryScreener: score before fit");
  return model_.predict_proba(scaler_.transform(features))[1];
}

bool BinaryScreener::flag(const std::vector<double>& features) const {
  return fluid_probability(features) >= config_.decision_threshold;
}

void BinaryScreener::set_threshold(double threshold) {
  require_in_range("decision_threshold", threshold, 0.0, 1.0);
  config_.decision_threshold = threshold;
}

std::vector<bool> fluid_labels(const std::vector<std::size_t>& state_labels) {
  std::vector<bool> out(state_labels.size());
  for (std::size_t i = 0; i < state_labels.size(); ++i) {
    require(state_labels[i] < kMeeStateCount, "fluid_labels: label out of range");
    out[i] = state_labels[i] != 0;  // anything but Clear is fluid
  }
  return out;
}

}  // namespace earsonar::core
