// Feature extraction (paper §IV-C2): a 105-element vector per recording made
// of MFCC features and statistical features of the eardrum-echo power
// spectrum. The paper does not itemize the 105 slots; this implementation
// fixes a deterministic layout (documented below and in DESIGN.md):
//
//   3 x 13 = 39  MFCCs of the early / middle / late chirp-group spectra
//        30      log sub-band powers of the mean echo PSD
//        24      uniform samples of the normalized mean PSD
//         6      spectral-shape features (dip frequency & depth, centroid,
//                low/high band-power ratio, slope, 85% roll-off)
//         6      summary statistics (mean, std, min, max, skewness, kurtosis)
//       ----
//       105
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "audio/waveform.hpp"
#include "core/absorption.hpp"
#include "core/segment.hpp"
#include "dsp/spectrum.hpp"

namespace earsonar::core {

struct FeatureConfig {
  SpectrumConfig spectrum;
  std::size_t mfcc_coefficients = 13;
  std::size_t mfcc_filters = 24;
  std::size_t time_groups = 3;     ///< early/middle/late chirp groups
  std::size_t subband_powers = 30;
  std::size_t psd_samples = 24;

  [[nodiscard]] std::size_t dimension() const {
    return time_groups * mfcc_coefficients + subband_powers + psd_samples + 6 + 6;
  }
  void validate() const;
};

class FeatureExtractor {
 public:
  explicit FeatureExtractor(FeatureConfig config = {});

  /// Installs the transmit-reference spectrum on the inner spectrum
  /// extractor (see EchoSpectrumExtractor::set_reference).
  void set_reference(const audio::FmcwConfig& chirp) { extractor_.set_reference(chirp); }

  /// extract() plus the whole-recording mean echo spectrum it is built on.
  struct Result {
    std::vector<double> features;
    dsp::Spectrum mean_spectrum;
  };

  /// The full feature vector for one recording's segmented echoes.
  [[nodiscard]] std::vector<double> extract(const audio::Waveform& signal,
                                            const std::vector<EchoSegment>& echoes) const;

  /// extract(), also returning the mean echo spectrum. Every per-echo PSD is
  /// computed exactly once and shared between the time-group averages, the
  /// mean spectrum, and the derived features, so this costs one extraction
  /// pass where calling extract() + EchoSpectrumExtractor::average()
  /// separately costs three. Outputs are bit-identical to those calls.
  [[nodiscard]] Result extract_full(const audio::Waveform& signal,
                                    const std::vector<EchoSegment>& echoes) const;

  /// extract_full() when the per-echo PSDs are already in hand — the
  /// cross-request batched pipeline extracts many recordings' PSDs in one
  /// four-lane pass (EchoSpectrumExtractor::extract_all_multi), then
  /// assembles each recording's features through this entry point.
  /// `per_echo` must be extract_all(signal, echoes)'s output for the same
  /// echoes; the result is bit-identical to extract_full().
  [[nodiscard]] Result extract_full_from_psds(
      const std::vector<EchoSegment>& echoes,
      std::span<const dsp::Spectrum> per_echo) const;

  /// MFCC-style coefficients of one band spectrum (mel triangles across the
  /// analysis band, log, DCT-II). Exposed for tests.
  [[nodiscard]] std::vector<double> band_mfcc(const dsp::Spectrum& spectrum) const;

  [[nodiscard]] std::size_t dimension() const { return config_.dimension(); }
  [[nodiscard]] const FeatureConfig& config() const { return config_; }

  /// The inner per-echo PSD extractor, for callers that batch the PSD stage
  /// themselves (pipeline::BatchExecutor) before assembling features through
  /// extract_full_from_psds().
  [[nodiscard]] const EchoSpectrumExtractor& spectrum_extractor() const {
    return extractor_;
  }

 private:
  FeatureConfig config_;
  EchoSpectrumExtractor extractor_;
};

/// Human-readable name of feature slot `index` under `config`'s layout.
std::string feature_name(const FeatureConfig& config, std::size_t index);

}  // namespace earsonar::core
