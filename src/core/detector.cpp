#include "core/detector.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "ml/hungarian.hpp"

namespace earsonar::core {

MeeDetector::MeeDetector(DetectorConfig config) : config_(config) {
  require(config.selected_features >= 1, "DetectorConfig: need >= 1 feature");
  require(config.kmeans.k == kMeeStateCount,
          "DetectorConfig: k-means must use k = 4 (four MEE states)");
}

void MeeDetector::fit(const ml::Matrix& features, const std::vector<std::size_t>& labels) {
  require_nonempty("MeeDetector features", features.size());
  require(features.size() == labels.size(), "MeeDetector: feature/label size mismatch");
  for (std::size_t label : labels)
    require(label < kMeeStateCount, "MeeDetector: label out of range");
  require(features.size() >= kMeeStateCount, "MeeDetector: too few samples");
  require(config_.selected_features <= features.front().size(),
          "MeeDetector: selected_features exceeds feature dimension");

  // 1. Standardize.
  scaler_.fit(features);
  ml::Matrix scaled = scaler_.transform(features);

  // 2. Laplacian-score selection (unsupervised, §IV-C2).
  const std::vector<double> scores = ml::laplacian_scores(scaled, config_.laplacian);
  selected_ = ml::select_best_features(scores, config_.selected_features);
  ml::Matrix reduced = ml::project_matrix(scaled, selected_);

  // 3. Outlier pruning (§IV-C4) then k-means (§IV-C3).
  const ml::KMeans kmeans(config_.kmeans);
  std::vector<std::size_t> kept(reduced.size());
  for (std::size_t i = 0; i < kept.size(); ++i) kept[i] = i;
  if (config_.remove_outliers && reduced.size() > 4 * kMeeStateCount) {
    const ml::OutlierResult pruned =
        ml::remove_outliers_by_distance(reduced, kmeans, config_.outlier);
    if (pruned.kept.size() >= kMeeStateCount) kept = pruned.kept;
  }
  ml::Matrix training;
  training.reserve(kept.size());
  for (std::size_t idx : kept) training.push_back(reduced[idx]);

  ml::KMeansResult clusters;
  if (config_.seed_with_class_means) {
    // Initial centers "given according to the four different states": the
    // per-state means of the (outlier-pruned) training data, refined by
    // Lloyd iterations.
    ml::Matrix means(kMeeStateCount,
                     std::vector<double>(training.front().size(), 0.0));
    std::vector<std::size_t> counts(kMeeStateCount, 0);
    for (std::size_t i = 0; i < kept.size(); ++i) {
      const std::size_t cls = labels[kept[i]];
      counts[cls]++;
      for (std::size_t j = 0; j < training[i].size(); ++j)
        means[cls][j] += training[i][j];
    }
    for (std::size_t c = 0; c < kMeeStateCount; ++c) {
      require(counts[c] > 0, "MeeDetector: a state has no training samples");
      for (double& v : means[c]) v /= static_cast<double>(counts[c]);
    }
    clusters = kmeans.fit_with_init(training, means);
  } else {
    clusters = kmeans.fit(training);
  }
  centroids_ = clusters.centroids;

  // 4. Optimal cluster -> state mapping against the training ground truth.
  std::vector<std::vector<std::size_t>> contingency(
      kMeeStateCount, std::vector<std::size_t>(kMeeStateCount, 0));
  for (std::size_t i = 0; i < kept.size(); ++i)
    contingency[clusters.labels[i]][labels[kept[i]]]++;
  cluster_to_state_ = ml::best_cluster_to_label(contingency);
}

Diagnosis MeeDetector::predict(const std::vector<double>& features) const {
  require(fitted(), "MeeDetector: predict before fit");
  const std::vector<double> scaled = scaler_.transform(features);
  const std::vector<double> reduced = ml::project_features(scaled, selected_);

  // Distance to every centroid; winner plus margin-based confidence.
  double best = std::numeric_limits<double>::max();
  double second = std::numeric_limits<double>::max();
  std::size_t best_cluster = 0;
  for (std::size_t c = 0; c < centroids_.size(); ++c) {
    const double d = ml::euclidean_distance(centroids_[c], reduced);
    if (d < best) {
      second = best;
      best = d;
      best_cluster = c;
    } else if (d < second) {
      second = d;
    }
  }

  Diagnosis result;
  result.state = cluster_to_state_[best_cluster];
  result.distance = best;
  result.confidence = second > 0.0 ? std::clamp(1.0 - best / second, 0.0, 1.0) : 0.0;
  return result;
}

}  // namespace earsonar::core
