#include "core/template_match.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace earsonar::core {

ChirpTemplateMatcher::ChirpTemplateMatcher(const audio::FmcwConfig& chirp)
    : template_(audio::make_chirp(chirp).samples()) {
  ensure(!template_.empty(), "ChirpTemplateMatcher: empty template");
}

std::vector<double> ChirpTemplateMatcher::correlation_track(
    std::span<const double> signal) const {
  if (signal.size() < template_.size()) return {};
  const std::size_t t = template_.size();
  double template_energy = 0.0;
  for (double v : template_) template_energy += v * v;
  ensure(template_energy > 0.0, "ChirpTemplateMatcher: silent template");

  std::vector<double> track(signal.size() - t + 1, 0.0);
  // Running window energy of the signal.
  double window_energy = 0.0;
  for (std::size_t i = 0; i < t; ++i) window_energy += signal[i] * signal[i];
  for (std::size_t i = 0; i < track.size(); ++i) {
    if (i > 0) {
      window_energy += signal[i + t - 1] * signal[i + t - 1] -
                       signal[i - 1] * signal[i - 1];
    }
    if (window_energy > 1e-20) {
      double dot = 0.0;
      for (std::size_t j = 0; j < t; ++j) dot += signal[i + j] * template_[j];
      track[i] = dot / std::sqrt(window_energy * template_energy);
    }
  }
  return track;
}

std::vector<TemplateMatch> ChirpTemplateMatcher::find_arrivals(
    std::span<const double> signal, double min_correlation) const {
  require_in_range("min_correlation", min_correlation, 0.0, 1.0);
  const std::vector<double> track = correlation_track(signal);
  std::vector<TemplateMatch> arrivals;
  for (std::size_t i = 1; i + 1 < track.size(); ++i) {
    const double mag = std::abs(track[i]);
    if (mag < min_correlation) continue;
    if (mag >= std::abs(track[i - 1]) && mag >= std::abs(track[i + 1]))
      arrivals.push_back({static_cast<double>(i), track[i]});
  }
  return arrivals;
}

double ChirpTemplateMatcher::score_at(std::span<const double> signal, double position,
                                      std::size_t slack) const {
  require(position >= 0.0, "score_at: position must be >= 0");
  const std::vector<double> track = correlation_track(signal);
  if (track.empty()) return 0.0;
  const auto center = static_cast<std::ptrdiff_t>(std::lround(position));
  const std::ptrdiff_t lo =
      std::max<std::ptrdiff_t>(0, center - static_cast<std::ptrdiff_t>(slack));
  const std::ptrdiff_t hi = std::min<std::ptrdiff_t>(
      static_cast<std::ptrdiff_t>(track.size()) - 1,
      center + static_cast<std::ptrdiff_t>(slack));
  double best = 0.0;
  for (std::ptrdiff_t i = lo; i <= hi; ++i)
    best = std::max(best, std::abs(track[static_cast<std::size_t>(i)]));
  return best;
}

}  // namespace earsonar::core
