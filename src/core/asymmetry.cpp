#include "core/asymmetry.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace earsonar::core {

double spectral_asymmetry(const dsp::Spectrum& left, const dsp::Spectrum& right) {
  require(left.size() == right.size() && left.size() > 0,
          "spectral_asymmetry: spectra must share a non-empty grid");
  const double level_l = std::max(mean(left.psd), 1e-12);
  const double level_r = std::max(mean(right.psd), 1e-12);
  const double level_term = std::abs(std::log(level_l) - std::log(level_r));

  // Shape distance between the peak-normalized curves.
  const dsp::Spectrum nl = dsp::normalize_peak(left);
  const dsp::Spectrum nr = dsp::normalize_peak(right);
  double shape_term = 0.0;
  for (std::size_t i = 0; i < nl.size(); ++i)
    shape_term += std::abs(nl.psd[i] - nr.psd[i]);
  shape_term /= static_cast<double>(nl.size());

  return level_term + shape_term;
}

BilateralResult screen_bilateral(const EchoAnalysis& left, const EchoAnalysis& right,
                                 const AsymmetryConfig& config) {
  require(left.usable() && right.usable(),
          "screen_bilateral: both ears need a usable echo analysis");
  require(config.flag_threshold > 0.0, "AsymmetryConfig: threshold must be > 0");

  BilateralResult result;
  result.left_level = mean(left.mean_spectrum.psd);
  result.right_level = mean(right.mean_spectrum.psd);
  result.asymmetry = spectral_asymmetry(left.mean_spectrum, right.mean_spectrum);
  result.flagged = result.asymmetry > config.flag_threshold;
  if (result.flagged)
    result.suspect_ear = result.left_level < result.right_level ? -1 : +1;
  return result;
}

}  // namespace earsonar::core
