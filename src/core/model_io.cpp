#include "core/model_io.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/error.hpp"
#include "ml/laplacian.hpp"

namespace earsonar::core {

namespace {

constexpr const char* kMagic = "earsonar-model";
constexpr int kVersion = 1;

void write_vector(std::ostream& out, const char* tag, const std::vector<double>& xs) {
  out << tag << ' ' << xs.size();
  out.precision(17);
  for (double x : xs) out << ' ' << x;
  out << '\n';
}

void write_index_vector(std::ostream& out, const char* tag,
                        const std::vector<std::size_t>& xs) {
  out << tag << ' ' << xs.size();
  for (std::size_t x : xs) out << ' ' << x;
  out << '\n';
}

std::vector<double> read_vector(std::istream& in, const std::string& expected_tag) {
  std::string tag;
  std::size_t count = 0;
  if (!(in >> tag >> count) || tag != expected_tag)
    fail("load_detector: expected '" + expected_tag + "' section");
  std::vector<double> xs(count);
  for (double& x : xs)
    if (!(in >> x)) fail("load_detector: truncated '" + expected_tag + "' section");
  return xs;
}

std::vector<std::size_t> read_index_vector(std::istream& in,
                                           const std::string& expected_tag) {
  std::string tag;
  std::size_t count = 0;
  if (!(in >> tag >> count) || tag != expected_tag)
    fail("load_detector: expected '" + expected_tag + "' section");
  std::vector<std::size_t> xs(count);
  for (std::size_t& x : xs)
    if (!(in >> x)) fail("load_detector: truncated '" + expected_tag + "' section");
  return xs;
}

}  // namespace

DetectorModel snapshot(const MeeDetector& detector) {
  require(detector.fitted(), "snapshot: detector not fitted");
  DetectorModel model;
  model.scaler_mean = detector.scaler_means();
  model.scaler_std = detector.scaler_stds();
  model.selected_features = detector.selected_features();
  model.centroids = detector.centroids();
  model.cluster_to_state = detector.cluster_to_state();
  return model;
}

void save_detector(const MeeDetector& detector, std::ostream& out) {
  const DetectorModel model = snapshot(detector);
  out << kMagic << ' ' << kVersion << '\n';
  write_vector(out, "scaler_mean", model.scaler_mean);
  write_vector(out, "scaler_std", model.scaler_std);
  write_index_vector(out, "selected", model.selected_features);
  out << "centroids " << model.centroids.size() << ' '
      << (model.centroids.empty() ? 0 : model.centroids.front().size()) << '\n';
  out.precision(17);
  for (const auto& row : model.centroids) {
    for (std::size_t j = 0; j < row.size(); ++j) out << (j ? " " : "") << row[j];
    out << '\n';
  }
  write_index_vector(out, "mapping", model.cluster_to_state);
  if (!out) fail("save_detector: write failed");
}

void save_detector_file(const MeeDetector& detector, const std::string& path) {
  std::ofstream out(path);
  if (!out) fail("save_detector_file: cannot open " + path);
  save_detector(detector, out);
}

DetectorModel load_detector(std::istream& in) {
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != kMagic)
    fail("load_detector: not an earsonar model file");
  if (version != kVersion)
    fail("load_detector: unsupported model version " + std::to_string(version));

  DetectorModel model;
  model.scaler_mean = read_vector(in, "scaler_mean");
  model.scaler_std = read_vector(in, "scaler_std");
  model.selected_features = read_index_vector(in, "selected");

  std::string tag;
  std::size_t rows = 0, cols = 0;
  if (!(in >> tag >> rows >> cols) || tag != "centroids")
    fail("load_detector: expected 'centroids' section");
  model.centroids.assign(rows, std::vector<double>(cols));
  for (auto& row : model.centroids)
    for (double& v : row)
      if (!(in >> v)) fail("load_detector: truncated centroid matrix");
  model.cluster_to_state = read_index_vector(in, "mapping");
  validate_model(model);
  return model;
}

void validate_model(const DetectorModel& model) {
  const auto all_finite = [](const std::vector<double>& xs) {
    return std::all_of(xs.begin(), xs.end(),
                       [](double x) { return std::isfinite(x); });
  };
  if (model.scaler_mean.size() != model.scaler_std.size())
    fail("load_detector: scaler mean/std size mismatch");
  // A NaN/Inf anywhere in the learned state poisons every later prediction
  // silently (distances go NaN, the argmin picks cluster 0); reject up front.
  if (!all_finite(model.scaler_mean) || !all_finite(model.scaler_std))
    fail("load_detector: non-finite scaler moments");
  for (double s : model.scaler_std)
    if (s < 0.0) fail("load_detector: negative scaler std");
  for (const auto& row : model.centroids)
    if (!all_finite(row)) fail("load_detector: non-finite centroid");
  for (std::size_t idx : model.selected_features)
    if (idx >= model.scaler_mean.size())
      fail("load_detector: selected feature index out of range");
  for (const auto& row : model.centroids)
    if (row.size() != model.selected_features.size())
      fail("load_detector: centroid dimension mismatch");
  if (model.cluster_to_state.size() != model.centroids.size())
    fail("load_detector: mapping size mismatch");
  for (std::size_t state : model.cluster_to_state)
    if (state >= kMeeStateCount) fail("load_detector: state index out of range");
}

DetectorModel load_detector_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("load_detector_file: cannot open " + path);
  return load_detector(in);
}

Diagnosis DetectorModel::predict(const std::vector<double>& features) const {
  require(!centroids.empty(), "DetectorModel: empty model");
  require(features.size() == scaler_mean.size(),
          "DetectorModel: feature dimension mismatch");
  std::vector<double> scaled(features.size());
  for (std::size_t j = 0; j < features.size(); ++j)
    scaled[j] = scaler_std[j] > 1e-12 ? (features[j] - scaler_mean[j]) / scaler_std[j]
                                      : 0.0;
  const std::vector<double> reduced = ml::project_features(scaled, selected_features);

  double best = std::numeric_limits<double>::max();
  double second = std::numeric_limits<double>::max();
  std::size_t best_cluster = 0;
  for (std::size_t c = 0; c < centroids.size(); ++c) {
    const double d = ml::euclidean_distance(centroids[c], reduced);
    if (d < best) {
      second = best;
      best = d;
      best_cluster = c;
    } else if (d < second) {
      second = d;
    }
  }
  Diagnosis result;
  result.state = cluster_to_state[best_cluster];
  result.distance = best;
  result.confidence = second > 0.0 ? std::clamp(1.0 - best / second, 0.0, 1.0) : 0.0;
  return result;
}

}  // namespace earsonar::core
