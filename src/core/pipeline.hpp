// The EarSonar facade: raw microphone capture in, MEE diagnosis out.
//
// Wires the full paper pipeline — band-pass preprocessing, adaptive-energy
// event detection, parity-decomposition echo segmentation, echo-PSD
// absorption analysis, 105-dim feature extraction, and the k-means detection
// head — behind one class, with per-stage wall-clock instrumentation
// (Table II reports per-stage latency).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "audio/waveform.hpp"
#include "common/cancel.hpp"
#include "core/absorption.hpp"
#include "core/detector.hpp"
#include "core/event_detect.hpp"
#include "core/features.hpp"
#include "core/preprocess.hpp"
#include "core/segment.hpp"

namespace earsonar::pipeline {
class BatchExecutor;  // src/pipeline/batch.hpp: cross-request batched stages
}  // namespace earsonar::pipeline

namespace earsonar::core {

struct PipelineConfig {
  audio::FmcwConfig chirp;  ///< the probe design; also the transmit reference
  PreprocessConfig preprocess;
  EventDetectorConfig events;
  SegmenterConfig segmenter;
  FeatureConfig features;  ///< carries SpectrumConfig inside
  DetectorConfig detector;
  /// Worker threads for batch stages (fit's per-recording analyses).
  /// 0 = auto: EARSONAR_THREADS env var, else hardware concurrency. Results
  /// are bit-identical at every thread count.
  std::size_t threads = 0;
  /// Degradation floor: when per-chirp errors occur during analyze(), the
  /// recording still produces a result as long as at least this many chirps
  /// survive; below it analyze() throws (std::runtime_error, message prefix
  /// "EarSonar::analyze: degraded"). Only *error* drops count against the
  /// floor — chirps that are merely unsegmentable (no echo found) keep the
  /// pre-existing empty-result behavior.
  std::size_t min_usable_chirps = 1;
};

/// Wall-clock milliseconds spent in each stage of analyze()/diagnose().
/// The flat aggregate view of the `obs::Span` instrumentation: each field is
/// the elapsed time of the matching trace span ("bandpass", "event_detect",
/// "segment", "features", "inference" — see docs/observability.md), measured
/// whether or not a trace is being captured.
struct StageTimings {
  double bandpass_ms = 0.0;
  double event_detect_ms = 0.0;
  double segment_ms = 0.0;
  double feature_ms = 0.0;
  double inference_ms = 0.0;

  [[nodiscard]] double total_ms() const {
    return bandpass_ms + event_detect_ms + segment_ms + feature_ms + inference_ms;
  }
};

/// One chirp lost to an error (not to a mere no-echo miss) during analyze().
struct ChirpDrop {
  /// Event index within the recording; kWholeStage for a failure that took
  /// out an entire stage rather than one chirp.
  static constexpr std::size_t kWholeStage = static_cast<std::size_t>(-1);
  std::size_t chirp = kWholeStage;
  std::string stage;   ///< "event_detect" | "segment" | "features"
  std::string reason;  ///< the exception message
};

/// Per-recording degradation report: how many chirps went in, how many
/// survived each stage, and why the casualties fell. `degraded` is the bit a
/// serving layer surfaces — the result is still valid, but it was computed
/// from a subset of the capture and a clinician may want a re-take.
struct AnalysisQuality {
  std::size_t chirps_total = 0;    ///< chirp events detected
  std::size_t chirps_used = 0;     ///< chirps contributing to the features
  std::size_t chirps_dropped = 0;  ///< chirps lost to *errors* (== drops.size())
  std::size_t min_usable = 1;      ///< the floor analyze() enforced
  std::vector<ChirpDrop> drops;
  bool degraded = false;  ///< any error drop (or stream truncation) occurred

  [[nodiscard]] double usable_fraction() const {
    return chirps_total == 0 ? 0.0
                             : static_cast<double>(chirps_used) /
                                   static_cast<double>(chirps_total);
  }
};

/// Everything analyze() learns about one recording.
struct EchoAnalysis {
  std::vector<Event> events;
  std::vector<EchoSegment> echoes;
  dsp::Spectrum mean_spectrum;        ///< averaged eardrum-echo PSD
  std::vector<double> features;       ///< 105-dim vector
  StageTimings timings;
  AnalysisQuality quality;            ///< per-chirp degradation report

  [[nodiscard]] bool usable() const { return !features.empty(); }
};

class EarSonar {
 public:
  explicit EarSonar(PipelineConfig config = {});

  /// Signal-processing front half: preprocess, find events, segment echoes,
  /// build the echo spectrum and feature vector. `features` is empty when no
  /// echo could be segmented (caller decides how to handle the dropout).
  ///
  /// Error isolation: a chirp whose segmentation or PSD extraction throws is
  /// dropped and recorded in `quality` instead of aborting the recording;
  /// the result is computed from the surviving chirps exactly as if only
  /// they had been detected. Throws only when fewer than
  /// `config.min_usable_chirps` chirps survive an error, or when `cancel`
  /// expires between stages (CancelledError).
  [[nodiscard]] EchoAnalysis analyze(const audio::Waveform& recording,
                                     const CancelToken& cancel = {}) const;

  /// analyze() minus resampling and band-pass filtering, for callers that
  /// already hold the preprocessed signal at the probe sample rate — the
  /// streaming serving path filters incrementally as chunks arrive and
  /// finalizes through this entry point, which is what makes chunked
  /// ingestion bit-identical to the batch pipeline. `timings.bandpass_ms`
  /// stays zero.
  [[nodiscard]] EchoAnalysis analyze_filtered(const audio::Waveform& filtered,
                                              const CancelToken& cancel = {}) const;

  /// Trains the detection head on labeled recordings (label indices follow
  /// kMeeStateNames). Recordings whose analysis fails are skipped; at least
  /// four usable recordings are required.
  void fit(const std::vector<audio::Waveform>& recordings,
           const std::vector<std::size_t>& labels);

  /// Trains the detection head directly on precomputed feature vectors.
  void fit_features(const ml::Matrix& features, const std::vector<std::size_t>& labels);

  /// Full diagnosis of one recording; nullopt when no echo was found.
  [[nodiscard]] std::optional<Diagnosis> diagnose(const audio::Waveform& recording) const;

  /// Diagnosis from a precomputed feature vector.
  [[nodiscard]] Diagnosis diagnose_features(const std::vector<double>& features) const;

  [[nodiscard]] bool fitted() const { return detector_.fitted(); }
  [[nodiscard]] const PipelineConfig& config() const { return config_; }
  [[nodiscard]] const MeeDetector& detector() const { return detector_; }
  [[nodiscard]] std::size_t feature_dimension() const { return extractor_.dimension(); }

 private:
  // The stage bodies of analyze_filtered(), split out so the batched
  // executor (src/pipeline/) can run the same code per stage across many
  // requests. analyze_filtered() composes exactly these, in order; keeping
  // one set of stage bodies is what makes batched results bit-identical.
  void stage_event_detect(const audio::Waveform& filtered, EchoAnalysis& analysis) const;
  /// Includes the min_usable_chirps floor check (may throw "degraded").
  void stage_segment(const audio::Waveform& filtered, EchoAnalysis& analysis,
                     const CancelToken& cancel) const;
  /// `per_echo` non-null supplies precomputed per-echo PSDs
  /// (extract_all output) for the happy path; null computes them here. The
  /// error-recovery path always re-extracts per request.
  void stage_features(const audio::Waveform& filtered, EchoAnalysis& analysis,
                      const CancelToken& cancel,
                      const std::vector<dsp::Spectrum>* per_echo) const;

  friend class ::earsonar::pipeline::BatchExecutor;

  PipelineConfig config_;
  Preprocessor preprocessor_;
  AdaptiveEventDetector event_detector_;
  ParityEchoSegmenter segmenter_;
  FeatureExtractor extractor_;
  MeeDetector detector_;
};

}  // namespace earsonar::core
