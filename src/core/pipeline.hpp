// The EarSonar facade: raw microphone capture in, MEE diagnosis out.
//
// Wires the full paper pipeline — band-pass preprocessing, adaptive-energy
// event detection, parity-decomposition echo segmentation, echo-PSD
// absorption analysis, 105-dim feature extraction, and the k-means detection
// head — behind one class, with per-stage wall-clock instrumentation
// (Table II reports per-stage latency).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "audio/waveform.hpp"
#include "core/absorption.hpp"
#include "core/detector.hpp"
#include "core/event_detect.hpp"
#include "core/features.hpp"
#include "core/preprocess.hpp"
#include "core/segment.hpp"

namespace earsonar::core {

struct PipelineConfig {
  audio::FmcwConfig chirp;  ///< the probe design; also the transmit reference
  PreprocessConfig preprocess;
  EventDetectorConfig events;
  SegmenterConfig segmenter;
  FeatureConfig features;  ///< carries SpectrumConfig inside
  DetectorConfig detector;
  /// Worker threads for batch stages (fit's per-recording analyses).
  /// 0 = auto: EARSONAR_THREADS env var, else hardware concurrency. Results
  /// are bit-identical at every thread count.
  std::size_t threads = 0;
};

/// Wall-clock milliseconds spent in each stage of analyze()/diagnose().
/// The flat aggregate view of the `obs::Span` instrumentation: each field is
/// the elapsed time of the matching trace span ("bandpass", "event_detect",
/// "segment", "features", "inference" — see docs/observability.md), measured
/// whether or not a trace is being captured.
struct StageTimings {
  double bandpass_ms = 0.0;
  double event_detect_ms = 0.0;
  double segment_ms = 0.0;
  double feature_ms = 0.0;
  double inference_ms = 0.0;

  [[nodiscard]] double total_ms() const {
    return bandpass_ms + event_detect_ms + segment_ms + feature_ms + inference_ms;
  }
};

/// Everything analyze() learns about one recording.
struct EchoAnalysis {
  std::vector<Event> events;
  std::vector<EchoSegment> echoes;
  dsp::Spectrum mean_spectrum;        ///< averaged eardrum-echo PSD
  std::vector<double> features;       ///< 105-dim vector
  StageTimings timings;

  [[nodiscard]] bool usable() const { return !echoes.empty(); }
};

class EarSonar {
 public:
  explicit EarSonar(PipelineConfig config = {});

  /// Signal-processing front half: preprocess, find events, segment echoes,
  /// build the echo spectrum and feature vector. `features` is empty when no
  /// echo could be segmented (caller decides how to handle the dropout).
  [[nodiscard]] EchoAnalysis analyze(const audio::Waveform& recording) const;

  /// analyze() minus resampling and band-pass filtering, for callers that
  /// already hold the preprocessed signal at the probe sample rate — the
  /// streaming serving path filters incrementally as chunks arrive and
  /// finalizes through this entry point, which is what makes chunked
  /// ingestion bit-identical to the batch pipeline. `timings.bandpass_ms`
  /// stays zero.
  [[nodiscard]] EchoAnalysis analyze_filtered(const audio::Waveform& filtered) const;

  /// Trains the detection head on labeled recordings (label indices follow
  /// kMeeStateNames). Recordings whose analysis fails are skipped; at least
  /// four usable recordings are required.
  void fit(const std::vector<audio::Waveform>& recordings,
           const std::vector<std::size_t>& labels);

  /// Trains the detection head directly on precomputed feature vectors.
  void fit_features(const ml::Matrix& features, const std::vector<std::size_t>& labels);

  /// Full diagnosis of one recording; nullopt when no echo was found.
  [[nodiscard]] std::optional<Diagnosis> diagnose(const audio::Waveform& recording) const;

  /// Diagnosis from a precomputed feature vector.
  [[nodiscard]] Diagnosis diagnose_features(const std::vector<double>& features) const;

  [[nodiscard]] bool fitted() const { return detector_.fitted(); }
  [[nodiscard]] const PipelineConfig& config() const { return config_; }
  [[nodiscard]] const MeeDetector& detector() const { return detector_; }
  [[nodiscard]] std::size_t feature_dimension() const { return extractor_.dimension(); }

 private:
  PipelineConfig config_;
  Preprocessor preprocessor_;
  AdaptiveEventDetector event_detector_;
  ParityEchoSegmenter segmenter_;
  FeatureExtractor extractor_;
  MeeDetector detector_;
};

}  // namespace earsonar::core
