#include "core/preprocess.hpp"

#include "common/error.hpp"
#include "dsp/butterworth.hpp"

namespace earsonar::core {

void PreprocessConfig::validate(double sample_rate) const {
  require(butterworth_order >= 1 && butterworth_order <= 8,
          "PreprocessConfig: order must be in [1, 8]");
  require(band_low_hz > 0.0 && band_high_hz < sample_rate / 2.0 &&
              band_low_hz < band_high_hz,
          "PreprocessConfig: need 0 < low < high < Nyquist");
}

Preprocessor::Preprocessor(PreprocessConfig config) : config_(config) {}

dsp::BiquadCascade Preprocessor::design(double sample_rate) const {
  config_.validate(sample_rate);
  return dsp::butterworth_bandpass(config_.butterworth_order, config_.band_low_hz,
                                   config_.band_high_hz, sample_rate);
}

audio::Waveform Preprocessor::process(const audio::Waveform& input) const {
  require_nonempty("Preprocessor input", input.size());
  dsp::BiquadCascade filter = design(input.sample_rate());
  std::vector<double> filtered = config_.zero_phase
                                     ? filter.filtfilt(input.view())
                                     : filter.process(input.view());
  return audio::Waveform(std::move(filtered), input.sample_rate());
}

double Preprocessor::magnitude_at(double frequency_hz, double sample_rate) const {
  return design(sample_rate).magnitude_at(frequency_hz, sample_rate);
}

}  // namespace earsonar::core
