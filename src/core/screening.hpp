// Binary home-screening mode (extension beyond the paper).
//
// The question a caregiver actually asks is "is there fluid?", not "which of
// four grades?". This mode collapses the label space to fluid / no-fluid,
// scores recordings with a logistic head over the acoustic features, and is
// evaluated with ROC/AUC — the protocol the Chan et al. prior work used.
#pragma once

#include <cstddef>
#include <vector>

#include "ml/logistic.hpp"
#include "ml/scaler.hpp"

namespace earsonar::core {

struct ScreeningConfig {
  ml::LogisticConfig logistic{.classes = 2, .epochs = 400};
  double decision_threshold = 0.5;  ///< fluid probability above which we flag
};

class BinaryScreener {
 public:
  explicit BinaryScreener(ScreeningConfig config = {});

  /// Fits on features with binary labels (true = fluid present).
  void fit(const ml::Matrix& features, const std::vector<bool>& has_fluid);

  /// Probability that fluid is present, in [0, 1].
  [[nodiscard]] double fluid_probability(const std::vector<double>& features) const;

  /// fluid_probability >= decision_threshold.
  [[nodiscard]] bool flag(const std::vector<double>& features) const;

  void set_threshold(double threshold);
  [[nodiscard]] double threshold() const { return config_.decision_threshold; }
  [[nodiscard]] bool fitted() const { return model_.fitted(); }

 private:
  ScreeningConfig config_;
  ml::StandardScaler scaler_;
  ml::LogisticRegression model_;
};

/// Collapses four-state labels (0..3 = Clear..Purulent) to fluid presence.
std::vector<bool> fluid_labels(const std::vector<std::size_t>& state_labels);

}  // namespace earsonar::core
