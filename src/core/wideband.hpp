// Wideband absorbance screening (second serving workload, ROADMAP item 4).
//
// Wideband acoustic immittance measures how much probe energy the middle ear
// absorbs across 226 Hz-8 kHz; effusion stiffens the drum-fluid system and
// depresses absorbance broadly below ~2 kHz (Grais et al., PAPERS.md, arXiv
// 2103.02982, classify exactly these curves with standard ML heads). This
// module is the serving-side head for that workload: a log-spaced frequency
// grid, a StandardScaler + multiclass LogisticRegression over the curve
// (reusing the ml/ stack like core/screening.hpp does for the binary mode),
// and a Diagnosis-shaped answer so the serving plumbing treats both workload
// types uniformly. Curves come from tympanometer-class hardware, not the
// earphone mic — the simulator synthesizes them from the same eardrum physics
// (sim/absorbance.hpp).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/detector.hpp"
#include "ml/logistic.hpp"
#include "ml/scaler.hpp"

namespace earsonar::core {

inline constexpr double kWidebandLowHz = 226.0;  ///< clinical standard probe tone
inline constexpr double kWidebandHighHz = 8000.0;
inline constexpr std::size_t kWidebandBins = 64;

/// Log-spaced measurement grid over [kWidebandLowHz, kWidebandHighHz],
/// endpoints included — log spacing matches how immittance hardware reports
/// (per-octave resolution, denser where the effusion signature lives).
std::vector<double> wideband_frequency_grid(std::size_t bins = kWidebandBins);

struct WidebandConfig {
  std::size_t bins = kWidebandBins;
  ml::LogisticConfig logistic{.classes = kMeeStateCount, .epochs = 300};
};

/// Four-state screener over one absorbance curve.
class WidebandScreener {
 public:
  explicit WidebandScreener(WidebandConfig config = {});

  /// Fits scaler + softmax head on labeled curves (labels in [0, 4),
  /// rows of `bins` absorbance values in [0, 1]).
  void fit(const ml::Matrix& curves, const std::vector<std::size_t>& labels);

  /// Classifies one curve (length must equal the configured bin count).
  /// confidence = top-two probability margin; distance is unused (0).
  [[nodiscard]] Diagnosis classify(std::span<const double> absorbance) const;

  /// Per-state probabilities for one curve.
  [[nodiscard]] std::vector<double> probabilities(
      std::span<const double> absorbance) const;

  [[nodiscard]] bool fitted() const { return model_.fitted(); }
  [[nodiscard]] const WidebandConfig& config() const { return config_; }

 private:
  WidebandConfig config_;
  ml::StandardScaler scaler_;
  ml::LogisticRegression model_;
};

}  // namespace earsonar::core
