#include "core/features.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "dsp/dct.hpp"
#include "dsp/mel.hpp"

namespace earsonar::core {

namespace {

// Triangular mel-spaced filters across [low, high] applied to a uniform-grid
// band spectrum; returns log filter energies.
std::vector<double> mel_band_energies(const dsp::Spectrum& spectrum,
                                      std::size_t filter_count) {
  const double low = spectrum.frequency_hz.front();
  const double high = spectrum.frequency_hz.back();
  const double mel_lo = dsp::hz_to_mel(low);
  const double mel_hi = dsp::hz_to_mel(high);

  std::vector<double> edges(filter_count + 2);
  for (std::size_t i = 0; i < edges.size(); ++i)
    edges[i] = dsp::mel_to_hz(mel_lo + (mel_hi - mel_lo) * static_cast<double>(i) /
                                           static_cast<double>(edges.size() - 1));

  std::vector<double> energies(filter_count, 0.0);
  for (std::size_t f = 0; f < filter_count; ++f) {
    const double left = edges[f], center = edges[f + 1], right = edges[f + 2];
    for (std::size_t b = 0; b < spectrum.size(); ++b) {
      const double freq = spectrum.frequency_hz[b];
      double w = 0.0;
      if (freq > left && freq < center) w = (freq - left) / (center - left);
      else if (freq >= center && freq < right) w = (right - freq) / (right - center);
      energies[f] += w * spectrum.psd[b];
    }
    energies[f] = std::log(std::max(energies[f], 1e-12));
  }
  return energies;
}

// Least-squares slope of psd vs normalized frequency position.
double spectral_slope(const dsp::Spectrum& spectrum) {
  const std::size_t n = spectrum.size();
  double sx = 0.0, sy = 0.0, sxy = 0.0, sxx = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) / static_cast<double>(n - 1);
    sx += x;
    sy += spectrum.psd[i];
    sxy += x * spectrum.psd[i];
    sxx += x * x;
  }
  const double denom = static_cast<double>(n) * sxx - sx * sx;
  return denom > 0.0 ? (static_cast<double>(n) * sxy - sx * sy) / denom : 0.0;
}

// Frequency (normalized to [0,1] in-band) below which 85% of power lies.
double spectral_rolloff(const dsp::Spectrum& spectrum, double fraction = 0.85) {
  double total = 0.0;
  for (double v : spectrum.psd) total += v;
  if (total <= 0.0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < spectrum.size(); ++i) {
    acc += spectrum.psd[i];
    if (acc >= fraction * total)
      return static_cast<double>(i) / static_cast<double>(spectrum.size() - 1);
  }
  return 1.0;
}

}  // namespace

void FeatureConfig::validate() const {
  spectrum.validate();
  require(mfcc_coefficients >= 1 && mfcc_coefficients <= mfcc_filters,
          "FeatureConfig: mfcc_coefficients must be in [1, mfcc_filters]");
  require(time_groups >= 1, "FeatureConfig: need >= 1 time group");
  require(subband_powers >= 1, "FeatureConfig: need >= 1 subband");
  require(psd_samples >= 2, "FeatureConfig: need >= 2 psd samples");
}

FeatureExtractor::FeatureExtractor(FeatureConfig config)
    : config_(config), extractor_(config.spectrum) {
  config_.validate();
}

std::vector<double> FeatureExtractor::band_mfcc(const dsp::Spectrum& spectrum) const {
  require(spectrum.size() >= config_.mfcc_filters,
          "band_mfcc: spectrum grid coarser than the filterbank");
  const std::vector<double> log_energies =
      mel_band_energies(spectrum, config_.mfcc_filters);
  return dsp::dct2_truncated(log_energies, config_.mfcc_coefficients);
}

std::vector<double> FeatureExtractor::extract(
    const audio::Waveform& signal, const std::vector<EchoSegment>& echoes) const {
  return extract_full(signal, echoes).features;
}

FeatureExtractor::Result FeatureExtractor::extract_full(
    const audio::Waveform& signal, const std::vector<EchoSegment>& echoes) const {
  require_nonempty("FeatureExtractor echoes", echoes.size());

  // One window/FFT pass per echo; the group averages and the mean spectrum
  // below all reduce over these shared PSDs.
  const std::vector<dsp::Spectrum> per_echo = extractor_.extract_all(signal, echoes);
  return extract_full_from_psds(echoes, per_echo);
}

FeatureExtractor::Result FeatureExtractor::extract_full_from_psds(
    const std::vector<EchoSegment>& echoes,
    std::span<const dsp::Spectrum> per_echo) const {
  require_nonempty("FeatureExtractor echoes", echoes.size());
  require(per_echo.size() == echoes.size(),
          "extract_full_from_psds: one spectrum per echo");
  const std::span<const dsp::Spectrum> all = per_echo;

  std::vector<double> features;
  features.reserve(dimension());

  // --- 1. MFCCs of early / middle / late chirp-group average spectra. The
  // groups capture slow within-recording drift (movement, contact changes).
  const std::size_t groups = config_.time_groups;
  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t lo = g * echoes.size() / groups;
    std::size_t hi = (g + 1) * echoes.size() / groups;
    if (hi <= lo) hi = std::min(lo + 1, echoes.size());
    const dsp::Spectrum spec = extractor_.average_of(all.subspan(lo, hi - lo));
    const std::vector<double> mfcc = band_mfcc(spec);
    features.insert(features.end(), mfcc.begin(), mfcc.end());
  }

  // Whole-recording mean spectrum drives the remaining features. The
  // absolute level carries the absorbed-energy measurement; a peak-normalized
  // copy carries the band shape.
  dsp::Spectrum mean_spec = extractor_.average_of(all);
  const dsp::Spectrum shape = dsp::normalize_peak(mean_spec);

  // --- 2. Log sub-band powers (absolute: the absorption level).
  const std::size_t bands = config_.subband_powers;
  for (std::size_t b = 0; b < bands; ++b) {
    const std::size_t lo = b * mean_spec.size() / bands;
    const std::size_t hi = std::max(lo + 1, (b + 1) * mean_spec.size() / bands);
    double acc = 0.0;
    for (std::size_t i = lo; i < hi && i < mean_spec.size(); ++i) acc += mean_spec.psd[i];
    features.push_back(std::log(std::max(acc, 1e-12)));
  }

  // --- 3. Uniform samples of the normalized PSD curve (the band shape).
  for (std::size_t s = 0; s < config_.psd_samples; ++s) {
    const std::size_t idx =
        s * (shape.size() - 1) / std::max<std::size_t>(1, config_.psd_samples - 1);
    features.push_back(shape.psd[idx]);
  }

  // --- 4. Spectral-shape features.
  const double band_low = config_.spectrum.band_low_hz;
  const double band_high = config_.spectrum.band_high_hz;
  const dsp::SpectralDip dip = dsp::find_dip(shape, band_low, band_high);
  const double band_span = band_high - band_low;
  features.push_back(dip.frequency_hz > 0.0 ? (dip.frequency_hz - band_low) / band_span
                                            : 0.5);
  features.push_back(dip.depth);
  features.push_back((dsp::spectral_centroid(shape) - band_low) / band_span);
  const double mid = 0.5 * (band_low + band_high);
  const double low_power = dsp::band_power(shape, band_low, mid);
  const double high_power = dsp::band_power(shape, mid, band_high);
  features.push_back(low_power / std::max(high_power, 1e-12));
  features.push_back(spectral_slope(shape));
  features.push_back(spectral_rolloff(shape));

  // --- 5. Summary statistics of the PSD (paper's "statistic features").
  // Computed on the absolute spectrum: its mean/extrema measure absorbed
  // energy, exactly the paper's observable.
  const SummaryStats stats = summarize(mean_spec.psd);
  features.push_back(stats.mean);
  features.push_back(stats.stddev);
  features.push_back(stats.min);
  features.push_back(stats.max);
  features.push_back(stats.skewness);
  features.push_back(stats.kurtosis_excess);

  ensure(features.size() == dimension(), "FeatureExtractor: layout drift");
  return {std::move(features), std::move(mean_spec)};
}

std::string feature_name(const FeatureConfig& config, std::size_t index) {
  require(index < config.dimension(), "feature_name: index out of range");
  std::size_t cursor = index;
  const std::size_t mfcc_total = config.time_groups * config.mfcc_coefficients;
  if (cursor < mfcc_total) {
    const std::size_t group = cursor / config.mfcc_coefficients;
    const std::size_t coeff = cursor % config.mfcc_coefficients;
    return "mfcc[g" + std::to_string(group) + "][" + std::to_string(coeff) + "]";
  }
  cursor -= mfcc_total;
  if (cursor < config.subband_powers) return "subband_log_power[" + std::to_string(cursor) + "]";
  cursor -= config.subband_powers;
  if (cursor < config.psd_samples) return "psd_sample[" + std::to_string(cursor) + "]";
  cursor -= config.psd_samples;
  static const char* kShape[] = {"dip_frequency", "dip_depth",      "centroid",
                                 "band_ratio",    "spectral_slope", "rolloff"};
  if (cursor < 6) return kShape[cursor];
  cursor -= 6;
  static const char* kStats[] = {"mean", "stddev", "min", "max", "skewness", "kurtosis"};
  return kStats[cursor];
}

}  // namespace earsonar::core
