// Continuous severity estimation (extension beyond the paper).
//
// The paper grades effusion into four discrete states; clinicians also care
// about *how much* fluid sits behind the drum (it predicts hearing loss and
// drives the drainage decision). The simulator knows the true fill fraction,
// so this extension regresses it from the same 105 acoustic features with a
// ridge head and evaluates against ground truth.
#pragma once

#include <cstddef>
#include <vector>

#include "ml/ridge.hpp"
#include "ml/scaler.hpp"

namespace earsonar::core {

struct SeverityConfig {
  ml::RidgeConfig ridge{.lambda = 1.0};
};

/// Severity = estimated middle-ear fill fraction in [0, 1] (0 = dry).
class SeverityEstimator {
 public:
  explicit SeverityEstimator(SeverityConfig config = {});

  /// Fits on feature vectors with ground-truth fill fractions in [0, 1].
  void fit(const ml::Matrix& features, const std::vector<double>& fill_fractions);

  /// Estimated fill fraction, clamped to [0, 1].
  [[nodiscard]] double estimate(const std::vector<double>& features) const;

  [[nodiscard]] bool fitted() const { return model_.fitted(); }

 private:
  SeverityConfig config_;
  ml::StandardScaler scaler_;
  ml::RidgeRegression model_;
};

/// Mean absolute error between estimates and ground truth; the severity
/// bench reports this next to the fill-estimate/truth correlation.
double mean_absolute_error(const std::vector<double>& estimates,
                           const std::vector<double>& truths);

}  // namespace earsonar::core
