#include "core/event_detect.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace earsonar::core {

void EventDetectorConfig::validate() const {
  require(window >= 4, "EventDetectorConfig: window must be >= 4");
  require(smooth >= 2 && smooth <= window,
          "EventDetectorConfig: smooth must be in [2, window]");
  require(start_threshold_k > 0.0, "EventDetectorConfig: threshold must be > 0");
  require(prominence >= 1.0, "EventDetectorConfig: prominence must be >= 1");
  require(floor_prominence >= 1.0,
          "EventDetectorConfig: floor_prominence must be >= 1");
  require(min_length >= 1, "EventDetectorConfig: min_length must be >= 1");
  require(max_length > min_length, "EventDetectorConfig: max_length must exceed min");
}

AdaptiveEventDetector::AdaptiveEventDetector(EventDetectorConfig config)
    : config_(config) {
  config_.validate();
}

std::vector<Event> AdaptiveEventDetector::detect(const audio::Waveform& signal) const {
  require_nonempty("event detection input", signal.size());
  const std::vector<double>& x = signal.samples();
  const std::size_t n = x.size();

  // Instantaneous power and its centered moving average A(i) over `smooth`
  // samples: the oscillating carrier makes raw |X(i)|^2 cross zero every half
  // cycle, so thresholds act on the smoothed envelope. One fused pass — the
  // power term leaving the moving window is recomputed from x (bit-identical
  // to re-reading it) so no per-sample power array is materialized, and the
  // global-mean accumulation rides along in its own accumulator, in the same
  // element order as a separate loop.
  const std::size_t s = std::min(config_.smooth, n);
  const std::size_t half = s / 2;
  // Reused per-thread buffer: a whole-recording envelope is ~400 KB, and a
  // fresh allocation pays mmap + page-fault cost every call. The fused pass
  // below writes every center in [0, n - half); only the last `half` centers
  // never receive a completed moving average and must be zeroed explicitly.
  thread_local std::vector<double> envelope;
  envelope.resize(n);
  std::fill(envelope.end() - static_cast<std::ptrdiff_t>(half), envelope.end(), 0.0);
  double run = 0.0;
  double global_mean = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double p = x[i] * x[i];
    global_mean += p;
    run += p;
    if (i >= s) run -= x[i - s] * x[i - s];
    const std::size_t count = std::min(i + 1, s);
    const std::size_t center = i >= half ? i - half : 0;
    envelope[center] = run / static_cast<double>(count);
  }

  // Global mean power: the closing threshold mu-bar of Eq. 6-7.
  global_mean /= static_cast<double>(n);

  // Robust noise-floor estimate for the prominence gate.
  const double floor_env = std::max(median(envelope), 1e-30);

  // Running exponential estimates mu(i), sigma(i) with 1/W weighting (Eq. 6).
  // They adapt to the noise floor between events, so an arriving chirp pops
  // far above mu + k*sigma.
  const double alpha = 1.0 / static_cast<double>(config_.window);
  double mu = envelope[0];
  double sigma = 0.0;

  std::vector<Event> events;
  bool in_event = false;
  Event current;
  for (std::size_t i = 0; i < n; ++i) {
    const double e = envelope[i];
    if (!in_event) {
      if (e > mu + config_.start_threshold_k * sigma && e > global_mean) {
        in_event = true;
        current.start = i;
      } else {
        // Track the noise floor only outside events, so the event's own
        // energy cannot inflate the threshold (Eq. 6's sliding update).
        const double dev = std::abs(e - mu);
        mu = alpha * e + (1.0 - alpha) * mu;
        sigma = alpha * dev + (1.0 - alpha) * sigma;
      }
    } else {
      const bool too_long = i - current.start >= config_.max_length;
      const bool quiet = e < global_mean;  // |X(i)|^2 < mu-bar closes the event
      if (too_long || quiet || i + 1 == n) {
        current.end = i + 1;
        in_event = false;
        // Length and prominence gates: real chirp events tower over the
        // recording's mean power; noise wiggles do not.
        double peak_env = 0.0;
        for (std::size_t j = current.start; j < current.end; ++j)
          peak_env = std::max(peak_env, envelope[j]);
        if (current.length() >= config_.min_length &&
            peak_env >= config_.prominence * global_mean &&
            peak_env >= config_.floor_prominence * floor_env)
          events.push_back(current);
      }
    }
  }

  // Expand by the smoothing half-width (the envelope blurs edges by ~half),
  // then merge events separated by less than merge_gap.
  std::vector<Event> merged;
  for (Event e : events) {
    e.start = e.start > half ? e.start - half : 0;
    e.end = std::min(n, e.end + half);
    if (!merged.empty() && e.start < merged.back().end + config_.merge_gap &&
        e.end - merged.back().start <= config_.max_length) {
      merged.back().end = std::max(merged.back().end, e.end);
    } else {
      merged.push_back(e);
    }
  }
  return merged;
}

std::size_t aligned_event_start(std::span<const double> signal, const Event& event) {
  require(event.start < event.end && event.end <= signal.size(),
          "aligned_event_start: event outside signal");
  constexpr std::size_t kSmooth = 4;
  constexpr double kOnsetFraction = 0.1;
  double peak = 0.0;
  for (std::size_t i = event.start; i < event.end; ++i)
    peak = std::max(peak, std::abs(signal[i]));
  if (peak <= 0.0) return event.start;
  double run = 0.0;
  for (std::size_t i = event.start; i < event.end; ++i) {
    run += std::abs(signal[i]);
    if (i >= event.start + kSmooth) run -= std::abs(signal[i - kSmooth]);
    const double env = run / static_cast<double>(std::min(i - event.start + 1, kSmooth));
    if (env >= kOnsetFraction * peak)
      return i > event.start + 2 ? i - 2 : event.start;
  }
  return event.start;
}

// ------------------------------------------------------- streaming variant

namespace {
// Log-domain histogram layout for the causal envelope median: 512 bins
// spanning envelope values 1e-30 .. 1e6 geometrically.
constexpr double kEnvLogFloor = -30.0;
constexpr double kEnvLogSpan = 36.0;

std::size_t envelope_bin(double env, std::size_t bins) {
  if (!(env > 1e-30)) return 0;
  const double t = (std::log10(env) - kEnvLogFloor) / kEnvLogSpan;
  const auto b = static_cast<long>(t * static_cast<double>(bins));
  if (b < 0) return 0;
  if (b >= static_cast<long>(bins)) return bins - 1;
  return static_cast<std::size_t>(b);
}

double envelope_bin_center(std::size_t bin, std::size_t bins) {
  const double t = (static_cast<double>(bin) + 0.5) / static_cast<double>(bins);
  return std::pow(10.0, kEnvLogFloor + t * kEnvLogSpan);
}
}  // namespace

StreamingEventDetector::StreamingEventDetector(EventDetectorConfig config)
    : config_(config) {
  config_.validate();
  power_ring_.assign(config_.smooth, 0.0);
}

double StreamingEventDetector::mean_power() const {
  return n_ == 0 ? 0.0 : power_sum_ / static_cast<double>(n_);
}

double StreamingEventDetector::envelope_median() const {
  if (env_count_ == 0) return 0.0;
  std::size_t seen = 0;
  for (std::size_t b = 0; b < env_histogram_.size(); ++b) {
    seen += env_histogram_[b];
    if (2 * seen >= env_count_) return envelope_bin_center(b, env_histogram_.size());
  }
  return envelope_bin_center(env_histogram_.size() - 1, env_histogram_.size());
}

void StreamingEventDetector::close_event(std::size_t end_center) {
  in_event_ = false;
  Event closed{event_start_, end_center};
  const double mean = mean_power();
  const double floor_env = std::max(envelope_median(), 1e-30);
  if (closed.length() < config_.min_length ||
      event_peak_env_ < config_.prominence * mean ||
      event_peak_env_ < config_.floor_prominence * floor_env)
    return;
  // Expand by the smoothing half-width. The close happens at center c once
  // sample c + half has been consumed, so end + half never outruns the
  // samples seen (flush-closed events are clamped by the caller instead).
  const std::size_t half = config_.smooth / 2;
  closed.start = closed.start > half ? closed.start - half : 0;
  closed.end = std::min(n_, closed.end + half);
  if (has_pending_ && closed.start < pending_.end + config_.merge_gap &&
      closed.end - pending_.start <= config_.max_length) {
    pending_.end = std::max(pending_.end, closed.end);
  } else if (has_pending_) {
    // The caller collects the displaced event via settle_pending.
    std::swap(pending_, closed);
    settled_.push_back(closed);
  } else {
    pending_ = closed;
    has_pending_ = true;
  }
}

void StreamingEventDetector::settle_pending(std::vector<Event>& out, bool force) {
  for (Event& e : settled_) out.push_back(e);
  settled_.clear();
  if (!has_pending_) return;
  // A future event opening at center c expands to start c - half; it can only
  // merge while c - half < pending.end + merge_gap. Once the scan is past
  // that horizon (and not inside an event that opened before it), the pending
  // event is final.
  const std::size_t half = config_.smooth / 2;
  const std::size_t horizon = pending_.end + config_.merge_gap + half;
  if (force || (!in_event_ && centers_ >= horizon)) {
    out.push_back(pending_);
    has_pending_ = false;
  }
}

void StreamingEventDetector::consume_envelope(double env) {
  const std::size_t c = centers_++;
  if (!mu_seeded_) {
    mu_ = env;  // detect() seeds mu with the first envelope value
    mu_seeded_ = true;
  }
  if (!in_event_) {
    if (env > mu_ + config_.start_threshold_k * sigma_ && env > mean_power()) {
      in_event_ = true;
      event_start_ = c;
      event_peak_env_ = env;
    } else {
      const double alpha = 1.0 / static_cast<double>(config_.window);
      const double dev = std::abs(env - mu_);
      mu_ = alpha * env + (1.0 - alpha) * mu_;
      sigma_ = alpha * dev + (1.0 - alpha) * sigma_;
    }
  } else {
    event_peak_env_ = std::max(event_peak_env_, env);
    const bool too_long = c - event_start_ >= config_.max_length;
    const bool quiet = env < mean_power();
    if (too_long || quiet) close_event(c + 1);
  }
}

std::vector<Event> StreamingEventDetector::push(std::span<const double> chunk) {
  require(!flushed_, "StreamingEventDetector: push after flush");
  std::vector<Event> out;
  const std::size_t s = config_.smooth;
  const std::size_t half = s / 2;
  for (double x : chunk) {
    const double p = x * x;
    power_sum_ += p;
    power_run_ += p;
    if (n_ >= s) power_run_ -= power_ring_[ring_pos_];
    power_ring_[ring_pos_] = p;
    ring_pos_ = (ring_pos_ + 1) % s;
    ++n_;
    // The centered moving average for center c is complete once sample
    // c + half has arrived; emit it to the scan in center order.
    if (n_ >= half + 1) {
      const std::size_t count = std::min(n_, s);
      const double env = power_run_ / static_cast<double>(count);
      env_histogram_[envelope_bin(env, env_histogram_.size())]++;
      ++env_count_;
      consume_envelope(env);
    }
  }
  settle_pending(out, /*force=*/false);
  return out;
}

std::vector<Event> StreamingEventDetector::flush() {
  require(!flushed_, "StreamingEventDetector: flush twice");
  flushed_ = true;
  std::vector<Event> out;
  // The last `half` centers never receive a completed moving average; the
  // whole-signal pass leaves them at zero, which closes any open event.
  while (centers_ < n_) {
    env_histogram_[envelope_bin(0.0, env_histogram_.size())]++;
    ++env_count_;
    consume_envelope(0.0);
  }
  if (in_event_) close_event(centers_);
  settle_pending(out, /*force=*/true);
  return out;
}

}  // namespace earsonar::core
