#include "core/event_detect.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace earsonar::core {

void EventDetectorConfig::validate() const {
  require(window >= 4, "EventDetectorConfig: window must be >= 4");
  require(smooth >= 2 && smooth <= window,
          "EventDetectorConfig: smooth must be in [2, window]");
  require(start_threshold_k > 0.0, "EventDetectorConfig: threshold must be > 0");
  require(prominence >= 1.0, "EventDetectorConfig: prominence must be >= 1");
  require(floor_prominence >= 1.0,
          "EventDetectorConfig: floor_prominence must be >= 1");
  require(min_length >= 1, "EventDetectorConfig: min_length must be >= 1");
  require(max_length > min_length, "EventDetectorConfig: max_length must exceed min");
}

AdaptiveEventDetector::AdaptiveEventDetector(EventDetectorConfig config)
    : config_(config) {
  config_.validate();
}

std::vector<Event> AdaptiveEventDetector::detect(const audio::Waveform& signal) const {
  require_nonempty("event detection input", signal.size());
  const std::vector<double>& x = signal.samples();
  const std::size_t n = x.size();

  // Instantaneous power and its centered moving average A(i) over `smooth`
  // samples: the oscillating carrier makes raw |X(i)|^2 cross zero every half
  // cycle, so thresholds act on the smoothed envelope.
  std::vector<double> power(n);
  for (std::size_t i = 0; i < n; ++i) power[i] = x[i] * x[i];

  const std::size_t s = std::min(config_.smooth, n);
  const std::size_t half = s / 2;
  std::vector<double> envelope(n, 0.0);
  double run = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    run += power[i];
    if (i >= s) run -= power[i - s];
    const std::size_t count = std::min(i + 1, s);
    const std::size_t center = i >= half ? i - half : 0;
    envelope[center] = run / static_cast<double>(count);
  }

  // Global mean power: the closing threshold mu-bar of Eq. 6-7.
  double global_mean = 0.0;
  for (double p : power) global_mean += p;
  global_mean /= static_cast<double>(n);

  // Robust noise-floor estimate for the prominence gate.
  const double floor_env = std::max(median(envelope), 1e-30);

  // Running exponential estimates mu(i), sigma(i) with 1/W weighting (Eq. 6).
  // They adapt to the noise floor between events, so an arriving chirp pops
  // far above mu + k*sigma.
  const double alpha = 1.0 / static_cast<double>(config_.window);
  double mu = envelope[0];
  double sigma = 0.0;

  std::vector<Event> events;
  bool in_event = false;
  Event current;
  for (std::size_t i = 0; i < n; ++i) {
    const double e = envelope[i];
    if (!in_event) {
      if (e > mu + config_.start_threshold_k * sigma && e > global_mean) {
        in_event = true;
        current.start = i;
      } else {
        // Track the noise floor only outside events, so the event's own
        // energy cannot inflate the threshold (Eq. 6's sliding update).
        const double dev = std::abs(e - mu);
        mu = alpha * e + (1.0 - alpha) * mu;
        sigma = alpha * dev + (1.0 - alpha) * sigma;
      }
    } else {
      const bool too_long = i - current.start >= config_.max_length;
      const bool quiet = e < global_mean;  // |X(i)|^2 < mu-bar closes the event
      if (too_long || quiet || i + 1 == n) {
        current.end = i + 1;
        in_event = false;
        // Length and prominence gates: real chirp events tower over the
        // recording's mean power; noise wiggles do not.
        double peak_env = 0.0;
        for (std::size_t j = current.start; j < current.end; ++j)
          peak_env = std::max(peak_env, envelope[j]);
        if (current.length() >= config_.min_length &&
            peak_env >= config_.prominence * global_mean &&
            peak_env >= config_.floor_prominence * floor_env)
          events.push_back(current);
      }
    }
  }

  // Expand by the smoothing half-width (the envelope blurs edges by ~half),
  // then merge events separated by less than merge_gap.
  std::vector<Event> merged;
  for (Event e : events) {
    e.start = e.start > half ? e.start - half : 0;
    e.end = std::min(n, e.end + half);
    if (!merged.empty() && e.start < merged.back().end + config_.merge_gap &&
        e.end - merged.back().start <= config_.max_length) {
      merged.back().end = std::max(merged.back().end, e.end);
    } else {
      merged.push_back(e);
    }
  }
  return merged;
}

}  // namespace earsonar::core
