// Detector-model persistence.
//
// A deployed screener trains once (in the clinic, on labeled data) and then
// runs for weeks on a phone; the fitted detection head must survive restarts.
// Models serialize to a small versioned text format — human-inspectable,
// diff-able, and independent of platform endianness.
#pragma once

#include <iosfwd>
#include <string>

#include "core/detector.hpp"

namespace earsonar::core {

/// Serializes a fitted detector (scaler moments, selected feature indices,
/// centroids, cluster->state mapping) to a stream. Throws std::invalid_argument
/// when the detector is not fitted.
void save_detector(const MeeDetector& detector, std::ostream& out);

/// Writes save_detector output to `path`; throws std::runtime_error on I/O
/// failure.
void save_detector_file(const MeeDetector& detector, const std::string& path);

/// Snapshot of the learned state, loadable without re-training.
struct DetectorModel {
  std::vector<double> scaler_mean;
  std::vector<double> scaler_std;
  std::vector<std::size_t> selected_features;
  ml::Matrix centroids;                       ///< k rows in reduced space
  std::vector<std::size_t> cluster_to_state;

  /// Diagnoses a raw (unscaled, unreduced) feature vector.
  [[nodiscard]] Diagnosis predict(const std::vector<double>& features) const;

  /// Dimension of the raw feature vectors this model expects.
  [[nodiscard]] std::size_t feature_dimension() const { return scaler_mean.size(); }
};

/// Rejects a structurally broken model: mismatched dimensions, out-of-range
/// indices, or non-finite learned values (a single NaN centroid silently
/// poisons every later prediction). Throws std::runtime_error. Called by
/// load_detector; also the gate for programmatically installed models.
void validate_model(const DetectorModel& model);

/// Parses a model previously written by save_detector. Throws
/// std::runtime_error on malformed input (bad magic, version, truncation,
/// inconsistent dimensions, non-finite values).
DetectorModel load_detector(std::istream& in);

/// Reads load_detector input from `path`.
DetectorModel load_detector_file(const std::string& path);

/// Extracts the loadable snapshot from a fitted detector (the exact state
/// save_detector writes). Exposed so tests can compare save/load round trips.
DetectorModel snapshot(const MeeDetector& detector);

}  // namespace earsonar::core
