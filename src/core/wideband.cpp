#include "core/wideband.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace earsonar::core {

std::vector<double> wideband_frequency_grid(std::size_t bins) {
  require(bins >= 2, "wideband_frequency_grid: bins must be >= 2");
  std::vector<double> grid;
  grid.reserve(bins);
  const double log_lo = std::log(kWidebandLowHz);
  const double log_hi = std::log(kWidebandHighHz);
  for (std::size_t i = 0; i < bins; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(bins - 1);
    grid.push_back(std::exp(log_lo + (log_hi - log_lo) * t));
  }
  return grid;
}

WidebandScreener::WidebandScreener(WidebandConfig config)
    : config_(config), model_(config.logistic) {
  require(config_.bins >= 2, "WidebandConfig: bins must be >= 2");
}

void WidebandScreener::fit(const ml::Matrix& curves,
                           const std::vector<std::size_t>& labels) {
  require_nonempty("WidebandScreener::fit curves", curves.size());
  require(curves.size() == labels.size(),
          "WidebandScreener::fit: curves and labels must align");
  for (const std::vector<double>& curve : curves)
    require(curve.size() == config_.bins,
            "WidebandScreener::fit: curve length must equal configured bins");
  scaler_.fit(curves);
  model_.fit(scaler_.transform(curves), labels);
}

std::vector<double> WidebandScreener::probabilities(
    std::span<const double> absorbance) const {
  require(fitted(), "WidebandScreener: not fitted");
  require(absorbance.size() == config_.bins,
          "WidebandScreener: curve length must equal configured bins");
  const std::vector<double> row(absorbance.begin(), absorbance.end());
  return model_.predict_proba(scaler_.transform(row));
}

Diagnosis WidebandScreener::classify(std::span<const double> absorbance) const {
  const std::vector<double> probs = probabilities(absorbance);
  Diagnosis diagnosis;
  diagnosis.state = static_cast<std::size_t>(
      std::max_element(probs.begin(), probs.end()) - probs.begin());
  std::vector<double> sorted = probs;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  diagnosis.confidence =
      std::clamp(sorted[0] - (sorted.size() > 1 ? sorted[1] : 0.0), 0.0, 1.0);
  diagnosis.distance = 0.0;
  return diagnosis;
}

}  // namespace earsonar::core
