// Adaptive-energy event detection (paper §IV-B2, Eq. 6-7).
//
// Each transmitted chirp and its echoes form one high-energy event in the
// microphone stream. A sliding window tracks the mean and standard deviation
// of signal power with exponential updates; a sample whose power exceeds
// mu(i) + sigma(i) opens an event, and the event closes when the windowed
// power falls back below the global mean power.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "audio/waveform.hpp"

namespace earsonar::core {

struct Event {
  std::size_t start = 0;  ///< first sample of the event
  std::size_t end = 0;    ///< one past the last sample

  [[nodiscard]] std::size_t length() const { return end - start; }
};

struct EventDetectorConfig {
  std::size_t window = 48;        ///< W, running-statistics length (1 ms @ 48 kHz)
  std::size_t smooth = 16;        ///< centered power-envelope smoothing length
  double start_threshold_k = 1.0; ///< open at mu + k * sigma
  /// An event's peak envelope must exceed this multiple of the global mean
  /// power; stationary noise wiggles correlate over the smoothing window and
  /// would otherwise register as short events.
  double prominence = 3.0;
  /// The peak must also exceed this multiple of the *median* envelope — a
  /// robust noise-floor estimate (for a duty-cycled chirp train the median is
  /// the inter-chirp floor; for stationary noise it is the noise mean, which
  /// envelope fluctuations essentially never exceed six-fold).
  double floor_prominence = 6.0;
  std::size_t min_length = 16;    ///< discard shorter blips
  std::size_t max_length = 480;   ///< clamp runaway events (two intervals)
  std::size_t merge_gap = 24;     ///< merge events closer than this

  void validate() const;
};

class AdaptiveEventDetector {
 public:
  explicit AdaptiveEventDetector(EventDetectorConfig config = {});

  /// All detected events, in order, non-overlapping.
  [[nodiscard]] std::vector<Event> detect(const audio::Waveform& signal) const;

  [[nodiscard]] const EventDetectorConfig& config() const { return config_; }

 private:
  EventDetectorConfig config_;
};

/// Re-anchors an event at the chirp onset: the first sample whose short-run
/// smoothed envelope crosses 10% of the event's peak envelope. Event
/// detection opens on an adaptive threshold whose exact crossing moves with
/// the noise floor; this re-alignment pins every analysis window to the same
/// point of the chirp. `signal[i]` is the sample at absolute index i; the
/// event's indices must lie inside the signal.
[[nodiscard]] std::size_t aligned_event_start(std::span<const double> signal,
                                              const Event& event);

/// Chunk-at-a-time event detection for streaming ingestion.
///
/// The whole-signal detect() gates events against two recording-global
/// statistics (mean power and median envelope) that only exist once the
/// recording has ended, so its exact decisions are inherently non-causal. The
/// streaming detector runs the same envelope arithmetic and the same
/// open/close state machine, but substitutes causal statistics: the running
/// mean power of the samples seen so far, and a fixed-resolution log-domain
/// histogram median of the envelope so far. Every update is per-sample, so
/// the emitted events depend only on the sample sequence — never on how it
/// was cut into chunks — and memory stays O(window), independent of stream
/// length.
///
/// Events from push()/flush() are therefore *provisional* relative to
/// detect() on the complete recording (the serving layer's
/// StreamingSession::finish() re-runs the exact whole-signal pass); on
/// stationary chirp trains the two agree after the first few intervals.
class StreamingEventDetector {
 public:
  explicit StreamingEventDetector(EventDetectorConfig config = {});

  /// Consumes the next chunk (any size, including empty) and returns the
  /// events this chunk finalized, in order, with absolute sample indices.
  /// An event is finalized once no future sample could extend or merge it.
  std::vector<Event> push(std::span<const double> chunk);

  /// Ends the stream: closes a still-open event and returns every event not
  /// yet finalized. The detector is exhausted afterwards (push() no longer
  /// accepts samples).
  std::vector<Event> flush();

  [[nodiscard]] std::size_t samples_seen() const { return n_; }
  /// Running mean power of the samples seen so far (the causal stand-in for
  /// detect()'s recording-global closing threshold).
  [[nodiscard]] double mean_power() const;
  [[nodiscard]] const EventDetectorConfig& config() const { return config_; }

 private:
  void consume_envelope(double env);
  void close_event(std::size_t end_center);
  void settle_pending(std::vector<Event>& out, bool force);
  [[nodiscard]] double envelope_median() const;

  EventDetectorConfig config_;

  // Envelope: centered moving average of instantaneous power over `smooth`
  // samples, reproduced incrementally with a power ring of that length.
  std::vector<double> power_ring_;
  std::size_t ring_pos_ = 0;
  double power_run_ = 0.0;
  std::size_t n_ = 0;             ///< samples consumed
  std::size_t centers_ = 0;       ///< envelope centers emitted (= n_ - half once warm)

  // Causal statistics.
  double power_sum_ = 0.0;
  std::array<std::size_t, 512> env_histogram_{};  ///< log-domain envelope counts
  std::size_t env_count_ = 0;

  // Scan state (mirrors detect()'s loop).
  double mu_ = 0.0;
  double sigma_ = 0.0;
  bool mu_seeded_ = false;
  bool in_event_ = false;
  std::size_t event_start_ = 0;
  double event_peak_env_ = 0.0;

  // Last event that passed the gates but might still merge with a successor,
  // plus events displaced by a non-merging successor, awaiting collection.
  bool has_pending_ = false;
  Event pending_;
  std::vector<Event> settled_;
  bool flushed_ = false;
};

}  // namespace earsonar::core
