// Adaptive-energy event detection (paper §IV-B2, Eq. 6-7).
//
// Each transmitted chirp and its echoes form one high-energy event in the
// microphone stream. A sliding window tracks the mean and standard deviation
// of signal power with exponential updates; a sample whose power exceeds
// mu(i) + sigma(i) opens an event, and the event closes when the windowed
// power falls back below the global mean power.
#pragma once

#include <cstddef>
#include <vector>

#include "audio/waveform.hpp"

namespace earsonar::core {

struct Event {
  std::size_t start = 0;  ///< first sample of the event
  std::size_t end = 0;    ///< one past the last sample

  [[nodiscard]] std::size_t length() const { return end - start; }
};

struct EventDetectorConfig {
  std::size_t window = 48;        ///< W, running-statistics length (1 ms @ 48 kHz)
  std::size_t smooth = 16;        ///< centered power-envelope smoothing length
  double start_threshold_k = 1.0; ///< open at mu + k * sigma
  /// An event's peak envelope must exceed this multiple of the global mean
  /// power; stationary noise wiggles correlate over the smoothing window and
  /// would otherwise register as short events.
  double prominence = 3.0;
  /// The peak must also exceed this multiple of the *median* envelope — a
  /// robust noise-floor estimate (for a duty-cycled chirp train the median is
  /// the inter-chirp floor; for stationary noise it is the noise mean, which
  /// envelope fluctuations essentially never exceed six-fold).
  double floor_prominence = 6.0;
  std::size_t min_length = 16;    ///< discard shorter blips
  std::size_t max_length = 480;   ///< clamp runaway events (two intervals)
  std::size_t merge_gap = 24;     ///< merge events closer than this

  void validate() const;
};

class AdaptiveEventDetector {
 public:
  explicit AdaptiveEventDetector(EventDetectorConfig config = {});

  /// All detected events, in order, non-overlapping.
  [[nodiscard]] std::vector<Event> detect(const audio::Waveform& signal) const;

  [[nodiscard]] const EventDetectorConfig& config() const { return config_; }

 private:
  EventDetectorConfig config_;
};

}  // namespace earsonar::core
