#include "core/segment.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "dsp/convolution.hpp"

namespace earsonar::core {

void SegmenterConfig::validate() const {
  require(min_support >= 4, "SegmenterConfig: min_support must be >= 4");
  require(parity_threshold > 0.5 && parity_threshold < 1.0,
          "SegmenterConfig: parity_threshold must be in (0.5, 1)");
  require(min_distance_m > 0.0 && min_distance_m < max_distance_m,
          "SegmenterConfig: need 0 < min_distance < max_distance");
  require_positive("SegmenterConfig.sample_rate", sample_rate);
  require_positive("SegmenterConfig.chirp_duration_s", chirp_duration_s);
  require(chirp_interval_s >= chirp_duration_s,
          "SegmenterConfig: interval must be >= duration");
}

ParityEchoSegmenter::ParityEchoSegmenter(SegmenterConfig config) : config_(config) {
  config_.validate();
}

ParityEnergies parity_energies(std::span<const double> x, double n0) {
  require_nonempty("parity input", x.size());
  // xe[n] = (x[n] + x[2*n0 - n]) / 2, xo[n] = (x[n] - x[2*n0 - n]) / 2,
  // with zero extension outside the support.
  const auto at = [&](double idx) -> double {
    // 2*n0 is integral, so mirrored indices stay integral when idx is.
    if (idx < 0.0 || idx > static_cast<double>(x.size() - 1)) return 0.0;
    return x[static_cast<std::size_t>(idx)];
  };
  ParityEnergies energies;
  for (std::size_t n = 0; n < x.size(); ++n) {
    const double mirrored = at(2.0 * n0 - static_cast<double>(n));
    const double xe = 0.5 * (x[n] + mirrored);
    const double xo = 0.5 * (x[n] - mirrored);
    energies.even += xe * xe;
    energies.odd += xo * xo;
  }
  return energies;
}

std::vector<SymmetryCandidate> ParityEchoSegmenter::candidates(
    std::span<const double> x) const {
  std::vector<SymmetryCandidate> out;
  if (x.size() < config_.min_support) return out;

  // Step 1: auto-convolution; local maxima of |(x*x)[m]| are candidate
  // symmetry points at n0 = m / 2.
  const std::vector<double> ac = dsp::autoconvolve(x);
  std::vector<double> mag(ac.size());
  for (std::size_t i = 0; i < ac.size(); ++i) mag[i] = std::abs(ac[i]);

  const std::size_t support = config_.min_support;
  const std::size_t half = support / 2;

  for (std::size_t m = 1; m + 1 < mag.size(); ++m) {
    if (!(mag[m] >= mag[m - 1] && mag[m] >= mag[m + 1])) continue;
    const double n0 = static_cast<double>(m) / 2.0;
    if (n0 < static_cast<double>(half) ||
        n0 > static_cast<double>(x.size() - 1) - static_cast<double>(half))
      continue;

    // Step 2: parity-energy validation on a fixed-length subsequence y
    // centered at the candidate.
    const std::size_t y_start = static_cast<std::size_t>(std::floor(n0)) - half;
    const std::size_t y_len = std::min(support, x.size() - y_start);
    std::span<const double> y = x.subspan(y_start, y_len);
    const double local_center = n0 - static_cast<double>(y_start);
    const ParityEnergies pe = parity_energies(y, local_center);
    const double total = pe.even + pe.odd;
    if (total <= 0.0) continue;
    const double ratio = std::max(pe.even, pe.odd) / total;
    if (ratio < config_.parity_threshold) continue;

    SymmetryCandidate cand;
    cand.center = n0;
    cand.parity_ratio = ratio;
    cand.energy = total;
    out.push_back(cand);
  }
  return out;
}

std::optional<EchoSegment> ParityEchoSegmenter::segment(const audio::Waveform& signal,
                                                        const Event& event) const {
  return segment(std::span<const double>(signal.samples()), event, 0);
}

std::optional<EchoSegment> ParityEchoSegmenter::segment(std::span<const double> signal,
                                                        const Event& event,
                                                        std::size_t signal_offset) const {
  require(event.start >= signal_offset &&
              event.end - signal_offset <= signal.size() && event.start < event.end,
          "segment: event outside signal");
  std::span<const double> x = signal.subspan(event.start - signal_offset, event.length());

  const double fs = config_.sample_rate;
  const double min_offset = echo_delay_seconds(config_.min_distance_m) * fs;
  const double max_offset = echo_delay_seconds(config_.max_distance_m) * fs;
  if (static_cast<double>(x.size()) < min_offset + 4.0) return std::nullopt;

  // The direct (speaker-to-mic) pulse is too weak to locate by amplitude
  // behind the shadowed microphone, but its timing is known: the app emits
  // chirps on the interval grid, so the direct pulse of this event peaks T/2
  // after the nearest grid point.
  std::vector<double> mag(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) mag[i] = std::abs(x[i]);
  const double interval = config_.chirp_interval_s * fs;
  const double grid_start =
      std::round(static_cast<double>(event.start) / interval) * interval;
  const std::ptrdiff_t direct_abs = static_cast<std::ptrdiff_t>(
      std::lround(grid_start + config_.chirp_duration_s * fs / 2.0));
  const std::ptrdiff_t direct_rel =
      direct_abs - static_cast<std::ptrdiff_t>(event.start);
  // Clamp into the event (a grossly off-grid event falls back gracefully).
  const std::size_t direct_peak = static_cast<std::size_t>(
      std::clamp<std::ptrdiff_t>(direct_rel, 0,
                                 static_cast<std::ptrdiff_t>(x.size()) - 1));

  EchoSegment best;
  bool found = false;
  double best_score = 0.0;
  for (const SymmetryCandidate& cand : candidates(x)) {
    const double offset = cand.center - static_cast<double>(direct_peak);
    if (offset < min_offset || offset > max_offset) continue;
    // Rank qualifying candidates by parity quality weighted by energy: the
    // paper asks for (i) a high energy ratio and (ii) a plausible distance.
    const double score = cand.parity_ratio * std::sqrt(cand.energy);
    if (score > best_score) {
      best_score = score;
      best.event_start = event.start;
      best.peak_index = event.start + static_cast<std::size_t>(std::lround(cand.center));
      best.direct_peak_index = event.start + direct_peak;
      best.distance_m = samples_to_distance_m(offset, fs);
      best.parity_ratio = cand.parity_ratio;
      best.from_fallback = false;
      found = true;
    }
  }

  if (!found) {
    // Fallback: the anatomy prior alone — strongest sample in the plausible
    // echo window behind the direct pulse.
    const std::size_t lo = direct_peak + static_cast<std::size_t>(std::lround(min_offset));
    const std::size_t hi = std::min(
        x.size(), direct_peak + static_cast<std::size_t>(std::lround(max_offset)) + 1);
    if (lo + 1 >= hi) return std::nullopt;
    std::size_t peak = lo;
    for (std::size_t i = lo; i < hi; ++i)
      if (mag[i] > mag[peak]) peak = i;
    best.event_start = event.start;
    best.peak_index = event.start + peak;
    best.direct_peak_index = event.start + direct_peak;
    best.distance_m =
        samples_to_distance_m(static_cast<double>(peak - direct_peak), fs);
    best.parity_ratio = 0.0;
    best.from_fallback = true;
  }
  return best;
}

void reanchor_echoes(std::vector<EchoSegment>& echoes, double sample_rate) {
  if (echoes.size() < 3) return;
  std::vector<double> offsets;
  offsets.reserve(echoes.size());
  for (const EchoSegment& e : echoes)
    offsets.push_back(static_cast<double>(e.peak_index) -
                      static_cast<double>(e.direct_peak_index));
  const double consensus = median(offsets);
  const auto offset = static_cast<std::ptrdiff_t>(std::lround(consensus));
  for (EchoSegment& e : echoes) {
    e.peak_index = static_cast<std::size_t>(
        static_cast<std::ptrdiff_t>(e.direct_peak_index) + offset);
    e.distance_m = samples_to_distance_m(consensus, sample_rate);
  }
}

}  // namespace earsonar::core
