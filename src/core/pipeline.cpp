#include "core/pipeline.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "dsp/interpolate.hpp"
#include "obs/trace.hpp"

namespace earsonar::core {

EarSonar::EarSonar(PipelineConfig config)
    : config_(config),
      preprocessor_(config.preprocess),
      event_detector_(config.events),
      segmenter_(config.segmenter),
      extractor_(config.features),
      detector_(config.detector) {
  // The pipeline knows its own probe signal; use it as the transmit
  // reference so extracted spectra read the channel (eardrum) response
  // rather than the chirp's own spectrum.
  extractor_.set_reference(config_.chirp);
}

EchoAnalysis EarSonar::analyze(const audio::Waveform& recording) const {
  require_nonempty("EarSonar::analyze recording", recording.size());

  obs::Span analyze_span("analyze", "pipeline");
  obs::Span bandpass_span("bandpass", "pipeline");
  // Every downstream constant (band edges, chirp grid, echo-distance math)
  // assumes the probe design's sample rate; transparently resample captures
  // that arrive at another rate (e.g., 44.1 kHz WAVs from a phone).
  const audio::Waveform* input = &recording;
  audio::Waveform resampled;
  if (recording.sample_rate() != config_.chirp.sample_rate) {
    obs::Span resample_span("resample", "pipeline");
    resampled = audio::Waveform(
        dsp::resample_to_rate(recording.view(), recording.sample_rate(),
                              config_.chirp.sample_rate),
        config_.chirp.sample_rate);
    input = &resampled;
  }
  const audio::Waveform filtered = preprocessor_.process(*input);
  bandpass_span.end();

  EchoAnalysis analysis = analyze_filtered(filtered);
  analysis.timings.bandpass_ms = bandpass_span.elapsed_ms();
  return analysis;
}

EchoAnalysis EarSonar::analyze_filtered(const audio::Waveform& filtered) const {
  require_nonempty("EarSonar::analyze_filtered signal", filtered.size());
  EchoAnalysis analysis;

  obs::Span events_span("event_detect", "pipeline");
  analysis.events = event_detector_.detect(filtered);
  for (Event& event : analysis.events)
    event.start = aligned_event_start(filtered.view(), event);
  events_span.end();
  analysis.timings.event_detect_ms = events_span.elapsed_ms();

  obs::Span segment_span("segment", "pipeline");
  for (std::size_t i = 0; i < analysis.events.size(); ++i) {
    obs::Span chirp_span("segment_chirp", "pipeline");
    chirp_span.set_arg("chirp", static_cast<std::int64_t>(i));
    if (std::optional<EchoSegment> echo =
            segmenter_.segment(filtered, analysis.events[i]))
      analysis.echoes.push_back(*echo);
  }
  // Consensus re-anchoring: within one recording the eardrum does not move,
  // so the echo offset behind the direct pulse is re-set to the per-recording
  // median. This suppresses chirp-to-chirp anchor jitter from movement or a
  // wall reflection occasionally outscoring the drum echo.
  if (analysis.echoes.size() >= 3) {
    std::vector<double> offsets;
    offsets.reserve(analysis.echoes.size());
    for (const EchoSegment& e : analysis.echoes)
      offsets.push_back(static_cast<double>(e.peak_index) -
                        static_cast<double>(e.direct_peak_index));
    const double consensus = median(offsets);
    const auto offset = static_cast<std::ptrdiff_t>(std::lround(consensus));
    for (EchoSegment& e : analysis.echoes) {
      e.peak_index = static_cast<std::size_t>(
          static_cast<std::ptrdiff_t>(e.direct_peak_index) + offset);
      e.distance_m = samples_to_distance_m(consensus, filtered.sample_rate());
    }
  }
  segment_span.end();
  analysis.timings.segment_ms = segment_span.elapsed_ms();

  if (analysis.echoes.empty()) return analysis;

  obs::Span feature_span("features", "pipeline");
  // One extraction pass yields both the feature vector and the mean echo
  // spectrum; the per-echo PSDs inside are computed once and shared.
  FeatureExtractor::Result extracted = extractor_.extract_full(filtered, analysis.echoes);
  analysis.mean_spectrum = std::move(extracted.mean_spectrum);
  analysis.features = std::move(extracted.features);
  feature_span.end();
  analysis.timings.feature_ms = feature_span.elapsed_ms();
  return analysis;
}

void EarSonar::fit(const std::vector<audio::Waveform>& recordings,
                   const std::vector<std::size_t>& labels) {
  require(recordings.size() == labels.size(), "EarSonar::fit: size mismatch");
  // The analyses are independent, so they fan out across the pool; each lands
  // in its own slot and the collection below runs serially in recording
  // order, making the fitted detector bit-identical at any thread count.
  std::vector<EchoAnalysis> analyses(recordings.size());
  parallel_for(
      recordings.size(),
      [&](std::size_t i) { analyses[i] = analyze(recordings[i]); },
      config_.threads);
  ml::Matrix features;
  std::vector<std::size_t> usable_labels;
  for (std::size_t i = 0; i < analyses.size(); ++i) {
    if (!analyses[i].usable()) continue;
    features.push_back(std::move(analyses[i].features));
    usable_labels.push_back(labels[i]);
  }
  require(features.size() >= kMeeStateCount,
          "EarSonar::fit: fewer than four usable recordings");
  detector_.fit(features, usable_labels);
}

void EarSonar::fit_features(const ml::Matrix& features,
                            const std::vector<std::size_t>& labels) {
  detector_.fit(features, labels);
}

std::optional<Diagnosis> EarSonar::diagnose(const audio::Waveform& recording) const {
  require(fitted(), "EarSonar::diagnose before fit");
  EchoAnalysis analysis = analyze(recording);
  if (!analysis.usable()) return std::nullopt;
  obs::Span inference_span("inference", "pipeline");
  return detector_.predict(analysis.features);
}

Diagnosis EarSonar::diagnose_features(const std::vector<double>& features) const {
  require(fitted(), "EarSonar::diagnose_features before fit");
  obs::Span inference_span("inference", "pipeline");
  return detector_.predict(features);
}

}  // namespace earsonar::core
