#include "core/pipeline.hpp"

#include <cmath>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/parallel.hpp"
#include "dsp/interpolate.hpp"
#include "obs/trace.hpp"

namespace earsonar::core {

EarSonar::EarSonar(PipelineConfig config)
    : config_(config),
      preprocessor_(config.preprocess),
      event_detector_(config.events),
      segmenter_(config.segmenter),
      extractor_(config.features),
      detector_(config.detector) {
  // The pipeline knows its own probe signal; use it as the transmit
  // reference so extracted spectra read the channel (eardrum) response
  // rather than the chirp's own spectrum.
  extractor_.set_reference(config_.chirp);
}

EchoAnalysis EarSonar::analyze(const audio::Waveform& recording,
                               const CancelToken& cancel) const {
  require_nonempty("EarSonar::analyze recording", recording.size());
  cancel.check("analyze");

  obs::Span analyze_span("analyze", "pipeline");
  obs::Span bandpass_span("bandpass", "pipeline");
  // Every downstream constant (band edges, chirp grid, echo-distance math)
  // assumes the probe design's sample rate; transparently resample captures
  // that arrive at another rate (e.g., 44.1 kHz WAVs from a phone).
  const audio::Waveform* input = &recording;
  audio::Waveform resampled;
  if (recording.sample_rate() != config_.chirp.sample_rate) {
    obs::Span resample_span("resample", "pipeline");
    resampled = audio::Waveform(
        dsp::resample_to_rate(recording.view(), recording.sample_rate(),
                              config_.chirp.sample_rate),
        config_.chirp.sample_rate);
    input = &resampled;
  }
  const audio::Waveform filtered = preprocessor_.process(*input);
  bandpass_span.end();

  EchoAnalysis analysis = analyze_filtered(filtered, cancel);
  analysis.timings.bandpass_ms = bandpass_span.elapsed_ms();
  return analysis;
}

namespace {

[[noreturn]] void throw_degraded(const AnalysisQuality& quality) {
  std::ostringstream os;
  os << "EarSonar::analyze: degraded below min_usable_chirps: " << quality.chirps_used
     << " of " << quality.chirps_total << " chirps usable (floor "
     << quality.min_usable << ")";
  if (!quality.drops.empty())
    os << "; first error [" << quality.drops.front().stage
       << "]: " << quality.drops.front().reason;
  throw std::runtime_error(os.str());
}

}  // namespace

EchoAnalysis EarSonar::analyze_filtered(const audio::Waveform& filtered,
                                        const CancelToken& cancel) const {
  require_nonempty("EarSonar::analyze_filtered signal", filtered.size());
  EchoAnalysis analysis;
  analysis.quality.min_usable = config_.min_usable_chirps;
  stage_event_detect(filtered, analysis);
  cancel.check("segment");
  stage_segment(filtered, analysis, cancel);
  if (analysis.echoes.empty()) return analysis;
  cancel.check("features");
  stage_features(filtered, analysis, cancel, nullptr);
  return analysis;
}

void EarSonar::stage_event_detect(const audio::Waveform& filtered,
                                  EchoAnalysis& analysis) const {
  AnalysisQuality& quality = analysis.quality;
  obs::Span events_span("event_detect", "pipeline");
  try {
    if (fault::point("pipeline.event_detect"))
      fail("injected fault: pipeline.event_detect");
    analysis.events = event_detector_.detect(filtered);
    for (Event& event : analysis.events)
      event.start = aligned_event_start(filtered.view(), event);
  } catch (const std::exception& e) {
    // Event detection is a whole-recording stage: when it fails, no chirp is
    // recoverable. Record the casualty and fall through to the floor check
    // below, which throws with this reason attached.
    quality.drops.push_back({ChirpDrop::kWholeStage, "event_detect", e.what()});
    analysis.events.clear();
  }
  events_span.end();
  analysis.timings.event_detect_ms = events_span.elapsed_ms();
  quality.chirps_total = analysis.events.size();
}

void EarSonar::stage_segment(const audio::Waveform& filtered, EchoAnalysis& analysis,
                             const CancelToken& cancel) const {
  AnalysisQuality& quality = analysis.quality;
  obs::Span segment_span("segment", "pipeline");
  for (std::size_t i = 0; i < analysis.events.size(); ++i) {
    cancel.check("segment_chirp");
    obs::Span chirp_span("segment_chirp", "pipeline");
    chirp_span.set_arg("chirp", static_cast<std::int64_t>(i));
    // Per-chirp isolation: one clipped or corrupted chirp out of 200 must
    // not discard the recording. An exception drops this chirp (recorded in
    // `quality`); a nullopt is the pre-existing benign no-echo miss.
    try {
      if (fault::point("pipeline.segment_chirp"))
        fail("injected fault: pipeline.segment_chirp");
      if (std::optional<EchoSegment> echo =
              segmenter_.segment(filtered, analysis.events[i]))
        analysis.echoes.push_back(*echo);
    } catch (const std::exception& e) {
      quality.drops.push_back({i, "segment", e.what()});
    }
  }
  reanchor_echoes(analysis.echoes, filtered.sample_rate());
  segment_span.end();
  analysis.timings.segment_ms = segment_span.elapsed_ms();
  quality.chirps_used = analysis.echoes.size();
  quality.chirps_dropped = quality.drops.size();
  quality.degraded = !quality.drops.empty();
  if (quality.degraded && quality.chirps_used < quality.min_usable)
    throw_degraded(quality);
}

void EarSonar::stage_features(const audio::Waveform& filtered, EchoAnalysis& analysis,
                              const CancelToken& cancel,
                              const std::vector<dsp::Spectrum>* per_echo) const {
  (void)cancel;
  AnalysisQuality& quality = analysis.quality;
  obs::Span feature_span("features", "pipeline");
  // One extraction pass yields both the feature vector and the mean echo
  // spectrum; the per-echo PSDs inside are computed once and shared. When
  // the batched executor hands in precomputed PSDs, only the happy-path
  // extraction switches sources — the recovery path below always
  // re-extracts per request, so both entry points converge on errors.
  try {
    if (fault::point("pipeline.features")) fail("injected fault: pipeline.features");
    FeatureExtractor::Result extracted =
        per_echo ? extractor_.extract_full_from_psds(analysis.echoes, *per_echo)
                 : extractor_.extract_full(filtered, analysis.echoes);
    analysis.mean_spectrum = std::move(extracted.mean_spectrum);
    analysis.features = std::move(extracted.features);
  } catch (const CancelledError&) {
    throw;
  } catch (const std::exception& e) {
    // An FFT/PSD failure usually poisons one echo, not the stage: probe each
    // echo alone to partition survivors from casualties, then re-extract over
    // the survivors — the same result as if only they had been segmented.
    std::vector<EchoSegment> survivors;
    survivors.reserve(analysis.echoes.size());
    for (std::size_t i = 0; i < analysis.echoes.size(); ++i) {
      try {
        (void)extractor_.extract_full(filtered, {analysis.echoes[i]});
        survivors.push_back(analysis.echoes[i]);
      } catch (const std::exception& probe_error) {
        quality.drops.push_back({i, "features", probe_error.what()});
      }
    }
    if (quality.drops.empty() || quality.drops.back().stage != "features")
      quality.drops.push_back({ChirpDrop::kWholeStage, "features", e.what()});
    try {
      if (!survivors.empty()) {
        FeatureExtractor::Result extracted = extractor_.extract_full(filtered, survivors);
        analysis.mean_spectrum = std::move(extracted.mean_spectrum);
        analysis.features = std::move(extracted.features);
        analysis.echoes = std::move(survivors);
      }
    } catch (const std::exception& retry_error) {
      // The retry failed too (e.g. an every-k fault still firing): give up on
      // the stage, keep the segmentation products, return an unusable result.
      quality.drops.push_back({ChirpDrop::kWholeStage, "features", retry_error.what()});
      analysis.features.clear();
    }
    quality.chirps_used = analysis.features.empty() ? 0 : analysis.echoes.size();
    quality.chirps_dropped = quality.drops.size();
    quality.degraded = true;
    if (quality.chirps_used < quality.min_usable) throw_degraded(quality);
  }
  feature_span.end();
  analysis.timings.feature_ms = feature_span.elapsed_ms();
}

void EarSonar::fit(const std::vector<audio::Waveform>& recordings,
                   const std::vector<std::size_t>& labels) {
  require(recordings.size() == labels.size(), "EarSonar::fit: size mismatch");
  // The analyses are independent, so they fan out across the pool; each lands
  // in its own slot and the collection below runs serially in recording
  // order, making the fitted detector bit-identical at any thread count.
  std::vector<EchoAnalysis> analyses(recordings.size());
  parallel_for(
      recordings.size(),
      [&](std::size_t i) { analyses[i] = analyze(recordings[i]); },
      config_.threads);
  ml::Matrix features;
  std::vector<std::size_t> usable_labels;
  for (std::size_t i = 0; i < analyses.size(); ++i) {
    if (!analyses[i].usable()) continue;
    features.push_back(std::move(analyses[i].features));
    usable_labels.push_back(labels[i]);
  }
  require(features.size() >= kMeeStateCount,
          "EarSonar::fit: fewer than four usable recordings");
  detector_.fit(features, usable_labels);
}

void EarSonar::fit_features(const ml::Matrix& features,
                            const std::vector<std::size_t>& labels) {
  detector_.fit(features, labels);
}

std::optional<Diagnosis> EarSonar::diagnose(const audio::Waveform& recording) const {
  require(fitted(), "EarSonar::diagnose before fit");
  EchoAnalysis analysis = analyze(recording);
  if (!analysis.usable()) return std::nullopt;
  obs::Span inference_span("inference", "pipeline");
  return detector_.predict(analysis.features);
}

Diagnosis EarSonar::diagnose_features(const std::vector<double>& features) const {
  require(fitted(), "EarSonar::diagnose_features before fit");
  obs::Span inference_span("inference", "pipeline");
  return detector_.predict(features);
}

}  // namespace earsonar::core
