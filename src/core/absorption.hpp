// Acoustic absorption analysis (paper §IV-C1): a fixed window anchored at the
// segmented eardrum-echo peak is interpolated and Fourier-transformed into a
// power spectral density whose in-band shape carries the absorption
// signature; per-chirp PSDs are averaged into one echo spectrum per
// recording.
//
// Two implementation choices matter at a 48 kHz sample rate, where the drum
// echo overlaps the tail of the direct speaker-to-mic pulse (paper Fig. 7b):
//   * the echo window is asymmetric — a short lead before the peak and a long
//     tail after it, because a fluid-loaded drum's notched reflectance rings
//     and that ringing outlives the direct pulse;
//   * each echo PSD is normalized by the PSD of the same chirp's direct
//     pulse, canceling the transmit spectrum and the earphone's frequency
//     response (the direct pulse acts as a per-chirp reference).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "audio/chirp.hpp"
#include "audio/waveform.hpp"
#include "core/segment.hpp"
#include "dsp/simd.hpp"
#include "dsp/spectrum.hpp"

namespace earsonar::core {

/// How the analysis window is anchored.
///  * kEventStart — a fixed-length window from the start of the detected
///    event, covering the full chirp + echo composite. Deterministic (no
///    anchor jitter) and echo-dominated with the prototype's shadowed
///    microphone; the library default.
///  * kEchoPeak — centered window around the segmented echo peak, the
///    paper's literal description ("take the peak sampling point of the
///    eardrum as the centre"). Sensitive to anchor jitter at 48 kHz, where
///    one sample is 3.6 mm of reflector distance; kept for ablation.
///  * kDirectGate — a fixed time gate opening behind the direct-pulse peak,
///    isolating the late ringing tail; kept for ablation.
enum class WindowAnchor { kEventStart, kEchoPeak, kDirectGate };

struct SpectrumConfig {
  WindowAnchor anchor = WindowAnchor::kEventStart;
  std::size_t event_window_length = 72;///< kEventStart: window duration
  std::size_t pre_peak = 8;            ///< kEchoPeak: samples before the peak
  std::size_t post_peak = 56;          ///< kEchoPeak: samples after it
  std::size_t gate_start = 28;         ///< kDirectGate: gate opens this many
                                       ///<   samples after the direct peak
  std::size_t gate_length = 40;        ///< kDirectGate: gate duration
  std::size_t direct_half_window = 12; ///< +-N window around the direct pulse
  bool normalize_by_direct = false;    ///< divide echo PSD by direct-gate PSD
  /// Taper applied to the analysis window before the FFT. The chirp + echo
  /// transient decays to zero inside the window, so no taper is the correct
  /// default: a taper would re-weight the chirp's time-frequency sweep and
  /// make the band shape sensitive to sample-level window placement.
  bool hann_taper = false;
  /// Cubic-spline upsampling of the window before the FFT (the paper's
  /// "interpolated signal"). Off by default: zero-padding already provides
  /// the fine frequency grid, and spline evaluation is slightly lossy for
  /// content close to Nyquist (the 16-20 kHz band at 48 kHz).
  bool interpolate = false;
  /// Peak-normalize each extracted spectrum. Off by default: with the
  /// transmit reference installed the spectrum level *is* the absorbed-energy
  /// measurement (the paper's core observable) and must be preserved.
  /// Plotting code normalizes for display instead.
  bool peak_normalize = false;
  std::size_t interpolated_length = 256;  ///< spline-resampled window length
  /// Run the window-PSD transform in float32 kernel arithmetic
  /// (FftPlan::power_spectrum_f32) instead of exact float64. Opt-in; the
  /// default follows EARSONAR_PRECISION=float32. The end-to-end error is
  /// bounded by the dsp.fft.power_spectrum.f32 / dsp.features.f32 oracle
  /// pairs (docs/testing.md).
  bool float32_kernels = dsp::simd::float32_requested();
  std::size_t fft_size = 512;          ///< zero-padded transform length
  double band_low_hz = 16000.0;        ///< analysis band == the chirp band;
  double band_high_hz = 20000.0;       ///< outside it the ratio is noise/noise
  std::size_t band_bins = 128;         ///< uniform grid of the output spectrum

  void validate() const;
};

class EchoSpectrumExtractor {
 public:
  explicit EchoSpectrumExtractor(SpectrumConfig config = {});

  /// Installs the transmit-reference spectrum: the band PSD of the clean
  /// probe chirp pushed through the same window/FFT processing. When set,
  /// every extracted PSD is divided by it, so the output reads the channel
  /// response |H(f)|^2 (eardrum reflectance imprint) instead of the chirp's
  /// own spectrum. The pipeline installs this automatically from its chirp
  /// design.
  void set_reference(const audio::FmcwConfig& chirp);
  [[nodiscard]] bool has_reference() const { return !reference_.psd.empty(); }

  /// PSD (peak-normalized, on the uniform band grid) of one echo window,
  /// normalized by the transmit reference and/or direct-pulse PSD when
  /// configured.
  [[nodiscard]] dsp::Spectrum extract(const audio::Waveform& signal,
                                      const EchoSegment& echo) const;

  /// extract() for every echo in one call. The per-echo PSDs feed several
  /// downstream consumers (time-group averages, the whole-recording mean);
  /// extracting them once and averaging subranges with average_of() avoids
  /// re-running the window/FFT chain per consumer.
  [[nodiscard]] std::vector<dsp::Spectrum> extract_all(
      const audio::Waveform& signal, const std::vector<EchoSegment>& echoes) const;

  /// One recording's window-extraction work order for extract_all_multi.
  struct EchoBatch {
    const audio::Waveform* signal = nullptr;
    const std::vector<EchoSegment>* echoes = nullptr;
  };

  /// extract_all() for many recordings in one pass: the flattened
  /// (recording, echo) windows pack into four-lane PSD groups that may cross
  /// recording boundaries, so a serving batch of short recordings — whose
  /// per-recording ragged tails would otherwise run single-lane — still
  /// fills the power_spectrum_band_x4 kernels. Result [i] is bit-identical
  /// to extract_all(*items[i].signal, *items[i].echoes): each lane's
  /// arithmetic is independent of its lane-mates (the x4 kernel equals four
  /// single calls bitwise), so the grouping cannot change any value. When
  /// the recordings' sample rates differ or the config disables the packed
  /// path (interpolate / hann_taper / float32_kernels), every item falls
  /// back to plain extract_all.
  [[nodiscard]] std::vector<std::vector<dsp::Spectrum>> extract_all_multi(
      std::span<const EchoBatch> items) const;

  /// Element-wise mean of already-extracted per-echo spectra, accumulated in
  /// order — bit-identical to average() over the matching echoes.
  [[nodiscard]] dsp::Spectrum average_of(std::span<const dsp::Spectrum> spectra) const;

  /// Average spectrum over many echoes of the same recording (element-wise
  /// mean of per-echo normalized PSDs, then re-normalized).
  [[nodiscard]] dsp::Spectrum average(const audio::Waveform& signal,
                                      const std::vector<EchoSegment>& echoes) const;

  [[nodiscard]] const SpectrumConfig& config() const { return config_; }

 private:
  /// Band PSD of signal[center-pre, center+post] via interpolate+taper+FFT.
  [[nodiscard]] dsp::Spectrum window_psd(const audio::Waveform& signal,
                                         std::size_t center, std::size_t pre,
                                         std::size_t post) const;
  /// Reference division, direct-pulse normalization, and peak normalization
  /// applied to one echo's band PSD — the tail of extract(), shared with the
  /// batched extract_all path.
  [[nodiscard]] dsp::Spectrum finalize(dsp::Spectrum spectrum,
                                       const audio::Waveform& signal,
                                       const EchoSegment& echo) const;
  SpectrumConfig config_;
  dsp::Spectrum reference_;  ///< transmit-reference band PSD (may be empty)
};

}  // namespace earsonar::core
