// Bilateral (own-control) screening extension.
//
// MEE is frequently unilateral, and a person's two ears are anatomically far
// more alike than two different people's ears. Comparing the left and right
// echo spectra therefore gives a calibration-free screen: a large asymmetry
// flags the quieter (more absorbing) ear without any training cohort at all.
// This addresses the paper's cross-subject variability head-on — the
// contralateral ear is the perfect reference.
#pragma once

#include "core/pipeline.hpp"
#include "dsp/spectrum.hpp"

namespace earsonar::core {

struct AsymmetryConfig {
  /// Flag when the asymmetry score exceeds this (score is the symmetric
  /// log-level distance; healthy pairs sit well below it).
  double flag_threshold = 0.8;
};

/// Result of screening one ear pair.
struct BilateralResult {
  double asymmetry = 0.0;     ///< symmetric log-band-level distance
  bool flagged = false;       ///< asymmetry above threshold
  int suspect_ear = 0;        ///< -1 = left quieter/suspect, +1 = right, 0 = none
  double left_level = 0.0;    ///< mean band level, left echo spectrum
  double right_level = 0.0;
};

/// Symmetric spectral asymmetry between two echo spectra on the same grid:
/// |log(level_a) - log(level_b)| plus the shape distance of the normalized
/// curves. 0 for identical ears; grows with unilateral absorption.
double spectral_asymmetry(const dsp::Spectrum& left, const dsp::Spectrum& right);

/// Screens a left/right pair of *analyzed* recordings.
BilateralResult screen_bilateral(const EchoAnalysis& left, const EchoAnalysis& right,
                                 const AsymmetryConfig& config = {});

}  // namespace earsonar::core
