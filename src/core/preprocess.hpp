// Signal preprocessing (paper §IV-B1): Butterworth band-pass around the
// probe band to strip ambient noise, plus an optional Hanning pulse-shaping
// pass that raises the peak-to-sidelobe ratio of each chirp.
#pragma once

#include "audio/waveform.hpp"
#include "dsp/biquad.hpp"

namespace earsonar::core {

struct PreprocessConfig {
  int butterworth_order = 4;      ///< prototype order (bandpass => 8 poles)
  double band_low_hz = 15000.0;   ///< slightly wider than the 16-20 kHz chirp
  double band_high_hz = 21000.0;
  bool zero_phase = true;         ///< filtfilt (offline pipeline) vs causal

  void validate(double sample_rate) const;
};

class Preprocessor {
 public:
  explicit Preprocessor(PreprocessConfig config = {});

  /// Band-pass-filters the recording; the output keeps the sample rate.
  [[nodiscard]] audio::Waveform process(const audio::Waveform& input) const;

  /// The designed cascade with fresh state, for chunk-at-a-time (streaming)
  /// callers. Feeding chunks through BiquadCascade::process, state carried
  /// across calls, is bit-identical to process() with zero_phase = false on
  /// the concatenated signal — causal IIR filtering is a pure per-sample
  /// recurrence. Zero-phase filtering has no streaming form (it runs the
  /// signal backwards), so streaming deployments configure zero_phase = false.
  [[nodiscard]] dsp::BiquadCascade streaming_filter(double sample_rate) const {
    return design(sample_rate);
  }

  [[nodiscard]] const PreprocessConfig& config() const { return config_; }

  /// Magnitude response of the designed filter at `frequency_hz` (for tests).
  [[nodiscard]] double magnitude_at(double frequency_hz, double sample_rate) const;

 private:
  [[nodiscard]] dsp::BiquadCascade design(double sample_rate) const;
  PreprocessConfig config_;
};

}  // namespace earsonar::core
