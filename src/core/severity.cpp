#include "core/severity.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace earsonar::core {

SeverityEstimator::SeverityEstimator(SeverityConfig config)
    : config_(config), model_(config.ridge) {}

void SeverityEstimator::fit(const ml::Matrix& features,
                            const std::vector<double>& fill_fractions) {
  require_nonempty("SeverityEstimator features", features.size());
  require(features.size() == fill_fractions.size(),
          "SeverityEstimator: feature/label size mismatch");
  for (double fill : fill_fractions)
    require_in_range("fill fraction", fill, 0.0, 1.0);
  scaler_.fit(features);
  model_.fit(scaler_.transform(features), fill_fractions);
}

double SeverityEstimator::estimate(const std::vector<double>& features) const {
  require(fitted(), "SeverityEstimator: estimate before fit");
  return std::clamp(model_.predict(scaler_.transform(features)), 0.0, 1.0);
}

double mean_absolute_error(const std::vector<double>& estimates,
                           const std::vector<double>& truths) {
  require(estimates.size() == truths.size(), "mean_absolute_error: size mismatch");
  require_nonempty("mean_absolute_error input", estimates.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < estimates.size(); ++i)
    acc += std::abs(estimates[i] - truths[i]);
  return acc / static_cast<double>(estimates.size());
}

}  // namespace earsonar::core
