// Windowed-sinc FIR design and linear filtering. The simulator renders the
// eardrum's frequency-dependent reflectance as an FIR kernel, so arbitrary
// reflectance curves become convolutions.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace earsonar::dsp {

/// Odd-length linear-phase low-pass via Hann-windowed sinc.
std::vector<double> fir_lowpass(std::size_t taps, double cutoff_hz, double sample_rate);

/// Odd-length linear-phase high-pass (spectral inversion of the low-pass).
std::vector<double> fir_highpass(std::size_t taps, double cutoff_hz, double sample_rate);

/// Odd-length linear-phase band-pass between low_hz and high_hz.
std::vector<double> fir_bandpass(std::size_t taps, double low_hz, double high_hz,
                                 double sample_rate);

/// Designs a linear-phase FIR whose magnitude response approximates the
/// piecewise-linear curve given by (frequencies_hz[i] -> magnitudes[i]) using
/// the frequency-sampling method. `taps` must be odd. Frequencies must be
/// ascending and within [0, Nyquist]; the curve is extended flat at both ends.
std::vector<double> fir_from_magnitude(std::span<const double> frequencies_hz,
                                       std::span<const double> magnitudes,
                                       std::size_t taps, double sample_rate);

/// Full ("same origin") convolution: output length = signal + kernel - 1.
std::vector<double> fir_filter(std::span<const double> signal,
                               std::span<const double> kernel);

/// Convolution trimmed to the input length with the kernel's group delay
/// compensated (linear-phase kernels line up with the input).
std::vector<double> fir_filter_same(std::span<const double> signal,
                                    std::span<const double> kernel);

/// Magnitude response of an FIR at `frequency_hz`.
double fir_magnitude_at(std::span<const double> kernel, double frequency_hz,
                        double sample_rate);

}  // namespace earsonar::dsp
