#include "dsp/butterworth.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "common/error.hpp"

namespace earsonar::dsp {

namespace {

constexpr double kPi = std::numbers::pi;
using Cx = std::complex<double>;

// Left-half-plane poles of the unit-cutoff analog Butterworth prototype.
std::vector<Cx> prototype_poles(int order) {
  require(order >= 1 && order <= 16, "butterworth order must be in [1, 16]");
  std::vector<Cx> poles;
  poles.reserve(static_cast<std::size_t>(order));
  for (int k = 0; k < order; ++k) {
    const double theta = kPi * (2.0 * k + 1.0) / (2.0 * order) + kPi / 2.0;
    poles.emplace_back(std::cos(theta), std::sin(theta));
  }
  return poles;
}

// Bilinear transform s -> z with sampling frequency fs: z = (2fs + s)/(2fs - s).
Cx bilinear(Cx s, double fs) { return (2.0 * fs + s) / (2.0 * fs - s); }

// Frequency pre-warp for the bilinear transform.
double prewarp(double f_hz, double fs) { return 2.0 * fs * std::tan(kPi * f_hz / fs); }

// Pairs digital poles/zeros (which arrive in conjugate-or-real sets) into
// real-coefficient biquads, then normalizes the cascade gain so that
// |H| == 1 at `ref_w` (normalized rad/sample).
BiquadCascade assemble_sections(std::vector<Cx> zeros, std::vector<Cx> poles,
                                double ref_w) {
  ensure(zeros.size() == poles.size(), "assemble_sections: zero/pole count mismatch");

  // Greedy conjugate pairing: repeatedly take one root; if complex, find and
  // consume its conjugate; if real, consume another real root (or stand alone
  // as a first-order section when none remains).
  auto pair_roots = [](std::vector<Cx> roots) {
    std::vector<std::pair<Cx, Cx>> pairs;  // second == NaN means first-order
    constexpr double kTol = 1e-9;
    while (!roots.empty()) {
      Cx r = roots.back();
      roots.pop_back();
      if (std::abs(r.imag()) > kTol) {
        auto it = std::find_if(roots.begin(), roots.end(), [&](Cx c) {
          return std::abs(c - std::conj(r)) < 1e-6 * std::max(1.0, std::abs(r));
        });
        ensure(it != roots.end(), "assemble_sections: unpaired complex root");
        pairs.emplace_back(r, *it);
        roots.erase(it);
      } else {
        auto it = std::find_if(roots.begin(), roots.end(),
                               [&](Cx c) { return std::abs(c.imag()) <= kTol; });
        if (it != roots.end()) {
          pairs.emplace_back(r, *it);
          roots.erase(it);
        } else {
          pairs.emplace_back(r, Cx{std::nan(""), 0.0});
        }
      }
    }
    return pairs;
  };

  const auto zero_pairs = pair_roots(std::move(zeros));
  const auto pole_pairs = pair_roots(std::move(poles));
  ensure(zero_pairs.size() == pole_pairs.size(),
         "assemble_sections: section count mismatch");

  std::vector<Biquad> sections;
  sections.reserve(pole_pairs.size());
  for (std::size_t i = 0; i < pole_pairs.size(); ++i) {
    const auto& [z1, z2] = zero_pairs[i];
    const auto& [p1, p2] = pole_pairs[i];
    Biquad s;
    if (std::isnan(z2.real())) {  // first-order numerator (1 - z1 q)
      s.b0 = 1.0;
      s.b1 = -z1.real();
      s.b2 = 0.0;
    } else {
      s.b0 = 1.0;
      s.b1 = -(z1 + z2).real();
      s.b2 = (z1 * z2).real();
    }
    if (std::isnan(p2.real())) {
      s.a1 = -p1.real();
      s.a2 = 0.0;
    } else {
      s.a1 = -(p1 + p2).real();
      s.a2 = (p1 * p2).real();
    }
    sections.push_back(s);
  }

  BiquadCascade cascade(std::move(sections));
  const double gain = std::abs(cascade.response(ref_w));
  ensure(gain > 0.0, "assemble_sections: zero gain at reference frequency");
  // Fold the normalization into the first section.
  std::vector<Biquad> normalized = cascade.sections();
  normalized.front().b0 /= gain;
  normalized.front().b1 /= gain;
  normalized.front().b2 /= gain;
  return BiquadCascade(std::move(normalized));
}

void check_band(double low_hz, double high_hz, double sample_rate) {
  require_positive("sample_rate", sample_rate);
  require(low_hz > 0.0 && high_hz < sample_rate / 2.0 && low_hz < high_hz,
          "butterworth_bandpass: need 0 < low < high < Nyquist");
}

}  // namespace

BiquadCascade butterworth_lowpass(int order, double cutoff_hz, double sample_rate) {
  require_positive("sample_rate", sample_rate);
  require(cutoff_hz > 0.0 && cutoff_hz < sample_rate / 2.0,
          "butterworth_lowpass: cutoff must be in (0, Nyquist)");
  const double wc = prewarp(cutoff_hz, sample_rate);
  std::vector<Cx> zpoles;
  for (Cx p : prototype_poles(order)) zpoles.push_back(bilinear(p * wc, sample_rate));
  // Low-pass: all transmission zeros at infinity -> z = -1 after bilinear.
  std::vector<Cx> zzeros(zpoles.size(), Cx{-1.0, 0.0});
  return assemble_sections(std::move(zzeros), std::move(zpoles), /*ref_w=*/0.0);
}

BiquadCascade butterworth_highpass(int order, double cutoff_hz, double sample_rate) {
  require_positive("sample_rate", sample_rate);
  require(cutoff_hz > 0.0 && cutoff_hz < sample_rate / 2.0,
          "butterworth_highpass: cutoff must be in (0, Nyquist)");
  const double wc = prewarp(cutoff_hz, sample_rate);
  std::vector<Cx> zpoles;
  for (Cx p : prototype_poles(order)) zpoles.push_back(bilinear(wc / p, sample_rate));
  // High-pass: analog zeros at s = 0 -> z = +1.
  std::vector<Cx> zzeros(zpoles.size(), Cx{1.0, 0.0});
  return assemble_sections(std::move(zzeros), std::move(zpoles), /*ref_w=*/kPi);
}

BiquadCascade butterworth_bandpass(int order, double low_hz, double high_hz,
                                   double sample_rate) {
  check_band(low_hz, high_hz, sample_rate);
  const double w1 = prewarp(low_hz, sample_rate);
  const double w2 = prewarp(high_hz, sample_rate);
  const double w0 = std::sqrt(w1 * w2);  // analog center
  const double bw = w2 - w1;             // analog bandwidth

  // LP -> BP transform: each prototype pole p spawns the two roots of
  // s^2 - (p * bw) s + w0^2 = 0.
  std::vector<Cx> apoles;
  for (Cx p : prototype_poles(order)) {
    const Cx pb = p * bw;
    const Cx disc = std::sqrt(pb * pb - 4.0 * w0 * w0);
    apoles.push_back((pb + disc) / 2.0);
    apoles.push_back((pb - disc) / 2.0);
  }

  std::vector<Cx> zpoles;
  zpoles.reserve(apoles.size());
  for (Cx p : apoles) zpoles.push_back(bilinear(p, sample_rate));
  // Band-pass: `order` zeros at s=0 (-> z=+1) and `order` at infinity (-> z=-1).
  std::vector<Cx> zzeros;
  for (int i = 0; i < order; ++i) {
    zzeros.emplace_back(1.0, 0.0);
    zzeros.emplace_back(-1.0, 0.0);
  }

  // Reference the gain at the digital center frequency.
  const double fc_digital = std::sqrt(low_hz * high_hz);
  const double ref_w = 2.0 * kPi * fc_digital / sample_rate;
  return assemble_sections(std::move(zzeros), std::move(zpoles), ref_w);
}

}  // namespace earsonar::dsp
