// Planned FFT engine.
//
// An FftPlan precomputes everything about a transform that depends only on
// its size — the bit-reversal permutation, per-stage twiddle tables, the
// Bluestein chirp kernel (and its forward FFT) for non-power-of-two sizes,
// and the pack/unpack twiddles of the real-input half-length algorithm — so
// the per-call work is reduced to butterflies over caller-provided buffers.
// Together with the scratch-buffer execute() overloads this makes
// steady-state transforms allocation-free, which is what the per-echo PSD
// loop in the absorption stage (hundreds of 512-point transforms per
// recording) needs.
//
// Plans are immutable after construction and safe to share across threads;
// FftPlan::get() returns them from a process-wide, mutex-guarded cache keyed
// by (size, kind). Scratch buffers are NOT thread-safe — give each thread its
// own FftScratch (the convenience wrappers in fft.cpp keep one per thread).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "dsp/fft.hpp"

namespace earsonar::dsp {

/// Reusable work buffers for the execute() overloads. Buffers grow on first
/// use with a given plan size and are reused (never shrunk) afterwards.
struct FftScratch {
  std::vector<Complex> a;
  std::vector<Complex> b;
  std::vector<Complex> c;
  std::vector<float> fa;  ///< float32 pipeline: packed half-length transform
  std::vector<float> fb;  ///< float32 pipeline: untangled real-spectrum bins
  std::vector<double> d;  ///< batched pipeline: four lane-major transforms
};

class FftPlan {
 public:
  /// kComplex plans transform n complex points (any n >= 1; radix-2 for
  /// powers of two, cached Bluestein otherwise). kReal plans transform n real
  /// points into the n/2+1 non-negative-frequency bins via the half-length
  /// complex transform (even n; odd n falls back to a full complex plan).
  enum class Kind { kComplex, kReal };

  FftPlan(std::size_t n, Kind kind);

  /// Process-wide plan cache (thread-safe). Returns a shared immutable plan.
  static std::shared_ptr<const FftPlan> get(std::size_t n, Kind kind);

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] Kind kind() const { return kind_; }
  /// Number of complex bins a real forward transform produces (n/2 + 1).
  [[nodiscard]] std::size_t real_bins() const { return n_ / 2 + 1; }

  // --- complex transforms (Kind::kComplex) ---------------------------------

  /// In-place forward DFT; only valid for power-of-two plans.
  void forward_inplace(std::span<Complex> data) const;

  /// Forward DFT, out-of-place (in and out must not alias; |in| = |out| = n).
  void forward(std::span<const Complex> in, std::span<Complex> out,
               FftScratch& scratch) const;

  /// Inverse DFT with the 1/n normalization (conjugates in the output buffer;
  /// no input copy is made).
  void inverse(std::span<const Complex> in, std::span<Complex> out,
               FftScratch& scratch) const;

  // --- real transforms (Kind::kReal) ---------------------------------------

  /// Forward DFT of n real samples; out receives the n/2+1 bins X[0..n/2].
  void forward_real(std::span<const double> in, std::span<Complex> out,
                    FftScratch& scratch) const;

  /// Inverse of forward_real: n/2+1 bins (Hermitian symmetry implied) back to
  /// n real samples, including the 1/n normalization.
  void inverse_real(std::span<const Complex> spectrum, std::span<double> out,
                    FftScratch& scratch) const;

  /// out[k] = |X[k]|^2 * scale for the n/2+1 non-negative-frequency bins.
  void power_spectrum(std::span<const double> in, std::span<double> out,
                      double scale, FftScratch& scratch) const;

  /// power_spectrum restricted to bins [bin_lo, bin_hi]: runs the identical
  /// half-length transform, but untangles only the (k, n/2-k) pairs that
  /// produce bins in range and reduces only those bins to |X[k]|^2 * scale.
  /// Written bins are bit-identical to the full power_spectrum; out entries
  /// outside [bin_lo, bin_hi] are left untouched. out must still span all
  /// real_bins(). The absorption stage uses this — its 16-20 kHz analysis
  /// band reads ~45 of a 512-point transform's 257 bins, once per chirp.
  /// Sizes without the even-n radix-2 fast path fall back to the full
  /// computation (every bin written).
  void power_spectrum_band(std::span<const double> in, std::span<double> out,
                           double scale, FftScratch& scratch, std::size_t bin_lo,
                           std::size_t bin_hi) const;

  /// Four independent power_spectrum_band calls batched into one pass: the
  /// transforms run in a lane-major layout (one AVX register row holds the
  /// same complex index of all four inputs), which keeps every vector lane
  /// busy without any shuffles. Each lane executes the identical per-element
  /// arithmetic sequence as the single-transform path, so out[l] matches
  /// power_spectrum_band(in[l], ...) bit for bit. The absorption stage feeds
  /// its per-chirp PSD loop through this four chirps at a time. Sizes without
  /// the even-n radix-2 fast path fall back to four single calls.
  void power_spectrum_band_x4(const double* const in[4], double* const out[4],
                              double scale, FftScratch& scratch,
                              std::size_t bin_lo, std::size_t bin_hi) const;

  /// power_spectrum with float32 kernel arithmetic: the input is narrowed to
  /// float once, the half-length transform / untangle / |X|^2 reduction run
  /// in float, and the bins are widened back to double on store. The public
  /// signature stays double — callers opt in per call (see
  /// SpectrumConfig::precision). Accuracy is bounded by the
  /// `dsp.fft.power_spectrum.f32` oracle pair. Sizes without the even-n
  /// radix-2 fast path fall back to the double pipeline.
  void power_spectrum_f32(std::span<const double> in, std::span<double> out,
                          double scale, FftScratch& scratch) const;

  /// out[k] = |X[k]| for the n/2+1 non-negative-frequency bins.
  void magnitude_spectrum(std::span<const double> in, std::span<double> out,
                          FftScratch& scratch) const;

 private:
  void build_radix2_tables();
  void build_bluestein();
  void build_real();

  /// Butterfly stages over data already in bit-reversed order.
  void butterflies(std::span<Complex> data) const;
  /// out[i] = in[bitrev_[i]] — fuses the input copy with the permutation.
  void permute_copy(std::span<const Complex> in, std::span<Complex> out) const;
  void bluestein(std::span<const Complex> in, std::span<Complex> out,
                 FftScratch& scratch) const;
  /// Half-length complex transform of the packed even/odd samples, written
  /// into out[0..n/2-1]; valid for even-n real plans.
  void half_transform(std::span<const double> in, std::span<Complex> out,
                      FftScratch& scratch) const;

  std::size_t n_;
  Kind kind_;
  bool radix2_;

  // Radix-2 tables (power-of-two complex plans).
  std::vector<std::size_t> bitrev_;  ///< bit-reversed index of each position
  std::vector<Complex> twiddles_;    ///< stage with half-length h at [h, 2h)
  std::vector<float> twiddles_f_;    ///< same table narrowed, interleaved re/im

  // Bluestein state (non-power-of-two complex plans).
  std::shared_ptr<const FftPlan> pad_plan_;  ///< radix-2 plan of size m
  std::vector<Complex> chirp_;       ///< w[k] = exp(-i*pi*k^2/n)
  std::vector<Complex> kernel_fft_;  ///< forward FFT of the padded chirp kernel

  // Real-plan state.
  std::shared_ptr<const FftPlan> half_plan_;  ///< complex plan of size n/2 (even n)
  std::shared_ptr<const FftPlan> full_plan_;  ///< complex plan of size n (odd n)
  std::vector<Complex> real_twiddles_;        ///< exp(-2*pi*i*k/n), k = 0..n/2
  std::vector<float> real_twiddles_f_;        ///< narrowed, interleaved re/im
};

}  // namespace earsonar::dsp
