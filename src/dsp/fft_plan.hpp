// Planned FFT engine.
//
// An FftPlan precomputes everything about a transform that depends only on
// its size — the bit-reversal permutation, per-stage twiddle tables, the
// Bluestein chirp kernel (and its forward FFT) for non-power-of-two sizes,
// and the pack/unpack twiddles of the real-input half-length algorithm — so
// the per-call work is reduced to butterflies over caller-provided buffers.
// Together with the scratch-buffer execute() overloads this makes
// steady-state transforms allocation-free, which is what the per-echo PSD
// loop in the absorption stage (hundreds of 512-point transforms per
// recording) needs.
//
// Plans are immutable after construction and safe to share across threads;
// FftPlan::get() returns them from a process-wide, mutex-guarded cache keyed
// by (size, kind). Scratch buffers are NOT thread-safe — give each thread its
// own FftScratch (the convenience wrappers in fft.cpp keep one per thread).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "dsp/fft.hpp"

namespace earsonar::dsp {

/// Reusable work buffers for the execute() overloads. Buffers grow on first
/// use with a given plan size and are reused (never shrunk) afterwards.
struct FftScratch {
  std::vector<Complex> a;
  std::vector<Complex> b;
  std::vector<Complex> c;
};

class FftPlan {
 public:
  /// kComplex plans transform n complex points (any n >= 1; radix-2 for
  /// powers of two, cached Bluestein otherwise). kReal plans transform n real
  /// points into the n/2+1 non-negative-frequency bins via the half-length
  /// complex transform (even n; odd n falls back to a full complex plan).
  enum class Kind { kComplex, kReal };

  FftPlan(std::size_t n, Kind kind);

  /// Process-wide plan cache (thread-safe). Returns a shared immutable plan.
  static std::shared_ptr<const FftPlan> get(std::size_t n, Kind kind);

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] Kind kind() const { return kind_; }
  /// Number of complex bins a real forward transform produces (n/2 + 1).
  [[nodiscard]] std::size_t real_bins() const { return n_ / 2 + 1; }

  // --- complex transforms (Kind::kComplex) ---------------------------------

  /// In-place forward DFT; only valid for power-of-two plans.
  void forward_inplace(std::span<Complex> data) const;

  /// Forward DFT, out-of-place (in and out must not alias; |in| = |out| = n).
  void forward(std::span<const Complex> in, std::span<Complex> out,
               FftScratch& scratch) const;

  /// Inverse DFT with the 1/n normalization (conjugates in the output buffer;
  /// no input copy is made).
  void inverse(std::span<const Complex> in, std::span<Complex> out,
               FftScratch& scratch) const;

  // --- real transforms (Kind::kReal) ---------------------------------------

  /// Forward DFT of n real samples; out receives the n/2+1 bins X[0..n/2].
  void forward_real(std::span<const double> in, std::span<Complex> out,
                    FftScratch& scratch) const;

  /// Inverse of forward_real: n/2+1 bins (Hermitian symmetry implied) back to
  /// n real samples, including the 1/n normalization.
  void inverse_real(std::span<const Complex> spectrum, std::span<double> out,
                    FftScratch& scratch) const;

  /// out[k] = |X[k]|^2 * scale for the n/2+1 non-negative-frequency bins.
  void power_spectrum(std::span<const double> in, std::span<double> out,
                      double scale, FftScratch& scratch) const;

  /// out[k] = |X[k]| for the n/2+1 non-negative-frequency bins.
  void magnitude_spectrum(std::span<const double> in, std::span<double> out,
                          FftScratch& scratch) const;

 private:
  void build_radix2_tables();
  void build_bluestein();
  void build_real();

  /// Butterfly stages over data already in bit-reversed order.
  void butterflies(std::span<Complex> data) const;
  /// out[i] = in[bitrev_[i]] — fuses the input copy with the permutation.
  void permute_copy(std::span<const Complex> in, std::span<Complex> out) const;
  void bluestein(std::span<const Complex> in, std::span<Complex> out,
                 FftScratch& scratch) const;
  /// Half-length complex transform of the packed even/odd samples, written
  /// into out[0..n/2-1]; valid for even-n real plans.
  void half_transform(std::span<const double> in, std::span<Complex> out,
                      FftScratch& scratch) const;

  std::size_t n_;
  Kind kind_;
  bool radix2_;

  // Radix-2 tables (power-of-two complex plans).
  std::vector<std::size_t> bitrev_;  ///< bit-reversed index of each position
  std::vector<Complex> twiddles_;    ///< stage with half-length h at [h, 2h)

  // Bluestein state (non-power-of-two complex plans).
  std::shared_ptr<const FftPlan> pad_plan_;  ///< radix-2 plan of size m
  std::vector<Complex> chirp_;       ///< w[k] = exp(-i*pi*k^2/n)
  std::vector<Complex> kernel_fft_;  ///< forward FFT of the padded chirp kernel

  // Real-plan state.
  std::shared_ptr<const FftPlan> half_plan_;  ///< complex plan of size n/2 (even n)
  std::shared_ptr<const FftPlan> full_plan_;  ///< complex plan of size n (odd n)
  std::vector<Complex> real_twiddles_;        ///< exp(-2*pi*i*k/n), k = 0..n/2
};

}  // namespace earsonar::dsp
