// Butterworth IIR filter design via the classic analog-prototype ->
// frequency-transform -> bilinear-transform route, emitted as a cascade of
// second-order sections. The paper's preprocessor uses the band-pass variant
// (16-20 kHz band at a 48 kHz sample rate).
#pragma once

#include "dsp/biquad.hpp"

namespace earsonar::dsp {

/// Order-n Butterworth low-pass with cutoff `cutoff_hz` (0 < f < Nyquist).
BiquadCascade butterworth_lowpass(int order, double cutoff_hz, double sample_rate);

/// Order-n Butterworth high-pass with cutoff `cutoff_hz` (0 < f < Nyquist).
BiquadCascade butterworth_highpass(int order, double cutoff_hz, double sample_rate);

/// Butterworth band-pass between `low_hz` and `high_hz`. `order` is the
/// prototype order; the digital filter has 2*order poles (matching the
/// scipy/matlab convention for "order-N bandpass").
BiquadCascade butterworth_bandpass(int order, double low_hz, double high_hz,
                                   double sample_rate);

}  // namespace earsonar::dsp
