// Baseline-ISA kernel build: whatever the default compile flags provide —
// SSE2 on x86-64, NEON on aarch64, Pack emulation elsewhere.
#include "dsp/kernel_impl.hpp"

namespace earsonar::dsp::simd {

const KernelSet& base_set() {
#if defined(EARSONAR_SIMD_X86)
  static const KernelSet set = make_kernel_set<VecSse2D, VecSse2F>("sse2");
  return set;
#elif defined(EARSONAR_SIMD_NEON)
  static const KernelSet set = make_kernel_set<VecNeonD, VecNeonF>("neon");
  return set;
#else
  return pack_set_w2();
#endif
}

}  // namespace earsonar::dsp::simd
