// Multi-channel interleaved biquad cascade.
//
// A serving host runs many concurrent streaming sessions through the *same*
// band-pass design; filtering them one at a time leaves every SIMD lane but
// one empty. MultiBiquadCascade processes up to `channels` independent
// streams in one pass by interleaving them frame-major — buf[t*W + lane] is
// sample t of the stream in `lane` — and running each transposed-DF2 section
// across all lanes at once (simd::KernelSet::biquad_interleaved_d).
//
// Per-lane arithmetic is the exact BiquadCascade recurrence in the same
// order, so each channel's output is bit-identical to filtering it alone
// through a BiquadCascade with the same sections and state — the property
// StreamingSession::feed_many relies on and the `simd`-labeled equivalence
// tests pin. Channel state can be moved lane<->cascade via
// set_channel_state / get_channel_state, so a stream may alternate freely
// between batched and individual filtering.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dsp/biquad.hpp"

namespace earsonar::dsp {

class MultiBiquadCascade {
 public:
  /// `channels` independent streams (>= 1), each filtered by its own copy of
  /// `sections`. Channels beyond SIMD width are handled in ceil(channels/W)
  /// lane groups.
  MultiBiquadCascade(std::vector<Biquad> sections, std::size_t channels);

  [[nodiscard]] std::size_t channels() const { return channels_; }
  [[nodiscard]] std::size_t section_count() const { return sections_.size(); }
  /// SIMD lanes per group under the active dispatch level.
  [[nodiscard]] std::size_t lanes() const { return lanes_; }

  /// Filters one equal-length block per channel (stateful across calls).
  /// inputs[c] and outputs[c] must have the same length for every channel;
  /// outputs[c] may alias inputs[c].
  void process(std::span<const std::span<const double>> inputs,
               std::span<const std::span<double>> outputs);

  /// Copies a BiquadCascade-style delay line into / out of channel `c`.
  /// `state` must have section_count() entries.
  void set_channel_state(std::size_t c, std::span<const BiquadCascade::State> state);
  void get_channel_state(std::size_t c, std::span<BiquadCascade::State> out) const;

  /// Clears every channel's delay lines.
  void reset();

 private:
  [[nodiscard]] std::size_t state_index(std::size_t section, std::size_t c) const {
    return (section * groups_ + c / lanes_) * lanes_ + c % lanes_;
  }

  std::vector<Biquad> sections_;
  std::size_t channels_;
  std::size_t lanes_;   ///< kernel lane width (doubles)
  std::size_t groups_;  ///< ceil(channels / lanes)
  std::vector<double> z1_, z2_;  ///< [section][group][lane]
  std::vector<double> buf_;      ///< interleaved frame buffer, grown on demand
};

}  // namespace earsonar::dsp
