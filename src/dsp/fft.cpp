#include "dsp/fft.hpp"

#include <cmath>

#include "common/error.hpp"
#include "dsp/fft_plan.hpp"

namespace earsonar::dsp {

namespace {

// Per-thread scratch for the convenience API: steady-state transforms reuse
// these buffers, so repeated calls at the same size are allocation-free apart
// from the returned vector itself.
FftScratch& local_scratch() {
  thread_local FftScratch scratch;
  return scratch;
}

}  // namespace

bool is_power_of_two(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

std::size_t next_power_of_two(std::size_t n) {
  require(n >= 1, "next_power_of_two: n must be >= 1");
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_radix2_inplace(std::span<Complex> data) {
  const std::size_t n = data.size();
  require(is_power_of_two(n), "fft_radix2_inplace: size must be a power of two");
  FftPlan::get(n, FftPlan::Kind::kComplex)->forward_inplace(data);
}

std::vector<Complex> fft(std::span<const Complex> input) {
  require_nonempty("fft input", input.size());
  const auto plan = FftPlan::get(input.size(), FftPlan::Kind::kComplex);
  std::vector<Complex> out(input.size());
  plan->forward(input, out, local_scratch());
  return out;
}

std::vector<Complex> ifft(std::span<const Complex> input) {
  require_nonempty("ifft input", input.size());
  const auto plan = FftPlan::get(input.size(), FftPlan::Kind::kComplex);
  std::vector<Complex> out(input.size());
  // The plan conjugates inside its work buffers — no conjugated input copy.
  plan->inverse(input, out, local_scratch());
  return out;
}

std::vector<Complex> fft_real(std::span<const double> input) {
  require_nonempty("fft_real input", input.size());
  const std::size_t n = input.size();
  const auto plan = FftPlan::get(n, FftPlan::Kind::kReal);
  std::vector<Complex> out(n);
  plan->forward_real(input, std::span<Complex>(out.data(), plan->real_bins()),
                     local_scratch());
  // Mirror the Hermitian half into the negative-frequency bins.
  for (std::size_t k = plan->real_bins(); k < n; ++k) out[k] = std::conj(out[n - k]);
  return out;
}

std::vector<Complex> rfft(std::span<const double> input) {
  require_nonempty("rfft input", input.size());
  const auto plan = FftPlan::get(input.size(), FftPlan::Kind::kReal);
  std::vector<Complex> out(plan->real_bins());
  plan->forward_real(input, out, local_scratch());
  return out;
}

std::vector<double> magnitude_spectrum(std::span<const double> input) {
  require_nonempty("magnitude_spectrum input", input.size());
  const auto plan = FftPlan::get(input.size(), FftPlan::Kind::kReal);
  std::vector<double> mag(plan->real_bins());
  plan->magnitude_spectrum(input, mag, local_scratch());
  return mag;
}

std::vector<double> power_spectrum(std::span<const double> input) {
  require_nonempty("power_spectrum input", input.size());
  const auto plan = FftPlan::get(input.size(), FftPlan::Kind::kReal);
  std::vector<double> power(plan->real_bins());
  plan->power_spectrum(input, power, 1.0 / static_cast<double>(input.size()),
                       local_scratch());
  return power;
}

double bin_frequency(std::size_t bin, std::size_t fft_size, double sample_rate) {
  require_positive("sample_rate", sample_rate);
  require(fft_size >= 1, "bin_frequency: fft_size must be >= 1");
  return static_cast<double>(bin) * sample_rate / static_cast<double>(fft_size);
}

std::size_t frequency_to_bin(double frequency_hz, std::size_t fft_size, double sample_rate) {
  require_positive("sample_rate", sample_rate);
  require(frequency_hz >= 0.0 && frequency_hz <= sample_rate / 2.0,
          "frequency_to_bin: frequency outside [0, Nyquist]");
  return static_cast<std::size_t>(
      std::lround(frequency_hz / sample_rate * static_cast<double>(fft_size)));
}

}  // namespace earsonar::dsp
