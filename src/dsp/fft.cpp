#include "dsp/fft.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace earsonar::dsp {

namespace {

constexpr double kPi = std::numbers::pi;

// Conjugate trick: IFFT(x) = conj(FFT(conj(x))) / N.
std::vector<Complex> conjugate(std::span<const Complex> xs) {
  std::vector<Complex> out(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) out[i] = std::conj(xs[i]);
  return out;
}

// Bluestein chirp-z: express an arbitrary-length DFT as a convolution, which
// is evaluated with a zero-padded power-of-two FFT.
std::vector<Complex> fft_bluestein(std::span<const Complex> input) {
  const std::size_t n = input.size();
  const std::size_t m = next_power_of_two(2 * n - 1);

  std::vector<Complex> a(m, Complex{0.0, 0.0});
  std::vector<Complex> b(m, Complex{0.0, 0.0});
  std::vector<Complex> w(n);  // w[k] = exp(-i*pi*k^2/n)
  for (std::size_t k = 0; k < n; ++k) {
    // k^2 mod 2n keeps the angle argument small for large k.
    const std::size_t k2 = (k * k) % (2 * n);
    const double angle = -kPi * static_cast<double>(k2) / static_cast<double>(n);
    w[k] = Complex{std::cos(angle), std::sin(angle)};
    a[k] = input[k] * w[k];
  }
  b[0] = Complex{1.0, 0.0};
  for (std::size_t k = 1; k < n; ++k) {
    b[k] = std::conj(w[k]);
    b[m - k] = b[k];
  }

  fft_radix2_inplace(a);
  fft_radix2_inplace(b);
  for (std::size_t i = 0; i < m; ++i) a[i] *= b[i];
  // Inverse transform of the product.
  for (auto& v : a) v = std::conj(v);
  fft_radix2_inplace(a);
  const double scale = 1.0 / static_cast<double>(m);
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) out[k] = std::conj(a[k]) * scale * w[k];
  return out;
}

}  // namespace

bool is_power_of_two(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

std::size_t next_power_of_two(std::size_t n) {
  require(n >= 1, "next_power_of_two: n must be >= 1");
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_radix2_inplace(std::span<Complex> data) {
  const std::size_t n = data.size();
  require(is_power_of_two(n), "fft_radix2_inplace: size must be a power of two");
  if (n == 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  // Butterfly stages.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = -2.0 * kPi / static_cast<double>(len);
    const Complex wlen{std::cos(angle), std::sin(angle)};
    for (std::size_t i = 0; i < n; i += len) {
      Complex w{1.0, 0.0};
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

std::vector<Complex> fft(std::span<const Complex> input) {
  require_nonempty("fft input", input.size());
  if (is_power_of_two(input.size())) {
    std::vector<Complex> data(input.begin(), input.end());
    fft_radix2_inplace(data);
    return data;
  }
  return fft_bluestein(input);
}

std::vector<Complex> ifft(std::span<const Complex> input) {
  require_nonempty("ifft input", input.size());
  std::vector<Complex> conj_in = conjugate(input);
  std::vector<Complex> transformed = fft(conj_in);
  const double scale = 1.0 / static_cast<double>(input.size());
  for (auto& v : transformed) v = std::conj(v) * scale;
  return transformed;
}

std::vector<Complex> fft_real(std::span<const double> input) {
  require_nonempty("fft_real input", input.size());
  std::vector<Complex> data(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) data[i] = Complex{input[i], 0.0};
  return fft(data);
}

std::vector<Complex> rfft(std::span<const double> input) {
  std::vector<Complex> full = fft_real(input);
  full.resize(input.size() / 2 + 1);
  return full;
}

std::vector<double> magnitude_spectrum(std::span<const double> input) {
  std::vector<Complex> bins = rfft(input);
  std::vector<double> mag(bins.size());
  for (std::size_t i = 0; i < bins.size(); ++i) mag[i] = std::abs(bins[i]);
  return mag;
}

std::vector<double> power_spectrum(std::span<const double> input) {
  std::vector<Complex> bins = rfft(input);
  std::vector<double> power(bins.size());
  const double scale = 1.0 / static_cast<double>(input.size());
  for (std::size_t i = 0; i < bins.size(); ++i) power[i] = std::norm(bins[i]) * scale;
  return power;
}

double bin_frequency(std::size_t bin, std::size_t fft_size, double sample_rate) {
  require_positive("sample_rate", sample_rate);
  require(fft_size >= 1, "bin_frequency: fft_size must be >= 1");
  return static_cast<double>(bin) * sample_rate / static_cast<double>(fft_size);
}

std::size_t frequency_to_bin(double frequency_hz, std::size_t fft_size, double sample_rate) {
  require_positive("sample_rate", sample_rate);
  require(frequency_hz >= 0.0 && frequency_hz <= sample_rate / 2.0,
          "frequency_to_bin: frequency outside [0, Nyquist]");
  return static_cast<std::size_t>(
      std::lround(frequency_hz / sample_rate * static_cast<double>(fft_size)));
}

}  // namespace earsonar::dsp
