// Intrinsic-free kernel builds: Pack<T, W> emulation at both supported lane
// geometries. EARSONAR_SIMD=scalar routes here; the parity tests compare
// these against the intrinsic sets of the same width bit for bit.
#include "dsp/kernel_impl.hpp"

namespace earsonar::dsp::simd {

const KernelSet& pack_set_w2() {
  static const KernelSet set = make_kernel_set<Pack<double, 2>, Pack<float, 4>>("pack2");
  return set;
}

const KernelSet& pack_set_w4() {
  static const KernelSet set = make_kernel_set<Pack<double, 4>, Pack<float, 8>>("pack4");
  return set;
}

}  // namespace earsonar::dsp::simd
