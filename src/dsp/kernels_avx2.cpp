// AVX2 kernel build. This translation unit is the only one compiled with
// -mavx2 (see src/dsp/CMakeLists.txt), so __AVX2__ is defined here even in a
// baseline build, and VecAvx2D/F exist. avx2_set() itself must stay free of
// AVX2 instructions — it runs before the dispatcher's cpuid check — which it
// is: it only returns the address of a table of function pointers.
//
// On targets where the compiler rejects -mavx2 (non-x86), this file compiles
// without __AVX2__ and the set is absent.
#include "dsp/kernel_impl.hpp"

namespace earsonar::dsp::simd {

#if defined(__AVX2__)
const KernelSet* avx2_set() {
  static const KernelSet set = make_kernel_set<VecAvx2D, VecAvx2F>("avx2");
  return &set;
}
#else
const KernelSet* avx2_set() { return nullptr; }
#endif

}  // namespace earsonar::dsp::simd
