// Convolution and correlation. The echo segmenter's parity decomposition
// (paper §IV-B3) is built on the *auto-convolution* (x * x)[m], whose local
// maxima mark centers of even/odd symmetry in the pulse train.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace earsonar::dsp {

/// Full linear convolution; picks the direct or FFT path by size.
std::vector<double> convolve(std::span<const double> a, std::span<const double> b);

/// Direct O(N*M) convolution (reference implementation, used for small sizes
/// and as the oracle in tests).
std::vector<double> convolve_direct(std::span<const double> a, std::span<const double> b);

/// FFT-based convolution (zero-padded to the next power of two).
std::vector<double> convolve_fft(std::span<const double> a, std::span<const double> b);

/// Auto-convolution (x * x); length 2N-1. Peak positions m correspond to
/// symmetry centers at m/2 in the original sequence.
std::vector<double> autoconvolve(std::span<const double> x);

/// Full cross-correlation r[k] = sum_n a[n] * b[n - k + (len(b)-1)],
/// length N+M-1, lag k - (len(b)-1).
std::vector<double> cross_correlate(std::span<const double> a, std::span<const double> b);

/// Normalized cross-correlation peak value in [-1, 1] between two sequences of
/// equal length (zero lag only).
double normalized_correlation(std::span<const double> a, std::span<const double> b);

}  // namespace earsonar::dsp
