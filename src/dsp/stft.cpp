#include "dsp/stft.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "dsp/fft.hpp"
#include "dsp/fft_plan.hpp"
#include "dsp/simd.hpp"

namespace earsonar::dsp {

void StftConfig::validate() const {
  require(window_length >= 8, "StftConfig: window_length must be >= 8");
  require(hop >= 1 && hop <= window_length, "StftConfig: hop must be in [1, window]");
  require(is_power_of_two(fft_size), "StftConfig: fft_size must be a power of two");
  require(fft_size >= window_length, "StftConfig: fft_size must cover the window");
}

Spectrogram stft(std::span<const double> signal, double sample_rate,
                 const StftConfig& config) {
  config.validate();
  require_positive("sample_rate", sample_rate);
  require(signal.size() >= config.window_length, "stft: signal shorter than window");

  const std::vector<double> win = make_window(config.window, config.window_length);
  Spectrogram out;
  out.frequency_hz.resize(config.fft_size / 2 + 1);
  for (std::size_t b = 0; b < out.frequency_hz.size(); ++b)
    out.frequency_hz[b] = bin_frequency(b, config.fft_size, sample_rate);

  // One plan + scratch for every frame; the frame buffer is reused too.
  const auto plan = FftPlan::get(config.fft_size, FftPlan::Kind::kReal);
  thread_local FftScratch scratch;
  const double norm = 1.0 / static_cast<double>(config.fft_size);
  std::vector<double> frame(config.fft_size);
  for (std::size_t start = 0; start + config.hop <= signal.size();
       start += config.hop) {
    std::fill(frame.begin(), frame.end(), 0.0);
    const std::size_t take = std::min(config.window_length, signal.size() - start);
    simd::active().mul_d(frame.data(), signal.data() + start, win.data(), take);

    std::vector<double> power(plan->real_bins());
    plan->power_spectrum(frame, power, norm, scratch);
    out.power.push_back(std::move(power));
    out.time_s.push_back(
        (static_cast<double>(start) + config.window_length / 2.0) / sample_rate);
    if (start + config.window_length >= signal.size()) break;
  }
  return out;
}

std::vector<double> peak_frequency_track(const Spectrogram& spectrogram) {
  std::vector<double> track;
  track.reserve(spectrogram.frames());
  for (const auto& frame : spectrogram.power)
    track.push_back(spectrogram.frequency_hz[argmax(frame)]);
  return track;
}

}  // namespace earsonar::dsp
