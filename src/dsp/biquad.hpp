// Second-order IIR sections and cascades — the runtime form of every filter
// the Butterworth designer produces.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace earsonar::dsp {

/// One direct-form-II-transposed second-order section:
///   H(z) = (b0 + b1 z^-1 + b2 z^-2) / (1 + a1 z^-1 + a2 z^-2)
struct Biquad {
  double b0 = 1.0, b1 = 0.0, b2 = 0.0;
  double a1 = 0.0, a2 = 0.0;

  /// Complex frequency response at normalized angular frequency w (rad/sample).
  [[nodiscard]] std::complex<double> response(double w) const;

  /// True when both poles are strictly inside the unit circle.
  [[nodiscard]] bool is_stable() const;
};

/// A cascade of biquads with per-instance state, processed in sequence.
class BiquadCascade {
 public:
  /// Transposed-DF2 delay line of one section.
  struct State {
    double z1 = 0.0, z2 = 0.0;
  };

  BiquadCascade() = default;
  explicit BiquadCascade(std::vector<Biquad> sections);

  /// Filters one sample through every section (stateful).
  double process_sample(double x);

  /// Filters a block; returns the filtered signal. Stateful across calls.
  std::vector<double> process(std::span<const double> input);

  /// Zero-phase filtering: forward pass, reverse, forward again, reverse.
  /// Uses fresh state; does not disturb this cascade's streaming state.
  [[nodiscard]] std::vector<double> filtfilt(std::span<const double> input) const;

  /// Clears the delay lines.
  void reset();

  /// Combined complex response at normalized angular frequency w (rad/sample).
  [[nodiscard]] std::complex<double> response(double w) const;

  /// Combined magnitude response at `frequency_hz` given `sample_rate`.
  [[nodiscard]] double magnitude_at(double frequency_hz, double sample_rate) const;

  [[nodiscard]] bool is_stable() const;
  [[nodiscard]] std::size_t section_count() const { return sections_.size(); }
  [[nodiscard]] const std::vector<Biquad>& sections() const { return sections_; }

  /// Delay-line snapshot / restore — lets MultiBiquadCascade move a stream's
  /// filter state into an interleaved lane and back without re-filtering.
  [[nodiscard]] const std::vector<State>& state() const { return state_; }
  void set_state(std::vector<State> state);

 private:
  std::vector<Biquad> sections_;
  std::vector<State> state_;
};

}  // namespace earsonar::dsp
