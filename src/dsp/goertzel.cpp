#include "dsp/goertzel.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace earsonar::dsp {

double goertzel_power(std::span<const double> signal, double frequency_hz,
                      double sample_rate) {
  const double mag = goertzel_magnitude(signal, frequency_hz, sample_rate);
  return mag * mag / static_cast<double>(signal.size());
}

double goertzel_magnitude(std::span<const double> signal, double frequency_hz,
                          double sample_rate) {
  require_nonempty("goertzel input", signal.size());
  require_positive("sample_rate", sample_rate);
  require(frequency_hz >= 0.0 && frequency_hz <= sample_rate / 2.0,
          "goertzel: frequency outside [0, Nyquist]");
  const double w = 2.0 * std::numbers::pi * frequency_hz / sample_rate;
  const double coeff = 2.0 * std::cos(w);
  double s0 = 0.0, s1 = 0.0, s2 = 0.0;
  for (double x : signal) {
    s0 = x + coeff * s1 - s2;
    s2 = s1;
    s1 = s0;
  }
  const double real = s1 - s2 * std::cos(w);
  const double imag = s2 * std::sin(w);
  return std::sqrt(real * real + imag * imag);
}

}  // namespace earsonar::dsp
