#include "dsp/fft_plan.hpp"

#include <cmath>
#include <mutex>
#include <numbers>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"
#include "common/fault.hpp"

namespace earsonar::dsp {

namespace {
constexpr double kPi = std::numbers::pi;
}  // namespace

FftPlan::FftPlan(std::size_t n, Kind kind)
    : n_(n), kind_(kind), radix2_(is_power_of_two(n)) {
  require(n >= 1, "FftPlan: size must be >= 1");
  if (kind == Kind::kComplex) {
    if (radix2_) build_radix2_tables();
    else build_bluestein();
  } else {
    build_real();
  }
}

std::shared_ptr<const FftPlan> FftPlan::get(std::size_t n, Kind kind) {
  if (fault::point("fft.plan")) fail("injected fault: fft.plan");
  static std::mutex mutex;
  static std::unordered_map<std::uint64_t, std::shared_ptr<const FftPlan>> cache;
  const std::uint64_t key =
      (static_cast<std::uint64_t>(n) << 1) | (kind == Kind::kReal ? 1u : 0u);
  {
    std::lock_guard<std::mutex> lock(mutex);
    if (auto it = cache.find(key); it != cache.end()) return it->second;
  }
  // Build outside the lock: Bluestein and real plans recursively fetch their
  // helper plans through get(), which must not re-enter a held mutex. A
  // concurrent duplicate build is harmless — first insert wins.
  auto plan = std::make_shared<const FftPlan>(n, kind);
  std::lock_guard<std::mutex> lock(mutex);
  return cache.try_emplace(key, std::move(plan)).first->second;
}

void FftPlan::build_radix2_tables() {
  bitrev_.resize(n_);
  bitrev_[0] = 0;
  for (std::size_t i = 1, j = 0; i < n_; ++i) {
    std::size_t bit = n_ >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    bitrev_[i] = j;
  }
  // Stage with half-length h stores its h twiddles at [h, 2h): the k-th entry
  // of stage h is exp(-2*pi*i*k / (2h)). Total n-1 entries for all stages.
  twiddles_.resize(n_ >= 2 ? n_ : 1);
  for (std::size_t h = 1; h < n_; h <<= 1) {
    const double angle = -kPi / static_cast<double>(h);
    for (std::size_t k = 0; k < h; ++k) {
      const double a = angle * static_cast<double>(k);
      twiddles_[h + k] = Complex{std::cos(a), std::sin(a)};
    }
  }
}

void FftPlan::build_bluestein() {
  const std::size_t m = next_power_of_two(2 * n_ - 1);
  pad_plan_ = get(m, Kind::kComplex);
  chirp_.resize(n_);
  std::vector<Complex> b(m, Complex{0.0, 0.0});
  for (std::size_t k = 0; k < n_; ++k) {
    // k^2 mod 2n keeps the angle argument small for large k.
    const std::size_t k2 = (k * k) % (2 * n_);
    const double angle = -kPi * static_cast<double>(k2) / static_cast<double>(n_);
    chirp_[k] = Complex{std::cos(angle), std::sin(angle)};
  }
  b[0] = Complex{1.0, 0.0};
  for (std::size_t k = 1; k < n_; ++k) {
    b[k] = std::conj(chirp_[k]);
    b[m - k] = b[k];
  }
  pad_plan_->forward_inplace(b);
  kernel_fft_ = std::move(b);
}

void FftPlan::build_real() {
  if (n_ == 1) return;
  if (n_ % 2 == 0) {
    half_plan_ = get(n_ / 2, Kind::kComplex);
    real_twiddles_.resize(n_ / 2 + 1);
    for (std::size_t k = 0; k <= n_ / 2; ++k) {
      const double a = -2.0 * kPi * static_cast<double>(k) / static_cast<double>(n_);
      real_twiddles_[k] = Complex{std::cos(a), std::sin(a)};
    }
  } else {
    full_plan_ = get(n_, Kind::kComplex);
  }
}

// The per-call loops below work on raw double* views of the complex buffers
// (std::complex<double> guarantees array-of-double layout) with every member
// hoisted into a local first. Writing through the std::span<Complex> while
// reading members makes GCC assume the stores may alias this->twiddles_ /
// this->n_, so it reloads them every iteration and assembles each Complex
// through a stack round-trip — measured ~10x slower than this form.

void FftPlan::butterflies(std::span<Complex> data) const {
  double* d = reinterpret_cast<double*>(data.data());
  const std::size_t n2 = 2 * n_;
  // The first two stages need no multiplies: their twiddles are exactly 1 and
  // {1, -i} (the table's cos(-pi/2) carries a ~6e-17 real part; the exact
  // constants here are the mathematically correct values).
  if (n_ >= 2) {
    for (std::size_t i = 0; i < n2; i += 4) {
      const double ur = d[i], ui = d[i + 1], vr = d[i + 2], vi = d[i + 3];
      d[i] = ur + vr;
      d[i + 1] = ui + vi;
      d[i + 2] = ur - vr;
      d[i + 3] = ui - vi;
    }
  }
  if (n_ >= 4) {
    for (std::size_t i = 0; i < n2; i += 8) {
      const double u0r = d[i], u0i = d[i + 1], v0r = d[i + 4], v0i = d[i + 5];
      d[i] = u0r + v0r;
      d[i + 1] = u0i + v0i;
      d[i + 4] = u0r - v0r;
      d[i + 5] = u0i - v0i;
      const double u1r = d[i + 2], u1i = d[i + 3];
      const double v1r = d[i + 7], v1i = -d[i + 6];  // x * -i
      d[i + 2] = u1r + v1r;
      d[i + 3] = u1i + v1i;
      d[i + 6] = u1r - v1r;
      d[i + 7] = u1i - v1i;
    }
  }
  for (std::size_t h = 4; h < n_; h <<= 1) {
    const double* w = reinterpret_cast<const double*>(twiddles_.data() + h);
    const std::size_t h2 = 2 * h;
    for (std::size_t i = 0; i < n2; i += 2 * h2) {
      for (std::size_t k = 0; k < h2; k += 2) {
        const std::size_t p = i + k, q = p + h2;
        const double ur = d[p], ui = d[p + 1];
        const double xr = d[q], xi = d[q + 1];
        const double wr = w[k], wi = w[k + 1];
        const double vr = xr * wr - xi * wi;
        const double vi = xr * wi + xi * wr;
        d[p] = ur + vr;
        d[p + 1] = ui + vi;
        d[q] = ur - vr;
        d[q + 1] = ui - vi;
      }
    }
  }
}

void FftPlan::permute_copy(std::span<const Complex> in, std::span<Complex> out) const {
  const Complex* src = in.data();
  Complex* dst = out.data();
  const std::size_t* rev = bitrev_.data();
  const std::size_t n = n_;
  for (std::size_t i = 0; i < n; ++i) dst[i] = src[rev[i]];
}

void FftPlan::forward_inplace(std::span<Complex> data) const {
  require(kind_ == Kind::kComplex && radix2_,
          "FftPlan::forward_inplace: needs a power-of-two complex plan");
  require(data.size() == n_, "FftPlan::forward_inplace: size mismatch");
  Complex* d = data.data();
  const std::size_t* rev = bitrev_.data();
  const std::size_t n = n_;
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t j = rev[i];
    if (i < j) std::swap(d[i], d[j]);
  }
  butterflies(data);
}

void FftPlan::forward(std::span<const Complex> in, std::span<Complex> out,
                      FftScratch& scratch) const {
  if (fault::point("fft.execute")) fail("injected fault: fft.execute");
  require(kind_ == Kind::kComplex, "FftPlan::forward: complex plan required");
  require(in.size() == n_ && out.size() == n_, "FftPlan::forward: size mismatch");
  if (radix2_) {
    permute_copy(in, out);
    butterflies(out);
    return;
  }
  bluestein(in, out, scratch);
}

void FftPlan::inverse(std::span<const Complex> in, std::span<Complex> out,
                      FftScratch& scratch) const {
  require(kind_ == Kind::kComplex, "FftPlan::inverse: complex plan required");
  require(in.size() == n_ && out.size() == n_, "FftPlan::inverse: size mismatch");
  const double scale = 1.0 / static_cast<double>(n_);
  // IFFT(x) = conj(FFT(conj(x))) / n, conjugating in the work buffers rather
  // than materializing a conjugated input copy.
  if (radix2_) {
    const std::size_t n = n_;
    const std::size_t* rev = bitrev_.data();
    {
      const double* src = reinterpret_cast<const double*>(in.data());
      double* dst = reinterpret_cast<double*>(out.data());
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t j = 2 * rev[i];
        dst[2 * i] = src[j];
        dst[2 * i + 1] = -src[j + 1];
      }
    }
    butterflies(out);
    {
      double* dst = reinterpret_cast<double*>(out.data());
      for (std::size_t i = 0; i < 2 * n; i += 2) {
        dst[i] *= scale;
        dst[i + 1] *= -scale;
      }
    }
    return;
  }
  scratch.b.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) scratch.b[i] = std::conj(in[i]);
  bluestein(std::span<const Complex>(scratch.b.data(), n_), out, scratch);
  for (auto& v : out) v = std::conj(v) * scale;
}

void FftPlan::bluestein(std::span<const Complex> in, std::span<Complex> out,
                        FftScratch& scratch) const {
  const std::size_t m = pad_plan_->size();
  const std::size_t n = n_;
  scratch.a.assign(m, Complex{0.0, 0.0});
  std::span<Complex> a(scratch.a.data(), m);
  double* ad = reinterpret_cast<double*>(scratch.a.data());
  {
    const double* x = reinterpret_cast<const double*>(in.data());
    const double* c = reinterpret_cast<const double*>(chirp_.data());
    for (std::size_t k = 0; k < 2 * n; k += 2) {
      const double xr = x[k], xi = x[k + 1], cr = c[k], ci = c[k + 1];
      ad[k] = xr * cr - xi * ci;
      ad[k + 1] = xr * ci + xi * cr;
    }
  }
  pad_plan_->forward_inplace(a);
  {
    const double* kf = reinterpret_cast<const double*>(kernel_fft_.data());
    // Fold the conjugate trick's input conjugation into the product store.
    for (std::size_t i = 0; i < 2 * m; i += 2) {
      const double xr = ad[i], xi = ad[i + 1], kr = kf[i], ki = kf[i + 1];
      ad[i] = xr * kr - xi * ki;
      ad[i + 1] = -(xr * ki + xi * kr);
    }
  }
  pad_plan_->forward_inplace(a);
  const double scale = 1.0 / static_cast<double>(m);
  {
    const double* c = reinterpret_cast<const double*>(chirp_.data());
    double* o = reinterpret_cast<double*>(out.data());
    for (std::size_t k = 0; k < 2 * n; k += 2) {
      const double xr = ad[k] * scale, xi = -ad[k + 1] * scale;
      const double cr = c[k], ci = c[k + 1];
      o[k] = xr * cr - xi * ci;
      o[k + 1] = xr * ci + xi * cr;
    }
  }
}

void FftPlan::half_transform(std::span<const double> in, std::span<Complex> out,
                             FftScratch& scratch) const {
  const std::size_t h = n_ / 2;
  if (half_plan_->radix2_) {
    // Pack + bit-reverse in one pass, then run butterflies directly in out.
    const std::size_t* rev = half_plan_->bitrev_.data();
    const double* src = in.data();
    double* dst = reinterpret_cast<double*>(out.data());
    for (std::size_t i = 0; i < h; ++i) {
      const std::size_t j = 2 * rev[i];
      dst[2 * i] = src[j];
      dst[2 * i + 1] = src[j + 1];
    }
    half_plan_->butterflies(out.subspan(0, h));
    return;
  }
  scratch.b.resize(h);
  for (std::size_t j = 0; j < h; ++j) scratch.b[j] = Complex{in[2 * j], in[2 * j + 1]};
  // bluestein() only touches scratch.a, so scratch.b stays intact as input.
  half_plan_->bluestein(std::span<const Complex>(scratch.b.data(), h),
                        out.subspan(0, h), scratch);
}

void FftPlan::forward_real(std::span<const double> in, std::span<Complex> out,
                           FftScratch& scratch) const {
  if (fault::point("fft.execute")) fail("injected fault: fft.execute");
  require(kind_ == Kind::kReal, "FftPlan::forward_real: real plan required");
  require(in.size() == n_, "FftPlan::forward_real: input size mismatch");
  require(out.size() == real_bins(), "FftPlan::forward_real: output size mismatch");
  if (n_ == 1) {
    out[0] = Complex{in[0], 0.0};
    return;
  }
  if (full_plan_) {  // odd length: full complex transform, keep n/2+1 bins
    // Odd sizes are off the hot path; the full spectrum lives in scratch.c
    // (bluestein works through scratch.a, input through scratch.b).
    scratch.b.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) scratch.b[i] = Complex{in[i], 0.0};
    scratch.c.resize(n_);
    full_plan_->forward(std::span<const Complex>(scratch.b.data(), n_),
                        std::span<Complex>(scratch.c.data(), n_), scratch);
    for (std::size_t k = 0; k < real_bins(); ++k) out[k] = scratch.c[k];
    return;
  }

  // Even length: transform the packed half-length sequence z[j] = x[2j] +
  // i*x[2j+1], then untangle the even/odd spectra:
  //   X[k] = (Z[k] + conj(Z[h-k]))/2 - (i/2) * W[k] * (Z[k] - conj(Z[h-k])),
  // with W[k] = exp(-2*pi*i*k/n) and Z[h] = Z[0]. Bins are untangled in
  // (k, h-k) pairs so Z can live in the output buffer.
  const std::size_t h = n_ / 2;
  half_transform(in, out, scratch);
  double* o = reinterpret_cast<double*>(out.data());
  const double* w = reinterpret_cast<const double*>(real_twiddles_.data());
  const double z0r = o[0], z0i = o[1];
  o[0] = z0r + z0i;
  o[1] = 0.0;
  o[2 * h] = z0r - z0i;
  o[2 * h + 1] = 0.0;
  for (std::size_t k = 1; 2 * k <= h; ++k) {
    const double zkr = o[2 * k], zki = o[2 * k + 1];
    const double zmr = o[2 * (h - k)], zmi = o[2 * (h - k) + 1];
    // sum = (Z[k] + conj(Z[h-k]))/2, diff = -i/2 * W * (Z[k] - conj(Z[h-k]));
    // -i/2 * W folds into the twiddle as {W.imag, -W.real}/2.
    const double dr = zkr - zmr, di = zki + zmi;
    const double tkr = 0.5 * w[2 * k + 1], tki = -0.5 * w[2 * k];
    const double tmr = 0.5 * w[2 * (h - k) + 1], tmi = -0.5 * w[2 * (h - k)];
    // For the mirror bin, Z[m] - conj(Z[h-m]) with m = h-k is (-dr, di).
    o[2 * k] = 0.5 * (zkr + zmr) + tkr * dr - tki * di;
    o[2 * k + 1] = 0.5 * (zki - zmi) + tkr * di + tki * dr;
    o[2 * (h - k)] = 0.5 * (zmr + zkr) - tmr * dr - tmi * di;
    o[2 * (h - k) + 1] = 0.5 * (zmi - zki) + tmr * di - tmi * dr;
  }
}

void FftPlan::inverse_real(std::span<const Complex> spectrum, std::span<double> out,
                           FftScratch& scratch) const {
  require(kind_ == Kind::kReal, "FftPlan::inverse_real: real plan required");
  require(spectrum.size() == real_bins(),
          "FftPlan::inverse_real: spectrum size mismatch");
  require(out.size() == n_, "FftPlan::inverse_real: output size mismatch");
  if (n_ == 1) {
    out[0] = spectrum[0].real();
    return;
  }
  if (full_plan_) {  // odd length: rebuild the Hermitian spectrum, invert
    scratch.b.resize(n_);
    for (std::size_t k = 0; k < real_bins(); ++k) scratch.b[k] = spectrum[k];
    for (std::size_t k = real_bins(); k < n_; ++k)
      scratch.b[k] = std::conj(spectrum[n_ - k]);
    std::vector<Complex> time(n_);
    full_plan_->inverse(std::span<const Complex>(scratch.b.data(), n_), time, scratch);
    for (std::size_t i = 0; i < n_; ++i) out[i] = time[i].real();
    return;
  }

  // Even length: re-pack the half-length spectrum
  //   Z[k] = ((X[k] + conj(X[h-k])) + i * conj(W[k]) * (X[k] - conj(X[h-k]))) / 2
  // and run the half-length inverse; z[j] = x[2j] + i*x[2j+1].
  const std::size_t h = n_ / 2;
  scratch.b.resize(h);
  {
    const double* x = reinterpret_cast<const double*>(spectrum.data());
    const double* w = reinterpret_cast<const double*>(real_twiddles_.data());
    double* b = reinterpret_cast<double*>(scratch.b.data());
    for (std::size_t k = 0; k < h; ++k) {
      const double xkr = x[2 * k], xki = x[2 * k + 1];
      const double xmr = x[2 * (h - k)], xmi = -x[2 * (h - k) + 1];
      // i * conj(W[k]) folds into the twiddle as {W.imag, W.real}.
      const double wr = w[2 * k], wi = w[2 * k + 1];
      const double dr = xkr - xmr, di = xki - xmi;
      b[2 * k] = 0.5 * (xkr + xmr + wi * dr - wr * di);
      b[2 * k + 1] = 0.5 * (xki + xmi + wi * di + wr * dr);
    }
  }
  std::vector<Complex>& z = scratch.a;
  // half_plan_->inverse for the radix-2 case works out-of-place from
  // scratch.b into a second buffer; Bluestein additionally needs scratch.a
  // free, so give it a local buffer then.
  if (half_plan_->radix2_) {
    z.resize(h);
    half_plan_->inverse(std::span<const Complex>(scratch.b.data(), h),
                        std::span<Complex>(z.data(), h), scratch);
    for (std::size_t j = 0; j < h; ++j) {
      out[2 * j] = z[j].real();
      out[2 * j + 1] = z[j].imag();
    }
  } else {
    std::vector<Complex> zz(h);
    half_plan_->inverse(std::span<const Complex>(scratch.b.data(), h), zz, scratch);
    for (std::size_t j = 0; j < h; ++j) {
      out[2 * j] = zz[j].real();
      out[2 * j + 1] = zz[j].imag();
    }
  }
}

void FftPlan::power_spectrum(std::span<const double> in, std::span<double> out,
                             double scale, FftScratch& scratch) const {
  require(out.size() == real_bins(), "FftPlan::power_spectrum: output size mismatch");
  if (n_ % 2 == 0 || n_ == 1) {  // bins can live in scratch.c (unused here)
    scratch.c.resize(real_bins());
    std::span<Complex> bins(scratch.c.data(), real_bins());
    forward_real(in, bins, scratch);
    const double* b = reinterpret_cast<const double*>(bins.data());
    double* o = out.data();
    const std::size_t m = bins.size();
    for (std::size_t k = 0; k < m; ++k)
      o[k] = (b[2 * k] * b[2 * k] + b[2 * k + 1] * b[2 * k + 1]) * scale;
    return;
  }
  // Odd sizes route forward_real through scratch.c already; use a local.
  std::vector<Complex> local(real_bins());
  forward_real(in, local, scratch);
  for (std::size_t k = 0; k < local.size(); ++k) out[k] = std::norm(local[k]) * scale;
}

void FftPlan::magnitude_spectrum(std::span<const double> in, std::span<double> out,
                                 FftScratch& scratch) const {
  require(out.size() == real_bins(),
          "FftPlan::magnitude_spectrum: output size mismatch");
  if (n_ % 2 == 0 || n_ == 1) {
    scratch.c.resize(real_bins());
    std::span<Complex> bins(scratch.c.data(), real_bins());
    forward_real(in, bins, scratch);
    for (std::size_t k = 0; k < bins.size(); ++k) out[k] = std::abs(bins[k]);
    return;
  }
  std::vector<Complex> local(real_bins());
  forward_real(in, local, scratch);
  for (std::size_t k = 0; k < local.size(); ++k) out[k] = std::abs(local[k]);
}

}  // namespace earsonar::dsp
