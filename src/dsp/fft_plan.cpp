#include "dsp/fft_plan.hpp"

#include <cmath>
#include <mutex>
#include <numbers>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "dsp/simd.hpp"

namespace earsonar::dsp {

namespace {
constexpr double kPi = std::numbers::pi;

// Pair ranges the band [bin_lo, bin_hi] needs from the in-place untangle.
// Each pair k covers bins k and h-k, so the pairs form at most two contiguous
// k ranges — the band itself and its mirror, clamped to the pair domain
// [1, h/2]. A full-range request degenerates to the single original [1, h/2]
// loop. Overlapping ranges are merged so no pair executes twice (the untangle
// is in place — re-running a pair would read already-untangled values).
int untangle_pair_ranges(std::size_t h, std::size_t bin_lo, std::size_t bin_hi,
                         std::size_t ra[2], std::size_t rb[2]) {
  const std::size_t kmax = h / 2;
  int nr = 0;
  if (const std::size_t a = bin_lo < 1 ? 1 : bin_lo,
      b = bin_hi < kmax ? bin_hi : kmax;
      a <= b) {
    ra[nr] = a;
    rb[nr] = b;
    ++nr;
  }
  if (const std::size_t a = h - bin_hi < 1 ? 1 : h - bin_hi,
      b = h - bin_lo < kmax ? h - bin_lo : kmax;
      a <= b) {
    ra[nr] = a;
    rb[nr] = b;
    ++nr;
  }
  if (nr == 2) {
    if (ra[0] > ra[1]) {
      std::swap(ra[0], ra[1]);
      std::swap(rb[0], rb[1]);
    }
    if (ra[1] <= rb[0] + 1) {
      rb[0] = rb[0] > rb[1] ? rb[0] : rb[1];
      nr = 1;
    }
  }
  return nr;
}

// Even/odd untangling of the half-length real transform (see forward_real for
// the derivation). Templated on the sample type so the float32 pipeline runs
// the identical algorithm; o holds the h half-transform bins on entry and the
// h+1 real-spectrum bins on exit, w is the interleaved twiddle table
// exp(-2*pi*i*k/n) for k = 0..h.
// The optional [bin_lo, bin_hi] range skips (k, h-k) pairs that produce no
// bin inside it — the executed pairs run the identical arithmetic, so the
// written bins match the full untangle bit for bit (power_spectrum_band
// relies on this; everyone else passes the full range).
template <class T>
void untangle_real(T* o, const T* w, std::size_t h, std::size_t bin_lo = 0,
                   std::size_t bin_hi = static_cast<std::size_t>(-1)) {
  if (bin_hi > h) bin_hi = h;
  if (bin_lo == 0 || bin_hi == h) {
    const T z0r = o[0], z0i = o[1];
    o[0] = z0r + z0i;
    o[1] = T(0);
    o[2 * h] = z0r - z0i;
    o[2 * h + 1] = T(0);
  }
  // Iterating the pair ranges directly keeps the loop body branch-free (and
  // vectorizable).
  std::size_t ra[2], rb[2];
  const int nr = untangle_pair_ranges(h, bin_lo, bin_hi, ra, rb);
  for (int r = 0; r < nr; ++r) {
    for (std::size_t k = ra[r]; k <= rb[r]; ++k) {
      const T zkr = o[2 * k], zki = o[2 * k + 1];
      const T zmr = o[2 * (h - k)], zmi = o[2 * (h - k) + 1];
      // sum = (Z[k] + conj(Z[h-k]))/2, diff = -i/2 * W * (Z[k] - conj(Z[h-k]));
      // -i/2 * W folds into the twiddle as {W.imag, -W.real}/2.
      const T dr = zkr - zmr, di = zki + zmi;
      const T tkr = T(0.5) * w[2 * k + 1], tki = -T(0.5) * w[2 * k];
      const T tmr = T(0.5) * w[2 * (h - k) + 1], tmi = -T(0.5) * w[2 * (h - k)];
      // For the mirror bin, Z[m] - conj(Z[h-m]) with m = h-k is (-dr, di).
      o[2 * k] = T(0.5) * (zkr + zmr) + tkr * dr - tki * di;
      o[2 * k + 1] = T(0.5) * (zki - zmi) + tkr * di + tki * dr;
      o[2 * (h - k)] = T(0.5) * (zmr + zkr) - tmr * dr - tmi * di;
      o[2 * (h - k) + 1] = T(0.5) * (zmi - zki) + tmr * di - tmi * dr;
    }
  }
}

// ------------------------------------------------- four-lane batched kernels
//
// Layout: complex index k of lane l lives at z[8k + l] (real part) and
// z[8k + 4 + l] (imaginary part). A row of four same-index reals (or imags)
// is one contiguous 4-double group, so every loop below is elementwise over
// lanes and vectorizes without shuffles. The butterfly stages live in the
// kernel dispatch (simd::KernelSet::butterflies_x4_d) so the AVX2 build
// reaches this layout with full-width vectors; each lane runs the identical
// per-element arithmetic sequence as the single-transform kernels, so the
// batched bins equal four single transforms bit for bit at every level.

// untangle_real over the lane-major buffer, same pair ranges and per-pair
// arithmetic; w is the complex twiddle table exp(-2*pi*i*k/n) for k = 0..h.
void untangle_x4(double* z, const Complex* w, std::size_t h, std::size_t bin_lo,
                 std::size_t bin_hi) {
  if (bin_hi > h) bin_hi = h;
  if (bin_lo == 0 || bin_hi == h) {
    double* s0 = z;
    double* sh = z + 8 * h;
    for (std::size_t l = 0; l < 4; ++l) {
      const double z0r = s0[l], z0i = s0[4 + l];
      s0[l] = z0r + z0i;
      s0[4 + l] = 0.0;
      sh[l] = z0r - z0i;
      sh[4 + l] = 0.0;
    }
  }
  std::size_t ra[2], rb[2];
  const int nr = untangle_pair_ranges(h, bin_lo, bin_hi, ra, rb);
  for (int r = 0; r < nr; ++r) {
    for (std::size_t k = ra[r]; k <= rb[r]; ++k) {
      const double tkr = 0.5 * w[k].imag(), tki = -0.5 * w[k].real();
      const double tmr = 0.5 * w[h - k].imag(), tmi = -0.5 * w[h - k].real();
      double* a = z + 8 * k;
      double* b = z + 8 * (h - k);
      for (std::size_t l = 0; l < 4; ++l) {
        const double zkr = a[l], zki = a[4 + l];
        const double zmr = b[l], zmi = b[4 + l];
        const double dr = zkr - zmr, di = zki + zmi;
        a[l] = 0.5 * (zkr + zmr) + tkr * dr - tki * di;
        a[4 + l] = 0.5 * (zki - zmi) + tkr * di + tki * dr;
        b[l] = 0.5 * (zmr + zkr) - tmr * dr - tmi * di;
        b[4 + l] = 0.5 * (zmi - zki) + tmr * di - tmi * dr;
      }
    }
  }
}
}  // namespace

FftPlan::FftPlan(std::size_t n, Kind kind)
    : n_(n), kind_(kind), radix2_(is_power_of_two(n)) {
  require(n >= 1, "FftPlan: size must be >= 1");
  if (kind == Kind::kComplex) {
    if (radix2_) build_radix2_tables();
    else build_bluestein();
  } else {
    build_real();
  }
}

std::shared_ptr<const FftPlan> FftPlan::get(std::size_t n, Kind kind) {
  if (fault::point("fft.plan")) fail("injected fault: fft.plan");
  static std::mutex mutex;
  static std::unordered_map<std::uint64_t, std::shared_ptr<const FftPlan>> cache;
  const std::uint64_t key =
      (static_cast<std::uint64_t>(n) << 1) | (kind == Kind::kReal ? 1u : 0u);
  {
    std::lock_guard<std::mutex> lock(mutex);
    if (auto it = cache.find(key); it != cache.end()) return it->second;
  }
  // Build outside the lock: Bluestein and real plans recursively fetch their
  // helper plans through get(), which must not re-enter a held mutex. A
  // concurrent duplicate build is harmless — first insert wins.
  auto plan = std::make_shared<const FftPlan>(n, kind);
  std::lock_guard<std::mutex> lock(mutex);
  return cache.try_emplace(key, std::move(plan)).first->second;
}

void FftPlan::build_radix2_tables() {
  bitrev_.resize(n_);
  bitrev_[0] = 0;
  for (std::size_t i = 1, j = 0; i < n_; ++i) {
    std::size_t bit = n_ >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    bitrev_[i] = j;
  }
  // Stage with half-length h stores its h twiddles at [h, 2h): the k-th entry
  // of stage h is exp(-2*pi*i*k / (2h)). Total n-1 entries for all stages.
  twiddles_.resize(n_ >= 2 ? n_ : 1);
  for (std::size_t h = 1; h < n_; h <<= 1) {
    const double angle = -kPi / static_cast<double>(h);
    for (std::size_t k = 0; k < h; ++k) {
      const double a = angle * static_cast<double>(k);
      twiddles_[h + k] = Complex{std::cos(a), std::sin(a)};
    }
  }
  // Narrowed mirror for the float32 pipeline (same stage layout, interleaved).
  twiddles_f_.resize(2 * twiddles_.size());
  for (std::size_t i = 0; i < twiddles_.size(); ++i) {
    twiddles_f_[2 * i] = static_cast<float>(twiddles_[i].real());
    twiddles_f_[2 * i + 1] = static_cast<float>(twiddles_[i].imag());
  }
}

void FftPlan::build_bluestein() {
  const std::size_t m = next_power_of_two(2 * n_ - 1);
  pad_plan_ = get(m, Kind::kComplex);
  chirp_.resize(n_);
  std::vector<Complex> b(m, Complex{0.0, 0.0});
  for (std::size_t k = 0; k < n_; ++k) {
    // k^2 mod 2n keeps the angle argument small for large k.
    const std::size_t k2 = (k * k) % (2 * n_);
    const double angle = -kPi * static_cast<double>(k2) / static_cast<double>(n_);
    chirp_[k] = Complex{std::cos(angle), std::sin(angle)};
  }
  b[0] = Complex{1.0, 0.0};
  for (std::size_t k = 1; k < n_; ++k) {
    b[k] = std::conj(chirp_[k]);
    b[m - k] = b[k];
  }
  pad_plan_->forward_inplace(b);
  kernel_fft_ = std::move(b);
}

void FftPlan::build_real() {
  if (n_ == 1) return;
  if (n_ % 2 == 0) {
    half_plan_ = get(n_ / 2, Kind::kComplex);
    real_twiddles_.resize(n_ / 2 + 1);
    for (std::size_t k = 0; k <= n_ / 2; ++k) {
      const double a = -2.0 * kPi * static_cast<double>(k) / static_cast<double>(n_);
      real_twiddles_[k] = Complex{std::cos(a), std::sin(a)};
    }
    real_twiddles_f_.resize(2 * real_twiddles_.size());
    for (std::size_t k = 0; k < real_twiddles_.size(); ++k) {
      real_twiddles_f_[2 * k] = static_cast<float>(real_twiddles_[k].real());
      real_twiddles_f_[2 * k + 1] = static_cast<float>(real_twiddles_[k].imag());
    }
  } else {
    full_plan_ = get(n_, Kind::kComplex);
  }
}

// The per-call loops below work on raw double* views of the complex buffers
// (std::complex<double> guarantees array-of-double layout) with every member
// hoisted into a local first. Writing through the std::span<Complex> while
// reading members makes GCC assume the stores may alias this->twiddles_ /
// this->n_, so it reloads them every iteration and assembles each Complex
// through a stack round-trip — measured ~10x slower than this form. The
// butterfly stages themselves now live in the dispatched SIMD kernels
// (src/dsp/kernel_impl.hpp) with the same per-element arithmetic, so results
// are unchanged bit for bit (see simd.hpp for why that holds across levels).

void FftPlan::butterflies(std::span<Complex> data) const {
  simd::active().butterflies_d(reinterpret_cast<double*>(data.data()),
                               reinterpret_cast<const double*>(twiddles_.data()),
                               n_);
}

void FftPlan::permute_copy(std::span<const Complex> in, std::span<Complex> out) const {
  const Complex* src = in.data();
  Complex* dst = out.data();
  const std::size_t* rev = bitrev_.data();
  const std::size_t n = n_;
  for (std::size_t i = 0; i < n; ++i) dst[i] = src[rev[i]];
}

void FftPlan::forward_inplace(std::span<Complex> data) const {
  require(kind_ == Kind::kComplex && radix2_,
          "FftPlan::forward_inplace: needs a power-of-two complex plan");
  require(data.size() == n_, "FftPlan::forward_inplace: size mismatch");
  Complex* d = data.data();
  const std::size_t* rev = bitrev_.data();
  const std::size_t n = n_;
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t j = rev[i];
    if (i < j) std::swap(d[i], d[j]);
  }
  butterflies(data);
}

void FftPlan::forward(std::span<const Complex> in, std::span<Complex> out,
                      FftScratch& scratch) const {
  if (fault::point("fft.execute")) fail("injected fault: fft.execute");
  require(kind_ == Kind::kComplex, "FftPlan::forward: complex plan required");
  require(in.size() == n_ && out.size() == n_, "FftPlan::forward: size mismatch");
  if (radix2_) {
    permute_copy(in, out);
    butterflies(out);
    return;
  }
  bluestein(in, out, scratch);
}

void FftPlan::inverse(std::span<const Complex> in, std::span<Complex> out,
                      FftScratch& scratch) const {
  require(kind_ == Kind::kComplex, "FftPlan::inverse: complex plan required");
  require(in.size() == n_ && out.size() == n_, "FftPlan::inverse: size mismatch");
  const double scale = 1.0 / static_cast<double>(n_);
  // IFFT(x) = conj(FFT(conj(x))) / n, conjugating in the work buffers rather
  // than materializing a conjugated input copy.
  if (radix2_) {
    const std::size_t n = n_;
    const std::size_t* rev = bitrev_.data();
    {
      const double* src = reinterpret_cast<const double*>(in.data());
      double* dst = reinterpret_cast<double*>(out.data());
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t j = 2 * rev[i];
        dst[2 * i] = src[j];
        dst[2 * i + 1] = -src[j + 1];
      }
    }
    butterflies(out);
    {
      double* dst = reinterpret_cast<double*>(out.data());
      for (std::size_t i = 0; i < 2 * n; i += 2) {
        dst[i] *= scale;
        dst[i + 1] *= -scale;
      }
    }
    return;
  }
  scratch.b.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) scratch.b[i] = std::conj(in[i]);
  bluestein(std::span<const Complex>(scratch.b.data(), n_), out, scratch);
  for (auto& v : out) v = std::conj(v) * scale;
}

void FftPlan::bluestein(std::span<const Complex> in, std::span<Complex> out,
                        FftScratch& scratch) const {
  const std::size_t m = pad_plan_->size();
  const std::size_t n = n_;
  scratch.a.assign(m, Complex{0.0, 0.0});
  std::span<Complex> a(scratch.a.data(), m);
  double* ad = reinterpret_cast<double*>(scratch.a.data());
  {
    const double* x = reinterpret_cast<const double*>(in.data());
    const double* c = reinterpret_cast<const double*>(chirp_.data());
    for (std::size_t k = 0; k < 2 * n; k += 2) {
      const double xr = x[k], xi = x[k + 1], cr = c[k], ci = c[k + 1];
      ad[k] = xr * cr - xi * ci;
      ad[k + 1] = xr * ci + xi * cr;
    }
  }
  pad_plan_->forward_inplace(a);
  {
    const double* kf = reinterpret_cast<const double*>(kernel_fft_.data());
    // Fold the conjugate trick's input conjugation into the product store.
    for (std::size_t i = 0; i < 2 * m; i += 2) {
      const double xr = ad[i], xi = ad[i + 1], kr = kf[i], ki = kf[i + 1];
      ad[i] = xr * kr - xi * ki;
      ad[i + 1] = -(xr * ki + xi * kr);
    }
  }
  pad_plan_->forward_inplace(a);
  const double scale = 1.0 / static_cast<double>(m);
  {
    const double* c = reinterpret_cast<const double*>(chirp_.data());
    double* o = reinterpret_cast<double*>(out.data());
    for (std::size_t k = 0; k < 2 * n; k += 2) {
      const double xr = ad[k] * scale, xi = -ad[k + 1] * scale;
      const double cr = c[k], ci = c[k + 1];
      o[k] = xr * cr - xi * ci;
      o[k + 1] = xr * ci + xi * cr;
    }
  }
}

void FftPlan::half_transform(std::span<const double> in, std::span<Complex> out,
                             FftScratch& scratch) const {
  const std::size_t h = n_ / 2;
  if (half_plan_->radix2_) {
    // Pack + bit-reverse in one pass, then run butterflies directly in out.
    const std::size_t* rev = half_plan_->bitrev_.data();
    const double* src = in.data();
    double* dst = reinterpret_cast<double*>(out.data());
    for (std::size_t i = 0; i < h; ++i) {
      const std::size_t j = 2 * rev[i];
      dst[2 * i] = src[j];
      dst[2 * i + 1] = src[j + 1];
    }
    half_plan_->butterflies(out.subspan(0, h));
    return;
  }
  scratch.b.resize(h);
  for (std::size_t j = 0; j < h; ++j) scratch.b[j] = Complex{in[2 * j], in[2 * j + 1]};
  // bluestein() only touches scratch.a, so scratch.b stays intact as input.
  half_plan_->bluestein(std::span<const Complex>(scratch.b.data(), h),
                        out.subspan(0, h), scratch);
}

void FftPlan::forward_real(std::span<const double> in, std::span<Complex> out,
                           FftScratch& scratch) const {
  if (fault::point("fft.execute")) fail("injected fault: fft.execute");
  require(kind_ == Kind::kReal, "FftPlan::forward_real: real plan required");
  require(in.size() == n_, "FftPlan::forward_real: input size mismatch");
  require(out.size() == real_bins(), "FftPlan::forward_real: output size mismatch");
  if (n_ == 1) {
    out[0] = Complex{in[0], 0.0};
    return;
  }
  if (full_plan_) {  // odd length: full complex transform, keep n/2+1 bins
    // Odd sizes are off the hot path; the full spectrum lives in scratch.c
    // (bluestein works through scratch.a, input through scratch.b).
    scratch.b.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) scratch.b[i] = Complex{in[i], 0.0};
    scratch.c.resize(n_);
    full_plan_->forward(std::span<const Complex>(scratch.b.data(), n_),
                        std::span<Complex>(scratch.c.data(), n_), scratch);
    for (std::size_t k = 0; k < real_bins(); ++k) out[k] = scratch.c[k];
    return;
  }

  // Even length: transform the packed half-length sequence z[j] = x[2j] +
  // i*x[2j+1], then untangle the even/odd spectra:
  //   X[k] = (Z[k] + conj(Z[h-k]))/2 - (i/2) * W[k] * (Z[k] - conj(Z[h-k])),
  // with W[k] = exp(-2*pi*i*k/n) and Z[h] = Z[0]. Bins are untangled in
  // (k, h-k) pairs so Z can live in the output buffer.
  const std::size_t h = n_ / 2;
  half_transform(in, out, scratch);
  untangle_real<double>(reinterpret_cast<double*>(out.data()),
                        reinterpret_cast<const double*>(real_twiddles_.data()), h);
}

void FftPlan::inverse_real(std::span<const Complex> spectrum, std::span<double> out,
                           FftScratch& scratch) const {
  require(kind_ == Kind::kReal, "FftPlan::inverse_real: real plan required");
  require(spectrum.size() == real_bins(),
          "FftPlan::inverse_real: spectrum size mismatch");
  require(out.size() == n_, "FftPlan::inverse_real: output size mismatch");
  if (n_ == 1) {
    out[0] = spectrum[0].real();
    return;
  }
  if (full_plan_) {  // odd length: rebuild the Hermitian spectrum, invert
    scratch.b.resize(n_);
    for (std::size_t k = 0; k < real_bins(); ++k) scratch.b[k] = spectrum[k];
    for (std::size_t k = real_bins(); k < n_; ++k)
      scratch.b[k] = std::conj(spectrum[n_ - k]);
    std::vector<Complex> time(n_);
    full_plan_->inverse(std::span<const Complex>(scratch.b.data(), n_), time, scratch);
    for (std::size_t i = 0; i < n_; ++i) out[i] = time[i].real();
    return;
  }

  // Even length: re-pack the half-length spectrum
  //   Z[k] = ((X[k] + conj(X[h-k])) + i * conj(W[k]) * (X[k] - conj(X[h-k]))) / 2
  // and run the half-length inverse; z[j] = x[2j] + i*x[2j+1].
  const std::size_t h = n_ / 2;
  scratch.b.resize(h);
  {
    const double* x = reinterpret_cast<const double*>(spectrum.data());
    const double* w = reinterpret_cast<const double*>(real_twiddles_.data());
    double* b = reinterpret_cast<double*>(scratch.b.data());
    for (std::size_t k = 0; k < h; ++k) {
      const double xkr = x[2 * k], xki = x[2 * k + 1];
      const double xmr = x[2 * (h - k)], xmi = -x[2 * (h - k) + 1];
      // i * conj(W[k]) folds into the twiddle as {W.imag, W.real}.
      const double wr = w[2 * k], wi = w[2 * k + 1];
      const double dr = xkr - xmr, di = xki - xmi;
      b[2 * k] = 0.5 * (xkr + xmr + wi * dr - wr * di);
      b[2 * k + 1] = 0.5 * (xki + xmi + wi * di + wr * dr);
    }
  }
  std::vector<Complex>& z = scratch.a;
  // half_plan_->inverse for the radix-2 case works out-of-place from
  // scratch.b into a second buffer; Bluestein additionally needs scratch.a
  // free, so give it a local buffer then.
  if (half_plan_->radix2_) {
    z.resize(h);
    half_plan_->inverse(std::span<const Complex>(scratch.b.data(), h),
                        std::span<Complex>(z.data(), h), scratch);
    for (std::size_t j = 0; j < h; ++j) {
      out[2 * j] = z[j].real();
      out[2 * j + 1] = z[j].imag();
    }
  } else {
    std::vector<Complex> zz(h);
    half_plan_->inverse(std::span<const Complex>(scratch.b.data(), h), zz, scratch);
    for (std::size_t j = 0; j < h; ++j) {
      out[2 * j] = zz[j].real();
      out[2 * j + 1] = zz[j].imag();
    }
  }
}

void FftPlan::power_spectrum(std::span<const double> in, std::span<double> out,
                             double scale, FftScratch& scratch) const {
  require(out.size() == real_bins(), "FftPlan::power_spectrum: output size mismatch");
  if (n_ % 2 == 0 || n_ == 1) {  // bins can live in scratch.c (unused here)
    scratch.c.resize(real_bins());
    std::span<Complex> bins(scratch.c.data(), real_bins());
    forward_real(in, bins, scratch);
    simd::active().power_bins_d(reinterpret_cast<const double*>(bins.data()),
                                out.data(), bins.size(), scale);
    return;
  }
  // Odd sizes route forward_real through scratch.c already; use a local.
  std::vector<Complex> local(real_bins());
  forward_real(in, local, scratch);
  for (std::size_t k = 0; k < local.size(); ++k) out[k] = std::norm(local[k]) * scale;
}

void FftPlan::power_spectrum_band(std::span<const double> in, std::span<double> out,
                                  double scale, FftScratch& scratch,
                                  std::size_t bin_lo, std::size_t bin_hi) const {
  require(kind_ == Kind::kReal, "FftPlan::power_spectrum_band: real plan required");
  require(out.size() == real_bins(),
          "FftPlan::power_spectrum_band: output size mismatch");
  require(bin_lo <= bin_hi && bin_hi < real_bins(),
          "FftPlan::power_spectrum_band: bin range out of order");
  if (n_ == 1 || n_ % 2 != 0 || !half_plan_->radix2_) {
    power_spectrum(in, out, scale, scratch);
    return;
  }
  require(in.size() == n_, "FftPlan::power_spectrum_band: input size mismatch");
  if (fault::point("fft.execute")) fail("injected fault: fft.execute");

  // Full half-length transform (every untangle pair reads both Z[k] and
  // Z[h-k], so no stage can be pruned), then only the pairs and |X|^2
  // reductions the requested bins need.
  const std::size_t h = n_ / 2;
  scratch.c.resize(real_bins());
  std::span<Complex> bins(scratch.c.data(), real_bins());
  half_transform(in, bins, scratch);
  untangle_real<double>(reinterpret_cast<double*>(bins.data()),
                        reinterpret_cast<const double*>(real_twiddles_.data()), h,
                        bin_lo, bin_hi);
  simd::active().power_bins_d(
      reinterpret_cast<const double*>(bins.data()) + 2 * bin_lo,
      out.data() + bin_lo, bin_hi - bin_lo + 1, scale);
}

void FftPlan::power_spectrum_band_x4(const double* const in[4],
                                     double* const out[4], double scale,
                                     FftScratch& scratch, std::size_t bin_lo,
                                     std::size_t bin_hi) const {
  require(kind_ == Kind::kReal, "FftPlan::power_spectrum_band_x4: real plan required");
  require(bin_lo <= bin_hi && bin_hi < real_bins(),
          "FftPlan::power_spectrum_band_x4: bin range out of order");
  if (n_ == 1 || n_ % 2 != 0 || !half_plan_->radix2_) {
    for (std::size_t l = 0; l < 4; ++l)
      power_spectrum_band(std::span<const double>(in[l], n_),
                          std::span<double>(out[l], real_bins()), scale, scratch,
                          bin_lo, bin_hi);
    return;
  }
  if (fault::point("fft.execute")) fail("injected fault: fft.execute");

  const std::size_t h = n_ / 2;
  scratch.d.resize(8 * (h + 1));
  double* z = scratch.d.data();

  // Pack + bit-reverse all four inputs into the lane-major buffer in one pass.
  const std::size_t* rev = half_plan_->bitrev_.data();
  for (std::size_t i = 0; i < h; ++i) {
    const std::size_t j = 2 * rev[i];
    double* s = z + 8 * i;
    for (std::size_t l = 0; l < 4; ++l) {
      s[l] = in[l][j];
      s[4 + l] = in[l][j + 1];
    }
  }
  simd::active().butterflies_x4_d(
      z, reinterpret_cast<const double*>(half_plan_->twiddles_.data()), h);
  untangle_x4(z, real_twiddles_.data(), h, bin_lo, bin_hi);
  for (std::size_t k = bin_lo; k <= bin_hi; ++k) {
    const double* s = z + 8 * k;
    for (std::size_t l = 0; l < 4; ++l)
      out[l][k] = (s[l] * s[l] + s[4 + l] * s[4 + l]) * scale;
  }
}

void FftPlan::power_spectrum_f32(std::span<const double> in, std::span<double> out,
                                 double scale, FftScratch& scratch) const {
  require(kind_ == Kind::kReal, "FftPlan::power_spectrum_f32: real plan required");
  require(out.size() == real_bins(),
          "FftPlan::power_spectrum_f32: output size mismatch");
  if (n_ == 1 || n_ % 2 != 0 || !half_plan_->radix2_) {
    // Odd / non-radix-2 sizes are off the hot path; keep them exact.
    power_spectrum(in, out, scale, scratch);
    return;
  }
  require(in.size() == n_, "FftPlan::power_spectrum_f32: input size mismatch");
  if (fault::point("fft.execute")) fail("injected fault: fft.execute");
  const auto& kernel = simd::active();
  const std::size_t h = n_ / 2;
  const std::size_t m = real_bins();

  // Narrow + pack + bit-reverse in one pass, as in half_transform.
  scratch.fa.resize(2 * h >= 2 * m ? 2 * h : 2 * m);
  float* z = scratch.fa.data();
  {
    const std::size_t* rev = half_plan_->bitrev_.data();
    const double* src = in.data();
    for (std::size_t i = 0; i < h; ++i) {
      const std::size_t j = 2 * rev[i];
      z[2 * i] = static_cast<float>(src[j]);
      z[2 * i + 1] = static_cast<float>(src[j + 1]);
    }
  }
  kernel.butterflies_f(z, half_plan_->twiddles_f_.data(), h);

  // Untangle needs bin h (one complex past the half transform); run it in the
  // wider fb buffer, then reduce to |X|^2 in float and widen on store.
  scratch.fb.resize(2 * m);
  float* bins = scratch.fb.data();
  for (std::size_t i = 0; i < 2 * h; ++i) bins[i] = z[i];
  untangle_real<float>(bins, real_twiddles_f_.data(), h);
  kernel.power_bins_f(bins, z, m, static_cast<float>(scale));
  for (std::size_t k = 0; k < m; ++k) out[k] = static_cast<double>(z[k]);
}

void FftPlan::magnitude_spectrum(std::span<const double> in, std::span<double> out,
                                 FftScratch& scratch) const {
  require(out.size() == real_bins(),
          "FftPlan::magnitude_spectrum: output size mismatch");
  if (n_ % 2 == 0 || n_ == 1) {
    scratch.c.resize(real_bins());
    std::span<Complex> bins(scratch.c.data(), real_bins());
    forward_real(in, bins, scratch);
    for (std::size_t k = 0; k < bins.size(); ++k) out[k] = std::abs(bins[k]);
    return;
  }
  std::vector<Complex> local(real_bins());
  forward_real(in, local, scratch);
  for (std::size_t k = 0; k < local.size(); ++k) out[k] = std::abs(local[k]);
}

}  // namespace earsonar::dsp
