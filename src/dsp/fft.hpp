// Fast Fourier transforms (convenience API).
//
// Power-of-two sizes run through an iterative radix-2 Cooley-Tukey kernel;
// every other size is handled by Bluestein's chirp-z algorithm, so callers may
// transform arbitrary lengths (the echo windows the pipeline cuts are not
// always powers of two). All entry points execute through the planned engine
// in fft_plan.hpp — twiddle tables, bit-reversal permutations, and Bluestein
// kernels are computed once per size and cached; real-input transforms use
// the half-length complex algorithm. Hot loops that transform the same size
// repeatedly should hold an FftPlan + FftScratch directly.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace earsonar::dsp {

using Complex = std::complex<double>;

/// True when n is a power of two (n >= 1).
bool is_power_of_two(std::size_t n);

/// Smallest power of two >= n (n >= 1).
std::size_t next_power_of_two(std::size_t n);

/// In-place forward FFT; data.size() must be a power of two.
void fft_radix2_inplace(std::span<Complex> data);

/// Forward FFT of arbitrary length (radix-2 fast path, Bluestein otherwise).
std::vector<Complex> fft(std::span<const Complex> input);

/// Inverse FFT (includes the 1/N normalization).
std::vector<Complex> ifft(std::span<const Complex> input);

/// Forward FFT of a real signal; returns all N complex bins.
std::vector<Complex> fft_real(std::span<const double> input);

/// First N/2+1 bins of the FFT of a real signal (non-negative frequencies).
std::vector<Complex> rfft(std::span<const double> input);

/// |X[k]| for the non-negative-frequency bins of a real signal.
std::vector<double> magnitude_spectrum(std::span<const double> input);

/// |X[k]|^2 / N for the non-negative-frequency bins of a real signal.
std::vector<double> power_spectrum(std::span<const double> input);

/// Center frequency in Hz of bin k for an N-point transform at sample_rate.
double bin_frequency(std::size_t bin, std::size_t fft_size, double sample_rate);

/// Nearest bin index for `frequency_hz` in an N-point transform.
std::size_t frequency_to_bin(double frequency_hz, std::size_t fft_size,
                             double sample_rate);

}  // namespace earsonar::dsp
