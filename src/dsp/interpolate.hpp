// Interpolation and resampling. The absorption analysis interpolates the
// fixed echo window before the FFT (paper §IV-C1), and the simulator uses
// fractional-delay interpolation to place echoes off the sample grid.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace earsonar::dsp {

/// Linear interpolation of y(x) at query points; x must be strictly
/// ascending; queries outside [x.front(), x.back()] clamp to the end values.
std::vector<double> interp_linear(std::span<const double> x, std::span<const double> y,
                                  std::span<const double> queries);

/// Natural cubic spline through (x, y); evaluated at `queries` (clamped).
class CubicSpline {
 public:
  CubicSpline(std::span<const double> x, std::span<const double> y);

  [[nodiscard]] double operator()(double query) const;
  [[nodiscard]] std::vector<double> evaluate(std::span<const double> queries) const;

 private:
  std::vector<double> x_, y_, m_;  // m_ = second derivatives at the knots
};

/// Resamples `signal` (uniform grid) to `target_length` samples spanning the
/// same duration, with cubic-spline interpolation.
std::vector<double> resample_to_length(std::span<const double> signal,
                                       std::size_t target_length);

/// Reads signal at a fractional index via 4-point cubic (Catmull-Rom)
/// interpolation; indices outside [0, N-1] return 0 (the simulator treats the
/// world as silent outside the recording). Cheap but low-pass: several dB of
/// attenuation near 0.4 fs at half-sample offsets — do not use for wideband
/// probe signals.
double sample_fractional(std::span<const double> signal, double index);

/// Reads signal at a fractional index via Hann-windowed-sinc interpolation
/// (16 taps): flat to within a fraction of a dB up to ~0.45 fs, which the
/// 16-20 kHz probe band at 48 kHz requires. Indices outside the signal
/// return 0; samples beyond the edges are treated as silence.
double sample_fractional_sinc(std::span<const double> signal, double index);

/// Delays a signal by a fractional number of samples (same length output).
std::vector<double> fractional_delay(std::span<const double> signal, double delay_samples);

/// Converts `signal` from `source_rate` to `target_rate` using windowed-sinc
/// interpolation. When downsampling, an anti-alias Butterworth low-pass at
/// 0.45 * target_rate is applied first. Output length is
/// round(n * target/source).
std::vector<double> resample_to_rate(std::span<const double> signal,
                                     double source_rate, double target_rate);

}  // namespace earsonar::dsp
