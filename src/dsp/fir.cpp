#include "dsp/fir.hpp"

#include <cmath>
#include <complex>
#include <numbers>

#include "common/error.hpp"
#include "dsp/convolution.hpp"
#include "dsp/fft.hpp"
#include "dsp/window.hpp"

namespace earsonar::dsp {

namespace {
constexpr double kPi = std::numbers::pi;

double sinc(double x) {
  if (std::abs(x) < 1e-12) return 1.0;
  return std::sin(kPi * x) / (kPi * x);
}

void check_taps(std::size_t taps) {
  require(taps >= 3 && taps % 2 == 1, "FIR taps must be odd and >= 3");
}
}  // namespace

std::vector<double> fir_lowpass(std::size_t taps, double cutoff_hz, double sample_rate) {
  check_taps(taps);
  require_positive("sample_rate", sample_rate);
  require(cutoff_hz > 0.0 && cutoff_hz < sample_rate / 2.0,
          "fir_lowpass: cutoff must be in (0, Nyquist)");
  const double fc = cutoff_hz / sample_rate;  // cycles/sample
  const std::vector<double> w = hann_window(taps);
  const double mid = static_cast<double>(taps - 1) / 2.0;
  std::vector<double> h(taps);
  double sum = 0.0;
  for (std::size_t i = 0; i < taps; ++i) {
    h[i] = 2.0 * fc * sinc(2.0 * fc * (static_cast<double>(i) - mid)) * w[i];
    sum += h[i];
  }
  // Normalize DC gain to exactly 1.
  for (double& v : h) v /= sum;
  return h;
}

std::vector<double> fir_highpass(std::size_t taps, double cutoff_hz, double sample_rate) {
  std::vector<double> lp = fir_lowpass(taps, cutoff_hz, sample_rate);
  // Spectral inversion: delta at center minus the low-pass.
  std::vector<double> hp(lp.size());
  for (std::size_t i = 0; i < lp.size(); ++i) hp[i] = -lp[i];
  hp[(lp.size() - 1) / 2] += 1.0;
  return hp;
}

std::vector<double> fir_bandpass(std::size_t taps, double low_hz, double high_hz,
                                 double sample_rate) {
  require(low_hz < high_hz, "fir_bandpass: low must be < high");
  std::vector<double> lp_high = fir_lowpass(taps, high_hz, sample_rate);
  std::vector<double> lp_low = fir_lowpass(taps, low_hz, sample_rate);
  std::vector<double> bp(taps);
  for (std::size_t i = 0; i < taps; ++i) bp[i] = lp_high[i] - lp_low[i];
  return bp;
}

std::vector<double> fir_from_magnitude(std::span<const double> frequencies_hz,
                                       std::span<const double> magnitudes,
                                       std::size_t taps, double sample_rate) {
  check_taps(taps);
  require_positive("sample_rate", sample_rate);
  require(frequencies_hz.size() == magnitudes.size() && !frequencies_hz.empty(),
          "fir_from_magnitude: need matching non-empty frequency/magnitude arrays");
  for (std::size_t i = 1; i < frequencies_hz.size(); ++i)
    require(frequencies_hz[i] > frequencies_hz[i - 1],
            "fir_from_magnitude: frequencies must be strictly ascending");
  require(frequencies_hz.front() >= 0.0 && frequencies_hz.back() <= sample_rate / 2.0,
          "fir_from_magnitude: frequencies must lie in [0, Nyquist]");
  for (double m : magnitudes)
    require(m >= 0.0, "fir_from_magnitude: magnitudes must be >= 0");

  // Piecewise-linear interpolation of the target curve, flat outside the knots.
  auto target = [&](double f) {
    if (f <= frequencies_hz.front()) return magnitudes.front();
    if (f >= frequencies_hz.back()) return magnitudes.back();
    std::size_t hi = 1;
    while (frequencies_hz[hi] < f) ++hi;
    const double f0 = frequencies_hz[hi - 1], f1 = frequencies_hz[hi];
    const double m0 = magnitudes[hi - 1], m1 = magnitudes[hi];
    const double t = (f - f0) / (f1 - f0);
    return m0 * (1.0 - t) + m1 * t;
  };

  // Frequency sampling with a linear-phase (pure delay) target, then an
  // inverse DFT evaluated directly (taps is small).
  const std::size_t n = taps;
  const double mid = static_cast<double>(n - 1) / 2.0;
  std::vector<std::complex<double>> spec(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double f =
        (k <= n / 2 ? static_cast<double>(k) : static_cast<double>(k) - static_cast<double>(n)) *
        sample_rate / static_cast<double>(n);
    const double mag = target(std::abs(f));
    const double phase = -2.0 * kPi * static_cast<double>(k) * mid / static_cast<double>(n);
    spec[k] = std::polar(mag, phase);
  }
  std::vector<std::complex<double>> impulse = ifft(spec);
  const std::vector<double> w = hann_window(n);
  std::vector<double> h(n);
  for (std::size_t i = 0; i < n; ++i) h[i] = impulse[i].real() * w[i];
  return h;
}

std::vector<double> fir_filter(std::span<const double> signal,
                               std::span<const double> kernel) {
  return convolve(signal, kernel);
}

std::vector<double> fir_filter_same(std::span<const double> signal,
                                    std::span<const double> kernel) {
  require_nonempty("fir_filter_same kernel", kernel.size());
  std::vector<double> full = convolve(signal, kernel);
  const std::size_t delay = (kernel.size() - 1) / 2;
  std::vector<double> out(signal.size());
  for (std::size_t i = 0; i < signal.size(); ++i) out[i] = full[i + delay];
  return out;
}

double fir_magnitude_at(std::span<const double> kernel, double frequency_hz,
                        double sample_rate) {
  require_positive("sample_rate", sample_rate);
  require_nonempty("fir kernel", kernel.size());
  const double w = 2.0 * kPi * frequency_hz / sample_rate;
  std::complex<double> acc{0.0, 0.0};
  for (std::size_t i = 0; i < kernel.size(); ++i)
    acc += kernel[i] * std::polar(1.0, -w * static_cast<double>(i));
  return std::abs(acc);
}

}  // namespace earsonar::dsp
