#include "dsp/spectrum.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "dsp/fft.hpp"
#include "dsp/fft_plan.hpp"

namespace earsonar::dsp {

namespace {

FftScratch& spectrum_scratch() {
  thread_local FftScratch scratch;
  return scratch;
}

// Windowed periodogram of exactly one segment, appended into `acc`.
std::vector<double> segment_periodogram(std::span<const double> seg,
                                        std::span<const double> window,
                                        double sample_rate) {
  std::vector<double> xw = apply_window(seg, window);
  const auto plan = FftPlan::get(seg.size(), FftPlan::Kind::kReal);
  const double norm = 1.0 / (sample_rate * window_power(window));
  std::vector<double> psd(plan->real_bins());
  plan->power_spectrum(xw, psd, norm, spectrum_scratch());
  for (std::size_t i = 0; i < psd.size(); ++i) {
    // One-sided spectrum: double everything except DC and Nyquist.
    const bool is_edge = (i == 0) || (seg.size() % 2 == 0 && i == psd.size() - 1);
    if (!is_edge) psd[i] *= 2.0;
  }
  return psd;
}

}  // namespace

Spectrum periodogram(std::span<const double> signal, double sample_rate,
                     WindowType window) {
  require_nonempty("periodogram input", signal.size());
  require_positive("sample_rate", sample_rate);
  const std::vector<double> w = make_window(window, signal.size());
  Spectrum out;
  out.psd = segment_periodogram(signal, w, sample_rate);
  out.frequency_hz.resize(out.psd.size());
  for (std::size_t i = 0; i < out.psd.size(); ++i)
    out.frequency_hz[i] = bin_frequency(i, signal.size(), sample_rate);
  return out;
}

Spectrum welch_psd(std::span<const double> signal, double sample_rate,
                   std::size_t segment, WindowType window) {
  require_nonempty("welch input", signal.size());
  require(segment >= 2, "welch: segment must be >= 2");
  require(segment <= signal.size(), "welch: segment longer than signal");
  require_positive("sample_rate", sample_rate);

  const std::size_t hop = segment / 2;
  const std::vector<double> w = make_window(window, segment);
  std::vector<double> acc(segment / 2 + 1, 0.0);
  std::size_t count = 0;
  for (std::size_t start = 0; start + segment <= signal.size(); start += hop) {
    std::vector<double> psd =
        segment_periodogram(signal.subspan(start, segment), w, sample_rate);
    for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += psd[i];
    ++count;
  }
  ensure(count > 0, "welch: no segments");
  for (double& v : acc) v /= static_cast<double>(count);

  Spectrum out;
  out.psd = std::move(acc);
  out.frequency_hz.resize(out.psd.size());
  for (std::size_t i = 0; i < out.psd.size(); ++i)
    out.frequency_hz[i] = bin_frequency(i, segment, sample_rate);
  return out;
}

Spectrum band_slice(const Spectrum& spectrum, double low_hz, double high_hz) {
  require(low_hz <= high_hz, "band_slice: low must be <= high");
  Spectrum out;
  for (std::size_t i = 0; i < spectrum.size(); ++i) {
    if (spectrum.frequency_hz[i] >= low_hz && spectrum.frequency_hz[i] <= high_hz) {
      out.frequency_hz.push_back(spectrum.frequency_hz[i]);
      out.psd.push_back(spectrum.psd[i]);
    }
  }
  return out;
}

double band_power(const Spectrum& spectrum, double low_hz, double high_hz) {
  Spectrum band = band_slice(spectrum, low_hz, high_hz);
  if (band.size() < 2) return band.size() == 1 ? band.psd[0] : 0.0;
  double acc = 0.0;
  for (std::size_t i = 1; i < band.size(); ++i) {
    const double df = band.frequency_hz[i] - band.frequency_hz[i - 1];
    acc += 0.5 * (band.psd[i] + band.psd[i - 1]) * df;
  }
  return acc;
}

Spectrum normalize_peak(const Spectrum& spectrum) {
  Spectrum out = spectrum;
  if (out.psd.empty()) return out;
  const double peak = max_value(out.psd);
  if (peak <= 0.0) return out;
  for (double& v : out.psd) v /= peak;
  return out;
}

Spectrum resample_spectrum(const Spectrum& spectrum, double low_hz, double high_hz,
                           std::size_t bins) {
  require(bins >= 2, "resample_spectrum: need >= 2 bins");
  require(low_hz < high_hz, "resample_spectrum: low must be < high");
  require_nonempty("resample_spectrum input", spectrum.size());

  Spectrum out;
  out.frequency_hz.resize(bins);
  out.psd.resize(bins);
  // The target grid ascends, so the bracketing source bin only moves forward:
  // one cursor sweep replaces a binary search per output bin.
  std::size_t hi = 0;
  for (std::size_t i = 0; i < bins; ++i) {
    const double f = low_hz + (high_hz - low_hz) * static_cast<double>(i) /
                                  static_cast<double>(bins - 1);
    out.frequency_hz[i] = f;
    // Linear interpolation, clamped at the ends.
    if (f <= spectrum.frequency_hz.front()) {
      out.psd[i] = spectrum.psd.front();
    } else if (f >= spectrum.frequency_hz.back()) {
      out.psd[i] = spectrum.psd.back();
    } else {
      while (spectrum.frequency_hz[hi] < f) ++hi;  // first bin with freq >= f
      const std::size_t lo = hi - 1;
      const double f0 = spectrum.frequency_hz[lo], f1 = spectrum.frequency_hz[hi];
      const double t = (f - f0) / (f1 - f0);
      out.psd[i] = spectrum.psd[lo] * (1.0 - t) + spectrum.psd[hi] * t;
    }
  }
  return out;
}

SpectralDip find_dip(const Spectrum& spectrum, double low_hz, double high_hz) {
  Spectrum band = band_slice(spectrum, low_hz, high_hz);
  require(band.size() >= 3, "find_dip: band too narrow");
  const double band_max = max_value(band.psd);
  SpectralDip dip;
  if (band_max <= 0.0) return dip;

  double best_value = band_max;
  for (std::size_t i = 1; i + 1 < band.size(); ++i) {
    const bool local_min = band.psd[i] <= band.psd[i - 1] && band.psd[i] <= band.psd[i + 1];
    if (local_min && band.psd[i] < best_value) {
      best_value = band.psd[i];
      dip.frequency_hz = band.frequency_hz[i];
    }
  }
  if (dip.frequency_hz > 0.0) dip.depth = 1.0 - best_value / band_max;
  return dip;
}

double spectral_centroid(const Spectrum& spectrum) {
  require_nonempty("spectral_centroid input", spectrum.size());
  double wsum = 0.0, psum = 0.0;
  for (std::size_t i = 0; i < spectrum.size(); ++i) {
    wsum += spectrum.frequency_hz[i] * spectrum.psd[i];
    psum += spectrum.psd[i];
  }
  return psum > 0.0 ? wsum / psum : 0.0;
}

double spectrum_correlation(const Spectrum& a, const Spectrum& b) {
  require(a.size() == b.size(), "spectrum_correlation: grids must match");
  return pearson_correlation(a.psd, b.psd);
}

}  // namespace earsonar::dsp
