#include "dsp/convolution.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "dsp/fft.hpp"

namespace earsonar::dsp {

namespace {
// Below this output size the direct algorithm beats FFT setup costs.
constexpr std::size_t kDirectThreshold = 4096;
}  // namespace

std::vector<double> convolve(std::span<const double> a, std::span<const double> b) {
  require_nonempty("convolve a", a.size());
  require_nonempty("convolve b", b.size());
  if (a.size() * b.size() <= kDirectThreshold * 8 &&
      std::min(a.size(), b.size()) <= 64) {
    return convolve_direct(a, b);
  }
  return convolve_fft(a, b);
}

std::vector<double> convolve_direct(std::span<const double> a, std::span<const double> b) {
  require_nonempty("convolve a", a.size());
  require_nonempty("convolve b", b.size());
  std::vector<double> out(a.size() + b.size() - 1, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i)
    for (std::size_t j = 0; j < b.size(); ++j) out[i + j] += a[i] * b[j];
  return out;
}

std::vector<double> convolve_fft(std::span<const double> a, std::span<const double> b) {
  require_nonempty("convolve a", a.size());
  require_nonempty("convolve b", b.size());
  const std::size_t out_len = a.size() + b.size() - 1;
  const std::size_t n = next_power_of_two(out_len);

  std::vector<Complex> fa(n, Complex{0.0, 0.0});
  std::vector<Complex> fb(n, Complex{0.0, 0.0});
  for (std::size_t i = 0; i < a.size(); ++i) fa[i] = Complex{a[i], 0.0};
  for (std::size_t i = 0; i < b.size(); ++i) fb[i] = Complex{b[i], 0.0};
  fft_radix2_inplace(fa);
  fft_radix2_inplace(fb);
  for (std::size_t i = 0; i < n; ++i) fa[i] *= fb[i];
  std::vector<Complex> prod = ifft(fa);
  std::vector<double> out(out_len);
  for (std::size_t i = 0; i < out_len; ++i) out[i] = prod[i].real();
  return out;
}

std::vector<double> autoconvolve(std::span<const double> x) { return convolve(x, x); }

std::vector<double> cross_correlate(std::span<const double> a, std::span<const double> b) {
  require_nonempty("cross_correlate a", a.size());
  require_nonempty("cross_correlate b", b.size());
  std::vector<double> b_rev(b.rbegin(), b.rend());
  return convolve(a, b_rev);
}

double normalized_correlation(std::span<const double> a, std::span<const double> b) {
  require(a.size() == b.size(), "normalized_correlation: size mismatch");
  require_nonempty("normalized_correlation input", a.size());
  double num = 0.0, ea = 0.0, eb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += a[i] * b[i];
    ea += a[i] * a[i];
    eb += b[i] * b[i];
  }
  if (ea <= 0.0 || eb <= 0.0) return 0.0;
  return num / std::sqrt(ea * eb);
}

}  // namespace earsonar::dsp
