#include "dsp/convolution.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "dsp/fft.hpp"
#include "dsp/fft_plan.hpp"

namespace earsonar::dsp {

namespace {
// Below this output size the direct algorithm beats FFT setup costs.
constexpr std::size_t kDirectThreshold = 4096;

bool prefer_direct(std::size_t a, std::size_t b) {
  return a * b <= kDirectThreshold * 8 && std::min(a, b) <= 64;
}

// Per-thread buffers for the FFT paths: the segmenter auto-convolves one
// event window per chirp (hundreds per recording), so steady state must not
// allocate beyond the returned vector.
struct ConvScratch {
  FftScratch fft;
  std::vector<double> padded;
  std::vector<Complex> fa;
  std::vector<Complex> fb;
  std::vector<double> time;
};

ConvScratch& conv_scratch() {
  thread_local ConvScratch scratch;
  return scratch;
}

}  // namespace

std::vector<double> convolve(std::span<const double> a, std::span<const double> b) {
  require_nonempty("convolve a", a.size());
  require_nonempty("convolve b", b.size());
  if (prefer_direct(a.size(), b.size())) return convolve_direct(a, b);
  return convolve_fft(a, b);
}

std::vector<double> convolve_direct(std::span<const double> a, std::span<const double> b) {
  require_nonempty("convolve a", a.size());
  require_nonempty("convolve b", b.size());
  std::vector<double> out(a.size() + b.size() - 1, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i)
    for (std::size_t j = 0; j < b.size(); ++j) out[i + j] += a[i] * b[j];
  return out;
}

std::vector<double> convolve_fft(std::span<const double> a, std::span<const double> b) {
  require_nonempty("convolve a", a.size());
  require_nonempty("convolve b", b.size());
  const std::size_t out_len = a.size() + b.size() - 1;
  const std::size_t n = next_power_of_two(out_len);
  const auto plan = FftPlan::get(n, FftPlan::Kind::kReal);
  ConvScratch& s = conv_scratch();
  const std::size_t bins = plan->real_bins();

  // Real inputs: two half-length forward transforms and one inverse replace
  // the former three full-length complex transforms.
  s.padded.assign(n, 0.0);
  std::copy(a.begin(), a.end(), s.padded.begin());
  s.fa.resize(bins);
  plan->forward_real(s.padded, s.fa, s.fft);
  s.padded.assign(n, 0.0);
  std::copy(b.begin(), b.end(), s.padded.begin());
  s.fb.resize(bins);
  plan->forward_real(s.padded, s.fb, s.fft);

  for (std::size_t i = 0; i < bins; ++i) s.fa[i] *= s.fb[i];
  s.time.resize(n);
  plan->inverse_real(s.fa, s.time, s.fft);
  return std::vector<double>(s.time.begin(),
                             s.time.begin() + static_cast<std::ptrdiff_t>(out_len));
}

std::vector<double> autoconvolve(std::span<const double> x) {
  require_nonempty("autoconvolve input", x.size());
  if (prefer_direct(x.size(), x.size())) return convolve_direct(x, x);
  // Same as convolve_fft(x, x), minus the second forward transform: both
  // operands are the identical padded buffer, so FB would come out bit-equal
  // to FA and FA[i] *= FA[i] reproduces the general path's product exactly.
  // The segmenter auto-convolves one event window per chirp, making this the
  // hottest convolution call in the pipeline.
  const std::size_t out_len = 2 * x.size() - 1;
  const std::size_t n = next_power_of_two(out_len);
  const auto plan = FftPlan::get(n, FftPlan::Kind::kReal);
  ConvScratch& s = conv_scratch();
  const std::size_t bins = plan->real_bins();

  s.padded.assign(n, 0.0);
  std::copy(x.begin(), x.end(), s.padded.begin());
  s.fa.resize(bins);
  plan->forward_real(s.padded, s.fa, s.fft);
  for (std::size_t i = 0; i < bins; ++i) s.fa[i] *= s.fa[i];
  s.time.resize(n);
  plan->inverse_real(s.fa, s.time, s.fft);
  return std::vector<double>(s.time.begin(),
                             s.time.begin() + static_cast<std::ptrdiff_t>(out_len));
}

std::vector<double> cross_correlate(std::span<const double> a, std::span<const double> b) {
  require_nonempty("cross_correlate a", a.size());
  require_nonempty("cross_correlate b", b.size());
  const std::size_t out_len = a.size() + b.size() - 1;

  if (prefer_direct(a.size(), b.size())) {
    // Direct path with reversed indexing — no reversed copy of b.
    std::vector<double> out(out_len, 0.0);
    const std::size_t last = b.size() - 1;
    for (std::size_t i = 0; i < a.size(); ++i)
      for (std::size_t j = 0; j < b.size(); ++j) out[i + last - j] += a[i] * b[j];
    return out;
  }

  // FFT path: the linear correlation is the circular correlation
  // c = irfft(FA . conj(FB)) read out with a rotated index, so neither a
  // reversed copy of b nor a per-bin phase ramp is needed.
  const std::size_t n = next_power_of_two(out_len);
  const auto plan = FftPlan::get(n, FftPlan::Kind::kReal);
  ConvScratch& s = conv_scratch();
  const std::size_t bins = plan->real_bins();

  s.padded.assign(n, 0.0);
  std::copy(a.begin(), a.end(), s.padded.begin());
  s.fa.resize(bins);
  plan->forward_real(s.padded, s.fa, s.fft);
  s.padded.assign(n, 0.0);
  std::copy(b.begin(), b.end(), s.padded.begin());
  s.fb.resize(bins);
  plan->forward_real(s.padded, s.fb, s.fft);

  for (std::size_t i = 0; i < bins; ++i) s.fa[i] *= std::conj(s.fb[i]);
  s.time.resize(n);
  plan->inverse_real(s.fa, s.time, s.fft);

  std::vector<double> out(out_len);
  const std::size_t shift = b.size() - 1;  // out[m] = c[(m - (|b|-1)) mod n]
  for (std::size_t m = 0; m < out_len; ++m)
    out[m] = s.time[(m + n - shift) % n];
  return out;
}

double normalized_correlation(std::span<const double> a, std::span<const double> b) {
  require(a.size() == b.size(), "normalized_correlation: size mismatch");
  require_nonempty("normalized_correlation input", a.size());
  double num = 0.0, ea = 0.0, eb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += a[i] * b[i];
    ea += a[i] * a[i];
    eb += b[i] * b[i];
  }
  if (ea <= 0.0 || eb <= 0.0) return 0.0;
  return num / std::sqrt(ea * eb);
}

}  // namespace earsonar::dsp
