// Discrete cosine transform (type II), used as the final step of MFCC
// extraction (paper §IV-C2).
#pragma once

#include <span>
#include <vector>

namespace earsonar::dsp {

/// Orthonormal DCT-II of `input`.
std::vector<double> dct2(std::span<const double> input);

/// Orthonormal DCT-III (the inverse of dct2).
std::vector<double> idct2(std::span<const double> input);

/// First `count` DCT-II coefficients of `input` (count <= input.size()).
std::vector<double> dct2_truncated(std::span<const double> input, std::size_t count);

}  // namespace earsonar::dsp
