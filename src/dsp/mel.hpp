// Mel filterbank and MFCC extraction.
//
// The paper computes MFCCs over the segmented eardrum echo; since the chirp
// band is 16-20 kHz rather than speech-band audio, the filterbank edges are
// configurable and default to a band bracketing the probe signal.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace earsonar::dsp {

/// Hz -> mel (HTK formula).
double hz_to_mel(double hz);

/// Mel -> Hz (HTK formula).
double mel_to_hz(double mel);

struct MelFilterbankConfig {
  std::size_t filter_count = 20;   ///< number of triangular filters
  double low_hz = 14000.0;         ///< lower edge of the first filter
  double high_hz = 22000.0;        ///< upper edge of the last filter
  std::size_t fft_size = 512;      ///< transform length the filters apply to
  double sample_rate = 48000.0;
};

/// Triangular mel filterbank: filter_count rows of fft_size/2+1 weights.
///
/// Degenerate triangles: with a high filter_count relative to fft_size (or a
/// narrow band), a triangle can fall entirely between two bin centers and
/// collect zero weight everywhere — its band energy would then be stuck at
/// the log floor. Such a filter is collapsed onto the single bin nearest its
/// center frequency, so every row is guaranteed a positive weight sum.
class MelFilterbank {
 public:
  explicit MelFilterbank(const MelFilterbankConfig& config);

  /// Applies the filterbank to a power spectrum of size fft_size/2+1;
  /// returns filter_count band energies.
  [[nodiscard]] std::vector<double> apply(std::span<const double> power_spectrum) const;

  /// apply() with float32 kernel arithmetic: the spectrum is narrowed once
  /// and each row reduction runs in float against pre-narrowed weights; the
  /// energies are widened on return. Accuracy is bounded by the
  /// dsp.mel.filterbank.f32 oracle pair.
  [[nodiscard]] std::vector<double> apply_f32(std::span<const double> power_spectrum) const;

  [[nodiscard]] const MelFilterbankConfig& config() const { return config_; }
  [[nodiscard]] std::size_t bins() const { return config_.fft_size / 2 + 1; }
  [[nodiscard]] const std::vector<std::vector<double>>& weights() const { return weights_; }

 private:
  MelFilterbankConfig config_;
  std::vector<std::vector<double>> weights_;  ///< row per filter (public view)
  std::vector<double> flat_;   ///< row-major copy the SIMD matvec reads
  std::vector<float> flat_f_;  ///< narrowed mirror for the float32 path
};

struct MfccConfig {
  MelFilterbankConfig filterbank;
  std::size_t coefficient_count = 13;  ///< DCT coefficients kept
  double log_floor = 1e-12;            ///< floor before the log to avoid -inf
};

/// MFCC extractor: power spectrum -> mel energies -> log -> DCT-II.
class MfccExtractor {
 public:
  explicit MfccExtractor(const MfccConfig& config);

  /// MFCCs of a time-domain frame (frame is zero-padded/truncated to
  /// fft_size, Hann-windowed, transformed internally).
  [[nodiscard]] std::vector<double> compute(std::span<const double> frame) const;

  /// MFCCs from an already-computed power spectrum (size fft_size/2+1).
  [[nodiscard]] std::vector<double> compute_from_power(
      std::span<const double> power_spectrum) const;

  [[nodiscard]] const MfccConfig& config() const { return config_; }

 private:
  MfccConfig config_;
  MelFilterbank filterbank_;
  /// DCT-II basis with the orthonormal scale folded in, row-major
  /// [coefficient][filter] — computed once instead of per compute() call.
  std::vector<double> dct_table_;
};

}  // namespace earsonar::dsp
