#include "dsp/interpolate.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "dsp/butterworth.hpp"

namespace earsonar::dsp {

std::vector<double> interp_linear(std::span<const double> x, std::span<const double> y,
                                  std::span<const double> queries) {
  require(x.size() == y.size(), "interp_linear: x/y size mismatch");
  require(x.size() >= 2, "interp_linear: need >= 2 knots");
  for (std::size_t i = 1; i < x.size(); ++i)
    require(x[i] > x[i - 1], "interp_linear: x must be strictly ascending");

  std::vector<double> out(queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const double f = queries[q];
    if (f <= x.front()) {
      out[q] = y.front();
    } else if (f >= x.back()) {
      out[q] = y.back();
    } else {
      const auto it = std::lower_bound(x.begin(), x.end(), f);
      const std::size_t hi = static_cast<std::size_t>(it - x.begin());
      const std::size_t lo = hi - 1;
      const double t = (f - x[lo]) / (x[hi] - x[lo]);
      out[q] = y[lo] * (1.0 - t) + y[hi] * t;
    }
  }
  return out;
}

CubicSpline::CubicSpline(std::span<const double> x, std::span<const double> y)
    : x_(x.begin(), x.end()), y_(y.begin(), y.end()) {
  require(x.size() == y.size(), "CubicSpline: x/y size mismatch");
  require(x.size() >= 2, "CubicSpline: need >= 2 knots");
  for (std::size_t i = 1; i < x.size(); ++i)
    require(x[i] > x[i - 1], "CubicSpline: x must be strictly ascending");

  const std::size_t n = x_.size();
  m_.assign(n, 0.0);
  if (n == 2) return;  // natural spline through 2 points is a line

  // Thomas algorithm on the tridiagonal system for second derivatives.
  std::vector<double> a(n, 0.0), b(n, 0.0), c(n, 0.0), d(n, 0.0);
  b[0] = 1.0;
  b[n - 1] = 1.0;
  for (std::size_t i = 1; i + 1 < n; ++i) {
    const double h0 = x_[i] - x_[i - 1];
    const double h1 = x_[i + 1] - x_[i];
    a[i] = h0;
    b[i] = 2.0 * (h0 + h1);
    c[i] = h1;
    d[i] = 6.0 * ((y_[i + 1] - y_[i]) / h1 - (y_[i] - y_[i - 1]) / h0);
  }
  for (std::size_t i = 1; i < n; ++i) {
    const double w = a[i] / b[i - 1];
    b[i] -= w * c[i - 1];
    d[i] -= w * d[i - 1];
  }
  m_[n - 1] = d[n - 1] / b[n - 1];
  for (std::size_t i = n - 1; i-- > 0;) m_[i] = (d[i] - c[i] * m_[i + 1]) / b[i];
}

double CubicSpline::operator()(double query) const {
  if (query <= x_.front()) return y_.front();
  if (query >= x_.back()) return y_.back();
  const auto it = std::lower_bound(x_.begin(), x_.end(), query);
  const std::size_t hi = static_cast<std::size_t>(it - x_.begin());
  const std::size_t lo = hi - 1;
  const double h = x_[hi] - x_[lo];
  const double t0 = (x_[hi] - query) / h;
  const double t1 = (query - x_[lo]) / h;
  return t0 * y_[lo] + t1 * y_[hi] +
         ((t0 * t0 * t0 - t0) * m_[lo] + (t1 * t1 * t1 - t1) * m_[hi]) * h * h / 6.0;
}

std::vector<double> CubicSpline::evaluate(std::span<const double> queries) const {
  std::vector<double> out(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) out[i] = (*this)(queries[i]);
  return out;
}

std::vector<double> resample_to_length(std::span<const double> signal,
                                       std::size_t target_length) {
  require(signal.size() >= 2, "resample_to_length: need >= 2 samples");
  require(target_length >= 2, "resample_to_length: target must be >= 2");
  std::vector<double> x(signal.size());
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<double>(i);
  CubicSpline spline(x, signal);
  std::vector<double> out(target_length);
  const double scale =
      static_cast<double>(signal.size() - 1) / static_cast<double>(target_length - 1);
  for (std::size_t i = 0; i < target_length; ++i)
    out[i] = spline(static_cast<double>(i) * scale);
  return out;
}

double sample_fractional(std::span<const double> signal, double index) {
  if (signal.empty()) return 0.0;
  if (index < 0.0 || index > static_cast<double>(signal.size() - 1)) return 0.0;
  const auto at = [&](std::ptrdiff_t i) -> double {
    if (i < 0 || i >= static_cast<std::ptrdiff_t>(signal.size())) return 0.0;
    return signal[static_cast<std::size_t>(i)];
  };
  const std::ptrdiff_t i1 = static_cast<std::ptrdiff_t>(std::floor(index));
  const double t = index - static_cast<double>(i1);
  const double p0 = at(i1 - 1), p1 = at(i1), p2 = at(i1 + 1), p3 = at(i1 + 2);
  // Catmull-Rom.
  return 0.5 * ((2.0 * p1) + (-p0 + p2) * t + (2.0 * p0 - 5.0 * p1 + 4.0 * p2 - p3) * t * t +
                (-p0 + 3.0 * p1 - 3.0 * p2 + p3) * t * t * t);
}

double sample_fractional_sinc(std::span<const double> signal, double index) {
  if (signal.empty()) return 0.0;
  if (index < 0.0 || index > static_cast<double>(signal.size() - 1)) return 0.0;
  constexpr int kHalfTaps = 8;
  constexpr double kPi = 3.14159265358979323846;
  const auto at = [&](std::ptrdiff_t i) -> double {
    if (i < 0 || i >= static_cast<std::ptrdiff_t>(signal.size())) return 0.0;
    return signal[static_cast<std::size_t>(i)];
  };
  const std::ptrdiff_t base = static_cast<std::ptrdiff_t>(std::floor(index));
  const double frac = index - static_cast<double>(base);
  if (frac < 1e-12) return at(base);  // exact sample, skip the kernel

  double acc = 0.0;
  for (int k = -kHalfTaps + 1; k <= kHalfTaps; ++k) {
    const double t = frac - static_cast<double>(k);  // distance to tap k
    const double sinc = std::sin(kPi * t) / (kPi * t);
    // Hann window over the kernel span [-kHalfTaps, kHalfTaps].
    const double win = 0.5 + 0.5 * std::cos(kPi * t / kHalfTaps);
    acc += at(base + k) * sinc * win;
  }
  return acc;
}

std::vector<double> resample_to_rate(std::span<const double> signal, double source_rate,
                                     double target_rate) {
  require_nonempty("resample_to_rate input", signal.size());
  require_positive("source_rate", source_rate);
  require_positive("target_rate", target_rate);
  if (source_rate == target_rate)
    return std::vector<double>(signal.begin(), signal.end());

  // Downsampling folds content above the new Nyquist back into band;
  // low-pass first.
  std::vector<double> prepared;
  if (target_rate < source_rate) {
    BiquadCascade aa = butterworth_lowpass(6, 0.45 * target_rate, source_rate);
    prepared = aa.filtfilt(signal);
  } else {
    prepared.assign(signal.begin(), signal.end());
  }

  const double ratio = source_rate / target_rate;
  const std::size_t out_len = static_cast<std::size_t>(
      std::llround(static_cast<double>(signal.size()) / ratio));
  std::vector<double> out(std::max<std::size_t>(out_len, 1));
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = sample_fractional_sinc(prepared, static_cast<double>(i) * ratio);
  return out;
}

std::vector<double> fractional_delay(std::span<const double> signal, double delay_samples) {
  require(delay_samples >= 0.0, "fractional_delay: delay must be >= 0");
  std::vector<double> out(signal.size(), 0.0);
  for (std::size_t i = 0; i < signal.size(); ++i) {
    const double src = static_cast<double>(i) - delay_samples;
    if (src >= 0.0) out[i] = sample_fractional(signal, src);
  }
  return out;
}

}  // namespace earsonar::dsp
