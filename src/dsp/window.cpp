#include "dsp/window.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "dsp/simd.hpp"

namespace earsonar::dsp {

namespace {
constexpr double kPi = std::numbers::pi;

// Generalized cosine window: w[i] = sum_k (-1)^k a_k cos(2*pi*k*i/(N-1)).
std::vector<double> cosine_window(std::size_t n, std::span<const double> coeffs) {
  std::vector<double> w(n, 1.0);
  if (n == 1) return w;
  const double denom = static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    double sign = 1.0;
    for (std::size_t k = 0; k < coeffs.size(); ++k) {
      acc += sign * coeffs[k] * std::cos(2.0 * kPi * static_cast<double>(k) *
                                         static_cast<double>(i) / denom);
      sign = -sign;
    }
    w[i] = acc;
  }
  return w;
}
}  // namespace

std::vector<double> make_window(WindowType type, std::size_t length, double gaussian_sigma) {
  require_nonempty("window length", length);
  switch (type) {
    case WindowType::kRectangular:
      return std::vector<double>(length, 1.0);
    case WindowType::kHann:
      return hann_window(length);
    case WindowType::kHamming:
      return hamming_window(length);
    case WindowType::kBlackman:
      return blackman_window(length);
    case WindowType::kBlackmanHarris: {
      const double coeffs[] = {0.35875, 0.48829, 0.14128, 0.01168};
      return cosine_window(length, coeffs);
    }
    case WindowType::kGaussian: {
      require_positive("gaussian_sigma", gaussian_sigma);
      std::vector<double> w(length);
      const double half = (static_cast<double>(length) - 1.0) / 2.0;
      for (std::size_t i = 0; i < length; ++i) {
        const double t = (static_cast<double>(i) - half) / (gaussian_sigma * half == 0.0
                                                                ? 1.0
                                                                : gaussian_sigma * half);
        w[i] = std::exp(-0.5 * t * t);
      }
      return w;
    }
  }
  throw std::invalid_argument("make_window: unknown window type");
}

std::vector<double> hann_window(std::size_t length) {
  const double coeffs[] = {0.5, 0.5};
  require_nonempty("window length", length);
  return cosine_window(length, coeffs);
}

std::vector<double> hamming_window(std::size_t length) {
  const double coeffs[] = {0.54, 0.46};
  require_nonempty("window length", length);
  return cosine_window(length, coeffs);
}

std::vector<double> blackman_window(std::size_t length) {
  const double coeffs[] = {0.42, 0.5, 0.08};
  require_nonempty("window length", length);
  return cosine_window(length, coeffs);
}

void apply_window_inplace(std::span<double> signal, std::span<const double> window) {
  require(signal.size() == window.size(), "apply_window: size mismatch");
  simd::active().mul_d(signal.data(), signal.data(), window.data(), signal.size());
}

std::vector<double> apply_window(std::span<const double> signal,
                                 std::span<const double> window) {
  std::vector<double> out(signal.begin(), signal.end());
  apply_window_inplace(out, window);
  return out;
}

double window_sum(std::span<const double> window) {
  double acc = 0.0;
  for (double w : window) acc += w;
  return acc;
}

double window_power(std::span<const double> window) {
  double acc = 0.0;
  for (double w : window) acc += w * w;
  return acc;
}

}  // namespace earsonar::dsp
