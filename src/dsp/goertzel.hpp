// Goertzel single-bin DFT — a cheap way to measure energy at one probe
// frequency, used by tests and the simulator's calibration checks.
//
// Convention: Goertzel outputs match the dsp::fft spectrum helpers bin for
// bin, so a Goertzel probe at bin_frequency(k, N, fs) can be compared
// directly against magnitude_spectrum(x)[k] / power_spectrum(x)[k]. (An
// earlier revision divided the magnitude by N, which silently disagreed with
// every FFT-bin comparison by a factor of N; the oracle pair `dsp.goertzel`
// in tests/oracle/ now pins this convention.)
#pragma once

#include <span>

namespace earsonar::dsp {

/// Power |X(f)|^2 / N at `frequency_hz` — the same normalization as
/// dsp::power_spectrum, so a full-scale bin-exact sine reports N/4.
double goertzel_power(std::span<const double> signal, double frequency_hz,
                      double sample_rate);

/// Unnormalized magnitude |X(f)| = |sum_n x[n] e^{-2*pi*i*f*n/fs}| — the same
/// scale as dsp::magnitude_spectrum bins; a full-scale bin-exact sine reports
/// N/2. Valid at any frequency in [0, Nyquist], not just bin centers.
double goertzel_magnitude(std::span<const double> signal, double frequency_hz,
                          double sample_rate);

}  // namespace earsonar::dsp
