// Goertzel single-bin DFT — a cheap way to measure energy at one probe
// frequency, used by tests and the simulator's calibration checks.
#pragma once

#include <span>

namespace earsonar::dsp {

/// Power of `signal` at `frequency_hz` (normalized |X(f)|^2 / N^2 so a
/// full-scale sine of that frequency reports ~0.25).
double goertzel_power(std::span<const double> signal, double frequency_hz,
                      double sample_rate);

/// Magnitude |X(f)| / N at `frequency_hz` (full-scale sine reports ~0.5).
double goertzel_magnitude(std::span<const double> signal, double frequency_hz,
                          double sample_rate);

}  // namespace earsonar::dsp
