#include "dsp/multibiquad.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "dsp/simd.hpp"

namespace earsonar::dsp {

MultiBiquadCascade::MultiBiquadCascade(std::vector<Biquad> sections,
                                       std::size_t channels)
    : sections_(std::move(sections)),
      channels_(channels),
      lanes_(simd::active().lanes_d),
      groups_((channels + lanes_ - 1) / lanes_) {
  require(channels >= 1, "MultiBiquadCascade: channels must be >= 1");
  z1_.assign(sections_.size() * groups_ * lanes_, 0.0);
  z2_.assign(sections_.size() * groups_ * lanes_, 0.0);
}

void MultiBiquadCascade::process(std::span<const std::span<const double>> inputs,
                                 std::span<const std::span<double>> outputs) {
  require(inputs.size() == channels_ && outputs.size() == channels_,
          "MultiBiquadCascade::process: one block per channel required");
  if (channels_ == 0) return;
  const std::size_t n = inputs[0].size();
  for (std::size_t c = 0; c < channels_; ++c)
    require(inputs[c].size() == n && outputs[c].size() == n,
            "MultiBiquadCascade::process: blocks must have equal length");
  if (n == 0) return;

  const auto& kernel = simd::active();
  const std::size_t w = lanes_;
  buf_.resize(n * w);
  for (std::size_t g = 0; g < groups_; ++g) {
    const std::size_t c0 = g * w;
    const std::size_t used = std::min(w, channels_ - c0);
    // Interleave the group's channels frame-major; idle lanes carry zeros
    // (their state is zero and stays zero, so they cost nothing numerically).
    for (std::size_t lane = 0; lane < used; ++lane) {
      const double* src = inputs[c0 + lane].data();
      for (std::size_t t = 0; t < n; ++t) buf_[t * w + lane] = src[t];
    }
    for (std::size_t lane = used; lane < w; ++lane)
      for (std::size_t t = 0; t < n; ++t) buf_[t * w + lane] = 0.0;

    for (std::size_t s = 0; s < sections_.size(); ++s) {
      const Biquad& sec = sections_[s];
      const double coef[5] = {sec.b0, sec.b1, sec.b2, sec.a1, sec.a2};
      const std::size_t base = (s * groups_ + g) * w;
      kernel.biquad_interleaved_d(buf_.data(), n, coef, z1_.data() + base,
                                  z2_.data() + base);
    }

    for (std::size_t lane = 0; lane < used; ++lane) {
      double* dst = outputs[c0 + lane].data();
      for (std::size_t t = 0; t < n; ++t) dst[t] = buf_[t * w + lane];
    }
  }
}

void MultiBiquadCascade::set_channel_state(
    std::size_t c, std::span<const BiquadCascade::State> state) {
  require(c < channels_, "MultiBiquadCascade::set_channel_state: channel out of range");
  require(state.size() == sections_.size(),
          "MultiBiquadCascade::set_channel_state: state size mismatch");
  for (std::size_t s = 0; s < sections_.size(); ++s) {
    z1_[state_index(s, c)] = state[s].z1;
    z2_[state_index(s, c)] = state[s].z2;
  }
}

void MultiBiquadCascade::get_channel_state(
    std::size_t c, std::span<BiquadCascade::State> out) const {
  require(c < channels_, "MultiBiquadCascade::get_channel_state: channel out of range");
  require(out.size() == sections_.size(),
          "MultiBiquadCascade::get_channel_state: state size mismatch");
  for (std::size_t s = 0; s < sections_.size(); ++s) {
    out[s].z1 = z1_[state_index(s, c)];
    out[s].z2 = z2_[state_index(s, c)];
  }
}

void MultiBiquadCascade::reset() {
  z1_.assign(z1_.size(), 0.0);
  z2_.assign(z2_.size(), 0.0);
}

}  // namespace earsonar::dsp
