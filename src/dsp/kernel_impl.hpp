// Templated kernel bodies shared by every dispatch level.
//
// Each translation unit (kernels_base.cpp, kernels_avx2.cpp,
// kernels_pack.cpp) instantiates Kern<V> over its own vector types from
// simd_vec.hpp and exports the resulting function pointers through a
// KernelSet. Because the code here is the single source for both the
// intrinsic and the Pack builds, per-lane operation sequences are identical
// by construction — the foundation of the scalar-vs-native bit-parity
// guarantee (see simd.hpp). Keep every arithmetic decision (e.g. expressing
// v as add(t1, neg_even(t2)), the lane-ordered reductions, the scalar tails)
// in this file only.
#pragma once

#include <cstddef>

#include "dsp/simd.hpp"
#include "dsp/simd_vec.hpp"

namespace earsonar::dsp::simd {

template <class V>
struct Kern {
  using T = typename V::value_type;
  static constexpr std::size_t W = V::kLanes;

  /// Radix-2 DIT butterfly stages over n complex values (2n scalars) already
  /// in bit-reversed order. Stage twiddle layout matches FftPlan: the stage
  /// with half-length h keeps its h complex twiddles at scalar offset 2h.
  static void butterflies(T* d, const T* twiddles, std::size_t n) {
    const std::size_t n2 = 2 * n;
    // The first two stages need no multiplies: their twiddles are exactly 1
    // and {1, -i}. They stay scalar — identical code in every instantiation.
    if (n >= 2) {
      for (std::size_t i = 0; i < n2; i += 4) {
        const T ur = d[i], ui = d[i + 1], vr = d[i + 2], vi = d[i + 3];
        d[i] = ur + vr;
        d[i + 1] = ui + vi;
        d[i + 2] = ur - vr;
        d[i + 3] = ui - vi;
      }
    }
    if (n >= 4) {
      for (std::size_t i = 0; i < n2; i += 8) {
        const T u0r = d[i], u0i = d[i + 1], v0r = d[i + 4], v0i = d[i + 5];
        d[i] = u0r + v0r;
        d[i + 1] = u0i + v0i;
        d[i + 4] = u0r - v0r;
        d[i + 5] = u0i - v0i;
        const T u1r = d[i + 2], u1i = d[i + 3];
        const T v1r = d[i + 7], v1i = -d[i + 6];  // x * -i
        d[i + 2] = u1r + v1r;
        d[i + 3] = u1i + v1i;
        d[i + 6] = u1r - v1r;
        d[i + 7] = u1i - v1i;
      }
    }
    // Generic stages: half-length h >= 4 means each half spans 2h >= 8
    // scalars, a multiple of every supported lane count, so the inner loop
    // needs no tail. Complex multiply in interleaved form:
    //   v = x*w = (xr*wr - xi*wi, xi*wr + xr*wi)
    //     = x*dup_even(w) + neg_even(swap_pairs(x)*dup_odd(w)).
    for (std::size_t h = 4; h < n; h <<= 1) {
      const T* w = twiddles + 2 * h;
      const std::size_t h2 = 2 * h;
      for (std::size_t i = 0; i < n2; i += 2 * h2) {
        T* lo = d + i;
        T* hi = d + i + h2;
        for (std::size_t k = 0; k < h2; k += W) {
          const V wv = V::load(w + k);
          const V x = V::load(hi + k);
          const V u = V::load(lo + k);
          const V t1 = V::mul(x, V::dup_even(wv));
          const V t2 = V::mul(V::swap_pairs(x), V::dup_odd(wv));
          const V v = V::add(t1, V::neg_even(t2));
          V::store(lo + k, V::add(u, v));
          V::store(hi + k, V::add(u, V::negate(v)));
        }
      }
    }
  }

  /// butterflies over four transforms batched in a lane-major layout: complex
  /// index k of transform l lives at z[8k + l] (re) and z[8k + 4 + l] (im).
  /// Rows of four same-index reals (or imags) are contiguous, so every
  /// butterfly is elementwise over 4/W vectors with broadcast twiddles — no
  /// shuffles, every lane busy. The per-transform arithmetic mirrors
  /// butterflies stage for stage (the u + negate(v) there is V::sub here,
  /// which simd_vec.hpp requires to be the identical IEEE operation), so each
  /// transform's result equals the single-transform path bit for bit.
  static void butterflies_x4(T* z, const T* twiddles, std::size_t n) {
    constexpr std::size_t R = 4;      // batched transforms per row
    constexpr std::size_t S = 2 * R;  // scalars per complex index
    static_assert(W <= R && R % W == 0, "lane width must tile the batch rows");
    if (n >= 2) {  // stage h=1: twiddle is exactly 1
      for (std::size_t i = 0; i < n; i += 2) {
        T* u = z + S * i;
        T* v = u + S;
        for (std::size_t l = 0; l < S; l += W) {
          const V a = V::load(u + l), b = V::load(v + l);
          V::store(u + l, V::add(a, b));
          V::store(v + l, V::sub(a, b));
        }
      }
    }
    if (n >= 4) {  // stage h=2: twiddles are exactly {1, -i}
      for (std::size_t i = 0; i < n; i += 4) {
        T* c0 = z + S * i;
        T* c2 = c0 + 2 * S;
        for (std::size_t l = 0; l < S; l += W) {
          const V a = V::load(c0 + l), b = V::load(c2 + l);
          V::store(c0 + l, V::add(a, b));
          V::store(c2 + l, V::sub(a, b));
        }
        T* c1 = c0 + S;
        T* c3 = c0 + 3 * S;
        for (std::size_t l = 0; l < R; l += W) {
          const V ur = V::load(c1 + l);
          const V ui = V::load(c1 + R + l);
          const V vr = V::load(c3 + R + l);           // x * -i: re' = im
          const V vi = V::negate(V::load(c3 + l));    //         im' = -re
          V::store(c1 + l, V::add(ur, vr));
          V::store(c1 + R + l, V::add(ui, vi));
          V::store(c3 + l, V::sub(ur, vr));
          V::store(c3 + R + l, V::sub(ui, vi));
        }
      }
    }
    for (std::size_t h = 4; h < n; h <<= 1) {
      const T* w = twiddles + 2 * h;
      for (std::size_t i = 0; i < n; i += 2 * h) {
        T* lo = z + S * i;
        T* hi = lo + S * h;
        for (std::size_t k = 0; k < h; ++k) {
          const V wr = V::broadcast(w[2 * k]);
          const V wi = V::broadcast(w[2 * k + 1]);
          T* u = lo + S * k;
          T* x = hi + S * k;
          for (std::size_t l = 0; l < R; l += W) {
            const V xr = V::load(x + l);
            const V xi = V::load(x + R + l);
            const V vr = V::sub(V::mul(xr, wr), V::mul(xi, wi));
            const V vi = V::add(V::mul(xi, wr), V::mul(xr, wi));
            const V ur = V::load(u + l);
            const V ui = V::load(u + R + l);
            V::store(u + l, V::add(ur, vr));
            V::store(u + R + l, V::add(ui, vi));
            V::store(x + l, V::sub(ur, vr));
            V::store(x + R + l, V::sub(ui, vi));
          }
        }
      }
    }
  }

  /// out[k] = (bins[2k]^2 + bins[2k+1]^2) * scale for k in [0, m).
  static void power_bins(const T* bins, T* out, std::size_t m, T scale) {
    const V vscale = V::broadcast(scale);
    std::size_t k = 0;
    for (; k + W <= m; k += W) {
      const V a = V::load(bins + 2 * k);
      const V b = V::load(bins + 2 * k + W);
      const V p = V::hadd_pairs(V::mul(a, a), V::mul(b, b));
      V::store(out + k, V::mul(p, vscale));
    }
    for (; k < m; ++k)
      out[k] = (bins[2 * k] * bins[2 * k] + bins[2 * k + 1] * bins[2 * k + 1]) * scale;
  }

  /// dst[i] = a[i] * b[i]; dst may alias either input.
  static void mul(T* dst, const T* a, const T* b, std::size_t n) {
    std::size_t i = 0;
    for (; i + W <= n; i += W)
      V::store(dst + i, V::mul(V::load(a + i), V::load(b + i)));
    for (; i < n; ++i) dst[i] = a[i] * b[i];
  }

  /// Dot product: W parallel accumulators, lanes combined in index order,
  /// then the scalar tail folded in last — one fixed summation order.
  static T dot(const T* a, const T* b, std::size_t n) {
    V acc = V::zero();
    std::size_t i = 0;
    for (; i + W <= n; i += W)
      acc = V::add(acc, V::mul(V::load(a + i), V::load(b + i)));
    T lanes[W];
    V::store(lanes, acc);
    T sum = lanes[0];
    for (std::size_t l = 1; l < W; ++l) sum += lanes[l];
    for (; i < n; ++i) sum += a[i] * b[i];
    return sum;
  }

  /// One transposed-DF2 biquad section over `frame_count` frames of W
  /// interleaved channels, in place. coef = {b0, b1, b2, a1, a2}.
  static void biquad_interleaved(T* frames, std::size_t frame_count,
                                 const T* coef, T* z1p, T* z2p) {
    const V b0 = V::broadcast(coef[0]);
    const V b1 = V::broadcast(coef[1]);
    const V b2 = V::broadcast(coef[2]);
    const V a1 = V::broadcast(coef[3]);
    const V a2 = V::broadcast(coef[4]);
    V z1 = V::load(z1p);
    V z2 = V::load(z2p);
    for (std::size_t t = 0; t < frame_count; ++t) {
      T* p = frames + t * W;
      const V x = V::load(p);
      const V y = V::add(V::mul(b0, x), z1);
      z1 = V::add(V::sub(V::mul(b1, x), V::mul(a1, y)), z2);
      z2 = V::sub(V::mul(b2, x), V::mul(a2, y));
      V::store(p, y);
    }
    V::store(z1p, z1);
    V::store(z2p, z2);
  }
};

/// Assembles a KernelSet from a double-lane and a float-lane vector type of
/// the same level.
template <class VD, class VF>
inline KernelSet make_kernel_set(const char* name) {
  KernelSet set{};
  set.name = name;
  set.lanes_d = VD::kLanes;
  set.lanes_f = VF::kLanes;
  set.butterflies_d = &Kern<VD>::butterflies;
  set.butterflies_f = &Kern<VF>::butterflies;
  set.butterflies_x4_d = &Kern<VD>::butterflies_x4;
  set.power_bins_d = &Kern<VD>::power_bins;
  set.power_bins_f = &Kern<VF>::power_bins;
  set.mul_d = &Kern<VD>::mul;
  set.dot_d = &Kern<VD>::dot;
  set.dot_f = &Kern<VF>::dot;
  set.biquad_interleaved_d = &Kern<VD>::biquad_interleaved;
  return set;
}

// Internal cross-TU hooks (defined in kernels_*.cpp, consumed by simd.cpp).
const KernelSet& pack_set_w2();   ///< Pack<double,2> / Pack<float,4>
const KernelSet& pack_set_w4();   ///< Pack<double,4> / Pack<float,8>
const KernelSet& base_set();      ///< SSE2 / NEON / pack2 per build arch
const KernelSet* avx2_set();      ///< non-null only in an AVX2-capable build

}  // namespace earsonar::dsp::simd
