#include "dsp/mel.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "dsp/fft.hpp"
#include "dsp/simd.hpp"
#include "dsp/window.hpp"

namespace earsonar::dsp {

double hz_to_mel(double hz) {
  require(hz >= 0.0, "hz_to_mel: hz must be >= 0");
  return 2595.0 * std::log10(1.0 + hz / 700.0);
}

double mel_to_hz(double mel) {
  require(mel >= 0.0, "mel_to_hz: mel must be >= 0");
  return 700.0 * (std::pow(10.0, mel / 2595.0) - 1.0);
}

MelFilterbank::MelFilterbank(const MelFilterbankConfig& config) : config_(config) {
  require(config.filter_count >= 1, "MelFilterbank: need >= 1 filter");
  require_positive("MelFilterbank sample_rate", config.sample_rate);
  require(config.fft_size >= 4, "MelFilterbank: fft_size too small");
  require(config.low_hz >= 0.0 && config.high_hz <= config.sample_rate / 2.0 &&
              config.low_hz < config.high_hz,
          "MelFilterbank: need 0 <= low < high <= Nyquist");

  const std::size_t n_bins = bins();
  const double mel_lo = hz_to_mel(config.low_hz);
  const double mel_hi = hz_to_mel(config.high_hz);
  // filter_count triangles need filter_count + 2 edge points.
  std::vector<double> edges_hz(config.filter_count + 2);
  for (std::size_t i = 0; i < edges_hz.size(); ++i) {
    const double mel = mel_lo + (mel_hi - mel_lo) * static_cast<double>(i) /
                                    static_cast<double>(edges_hz.size() - 1);
    edges_hz[i] = mel_to_hz(mel);
  }

  weights_.assign(config.filter_count, std::vector<double>(n_bins, 0.0));
  for (std::size_t f = 0; f < config.filter_count; ++f) {
    const double left = edges_hz[f], center = edges_hz[f + 1], right = edges_hz[f + 2];
    double total = 0.0;
    for (std::size_t b = 0; b < n_bins; ++b) {
      const double freq = bin_frequency(b, config.fft_size, config.sample_rate);
      double w = 0.0;
      if (freq > left && freq < center) w = (freq - left) / (center - left);
      else if (freq >= center && freq < right) w = (right - freq) / (right - center);
      weights_[f][b] = w;
      total += w;
    }
    if (total == 0.0) {
      // A triangle narrower than one bin spacing can miss every bin center,
      // which would pin the filter's log energy to log(log_floor) no matter
      // the input. Collapse such a filter onto the bin nearest its center so
      // every filter observes the spectrum.
      const std::size_t nearest =
          frequency_to_bin(center, config.fft_size, config.sample_rate);
      weights_[f][std::min(nearest, n_bins - 1)] = 1.0;
    }
  }

  // Row-major copies for the SIMD matvec: one contiguous double array plus a
  // float mirror for the opt-in float32 path.
  flat_.reserve(config.filter_count * n_bins);
  flat_f_.reserve(config.filter_count * n_bins);
  for (const auto& row : weights_)
    for (double w : row) {
      flat_.push_back(w);
      flat_f_.push_back(static_cast<float>(w));
    }
}

std::vector<double> MelFilterbank::apply(std::span<const double> power_spectrum) const {
  require(power_spectrum.size() == bins(), "MelFilterbank::apply: spectrum size mismatch");
  const std::size_t n_bins = bins();
  const auto& kernel = simd::active();
  std::vector<double> energies(config_.filter_count, 0.0);
  for (std::size_t f = 0; f < config_.filter_count; ++f)
    energies[f] =
        kernel.dot_d(flat_.data() + f * n_bins, power_spectrum.data(), n_bins);
  return energies;
}

std::vector<double> MelFilterbank::apply_f32(
    std::span<const double> power_spectrum) const {
  require(power_spectrum.size() == bins(),
          "MelFilterbank::apply_f32: spectrum size mismatch");
  const std::size_t n_bins = bins();
  const auto& kernel = simd::active();
  std::vector<float> narrow(n_bins);
  for (std::size_t b = 0; b < n_bins; ++b)
    narrow[b] = static_cast<float>(power_spectrum[b]);
  std::vector<double> energies(config_.filter_count, 0.0);
  for (std::size_t f = 0; f < config_.filter_count; ++f)
    energies[f] = static_cast<double>(
        kernel.dot_f(flat_f_.data() + f * n_bins, narrow.data(), n_bins));
  return energies;
}

MfccExtractor::MfccExtractor(const MfccConfig& config)
    : config_(config), filterbank_(config.filterbank) {
  require(config.coefficient_count >= 1 &&
              config.coefficient_count <= config.filterbank.filter_count,
          "MfccExtractor: coefficient_count must be in [1, filter_count]");
  require_positive("MfccExtractor log_floor", config.log_floor);

  const std::size_t n = config.filterbank.filter_count;
  const double pi = 3.14159265358979323846;
  const double scale0 = std::sqrt(1.0 / static_cast<double>(n));
  const double scale = std::sqrt(2.0 / static_cast<double>(n));
  dct_table_.resize(config.coefficient_count * n);
  for (std::size_t k = 0; k < config.coefficient_count; ++k)
    for (std::size_t i = 0; i < n; ++i)
      dct_table_[k * n + i] =
          (k == 0 ? scale0 : scale) *
          std::cos(pi / static_cast<double>(n) *
                   (static_cast<double>(i) + 0.5) * static_cast<double>(k));
}

std::vector<double> MfccExtractor::compute(std::span<const double> frame) const {
  require_nonempty("MfccExtractor frame", frame.size());
  const std::size_t n = config_.filterbank.fft_size;
  std::vector<double> padded(n, 0.0);
  const std::size_t copy = std::min(frame.size(), n);
  std::copy_n(frame.begin(), copy, padded.begin());
  const std::vector<double> w = hann_window(n);
  apply_window_inplace(padded, w);

  std::vector<Complex> bins_cx = rfft(padded);
  std::vector<double> power(bins_cx.size());
  const double scale = 1.0 / static_cast<double>(n);
  for (std::size_t i = 0; i < bins_cx.size(); ++i) power[i] = std::norm(bins_cx[i]) * scale;
  return compute_from_power(power);
}

std::vector<double> MfccExtractor::compute_from_power(
    std::span<const double> power_spectrum) const {
  std::vector<double> energies = filterbank_.apply(power_spectrum);
  for (double& e : energies) e = std::log(std::max(e, config_.log_floor));
  // DCT-II against the precomputed orthonormal basis, keep the leading rows.
  const std::size_t n = energies.size();
  const auto& kernel = simd::active();
  std::vector<double> mfcc(config_.coefficient_count, 0.0);
  for (std::size_t k = 0; k < mfcc.size(); ++k)
    mfcc[k] = kernel.dot_d(dct_table_.data() + k * n, energies.data(), n);
  return mfcc;
}

}  // namespace earsonar::dsp
