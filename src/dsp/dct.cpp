#include "dsp/dct.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace earsonar::dsp {

namespace {
constexpr double kPi = std::numbers::pi;
}

std::vector<double> dct2(std::span<const double> input) {
  require_nonempty("dct2 input", input.size());
  const std::size_t n = input.size();
  std::vector<double> out(n);
  const double scale0 = std::sqrt(1.0 / static_cast<double>(n));
  const double scale = std::sqrt(2.0 / static_cast<double>(n));
  for (std::size_t k = 0; k < n; ++k) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      acc += input[i] * std::cos(kPi / static_cast<double>(n) *
                                 (static_cast<double>(i) + 0.5) * static_cast<double>(k));
    out[k] = acc * (k == 0 ? scale0 : scale);
  }
  return out;
}

std::vector<double> idct2(std::span<const double> input) {
  require_nonempty("idct2 input", input.size());
  const std::size_t n = input.size();
  std::vector<double> out(n);
  const double scale0 = std::sqrt(1.0 / static_cast<double>(n));
  const double scale = std::sqrt(2.0 / static_cast<double>(n));
  for (std::size_t i = 0; i < n; ++i) {
    double acc = input[0] * scale0;
    for (std::size_t k = 1; k < n; ++k)
      acc += input[k] * scale *
             std::cos(kPi / static_cast<double>(n) * (static_cast<double>(i) + 0.5) *
                      static_cast<double>(k));
    out[i] = acc;
  }
  return out;
}

std::vector<double> dct2_truncated(std::span<const double> input, std::size_t count) {
  require(count <= input.size(), "dct2_truncated: count exceeds input size");
  std::vector<double> full = dct2(input);
  full.resize(count);
  return full;
}

}  // namespace earsonar::dsp
