// Short-time Fourier transform / spectrogram. Used by the CLI's inspection
// commands to render the time-frequency picture of a probing session (the
// FMCW chirp ladder of the paper's Fig. 6).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dsp/window.hpp"

namespace earsonar::dsp {

struct StftConfig {
  std::size_t window_length = 256;
  std::size_t hop = 128;
  std::size_t fft_size = 256;         ///< >= window_length, power of two
  WindowType window = WindowType::kHann;

  void validate() const;
};

/// A magnitude spectrogram: power[frame][bin], with helper axes.
struct Spectrogram {
  std::vector<std::vector<double>> power;  ///< frames x (fft_size/2+1)
  std::vector<double> time_s;              ///< frame centers
  std::vector<double> frequency_hz;        ///< bin centers

  [[nodiscard]] std::size_t frames() const { return power.size(); }
  [[nodiscard]] std::size_t bins() const {
    return power.empty() ? 0 : power.front().size();
  }
};

/// Power spectrogram of a real signal. Frames shorter than the window at the
/// signal tail are zero-padded. Requires signal.size() >= window_length.
Spectrogram stft(std::span<const double> signal, double sample_rate,
                 const StftConfig& config = {});

/// Frequency of the per-frame power-weighted peak bin, one value per frame —
/// a cheap instantaneous-frequency track that makes chirp sweeps visible.
std::vector<double> peak_frequency_track(const Spectrogram& spectrogram);

}  // namespace earsonar::dsp
