#include "dsp/biquad.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace earsonar::dsp {

std::complex<double> Biquad::response(double w) const {
  const std::complex<double> z1 = std::polar(1.0, -w);
  const std::complex<double> z2 = z1 * z1;
  return (b0 + b1 * z1 + b2 * z2) / (1.0 + a1 * z1 + a2 * z2);
}

bool Biquad::is_stable() const {
  // Jury criterion for a degree-2 polynomial z^2 + a1 z + a2.
  return std::abs(a2) < 1.0 && std::abs(a1) < 1.0 + a2;
}

BiquadCascade::BiquadCascade(std::vector<Biquad> sections)
    : sections_(std::move(sections)), state_(sections_.size()) {}

namespace {

// Runs the cascade in place over data[0, n), consuming samples in index
// order (Reverse: from n-1 down to 0). Coefficients and delay lines are
// hoisted into locals sized by the compile-time section count, so they stay
// in registers across the whole block — through the member vectors the
// compiler must spill and reload them every sample, because it cannot prove
// the output buffer never aliases them. Each section-step evaluates the
// exact expression sequence of BiquadCascade::process_sample, so the
// filtered signal and the final delay lines are bit-identical to the
// generic loop.
template <std::size_t N, bool Reverse>
void run_fixed(const Biquad* sec, BiquadCascade::State* st, double* data,
               std::size_t n) {
  double b0[N], b1[N], b2[N], a1[N], a2[N], z1[N], z2[N];
  for (std::size_t s = 0; s < N; ++s) {
    b0[s] = sec[s].b0;
    b1[s] = sec[s].b1;
    b2[s] = sec[s].b2;
    a1[s] = sec[s].a1;
    a2[s] = sec[s].a2;
    z1[s] = st[s].z1;
    z2[s] = st[s].z2;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = Reverse ? n - 1 - i : i;
    double x = data[j];
    for (std::size_t s = 0; s < N; ++s) {
      const double y = b0[s] * x + z1[s];
      z1[s] = b1[s] * x - a1[s] * y + z2[s];
      z2[s] = b2[s] * x - a2[s] * y;
      x = y;
    }
    data[j] = x;
  }
  for (std::size_t s = 0; s < N; ++s) {
    st[s].z1 = z1[s];
    st[s].z2 = z2[s];
  }
}

// Dispatches to the fixed-count kernel for every cascade size the
// Butterworth designer can produce (order <= 8). Returns false for larger
// cascades, which fall back to the generic per-sample loop.
template <bool Reverse>
bool run_cascade(const std::vector<Biquad>& sections,
                 std::vector<BiquadCascade::State>& state, double* data,
                 std::size_t n) {
  const Biquad* sec = sections.data();
  BiquadCascade::State* st = state.data();
  switch (sections.size()) {
    case 1: run_fixed<1, Reverse>(sec, st, data, n); return true;
    case 2: run_fixed<2, Reverse>(sec, st, data, n); return true;
    case 3: run_fixed<3, Reverse>(sec, st, data, n); return true;
    case 4: run_fixed<4, Reverse>(sec, st, data, n); return true;
    case 5: run_fixed<5, Reverse>(sec, st, data, n); return true;
    case 6: run_fixed<6, Reverse>(sec, st, data, n); return true;
    case 7: run_fixed<7, Reverse>(sec, st, data, n); return true;
    case 8: run_fixed<8, Reverse>(sec, st, data, n); return true;
    default: return false;
  }
}

}  // namespace

double BiquadCascade::process_sample(double x) {
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    const Biquad& s = sections_[i];
    State& st = state_[i];
    const double y = s.b0 * x + st.z1;
    st.z1 = s.b1 * x - s.a1 * y + st.z2;
    st.z2 = s.b2 * x - s.a2 * y;
    x = y;
  }
  return x;
}

std::vector<double> BiquadCascade::process(std::span<const double> input) {
  // Sample-major on purpose: the per-section recurrences of *different*
  // samples overlap in the pipeline (section s of sample i executes during
  // section s+1 of sample i-1), so the cascade's serial latency hides. A
  // section-major interchange measures ~2x slower here — each section then
  // runs one long z1->y->z1 dependency chain with no ILP. The multi-channel
  // SIMD variant lives in dsp::MultiBiquadCascade, which gets its
  // parallelism across channels instead.
  std::vector<double> out(input.begin(), input.end());
  if (!run_cascade<false>(sections_, state_, out.data(), out.size()))
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = process_sample(out[i]);
  return out;
}

std::vector<double> BiquadCascade::filtfilt(std::span<const double> input) const {
  BiquadCascade forward(sections_);
  std::vector<double> y = forward.process(input);
  // Backward pass without materializing either reversal: feeding y back to
  // front and storing each output where its input came from is exactly
  // reverse-process-reverse — the filter sees the identical sample sequence,
  // so the results match that composition bit for bit.
  BiquadCascade backward(sections_);
  if (!run_cascade<true>(backward.sections_, backward.state_, y.data(), y.size()))
    for (std::size_t i = y.size(); i-- > 0;) y[i] = backward.process_sample(y[i]);
  return y;
}

void BiquadCascade::reset() {
  for (State& st : state_) st = State{};
}

void BiquadCascade::set_state(std::vector<State> state) {
  require(state.size() == sections_.size(),
          "BiquadCascade::set_state: state size must match section count");
  state_ = std::move(state);
}

std::complex<double> BiquadCascade::response(double w) const {
  std::complex<double> h{1.0, 0.0};
  for (const Biquad& s : sections_) h *= s.response(w);
  return h;
}

double BiquadCascade::magnitude_at(double frequency_hz, double sample_rate) const {
  require_positive("sample_rate", sample_rate);
  require_in_range("frequency_hz", frequency_hz, 0.0, sample_rate / 2.0);
  const double w = 2.0 * 3.14159265358979323846 * frequency_hz / sample_rate;
  return std::abs(response(w));
}

bool BiquadCascade::is_stable() const {
  return std::all_of(sections_.begin(), sections_.end(),
                     [](const Biquad& s) { return s.is_stable(); });
}

}  // namespace earsonar::dsp
