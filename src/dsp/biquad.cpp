#include "dsp/biquad.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace earsonar::dsp {

std::complex<double> Biquad::response(double w) const {
  const std::complex<double> z1 = std::polar(1.0, -w);
  const std::complex<double> z2 = z1 * z1;
  return (b0 + b1 * z1 + b2 * z2) / (1.0 + a1 * z1 + a2 * z2);
}

bool Biquad::is_stable() const {
  // Jury criterion for a degree-2 polynomial z^2 + a1 z + a2.
  return std::abs(a2) < 1.0 && std::abs(a1) < 1.0 + a2;
}

BiquadCascade::BiquadCascade(std::vector<Biquad> sections)
    : sections_(std::move(sections)), state_(sections_.size()) {}

double BiquadCascade::process_sample(double x) {
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    const Biquad& s = sections_[i];
    State& st = state_[i];
    const double y = s.b0 * x + st.z1;
    st.z1 = s.b1 * x - s.a1 * y + st.z2;
    st.z2 = s.b2 * x - s.a2 * y;
    x = y;
  }
  return x;
}

std::vector<double> BiquadCascade::process(std::span<const double> input) {
  std::vector<double> out(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) out[i] = process_sample(input[i]);
  return out;
}

std::vector<double> BiquadCascade::filtfilt(std::span<const double> input) const {
  BiquadCascade forward(sections_);
  std::vector<double> once = forward.process(input);
  std::reverse(once.begin(), once.end());
  BiquadCascade backward(sections_);
  std::vector<double> twice = backward.process(once);
  std::reverse(twice.begin(), twice.end());
  return twice;
}

void BiquadCascade::reset() {
  for (State& st : state_) st = State{};
}

std::complex<double> BiquadCascade::response(double w) const {
  std::complex<double> h{1.0, 0.0};
  for (const Biquad& s : sections_) h *= s.response(w);
  return h;
}

double BiquadCascade::magnitude_at(double frequency_hz, double sample_rate) const {
  require_positive("sample_rate", sample_rate);
  require_in_range("frequency_hz", frequency_hz, 0.0, sample_rate / 2.0);
  const double w = 2.0 * 3.14159265358979323846 * frequency_hz / sample_rate;
  return std::abs(response(w));
}

bool BiquadCascade::is_stable() const {
  return std::all_of(sections_.begin(), sections_.end(),
                     [](const Biquad& s) { return s.is_stable(); });
}

}  // namespace earsonar::dsp
