// Vector types plugged into the templated kernels (src/dsp/kernel_impl.hpp).
//
// Each type models the same static interface:
//
//   using value_type = double|float;       scalar element
//   static constexpr std::size_t kLanes;   element count
//   load / store (unaligned), zero, broadcast, add, sub, mul, negate,
//   dup_even   — a[0],a[0],a[2],a[2],...   (complex: broadcast real parts)
//   dup_odd    — a[1],a[1],a[3],a[3],...   (complex: broadcast imag parts)
//   swap_pairs — a[1],a[0],a[3],a[2],...   (complex: swap re/im)
//   neg_even   — -a[0],a[1],-a[2],a[3],... (complex: negate real lanes)
//   hadd_pairs(a, b) — concatenated pairwise sums: lanes [0, W/2) hold
//                      a[2k]+a[2k+1], lanes [W/2, W) hold b[2k]+b[2k+1]
//                      (complex: |z|^2 reduction of 2W scalars to W, in order)
//
// `Pack<T, W>` is the intrinsic-free twin: a plain array looped per lane.
// Bit-parity across dispatch modes rests on every intrinsic here mapping to
// exactly the per-lane IEEE operation the Pack version performs — permutes
// and sign-flips are exact, and add/sub/mul are correctly-rounded per lane on
// every target — so any Pack<T, W> instantiation matches any W-lane intrinsic
// type bit for bit. sub() is required to equal add(x, negate(y)) exactly;
// IEEE-754 guarantees that identity for every operand including zeros and
// NaN payload propagation on all supported targets.
#pragma once

#include <cstddef>

#if defined(__SSE2__) || defined(_M_X64)
#include <immintrin.h>
#define EARSONAR_SIMD_X86 1
#elif defined(__ARM_NEON) || defined(__aarch64__)
#include <arm_neon.h>
#define EARSONAR_SIMD_NEON 1
#endif

namespace earsonar::dsp::simd {

// ---------------------------------------------------------------------------
// Pack<T, W>: scalar emulation at an arbitrary lane count.
// ---------------------------------------------------------------------------
template <class T, std::size_t W>
struct Pack {
  using value_type = T;
  static constexpr std::size_t kLanes = W;
  T v[W];

  static Pack load(const T* p) {
    Pack r;
    for (std::size_t i = 0; i < W; ++i) r.v[i] = p[i];
    return r;
  }
  static void store(T* p, Pack a) {
    for (std::size_t i = 0; i < W; ++i) p[i] = a.v[i];
  }
  static Pack zero() {
    Pack r;
    for (std::size_t i = 0; i < W; ++i) r.v[i] = T(0);
    return r;
  }
  static Pack broadcast(T x) {
    Pack r;
    for (std::size_t i = 0; i < W; ++i) r.v[i] = x;
    return r;
  }
  static Pack add(Pack a, Pack b) {
    Pack r;
    for (std::size_t i = 0; i < W; ++i) r.v[i] = a.v[i] + b.v[i];
    return r;
  }
  static Pack sub(Pack a, Pack b) {
    // Expressed as add-of-negation so the operation sequence matches the
    // intrinsic builds that synthesize ops this way (see neg_even users).
    return add(a, negate(b));
  }
  static Pack mul(Pack a, Pack b) {
    Pack r;
    for (std::size_t i = 0; i < W; ++i) r.v[i] = a.v[i] * b.v[i];
    return r;
  }
  static Pack negate(Pack a) {
    Pack r;
    for (std::size_t i = 0; i < W; ++i) r.v[i] = -a.v[i];
    return r;
  }
  static Pack dup_even(Pack a) {
    Pack r;
    for (std::size_t i = 0; i < W; i += 2) r.v[i] = r.v[i + 1] = a.v[i];
    return r;
  }
  static Pack dup_odd(Pack a) {
    Pack r;
    for (std::size_t i = 0; i < W; i += 2) r.v[i] = r.v[i + 1] = a.v[i + 1];
    return r;
  }
  static Pack swap_pairs(Pack a) {
    Pack r;
    for (std::size_t i = 0; i < W; i += 2) {
      r.v[i] = a.v[i + 1];
      r.v[i + 1] = a.v[i];
    }
    return r;
  }
  static Pack neg_even(Pack a) {
    Pack r;
    for (std::size_t i = 0; i < W; i += 2) {
      r.v[i] = -a.v[i];
      r.v[i + 1] = a.v[i + 1];
    }
    return r;
  }
  static Pack hadd_pairs(Pack a, Pack b) {
    Pack r;
    for (std::size_t i = 0; i < W / 2; ++i) {
      r.v[i] = a.v[2 * i] + a.v[2 * i + 1];
      r.v[W / 2 + i] = b.v[2 * i] + b.v[2 * i + 1];
    }
    return r;
  }
};

#if defined(EARSONAR_SIMD_X86)

// ---------------------------------------------------------------------------
// SSE2 (baseline on x86-64): 2 doubles / 4 floats.
// ---------------------------------------------------------------------------
struct VecSse2D {
  using value_type = double;
  static constexpr std::size_t kLanes = 2;
  __m128d v;

  static VecSse2D wrap(__m128d x) { return VecSse2D{x}; }
  static VecSse2D load(const double* p) { return wrap(_mm_loadu_pd(p)); }
  static void store(double* p, VecSse2D a) { _mm_storeu_pd(p, a.v); }
  static VecSse2D zero() { return wrap(_mm_setzero_pd()); }
  static VecSse2D broadcast(double x) { return wrap(_mm_set1_pd(x)); }
  static VecSse2D add(VecSse2D a, VecSse2D b) { return wrap(_mm_add_pd(a.v, b.v)); }
  static VecSse2D sub(VecSse2D a, VecSse2D b) { return wrap(_mm_sub_pd(a.v, b.v)); }
  static VecSse2D mul(VecSse2D a, VecSse2D b) { return wrap(_mm_mul_pd(a.v, b.v)); }
  static VecSse2D negate(VecSse2D a) {
    return wrap(_mm_xor_pd(a.v, _mm_set1_pd(-0.0)));
  }
  static VecSse2D dup_even(VecSse2D a) {
    return wrap(_mm_shuffle_pd(a.v, a.v, 0b00));
  }
  static VecSse2D dup_odd(VecSse2D a) {
    return wrap(_mm_shuffle_pd(a.v, a.v, 0b11));
  }
  static VecSse2D swap_pairs(VecSse2D a) {
    return wrap(_mm_shuffle_pd(a.v, a.v, 0b01));
  }
  static VecSse2D neg_even(VecSse2D a) {
    return wrap(_mm_xor_pd(a.v, _mm_set_pd(0.0, -0.0)));
  }
  static VecSse2D hadd_pairs(VecSse2D a, VecSse2D b) {
    return wrap(_mm_add_pd(_mm_unpacklo_pd(a.v, b.v), _mm_unpackhi_pd(a.v, b.v)));
  }
};

struct VecSse2F {
  using value_type = float;
  static constexpr std::size_t kLanes = 4;
  __m128 v;

  static VecSse2F wrap(__m128 x) { return VecSse2F{x}; }
  static VecSse2F load(const float* p) { return wrap(_mm_loadu_ps(p)); }
  static void store(float* p, VecSse2F a) { _mm_storeu_ps(p, a.v); }
  static VecSse2F zero() { return wrap(_mm_setzero_ps()); }
  static VecSse2F broadcast(float x) { return wrap(_mm_set1_ps(x)); }
  static VecSse2F add(VecSse2F a, VecSse2F b) { return wrap(_mm_add_ps(a.v, b.v)); }
  static VecSse2F sub(VecSse2F a, VecSse2F b) { return wrap(_mm_sub_ps(a.v, b.v)); }
  static VecSse2F mul(VecSse2F a, VecSse2F b) { return wrap(_mm_mul_ps(a.v, b.v)); }
  static VecSse2F negate(VecSse2F a) {
    return wrap(_mm_xor_ps(a.v, _mm_set1_ps(-0.0f)));
  }
  static VecSse2F dup_even(VecSse2F a) {
    return wrap(_mm_shuffle_ps(a.v, a.v, _MM_SHUFFLE(2, 2, 0, 0)));
  }
  static VecSse2F dup_odd(VecSse2F a) {
    return wrap(_mm_shuffle_ps(a.v, a.v, _MM_SHUFFLE(3, 3, 1, 1)));
  }
  static VecSse2F swap_pairs(VecSse2F a) {
    return wrap(_mm_shuffle_ps(a.v, a.v, _MM_SHUFFLE(2, 3, 0, 1)));
  }
  static VecSse2F neg_even(VecSse2F a) {
    return wrap(_mm_xor_ps(a.v, _mm_set_ps(0.0f, -0.0f, 0.0f, -0.0f)));
  }
  static VecSse2F hadd_pairs(VecSse2F a, VecSse2F b) {
    // even lanes of both operands, then odd; their sum is already in the
    // required concatenated order a01, a23, b01, b23.
    const __m128 even = _mm_shuffle_ps(a.v, b.v, _MM_SHUFFLE(2, 0, 2, 0));
    const __m128 odd = _mm_shuffle_ps(a.v, b.v, _MM_SHUFFLE(3, 1, 3, 1));
    return wrap(_mm_add_ps(even, odd));
  }
};

#if defined(__AVX2__)

// ---------------------------------------------------------------------------
// AVX2: 4 doubles / 8 floats. Only compiled into the -mavx2 TU.
// ---------------------------------------------------------------------------
struct VecAvx2D {
  using value_type = double;
  static constexpr std::size_t kLanes = 4;
  __m256d v;

  static VecAvx2D wrap(__m256d x) { return VecAvx2D{x}; }
  static VecAvx2D load(const double* p) { return wrap(_mm256_loadu_pd(p)); }
  static void store(double* p, VecAvx2D a) { _mm256_storeu_pd(p, a.v); }
  static VecAvx2D zero() { return wrap(_mm256_setzero_pd()); }
  static VecAvx2D broadcast(double x) { return wrap(_mm256_set1_pd(x)); }
  static VecAvx2D add(VecAvx2D a, VecAvx2D b) { return wrap(_mm256_add_pd(a.v, b.v)); }
  static VecAvx2D sub(VecAvx2D a, VecAvx2D b) { return wrap(_mm256_sub_pd(a.v, b.v)); }
  static VecAvx2D mul(VecAvx2D a, VecAvx2D b) { return wrap(_mm256_mul_pd(a.v, b.v)); }
  static VecAvx2D negate(VecAvx2D a) {
    return wrap(_mm256_xor_pd(a.v, _mm256_set1_pd(-0.0)));
  }
  static VecAvx2D dup_even(VecAvx2D a) { return wrap(_mm256_movedup_pd(a.v)); }
  static VecAvx2D dup_odd(VecAvx2D a) {
    return wrap(_mm256_permute_pd(a.v, 0b1111));
  }
  static VecAvx2D swap_pairs(VecAvx2D a) {
    return wrap(_mm256_permute_pd(a.v, 0b0101));
  }
  static VecAvx2D neg_even(VecAvx2D a) {
    return wrap(_mm256_xor_pd(a.v, _mm256_set_pd(0.0, -0.0, 0.0, -0.0)));
  }
  static VecAvx2D hadd_pairs(VecAvx2D a, VecAvx2D b) {
    // _mm256_hadd_pd works within 128-bit halves: (a01, b01, a23, b23);
    // permute lanes 0,2,1,3 into the required order (a01, a23, b01, b23).
    return wrap(_mm256_permute4x64_pd(_mm256_hadd_pd(a.v, b.v), 0xD8));
  }
};

struct VecAvx2F {
  using value_type = float;
  static constexpr std::size_t kLanes = 8;
  __m256 v;

  static VecAvx2F wrap(__m256 x) { return VecAvx2F{x}; }
  static VecAvx2F load(const float* p) { return wrap(_mm256_loadu_ps(p)); }
  static void store(float* p, VecAvx2F a) { _mm256_storeu_ps(p, a.v); }
  static VecAvx2F zero() { return wrap(_mm256_setzero_ps()); }
  static VecAvx2F broadcast(float x) { return wrap(_mm256_set1_ps(x)); }
  static VecAvx2F add(VecAvx2F a, VecAvx2F b) { return wrap(_mm256_add_ps(a.v, b.v)); }
  static VecAvx2F sub(VecAvx2F a, VecAvx2F b) { return wrap(_mm256_sub_ps(a.v, b.v)); }
  static VecAvx2F mul(VecAvx2F a, VecAvx2F b) { return wrap(_mm256_mul_ps(a.v, b.v)); }
  static VecAvx2F negate(VecAvx2F a) {
    return wrap(_mm256_xor_ps(a.v, _mm256_set1_ps(-0.0f)));
  }
  static VecAvx2F dup_even(VecAvx2F a) { return wrap(_mm256_moveldup_ps(a.v)); }
  static VecAvx2F dup_odd(VecAvx2F a) { return wrap(_mm256_movehdup_ps(a.v)); }
  static VecAvx2F swap_pairs(VecAvx2F a) {
    return wrap(_mm256_permute_ps(a.v, 0xB1));  // 2,3,0,1 per 128-bit half
  }
  static VecAvx2F neg_even(VecAvx2F a) {
    return wrap(_mm256_xor_ps(
        a.v, _mm256_set_ps(0.0f, -0.0f, 0.0f, -0.0f, 0.0f, -0.0f, 0.0f, -0.0f)));
  }
  static VecAvx2F hadd_pairs(VecAvx2F a, VecAvx2F b) {
    // hadd_ps per half: a01,a23,b01,b23 | a45,a67,b45,b67. Viewed as four
    // 64-bit lanes that is (A0, B0, A1, B1); permuting lanes 0,2,1,3 gives
    // the required concatenated order a01,a23,a45,a67,b01,b23,b45,b67.
    const __m256d h = _mm256_castps_pd(_mm256_hadd_ps(a.v, b.v));
    return wrap(_mm256_castpd_ps(_mm256_permute4x64_pd(h, 0xD8)));
  }
};

#endif  // __AVX2__

#elif defined(EARSONAR_SIMD_NEON)

// ---------------------------------------------------------------------------
// NEON (aarch64): 2 doubles / 4 floats.
// ---------------------------------------------------------------------------
struct VecNeonD {
  using value_type = double;
  static constexpr std::size_t kLanes = 2;
  float64x2_t v;

  static VecNeonD wrap(float64x2_t x) { return VecNeonD{x}; }
  static VecNeonD load(const double* p) { return wrap(vld1q_f64(p)); }
  static void store(double* p, VecNeonD a) { vst1q_f64(p, a.v); }
  static VecNeonD zero() { return wrap(vdupq_n_f64(0.0)); }
  static VecNeonD broadcast(double x) { return wrap(vdupq_n_f64(x)); }
  static VecNeonD add(VecNeonD a, VecNeonD b) { return wrap(vaddq_f64(a.v, b.v)); }
  static VecNeonD sub(VecNeonD a, VecNeonD b) { return wrap(vsubq_f64(a.v, b.v)); }
  static VecNeonD mul(VecNeonD a, VecNeonD b) { return wrap(vmulq_f64(a.v, b.v)); }
  static VecNeonD negate(VecNeonD a) { return wrap(vnegq_f64(a.v)); }
  static VecNeonD dup_even(VecNeonD a) { return wrap(vdupq_laneq_f64(a.v, 0)); }
  static VecNeonD dup_odd(VecNeonD a) { return wrap(vdupq_laneq_f64(a.v, 1)); }
  static VecNeonD swap_pairs(VecNeonD a) { return wrap(vextq_f64(a.v, a.v, 1)); }
  static VecNeonD neg_even(VecNeonD a) {
    const uint64x2_t mask = {0x8000000000000000ULL, 0};
    return wrap(vreinterpretq_f64_u64(
        veorq_u64(vreinterpretq_u64_f64(a.v), mask)));
  }
  static VecNeonD hadd_pairs(VecNeonD a, VecNeonD b) {
    return wrap(vpaddq_f64(a.v, b.v));
  }
};

struct VecNeonF {
  using value_type = float;
  static constexpr std::size_t kLanes = 4;
  float32x4_t v;

  static VecNeonF wrap(float32x4_t x) { return VecNeonF{x}; }
  static VecNeonF load(const float* p) { return wrap(vld1q_f32(p)); }
  static void store(float* p, VecNeonF a) { vst1q_f32(p, a.v); }
  static VecNeonF zero() { return wrap(vdupq_n_f32(0.0f)); }
  static VecNeonF broadcast(float x) { return wrap(vdupq_n_f32(x)); }
  static VecNeonF add(VecNeonF a, VecNeonF b) { return wrap(vaddq_f32(a.v, b.v)); }
  static VecNeonF sub(VecNeonF a, VecNeonF b) { return wrap(vsubq_f32(a.v, b.v)); }
  static VecNeonF mul(VecNeonF a, VecNeonF b) { return wrap(vmulq_f32(a.v, b.v)); }
  static VecNeonF negate(VecNeonF a) { return wrap(vnegq_f32(a.v)); }
  static VecNeonF dup_even(VecNeonF a) { return wrap(vtrn1q_f32(a.v, a.v)); }
  static VecNeonF dup_odd(VecNeonF a) { return wrap(vtrn2q_f32(a.v, a.v)); }
  static VecNeonF swap_pairs(VecNeonF a) { return wrap(vrev64q_f32(a.v)); }
  static VecNeonF neg_even(VecNeonF a) {
    const uint32x4_t mask = {0x80000000U, 0, 0x80000000U, 0};
    return wrap(vreinterpretq_f32_u32(
        veorq_u32(vreinterpretq_u32_f32(a.v), mask)));
  }
  static VecNeonF hadd_pairs(VecNeonF a, VecNeonF b) {
    return wrap(vpaddq_f32(a.v, b.v));  // a01, a23, b01, b23 — already in order
  }
};

#endif  // arch

}  // namespace earsonar::dsp::simd
