// Portable SIMD kernel dispatch for the hot DSP inner loops.
//
// Every vectorizable kernel (FFT butterfly stages, the complex-bin power
// reduction, elementwise window multiplies, the mel filterbank dot product,
// and the interleaved multi-channel biquad recurrence) exists in two
// interchangeable builds of the *same* templated source
// (src/dsp/kernel_impl.hpp):
//
//   * a native build using the widest instruction set the translation unit
//     was compiled for — AVX2 (4 doubles / 8 floats, compiled into its own
//     TU with -mavx2 and selected at runtime behind a cpuid check), SSE2
//     (2 / 4) or NEON (2 / 4) from the baseline flags;
//   * a scalar "pack" build emulating vectors of the *same* lane count with
//     plain arrays, compiled without intrinsics.
//
// Because both builds instantiate identical code over op sets whose per-lane
// arithmetic is the same IEEE operation sequence (subtraction is expressed as
// add(x, negate(y)) in both, reductions combine lanes in one fixed order),
// double-precision results are bit-identical across the two dispatch modes —
// the property the `simd`-labeled parity tests pin. The whole earsonar_dsp
// target is compiled with -ffp-contract=off so a native-arch build cannot
// contract mul+add into FMA in one mode only.
//
// Selection: EARSONAR_SIMD=scalar forces the pack build (parity and
// sanitizer runs); EARSONAR_SIMD=native or unset picks the widest level the
// CPU supports. The choice is made once per process.
#pragma once

#include <cstddef>

namespace earsonar::dsp::simd {

enum class Level {
  kScalar,  ///< pack emulation at the native lane count (no intrinsics)
  kNative,  ///< widest instruction set this build + CPU supports
};

/// One complete set of kernel entry points at a fixed lane geometry.
/// Buffers are unaligned; complex data is interleaved (re, im) pairs.
struct KernelSet {
  const char* name;     ///< "avx2", "sse2", "neon", "pack2", "pack4"
  std::size_t lanes_d;  ///< doubles per vector (complex doubles = lanes_d/2)
  std::size_t lanes_f;  ///< floats per vector

  /// Radix-2 DIT butterfly stages over n complex values already in
  /// bit-reversed order. `twiddles` uses the FftPlan stage layout: the stage
  /// with half-length h keeps its h twiddles at complex offset [h, 2h).
  void (*butterflies_d)(double* data, const double* twiddles, std::size_t n);
  void (*butterflies_f)(float* data, const float* twiddles, std::size_t n);

  /// butterflies_d over four transforms at once in a lane-major layout:
  /// complex index k of transform l lives at data[8k + l] (real part) and
  /// data[8k + 4 + l] (imaginary part). Each transform runs the identical
  /// per-element arithmetic sequence as butterflies_d, so its bins match a
  /// single transform bit for bit (same twiddle table and stage layout).
  void (*butterflies_x4_d)(double* data, const double* twiddles, std::size_t n);

  /// out[k] = (bins[2k]^2 + bins[2k+1]^2) * scale for k in [0, m).
  void (*power_bins_d)(const double* bins, double* out, std::size_t m, double scale);
  void (*power_bins_f)(const float* bins, float* out, std::size_t m, float scale);

  /// dst[i] = a[i] * b[i] (dst may alias a or b).
  void (*mul_d)(double* dst, const double* a, const double* b, std::size_t n);

  /// Dot product with a lanes-wide accumulator tree (fixed combine order).
  double (*dot_d)(const double* a, const double* b, std::size_t n);
  float (*dot_f)(const float* a, const float* b, std::size_t n);

  /// One transposed-DF2 biquad section over `frames` frames of `lanes_d`
  /// interleaved channels, in place. coef = {b0, b1, b2, a1, a2}; z1/z2 are
  /// lanes_d-wide delay lines, updated on return.
  void (*biquad_interleaved_d)(double* frames, std::size_t frame_count,
                               const double* coef, double* z1, double* z2);
};

/// The dispatch mode chosen from EARSONAR_SIMD (read once per process;
/// unset or "native" -> kNative, "scalar" -> kScalar, anything else throws).
Level active_level();

/// Kernels for an explicit level — parity tests compare the two directly.
const KernelSet& kernel_set(Level level);

/// Kernels for active_level(). Hot paths call this through a static ref.
const KernelSet& active();

/// Name of the native instruction set ("avx2" / "sse2" / "neon" / "pack2"),
/// independent of EARSONAR_SIMD. Reported in bench context and logs.
const char* native_arch();

/// True when EARSONAR_PRECISION=float32 (read once per process) — the default
/// value of the opt-in float32 kernel switches (SpectrumConfig::
/// float32_kernels). Any other value, or unset, keeps exact float64.
bool float32_requested();

}  // namespace earsonar::dsp::simd
