// Power-spectral-density estimation and band utilities. The absorption
// analysis stage (paper §IV-C1) turns the segmented eardrum echo into a PSD
// and reads the acoustic dip near 18 kHz out of it.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dsp/window.hpp"

namespace earsonar::dsp {

/// A sampled spectrum: psd[i] is the power density at frequency_hz[i].
struct Spectrum {
  std::vector<double> frequency_hz;
  std::vector<double> psd;

  [[nodiscard]] std::size_t size() const { return psd.size(); }
};

/// Single-window periodogram PSD of a real signal (optionally windowed),
/// normalized so white noise of variance s^2 has density s^2 / fs.
Spectrum periodogram(std::span<const double> signal, double sample_rate,
                     WindowType window = WindowType::kHann);

/// Welch-averaged PSD: `segment` samples per segment, 50% overlap.
Spectrum welch_psd(std::span<const double> signal, double sample_rate,
                   std::size_t segment, WindowType window = WindowType::kHann);

/// Restricts a spectrum to [low_hz, high_hz] (inclusive).
Spectrum band_slice(const Spectrum& spectrum, double low_hz, double high_hz);

/// Total power in [low_hz, high_hz] (trapezoidal integration of the PSD).
double band_power(const Spectrum& spectrum, double low_hz, double high_hz);

/// Peak-normalizes the PSD to a maximum of 1 (no-op on all-zero input).
Spectrum normalize_peak(const Spectrum& spectrum);

/// Resamples a spectrum onto `bins` uniformly spaced frequencies spanning
/// [low_hz, high_hz] using linear interpolation. Aligns spectra from windows
/// of different lengths onto a common grid for correlation/feature use.
Spectrum resample_spectrum(const Spectrum& spectrum, double low_hz, double high_hz,
                           std::size_t bins);

/// Location (Hz) and depth of the deepest local minimum of the PSD within
/// [low_hz, high_hz]. Depth is measured relative to the band's maximum, in
/// linear power ratio (0 = no dip, ->1 = deep notch).
struct SpectralDip {
  double frequency_hz = 0.0;
  double depth = 0.0;
};
SpectralDip find_dip(const Spectrum& spectrum, double low_hz, double high_hz);

/// Spectral centroid (power-weighted mean frequency) over the whole spectrum.
double spectral_centroid(const Spectrum& spectrum);

/// Pearson correlation between the PSDs of two equal-grid spectra.
double spectrum_correlation(const Spectrum& a, const Spectrum& b);

}  // namespace earsonar::dsp
