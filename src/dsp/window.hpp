// Window functions. The paper shapes each chirp with a Hanning window to
// raise the peak-to-sidelobe ratio (§IV-B1); the spectrum code also uses
// Hamming/Blackman for Welch averaging and tests.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace earsonar::dsp {

enum class WindowType { kRectangular, kHann, kHamming, kBlackman, kBlackmanHarris, kGaussian };

/// Samples an N-point symmetric window of the given type.
/// `gaussian_sigma` only applies to kGaussian (relative sigma, default 0.4).
std::vector<double> make_window(WindowType type, std::size_t length,
                                double gaussian_sigma = 0.4);

/// N-point Hann window (the paper's "Hanning").
std::vector<double> hann_window(std::size_t length);

/// N-point Hamming window.
std::vector<double> hamming_window(std::size_t length);

/// N-point Blackman window.
std::vector<double> blackman_window(std::size_t length);

/// Multiplies `signal` by `window` element-wise in place (sizes must match).
void apply_window_inplace(std::span<double> signal, std::span<const double> window);

/// Returns signal .* window (sizes must match).
std::vector<double> apply_window(std::span<const double> signal,
                                 std::span<const double> window);

/// Sum of window samples (amplitude normalization term).
double window_sum(std::span<const double> window);

/// Sum of squared window samples (power normalization term for PSDs).
double window_power(std::span<const double> window);

}  // namespace earsonar::dsp
