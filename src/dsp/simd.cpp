#include "dsp/simd.hpp"

#include <cstdlib>
#include <cstring>

#include "common/error.hpp"
#include "dsp/kernel_impl.hpp"

namespace earsonar::dsp::simd {

namespace {

const KernelSet& resolve_native() {
#if defined(EARSONAR_SIMD_X86) && defined(__GNUC__)
  if (const KernelSet* avx2 = avx2_set(); avx2 && __builtin_cpu_supports("avx2"))
    return *avx2;
#endif
  return base_set();
}

/// The Pack set at the native lane geometry, so scalar mode exercises the
/// exact same templated code at the same width (bit-parity by construction).
const KernelSet& resolve_scalar_twin(const KernelSet& native) {
  return native.lanes_d == 4 ? pack_set_w4() : pack_set_w2();
}

}  // namespace

Level active_level() {
  static const Level level = [] {
    const char* env = std::getenv("EARSONAR_SIMD");
    if (env == nullptr || *env == '\0' || std::strcmp(env, "native") == 0)
      return Level::kNative;
    if (std::strcmp(env, "scalar") == 0) return Level::kScalar;
    fail("EARSONAR_SIMD must be 'scalar' or 'native'");
  }();
  return level;
}

const KernelSet& kernel_set(Level level) {
  static const KernelSet& native = resolve_native();
  static const KernelSet& scalar = resolve_scalar_twin(native);
  return level == Level::kNative ? native : scalar;
}

const KernelSet& active() {
  static const KernelSet& set = kernel_set(active_level());
  return set;
}

const char* native_arch() { return kernel_set(Level::kNative).name; }

bool float32_requested() {
  static const bool requested = [] {
    const char* env = std::getenv("EARSONAR_PRECISION");
    return env != nullptr && std::strcmp(env, "float32") == 0;
  }();
  return requested;
}

}  // namespace earsonar::dsp::simd
