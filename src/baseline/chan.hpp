// Baseline: the prior acoustic MEE detector in the style of Chan et al.,
// "Detecting middle ear fluid using smartphones" (Science Translational
// Medicine 2019) — the "previous method" the paper beats by ~8%.
//
// Chan et al. chirp into the ear and classify the *whole received signal's*
// spectral dip shape with a logistic classifier. Crucially there is no
// fine-grained echo segmentation and no MFCC/selection stage (the paper's
// §I critique: "they did not perform fine-grained segmentation and analysis
// on the signal, so the detection accuracy did not exceed 85%").
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "audio/chirp.hpp"
#include "audio/waveform.hpp"
#include "ml/logistic.hpp"
#include "ml/scaler.hpp"

namespace earsonar::baseline {

struct ChanConfig {
  audio::FmcwConfig chirp;        ///< probe design; its spectrum is the
                                  ///< transmit reference the PSD is divided by
  double band_low_hz = 16000.0;
  double band_high_hz = 20000.0;
  std::size_t coarse_bands = 8;   ///< spectral resolution of the features
  std::size_t welch_segment = 256;
  std::size_t classes = 4;
  ml::LogisticConfig logistic{};
};

class ChanDetector {
 public:
  explicit ChanDetector(ChanConfig config = {});

  /// Coarse spectral features of the unsegmented recording: log powers of
  /// `coarse_bands` equal sub-bands of the whole-signal Welch PSD, plus dip
  /// frequency and depth. Dimension = coarse_bands + 2.
  [[nodiscard]] std::vector<double> extract_features(
      const audio::Waveform& recording) const;

  /// Supervised training on labeled recordings.
  void fit(const std::vector<audio::Waveform>& recordings,
           const std::vector<std::size_t>& labels);

  /// Training on precomputed features.
  void fit_features(const ml::Matrix& features, const std::vector<std::size_t>& labels);

  [[nodiscard]] std::size_t predict(const audio::Waveform& recording) const;
  [[nodiscard]] std::size_t predict_features(const std::vector<double>& features) const;

  [[nodiscard]] bool fitted() const { return model_.fitted(); }
  [[nodiscard]] std::size_t feature_dimension() const { return config_.coarse_bands + 2; }
  [[nodiscard]] const ChanConfig& config() const { return config_; }

 private:
  ChanConfig config_;
  std::vector<double> reference_band_psd_;  ///< template-train Welch band PSD
  std::vector<double> reference_freqs_;
  ml::StandardScaler scaler_;
  ml::LogisticRegression model_;
};

}  // namespace earsonar::baseline
