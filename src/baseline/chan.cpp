#include "baseline/chan.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "dsp/spectrum.hpp"

namespace earsonar::baseline {

ChanDetector::ChanDetector(ChanConfig config)
    : config_(config), model_([&] {
        ml::LogisticConfig lc = config.logistic;
        lc.classes = config.classes;
        return lc;
      }()) {
  require(config_.band_low_hz > 0.0 && config_.band_low_hz < config_.band_high_hz,
          "ChanConfig: need 0 < low < high");
  require(config_.coarse_bands >= 2, "ChanConfig: need >= 2 coarse bands");
  require(config_.welch_segment >= 16, "ChanConfig: welch_segment too small");

  // Transmit reference: the Welch band PSD of a clean chirp train with the
  // recording's duty cycle. Dividing by it turns the received PSD into the
  // channel response the dip features read.
  const audio::Waveform tmpl = audio::make_chirp_train(config_.chirp, 8);
  const dsp::Spectrum psd =
      dsp::welch_psd(tmpl.view(), config_.chirp.sample_rate, config_.welch_segment);
  const dsp::Spectrum band =
      dsp::band_slice(psd, config_.band_low_hz, config_.band_high_hz);
  require(band.size() >= config_.coarse_bands, "ChanConfig: band too narrow");
  reference_band_psd_ = band.psd;
  reference_freqs_ = band.frequency_hz;
  double peak = 0.0;
  for (double v : reference_band_psd_) peak = std::max(peak, v);
  require(peak > 0.0, "ChanDetector: silent reference");
  for (double& v : reference_band_psd_) v = std::max(v, 1e-4 * peak);
}

std::vector<double> ChanDetector::extract_features(
    const audio::Waveform& recording) const {
  require_nonempty("ChanDetector recording", recording.size());
  require(recording.size() >= config_.welch_segment,
          "ChanDetector: recording shorter than a Welch segment");

  // Whole-signal PSD — direct leak, canal multipath, drum echo, and the
  // inter-chirp noise floor all mixed, which is exactly the baseline's
  // weakness: no event detection, no echo segmentation.
  const dsp::Spectrum psd =
      dsp::welch_psd(recording.view(), recording.sample_rate(), config_.welch_segment);
  dsp::Spectrum band = dsp::band_slice(psd, config_.band_low_hz, config_.band_high_hz);
  require(band.size() == reference_band_psd_.size(),
          "ChanDetector: recording sample rate does not match the probe design");
  for (std::size_t i = 0; i < band.size(); ++i) band.psd[i] /= reference_band_psd_[i];


  std::vector<double> features;
  features.reserve(feature_dimension());
  for (std::size_t b = 0; b < config_.coarse_bands; ++b) {
    const std::size_t lo = b * band.size() / config_.coarse_bands;
    const std::size_t hi =
        std::max(lo + 1, (b + 1) * band.size() / config_.coarse_bands);
    double acc = 0.0;
    for (std::size_t i = lo; i < hi && i < band.size(); ++i) acc += band.psd[i];
    features.push_back(std::log(std::max(acc, 1e-12)));
  }

  const dsp::SpectralDip dip =
      dsp::find_dip(band, config_.band_low_hz, config_.band_high_hz);
  const double span = config_.band_high_hz - config_.band_low_hz;
  features.push_back(dip.frequency_hz > 0.0
                         ? (dip.frequency_hz - config_.band_low_hz) / span
                         : 0.5);
  features.push_back(dip.depth);
  return features;
}

void ChanDetector::fit(const std::vector<audio::Waveform>& recordings,
                       const std::vector<std::size_t>& labels) {
  require(recordings.size() == labels.size(), "ChanDetector::fit: size mismatch");
  ml::Matrix features;
  features.reserve(recordings.size());
  for (const audio::Waveform& rec : recordings) features.push_back(extract_features(rec));
  fit_features(features, labels);
}

void ChanDetector::fit_features(const ml::Matrix& features,
                                const std::vector<std::size_t>& labels) {
  scaler_.fit(features);
  model_.fit(scaler_.transform(features), labels);
}

std::size_t ChanDetector::predict(const audio::Waveform& recording) const {
  return predict_features(extract_features(recording));
}

std::size_t ChanDetector::predict_features(const std::vector<double>& features) const {
  require(fitted(), "ChanDetector: predict before fit");
  return model_.predict(scaler_.transform(features));
}

}  // namespace earsonar::baseline
