#include "common/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace earsonar {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, std::string_view message) {
  if (level < g_level.load() || level == LogLevel::kOff) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << "[earsonar " << level_name(level) << "] " << message << '\n';
}

}  // namespace earsonar
