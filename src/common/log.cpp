#include "common/log.hpp"

#include <atomic>
#include <cctype>
#include <iostream>
#include <mutex>
#include <utility>

namespace earsonar {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;
LogSink g_sink;  // empty = stderr default; guarded by g_mutex

const char* banner_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

std::string lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

std::optional<LogLevel> parse_log_level(std::string_view name) {
  const std::string n = lower(name);
  if (n == "debug") return LogLevel::kDebug;
  if (n == "info") return LogLevel::kInfo;
  if (n == "warn" || n == "warning") return LogLevel::kWarn;
  if (n == "error") return LogLevel::kError;
  if (n == "off" || n == "none") return LogLevel::kOff;
  return std::nullopt;
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

void set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_sink = std::move(sink);
}

void log_message(LogLevel level, std::string_view message) {
  if (level < g_level.load() || level == LogLevel::kOff) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_sink) {
    g_sink(level, message);
    return;
  }
  std::cerr << "[earsonar " << banner_name(level) << "] " << message << '\n';
}

}  // namespace earsonar
