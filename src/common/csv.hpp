// Minimal CSV writer used by benches to dump reproducible result series.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace earsonar {

/// Streams rows of mixed string/number cells to a CSV file. RFC-4180 style
/// quoting: cells containing commas, quotes, or newlines are quoted and inner
/// quotes doubled.
class CsvWriter {
 public:
  /// Opens (truncates) `path`; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  /// Writes a header row.
  void header(const std::vector<std::string>& names);

  /// Writes one row of already-formatted cells.
  void row(const std::vector<std::string>& cells);

  /// Convenience: label followed by numeric columns (formatted %.6g).
  void row(const std::string& label, const std::vector<double>& values);

  /// Formats a double the way `row` does; exposed for tests.
  static std::string format(double value);

  /// Quotes a cell per RFC-4180 when needed; exposed for tests.
  static std::string escape(const std::string& cell);

 private:
  void write_cells(const std::vector<std::string>& cells);
  std::ofstream out_;
};

}  // namespace earsonar
