#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace earsonar {

AsciiTable::AsciiTable(std::vector<std::string> header) : header_(std::move(header)) {
  require_nonempty("AsciiTable header", header_.size());
}

void AsciiTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void AsciiTable::add_row(const std::string& label, const std::vector<double>& values,
                         int decimals) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(format(v, decimals));
  add_row(std::move(cells));
}

std::string AsciiTable::format(double value, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

void AsciiTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };

  print_row(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << std::string(widths[c] + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string AsciiTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace earsonar
