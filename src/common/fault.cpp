#include "common/fault.hpp"

#include <cstdlib>
#include <map>
#include <mutex>
#include <stdexcept>

namespace earsonar::fault {

namespace detail {
std::atomic<std::uint32_t> g_armed{0};
}  // namespace detail

namespace {

struct Entry {
  Policy policy;
  std::uint64_t calls = 0;
  std::uint64_t fires = 0;
  std::uint64_t rng_state = 0;  ///< xorshift64* state for kProbability
};

// xorshift64*: tiny, seedable, plenty for fire/no-fire decisions. Not the
// repo-wide Rng on purpose — the registry must stay dependency-free so any
// layer (dsp, audio, serve) can host a fault point without a cycle.
double next_uniform(std::uint64_t& state) {
  std::uint64_t x = state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  state = x;
  return static_cast<double>((x * 0x2545f4914f6cdd1dULL) >> 11) * 0x1.0p-53;
}

struct State {
  mutable std::mutex mutex;
  std::map<std::string, Entry, std::less<>> points;
  std::atomic<std::uint64_t> injected_total{0};
};

State& state() {
  static State s;
  return s;
}

std::invalid_argument bad_spec(std::string_view spec) {
  return std::invalid_argument("fault: malformed policy spec '" + std::string(spec) +
                               "' (expect always | nth:N | every:K | prob:P[:SEED])");
}

std::uint64_t parse_count(std::string_view text, std::string_view spec) {
  try {
    std::size_t used = 0;
    const std::uint64_t value = std::stoull(std::string(text), &used);
    if (used != text.size() || value == 0) throw bad_spec(spec);
    return value;
  } catch (const std::invalid_argument&) {
    throw bad_spec(spec);
  } catch (const std::out_of_range&) {
    throw bad_spec(spec);
  }
}

}  // namespace

Policy parse_policy(std::string_view spec) {
  Policy policy;
  if (spec == "always") {
    policy.mode = Policy::Mode::kAlways;
    return policy;
  }
  const std::size_t colon = spec.find(':');
  const std::string_view head = spec.substr(0, colon);
  if (colon == std::string_view::npos || colon + 1 >= spec.size()) throw bad_spec(spec);
  std::string_view rest = spec.substr(colon + 1);
  if (head == "nth") {
    policy.mode = Policy::Mode::kNth;
    policy.n = parse_count(rest, spec);
  } else if (head == "every") {
    policy.mode = Policy::Mode::kEveryK;
    policy.n = parse_count(rest, spec);
  } else if (head == "prob") {
    policy.mode = Policy::Mode::kProbability;
    const std::size_t colon2 = rest.find(':');
    const std::string_view prob_text = rest.substr(0, colon2);
    try {
      std::size_t used = 0;
      policy.probability = std::stod(std::string(prob_text), &used);
      if (used != prob_text.size()) throw bad_spec(spec);
    } catch (const std::invalid_argument&) {
      throw bad_spec(spec);
    } catch (const std::out_of_range&) {
      throw bad_spec(spec);
    }
    if (!(policy.probability >= 0.0 && policy.probability <= 1.0)) throw bad_spec(spec);
    if (colon2 != std::string_view::npos)
      policy.seed = parse_count(rest.substr(colon2 + 1), spec);
  } else {
    throw bad_spec(spec);
  }
  return policy;
}

Registry::Registry() {
  if (const char* env = std::getenv("EARSONAR_FAULTS"); env != nullptr && *env != '\0')
    arm_spec(env);
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

namespace {
// point()'s fast path never touches instance() while g_armed is zero — which
// is exactly the state EARSONAR_FAULTS is supposed to change. Force the
// registry (and with it the env parse) into existence at program start so
// env-armed points are live before any fault point is reached.
[[maybe_unused]] Registry& g_env_bootstrap = Registry::instance();
}  // namespace

void Registry::arm(std::string name, Policy policy) {
  if (name.empty()) throw std::invalid_argument("fault: empty point name");
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  Entry entry;
  entry.policy = policy;
  // Seed the per-point RNG so prob sequences are reproducible per arm().
  entry.rng_state = policy.seed != 0 ? policy.seed : 0x9e3779b97f4a7c15ULL;
  const bool inserted = s.points.insert_or_assign(std::move(name), entry).second;
  if (inserted) detail::g_armed.fetch_add(1, std::memory_order_relaxed);
}

void Registry::arm_spec(std::string_view spec) {
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find_first_of(";,", start);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view item = spec.substr(start, end - start);
    start = end + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos || eq == 0)
      throw std::invalid_argument("fault: malformed spec entry '" + std::string(item) +
                                  "' (expect point=policy)");
    arm(std::string(item.substr(0, eq)), parse_policy(item.substr(eq + 1)));
    if (end == spec.size()) break;
  }
}

void Registry::disarm(std::string_view name) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  if (s.points.erase(std::string(name)) > 0)
    detail::g_armed.fetch_sub(1, std::memory_order_relaxed);
}

void Registry::disarm_all() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  if (!s.points.empty())
    detail::g_armed.fetch_sub(static_cast<std::uint32_t>(s.points.size()),
                              std::memory_order_relaxed);
  s.points.clear();
}

bool Registry::fire(std::string_view name) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.points.find(name);
  if (it == s.points.end()) return false;
  Entry& entry = it->second;
  ++entry.calls;
  bool fires = false;
  switch (entry.policy.mode) {
    case Policy::Mode::kAlways:
      fires = true;
      break;
    case Policy::Mode::kNth:
      fires = entry.calls == entry.policy.n;
      break;
    case Policy::Mode::kEveryK:
      fires = entry.calls % entry.policy.n == 0;
      break;
    case Policy::Mode::kProbability:
      fires = next_uniform(entry.rng_state) < entry.policy.probability;
      break;
  }
  if (fires) {
    ++entry.fires;
    s.injected_total.fetch_add(1, std::memory_order_relaxed);
  }
  return fires;
}

std::uint64_t Registry::armed_count() const {
  return detail::g_armed.load(std::memory_order_relaxed);
}

std::uint64_t Registry::injected_total() const {
  return state().injected_total.load(std::memory_order_relaxed);
}

std::vector<PointStats> Registry::stats() const {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  std::vector<PointStats> out;
  out.reserve(s.points.size());
  for (const auto& [name, entry] : s.points)
    out.push_back({name, entry.calls, entry.fires});
  return out;
}

}  // namespace earsonar::fault
