// Physical constants and unit conversions used across the acoustic stack.
#pragma once

#include <cstddef>

namespace earsonar {

/// Speed of sound in air at ~20 degC, m/s. The ear canal is body temperature,
/// but the paper's distance arithmetic (0.5 ms chirp covers echoes within
/// 10 cm) uses the room-temperature figure, so we match it.
inline constexpr double kSpeedOfSoundAir = 343.0;

/// Speed of sound in water-like effusion fluid, m/s.
inline constexpr double kSpeedOfSoundWater = 1482.0;

/// Density of air at sea level, kg/m^3.
inline constexpr double kAirDensity = 1.204;

/// Density of water, kg/m^3 (serous effusion is close to this).
inline constexpr double kWaterDensity = 998.0;

/// Reference sound pressure for dB SPL, Pa.
inline constexpr double kReferencePressurePa = 20e-6;

/// Converts a linear amplitude ratio to decibels.
double amplitude_to_db(double amplitude_ratio);

/// Converts decibels to a linear amplitude ratio.
double db_to_amplitude(double db);

/// Converts a power ratio to decibels.
double power_to_db(double power_ratio);

/// Converts decibels to a power ratio.
double db_to_power(double db);

/// RMS pressure (Pa) of a tone at the given sound pressure level.
double spl_to_pressure_pa(double spl_db);

/// Sound pressure level (dB) of the given RMS pressure.
double pressure_pa_to_spl(double pressure_pa);

/// Round-trip echo delay in seconds for a reflector `distance_m` away.
double echo_delay_seconds(double distance_m, double speed = kSpeedOfSoundAir);

/// Round-trip echo delay in whole samples (nearest) at `sample_rate` Hz.
std::size_t echo_delay_samples(double distance_m, double sample_rate,
                               double speed = kSpeedOfSoundAir);

/// One-way distance (m) corresponding to a round-trip delay of `samples`.
double samples_to_distance_m(double samples, double sample_rate,
                             double speed = kSpeedOfSoundAir);

/// Characteristic acoustic impedance rho*c (Pa*s/m = rayl).
double characteristic_impedance(double density_kg_m3, double sound_speed_m_s);

}  // namespace earsonar
