// Request deadlines and cooperative cancellation.
//
// A serving engine must be able to give up on work whose caller has already
// timed out: finishing a 150 ms analysis for a request that was shed upstream
// burns a worker for nothing. A CancelToken carries an optional absolute
// deadline plus an optional shared cancel flag; long-running code checks it
// at stage boundaries (EarSonar::analyze between pipeline stages, the serving
// engine between ingestion chunks) and aborts with CancelledError — a
// std::runtime_error whose message starts with the grep-able prefix
// "deadline_exceeded" — when it has expired.
//
// Tokens are cheap to copy (a time_point and a shared_ptr) and expired() is
// lock-free, so checking one per pipeline stage costs a clock read. A
// default-constructed token never expires, which keeps every existing call
// path unchanged.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string_view>

namespace earsonar {

/// Thrown when a CancelToken check fails. Message format:
/// "deadline_exceeded: <stage>".
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(std::string_view stage)
      : std::runtime_error("deadline_exceeded: " + std::string(stage)) {}
};

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// Never expires; the default for every call path that predates deadlines.
  CancelToken() = default;

  /// A token that expires at an absolute time point.
  static CancelToken with_deadline(Clock::time_point deadline) {
    CancelToken token;
    token.deadline_ = deadline;
    return token;
  }

  /// A token that expires `timeout_ms` from now.
  static CancelToken after_ms(double timeout_ms) {
    return with_deadline(Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                            std::chrono::duration<double, std::milli>(
                                                timeout_ms)));
  }

  /// A token that expires when `cancel()` is called on it (or on a copy).
  static CancelToken cancellable() {
    CancelToken token;
    token.flag_ = std::make_shared<std::atomic<bool>>(false);
    return token;
  }

  /// Flips the shared cancel flag; no-op on tokens without one.
  void cancel() const {
    if (flag_) flag_->store(true, std::memory_order_relaxed);
  }

  [[nodiscard]] bool expired() const {
    if (flag_ && flag_->load(std::memory_order_relaxed)) return true;
    return deadline_.has_value() && Clock::now() >= *deadline_;
  }

  /// Throws CancelledError("deadline_exceeded: <stage>") when expired.
  void check(std::string_view stage) const {
    if (expired()) throw CancelledError(stage);
  }

  [[nodiscard]] std::optional<Clock::time_point> deadline() const { return deadline_; }

 private:
  std::optional<Clock::time_point> deadline_;
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace earsonar
