// Descriptive statistics over contiguous double sequences.
//
// These are the statistical features the paper extracts from the echo power
// spectrum (mean, standard deviation, min/max, skewness, kurtosis) plus the
// correlation and percentile helpers the evaluation figures need.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace earsonar {

/// Arithmetic mean. Requires a non-empty input.
double mean(std::span<const double> xs);

/// Population variance (divides by N). Requires a non-empty input.
double variance(std::span<const double> xs);

/// Population standard deviation.
double stddev(std::span<const double> xs);

/// Smallest element. Requires a non-empty input.
double min_value(std::span<const double> xs);

/// Largest element. Requires a non-empty input.
double max_value(std::span<const double> xs);

/// Fisher skewness (third standardized moment); 0 for constant input.
double skewness(std::span<const double> xs);

/// Excess kurtosis (fourth standardized moment minus 3); 0 for constant input.
double kurtosis_excess(std::span<const double> xs);

/// Root mean square.
double rms(std::span<const double> xs);

/// Sum of squared samples (signal energy).
double energy(std::span<const double> xs);

/// Median via partial sort. Requires a non-empty input.
double median(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100]. Requires non-empty input.
double percentile(std::span<const double> xs, double p);

/// Pearson correlation coefficient; inputs must have equal, non-zero length.
/// Returns 0 when either input is constant (correlation undefined).
double pearson_correlation(std::span<const double> xs, std::span<const double> ys);

/// All the summary statistics the feature extractor consumes, in one pass.
struct SummaryStats {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double skewness = 0.0;
  double kurtosis_excess = 0.0;
};

/// Computes SummaryStats over a non-empty sequence.
SummaryStats summarize(std::span<const double> xs);

/// argmax index. Requires a non-empty input.
std::size_t argmax(std::span<const double> xs);

/// argmin index. Requires a non-empty input.
std::size_t argmin(std::span<const double> xs);

}  // namespace earsonar
