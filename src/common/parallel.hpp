// Deterministic data-parallel helpers.
//
// parallel_for(count, body) runs body(i) for i in [0, count) on a shared
// joinable thread pool. Work is handed out by an atomic index, so the
// *execution* order is nondeterministic — callers make the *result*
// deterministic by writing each index's output into its own pre-sized slot
// and reducing serially afterwards. Every batch stage in this repo
// (EarSonar::fit, cohort generation, cross-validation folds) follows that
// pattern, which is why their outputs are bit-identical at any thread count.
//
// Thread count resolution, highest priority first:
//   1. the `threads` argument when non-zero,
//   2. set_parallel_thread_count() when non-zero,
//   3. the EARSONAR_THREADS environment variable when set and positive,
//   4. std::thread::hardware_concurrency().
// A resolved count of 1 (or count <= 1 items) runs inline with no pool.
// Nested parallel_for calls from worker threads also degrade to inline
// execution rather than deadlocking the pool.
#pragma once

#include <cstddef>
#include <functional>

namespace earsonar {

/// Global override for the worker count (0 = defer to env/hardware).
void set_parallel_thread_count(std::size_t threads);

/// The worker count parallel_for would use for `threads = 0`.
std::size_t resolved_parallel_threads();

/// Run body(i) for every i in [0, count). `threads` = 0 means auto.
/// Exceptions thrown by the body are rethrown on the calling thread (the one
/// thrown by the smallest index wins); remaining indices may or may not run.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

}  // namespace earsonar
