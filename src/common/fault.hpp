// Deterministic fault injection for chaos testing.
//
// Production failure modes — a truncated WAV upload, an FFT that dies on a
// poisoned buffer, a model file half-written during a hot swap — are nearly
// impossible to reproduce on demand, so the error paths that handle them
// bit-rot. This registry lets a test (or an operator, via the
// EARSONAR_FAULTS environment variable) arm *named fault points* compiled
// into the library and force each failure deterministically:
//
//   if (fault::point("wav.read"))
//     fail("read_wav: injected fault");
//
// A point that is not armed costs one relaxed atomic load and a predictable
// branch — nothing else: no lock, no string hashing, no map lookup — so the
// hooks stay compiled into hot paths (per-chirp, per-FFT) permanently, the
// same bargain obs::Span makes. Only when at least one point is armed does
// point() take the registry mutex to evaluate its trigger policy.
//
// Trigger policies (see parse_policy for the spec syntax):
//   always      fire on every call
//   nth:N       fire on exactly the Nth call (1-based), once
//   every:K     fire on every Kth call (K, 2K, 3K, ...)
//   prob:P      fire with probability P per call, seeded xorshift RNG
//   prob:P:S    same, with explicit seed S (deterministic sequences)
//
// EARSONAR_FAULTS holds a ';'-separated list of point=policy pairs, e.g.
//   EARSONAR_FAULTS="wav.read=nth:1;pipeline.segment_chirp=every:10"
// parsed once, lazily, when the registry is first touched. Programmatic
// arm()/disarm_all() is what tests use. The full point catalog lives in
// docs/robustness.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace earsonar::fault {

/// How an armed fault point decides whether a given call fires.
struct Policy {
  enum class Mode { kAlways, kNth, kEveryK, kProbability };
  Mode mode = Mode::kAlways;
  std::uint64_t n = 1;        ///< kNth: the call that fires; kEveryK: the period
  double probability = 0.0;   ///< kProbability: per-call fire chance in [0, 1]
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;  ///< kProbability RNG seed
};

/// Parses one policy spec ("always", "nth:3", "every:10", "prob:0.25",
/// "prob:0.25:7"). Throws std::invalid_argument on malformed specs.
Policy parse_policy(std::string_view spec);

/// Counters of one armed point, for assertions and the metrics snapshot.
struct PointStats {
  std::string name;
  std::uint64_t calls = 0;  ///< times point() reached this armed entry
  std::uint64_t fires = 0;  ///< times it returned true (fault injected)
};

class Registry {
 public:
  /// The process-wide registry every fault::point() consults. First use
  /// parses EARSONAR_FAULTS (if set). Thread-safe.
  static Registry& instance();

  /// Arms (or re-arms, resetting counters) one point with a policy.
  void arm(std::string name, Policy policy);

  /// Arms a ';'- or ','-separated "point=policy" list (the EARSONAR_FAULTS
  /// syntax). Throws std::invalid_argument on malformed entries.
  void arm_spec(std::string_view spec);

  void disarm(std::string_view name);
  void disarm_all();

  /// Slow path behind fault::point(); prefer calling that.
  bool fire(std::string_view name);

  [[nodiscard]] std::uint64_t armed_count() const;
  /// Total faults injected (fires across all points) since process start.
  /// Monotonic: disarming does not reset it.
  [[nodiscard]] std::uint64_t injected_total() const;
  [[nodiscard]] std::vector<PointStats> stats() const;

 private:
  Registry();
};

namespace detail {
/// Count of currently armed points; point()'s fast-path gate.
extern std::atomic<std::uint32_t> g_armed;
}  // namespace detail

/// True when the named fault point should inject its failure now. The caller
/// owns what "failure" means at that site (throw, reject, return an error).
inline bool point(std::string_view name) {
  if (detail::g_armed.load(std::memory_order_relaxed) == 0) return false;
  return Registry::instance().fire(name);
}

/// RAII helper for tests: arms points on construction, restores a fully
/// disarmed registry on destruction (even on test failure).
class ScopedFault {
 public:
  ScopedFault(std::string name, Policy policy) {
    Registry::instance().arm(std::move(name), policy);
  }
  explicit ScopedFault(std::string_view spec) { Registry::instance().arm_spec(spec); }
  ~ScopedFault() { Registry::instance().disarm_all(); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;
};

}  // namespace earsonar::fault
