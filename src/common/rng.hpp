// Deterministic random-number utilities.
//
// Every stochastic component in EarSonar (subject generation, noise synthesis,
// k-means seeding, data shuffling) draws through an explicitly seeded Rng so
// that tests, examples, and benchmark tables are bit-reproducible run to run
// — and across standard libraries. The engine is std::mt19937_64, whose raw
// 64-bit output sequence the C++ standard fully specifies; every distribution
// on top of it is implemented here with explicit portable algorithms (Lemire
// bounded rejection, Box–Muller, Fisher–Yates) instead of the std::
// distribution classes, whose outputs are implementation-defined and differ
// between libstdc++ and libc++. tests/common_test.cpp pins exact draw values
// so any future drift is caught.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace earsonar {

/// Seedable pseudo-random source with the distribution helpers the library
/// needs. Thin wrapper over std::mt19937_64; cheap to copy (state is ~2.5 kB)
/// but usually passed by reference. All helpers are portable: the same seed
/// yields the same draws on every conforming standard library.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed'ea25'04a7ULL) : engine_(seed) {}

  /// Derives an independent child stream; `stream` distinguishes siblings.
  /// Used to give each simulated subject / session its own reproducible RNG.
  [[nodiscard]] Rng fork(std::uint64_t stream) const;

  /// One raw 64-bit engine draw (the standard-specified MT19937-64 output).
  std::uint64_t next_u64() { return engine_(); }

  /// Uniform double in [0, 1) with 53 bits of precision (one raw draw).
  double uniform01() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift bounded
  /// rejection (unbiased, usually one raw draw). `bound` must be >= 1.
  std::uint64_t uniform_below(std::uint64_t bound);

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Gaussian with the given mean and standard deviation (sigma >= 0).
  /// Box–Muller over two raw draws; sigma == 0 consumes no draws.
  double normal(double mean, double sigma);

  /// Bernoulli draw with probability `p` of true.
  bool bernoulli(double p);

  /// Index in [0, weights.size()) drawn proportionally to `weights`.
  std::size_t weighted_index(std::span<const double> weights);

  /// In-place Fisher–Yates shuffle (explicit, not std::shuffle, whose
  /// engine-consumption pattern is implementation-defined).
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i)
      std::swap(values[i - 1], values[uniform_below(i)]);
  }

  /// A random permutation of 0..n-1.
  std::vector<std::size_t> permutation(std::size_t n);

  /// `k` distinct indices sampled uniformly from 0..n-1 (k <= n).
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

 private:
  std::mt19937_64 engine_;
};

/// SplitMix64 step — used to derive fork seeds; exposed for tests.
std::uint64_t splitmix64(std::uint64_t x);

}  // namespace earsonar
