// Deterministic random-number utilities.
//
// Every stochastic component in EarSonar (subject generation, noise synthesis,
// k-means seeding, data shuffling) draws through an explicitly seeded Rng so
// that tests, examples, and benchmark tables are bit-reproducible run to run.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace earsonar {

/// Seedable pseudo-random source with the distribution helpers the library
/// needs. Thin wrapper over std::mt19937_64; cheap to copy (state is ~2.5 kB)
/// but usually passed by reference.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed'ea25'04a7ULL) : engine_(seed) {}

  /// Derives an independent child stream; `stream` distinguishes siblings.
  /// Used to give each simulated subject / session its own reproducible RNG.
  [[nodiscard]] Rng fork(std::uint64_t stream) const;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Gaussian with the given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma);

  /// Bernoulli draw with probability `p` of true.
  bool bernoulli(double p);

  /// Index in [0, weights.size()) drawn proportionally to `weights`.
  std::size_t weighted_index(std::span<const double> weights);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    std::shuffle(values.begin(), values.end(), engine_);
  }

  /// A random permutation of 0..n-1.
  std::vector<std::size_t> permutation(std::size_t n);

  /// `k` distinct indices sampled uniformly from 0..n-1 (k <= n).
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// SplitMix64 step — used to derive fork seeds; exposed for tests.
std::uint64_t splitmix64(std::uint64_t x);

}  // namespace earsonar
