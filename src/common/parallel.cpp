#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

namespace earsonar {

namespace {

std::atomic<std::size_t> g_thread_override{0};

// True while the current thread is inside a parallel_for body; nested calls
// run inline instead of re-entering the pool.
thread_local bool t_in_parallel_region = false;

std::size_t env_thread_count() {
  const char* raw = std::getenv("EARSONAR_THREADS");
  if (raw == nullptr || *raw == '\0') return 0;
  char* end = nullptr;
  const long parsed = std::strtol(raw, &end, 10);
  if (end == raw || parsed <= 0) return 0;
  return static_cast<std::size_t>(parsed);
}

// One shared pool for the whole process. Workers start lazily, only ever
// grow, and block on a condition variable between batches, so an idle pool
// costs nothing but memory. The pool object is a leaked singleton — workers
// run until process exit, which sidesteps join-vs-static-destruction races.
class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool* pool = new ThreadPool();
    return *pool;
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Run body(i) for i in [0, count) on `workers` threads total (the calling
  /// thread plus workers-1 pool threads). Concurrent run() calls from
  /// different threads serialize on batch_mutex_.
  void run(std::size_t count, const std::function<void(std::size_t)>& body,
           std::size_t workers) {
    std::unique_lock<std::mutex> batch_lock(batch_mutex_);

    {
      std::lock_guard<std::mutex> lock(mutex_);
      while (threads_.size() < workers - 1) {
        // A worker born mid-batch must not drain it: it starts having already
        // "seen" the current generation and waits for the next one.
        threads_.emplace_back(
            [this, id = threads_.size(), seen = generation_]() mutable {
              worker_loop(id, seen);
            });
      }
      next_.store(0, std::memory_order_relaxed);
      count_ = count;
      body_ = &body;
      error_ = nullptr;
      error_index_ = std::numeric_limits<std::size_t>::max();
      // Every pool thread wakes on notify_all; only ids < participants_ drain.
      participants_ = workers - 1;
      pending_ = threads_.size();
      ++generation_;
    }
    wake_.notify_all();

    drain();  // the calling thread participates

    {
      std::unique_lock<std::mutex> lock(mutex_);
      done_.wait(lock, [&] { return pending_ == 0; });
      body_ = nullptr;
      if (error_) {
        std::exception_ptr err = error_;
        error_ = nullptr;
        lock.unlock();
        std::rethrow_exception(err);
      }
    }
  }

 private:
  ThreadPool() = default;

  void worker_loop(std::size_t id, std::uint64_t seen) {
    t_in_parallel_region = true;  // workers never re-enter the pool
    for (;;) {
      bool participate = false;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [&] { return generation_ != seen; });
        seen = generation_;
        participate = id < participants_;
      }
      if (participate) drain();
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (--pending_ == 0) done_.notify_all();
      }
    }
  }

  /// Pull indices until the batch is exhausted. The first error by smallest
  /// index wins, so a failing batch reports the same exception every run.
  void drain() {
    const auto* body = body_;
    for (;;) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= count_) return;
      try {
        (*body)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (i < error_index_) {
          error_index_ = i;
          error_ = std::current_exception();
        }
      }
    }
  }

  std::mutex batch_mutex_;  ///< serializes run() calls

  std::mutex mutex_;  ///< guards every field below except next_
  std::condition_variable wake_;
  std::condition_variable done_;
  std::vector<std::thread> threads_;
  std::uint64_t generation_ = 0;
  std::size_t participants_ = 0;  ///< pool threads allowed to drain this batch
  std::size_t pending_ = 0;       ///< pool threads yet to finish this batch

  std::atomic<std::size_t> next_{0};
  std::size_t count_ = 0;
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::exception_ptr error_;
  std::size_t error_index_ = std::numeric_limits<std::size_t>::max();
};

void run_inline(std::size_t count, const std::function<void(std::size_t)>& body) {
  for (std::size_t i = 0; i < count; ++i) body(i);
}

}  // namespace

void set_parallel_thread_count(std::size_t threads) {
  g_thread_override.store(threads, std::memory_order_relaxed);
}

std::size_t resolved_parallel_threads() {
  const std::size_t override = g_thread_override.load(std::memory_order_relaxed);
  if (override > 0) return override;
  const std::size_t env = env_thread_count();
  if (env > 0) return env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body,
                  std::size_t threads) {
  if (count == 0) return;
  const std::size_t workers =
      std::min(count, threads > 0 ? threads : resolved_parallel_threads());
  if (workers <= 1 || t_in_parallel_region) {
    run_inline(count, body);
    return;
  }
  t_in_parallel_region = true;
  try {
    ThreadPool::instance().run(count, body, workers);
  } catch (...) {
    t_in_parallel_region = false;
    throw;
  }
  t_in_parallel_region = false;
}

}  // namespace earsonar
