#include "common/error.hpp"

#include <sstream>

namespace earsonar {

void require(bool condition, std::string_view message) {
  if (!condition) throw std::invalid_argument(std::string(message));
}

void ensure(bool condition, std::string_view message) {
  if (!condition) throw std::logic_error(std::string(message));
}

void fail(std::string_view message) { throw std::runtime_error(std::string(message)); }

std::string range_message(std::string_view name, double value, double lo, double hi) {
  std::ostringstream os;
  os << name << " must be in [" << lo << ", " << hi << "], got " << value;
  return os.str();
}

void require_in_range(std::string_view name, double value, double lo, double hi) {
  if (!(value >= lo && value <= hi)) throw std::invalid_argument(range_message(name, value, lo, hi));
}

void require_positive(std::string_view name, double value) {
  if (!(value > 0.0)) {
    std::ostringstream os;
    os << name << " must be positive, got " << value;
    throw std::invalid_argument(os.str());
  }
}

void require_nonempty(std::string_view name, std::size_t size) {
  if (size == 0) {
    std::ostringstream os;
    os << name << " must be non-empty";
    throw std::invalid_argument(os.str());
  }
}

}  // namespace earsonar
