#include "common/csv.hpp"

#include <cstdio>

#include "common/error.hpp"

namespace earsonar {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) fail("CsvWriter: cannot open " + path);
}

void CsvWriter::header(const std::vector<std::string>& names) { write_cells(names); }

void CsvWriter::row(const std::vector<std::string>& cells) { write_cells(cells); }

void CsvWriter::row(const std::string& label, const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(format(v));
  write_cells(cells);
}

std::string CsvWriter::format(double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return buf;
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quoting =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += "\"\"";
    else quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_cells(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  if (!out_) fail("CsvWriter: write failed");
}

}  // namespace earsonar
