// Tiny leveled logger. Benches and examples narrate progress through this so
// verbosity is controlled in one place (and silenced entirely in tests).
#pragma once

#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace earsonar {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum severity; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parses "debug" / "info" / "warn" / "error" / "off" (case-insensitive);
/// nullopt for anything else. The accepted spelling of `--log-level`.
std::optional<LogLevel> parse_log_level(std::string_view name);

/// Lower-case canonical name ("debug", ..., "off") of a level.
const char* log_level_name(LogLevel level);

/// Destination for messages that pass the level filter. The default (and an
/// empty sink) writes "[earsonar LEVEL] message" lines to stderr; tests
/// install a capturing sink to assert on filtering.
using LogSink = std::function<void(LogLevel, std::string_view)>;
void set_log_sink(LogSink sink);

/// Emits `message` through the sink when `level` >= the global level.
void log_message(LogLevel level, std::string_view message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    log_message(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    log_message(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    log_message(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::kError)
    log_message(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace earsonar
