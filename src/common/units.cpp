#include "common/units.hpp"

#include <cmath>

#include "common/error.hpp"

namespace earsonar {

double amplitude_to_db(double amplitude_ratio) {
  require_positive("amplitude_ratio", amplitude_ratio);
  return 20.0 * std::log10(amplitude_ratio);
}

double db_to_amplitude(double db) { return std::pow(10.0, db / 20.0); }

double power_to_db(double power_ratio) {
  require_positive("power_ratio", power_ratio);
  return 10.0 * std::log10(power_ratio);
}

double db_to_power(double db) { return std::pow(10.0, db / 10.0); }

double spl_to_pressure_pa(double spl_db) {
  return kReferencePressurePa * db_to_amplitude(spl_db);
}

double pressure_pa_to_spl(double pressure_pa) {
  require_positive("pressure_pa", pressure_pa);
  return amplitude_to_db(pressure_pa / kReferencePressurePa);
}

double echo_delay_seconds(double distance_m, double speed) {
  require_positive("distance_m", distance_m);
  require_positive("speed", speed);
  return 2.0 * distance_m / speed;
}

std::size_t echo_delay_samples(double distance_m, double sample_rate, double speed) {
  require_positive("sample_rate", sample_rate);
  return static_cast<std::size_t>(std::lround(echo_delay_seconds(distance_m, speed) * sample_rate));
}

double samples_to_distance_m(double samples, double sample_rate, double speed) {
  require(samples >= 0.0, "samples must be >= 0");
  require_positive("sample_rate", sample_rate);
  return samples / sample_rate * speed / 2.0;
}

double characteristic_impedance(double density_kg_m3, double sound_speed_m_s) {
  require_positive("density_kg_m3", density_kg_m3);
  require_positive("sound_speed_m_s", sound_speed_m_s);
  return density_kg_m3 * sound_speed_m_s;
}

}  // namespace earsonar
