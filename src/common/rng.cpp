#include "common/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <numeric>

namespace earsonar {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Rng Rng::fork(std::uint64_t stream) const {
  // Hash the current engine state summary with the stream id. Copy the engine
  // so fork() is const and the parent stream is left untouched.
  std::mt19937_64 copy = engine_;
  const std::uint64_t base = copy();
  return Rng(splitmix64(base ^ splitmix64(stream)));
}

std::uint64_t Rng::uniform_below(std::uint64_t bound) {
  require(bound >= 1, "Rng::uniform_below: bound must be >= 1");
  // Lemire's multiply-shift with rejection of the biased low fringe:
  // floor(x * bound / 2^64) is uniform iff the low 64 bits of the product
  // clear the 2^64 % bound threshold.
  using u128 = unsigned __int128;
  std::uint64_t x = next_u64();
  u128 m = static_cast<u128>(x) * static_cast<u128>(bound);
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;  // 2^64 mod bound
    while (low < threshold) {
      x = next_u64();
      m = static_cast<u128>(x) * static_cast<u128>(bound);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::uniform(double lo, double hi) {
  require(lo <= hi, "Rng::uniform: lo must be <= hi");
  if (lo == hi) return lo;
  const double v = lo + uniform01() * (hi - lo);
  // Rounding in the affine map can land exactly on hi; keep the half-open
  // contract by snapping to the largest representable value below it.
  return v < hi ? v : std::nextafter(hi, lo);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  require(lo <= hi, "Rng::uniform_int: lo must be <= hi");
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
  if (span == std::uint64_t(-1)) return static_cast<std::int64_t>(next_u64());
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                   uniform_below(span + 1));
}

double Rng::normal(double mean, double sigma) {
  require(sigma >= 0.0, "Rng::normal: sigma must be >= 0");
  if (sigma == 0.0) return mean;
  // Box–Muller over exactly two raw draws; the sine branch is discarded so
  // every call consumes the same amount of engine state regardless of
  // history (no cached spare, no hidden state beyond the engine).
  const double u1 = 1.0 - uniform01();  // (0, 1]: keeps log() finite
  const double u2 = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + sigma * r * std::cos(2.0 * std::numbers::pi * u2);
}

bool Rng::bernoulli(double p) {
  require_in_range("Rng::bernoulli p", p, 0.0, 1.0);
  return uniform01() < p;
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  require_nonempty("Rng::weighted_index weights", weights.size());
  double total = 0.0;
  for (double w : weights) {
    require(w >= 0.0, "Rng::weighted_index: weights must be non-negative");
    total += w;
  }
  require(total > 0.0, "Rng::weighted_index: weights must not all be zero");
  double r = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (r < weights[i]) return i;
    r -= weights[i];
  }
  return weights.size() - 1;  // floating-point edge: land on the last bucket
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  shuffle(idx);
  return idx;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  require(k <= n, "Rng::sample_without_replacement: k must be <= n");
  std::vector<std::size_t> idx = permutation(n);
  idx.resize(k);
  std::sort(idx.begin(), idx.end());
  return idx;
}

}  // namespace earsonar
