#include "common/rng.hpp"

#include <algorithm>
#include <numeric>

namespace earsonar {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Rng Rng::fork(std::uint64_t stream) const {
  // Hash the current engine state summary with the stream id. Copy the engine
  // so fork() is const and the parent stream is left untouched.
  std::mt19937_64 copy = engine_;
  const std::uint64_t base = copy();
  return Rng(splitmix64(base ^ splitmix64(stream)));
}

double Rng::uniform(double lo, double hi) {
  require(lo <= hi, "Rng::uniform: lo must be <= hi");
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  require(lo <= hi, "Rng::uniform_int: lo must be <= hi");
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::normal(double mean, double sigma) {
  require(sigma >= 0.0, "Rng::normal: sigma must be >= 0");
  if (sigma == 0.0) return mean;
  std::normal_distribution<double> dist(mean, sigma);
  return dist(engine_);
}

bool Rng::bernoulli(double p) {
  require_in_range("Rng::bernoulli p", p, 0.0, 1.0);
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  require_nonempty("Rng::weighted_index weights", weights.size());
  double total = 0.0;
  for (double w : weights) {
    require(w >= 0.0, "Rng::weighted_index: weights must be non-negative");
    total += w;
  }
  require(total > 0.0, "Rng::weighted_index: weights must not all be zero");
  double r = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (r < weights[i]) return i;
    r -= weights[i];
  }
  return weights.size() - 1;  // floating-point edge: land on the last bucket
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::shuffle(idx.begin(), idx.end(), engine_);
  return idx;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  require(k <= n, "Rng::sample_without_replacement: k must be <= n");
  std::vector<std::size_t> idx = permutation(n);
  idx.resize(k);
  std::sort(idx.begin(), idx.end());
  return idx;
}

}  // namespace earsonar
