// ASCII table renderer for benchmark output, so each bench binary prints
// rows that visually match the tables/figures in the paper.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace earsonar {

/// Accumulates rows of string cells and pretty-prints them with aligned,
/// pipe-separated columns. Used by every bench binary.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  /// Appends a row; shorter rows are padded with empty cells.
  void add_row(std::vector<std::string> cells);

  /// Convenience: label + numeric cells with fixed decimals.
  void add_row(const std::string& label, const std::vector<double>& values,
               int decimals = 2);

  /// Renders the table (header, separator, rows) to `os`.
  void print(std::ostream& os) const;

  /// Renders to a string.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Fixed-decimal number formatting shared with add_row.
  static std::string format(double value, int decimals);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace earsonar
