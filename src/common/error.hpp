// Contract-checking helpers shared by every EarSonar module.
//
// The library follows the C++ Core Guidelines error-handling model: broken
// preconditions throw std::invalid_argument, broken runtime invariants throw
// std::logic_error, and unavailable external resources throw
// std::runtime_error. All throw sites funnel through these helpers so the
// message format is uniform and grep-able.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace earsonar {

/// Throws std::invalid_argument when `condition` is false.
/// Use for caller-supplied argument validation at public API boundaries.
void require(bool condition, std::string_view message);

/// Throws std::logic_error when `condition` is false.
/// Use for internal invariants that indicate a library bug when violated.
void ensure(bool condition, std::string_view message);

/// Throws std::runtime_error unconditionally. Use for I/O and resource errors.
[[noreturn]] void fail(std::string_view message);

/// Builds "name must be in [lo, hi], got value" style messages.
std::string range_message(std::string_view name, double value, double lo, double hi);

/// Throws std::invalid_argument unless lo <= value <= hi.
void require_in_range(std::string_view name, double value, double lo, double hi);

/// Throws std::invalid_argument unless value > 0.
void require_positive(std::string_view name, double value);

/// Throws std::invalid_argument unless size > 0.
void require_nonempty(std::string_view name, std::size_t size);

}  // namespace earsonar
