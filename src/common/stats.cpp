#include "common/stats.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdint>

#include "common/error.hpp"

namespace earsonar {

namespace {

// Central moment of the given order relative to the supplied mean.
double central_moment(std::span<const double> xs, double mu, int order) {
  double acc = 0.0;
  for (double x : xs) acc += std::pow(x - mu, order);
  return acc / static_cast<double>(xs.size());
}

// Maps a double to an unsigned key whose integer order matches the double
// order: flip all bits of negatives, set the sign bit of non-negatives.
std::uint64_t order_key(double x) {
  const auto bits = std::bit_cast<std::uint64_t>(x);
  return (bits & 0x8000000000000000ULL) ? ~bits : bits | 0x8000000000000000ULL;
}

// Values at ranks r0 and r1 (0-based order statistics, r1 in {r0, r0+1}) via
// MSB radix selection: each round histograms an 11-bit digit of the order
// key, keeps only the bucket range containing both ranks, and recurses on
// the survivors. Selection never reorders across equal keys, so the returned
// values match nth_element / a full sort exactly; only the work drops from
// the selection network's data-dependent shuffling to a few sequential
// counting passes.
std::pair<double, double> two_order_stats_radix(std::span<const double> xs,
                                                std::size_t r0, std::size_t r1) {
  constexpr int kDigitBits = 11;
  constexpr std::size_t kBuckets = std::size_t{1} << kDigitBits;
  constexpr std::size_t kSmall = 64;

  // Two passes over the full input in total: one to histogram the leading
  // digit, one to collect the surviving bucket range — which simultaneously
  // histograms the *next* digit of the survivors, so every later round costs
  // a single pass over an already much smaller working set. The input itself
  // is never copied wholesale.
  //
  // The counting pass stripes across four interleaved histograms: the
  // envelope this feeds is smooth, so consecutive samples hit the same
  // bucket, and a single counter array would serialize on the
  // store-to-load-forwarded increment. Four independent counters break that
  // chain; their sum is order-independent (integer adds).
  thread_local std::vector<double> buf_a, buf_b;
  std::array<std::uint32_t, kBuckets> hist{};
  int shift = 64 - kDigitBits;
  {
    thread_local std::vector<std::uint32_t> stripes;
    stripes.assign(4 * kBuckets, 0);
    std::uint32_t* h4 = stripes.data();
    const std::size_t n = xs.size();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      ++h4[0 * kBuckets + ((order_key(xs[i]) >> shift) & (kBuckets - 1))];
      ++h4[1 * kBuckets + ((order_key(xs[i + 1]) >> shift) & (kBuckets - 1))];
      ++h4[2 * kBuckets + ((order_key(xs[i + 2]) >> shift) & (kBuckets - 1))];
      ++h4[3 * kBuckets + ((order_key(xs[i + 3]) >> shift) & (kBuckets - 1))];
    }
    for (; i < n; ++i) ++h4[(order_key(xs[i]) >> shift) & (kBuckets - 1)];
    for (std::size_t b = 0; b < kBuckets; ++b)
      hist[b] = h4[b] + h4[kBuckets + b] + h4[2 * kBuckets + b] + h4[3 * kBuckets + b];
  }

  std::span<const double> cur = xs;
  std::vector<double>* dst = &buf_a;
  std::vector<double>* spare = &buf_b;

  while (true) {
    // Bucket range [b0, b1] holding ranks r0 and r1, the element count
    // strictly below it, and the exact survivor count.
    std::size_t below = 0, b0 = 0;
    while (below + hist[b0] <= r0) below += hist[b0++];
    std::size_t b1 = b0, upto = below + hist[b0];
    while (upto <= r1) upto += hist[++b1];
    const std::size_t keep = upto - below;
    r0 -= below;
    r1 -= below;

    if (b0 != b1) {
      // The two ranks straddle a bucket boundary: rank r0 closes bucket b0's
      // cumulative count and rank r1 opens bucket b1's (buckets between are
      // empty), so the order statistics are exactly that bucket's maximum and
      // this bucket's minimum. Recursing on the next digit would be wrong
      // here — survivors from different top digits don't sort by lower
      // digits alone. Plain double max/min matches key order because a
      // bucket fixes the key's top bits, sign included.
      bool f0 = false, f1 = false;
      double v0 = 0.0, v1 = 0.0;
      for (double x : cur) {
        const std::size_t b = (order_key(x) >> shift) & (kBuckets - 1);
        if (b == b0) {
          v0 = f0 ? std::max(v0, x) : x;
          f0 = true;
        } else if (b == b1) {
          v1 = f1 ? std::min(v1, x) : x;
          f1 = true;
        }
      }
      return {v0, v1};
    }

    const int next_shift_if_skipping = shift - kDigitBits;
    if (keep == cur.size() && next_shift_if_skipping >= 0 && keep > kSmall) {
      // This digit failed to discriminate (every element shares the bucket
      // range). Nothing to copy — re-histogram the next digit in place
      // (two stripes, same reasoning as the first pass).
      std::array<std::uint32_t, 2 * kBuckets> nh{};
      const std::size_t m = cur.size();
      std::size_t j = 0;
      for (; j + 2 <= m; j += 2) {
        ++nh[(order_key(cur[j]) >> next_shift_if_skipping) & (kBuckets - 1)];
        ++nh[kBuckets +
             ((order_key(cur[j + 1]) >> next_shift_if_skipping) & (kBuckets - 1))];
      }
      for (; j < m; ++j)
        ++nh[(order_key(cur[j]) >> next_shift_if_skipping) & (kBuckets - 1)];
      for (std::size_t b = 0; b < kBuckets; ++b) hist[b] = nh[b] + nh[kBuckets + b];
      shift = next_shift_if_skipping;
      continue;
    }

    // Collect the surviving bucket (b0 == b1 here, so the test is a single
    // compare). The branch is data-dependent but the survivor set is one
    // digit value, so runs of accept/reject dominate and predict well; a
    // branchless variant measured no faster.
    dst->resize(keep);
    double* out = dst->data();
    const int next_shift = shift - kDigitBits;

    if (next_shift < 0 || keep <= kSmall) {
      std::size_t w = 0;
      for (double x : cur) {
        const std::size_t b = (order_key(x) >> shift) & (kBuckets - 1);
        if (b == b0) out[w++] = x;
      }
      const auto first = dst->begin();
      const auto last = first + static_cast<std::ptrdiff_t>(keep);
      const auto nth = first + static_cast<std::ptrdiff_t>(r0);
      std::nth_element(first, nth, last);
      const double v0 = *nth;
      const double v1 = r1 == r0 ? v0 : *std::min_element(nth + 1, last);
      return {v0, v1};
    }

    // Fold the next digit's histogram into the same pass so the survivors are
    // only read once per round. Two stripes selected by write-cursor parity
    // break the same-counter store-forwarding chain on smooth data.
    std::array<std::uint32_t, 2 * kBuckets> nh{};
    std::size_t w = 0;
    for (double x : cur) {
      const std::uint64_t key = order_key(x);
      const std::size_t b = (key >> shift) & (kBuckets - 1);
      if (b == b0) {
        out[w] = x;
        ++nh[(w & 1) * kBuckets + ((key >> next_shift) & (kBuckets - 1))];
        ++w;
      }
    }
    for (std::size_t b = 0; b < kBuckets; ++b) hist[b] = nh[b] + nh[kBuckets + b];
    shift = next_shift;
    cur = std::span<const double>(dst->data(), keep);
    std::swap(dst, spare);
  }
}

}  // namespace

double mean(std::span<const double> xs) {
  require_nonempty("mean input", xs.size());
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  require_nonempty("variance input", xs.size());
  const double mu = mean(xs);
  return central_moment(xs, mu, 2);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min_value(std::span<const double> xs) {
  require_nonempty("min_value input", xs.size());
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  require_nonempty("max_value input", xs.size());
  return *std::max_element(xs.begin(), xs.end());
}

double skewness(std::span<const double> xs) {
  require_nonempty("skewness input", xs.size());
  const double mu = mean(xs);
  const double m2 = central_moment(xs, mu, 2);
  if (m2 <= 0.0) return 0.0;
  return central_moment(xs, mu, 3) / std::pow(m2, 1.5);
}

double kurtosis_excess(std::span<const double> xs) {
  require_nonempty("kurtosis input", xs.size());
  const double mu = mean(xs);
  const double m2 = central_moment(xs, mu, 2);
  if (m2 <= 0.0) return 0.0;
  return central_moment(xs, mu, 4) / (m2 * m2) - 3.0;
}

double rms(std::span<const double> xs) {
  require_nonempty("rms input", xs.size());
  return std::sqrt(energy(xs) / static_cast<double>(xs.size()));
}

double energy(std::span<const double> xs) {
  double acc = 0.0;
  for (double x : xs) acc += x * x;
  return acc;
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double percentile(std::span<const double> xs, double p) {
  require_nonempty("percentile input", xs.size());
  require_in_range("percentile p", p, 0.0, 100.0);
  if (xs.size() == 1) return xs.front();
  const double pos = p / 100.0 * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  // Two order statistics instead of a full sort. Both paths return the exact
  // lo-th and hi-th smallest values — identical to sorting — they differ only
  // in how they find them: nth_element places the lo-th value and leaves
  // everything above it to the right (the hi-th value is then the minimum of
  // that right partition); the radix path counts its way down the key bits,
  // which on large inputs beats introselect's shuffling by a wide margin
  // (the event detector takes the median of a whole recording's envelope).
  constexpr std::size_t kRadixThreshold = 2048;
  double v_lo, v_hi;
  if (xs.size() >= kRadixThreshold) {
    const auto [v0, v1] = two_order_stats_radix(xs, lo, hi);
    v_lo = v0;
    v_hi = v1;
  } else {
    std::vector<double> work(xs.begin(), xs.end());
    auto nth = work.begin() + static_cast<std::ptrdiff_t>(lo);
    std::nth_element(work.begin(), nth, work.end());
    v_lo = *nth;
    v_hi = hi == lo ? v_lo : *std::min_element(nth + 1, work.end());
  }
  return v_lo * (1.0 - frac) + v_hi * frac;
}

double pearson_correlation(std::span<const double> xs, std::span<const double> ys) {
  require(xs.size() == ys.size(), "pearson_correlation: size mismatch");
  require_nonempty("pearson_correlation input", xs.size());
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

SummaryStats summarize(std::span<const double> xs) {
  require_nonempty("summarize input", xs.size());
  SummaryStats s;
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.min = min_value(xs);
  s.max = max_value(xs);
  s.skewness = skewness(xs);
  s.kurtosis_excess = kurtosis_excess(xs);
  return s;
}

std::size_t argmax(std::span<const double> xs) {
  require_nonempty("argmax input", xs.size());
  return static_cast<std::size_t>(std::max_element(xs.begin(), xs.end()) - xs.begin());
}

std::size_t argmin(std::span<const double> xs) {
  require_nonempty("argmin input", xs.size());
  return static_cast<std::size_t>(std::min_element(xs.begin(), xs.end()) - xs.begin());
}

}  // namespace earsonar
