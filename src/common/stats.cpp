#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace earsonar {

namespace {

// Central moment of the given order relative to the supplied mean.
double central_moment(std::span<const double> xs, double mu, int order) {
  double acc = 0.0;
  for (double x : xs) acc += std::pow(x - mu, order);
  return acc / static_cast<double>(xs.size());
}

}  // namespace

double mean(std::span<const double> xs) {
  require_nonempty("mean input", xs.size());
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  require_nonempty("variance input", xs.size());
  const double mu = mean(xs);
  return central_moment(xs, mu, 2);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min_value(std::span<const double> xs) {
  require_nonempty("min_value input", xs.size());
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  require_nonempty("max_value input", xs.size());
  return *std::max_element(xs.begin(), xs.end());
}

double skewness(std::span<const double> xs) {
  require_nonempty("skewness input", xs.size());
  const double mu = mean(xs);
  const double m2 = central_moment(xs, mu, 2);
  if (m2 <= 0.0) return 0.0;
  return central_moment(xs, mu, 3) / std::pow(m2, 1.5);
}

double kurtosis_excess(std::span<const double> xs) {
  require_nonempty("kurtosis input", xs.size());
  const double mu = mean(xs);
  const double m2 = central_moment(xs, mu, 2);
  if (m2 <= 0.0) return 0.0;
  return central_moment(xs, mu, 4) / (m2 * m2) - 3.0;
}

double rms(std::span<const double> xs) {
  require_nonempty("rms input", xs.size());
  return std::sqrt(energy(xs) / static_cast<double>(xs.size()));
}

double energy(std::span<const double> xs) {
  double acc = 0.0;
  for (double x : xs) acc += x * x;
  return acc;
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double percentile(std::span<const double> xs, double p) {
  require_nonempty("percentile input", xs.size());
  require_in_range("percentile p", p, 0.0, 100.0);
  std::vector<double> work(xs.begin(), xs.end());
  if (work.size() == 1) return work.front();
  const double pos = p / 100.0 * static_cast<double>(work.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, work.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  // Two order statistics instead of a full sort: nth_element places the lo-th
  // value and partitions everything above it to the right, so the hi-th value
  // (lo or lo+1) is the minimum of that right partition. Same values as the
  // sort-based implementation in O(n).
  auto nth = work.begin() + static_cast<std::ptrdiff_t>(lo);
  std::nth_element(work.begin(), nth, work.end());
  const double v_lo = *nth;
  const double v_hi = hi == lo ? v_lo : *std::min_element(nth + 1, work.end());
  return v_lo * (1.0 - frac) + v_hi * frac;
}

double pearson_correlation(std::span<const double> xs, std::span<const double> ys) {
  require(xs.size() == ys.size(), "pearson_correlation: size mismatch");
  require_nonempty("pearson_correlation input", xs.size());
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

SummaryStats summarize(std::span<const double> xs) {
  require_nonempty("summarize input", xs.size());
  SummaryStats s;
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.min = min_value(xs);
  s.max = max_value(xs);
  s.skewness = skewness(xs);
  s.kurtosis_excess = kurtosis_excess(xs);
  return s;
}

std::size_t argmax(std::span<const double> xs) {
  require_nonempty("argmax input", xs.size());
  return static_cast<std::size_t>(std::max_element(xs.begin(), xs.end()) - xs.begin());
}

std::size_t argmin(std::span<const double> xs) {
  require_nonempty("argmin input", xs.size());
  return static_cast<std::size_t>(std::min_element(xs.begin(), xs.end()) - xs.begin());
}

}  // namespace earsonar
