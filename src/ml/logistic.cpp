#include "ml/logistic.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace earsonar::ml {

namespace {
std::vector<double> softmax(const std::vector<double>& logits) {
  const double peak = *std::max_element(logits.begin(), logits.end());
  std::vector<double> p(logits.size());
  double total = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    p[i] = std::exp(logits[i] - peak);
    total += p[i];
  }
  for (double& v : p) v /= total;
  return p;
}
}  // namespace

LogisticRegression::LogisticRegression(LogisticConfig config) : config_(config) {
  require(config.classes >= 2, "LogisticRegression: need >= 2 classes");
  require(config.epochs >= 1, "LogisticRegression: need >= 1 epoch");
  require_positive("LogisticRegression learning_rate", config.learning_rate);
  require(config.l2 >= 0.0, "LogisticRegression: l2 must be >= 0");
}

void LogisticRegression::fit(const Matrix& x, const std::vector<std::size_t>& y) {
  require_nonempty("LogisticRegression x", x.size());
  require(x.size() == y.size(), "LogisticRegression: x/y size mismatch");
  const std::size_t n = x.size();
  const std::size_t d = x.front().size();
  require_nonempty("LogisticRegression dimension", d);
  for (const auto& row : x)
    require(row.size() == d, "LogisticRegression: ragged matrix");
  for (std::size_t label : y)
    require(label < config_.classes, "LogisticRegression: label out of range");

  earsonar::Rng rng(config_.seed);
  weights_.assign(config_.classes, std::vector<double>(d));
  for (auto& row : weights_)
    for (double& w : row) w = rng.normal(0.0, 0.01);
  bias_.assign(config_.classes, 0.0);

  Matrix grad_w(config_.classes, std::vector<double>(d, 0.0));
  std::vector<double> grad_b(config_.classes, 0.0);

  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    for (auto& row : grad_w) std::fill(row.begin(), row.end(), 0.0);
    std::fill(grad_b.begin(), grad_b.end(), 0.0);

    for (std::size_t i = 0; i < n; ++i) {
      const std::vector<double> p = predict_proba(x[i]);
      for (std::size_t c = 0; c < config_.classes; ++c) {
        const double err = p[c] - (c == y[i] ? 1.0 : 0.0);
        for (std::size_t j = 0; j < d; ++j) grad_w[c][j] += err * x[i][j];
        grad_b[c] += err;
      }
    }

    const double scale = config_.learning_rate / static_cast<double>(n);
    for (std::size_t c = 0; c < config_.classes; ++c) {
      for (std::size_t j = 0; j < d; ++j)
        weights_[c][j] -= scale * (grad_w[c][j] + config_.l2 * weights_[c][j]);
      bias_[c] -= scale * grad_b[c];
    }
  }
}

std::vector<double> LogisticRegression::predict_proba(const std::vector<double>& x) const {
  require(fitted(), "LogisticRegression: predict before fit");
  require(x.size() == weights_.front().size(), "LogisticRegression: dim mismatch");
  std::vector<double> logits(config_.classes, 0.0);
  for (std::size_t c = 0; c < config_.classes; ++c) {
    double acc = bias_[c];
    for (std::size_t j = 0; j < x.size(); ++j) acc += weights_[c][j] * x[j];
    logits[c] = acc;
  }
  return softmax(logits);
}

std::size_t LogisticRegression::predict(const std::vector<double>& x) const {
  const std::vector<double> p = predict_proba(x);
  return static_cast<std::size_t>(std::max_element(p.begin(), p.end()) - p.begin());
}

}  // namespace earsonar::ml
