// Classification metrics (paper §VI-A: precision, recall, F1, confusion
// matrix, plus FAR/FRR for the robustness studies of Fig. 14).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace earsonar::ml {

/// Row-normalizable confusion matrix over `classes` labels.
/// rows = ground truth, columns = prediction.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t classes);

  void add(std::size_t truth, std::size_t predicted, std::size_t count = 1);

  [[nodiscard]] std::size_t classes() const { return counts_.size(); }
  [[nodiscard]] std::size_t at(std::size_t truth, std::size_t predicted) const;
  [[nodiscard]] std::size_t total() const;
  [[nodiscard]] std::size_t row_total(std::size_t truth) const;
  [[nodiscard]] std::size_t column_total(std::size_t predicted) const;

  /// Overall fraction of correct predictions; 0 when empty.
  [[nodiscard]] double accuracy() const;

  /// TP / (TP + FP) for a class; 0 when the class was never predicted.
  [[nodiscard]] double precision(std::size_t cls) const;

  /// TP / (TP + FN) for a class; 0 when the class never occurred.
  [[nodiscard]] double recall(std::size_t cls) const;

  /// Harmonic mean of precision and recall; 0 when both are 0.
  [[nodiscard]] double f1(std::size_t cls) const;

  /// Unweighted mean across classes.
  [[nodiscard]] double macro_precision() const;
  [[nodiscard]] double macro_recall() const;
  [[nodiscard]] double macro_f1() const;

  /// False-acceptance rate for a class: FP / (negatives) — how often other
  /// states are mistaken for this one.
  [[nodiscard]] double false_acceptance_rate(std::size_t cls) const;

  /// False-rejection rate for a class: FN / (positives) — how often this
  /// state is missed.
  [[nodiscard]] double false_rejection_rate(std::size_t cls) const;

  /// Row-normalized matrix (each row sums to 1) for pretty-printing.
  [[nodiscard]] std::vector<std::vector<double>> row_normalized() const;

  /// Merges another confusion matrix (same class count) into this one.
  void merge(const ConfusionMatrix& other);

 private:
  std::vector<std::vector<std::size_t>> counts_;
};

/// Builds a confusion matrix from parallel truth/prediction arrays.
ConfusionMatrix confusion_from_labels(const std::vector<std::size_t>& truth,
                                      const std::vector<std::size_t>& predicted,
                                      std::size_t classes);

}  // namespace earsonar::ml
