// k-nearest-neighbor classifier — the supervised ablation comparator for the
// paper's unsupervised k-means detector.
#pragma once

#include <cstddef>
#include <vector>

#include "ml/kmeans.hpp"

namespace earsonar::ml {

class KnnClassifier {
 public:
  explicit KnnClassifier(std::size_t k = 5);

  /// Stores the training set (lazy learner).
  void fit(Matrix x, std::vector<std::size_t> y);

  /// Majority vote among the k nearest training samples; ties break toward
  /// the smaller class index.
  [[nodiscard]] std::size_t predict(const std::vector<double>& x) const;

  [[nodiscard]] bool fitted() const { return !train_x_.empty(); }
  [[nodiscard]] std::size_t k() const { return k_; }

 private:
  std::size_t k_;
  Matrix train_x_;
  std::vector<std::size_t> train_y_;
};

}  // namespace earsonar::ml
