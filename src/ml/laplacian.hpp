// Laplacian-score feature selection (paper §IV-C2: 105 features ranked by
// Laplacian score, top 25 kept). The score prefers features that respect the
// local manifold structure of the data: small score = better feature.
#pragma once

#include <cstddef>
#include <vector>

#include "ml/kmeans.hpp"

namespace earsonar::ml {

struct LaplacianConfig {
  std::size_t neighbors = 5;   ///< kNN graph degree
  double heat_sigma = 1.0;     ///< heat-kernel bandwidth multiplier (relative
                               ///< to the mean kNN distance)
};

/// Laplacian score per feature column of `data` (lower = more informative).
std::vector<double> laplacian_scores(const Matrix& data, const LaplacianConfig& config = {});

/// Indices of the `count` best (lowest-score) features, in score order.
std::vector<std::size_t> select_best_features(const std::vector<double>& scores,
                                              std::size_t count);

/// Projects a feature vector onto `selected` columns.
std::vector<double> project_features(const std::vector<double>& features,
                                     const std::vector<std::size_t>& selected);

/// Projects every row of a matrix onto `selected` columns.
Matrix project_matrix(const Matrix& data, const std::vector<std::size_t>& selected);

}  // namespace earsonar::ml
