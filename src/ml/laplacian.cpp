#include "ml/laplacian.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/error.hpp"

namespace earsonar::ml {

std::vector<double> laplacian_scores(const Matrix& data, const LaplacianConfig& config) {
  require_nonempty("laplacian data", data.size());
  require(config.neighbors >= 1, "LaplacianConfig: neighbors must be >= 1");
  require(config.heat_sigma > 0.0, "LaplacianConfig: heat_sigma must be > 0");
  const std::size_t n = data.size();
  const std::size_t d = data.front().size();
  require_nonempty("laplacian feature dimension", d);
  for (const auto& row : data)
    require(row.size() == d, "laplacian_scores: ragged matrix");
  require(n >= 2, "laplacian_scores: need >= 2 samples");

  const std::size_t k = std::min(config.neighbors, n - 1);

  // Pairwise distances + kNN sets.
  std::vector<std::vector<double>> dist(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      dist[i][j] = dist[j][i] = squared_distance(data[i], data[j]);

  std::vector<std::vector<std::size_t>> knn(n);
  double mean_knn_dist2 = 0.0;
  std::size_t knn_edges = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return dist[i][a] < dist[i][b]; });
    for (std::size_t j = 0; j < n && knn[i].size() < k; ++j) {
      if (order[j] == i) continue;
      knn[i].push_back(order[j]);
      mean_knn_dist2 += dist[i][order[j]];
      ++knn_edges;
    }
  }
  mean_knn_dist2 = std::max(mean_knn_dist2 / static_cast<double>(knn_edges), 1e-12);
  const double t = config.heat_sigma * mean_knn_dist2;

  // Symmetric heat-kernel weight matrix on the kNN graph.
  std::vector<std::vector<double>> w(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j : knn[i]) {
      const double weight = std::exp(-dist[i][j] / t);
      w[i][j] = std::max(w[i][j], weight);
      w[j][i] = w[i][j];
    }

  std::vector<double> degree(n, 0.0);
  double total_degree = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) degree[i] += w[i][j];
    total_degree += degree[i];
  }

  std::vector<double> scores(d, std::numeric_limits<double>::max());
  for (std::size_t f = 0; f < d; ++f) {
    // Center the feature against the degree-weighted mean (removes the
    // trivial all-ones eigenvector of the graph Laplacian).
    double weighted_mean = 0.0;
    for (std::size_t i = 0; i < n; ++i) weighted_mean += data[i][f] * degree[i];
    weighted_mean /= std::max(total_degree, 1e-12);

    double smoothness = 0.0;  // f~^T L f~  = sum_ij w_ij (fi - fj)^2 / 2
    double variance = 0.0;    // f~^T D f~
    for (std::size_t i = 0; i < n; ++i) {
      const double fi = data[i][f] - weighted_mean;
      variance += fi * fi * degree[i];
      for (std::size_t j = 0; j < n; ++j) {
        const double fj = data[j][f] - weighted_mean;
        smoothness += w[i][j] * (fi - fj) * (fi - fj);
      }
    }
    smoothness /= 2.0;
    // Constant features carry no information: keep score at +inf-like max.
    if (variance > 1e-12) scores[f] = smoothness / variance;
  }
  return scores;
}

std::vector<std::size_t> select_best_features(const std::vector<double>& scores,
                                              std::size_t count) {
  require_nonempty("scores", scores.size());
  require(count >= 1 && count <= scores.size(),
          "select_best_features: count out of range");
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return scores[a] < scores[b]; });
  order.resize(count);
  return order;
}

std::vector<double> project_features(const std::vector<double>& features,
                                     const std::vector<std::size_t>& selected) {
  std::vector<double> out;
  out.reserve(selected.size());
  for (std::size_t idx : selected) {
    require(idx < features.size(), "project_features: index out of range");
    out.push_back(features[idx]);
  }
  return out;
}

Matrix project_matrix(const Matrix& data, const std::vector<std::size_t>& selected) {
  Matrix out;
  out.reserve(data.size());
  for (const auto& row : data) out.push_back(project_features(row, selected));
  return out;
}

}  // namespace earsonar::ml
