#include "ml/outlier.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace earsonar::ml {

OutlierResult remove_outliers_by_distance(const Matrix& data, const KMeans& kmeans,
                                          const OutlierConfig& config) {
  require_nonempty("outlier data", data.size());
  require(config.distance_sigma > 0.0, "OutlierConfig: distance_sigma must be > 0");
  require(config.max_loops >= 1, "OutlierConfig: max_loops must be >= 1");
  require_in_range("OutlierConfig.min_keep_fraction", config.min_keep_fraction, 0.1, 1.0);

  // Count how many loops flag each point; only points flagged in every loop
  // are removed ("compare with the results of multiple loops").
  std::vector<std::size_t> flags(data.size(), 0);
  for (std::size_t loop = 0; loop < config.max_loops; ++loop) {
    KMeansConfig kc = kmeans.config();
    kc.seed = kc.seed + loop * 1013904223ULL;  // vary the seeding per loop
    const KMeansResult result = KMeans(kc).fit(data);

    std::vector<double> dist(data.size());
    for (std::size_t i = 0; i < data.size(); ++i)
      dist[i] = euclidean_distance(data[i], result.centroids[result.labels[i]]);
    const double mu = mean(dist);
    const double sd = stddev(dist);
    const double cut = mu + config.distance_sigma * sd;

    // A lone far point can capture its own centroid (distance 0); clusters
    // holding almost no data are outlier clusters themselves.
    std::vector<std::size_t> cluster_size(result.centroids.size(), 0);
    for (std::size_t label : result.labels) cluster_size[label]++;
    const std::size_t tiny = static_cast<std::size_t>(
        config.tiny_cluster_fraction * static_cast<double>(data.size()));

    for (std::size_t i = 0; i < data.size(); ++i)
      if (dist[i] > cut || cluster_size[result.labels[i]] <= std::max<std::size_t>(1, tiny))
        flags[i]++;
  }

  OutlierResult out;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (flags[i] == config.max_loops) out.removed.push_back(i);
    else out.kept.push_back(i);
  }

  // Safety valve: never discard more than allowed; restore the least-flagged.
  const std::size_t min_keep = static_cast<std::size_t>(
      std::ceil(config.min_keep_fraction * static_cast<double>(data.size())));
  while (out.kept.size() < min_keep && !out.removed.empty()) {
    out.kept.push_back(out.removed.back());
    out.removed.pop_back();
  }
  std::sort(out.kept.begin(), out.kept.end());
  std::sort(out.removed.begin(), out.removed.end());
  return out;
}

KMeansResult cluster_with_random_sampling(const Matrix& data, const KMeans& kmeans,
                                          double sample_fraction, std::uint64_t seed) {
  require_nonempty("cluster data", data.size());
  require_in_range("sample_fraction", sample_fraction, 0.05, 1.0);

  earsonar::Rng rng(seed);
  const std::size_t sample_size = std::max(
      kmeans.config().k,
      static_cast<std::size_t>(std::llround(sample_fraction * static_cast<double>(data.size()))));
  const std::vector<std::size_t> picked =
      rng.sample_without_replacement(data.size(), std::min(sample_size, data.size()));

  Matrix sample;
  sample.reserve(picked.size());
  for (std::size_t idx : picked) sample.push_back(data[idx]);

  KMeansResult fitted = kmeans.fit(sample);

  // Assign the full dataset to the sampled centroids.
  KMeansResult full;
  full.centroids = fitted.centroids;
  full.iterations = fitted.iterations;
  full.labels.resize(data.size());
  full.inertia = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    full.labels[i] = KMeans::predict(full.centroids, data[i]);
    full.inertia += squared_distance(data[i], full.centroids[full.labels[i]]);
  }
  return full;
}

}  // namespace earsonar::ml
