// Hungarian (Kuhn-Munkres) assignment. Used to map k-means cluster ids onto
// effusion-state labels optimally against the ground-truth contingency table
// when evaluating the unsupervised detector.
#pragma once

#include <cstddef>
#include <vector>

namespace earsonar::ml {

/// Solves min-cost perfect assignment on a square cost matrix.
/// Returns assignment[row] = column. O(n^3).
std::vector<std::size_t> hungarian_min_cost(
    const std::vector<std::vector<double>>& cost);

/// Convenience for cluster labeling: given counts[cluster][label], returns
/// the label assignment per cluster that *maximizes* total agreement.
std::vector<std::size_t> best_cluster_to_label(
    const std::vector<std::vector<std::size_t>>& counts);

}  // namespace earsonar::ml
