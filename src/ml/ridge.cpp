#include "ml/ridge.hpp"

#include <cmath>

#include "common/error.hpp"

namespace earsonar::ml {

RidgeRegression::RidgeRegression(RidgeConfig config) : config_(config) {
  require(config.lambda >= 0.0, "RidgeConfig: lambda must be >= 0");
}

std::vector<double> solve_linear_system(std::vector<std::vector<double>> a,
                                        std::vector<double> b) {
  const std::size_t n = a.size();
  require_nonempty("linear system", n);
  require(b.size() == n, "solve_linear_system: size mismatch");
  for (const auto& row : a)
    require(row.size() == n, "solve_linear_system: matrix must be square");

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    if (std::abs(a[pivot][col]) < 1e-12)
      throw std::invalid_argument("solve_linear_system: singular matrix");
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);

    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a[r][col] / a[col][col];
      for (std::size_t c = col; c < n; ++c) a[r][c] -= factor * a[col][c];
      b[r] -= factor * b[col];
    }
  }

  std::vector<double> x(n, 0.0);
  for (std::size_t r = n; r-- > 0;) {
    double acc = b[r];
    for (std::size_t c = r + 1; c < n; ++c) acc -= a[r][c] * x[c];
    x[r] = acc / a[r][r];
  }
  return x;
}

void RidgeRegression::fit(const Matrix& x, const std::vector<double>& y) {
  require_nonempty("RidgeRegression x", x.size());
  require(x.size() == y.size(), "RidgeRegression: x/y size mismatch");
  const std::size_t n = x.size();
  const std::size_t d = x.front().size();
  require_nonempty("RidgeRegression dimension", d);
  for (const auto& row : x)
    require(row.size() == d, "RidgeRegression: ragged matrix");

  // Normal equations over the augmented design [X | 1]; lambda penalizes
  // only the d weight coordinates.
  const std::size_t m = d + 1;
  std::vector<std::vector<double>> gram(m, std::vector<double>(m, 0.0));
  std::vector<double> rhs(m, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t a = 0; a < d; ++a) {
      for (std::size_t b = a; b < d; ++b) gram[a][b] += x[i][a] * x[i][b];
      gram[a][d] += x[i][a];
      rhs[a] += x[i][a] * y[i];
    }
    rhs[d] += y[i];
  }
  gram[d][d] = static_cast<double>(n);
  for (std::size_t a = 0; a < d; ++a) {
    gram[a][a] += config_.lambda;
    for (std::size_t b = 0; b < a; ++b) gram[a][b] = gram[b][a];
    gram[d][a] = gram[a][d];
  }

  const std::vector<double> solution = solve_linear_system(gram, rhs);
  weights_.assign(solution.begin(), solution.begin() + static_cast<std::ptrdiff_t>(d));
  intercept_ = solution[d];
}

double RidgeRegression::predict(const std::vector<double>& x) const {
  require(fitted(), "RidgeRegression: predict before fit");
  require(x.size() == weights_.size(), "RidgeRegression: dimension mismatch");
  double acc = intercept_;
  for (std::size_t j = 0; j < x.size(); ++j) acc += weights_[j] * x[j];
  return acc;
}

}  // namespace earsonar::ml
