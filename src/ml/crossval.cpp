#include "ml/crossval.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"

namespace earsonar::ml {

std::vector<Split> leave_one_group_out(const std::vector<std::size_t>& group_ids) {
  require_nonempty("group_ids", group_ids.size());
  std::vector<std::size_t> groups(group_ids);
  std::sort(groups.begin(), groups.end());
  groups.erase(std::unique(groups.begin(), groups.end()), groups.end());
  require(groups.size() >= 2, "leave_one_group_out: need >= 2 groups");

  std::vector<Split> splits;
  splits.reserve(groups.size());
  for (std::size_t g : groups) {
    Split split;
    for (std::size_t i = 0; i < group_ids.size(); ++i) {
      if (group_ids[i] == g) split.test.push_back(i);
      else split.train.push_back(i);
    }
    splits.push_back(std::move(split));
  }
  return splits;
}

std::vector<Split> k_fold(std::size_t sample_count, std::size_t folds, std::uint64_t seed) {
  require(folds >= 2, "k_fold: need >= 2 folds");
  require(sample_count >= folds, "k_fold: fewer samples than folds");
  earsonar::Rng rng(seed);
  const std::vector<std::size_t> order = rng.permutation(sample_count);

  std::vector<Split> splits(folds);
  for (std::size_t i = 0; i < sample_count; ++i) {
    const std::size_t fold = i % folds;
    for (std::size_t f = 0; f < folds; ++f) {
      if (f == fold) splits[f].test.push_back(order[i]);
      else splits[f].train.push_back(order[i]);
    }
  }
  for (Split& s : splits) {
    std::sort(s.train.begin(), s.train.end());
    std::sort(s.test.begin(), s.test.end());
  }
  return splits;
}

std::vector<std::size_t> stratified_subsample(const std::vector<std::size_t>& labels,
                                              double fraction, std::uint64_t seed) {
  require_nonempty("labels", labels.size());
  require_in_range("fraction", fraction, 0.0, 1.0);
  earsonar::Rng rng(seed);

  std::map<std::size_t, std::vector<std::size_t>> by_class;
  for (std::size_t i = 0; i < labels.size(); ++i) by_class[labels[i]].push_back(i);

  std::vector<std::size_t> kept;
  for (auto& [cls, indices] : by_class) {
    (void)cls;
    const std::size_t want = std::max<std::size_t>(
        1, static_cast<std::size_t>(fraction * static_cast<double>(indices.size()) + 0.5));
    rng.shuffle(indices);
    for (std::size_t i = 0; i < std::min(want, indices.size()); ++i)
      kept.push_back(indices[i]);
  }
  std::sort(kept.begin(), kept.end());
  return kept;
}

}  // namespace earsonar::ml
