#include "ml/metrics.hpp"

#include "common/error.hpp"

namespace earsonar::ml {

ConfusionMatrix::ConfusionMatrix(std::size_t classes)
    : counts_(classes, std::vector<std::size_t>(classes, 0)) {
  require(classes >= 2, "ConfusionMatrix: need >= 2 classes");
}

void ConfusionMatrix::add(std::size_t truth, std::size_t predicted, std::size_t count) {
  require(truth < classes() && predicted < classes(), "ConfusionMatrix::add: out of range");
  counts_[truth][predicted] += count;
}

std::size_t ConfusionMatrix::at(std::size_t truth, std::size_t predicted) const {
  require(truth < classes() && predicted < classes(), "ConfusionMatrix::at: out of range");
  return counts_[truth][predicted];
}

std::size_t ConfusionMatrix::total() const {
  std::size_t acc = 0;
  for (const auto& row : counts_)
    for (std::size_t v : row) acc += v;
  return acc;
}

std::size_t ConfusionMatrix::row_total(std::size_t truth) const {
  require(truth < classes(), "ConfusionMatrix::row_total: out of range");
  std::size_t acc = 0;
  for (std::size_t v : counts_[truth]) acc += v;
  return acc;
}

std::size_t ConfusionMatrix::column_total(std::size_t predicted) const {
  require(predicted < classes(), "ConfusionMatrix::column_total: out of range");
  std::size_t acc = 0;
  for (const auto& row : counts_) acc += row[predicted];
  return acc;
}

double ConfusionMatrix::accuracy() const {
  const std::size_t n = total();
  if (n == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t c = 0; c < classes(); ++c) correct += counts_[c][c];
  return static_cast<double>(correct) / static_cast<double>(n);
}

double ConfusionMatrix::precision(std::size_t cls) const {
  const std::size_t predicted = column_total(cls);
  if (predicted == 0) return 0.0;
  return static_cast<double>(counts_[cls][cls]) / static_cast<double>(predicted);
}

double ConfusionMatrix::recall(std::size_t cls) const {
  const std::size_t actual = row_total(cls);
  if (actual == 0) return 0.0;
  return static_cast<double>(counts_[cls][cls]) / static_cast<double>(actual);
}

double ConfusionMatrix::f1(std::size_t cls) const {
  const double p = precision(cls);
  const double r = recall(cls);
  if (p + r <= 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

double ConfusionMatrix::macro_precision() const {
  double acc = 0.0;
  for (std::size_t c = 0; c < classes(); ++c) acc += precision(c);
  return acc / static_cast<double>(classes());
}

double ConfusionMatrix::macro_recall() const {
  double acc = 0.0;
  for (std::size_t c = 0; c < classes(); ++c) acc += recall(c);
  return acc / static_cast<double>(classes());
}

double ConfusionMatrix::macro_f1() const {
  double acc = 0.0;
  for (std::size_t c = 0; c < classes(); ++c) acc += f1(c);
  return acc / static_cast<double>(classes());
}

double ConfusionMatrix::false_acceptance_rate(std::size_t cls) const {
  require(cls < classes(), "false_acceptance_rate: out of range");
  const std::size_t negatives = total() - row_total(cls);
  if (negatives == 0) return 0.0;
  const std::size_t fp = column_total(cls) - counts_[cls][cls];
  return static_cast<double>(fp) / static_cast<double>(negatives);
}

double ConfusionMatrix::false_rejection_rate(std::size_t cls) const {
  require(cls < classes(), "false_rejection_rate: out of range");
  const std::size_t positives = row_total(cls);
  if (positives == 0) return 0.0;
  const std::size_t fn = positives - counts_[cls][cls];
  return static_cast<double>(fn) / static_cast<double>(positives);
}

std::vector<std::vector<double>> ConfusionMatrix::row_normalized() const {
  std::vector<std::vector<double>> out(classes(), std::vector<double>(classes(), 0.0));
  for (std::size_t r = 0; r < classes(); ++r) {
    const std::size_t rt = row_total(r);
    if (rt == 0) continue;
    for (std::size_t c = 0; c < classes(); ++c)
      out[r][c] = static_cast<double>(counts_[r][c]) / static_cast<double>(rt);
  }
  return out;
}

void ConfusionMatrix::merge(const ConfusionMatrix& other) {
  require(other.classes() == classes(), "ConfusionMatrix::merge: class count mismatch");
  for (std::size_t r = 0; r < classes(); ++r)
    for (std::size_t c = 0; c < classes(); ++c) counts_[r][c] += other.counts_[r][c];
}

ConfusionMatrix confusion_from_labels(const std::vector<std::size_t>& truth,
                                      const std::vector<std::size_t>& predicted,
                                      std::size_t classes) {
  require(truth.size() == predicted.size(), "confusion_from_labels: size mismatch");
  ConfusionMatrix cm(classes);
  for (std::size_t i = 0; i < truth.size(); ++i) cm.add(truth[i], predicted[i]);
  return cm;
}

}  // namespace earsonar::ml
