// ROC analysis for binary screening (fluid vs no-fluid) — the task the
// prior-work baseline was originally evaluated on, added here as an
// extension so the reproduction can report AUC alongside the paper's
// four-state metrics.
#pragma once

#include <cstddef>
#include <vector>

namespace earsonar::ml {

struct RocPoint {
  double threshold = 0.0;
  double true_positive_rate = 0.0;
  double false_positive_rate = 0.0;
};

/// ROC curve for scores (higher = more positive) against binary labels.
/// Points are ordered from the most conservative threshold (0,0) to the most
/// permissive (1,1). Requires at least one positive and one negative label.
std::vector<RocPoint> roc_curve(const std::vector<double>& scores,
                                const std::vector<bool>& labels);

/// Area under the ROC curve via the Mann-Whitney statistic (ties counted
/// half). 0.5 = chance, 1.0 = perfect ranking.
double auc(const std::vector<double>& scores, const std::vector<bool>& labels);

/// The threshold on `scores` whose sensitivity+specificity sum (Youden's J)
/// is maximal.
double best_youden_threshold(const std::vector<double>& scores,
                             const std::vector<bool>& labels);

}  // namespace earsonar::ml
