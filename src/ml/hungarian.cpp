#include "ml/hungarian.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace earsonar::ml {

std::vector<std::size_t> hungarian_min_cost(
    const std::vector<std::vector<double>>& cost) {
  const std::size_t n = cost.size();
  require_nonempty("hungarian cost", n);
  for (const auto& row : cost)
    require(row.size() == n, "hungarian_min_cost: matrix must be square");

  // Classic O(n^3) potentials formulation (1-indexed internally).
  const double kInf = std::numeric_limits<double>::max() / 4;
  std::vector<double> u(n + 1, 0.0), v(n + 1, 0.0);
  std::vector<std::size_t> p(n + 1, 0), way(n + 1, 0);

  for (std::size_t i = 1; i <= n; ++i) {
    p[0] = i;
    std::size_t j0 = 0;
    std::vector<double> minv(n + 1, kInf);
    std::vector<bool> used(n + 1, false);
    do {
      used[j0] = true;
      const std::size_t i0 = p[j0];
      double delta = kInf;
      std::size_t j1 = 0;
      for (std::size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        const double cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (std::size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const std::size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<std::size_t> assignment(n, 0);
  for (std::size_t j = 1; j <= n; ++j)
    if (p[j] != 0) assignment[p[j] - 1] = j - 1;
  return assignment;
}

std::vector<std::size_t> best_cluster_to_label(
    const std::vector<std::vector<std::size_t>>& counts) {
  const std::size_t n = counts.size();
  require_nonempty("cluster counts", n);
  std::vector<std::vector<double>> cost(n, std::vector<double>(n, 0.0));
  for (std::size_t c = 0; c < n; ++c) {
    require(counts[c].size() == n, "best_cluster_to_label: matrix must be square");
    for (std::size_t l = 0; l < n; ++l)
      cost[c][l] = -static_cast<double>(counts[c][l]);  // maximize agreement
  }
  return hungarian_min_cost(cost);
}

}  // namespace earsonar::ml
