#include "ml/roc.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/error.hpp"

namespace earsonar::ml {

namespace {
void check_inputs(const std::vector<double>& scores, const std::vector<bool>& labels) {
  require(scores.size() == labels.size(), "roc: score/label size mismatch");
  require_nonempty("roc scores", scores.size());
  const std::size_t positives =
      static_cast<std::size_t>(std::count(labels.begin(), labels.end(), true));
  require(positives > 0 && positives < labels.size(),
          "roc: need at least one positive and one negative");
}
}  // namespace

std::vector<RocPoint> roc_curve(const std::vector<double>& scores,
                                const std::vector<bool>& labels) {
  check_inputs(scores, labels);
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] > scores[b]; });

  const double positives =
      static_cast<double>(std::count(labels.begin(), labels.end(), true));
  const double negatives = static_cast<double>(labels.size()) - positives;

  std::vector<RocPoint> curve;
  curve.push_back({std::numeric_limits<double>::infinity(), 0.0, 0.0});
  double tp = 0.0, fp = 0.0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (labels[order[i]]) tp += 1.0;
    else fp += 1.0;
    // Emit a point only when the next score differs (ties share a point).
    if (i + 1 == order.size() || scores[order[i + 1]] != scores[order[i]])
      curve.push_back({scores[order[i]], tp / positives, fp / negatives});
  }
  return curve;
}

double auc(const std::vector<double>& scores, const std::vector<bool>& labels) {
  check_inputs(scores, labels);
  // Mann-Whitney: P(score_pos > score_neg) + 0.5 P(tie).
  double wins = 0.0, total = 0.0;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (!labels[i]) continue;
    for (std::size_t j = 0; j < scores.size(); ++j) {
      if (labels[j]) continue;
      total += 1.0;
      if (scores[i] > scores[j]) wins += 1.0;
      else if (scores[i] == scores[j]) wins += 0.5;
    }
  }
  return wins / total;
}

double best_youden_threshold(const std::vector<double>& scores,
                             const std::vector<bool>& labels) {
  const std::vector<RocPoint> curve = roc_curve(scores, labels);
  double best_j = -1.0;
  double best_threshold = curve.front().threshold;
  for (const RocPoint& p : curve) {
    const double j = p.true_positive_rate - p.false_positive_rate;
    if (j > best_j) {
      best_j = j;
      best_threshold = p.threshold;
    }
  }
  return best_threshold;
}

}  // namespace earsonar::ml
