// Z-score feature standardization fitted on training data only.
#pragma once

#include <vector>

#include "ml/kmeans.hpp"

namespace earsonar::ml {

class StandardScaler {
 public:
  /// Learns per-column mean and standard deviation from `data`.
  void fit(const Matrix& data);

  /// (x - mean) / std per column; constant columns map to 0.
  [[nodiscard]] std::vector<double> transform(const std::vector<double>& row) const;
  [[nodiscard]] Matrix transform(const Matrix& data) const;

  [[nodiscard]] bool fitted() const { return !mean_.empty(); }
  [[nodiscard]] const std::vector<double>& means() const { return mean_; }
  [[nodiscard]] const std::vector<double>& stds() const { return std_; }

 private:
  std::vector<double> mean_;
  std::vector<double> std_;
};

}  // namespace earsonar::ml
