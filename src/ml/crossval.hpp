// Cross-validation splitters. The paper's headline evaluation is
// leave-one-participant-out CV over 112 subjects (§VI-A); the training-size
// study (Fig. 15b) uses stratified subsampling.
#pragma once

#include <cstddef>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"

namespace earsonar::ml {

struct Split {
  std::vector<std::size_t> train;  ///< sample indices
  std::vector<std::size_t> test;
};

/// Runs fn(split) for every split on the shared thread pool and returns the
/// results in split order — deterministic at every thread count, since each
/// fold writes only its own slot. fn must be callable concurrently.
template <typename Fn>
auto map_splits(const std::vector<Split>& splits, Fn&& fn, std::size_t threads = 0) {
  using Result = decltype(fn(splits.front()));
  std::vector<Result> out(splits.size());
  parallel_for(
      splits.size(), [&](std::size_t i) { out[i] = fn(splits[i]); }, threads);
  return out;
}

/// Leave-one-group-out: one split per distinct group id, testing that group.
/// Groups are participant ids in the paper's LOOCV.
std::vector<Split> leave_one_group_out(const std::vector<std::size_t>& group_ids);

/// k-fold over samples (shuffled, deterministic in `seed`).
std::vector<Split> k_fold(std::size_t sample_count, std::size_t folds, std::uint64_t seed);

/// Stratified subsample: keeps `fraction` of each class's samples (at least
/// one per non-empty class). Returns kept indices.
std::vector<std::size_t> stratified_subsample(const std::vector<std::size_t>& labels,
                                              double fraction, std::uint64_t seed);

}  // namespace earsonar::ml
