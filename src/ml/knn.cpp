#include "ml/knn.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace earsonar::ml {

KnnClassifier::KnnClassifier(std::size_t k) : k_(k) {
  require(k >= 1, "KnnClassifier: k must be >= 1");
}

void KnnClassifier::fit(Matrix x, std::vector<std::size_t> y) {
  require_nonempty("KnnClassifier x", x.size());
  require(x.size() == y.size(), "KnnClassifier: x/y size mismatch");
  train_x_ = std::move(x);
  train_y_ = std::move(y);
}

std::size_t KnnClassifier::predict(const std::vector<double>& x) const {
  require(fitted(), "KnnClassifier: predict before fit");
  const std::size_t k = std::min(k_, train_x_.size());

  std::vector<std::size_t> order(train_x_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k),
                    order.end(), [&](std::size_t a, std::size_t b) {
                      return squared_distance(train_x_[a], x) <
                             squared_distance(train_x_[b], x);
                    });

  std::vector<std::size_t> votes;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t label = train_y_[order[i]];
    if (label >= votes.size()) votes.resize(label + 1, 0);
    votes[label]++;
  }
  return static_cast<std::size_t>(std::max_element(votes.begin(), votes.end()) -
                                  votes.begin());
}

}  // namespace earsonar::ml
