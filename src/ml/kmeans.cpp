#include "ml/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace earsonar::ml {

double squared_distance(const std::vector<double>& a, const std::vector<double>& b) {
  require(a.size() == b.size(), "squared_distance: dimension mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

double euclidean_distance(const std::vector<double>& a, const std::vector<double>& b) {
  return std::sqrt(squared_distance(a, b));
}

KMeans::KMeans(KMeansConfig config) : config_(config) {
  require(config.k >= 1, "KMeans: k must be >= 1");
  require(config.max_iterations >= 1, "KMeans: max_iterations must be >= 1");
  require(config.restarts >= 1, "KMeans: restarts must be >= 1");
  require(config.tolerance >= 0.0, "KMeans: tolerance must be >= 0");
}

Matrix KMeans::seed_plus_plus(const Matrix& data, earsonar::Rng& rng) const {
  Matrix centroids;
  centroids.reserve(config_.k);
  centroids.push_back(
      data[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(data.size()) - 1))]);

  std::vector<double> dist2(data.size(), std::numeric_limits<double>::max());
  while (centroids.size() < config_.k) {
    for (std::size_t i = 0; i < data.size(); ++i)
      dist2[i] = std::min(dist2[i], squared_distance(data[i], centroids.back()));
    double total = 0.0;
    for (double d : dist2) total += d;
    if (total <= 0.0) {
      // All remaining points coincide with chosen centroids; duplicate one.
      centroids.push_back(centroids.back());
      continue;
    }
    centroids.push_back(data[rng.weighted_index(dist2)]);
  }
  return centroids;
}

KMeansResult KMeans::fit_with_init(const Matrix& data,
                                   const Matrix& initial_centroids) const {
  require_nonempty("KMeans data", data.size());
  require(initial_centroids.size() == config_.k,
          "fit_with_init: need exactly k initial centroids");
  const std::size_t d = data.front().size();
  for (const auto& row : data)
    require(row.size() == d, "KMeans: ragged data matrix");
  for (const auto& c : initial_centroids)
    require(c.size() == d, "fit_with_init: centroid dimension mismatch");
  return lloyd(data, initial_centroids);
}

KMeansResult KMeans::fit_once(const Matrix& data, earsonar::Rng& rng) const {
  return lloyd(data, seed_plus_plus(data, rng));
}

KMeansResult KMeans::lloyd(const Matrix& data, Matrix initial_centroids) const {
  const std::size_t n = data.size();
  const std::size_t d = data.front().size();

  KMeansResult result;
  result.centroids = std::move(initial_centroids);
  result.labels.assign(n, 0);

  for (std::size_t iter = 0; iter < config_.max_iterations; ++iter) {
    result.iterations = iter + 1;

    // Assignment step.
    for (std::size_t i = 0; i < n; ++i)
      result.labels[i] = predict(result.centroids, data[i]);

    // Update step.
    Matrix next(config_.k, std::vector<double>(d, 0.0));
    std::vector<std::size_t> counts(config_.k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      counts[result.labels[i]]++;
      for (std::size_t j = 0; j < d; ++j) next[result.labels[i]][j] += data[i][j];
    }
    for (std::size_t c = 0; c < config_.k; ++c) {
      if (counts[c] == 0) {
        // Empty-cluster repair: reseed at the point farthest from its centroid.
        std::size_t worst = 0;
        double worst_d = -1.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double di = squared_distance(data[i], result.centroids[result.labels[i]]);
          if (di > worst_d) {
            worst_d = di;
            worst = i;
          }
        }
        next[c] = data[worst];
      } else {
        for (std::size_t j = 0; j < d; ++j)
          next[c][j] /= static_cast<double>(counts[c]);
      }
    }

    double shift = 0.0;
    for (std::size_t c = 0; c < config_.k; ++c)
      shift += squared_distance(next[c], result.centroids[c]);
    result.centroids = std::move(next);
    if (shift < config_.tolerance) break;
  }

  // Final assignment + inertia.
  result.inertia = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    result.labels[i] = predict(result.centroids, data[i]);
    result.inertia += squared_distance(data[i], result.centroids[result.labels[i]]);
  }
  return result;
}

KMeansResult KMeans::fit(const Matrix& data) const {
  require_nonempty("KMeans data", data.size());
  require(data.size() >= config_.k, "KMeans: fewer points than clusters");
  const std::size_t d = data.front().size();
  require_nonempty("KMeans feature dimension", d);
  for (const auto& row : data)
    require(row.size() == d, "KMeans: ragged data matrix");

  earsonar::Rng rng(config_.seed);
  KMeansResult best;
  best.inertia = std::numeric_limits<double>::max();
  for (std::size_t r = 0; r < config_.restarts; ++r) {
    earsonar::Rng run = rng.fork(r);
    KMeansResult candidate = fit_once(data, run);
    if (candidate.inertia < best.inertia) best = std::move(candidate);
  }
  return best;
}

std::size_t KMeans::predict(const Matrix& centroids, const std::vector<double>& point) {
  require_nonempty("KMeans centroids", centroids.size());
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::max();
  for (std::size_t c = 0; c < centroids.size(); ++c) {
    const double d = squared_distance(centroids[c], point);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

}  // namespace earsonar::ml
