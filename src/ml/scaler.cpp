#include "ml/scaler.hpp"

#include <cmath>

#include "common/error.hpp"

namespace earsonar::ml {

void StandardScaler::fit(const Matrix& data) {
  require_nonempty("StandardScaler data", data.size());
  const std::size_t d = data.front().size();
  require_nonempty("StandardScaler dimension", d);
  for (const auto& row : data)
    require(row.size() == d, "StandardScaler: ragged matrix");

  mean_.assign(d, 0.0);
  std_.assign(d, 0.0);
  for (const auto& row : data)
    for (std::size_t j = 0; j < d; ++j) mean_[j] += row[j];
  for (double& m : mean_) m /= static_cast<double>(data.size());
  for (const auto& row : data)
    for (std::size_t j = 0; j < d; ++j) {
      const double diff = row[j] - mean_[j];
      std_[j] += diff * diff;
    }
  for (double& s : std_) s = std::sqrt(s / static_cast<double>(data.size()));
}

std::vector<double> StandardScaler::transform(const std::vector<double>& row) const {
  require(fitted(), "StandardScaler: transform before fit");
  require(row.size() == mean_.size(), "StandardScaler: dimension mismatch");
  std::vector<double> out(row.size());
  for (std::size_t j = 0; j < row.size(); ++j)
    out[j] = std_[j] > 1e-12 ? (row[j] - mean_[j]) / std_[j] : 0.0;
  return out;
}

Matrix StandardScaler::transform(const Matrix& data) const {
  Matrix out;
  out.reserve(data.size());
  for (const auto& row : data) out.push_back(transform(row));
  return out;
}

}  // namespace earsonar::ml
