// Outlier handling for clustering (paper §IV-C4): distance-based removal
// validated over multiple clustering loops, and random-subsample clustering
// that fits centroids on a noise-diluted sample and assigns the rest.
#pragma once

#include <cstddef>
#include <vector>

#include "ml/kmeans.hpp"

namespace earsonar::ml {

struct OutlierConfig {
  double distance_sigma = 2.5;   ///< flag points beyond mean + sigma * std
  std::size_t max_loops = 3;     ///< paper: "monitor over multiple loops"
  double min_keep_fraction = 0.8;///< never discard more than this share
  /// Clusters holding at most this fraction of the data are treated as
  /// outlier clusters and flagged wholesale — a far-away point otherwise
  /// "steals" a centroid and sits at zero distance from it.
  double tiny_cluster_fraction = 0.02;
};

struct OutlierResult {
  std::vector<std::size_t> kept;     ///< indices retained
  std::vector<std::size_t> removed;  ///< indices flagged as outliers
};

/// Strategy 1 of the paper: iteratively cluster, flag points whose distance
/// to their centroid exceeds mean + sigma*std in *every* loop, remove them.
OutlierResult remove_outliers_by_distance(const Matrix& data, const KMeans& kmeans,
                                          const OutlierConfig& config = {});

/// Strategy 2 of the paper: fit centroids on a random `sample_fraction` of
/// the data (noise is unlikely to be sampled), then assign every point to the
/// fitted centroids. Returns the full-data labels and the fitted centroids.
KMeansResult cluster_with_random_sampling(const Matrix& data, const KMeans& kmeans,
                                          double sample_fraction, std::uint64_t seed);

}  // namespace earsonar::ml
