// Multiclass (softmax) logistic regression — the supervised classifier behind
// the Chan-et-al.-style baseline detector (prior work the paper beats by ~8%).
#pragma once

#include <cstddef>
#include <vector>

#include "ml/kmeans.hpp"

namespace earsonar::ml {

struct LogisticConfig {
  std::size_t classes = 4;
  std::size_t epochs = 300;
  double learning_rate = 0.1;
  double l2 = 1e-3;
  std::uint64_t seed = 11;
};

class LogisticRegression {
 public:
  explicit LogisticRegression(LogisticConfig config = {});

  /// Full-batch gradient descent on the cross-entropy objective.
  void fit(const Matrix& x, const std::vector<std::size_t>& y);

  /// Per-class probabilities for one sample.
  [[nodiscard]] std::vector<double> predict_proba(const std::vector<double>& x) const;

  /// argmax class for one sample.
  [[nodiscard]] std::size_t predict(const std::vector<double>& x) const;

  [[nodiscard]] bool fitted() const { return !weights_.empty(); }
  [[nodiscard]] const LogisticConfig& config() const { return config_; }

 private:
  LogisticConfig config_;
  Matrix weights_;             // classes x features
  std::vector<double> bias_;   // classes
};

}  // namespace earsonar::ml
