// Ridge (L2-regularized least-squares) regression — the head behind the
// continuous severity estimator. Solved in closed form via Gaussian
// elimination on the (d+1)-dimensional normal equations.
#pragma once

#include <vector>

#include "ml/kmeans.hpp"

namespace earsonar::ml {

struct RidgeConfig {
  double lambda = 1e-2;  ///< L2 penalty on the weights (not the intercept)
};

class RidgeRegression {
 public:
  explicit RidgeRegression(RidgeConfig config = {});

  /// Fits weights + intercept minimizing ||Xw + b - y||^2 + lambda ||w||^2.
  void fit(const Matrix& x, const std::vector<double>& y);

  [[nodiscard]] double predict(const std::vector<double>& x) const;
  [[nodiscard]] bool fitted() const { return !weights_.empty(); }
  [[nodiscard]] const std::vector<double>& weights() const { return weights_; }
  [[nodiscard]] double intercept() const { return intercept_; }

 private:
  RidgeConfig config_;
  std::vector<double> weights_;
  double intercept_ = 0.0;
};

/// Solves the square linear system a*x = b by Gaussian elimination with
/// partial pivoting; throws std::invalid_argument on singular systems.
/// Exposed for tests.
std::vector<double> solve_linear_system(std::vector<std::vector<double>> a,
                                        std::vector<double> b);

}  // namespace earsonar::ml
