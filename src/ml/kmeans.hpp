// k-means clustering (paper §IV-C3): k-means++ seeding, Lloyd iterations,
// empty-cluster repair, multiple restarts keeping the lowest inertia.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace earsonar::ml {

/// Row-major dataset: samples[i] is one feature vector; all rows equal length.
using Matrix = std::vector<std::vector<double>>;

struct KMeansConfig {
  std::size_t k = 4;
  std::size_t max_iterations = 100;
  double tolerance = 1e-6;   ///< stop when centroid movement^2 falls below
  std::size_t restarts = 8;  ///< independent runs; best inertia wins
  std::uint64_t seed = 7;
};

struct KMeansResult {
  Matrix centroids;                 ///< k rows
  std::vector<std::size_t> labels;  ///< cluster id per input row
  double inertia = 0.0;             ///< sum of squared distances to centroids
  std::size_t iterations = 0;       ///< iterations of the winning restart
};

/// Squared Euclidean distance between equal-length vectors.
double squared_distance(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean distance (Eq. 11 of the paper).
double euclidean_distance(const std::vector<double>& a, const std::vector<double>& b);

class KMeans {
 public:
  explicit KMeans(KMeansConfig config = {});

  /// Clusters `data` (n rows, d columns, n >= k). Deterministic for a fixed
  /// config seed.
  [[nodiscard]] KMeansResult fit(const Matrix& data) const;

  /// Clusters `data` starting from the given initial centroids (size k) —
  /// the paper's "given k initial cluster center points" variant, seeded from
  /// the per-state means of the training data. Runs Lloyd iterations once
  /// (no random restarts needed with an informed start).
  [[nodiscard]] KMeansResult fit_with_init(const Matrix& data,
                                           const Matrix& initial_centroids) const;

  /// Index of the closest centroid to `point`.
  static std::size_t predict(const Matrix& centroids, const std::vector<double>& point);

  [[nodiscard]] const KMeansConfig& config() const { return config_; }

 private:
  KMeansResult fit_once(const Matrix& data, earsonar::Rng& rng) const;
  KMeansResult lloyd(const Matrix& data, Matrix initial_centroids) const;
  Matrix seed_plus_plus(const Matrix& data, earsonar::Rng& rng) const;

  KMeansConfig config_;
};

}  // namespace earsonar::ml
