// Online change-point detection over a subject's notch-depth trajectory.
//
// The paper's longitudinal claim is that the 18 kHz notch tracks recovery:
// fluid behind the drum pulls the drum resonance toward (and through) the
// probe band, shifting the in-band reflectance-notch depth away from the
// subject's healthy baseline at onset and back at resolution. The shift's
// direction depends on where the fluid-loaded resonance lands relative to
// the band, so this module watches the series *online* — one session at a
// time, as a deployed screening app would — with a two-sided CUSUM:
//
//   baseline:  mu, sigma from the first `baseline_sessions` observations
//              (median / scaled MAD, robust to a stray bad session), then
//              refined with every in-control observation until the first
//              alarm, so the initial small-sample mu error does not
//              accumulate into false alarms (self-starting phase; learning
//              freezes once a regime change is seen, else the baseline would
//              track slow recovery ramps and swallow the resolution shift);
//   per step:  z    = (x - mu) / sigma
//              S_hi = max(0, S_hi + z - k)     (upward drift accumulator)
//              S_lo = max(0, S_lo - z - k)     (downward drift accumulator)
//   alarm:     S_hi > h  -> upward alarm (onset-like shift)
//              S_lo > h  -> downward alarm (resolution-like shift)
//
// k (the slack) absorbs session-to-session jitter; h (the threshold) sets the
// false-alarm / delay trade-off (both in sigma units, the classic CUSUM
// parameterization). After an alarm the detector re-anchors mu on the most
// recent observations and clears both accumulators, so the *next* transition
// of the arc (resolution after onset, relapse after resolution) is detected
// against the new regime rather than the stale baseline.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace earsonar::longitudinal {

struct CusumConfig {
  /// Sessions used to establish the per-subject baseline before the detector
  /// arms. With the twice-daily cadence, 6 sessions = 3 days of baseline.
  std::size_t baseline_sessions = 6;
  /// h / k in sigma units: the textbook CUSUM operating point (k = 0.5
  /// targets 1-sigma shifts, h = 5 sets the in-control run length). On the
  /// reference trajectory cohort this detects ~2/3 of scorable onsets at a
  /// mean delay of ~4 sessions (see tests/longitudinal_test.cpp golden).
  double threshold = 5.0;    ///< h: alarm when an accumulator exceeds this
  double drift = 0.5;        ///< k: per-step slack, absorbs jitter
  double min_sigma_db = 0.2; ///< floor on the baseline spread estimate
  /// Observations averaged to re-anchor the reference level after an alarm.
  std::size_t rebase_sessions = 5;

  void validate() const;
};

/// Robust per-subject baseline: median and scaled-MAD spread.
struct Baseline {
  double mu = 0.0;
  double sigma = 0.0;
};

/// Robust baseline over the whole span (median + scaled MAD); sigma is
/// floored at min_sigma_db. The detector feeds it the first
/// baseline_sessions observations to arm, then every in-control
/// observation until the first alarm (see CusumDetector::observe).
Baseline estimate_baseline(std::span<const double> series, const CusumConfig& config);

/// A directional alarm raised by the detector.
struct Alarm {
  std::uint32_t session = 0;  ///< 0-based index of the observation that fired
  bool upward = false;        ///< true: feature rose (onset-like)
};

/// The online detector. Feed observations in session order; it arms itself
/// after `baseline_sessions` and reports at most one alarm per observation.
class CusumDetector {
 public:
  explicit CusumDetector(CusumConfig config = {});

  /// Forgets everything; the next observe() starts a new baseline window.
  void reset();

  /// Consumes the next observation; returns the alarm it raised, if any.
  std::optional<Alarm> observe(double value);

  /// Offline convenience: reset, then observe the whole series.
  std::vector<Alarm> detect(std::span<const double> series);

  [[nodiscard]] const CusumConfig& config() const { return config_; }
  /// The baseline in force (meaningful once armed).
  [[nodiscard]] Baseline baseline() const { return baseline_; }
  [[nodiscard]] bool armed() const { return armed_; }

 private:
  CusumConfig config_;
  std::vector<double> window_;  ///< baseline (then rebase) collection buffer
  Baseline baseline_;
  bool armed_ = false;
  bool alarmed_ = false;  ///< a first alarm has fired (learning frozen)
  double s_hi_ = 0.0;
  double s_lo_ = 0.0;
  std::uint32_t session_ = 0;
  std::vector<double> recent_;  ///< last rebase_sessions observations
};

}  // namespace earsonar::longitudinal
