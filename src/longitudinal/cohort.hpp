// Cohort-scale longitudinal analysis: run the online change-point detector
// over every subject's notch-depth trajectory and score its alarms against
// the simulator's ground-truth onset/resolution change points.
//
// Matching discipline: alarms and change points are both in session order.
// A ground-truth change point is *detected* by the first same-direction alarm
// that fires at or after it, before the next ground-truth change point of
// either direction (an alarm for the previous regime that arrives after the
// regime already changed again is not credit), and within `match_window`
// sessions. Detection delay is alarm session minus change-point session.
// Every alarm left unmatched is a false alarm. Change points inside the
// detector's baseline window can never be detected and are reported in the
// `unscorable` tally instead of silently inflating the miss rate.
//
// Analysis is parallel over subjects (each subject's detector run is
// independent) with per-slot writes, so the report is bit-identical at every
// thread count.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "longitudinal/cpd.hpp"
#include "sim/trajectory.hpp"

namespace earsonar::longitudinal {

struct CohortAnalysisConfig {
  CusumConfig cusum;
  /// Max sessions between a change point and its matching alarm.
  std::size_t match_window = 12;
  /// Worker threads (0 = auto, see common/parallel.hpp).
  std::size_t threads = 0;

  void validate() const;
};

/// One subject's scored detector run.
struct SubjectCpdResult {
  std::uint32_t subject_id = 0;
  std::vector<Alarm> alarms;
  std::size_t true_onsets = 0;
  std::size_t detected_onsets = 0;
  std::size_t true_resolutions = 0;
  std::size_t detected_resolutions = 0;
  std::size_t false_alarms = 0;
  /// Change points inside the baseline window, split by direction — they can
  /// never be detected, so detection rates must be computed over the
  /// scorable remainder (true - unscorable), not the raw truth count.
  std::size_t unscorable_onsets = 0;
  std::size_t unscorable_resolutions = 0;
  /// Summed detection delays (sessions) over the detected subsets.
  double onset_delay_sessions = 0.0;
  double resolution_delay_sessions = 0.0;
};

/// Aggregate over the cohort.
struct CohortCpdReport {
  std::size_t subjects = 0;
  std::size_t sessions = 0;  ///< total observations fed to detectors
  std::size_t true_onsets = 0;
  std::size_t detected_onsets = 0;
  std::size_t true_resolutions = 0;
  std::size_t detected_resolutions = 0;
  std::size_t false_alarms = 0;
  std::size_t unscorable_onsets = 0;
  std::size_t unscorable_resolutions = 0;
  /// Mean detection delay in sessions over detected change points
  /// (NaN when nothing was detected — no delay claim without evidence).
  double mean_onset_delay_sessions = 0.0;
  double mean_resolution_delay_sessions = 0.0;
  double false_alarms_per_100_sessions = 0.0;

  /// Detection rates over the scorable denominators (NaN when none).
  [[nodiscard]] double onset_detection_rate() const;
  [[nodiscard]] double resolution_detection_rate() const;

  [[nodiscard]] std::string text() const;
};

/// Scores one subject's trajectory with a fresh detector.
SubjectCpdResult analyze_subject(const sim::SubjectTrajectory& trajectory,
                                 const CohortAnalysisConfig& config);

/// Runs analyze_subject over the whole cohort in parallel and aggregates.
CohortCpdReport analyze_cohort(const std::vector<sim::SubjectTrajectory>& cohort,
                               const CohortAnalysisConfig& config);

}  // namespace earsonar::longitudinal
