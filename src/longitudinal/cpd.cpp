#include "longitudinal/cpd.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace earsonar::longitudinal {

namespace {

double median_of(std::vector<double> values) {
  const std::size_t n = values.size();
  const std::size_t mid = n / 2;
  std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid),
                   values.end());
  double m = values[mid];
  if (n % 2 == 0) {
    const auto lower = std::max_element(
        values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid));
    m = 0.5 * (m + *lower);
  }
  return m;
}

}  // namespace

void CusumConfig::validate() const {
  require(baseline_sessions >= 2,
          "CusumConfig: baseline_sessions must be >= 2");
  require(threshold > 0.0, "CusumConfig: threshold must be > 0");
  require(drift >= 0.0, "CusumConfig: drift must be >= 0");
  require(min_sigma_db > 0.0, "CusumConfig: min_sigma_db must be > 0");
  require(rebase_sessions >= 1, "CusumConfig: rebase_sessions must be >= 1");
}

Baseline estimate_baseline(std::span<const double> series, const CusumConfig& config) {
  require_nonempty("estimate_baseline series", series.size());
  std::vector<double> values(series.begin(), series.end());
  Baseline baseline;
  baseline.mu = median_of(values);
  std::vector<double> deviations;
  deviations.reserve(values.size());
  for (double v : values) deviations.push_back(std::abs(v - baseline.mu));
  // 1.4826 scales MAD to the standard deviation of a Gaussian.
  baseline.sigma = std::max(config.min_sigma_db, 1.4826 * median_of(deviations));
  return baseline;
}

CusumDetector::CusumDetector(CusumConfig config) : config_(config) {
  config_.validate();
  window_.reserve(config_.baseline_sessions);
}

void CusumDetector::reset() {
  window_.clear();
  baseline_ = Baseline{};
  armed_ = false;
  alarmed_ = false;
  s_hi_ = 0.0;
  s_lo_ = 0.0;
  session_ = 0;
  recent_.clear();
}

std::optional<Alarm> CusumDetector::observe(double value) {
  const std::uint32_t session = session_++;
  recent_.push_back(value);
  if (recent_.size() > config_.rebase_sessions)
    recent_.erase(recent_.begin());

  if (!armed_) {
    window_.push_back(value);
    if (window_.size() < config_.baseline_sessions) return std::nullopt;
    baseline_ = estimate_baseline(window_, config_);
    armed_ = true;
    return std::nullopt;  // baseline sessions themselves never alarm
  }

  const double z = (value - baseline_.mu) / baseline_.sigma;
  s_hi_ = std::max(0.0, s_hi_ + z - config_.drift);
  s_lo_ = std::max(0.0, s_lo_ - z - config_.drift);
  const bool up = s_hi_ > config_.threshold;
  const bool down = s_lo_ > config_.threshold;
  if (!up && !down) {
    // Self-starting phase: a baseline estimated from only baseline_sessions
    // observations carries a mu error of order sigma / sqrt(n), which a
    // zero-drift CUSUM integrates into false alarms over a long in-control
    // stretch. Until the first alarm, absorb every no-alarm observation and
    // re-estimate, shrinking that error as the healthy run grows. Two
    // boundaries matter: (1) absorption must not be gated on the
    // accumulators sitting at zero — that censors the window toward small
    // values and walks mu off the true level; (2) learning must freeze at
    // the first alarm — a baseline that keeps adapting inside the fluid
    // regime tracks the slow recovery ramp and swallows the resolution
    // shift it exists to detect. (Shifted observations absorbed during the
    // first alarm's detection delay barely move the median, and that alarm
    // restarts the window anyway.)
    if (!alarmed_) {
      window_.push_back(value);
      baseline_ = estimate_baseline(window_, config_);
    }
    return std::nullopt;
  }

  // Both sides past threshold on one step is pathological; report the larger.
  const bool upward = up && (!down || s_hi_ >= s_lo_);
  // Re-anchor on the new regime: the recent observations straddle the shift,
  // so their mean is a serviceable reference for detecting the next reversal.
  // The estimation window restarts from them too, so in-control absorption
  // re-learns the new regime instead of mixing in the old one.
  double sum = 0.0;
  for (double v : recent_) sum += v;
  baseline_.mu = sum / static_cast<double>(recent_.size());
  window_ = recent_;
  alarmed_ = true;
  s_hi_ = 0.0;
  s_lo_ = 0.0;
  return Alarm{session, upward};
}

std::vector<Alarm> CusumDetector::detect(std::span<const double> series) {
  reset();
  std::vector<Alarm> alarms;
  for (double value : series)
    if (std::optional<Alarm> alarm = observe(value)) alarms.push_back(*alarm);
  return alarms;
}

}  // namespace earsonar::longitudinal
