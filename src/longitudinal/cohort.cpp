#include "longitudinal/cohort.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace earsonar::longitudinal {

void CohortAnalysisConfig::validate() const {
  cusum.validate();
  require(match_window >= 1, "CohortAnalysisConfig: match_window must be >= 1");
}

SubjectCpdResult analyze_subject(const sim::SubjectTrajectory& trajectory,
                                 const CohortAnalysisConfig& config) {
  config.validate();
  SubjectCpdResult result;
  result.subject_id = trajectory.subject_id;

  std::vector<double> series;
  series.reserve(trajectory.sessions.size());
  for (const sim::TrajectorySession& point : trajectory.sessions)
    series.push_back(point.notch_depth_db);

  CusumDetector detector(config.cusum);
  result.alarms = detector.detect(series);

  // Greedy in-order matching: each change point claims the first unclaimed
  // same-direction alarm in its eligibility span.
  std::vector<bool> claimed(result.alarms.size(), false);
  const std::vector<sim::ChangePoint>& truth = trajectory.change_points;
  for (std::size_t c = 0; c < truth.size(); ++c) {
    const sim::ChangePoint& cp = truth[c];
    const bool onset = cp.onset;
    if (onset)
      ++result.true_onsets;
    else
      ++result.true_resolutions;
    // A shift fully inside the baseline window is invisible by construction.
    if (cp.session < config.cusum.baseline_sessions) {
      if (onset)
        ++result.unscorable_onsets;
      else
        ++result.unscorable_resolutions;
      continue;
    }
    // Eligibility ends at the next ground-truth change point (the regime the
    // alarm would be evidence of no longer holds) or after match_window.
    std::uint32_t end = cp.session + static_cast<std::uint32_t>(config.match_window);
    if (c + 1 < truth.size()) end = std::min(end, truth[c + 1].session);
    for (std::size_t a = 0; a < result.alarms.size(); ++a) {
      const Alarm& alarm = result.alarms[a];
      if (claimed[a] || alarm.upward != onset) continue;
      if (alarm.session < cp.session || alarm.session >= end) continue;
      claimed[a] = true;
      if (onset) {
        ++result.detected_onsets;
        result.onset_delay_sessions += alarm.session - cp.session;
      } else {
        ++result.detected_resolutions;
        result.resolution_delay_sessions += alarm.session - cp.session;
      }
      break;
    }
  }
  for (bool c : claimed)
    if (!c) ++result.false_alarms;
  return result;
}

CohortCpdReport analyze_cohort(const std::vector<sim::SubjectTrajectory>& cohort,
                               const CohortAnalysisConfig& config) {
  config.validate();
  std::vector<SubjectCpdResult> results(cohort.size());
  parallel_for(
      cohort.size(),
      [&](std::size_t i) { results[i] = analyze_subject(cohort[i], config); },
      config.threads);

  CohortCpdReport report;
  report.subjects = cohort.size();
  double onset_delay = 0.0;
  double resolution_delay = 0.0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SubjectCpdResult& r = results[i];
    report.sessions += cohort[i].sessions.size();
    report.true_onsets += r.true_onsets;
    report.detected_onsets += r.detected_onsets;
    report.true_resolutions += r.true_resolutions;
    report.detected_resolutions += r.detected_resolutions;
    report.false_alarms += r.false_alarms;
    report.unscorable_onsets += r.unscorable_onsets;
    report.unscorable_resolutions += r.unscorable_resolutions;
    onset_delay += r.onset_delay_sessions;
    resolution_delay += r.resolution_delay_sessions;
  }
  report.mean_onset_delay_sessions =
      report.detected_onsets > 0
          ? onset_delay / static_cast<double>(report.detected_onsets)
          : std::numeric_limits<double>::quiet_NaN();
  report.mean_resolution_delay_sessions =
      report.detected_resolutions > 0
          ? resolution_delay / static_cast<double>(report.detected_resolutions)
          : std::numeric_limits<double>::quiet_NaN();
  report.false_alarms_per_100_sessions =
      report.sessions > 0
          ? 100.0 * static_cast<double>(report.false_alarms) /
                static_cast<double>(report.sessions)
          : 0.0;
  return report;
}

double CohortCpdReport::onset_detection_rate() const {
  const std::size_t scorable = true_onsets - unscorable_onsets;
  return scorable > 0 ? static_cast<double>(detected_onsets) /
                            static_cast<double>(scorable)
                      : std::numeric_limits<double>::quiet_NaN();
}

double CohortCpdReport::resolution_detection_rate() const {
  const std::size_t scorable = true_resolutions - unscorable_resolutions;
  return scorable > 0 ? static_cast<double>(detected_resolutions) /
                            static_cast<double>(scorable)
                      : std::numeric_limits<double>::quiet_NaN();
}

std::string CohortCpdReport::text() const {
  std::ostringstream out;
  const auto rate = [](double r) {
    if (std::isnan(r)) return std::string("n/a");
    std::ostringstream s;
    s << 100.0 * r << "%";
    return s.str();
  };
  const auto delay = [](double d) {
    if (std::isnan(d)) return std::string("n/a");
    std::ostringstream r;
    r << d << " sessions";
    return r.str();
  };
  out << "subjects: " << subjects << ", sessions: " << sessions << "\n";
  out << "onsets: " << detected_onsets << "/"
      << (true_onsets - unscorable_onsets) << " scorable detected ("
      << rate(onset_detection_rate()) << ", " << unscorable_onsets
      << " of " << true_onsets << " inside the baseline window), mean delay "
      << delay(mean_onset_delay_sessions) << "\n";
  out << "resolutions: " << detected_resolutions << "/"
      << (true_resolutions - unscorable_resolutions) << " scorable detected ("
      << rate(resolution_detection_rate()) << ", " << unscorable_resolutions
      << " of " << true_resolutions
      << " inside the baseline window), mean delay "
      << delay(mean_resolution_delay_sessions) << "\n";
  out << "false alarms: " << false_alarms << " ("
      << false_alarms_per_100_sessions << " per 100 sessions)\n";
  return out.str();
}

}  // namespace earsonar::longitudinal
