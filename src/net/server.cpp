#include "net/server.hpp"

#include <sstream>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"

namespace earsonar::net {

void NetServerConfig::validate() const {
  require(max_connections >= 1, "NetServerConfig: max_connections must be >= 1");
  require(accept_poll_ms >= 1, "NetServerConfig: accept_poll_ms must be >= 1");
  require(default_deadline_ms >= 0.0,
          "NetServerConfig: default_deadline_ms must be >= 0");
  shards.validate();
}

NetServer::NetServer(NetServerConfig config)
    : config_(std::move(config)), pool_(config_.shards) {
  config_.validate();
}

NetServer::~NetServer() { stop(); }

void NetServer::start() {
  if (running_.exchange(true)) return;
  listener_ = TcpListener::bind(config_.host, config_.port);
  pool_.start();
  accept_thread_ = std::thread([this] { accept_loop(); });
  log_info("net: serving on ", config_.host, ":", listener_.port(), " (",
           pool_.shard_count(), " shard(s))");
}

void NetServer::stop() {
  if (!running_.exchange(false)) return;
  listener_.close();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // Unblock every connection's read; the threads observe the dead socket
    // (or running_ == false) and wind down.
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto& connection : connections_) connection->stream.shutdown_both();
  }
  for (auto& connection : connections_)
    if (connection->thread.joinable()) connection->thread.join();
  connections_.clear();
  // After the connections: any finalization they submitted has its future
  // resolved by the drain inside ServingEngine::stop().
  pool_.stop();
}

void NetServer::reap_finished() {
  // Accept-thread only (connection threads never touch each other's entries),
  // so the thread members are safe to read here without the lock; the list
  // itself is mutated under it.
  std::lock_guard<std::mutex> lock(connections_mutex_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    Connection& connection = **it;
    if (connection.done.load() && connection.thread.joinable()) {
      connection.thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void NetServer::accept_loop() {
  while (running_.load()) {
    reap_finished();
    std::optional<TcpStream> stream = listener_.accept(config_.accept_poll_ms);
    if (!stream) continue;  // timeout, transient failure, or injected fault
    if (stats_.connections_active.load(std::memory_order_relaxed) >=
        static_cast<std::int64_t>(config_.max_connections)) {
      // Layer-1 admission: explicit refusal before any session can open.
      stats_.connections_rejected.fetch_add(1, std::memory_order_relaxed);
      try {
        write_frame(*stream, FrameType::kReject, 0,
                    encode_status(static_cast<std::uint16_t>(
                                      RejectCode::kTooManyConnections),
                                  to_string(RejectCode::kTooManyConnections)));
      } catch (const std::exception&) {
        // The refused peer vanished first; nothing to report to.
      }
      continue;
    }
    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    stats_.connections_active.fetch_add(1, std::memory_order_relaxed);
    auto connection = std::make_unique<Connection>();
    connection->stream = std::move(*stream);
    Connection* raw = connection.get();
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.push_back(std::move(connection));
    }
    raw->thread = std::thread([this, raw] { serve_connection(*raw); });
  }
}

namespace {

/// One open session on a connection: its shard slot, the admission epoch it
/// was admitted under (a later mismatch means the shard restarted or drained
/// out from under it), the streaming session the chunk frames feed, and the
/// deadline its Finish will carry.
struct OpenSession {
  std::size_t shard = 0;
  std::uint64_t epoch = 0;
  serve::WorkloadType workload = serve::WorkloadType::kEarSonar;
  std::unique_ptr<serve::StreamingSession> session;  ///< EarSonar sessions only
  /// Absorbance sessions accumulate their curve bins here (Chunk frames carry
  /// doubles either way; the workload tag decides what they mean).
  std::vector<double> absorbance;
  double deadline_ms = 0.0;
};

/// Bins an absorbance session may accumulate before kStreamOverflow — far
/// above any real wideband grid (64 bins), it only bounds a hostile peer.
constexpr std::size_t kMaxAbsorbanceBins = 4096;

}  // namespace

void NetServer::serve_connection(Connection& connection) {
  std::vector<double> arena;  ///< read_frame's aligned payload buffer
  std::unordered_map<std::uint64_t, OpenSession> sessions;
  bool alive = true;

  // Best-effort frame send: a peer that hangs up mid-reply just ends the
  // connection, it must never unwind into the server.
  const auto send = [&](FrameType type, std::uint64_t session_id,
                        std::span<const std::uint8_t> payload) {
    try {
      write_frame(connection.stream, type, session_id, payload);
    } catch (const std::exception&) {
      alive = false;
    }
  };
  const auto send_status = [&](FrameType type, std::uint64_t session_id,
                               std::uint16_t code, const std::string& message) {
    send(type, session_id, encode_status(code, message));
  };
  const auto send_error = [&](std::uint64_t session_id, ErrorCode code,
                              const std::string& message) {
    send_status(FrameType::kError, session_id,
                static_cast<std::uint16_t>(code), message);
  };
  const auto send_reject = [&](std::uint64_t session_id, RejectCode code,
                               const std::string& message) {
    send_status(FrameType::kReject, session_id,
                static_cast<std::uint16_t>(code), message);
  };
  const auto close_session = [&](std::uint64_t session_id) {
    auto it = sessions.find(session_id);
    if (it == sessions.end()) return;
    pool_.release_session(it->second.shard);
    sessions.erase(it);
  };

  while (alive && running_.load()) {
    const ReadFrameResult read = read_frame(connection.stream, arena);
    if (read.kind == ReadFrameResult::Kind::kEof) break;
    if (read.kind == ReadFrameResult::Kind::kMalformed) {
      // A poisoned byte stream cannot be resynced (the length prefix is
      // gone); report why and hang up — never crash, never guess.
      stats_.frames_malformed.fetch_add(1, std::memory_order_relaxed);
      send_error(read.header.session_id, ErrorCode::kBadFrame,
                 to_string(read.status));
      break;
    }
    if (read.kind == ReadFrameResult::Kind::kIoError) {
      stats_.io_errors.fetch_add(1, std::memory_order_relaxed);
      break;
    }

    const FrameHeader& header = read.header;
    const std::uint64_t sid = header.session_id;
    switch (header.type) {
      case FrameType::kPing:
        send(FrameType::kPong, sid, payload_bytes(arena, header));
        break;

      case FrameType::kStats:
        send(FrameType::kStatsReply, sid, encode_stats(pool_.stats()));
        break;

      case FrameType::kAdmin: {
        if (sid != 0) {
          send_error(sid, ErrorCode::kProtocol,
                     "admin frames are connection-scoped (session id 0)");
          break;
        }
        if (!config_.enable_admin) {
          send_error(sid, ErrorCode::kProtocol, "admin interface disabled");
          break;
        }
        const std::optional<AdminPayload> admin =
            decode_admin(payload_bytes(arena, header));
        if (!admin) {
          send_error(sid, ErrorCode::kBadFrame, "malformed Admin payload");
          break;
        }
        AdminReplyPayload reply;
        std::string error;
        bool ok = true;
        switch (admin->op) {
          case AdminOp::kAddShard:
            ok = pool_.add_shard(&error);
            reply.message = ok ? "shard added" : error;
            break;
          case AdminOp::kDrainShard:
            ok = pool_.begin_drain(admin->shard, &error);
            reply.message = ok ? "drain started" : error;
            break;
          case AdminOp::kRestartShard:
            ok = pool_.kill_shard(admin->shard, &error);
            reply.message = ok ? "shard killed; supervisor restarting" : error;
            break;
          case AdminOp::kHealth:
            reply.message = "ok";
            break;
        }
        reply.code = ok ? 0 : 1;
        reply.shards = pool_.health_snapshot();
        send(FrameType::kAdminReply, sid, encode_admin_reply(reply));
        break;
      }

      case FrameType::kHello: {
        if (sid == 0) {
          send_error(sid, ErrorCode::kProtocol, "session id 0 is reserved");
          break;
        }
        if (sessions.contains(sid)) {
          send_error(sid, ErrorCode::kProtocol, "session already open");
          break;
        }
        const std::optional<HelloPayload> hello =
            decode_hello(payload_bytes(arena, header));
        if (!hello) {
          send_error(sid, ErrorCode::kBadFrame, "malformed Hello payload");
          break;
        }
        const serve::EngineConfig& engine_config = pool_.engine_config();
        const double rate = engine_config.session.pipeline.chirp.sample_rate;
        const auto workload = serve::workload_from_index(hello->workload);
        // Absorbance chunks carry curve bins, not audio — the pipeline rate
        // does not constrain them, so the rate handshake only gates EarSonar.
        if (workload == serve::WorkloadType::kEarSonar &&
            hello->sample_rate != rate) {
          // The client resamples before streaming (that is what keeps the
          // result bit-identical to the in-process path); a mismatched rate
          // means a misconfigured client, not something to fix up silently.
          std::ostringstream msg;
          msg << "sample rate " << hello->sample_rate
              << " != pipeline rate " << rate << " (resample client-side)";
          send_error(sid, ErrorCode::kUnsupportedRate, msg.str());
          break;
        }
        std::size_t shard = 0;
        std::uint64_t epoch = 0;
        switch (pool_.admit_session(sid, &shard, &epoch)) {
          case Admission::kAdmitted: {
            OpenSession open;
            open.shard = shard;
            open.epoch = epoch;
            open.workload = workload;
            if (workload == serve::WorkloadType::kEarSonar)
              open.session = std::make_unique<serve::StreamingSession>(
                  engine_config.session);
            open.deadline_ms = hello->deadline_ms > 0.0
                                   ? hello->deadline_ms
                                   : config_.default_deadline_ms;
            sessions.emplace(sid, std::move(open));
            HelloAckPayload ack;
            ack.shard = static_cast<std::uint32_t>(shard);
            ack.sample_rate = rate;
            send(FrameType::kHelloAck, sid, encode_hello_ack(ack));
            break;
          }
          case Admission::kSessionsFull: {
            std::ostringstream msg;
            msg << "shard " << shard << " at capacity ("
                << config_.shards.max_sessions_per_shard << " sessions)";
            send_reject(sid, RejectCode::kShardSessionsFull, msg.str());
            break;
          }
          case Admission::kStopped:
            send_reject(sid, RejectCode::kStopped, "server stopping");
            break;
          case Admission::kDispatchFault:
            send_error(sid, ErrorCode::kInternal, "shard dispatch failed");
            break;
          case Admission::kDraining: {
            std::ostringstream msg;
            msg << "shard " << shard << " is draining; retry to remap";
            send_reject(sid, RejectCode::kShardDraining, msg.str());
            break;
          }
          case Admission::kRestarting: {
            std::ostringstream msg;
            msg << "shard " << shard << " is restarting; retry shortly";
            send_reject(sid, RejectCode::kShardRestarting, msg.str());
            break;
          }
        }
        break;
      }

      case FrameType::kChunk: {
        auto it = sessions.find(sid);
        if (it == sessions.end()) {
          send_error(sid, ErrorCode::kProtocol, "chunk for unknown session");
          break;
        }
        if (!pool_.session_current(it->second.shard, it->second.epoch)) {
          // The shard crashed/restarted (or drained past its deadline) under
          // this session: re-admit nothing silently — the client learns its
          // streamed audio is gone and decides whether to resend.
          send_error(sid, ErrorCode::kShardRestart,
                     to_string(ErrorCode::kShardRestart));
          close_session(sid);
          break;
        }
        if (header.payload_len % sizeof(double) != 0) {
          send_error(sid, ErrorCode::kBadFrame,
                     "chunk length not a multiple of 8");
          close_session(sid);
          break;
        }
        // Zero-copy handoff: the arena IS the sample buffer (read_frame
        // guarantees 8-byte alignment), the filter reads the wire bytes.
        const std::span<const double> samples(arena.data(),
                                              header.payload_len / sizeof(double));
        const std::size_t shard = it->second.shard;
        if (it->second.workload == serve::WorkloadType::kAbsorbance) {
          // Absorbance chunks are curve bins; accumulate them for the Finish.
          std::vector<double>& curve = it->second.absorbance;
          if (curve.size() + samples.size() > kMaxAbsorbanceBins) {
            send_error(sid, ErrorCode::kStreamOverflow,
                       "absorbance curve too long");
            close_session(sid);
            break;
          }
          curve.insert(curve.end(), samples.begin(), samples.end());
        } else if (it->second.session->feed(samples) ==
                   serve::FeedStatus::kRejected) {
          send_error(sid, ErrorCode::kStreamOverflow,
                     "session sample buffer full");
          close_session(sid);
          break;
        }
        pool_.engine(shard)->metrics().chunks_fed.fetch_add(
            1, std::memory_order_relaxed);
        break;
      }

      case FrameType::kFinish: {
        auto it = sessions.find(sid);
        if (it == sessions.end()) {
          send_error(sid, ErrorCode::kProtocol, "finish for unknown session");
          break;
        }
        const std::size_t shard = it->second.shard;
        if (!pool_.session_current(shard, it->second.epoch)) {
          send_error(sid, ErrorCode::kShardRestart,
                     to_string(ErrorCode::kShardRestart));
          close_session(sid);
          break;
        }
        serve::ServeRequest request;
        {
          std::ostringstream id;
          id << "net:" << sid;
          request.id = id.str();
        }
        request.timeout_ms = it->second.deadline_ms;
        request.workload = it->second.workload;
        if (it->second.workload == serve::WorkloadType::kAbsorbance)
          request.absorbance = std::move(it->second.absorbance);
        else
          request.session = std::move(it->second.session);
        // Snapshot the engine once: a restart may swap the shard's engine
        // pointer while this Finish is in flight, and the snapshot keeps the
        // old engine (whose stop() resolves our future) alive until we have
        // our answer.
        const std::shared_ptr<serve::ServingEngine> engine = pool_.engine(shard);
        serve::Submission submission = engine->submit(std::move(request));
        if (!submission.accepted) {
          const ShardHealth health = pool_.shard_health(shard);
          if (health == ShardHealth::kDown || health == ShardHealth::kRestarting) {
            send_error(sid, ErrorCode::kShardRestart,
                       to_string(ErrorCode::kShardRestart));
            close_session(sid);
            break;
          }
          const RejectCode code = engine->running() ? RejectCode::kQueueFull
                                                    : RejectCode::kStopped;
          send_reject(sid, code, submission.reason);
          close_session(sid);
          break;
        }
        // Blocking here is the thread-per-connection contract: this thread
        // has nothing else to do until the shard answers.
        serve::ServeResult result = submission.result.get();
        close_session(sid);
        if (result.deadline_exceeded) {
          send_error(sid, ErrorCode::kDeadlineExceeded,
                     result.error.empty() ? "deadline exceeded" : result.error);
          break;
        }
        if (!result.error.empty()) {
          send_error(sid, ErrorCode::kProcessing, result.error);
          break;
        }
        ResultPayload payload;
        payload.usable = result.usable;
        payload.degraded = result.quality.degraded;
        payload.has_diagnosis = result.diagnosis.has_value();
        if (result.diagnosis) {
          payload.state = static_cast<std::uint8_t>(result.diagnosis->state);
          payload.confidence = result.diagnosis->confidence;
        }
        payload.events = static_cast<std::uint32_t>(result.events);
        payload.echoes = static_cast<std::uint32_t>(result.echoes);
        payload.model_version = result.model_version;
        payload.queue_ms = result.queue_ms;
        payload.total_ms = result.total_ms;
        payload.features = std::move(result.features);
        send(FrameType::kResult, sid, encode_result(payload));
        break;
      }

      default:
        // Server-to-client types arriving at the server are a protocol
        // violation from this peer, not a malformed byte stream.
        send_error(sid, ErrorCode::kProtocol, "unexpected frame type");
        break;
    }
  }

  // Abandoned sessions (peer hung up before Finish) give their slots back.
  for (const auto& [id, open] : sessions) pool_.release_session(open.shard);
  sessions.clear();
  connection.stream.close();
  stats_.connections_active.fetch_sub(1, std::memory_order_relaxed);
  connection.done.store(true);
}

}  // namespace earsonar::net
