// Load harness for the networked front-end: a simulated user population
// replayed against a NetServer, closed- or open-loop, with tail-latency
// reporting.
//
// Population: `population` distinct simulated ears (sim::SubjectFactory)
// cycled through the four effusion states, each recorded once up front —
// the run replays those recordings, so generation cost never pollutes the
// measurement. Session ids are globally unique, which is what spreads the
// population across shards via the consistent-hash ring.
//
// Two loops:
//   * closed loop — `concurrency` workers, each running sessions back to
//     back on its own connection: measures sustainable service rate;
//   * open loop  — arrivals follow a precomputed Poisson schedule at
//     `arrival_rate_hz` (optionally modulated by a diurnal curve: the run
//     is one compressed day, arrivals peak mid-"day" and trough at the
//     ends). Workers dispatch arrivals from the schedule; an arrival whose
//     turn comes while every worker is busy is still timed from its
//     *scheduled* instant, so queueing delay counts against latency
//     (no coordinated omission).
//
// The report carries exact client-observed percentiles (p50/p99/p999 over
// the recorded per-session latencies — sorted samples, not histogram
// buckets) plus the server's own per-shard counters fetched over a Stats
// frame, so a run shows both sides of the admission story: what clients
// saw, and what each shard counted.
//
// Chaos drill (`chaos = true`, requires the server's admin interface): a
// controller thread fires `chaos_events` seeded lifecycle events — shard
// kill, graceful drain, live add — at evenly spaced points of the replay,
// then polls shard health until every surviving shard reports healthy.
// Workers run with the deadline-budgeted retry policy, and the report adds
// the recovery clock plus the accounting and health invariants the drill
// asserts: every attempted session still terminates exactly once
// (attempted == completed + rejected + errored + transport), every killed
// shard returns to healthy, and `p99_recovered_ms` shows the post-recovery
// tail so a drill can prove latency actually came back.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "net/frame.hpp"

namespace earsonar::net {

struct LoadGenConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::size_t sessions = 64;    ///< total sessions to attempt
  std::size_t concurrency = 8;  ///< worker connections
  bool open_loop = false;
  /// Open-loop mean arrival rate. 0 = derive a mildly overloaded rate from
  /// a quick closed-loop probe is NOT done here — pass an explicit rate.
  double arrival_rate_hz = 8.0;
  bool diurnal = false;
  /// Peak-to-trough arrival-rate ratio of the diurnal curve (>= 1).
  double diurnal_peak_to_trough = 4.0;
  std::size_t population = 16;  ///< distinct simulated subjects
  std::size_t chirp_count = 6;  ///< probe chirps per recording
  /// Fraction of sessions carrying the wideband-absorbance workload instead
  /// of EarSonar audio, in [0, 1]. The assignment is seeded per session
  /// index, so the same seed replays the same interleaving; the report then
  /// splits every outcome counter per workload type (docs/workloads.md).
  double workload_mix = 0.0;
  std::size_t chunk_samples = 4800;  ///< 100 ms at 48 kHz
  /// Chunk pacing as a fraction of real time: 1 = live earbud cadence,
  /// 0 = backlogged upload (send as fast as TCP accepts).
  double time_scale = 0.0;
  double deadline_ms = 0.0;  ///< per-session deadline carried in Hello
  std::uint64_t seed = 42;

  // --- client robustness knobs (see NetClient::RetryPolicy) ---
  int connect_timeout_ms = 0;  ///< bound on each dial (0 = blocking connect)
  int read_timeout_ms = 0;     ///< bound on each read (0 = block forever)
  /// Total attempts per session including the first; > 1 enables the
  /// deadline-budgeted retry loop (reconnect on transport failure,
  /// exponential backoff + jitter on retryable outcomes).
  std::size_t max_attempts = 1;
  /// Wall-clock retry budget per session in ms (0 = unbudgeted).
  double retry_budget_ms = 0.0;

  // --- chaos drill ---
  bool chaos = false;           ///< fire lifecycle events mid-replay
  std::size_t chaos_events = 3; ///< kills / drains / adds to fire
  std::uint64_t chaos_seed = 7; ///< event schedule seed

  void validate() const;
};

/// Per-workload-type slice of the outcome counters; index by
/// serve::workload_index. Exactness invariant per type:
/// attempted == completed + rejected + errored + transport.
struct WorkloadLoad {
  std::size_t attempted = 0;
  std::size_t completed = 0;
  std::size_t rejected = 0;
  std::size_t errored = 0;
  std::size_t transport_failures = 0;
};

struct LoadReport {
  std::size_t attempted = 0;
  std::size_t admitted = 0;   ///< HelloAck received
  std::size_t completed = 0;  ///< Result received
  std::size_t rejected = 0;   ///< Reject frames (all codes)
  std::size_t rejected_sessions_full = 0;
  std::size_t rejected_queue_full = 0;
  std::size_t errored = 0;    ///< Error frames (all codes)
  std::size_t deadline_exceeded = 0;
  std::size_t transport_failures = 0;
  double wall_s = 0.0;
  double completed_per_s = 0.0;
  /// Client-observed latency of completed sessions, exact percentiles over
  /// the sorted samples. Open loop measures from the scheduled arrival.
  /// NaN (serialised as null / "n/a") when no session completed — a run with
  /// zero samples makes no latency claim.
  double p50_ms = std::numeric_limits<double>::quiet_NaN();
  double p99_ms = std::numeric_limits<double>::quiet_NaN();
  double p999_ms = std::numeric_limits<double>::quiet_NaN();
  double max_ms = std::numeric_limits<double>::quiet_NaN();
  /// Server-side per-shard counters (Stats frame at the end of the run).
  StatsPayload server;
  bool have_server_stats = false;
  /// Outcome counters split by workload type (earsonar, absorbance); the
  /// per-type sums always reconcile with the totals above, and accounting_ok
  /// additionally asserts the per-type exactness invariant.
  std::array<WorkloadLoad, 2> per_workload{};

  // --- retry / chaos accounting ---
  /// Extra attempts beyond each session's first (0 when retries are off).
  std::size_t retry_attempts = 0;
  std::size_t chaos_events_fired = 0;
  /// Last chaos event -> every surviving shard healthy, in ms (-1 when the
  /// pool never converged within the drill's patience).
  double recovery_ms = 0.0;
  /// Every non-retired shard reported healthy at the end of the run.
  bool all_healthy = false;
  /// attempted == sessions and attempted == completed+rejected+errored+
  /// transport — the "nothing vanished" invariant the drill asserts.
  bool accounting_ok = false;
  /// p99 over sessions that completed after the pool recovered (equals
  /// p99_ms when no chaos ran); shows whether the tail actually came back.
  /// NaN when nothing completed post-recovery.
  double p99_recovered_ms = std::numeric_limits<double>::quiet_NaN();

  [[nodiscard]] std::string text() const;
  [[nodiscard]] std::string json() const;
};

/// Runs the configured load against a live server and blocks until every
/// session has a terminal outcome.
LoadReport run_loadgen(const LoadGenConfig& config);

}  // namespace earsonar::net
