#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>
#include <sstream>

#include "common/error.hpp"
#include "common/fault.hpp"

namespace earsonar::net {

namespace {

[[noreturn]] void fail_errno(const char* what) {
  std::ostringstream msg;
  msg << what << ": " << std::strerror(errno);
  fail(msg.str());
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    fail("invalid IPv4 host: " + host);
  return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_.store(other.fd_.exchange(-1));
  }
  return *this;
}

void Socket::shutdown_both() {
  const int fd = fd_.load();
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void Socket::close() {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) ::close(fd);
}

TcpStream::TcpStream(Socket socket) : socket_(std::move(socket)) {
  if (socket_.valid()) {
    // Frames are small and latency-sensitive; never batch them behind Nagle.
    int one = 1;
    ::setsockopt(socket_.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }
}

TcpStream TcpStream::connect(const std::string& host, std::uint16_t port,
                             int timeout_ms) {
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) fail_errno("socket");
  const sockaddr_in addr = make_addr(host, port);
  if (timeout_ms <= 0) {
    if (::connect(socket.fd(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0)
      fail_errno("connect");
    return TcpStream(std::move(socket));
  }
  // Bounded connect: flip the socket non-blocking, start the connect, wait
  // for writability with poll, read the outcome from SO_ERROR, then restore
  // blocking mode for the stream's read/write path.
  const int flags = ::fcntl(socket.fd(), F_GETFL, 0);
  if (flags < 0) fail_errno("fcntl(F_GETFL)");
  if (::fcntl(socket.fd(), F_SETFL, flags | O_NONBLOCK) != 0)
    fail_errno("fcntl(F_SETFL)");
  if (::connect(socket.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    if (errno != EINPROGRESS) fail_errno("connect");
    pollfd pfd{socket.fd(), POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready == 0) {
      std::ostringstream msg;
      msg << "connect to " << host << ":" << port << " timed out after "
          << timeout_ms << " ms";
      throw NetTimeoutError(msg.str());
    }
    if (ready < 0) fail_errno("poll(connect)");
    int so_error = 0;
    socklen_t len = sizeof so_error;
    if (::getsockopt(socket.fd(), SOL_SOCKET, SO_ERROR, &so_error, &len) != 0)
      fail_errno("getsockopt(SO_ERROR)");
    if (so_error != 0) {
      errno = so_error;
      fail_errno("connect");
    }
  }
  if (::fcntl(socket.fd(), F_SETFL, flags) != 0) fail_errno("fcntl(F_SETFL)");
  return TcpStream(std::move(socket));
}

void TcpStream::set_read_timeout_ms(int ms) {
  if (!socket_.valid()) return;
  timeval tv{};
  if (ms > 0) {
    tv.tv_sec = ms / 1000;
    tv.tv_usec = static_cast<suseconds_t>(ms % 1000) * 1000;
  }
  if (::setsockopt(socket_.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) != 0)
    fail_errno("setsockopt(SO_RCVTIMEO)");
  read_timeout_ms_ = ms;
}

bool TcpStream::read_exact(std::span<std::uint8_t> out) {
  std::size_t got = 0;
  while (got < out.size()) {
    const ssize_t n = ::read(socket_.fd(), out.data() + got, out.size() - got);
    if (n == 0) {
      if (got == 0) return false;  // clean EOF between frames
      fail("read_exact: connection closed mid-frame");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if ((errno == EAGAIN || errno == EWOULDBLOCK) && read_timeout_ms_ > 0) {
        std::ostringstream msg;
        msg << "read timed out after " << read_timeout_ms_ << " ms";
        throw NetTimeoutError(msg.str());
      }
      fail_errno("read");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void TcpStream::write_all(std::span<const std::uint8_t> bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    // MSG_NOSIGNAL: a peer that hung up must surface as EPIPE (an exception
    // the caller handles), never as a process-killing SIGPIPE.
    const ssize_t n = ::send(socket_.fd(), bytes.data() + sent,
                             bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

TcpListener TcpListener::bind(const std::string& host, std::uint16_t port,
                              int backlog) {
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) fail_errno("socket");
  int one = 1;
  ::setsockopt(socket.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  const sockaddr_in addr = make_addr(host, port);
  if (::bind(socket.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0)
    fail_errno("bind");
  if (::listen(socket.fd(), backlog) != 0) fail_errno("listen");

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&bound), &len) != 0)
    fail_errno("getsockname");

  TcpListener listener;
  listener.socket_ = std::move(socket);
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

std::optional<TcpStream> TcpListener::accept(int timeout_ms) {
  if (!socket_.valid()) return std::nullopt;
  pollfd pfd{socket_.fd(), POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready <= 0) return std::nullopt;  // timeout or transient poll error
  // Chaos hook: a fired fault looks like a transient accept() failure (e.g.
  // EMFILE or a connection reset before accept) — the loop must shrug it off.
  if (fault::point("net.accept")) return std::nullopt;
  const int fd = ::accept(socket_.fd(), nullptr, nullptr);
  if (fd < 0) return std::nullopt;
  return TcpStream(Socket(fd));
}

// ------------------------------------------------------- frame-level I/O

ReadFrameResult read_frame(TcpStream& stream, std::vector<double>& payload_f64,
                           std::size_t max_payload) {
  ReadFrameResult result;
  std::uint8_t header_bytes[kHeaderSize];
  try {
    if (fault::point("net.frame.read")) fail("injected fault: net.frame.read");
    if (!stream.read_exact(header_bytes)) {
      result.kind = ReadFrameResult::Kind::kEof;
      return result;
    }
    const DecodeStatus status = parse_header(header_bytes, result.header, max_payload);
    if (status != DecodeStatus::kOk) {
      result.kind = ReadFrameResult::Kind::kMalformed;
      result.status = status;
      return result;
    }
    // The payload arena is a double vector so its storage is 8-byte aligned:
    // a kChunk frame's float64 samples are then readable in place. For every
    // other type the same storage is just bytes (payload_bytes()).
    payload_f64.resize((result.header.payload_len + 7) / 8);
    const std::span<std::uint8_t> payload(
        reinterpret_cast<std::uint8_t*>(payload_f64.data()),
        result.header.payload_len);
    if (result.header.payload_len > 0 && !stream.read_exact(payload))
      fail("read_frame: connection closed before payload");
    if (!check_crc(header_bytes, payload, result.header)) {
      result.kind = ReadFrameResult::Kind::kMalformed;
      result.status = DecodeStatus::kBadCrc;
      return result;
    }
  } catch (const NetTimeoutError& e) {
    result.kind = ReadFrameResult::Kind::kIoError;
    result.io_error = e.what();
    result.timed_out = true;
    return result;
  } catch (const std::exception& e) {
    result.kind = ReadFrameResult::Kind::kIoError;
    result.io_error = e.what();
    return result;
  }
  result.kind = ReadFrameResult::Kind::kFrame;
  return result;
}

std::span<const std::uint8_t> payload_bytes(const std::vector<double>& payload_f64,
                                            const FrameHeader& header) {
  return {reinterpret_cast<const std::uint8_t*>(payload_f64.data()),
          header.payload_len};
}

void write_frame(TcpStream& stream, FrameType type, std::uint64_t session_id,
                 std::span<const std::uint8_t> payload) {
  if (fault::point("net.frame.write")) fail("injected fault: net.frame.write");
  std::uint8_t header_bytes[kHeaderSize];
  encode_header(header_bytes, type, session_id, payload);
  stream.write_all(header_bytes);
  if (!payload.empty()) stream.write_all(payload);
}

void write_chunk_frame(TcpStream& stream, std::uint64_t session_id,
                       std::span<const double> samples) {
  // The samples' in-memory IEEE-754 bytes are the wire format on a little-
  // endian host; serialize explicitly only if the platform is big-endian.
  static_assert(std::endian::native == std::endian::little,
                "wire format is little-endian; add byte swapping for BE hosts");
  write_frame(stream, FrameType::kChunk, session_id,
              {reinterpret_cast<const std::uint8_t*>(samples.data()),
               samples.size() * sizeof(double)});
}

}  // namespace earsonar::net
