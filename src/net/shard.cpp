#include "net/shard.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/fault.hpp"

namespace earsonar::net {

std::uint64_t HashRing::mix(std::uint64_t x) {
  // splitmix64 finalizer (Steele et al.): full-avalanche mixing so nearby
  // session ids land far apart on the ring.
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

HashRing::HashRing(std::size_t shards, std::size_t replicas)
    : shards_(shards), replicas_(replicas) {
  require(shards >= 1, "HashRing: shards must be >= 1");
  require(replicas >= 1, "HashRing: replicas must be >= 1");
  points_.reserve(shards * replicas);
  for (std::size_t s = 0; s < shards; ++s) {
    for (std::size_t r = 0; r < replicas; ++r) {
      // Point identity is (shard, replica), independent of the total shard
      // count — that is what makes resizing minimal-remap: growing to N+1
      // shards only *inserts* the new shard's points, every surviving
      // point keeps its position. The salt keeps the point domain disjoint
      // from the key domain: without it, shard 0's replica ids 0..63 hash to
      // the same ring positions as session ids 0..63, and every small
      // session id lands exactly on (hence just below) a shard-0 point.
      constexpr std::uint64_t kPointSalt = 0x72696e67706f696eULL;  // "ringpoin"
      const std::uint64_t id = (static_cast<std::uint64_t>(s) << 32) | r;
      points_.push_back({mix(id ^ kPointSalt), static_cast<std::uint32_t>(s)});
    }
  }
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              return a.hash != b.hash ? a.hash < b.hash : a.shard < b.shard;
            });
}

std::size_t HashRing::shard_for(std::uint64_t session_id) const {
  const std::uint64_t h = mix(session_id);
  // First point at or after h; wrap to the lowest point past the top.
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const Point& p, std::uint64_t key) { return p.hash < key; });
  return it != points_.end() ? it->shard : points_.front().shard;
}

void ShardConfig::validate() const {
  require(shards >= 1, "ShardConfig: shards must be >= 1");
  require(replicas >= 1, "ShardConfig: replicas must be >= 1");
  require(max_sessions_per_shard >= 1,
          "ShardConfig: max_sessions_per_shard must be >= 1");
  engine.validate();
}

ShardPool::ShardPool(ShardConfig config)
    : config_(std::move(config)), ring_(config_.shards, config_.replicas) {
  config_.validate();
  serve::EngineConfig engine_config = config_.engine;
  // N engines leasing the shared pool would serialize behind its batch
  // mutex; shard engines always own their threads.
  engine_config.dedicated_threads = true;
  shards_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->engine = std::make_unique<serve::ServingEngine>(engine_config);
    shards_.push_back(std::move(shard));
  }
}

ShardPool::~ShardPool() { stop(); }

void ShardPool::start() {
  if (running_.exchange(true)) return;
  for (auto& shard : shards_) shard->engine->start();
}

void ShardPool::stop() {
  if (!running_.exchange(false)) return;
  for (auto& shard : shards_) shard->engine->stop();
}

Admission ShardPool::admit_session(std::uint64_t session_id,
                                   std::size_t* shard_out) {
  const std::size_t shard_index = ring_.shard_for(session_id);
  if (shard_out != nullptr) *shard_out = shard_index;
  Shard& shard = *shards_[shard_index];
  if (fault::point("net.shard.dispatch")) {
    shard.sessions_rejected.fetch_add(1, std::memory_order_relaxed);
    return Admission::kDispatchFault;
  }
  if (!running_.load()) {
    shard.sessions_rejected.fetch_add(1, std::memory_order_relaxed);
    return Admission::kStopped;
  }
  // Optimistic claim: bump, then back out if over the cap. Two racers can
  // both observe the bump but only the one(s) within the cap keep it.
  const std::int64_t now =
      shard.sessions_active.fetch_add(1, std::memory_order_relaxed) + 1;
  if (now > static_cast<std::int64_t>(config_.max_sessions_per_shard)) {
    shard.sessions_active.fetch_sub(1, std::memory_order_relaxed);
    shard.sessions_rejected.fetch_add(1, std::memory_order_relaxed);
    return Admission::kSessionsFull;
  }
  return Admission::kAdmitted;
}

void ShardPool::release_session(std::size_t shard) {
  shards_[shard]->sessions_active.fetch_sub(1, std::memory_order_relaxed);
}

void ShardPool::install_model(const core::DetectorModel& model,
                              const std::string& source) {
  for (auto& shard : shards_) shard->engine->registry().install(model, source);
}

StatsPayload ShardPool::stats() const {
  StatsPayload payload;
  payload.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    const serve::ServeMetrics& m = shard->engine->metrics();
    ShardStatsWire wire;
    wire.accepted = m.accepted.load(std::memory_order_relaxed);
    wire.completed = m.completed.load(std::memory_order_relaxed);
    wire.rejected_queue_full = m.rejected_queue_full.load(std::memory_order_relaxed);
    wire.deadline_exceeded = m.deadline_exceeded.load(std::memory_order_relaxed);
    wire.degraded = m.degraded.load(std::memory_order_relaxed);
    wire.failed = m.failed.load(std::memory_order_relaxed);
    wire.chunks_fed = m.chunks_fed.load(std::memory_order_relaxed);
    const std::int64_t active = shard->sessions_active.load(std::memory_order_relaxed);
    wire.sessions_active = active > 0 ? static_cast<std::uint64_t>(active) : 0;
    wire.sessions_rejected = shard->sessions_rejected.load(std::memory_order_relaxed);
    payload.shards.push_back(wire);
  }
  return payload;
}

}  // namespace earsonar::net
