#include "net/shard.hpp"

#include <algorithm>
#include <mutex>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/log.hpp"

namespace earsonar::net {

using Clock = std::chrono::steady_clock;

std::uint64_t HashRing::mix(std::uint64_t x) {
  // splitmix64 finalizer (Steele et al.): full-avalanche mixing so nearby
  // session ids land far apart on the ring.
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

HashRing::Point HashRing::make_point(std::size_t shard, std::size_t replica) {
  // Point identity is (shard, replica), independent of the membership set —
  // that is what makes resizing minimal-remap: growing to N+1 shards only
  // *inserts* the new shard's points, every surviving point keeps its
  // position. The salt keeps the point domain disjoint from the key domain:
  // without it, shard 0's replica ids 0..63 hash to the same ring positions
  // as session ids 0..63, and every small session id lands exactly on (hence
  // just below) a shard-0 point.
  constexpr std::uint64_t kPointSalt = 0x72696e67706f696eULL;  // "ringpoin"
  const std::uint64_t id = (static_cast<std::uint64_t>(shard) << 32) | replica;
  return {mix(id ^ kPointSalt), static_cast<std::uint32_t>(shard)};
}

HashRing::HashRing(std::size_t shards, std::size_t replicas)
    : members_(shards), replicas_(replicas) {
  require(shards >= 1, "HashRing: shards must be >= 1");
  require(replicas >= 1, "HashRing: replicas must be >= 1");
  points_.reserve(shards * replicas);
  for (std::size_t s = 0; s < shards; ++s)
    for (std::size_t r = 0; r < replicas; ++r) points_.push_back(make_point(s, r));
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              return a.hash != b.hash ? a.hash < b.hash : a.shard < b.shard;
            });
}

std::size_t HashRing::shard_for(std::uint64_t session_id) const {
  require(!points_.empty(), "HashRing: ring is empty");
  const std::uint64_t h = mix(session_id);
  // First point at or after h; wrap to the lowest point past the top.
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const Point& p, std::uint64_t key) { return p.hash < key; });
  return it != points_.end() ? it->shard : points_.front().shard;
}

bool HashRing::contains(std::size_t shard) const {
  return std::any_of(points_.begin(), points_.end(), [shard](const Point& p) {
    return p.shard == static_cast<std::uint32_t>(shard);
  });
}

void HashRing::add_shard(std::size_t shard) {
  if (contains(shard)) return;
  for (std::size_t r = 0; r < replicas_; ++r) {
    const Point point = make_point(shard, r);
    const auto at = std::lower_bound(
        points_.begin(), points_.end(), point,
        [](const Point& a, const Point& b) {
          return a.hash != b.hash ? a.hash < b.hash : a.shard < b.shard;
        });
    points_.insert(at, point);
  }
  ++members_;
}

void HashRing::remove_shard(std::size_t shard) {
  if (!contains(shard)) return;
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [shard](const Point& p) {
                                 return p.shard ==
                                        static_cast<std::uint32_t>(shard);
                               }),
                points_.end());
  --members_;
}

const char* to_string(ShardHealth health) {
  switch (health) {
    case ShardHealth::kHealthy: return "healthy";
    case ShardHealth::kDraining: return "draining";
    case ShardHealth::kDown: return "down";
    case ShardHealth::kRestarting: return "restarting";
    case ShardHealth::kRetired: return "retired";
  }
  return "unknown";
}

void ShardConfig::validate() const {
  require(shards >= 1, "ShardConfig: shards must be >= 1");
  require(replicas >= 1, "ShardConfig: replicas must be >= 1");
  require(max_sessions_per_shard >= 1,
          "ShardConfig: max_sessions_per_shard must be >= 1");
  require(supervisor_interval_ms >= 1,
          "ShardConfig: supervisor_interval_ms must be >= 1");
  require(drain_deadline_ms >= 0.0, "ShardConfig: drain_deadline_ms must be >= 0");
  require(wedge_timeout_ms >= 0.0, "ShardConfig: wedge_timeout_ms must be >= 0");
  require(max_shards >= shards, "ShardConfig: max_shards must be >= shards");
  engine.validate();
}

ShardPool::ShardPool(ShardConfig config)
    : config_(std::move(config)), ring_(config_.shards, config_.replicas) {
  config_.validate();
  // N engines leasing the shared pool would serialize behind its batch
  // mutex; shard engines always own their threads. Stored back into config_
  // so engine_config() and restart-built engines agree.
  config_.engine.dedicated_threads = true;
  shards_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->engine = make_engine();
    shards_.push_back(std::move(shard));
  }
}

ShardPool::~ShardPool() { stop(); }

std::shared_ptr<serve::ServingEngine> ShardPool::make_engine() const {
  return std::make_shared<serve::ServingEngine>(config_.engine);
}

void ShardPool::start() {
  if (running_.exchange(true)) return;
  {
    std::shared_lock<std::shared_mutex> lock(membership_mutex_);
    for (auto& shard : shards_) shard->engine->start();
  }
  supervisor_ = std::thread([this] { supervisor_loop(); });
}

void ShardPool::stop() {
  if (!running_.exchange(false)) return;
  if (supervisor_.joinable()) supervisor_.join();
  // After the supervisor: nobody swaps engines anymore, snapshots are stable.
  std::vector<std::shared_ptr<serve::ServingEngine>> engines;
  {
    std::shared_lock<std::shared_mutex> lock(membership_mutex_);
    engines.reserve(shards_.size());
    for (auto& shard : shards_) engines.push_back(shard->engine);
  }
  for (auto& engine : engines) engine->stop();
}

std::size_t ShardPool::shard_count() const {
  std::shared_lock<std::shared_mutex> lock(membership_mutex_);
  return shards_.size();
}

std::size_t ShardPool::ring_members() const {
  std::shared_lock<std::shared_mutex> lock(membership_mutex_);
  return ring_.shard_count();
}

std::size_t ShardPool::shard_for(std::uint64_t session_id) const {
  std::shared_lock<std::shared_mutex> lock(membership_mutex_);
  return ring_.shard_for(session_id);
}

std::shared_ptr<serve::ServingEngine> ShardPool::engine(std::size_t shard) const {
  std::shared_lock<std::shared_mutex> lock(membership_mutex_);
  return shards_[shard]->engine;
}

Admission ShardPool::admit_session(std::uint64_t session_id,
                                   std::size_t* shard_out,
                                   std::uint64_t* epoch_out) {
  std::shared_lock<std::shared_mutex> lock(membership_mutex_);
  const std::size_t shard_index = ring_.shard_for(session_id);
  if (shard_out != nullptr) *shard_out = shard_index;
  Shard& shard = *shards_[shard_index];
  if (fault::point("net.shard.dispatch")) {
    shard.sessions_rejected.fetch_add(1, std::memory_order_relaxed);
    return Admission::kDispatchFault;
  }
  if (!running_.load()) {
    shard.sessions_rejected.fetch_add(1, std::memory_order_relaxed);
    return Admission::kStopped;
  }
  switch (shard.health.load(std::memory_order_acquire)) {
    case ShardHealth::kHealthy:
      break;
    case ShardHealth::kDown:
    case ShardHealth::kRestarting:
      // A crashed shard keeps its ring points while it restarts: its keys
      // are refused *explicitly and retryably* instead of remapping away and
      // back again a restart later (which would double-move every session).
      shard.sessions_rejected.fetch_add(1, std::memory_order_relaxed);
      return Admission::kRestarting;
    case ShardHealth::kDraining:
    case ShardHealth::kRetired:
      // Out of the ring, so only an admission that raced the drain lands
      // here; the client retries and remaps.
      shard.sessions_rejected.fetch_add(1, std::memory_order_relaxed);
      return Admission::kDraining;
  }
  // Optimistic claim: bump, then back out if over the cap. Two racers can
  // both observe the bump but only the one(s) within the cap keep it.
  const std::int64_t now =
      shard.sessions_active.fetch_add(1, std::memory_order_relaxed) + 1;
  if (now > static_cast<std::int64_t>(config_.max_sessions_per_shard)) {
    shard.sessions_active.fetch_sub(1, std::memory_order_relaxed);
    shard.sessions_rejected.fetch_add(1, std::memory_order_relaxed);
    return Admission::kSessionsFull;
  }
  if (epoch_out != nullptr)
    *epoch_out = shard.epoch.load(std::memory_order_acquire);
  return Admission::kAdmitted;
}

void ShardPool::release_session(std::size_t shard) {
  std::shared_lock<std::shared_mutex> lock(membership_mutex_);
  shards_[shard]->sessions_active.fetch_sub(1, std::memory_order_relaxed);
}

bool ShardPool::session_current(std::size_t shard, std::uint64_t epoch) const {
  std::shared_lock<std::shared_mutex> lock(membership_mutex_);
  const Shard& s = *shards_[shard];
  const ShardHealth health = s.health.load(std::memory_order_acquire);
  if (health != ShardHealth::kHealthy && health != ShardHealth::kDraining)
    return false;
  return s.epoch.load(std::memory_order_acquire) == epoch;
}

std::int64_t ShardPool::sessions_active(std::size_t shard) const {
  std::shared_lock<std::shared_mutex> lock(membership_mutex_);
  return shards_[shard]->sessions_active.load(std::memory_order_relaxed);
}

ShardHealth ShardPool::shard_health(std::size_t shard) const {
  std::shared_lock<std::shared_mutex> lock(membership_mutex_);
  return shards_[shard]->health.load(std::memory_order_acquire);
}

std::uint64_t ShardPool::shard_epoch(std::size_t shard) const {
  std::shared_lock<std::shared_mutex> lock(membership_mutex_);
  return shards_[shard]->epoch.load(std::memory_order_acquire);
}

double ShardPool::last_recovery_ms(std::size_t shard) const {
  std::shared_lock<std::shared_mutex> lock(membership_mutex_);
  return shards_[shard]->last_recovery_ms.load(std::memory_order_relaxed);
}

// --------------------------------------------------------------- lifecycle

bool ShardPool::add_shard(std::string* error) {
  const auto refuse = [error](const char* why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (fault::point("net.admin.resize"))
    return refuse("injected fault: net.admin.resize");
  if (!running_.load()) return refuse("pool is not running");
  // Build and start the engine outside the lock (thread spawns are slow);
  // admission never sees the slot until the exclusive section publishes it.
  auto fresh = make_engine();
  {
    std::unique_lock<std::shared_mutex> lock(membership_mutex_);
    if (shards_.size() >= config_.max_shards) {
      lock.unlock();
      fresh.reset();
      return refuse("max_shards reached");
    }
    if (model_ != nullptr) fresh->registry().install(*model_, model_source_);
    if (wideband_ != nullptr) fresh->install_wideband(wideband_);
  }
  fresh->start();
  std::size_t index = 0;
  {
    std::unique_lock<std::shared_mutex> lock(membership_mutex_);
    if (shards_.size() >= config_.max_shards) {
      lock.unlock();
      fresh->stop();
      return refuse("max_shards reached");
    }
    index = shards_.size();
    auto shard = std::make_unique<Shard>();
    shard->engine = std::move(fresh);
    shards_.push_back(std::move(shard));
    ring_.add_shard(index);
  }
  resizes_.fetch_add(1, std::memory_order_relaxed);
  log_info("net: shard ", index, " added (ring now ", ring_members(),
           " member(s))");
  return true;
}

bool ShardPool::begin_drain(std::size_t shard, std::string* error) {
  const auto refuse = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (fault::point("net.admin.resize"))
    return refuse("injected fault: net.admin.resize");
  std::unique_lock<std::shared_mutex> lock(membership_mutex_);
  if (shard >= shards_.size()) return refuse("no such shard slot");
  Shard& s = *shards_[shard];
  ShardHealth expected = ShardHealth::kHealthy;
  if (ring_.shard_count() <= 1) return refuse("cannot drain the last ring member");
  if (!s.health.compare_exchange_strong(expected, ShardHealth::kDraining,
                                        std::memory_order_acq_rel)) {
    std::ostringstream msg;
    msg << "shard " << shard << " is " << to_string(expected)
        << ", only a healthy shard can drain";
    return refuse(msg.str());
  }
  // Leave the ring immediately: no new Hellos, and the departing keys remap
  // to the survivors *once* (minimal remap) rather than at retire time.
  ring_.remove_shard(shard);
  s.in_ring.store(false, std::memory_order_release);
  lock.unlock();
  resizes_.fetch_add(1, std::memory_order_relaxed);
  log_info("net: shard ", shard, " draining");
  return true;
}

bool ShardPool::kill_shard(std::size_t shard, std::string* error) {
  const auto refuse = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  std::shared_lock<std::shared_mutex> lock(membership_mutex_);
  if (shard >= shards_.size()) return refuse("no such shard slot");
  Shard& s = *shards_[shard];
  ShardHealth expected = ShardHealth::kHealthy;
  if (!s.health.compare_exchange_strong(expected, ShardHealth::kDown,
                                        std::memory_order_acq_rel)) {
    std::ostringstream msg;
    msg << "shard " << shard << " is " << to_string(expected)
        << ", only a healthy shard can be killed";
    return refuse(msg.str());
  }
  // The epoch bump is what invalidates every in-flight session: their next
  // Chunk/Finish sees session_current() == false and gets Error{kShardRestart}.
  s.epoch.fetch_add(1, std::memory_order_acq_rel);
  log_warn("net: shard ", shard, " down (killed); supervisor will restart it");
  return true;
}

void ShardPool::install_model(const core::DetectorModel& model,
                              const std::string& source) {
  std::unique_lock<std::shared_mutex> lock(membership_mutex_);
  model_ = std::make_shared<const core::DetectorModel>(model);
  model_source_ = source;
  for (auto& shard : shards_)
    if (shard->health.load(std::memory_order_acquire) != ShardHealth::kRetired)
      shard->engine->registry().install(model, source);
}

void ShardPool::install_wideband(
    std::shared_ptr<const core::WidebandScreener> model) {
  std::unique_lock<std::shared_mutex> lock(membership_mutex_);
  wideband_ = std::move(model);
  for (auto& shard : shards_)
    if (shard->health.load(std::memory_order_acquire) != ShardHealth::kRetired)
      shard->engine->install_wideband(wideband_);
}

// -------------------------------------------------------------- supervisor

void ShardPool::supervisor_loop() {
  while (running_.load()) {
    supervise_once(Clock::now());
    std::this_thread::sleep_for(
        std::chrono::milliseconds(config_.supervisor_interval_ms));
  }
}

void ShardPool::supervise_once(Clock::time_point now) {
  // Shard objects live behind stable unique_ptrs; only the vector itself
  // needs the lock. The supervisor is the sole writer of the bookkeeping
  // fields and the sole engine swapper, so it reads them lock-free.
  std::vector<Shard*> slots;
  {
    std::shared_lock<std::shared_mutex> lock(membership_mutex_);
    slots.reserve(shards_.size());
    for (auto& shard : shards_) slots.push_back(shard.get());
  }
  for (std::size_t index = 0; index < slots.size(); ++index) {
    Shard& shard = *slots[index];
    switch (shard.health.load(std::memory_order_acquire)) {
      case ShardHealth::kHealthy: {
        // Heartbeat probe: a fired fault is an observed crash.
        if (fault::point("net.shard.health")) {
          shard.epoch.fetch_add(1, std::memory_order_acq_rel);
          shard.down_since = now;
          shard.health.store(ShardHealth::kDown, std::memory_order_release);
          log_warn("net: shard ", index, " failed its health probe; down");
          break;
        }
        // Wedge detection: queued work with no completion progress means the
        // workers are stuck (a hung model load, a deadlocked stage), which a
        // liveness probe alone would miss.
        const std::uint64_t completed =
            shard.engine->metrics().completed.load(std::memory_order_relaxed);
        const bool busy = shard.engine->queue_depth() > 0;
        if (completed != shard.last_completed || !busy ||
            shard.last_progress == Clock::time_point{}) {
          shard.last_completed = completed;
          shard.last_progress = now;
          break;
        }
        if (config_.wedge_timeout_ms > 0.0 &&
            std::chrono::duration<double, std::milli>(now - shard.last_progress)
                    .count() > config_.wedge_timeout_ms) {
          shard.epoch.fetch_add(1, std::memory_order_acq_rel);
          shard.down_since = now;
          shard.health.store(ShardHealth::kDown, std::memory_order_release);
          log_warn("net: shard ", index, " wedged (queue busy, no progress); down");
        }
        break;
      }
      case ShardHealth::kDown: {
        if (shard.down_since == Clock::time_point{}) shard.down_since = now;
        // A fired fault means this restart *attempt* failed (exec refused,
        // resources exhausted); the shard stays down and the next tick tries
        // again — restart is a loop, not a single shot.
        if (fault::point("net.shard.restart")) break;
        shard.health.store(ShardHealth::kRestarting, std::memory_order_release);
        restart_shard(index, now);
        break;
      }
      case ShardHealth::kDraining: {
        if (shard.drain_started == Clock::time_point{}) shard.drain_started = now;
        const bool idle =
            shard.sessions_active.load(std::memory_order_relaxed) <= 0;
        const bool overran =
            std::chrono::duration<double, std::milli>(now - shard.drain_started)
                .count() > config_.drain_deadline_ms;
        if (!idle && !overran) break;
        if (!idle) {
          // Past the drain deadline: stragglers are invalidated (their next
          // frame gets Error{kShardRestart}), never silently dropped.
          shard.epoch.fetch_add(1, std::memory_order_acq_rel);
          log_warn("net: shard ", index, " drain deadline overrun; cutting ",
                   shard.sessions_active.load(), " straggler session(s)");
        }
        retire_shard(index);
        break;
      }
      case ShardHealth::kRestarting:
      case ShardHealth::kRetired:
        break;
    }
  }
}

void ShardPool::restart_shard(std::size_t index, Clock::time_point now) {
  Shard& shard = *[&] {
    std::shared_lock<std::shared_mutex> lock(membership_mutex_);
    return shards_[index].get();
  }();
  // Tear down outside the lock: stop() drains the queue, so every accepted
  // future resolves (a connection thread blocked in Finish gets its answer —
  // crash isolation must not turn into a hang).
  std::shared_ptr<serve::ServingEngine> old = shard.engine;
  old->stop();
  auto fresh = make_engine();
  {
    std::shared_lock<std::shared_mutex> lock(membership_mutex_);
    if (model_ != nullptr) fresh->registry().install(*model_, model_source_);
    if (wideband_ != nullptr) fresh->install_wideband(wideband_);
  }
  fresh->start();
  {
    std::unique_lock<std::shared_mutex> lock(membership_mutex_);
    shard.engine = std::move(fresh);
  }
  shard.restarts.fetch_add(1, std::memory_order_relaxed);
  shard.last_completed = 0;
  shard.last_progress = Clock::now();
  const double recovery =
      std::chrono::duration<double, std::milli>(Clock::now() -
                                                (shard.down_since ==
                                                         Clock::time_point{}
                                                     ? now
                                                     : shard.down_since))
          .count();
  shard.last_recovery_ms.store(recovery, std::memory_order_relaxed);
  shard.down_since = Clock::time_point{};
  shard.health.store(ShardHealth::kHealthy, std::memory_order_release);
  log_info("net: shard ", index, " restarted in ", recovery, " ms");
}

void ShardPool::retire_shard(std::size_t index) {
  Shard* shard = nullptr;
  {
    std::unique_lock<std::shared_mutex> lock(membership_mutex_);
    shard = shards_[index].get();
    ring_.remove_shard(index);  // no-op when the drain already removed it
    shard->in_ring.store(false, std::memory_order_release);
    shard->health.store(ShardHealth::kRetired, std::memory_order_release);
  }
  // The stopped engine stays in place as a tombstone: stats() keeps reading
  // its final counters, and slot indices stay stable for open references.
  shard->engine->stop();
  log_info("net: shard ", index, " drained and retired");
}

// ------------------------------------------------------------------ stats

StatsPayload ShardPool::stats() const {
  std::shared_lock<std::shared_mutex> lock(membership_mutex_);
  StatsPayload payload;
  payload.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    const serve::ServeMetrics& m = shard->engine->metrics();
    ShardStatsWire wire;
    wire.accepted = m.accepted.load(std::memory_order_relaxed);
    wire.completed = m.completed.load(std::memory_order_relaxed);
    wire.rejected_queue_full = m.rejected_queue_full.load(std::memory_order_relaxed);
    wire.deadline_exceeded = m.deadline_exceeded.load(std::memory_order_relaxed);
    wire.degraded = m.degraded.load(std::memory_order_relaxed);
    wire.failed = m.failed.load(std::memory_order_relaxed);
    wire.chunks_fed = m.chunks_fed.load(std::memory_order_relaxed);
    const std::int64_t active = shard->sessions_active.load(std::memory_order_relaxed);
    wire.sessions_active = active > 0 ? static_cast<std::uint64_t>(active) : 0;
    wire.sessions_rejected = shard->sessions_rejected.load(std::memory_order_relaxed);
    wire.health = static_cast<std::uint64_t>(
        shard->health.load(std::memory_order_acquire));
    wire.epoch = shard->epoch.load(std::memory_order_acquire);
    wire.restarts = shard->restarts.load(std::memory_order_relaxed);
    payload.shards.push_back(wire);
  }
  return payload;
}

std::vector<ShardHealthWire> ShardPool::health_snapshot() const {
  std::shared_lock<std::shared_mutex> lock(membership_mutex_);
  std::vector<ShardHealthWire> out;
  out.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    ShardHealthWire wire;
    wire.slot = static_cast<std::uint32_t>(s);
    wire.health = static_cast<std::uint8_t>(
        shard.health.load(std::memory_order_acquire));
    wire.in_ring = shard.in_ring.load(std::memory_order_acquire) ? 1 : 0;
    wire.epoch = shard.epoch.load(std::memory_order_acquire);
    wire.restarts = shard.restarts.load(std::memory_order_relaxed);
    out.push_back(wire);
  }
  return out;
}

std::string ShardPool::metrics_text() const {
  const std::vector<ShardHealthWire> snapshot = health_snapshot();
  std::ostringstream out;
  out << "# TYPE earsonar_net_shard_health gauge\n";
  for (const ShardHealthWire& s : snapshot)
    out << "earsonar_net_shard_health{shard=\"" << s.slot << "\"} "
        << static_cast<unsigned>(s.health) << "\n";
  out << "# TYPE earsonar_net_shard_in_ring gauge\n";
  for (const ShardHealthWire& s : snapshot)
    out << "earsonar_net_shard_in_ring{shard=\"" << s.slot << "\"} "
        << static_cast<unsigned>(s.in_ring) << "\n";
  out << "# TYPE earsonar_net_shard_epoch counter\n";
  for (const ShardHealthWire& s : snapshot)
    out << "earsonar_net_shard_epoch{shard=\"" << s.slot << "\"} " << s.epoch
        << "\n";
  out << "# TYPE earsonar_net_shard_restarts_total counter\n";
  for (const ShardHealthWire& s : snapshot)
    out << "earsonar_net_shard_restarts_total{shard=\"" << s.slot << "\"} "
        << s.restarts << "\n";
  out << "# TYPE earsonar_net_shard_sessions_active gauge\n"
      << "# TYPE earsonar_net_shard_last_recovery_ms gauge\n";
  {
    std::shared_lock<std::shared_mutex> lock(membership_mutex_);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      const std::int64_t active =
          shards_[s]->sessions_active.load(std::memory_order_relaxed);
      out << "earsonar_net_shard_sessions_active{shard=\"" << s << "\"} "
          << (active > 0 ? active : 0) << "\n";
      out << "earsonar_net_shard_last_recovery_ms{shard=\"" << s << "\"} "
          << shards_[s]->last_recovery_ms.load(std::memory_order_relaxed)
          << "\n";
    }
  }
  out << "# TYPE earsonar_net_shard_resizes_total counter\n"
      << "earsonar_net_shard_resizes_total "
      << resizes_.load(std::memory_order_relaxed) << "\n";
  return out.str();
}

}  // namespace earsonar::net
