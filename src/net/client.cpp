#include "net/client.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "dsp/interpolate.hpp"

namespace earsonar::net {

namespace {
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}
}  // namespace

NetClient::NetClient(const std::string& host, std::uint16_t port)
    : stream_(TcpStream::connect(host, port)) {}

SessionOutcome NetClient::run_session(const audio::Waveform& recording,
                                      const SessionOptions& options) {
  SessionOutcome outcome;
  const auto start = Clock::now();

  // Client-side resampling to the pipeline rate — the exact transform
  // EarSonar::analyze applies first, moved to the device so the server only
  // ever sees pipeline-rate samples (and the wire carries the same doubles
  // the batch path would compute on).
  std::span<const double> samples = recording.view();
  std::vector<double> resampled;
  if (recording.sample_rate() != expected_rate_) {
    resampled = dsp::resample_to_rate(samples, recording.sample_rate(),
                                      expected_rate_);
    samples = resampled;
  }

  const auto fail_transport = [&](const std::string& message) {
    outcome.kind = SessionOutcome::Kind::kTransport;
    outcome.message = message;
    outcome.rtt_ms = ms_since(start);
    return outcome;
  };

  // Reads frames until one terminates this session; true when `outcome` is
  // final. Connection-scoped frames (stray Pong etc.) are skipped.
  const auto read_terminal = [&]() -> bool {
    for (;;) {
      const ReadFrameResult read = read_frame(stream_, arena_);
      if (read.kind == ReadFrameResult::Kind::kEof) {
        fail_transport("connection closed by server");
        return true;
      }
      if (read.kind == ReadFrameResult::Kind::kMalformed) {
        fail_transport(std::string("malformed server frame: ") +
                       to_string(read.status));
        return true;
      }
      if (read.kind == ReadFrameResult::Kind::kIoError) {
        fail_transport(read.io_error);
        return true;
      }
      const FrameHeader& header = read.header;
      if (header.session_id != options.session_id) continue;
      const std::span<const std::uint8_t> payload = payload_bytes(arena_, header);
      switch (header.type) {
        case FrameType::kHelloAck: {
          const std::optional<HelloAckPayload> ack = decode_hello_ack(payload);
          if (!ack) {
            fail_transport("malformed HelloAck");
            return true;
          }
          outcome.admitted = true;
          outcome.shard = ack->shard;
          expected_rate_ = ack->sample_rate;
          return false;  // session continues
        }
        case FrameType::kResult: {
          std::optional<ResultPayload> result = decode_result(payload);
          if (!result) {
            fail_transport("malformed Result");
            return true;
          }
          outcome.kind = SessionOutcome::Kind::kResult;
          outcome.result = std::move(*result);
          outcome.rtt_ms = ms_since(start);
          return true;
        }
        case FrameType::kReject: {
          const std::optional<StatusPayload> status = decode_status(payload);
          outcome.kind = SessionOutcome::Kind::kRejected;
          outcome.code = status ? status->code : 0;
          outcome.message = status ? status->message : "";
          outcome.rtt_ms = ms_since(start);
          return true;
        }
        case FrameType::kError: {
          const std::optional<StatusPayload> status = decode_status(payload);
          outcome.kind = SessionOutcome::Kind::kError;
          outcome.code = status ? status->code : 0;
          outcome.message = status ? status->message : "";
          outcome.rtt_ms = ms_since(start);
          return true;
        }
        default:
          continue;  // not a terminal frame for this session
      }
    }
  };

  try {
    HelloPayload hello;
    hello.sample_rate = expected_rate_;
    hello.deadline_ms = options.deadline_ms;
    write_frame(stream_, FrameType::kHello, options.session_id,
                encode_hello(hello));
  } catch (const std::exception& e) {
    return fail_transport(e.what());
  }
  if (read_terminal()) return outcome;  // rejected or transport-failed at Hello

  // Stream the audio. kMaxPayload bounds a frame, so cap the chunk size at
  // what one frame can carry.
  const std::size_t chunk =
      std::min(std::max<std::size_t>(options.chunk_samples, 1),
               kMaxPayload / sizeof(double));
  try {
    for (std::size_t pos = 0; pos < samples.size(); pos += chunk) {
      if (pos > 0 && options.chunk_period_s > 0.0) {
        // Real-time pacing: the device has not captured the next chunk yet.
        std::this_thread::sleep_for(
            std::chrono::duration<double>(options.chunk_period_s));
      }
      const std::size_t len = std::min(chunk, samples.size() - pos);
      write_chunk_frame(stream_, options.session_id, samples.subspan(pos, len));
    }
    write_frame(stream_, FrameType::kFinish, options.session_id, {});
  } catch (const std::exception& e) {
    // The server may have ended the session mid-stream (overflow, deadline)
    // — its terminal frame explains the failed write better than EPIPE.
    const std::string transport_error = e.what();
    if (read_terminal()) {
      if (outcome.kind == SessionOutcome::Kind::kTransport)
        outcome.message = transport_error;
      return outcome;
    }
    return fail_transport(transport_error);
  }
  read_terminal();
  return outcome;
}

std::optional<double> NetClient::ping(std::size_t payload_size) {
  std::vector<std::uint8_t> pattern(payload_size);
  for (std::size_t i = 0; i < pattern.size(); ++i)
    pattern[i] = static_cast<std::uint8_t>(i * 131 + 7);
  const auto start = Clock::now();
  try {
    write_frame(stream_, FrameType::kPing, 0, pattern);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  const ReadFrameResult read = read_frame(stream_, arena_);
  if (read.kind != ReadFrameResult::Kind::kFrame ||
      read.header.type != FrameType::kPong)
    return std::nullopt;
  const std::span<const std::uint8_t> echoed = payload_bytes(arena_, read.header);
  if (echoed.size() != pattern.size() ||
      (!pattern.empty() &&
       std::memcmp(echoed.data(), pattern.data(), pattern.size()) != 0))
    return std::nullopt;
  return ms_since(start);
}

std::optional<StatsPayload> NetClient::fetch_stats() {
  try {
    write_frame(stream_, FrameType::kStats, 0, {});
  } catch (const std::exception&) {
    return std::nullopt;
  }
  const ReadFrameResult read = read_frame(stream_, arena_);
  if (read.kind != ReadFrameResult::Kind::kFrame ||
      read.header.type != FrameType::kStatsReply)
    return std::nullopt;
  return decode_stats(payload_bytes(arena_, read.header));
}

}  // namespace earsonar::net
