#include "net/client.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dsp/interpolate.hpp"

namespace earsonar::net {

namespace {
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}
}  // namespace

void RetryPolicy::validate() const {
  require(max_attempts >= 1, "RetryPolicy: max_attempts must be >= 1");
  require(initial_backoff_ms > 0.0,
          "RetryPolicy: initial_backoff_ms must be positive");
  require(max_backoff_ms >= initial_backoff_ms,
          "RetryPolicy: max_backoff_ms must be >= initial_backoff_ms");
  require(multiplier >= 1.0, "RetryPolicy: multiplier must be >= 1");
  require(jitter >= 0.0 && jitter < 1.0,
          "RetryPolicy: jitter must be in [0, 1)");
  require(budget_ms >= 0.0, "RetryPolicy: budget_ms must be >= 0");
}

NetClient::NetClient(const std::string& host, std::uint16_t port,
                     int connect_timeout_ms, int read_timeout_ms)
    : host_(host),
      port_(port),
      connect_timeout_ms_(connect_timeout_ms),
      read_timeout_ms_(read_timeout_ms),
      stream_(TcpStream::connect(host, port, connect_timeout_ms)) {
  if (read_timeout_ms_ > 0) stream_.set_read_timeout_ms(read_timeout_ms_);
}

void NetClient::reconnect() {
  stream_.close();
  stream_ = TcpStream::connect(host_, port_, connect_timeout_ms_);
  if (read_timeout_ms_ > 0) stream_.set_read_timeout_ms(read_timeout_ms_);
}

SessionOutcome NetClient::run_session(const audio::Waveform& recording,
                                      const SessionOptions& options) {
  SessionOutcome outcome;
  const auto start = Clock::now();

  // Client-side resampling to the pipeline rate — the exact transform
  // EarSonar::analyze applies first, moved to the device so the server only
  // ever sees pipeline-rate samples (and the wire carries the same doubles
  // the batch path would compute on).
  std::span<const double> samples = recording.view();
  std::vector<double> resampled;
  if (options.workload == 0 && recording.sample_rate() != expected_rate_) {
    // Absorbance payloads are curve bins, not audio — never resample them.
    resampled = dsp::resample_to_rate(samples, recording.sample_rate(),
                                      expected_rate_);
    samples = resampled;
  }

  const auto fail_transport = [&](const std::string& message) {
    outcome.kind = SessionOutcome::Kind::kTransport;
    outcome.message = message;
    outcome.rtt_ms = ms_since(start);
    return outcome;
  };

  // Reads frames until one terminates this session; true when `outcome` is
  // final. Connection-scoped frames (stray Pong etc.) are skipped.
  const auto read_terminal = [&]() -> bool {
    for (;;) {
      const ReadFrameResult read = read_frame(stream_, arena_);
      if (read.kind == ReadFrameResult::Kind::kEof) {
        fail_transport("connection closed by server");
        return true;
      }
      if (read.kind == ReadFrameResult::Kind::kMalformed) {
        fail_transport(std::string("malformed server frame: ") +
                       to_string(read.status));
        return true;
      }
      if (read.kind == ReadFrameResult::Kind::kIoError) {
        fail_transport(read.io_error);
        return true;
      }
      const FrameHeader& header = read.header;
      if (header.session_id != options.session_id) continue;
      const std::span<const std::uint8_t> payload = payload_bytes(arena_, header);
      switch (header.type) {
        case FrameType::kHelloAck: {
          const std::optional<HelloAckPayload> ack = decode_hello_ack(payload);
          if (!ack) {
            fail_transport("malformed HelloAck");
            return true;
          }
          outcome.admitted = true;
          outcome.shard = ack->shard;
          expected_rate_ = ack->sample_rate;
          return false;  // session continues
        }
        case FrameType::kResult: {
          std::optional<ResultPayload> result = decode_result(payload);
          if (!result) {
            fail_transport("malformed Result");
            return true;
          }
          outcome.kind = SessionOutcome::Kind::kResult;
          outcome.result = std::move(*result);
          outcome.rtt_ms = ms_since(start);
          return true;
        }
        case FrameType::kReject: {
          const std::optional<StatusPayload> status = decode_status(payload);
          outcome.kind = SessionOutcome::Kind::kRejected;
          outcome.code = status ? status->code : 0;
          outcome.message = status ? status->message : "";
          outcome.rtt_ms = ms_since(start);
          return true;
        }
        case FrameType::kError: {
          const std::optional<StatusPayload> status = decode_status(payload);
          outcome.kind = SessionOutcome::Kind::kError;
          outcome.code = status ? status->code : 0;
          outcome.message = status ? status->message : "";
          outcome.rtt_ms = ms_since(start);
          return true;
        }
        default:
          continue;  // not a terminal frame for this session
      }
    }
  };

  try {
    HelloPayload hello;
    hello.sample_rate = expected_rate_;
    hello.deadline_ms = options.deadline_ms;
    hello.workload = options.workload;
    write_frame(stream_, FrameType::kHello, options.session_id,
                encode_hello(hello));
  } catch (const std::exception& e) {
    return fail_transport(e.what());
  }
  if (read_terminal()) return outcome;  // rejected or transport-failed at Hello

  // Stream the audio. kMaxPayload bounds a frame, so cap the chunk size at
  // what one frame can carry.
  const std::size_t chunk =
      std::min(std::max<std::size_t>(options.chunk_samples, 1),
               kMaxPayload / sizeof(double));
  try {
    for (std::size_t pos = 0; pos < samples.size(); pos += chunk) {
      if (pos > 0 && options.chunk_period_s > 0.0) {
        // Real-time pacing: the device has not captured the next chunk yet.
        std::this_thread::sleep_for(
            std::chrono::duration<double>(options.chunk_period_s));
      }
      const std::size_t len = std::min(chunk, samples.size() - pos);
      write_chunk_frame(stream_, options.session_id, samples.subspan(pos, len));
    }
    write_frame(stream_, FrameType::kFinish, options.session_id, {});
  } catch (const std::exception& e) {
    // The server may have ended the session mid-stream (overflow, deadline)
    // — its terminal frame explains the failed write better than EPIPE.
    const std::string transport_error = e.what();
    if (read_terminal()) {
      if (outcome.kind == SessionOutcome::Kind::kTransport)
        outcome.message = transport_error;
      return outcome;
    }
    return fail_transport(transport_error);
  }
  read_terminal();
  return outcome;
}

bool NetClient::retryable(const SessionOutcome& outcome) {
  switch (outcome.kind) {
    case SessionOutcome::Kind::kResult:
      return false;
    case SessionOutcome::Kind::kTransport:
      // Connection died or timed out: reconnect and resend. The session
      // never completed server-side (a session terminates in exactly one
      // frame, which we did not receive), so a resend cannot double-count.
      return true;
    case SessionOutcome::Kind::kRejected:
      switch (static_cast<RejectCode>(outcome.code)) {
        case RejectCode::kShardSessionsFull:
        case RejectCode::kQueueFull:
        case RejectCode::kTooManyConnections:
          return true;  // load-shedding: pressure drains
        case RejectCode::kShardDraining:
        case RejectCode::kShardRestarting:
          return true;  // lifecycle: the key remaps / the shard comes back
        case RejectCode::kStopped:
          return false;  // the server is going away; retrying is futile
        default:
          return false;
      }
    case SessionOutcome::Kind::kError:
      // kShardRestart is the one transient error: the shard that held the
      // session died and its replacement is healthy. Everything else
      // (bad rate, protocol, processing) is deterministic.
      return static_cast<ErrorCode>(outcome.code) == ErrorCode::kShardRestart;
  }
  return false;
}

SessionOutcome NetClient::run_session_with_retry(
    const audio::Waveform& recording, const SessionOptions& options,
    const RetryPolicy& policy) {
  policy.validate();
  const auto start = Clock::now();
  // Jitter stream is per-call and seeded: a fleet of clients with distinct
  // seeds desynchronizes, while one client replays its exact sleep sequence.
  Rng jitter_rng(splitmix64(policy.seed ^ options.session_id));

  SessionOutcome outcome;
  double backoff_ms = policy.initial_backoff_ms;
  bool connected = true;
  for (std::size_t attempt = 1;; ++attempt) {
    if (!connected) {
      try {
        reconnect();
        connected = true;
      } catch (const std::exception& e) {
        // A failed dial is this attempt's (transport) outcome — the server
        // may still be restarting its listener; keep backing off.
        outcome = SessionOutcome{};
        outcome.kind = SessionOutcome::Kind::kTransport;
        outcome.message = e.what();
      }
    }
    if (connected) {
      outcome = run_session(recording, options);
      if (outcome.kind == SessionOutcome::Kind::kTransport) connected = false;
    }
    outcome.attempts = attempt;
    if (!retryable(outcome)) return outcome;
    if (attempt >= policy.max_attempts) return outcome;

    // Budget check before sleeping: a retry that cannot finish inside the
    // deadline is worse than an honest failure now.
    double sleep_ms = backoff_ms;
    if (policy.jitter > 0.0)
      sleep_ms *= 1.0 + jitter_rng.uniform(-policy.jitter, policy.jitter);
    if (policy.budget_ms > 0.0) {
      const double remaining = policy.budget_ms - ms_since(start);
      if (remaining <= 0.0) return outcome;
      sleep_ms = std::min(sleep_ms, remaining);
    }
    if (sleep_ms > 0.0)
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(sleep_ms));
    backoff_ms = std::min(backoff_ms * policy.multiplier, policy.max_backoff_ms);
  }
}

std::optional<double> NetClient::ping(std::size_t payload_size) {
  std::vector<std::uint8_t> pattern(payload_size);
  for (std::size_t i = 0; i < pattern.size(); ++i)
    pattern[i] = static_cast<std::uint8_t>(i * 131 + 7);
  const auto start = Clock::now();
  try {
    write_frame(stream_, FrameType::kPing, 0, pattern);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  const ReadFrameResult read = read_frame(stream_, arena_);
  if (read.kind != ReadFrameResult::Kind::kFrame ||
      read.header.type != FrameType::kPong)
    return std::nullopt;
  const std::span<const std::uint8_t> echoed = payload_bytes(arena_, read.header);
  if (echoed.size() != pattern.size() ||
      (!pattern.empty() &&
       std::memcmp(echoed.data(), pattern.data(), pattern.size()) != 0))
    return std::nullopt;
  return ms_since(start);
}

std::optional<StatsPayload> NetClient::fetch_stats() {
  try {
    write_frame(stream_, FrameType::kStats, 0, {});
  } catch (const std::exception&) {
    return std::nullopt;
  }
  const ReadFrameResult read = read_frame(stream_, arena_);
  if (read.kind != ReadFrameResult::Kind::kFrame ||
      read.header.type != FrameType::kStatsReply)
    return std::nullopt;
  return decode_stats(payload_bytes(arena_, read.header));
}

std::optional<AdminReplyPayload> NetClient::admin(AdminOp op,
                                                  std::uint32_t shard) {
  AdminPayload request;
  request.op = op;
  request.shard = shard;
  try {
    write_frame(stream_, FrameType::kAdmin, 0, encode_admin(request));
  } catch (const std::exception&) {
    return std::nullopt;
  }
  const ReadFrameResult read = read_frame(stream_, arena_);
  if (read.kind != ReadFrameResult::Kind::kFrame ||
      read.header.type != FrameType::kAdminReply)
    return std::nullopt;
  return decode_admin_reply(payload_bytes(arena_, read.header));
}

}  // namespace earsonar::net
