// EarSonar wire protocol: length-prefixed binary frames.
//
// Everything the networked front-end speaks fits in one frame shape:
//
//   offset  size  field
//        0     2  magic 0x5345 ("ES", little-endian u16)
//        2     1  protocol version (kProtocolVersion)
//        3     1  frame type (FrameType)
//        4     4  payload length in bytes (u32, <= max_payload)
//        8     8  session id (u64; 0 for connection-scoped frames)
//       16     4  reserved (must be 0)
//       20     4  CRC32 over header bytes [0, 20) + payload
//       24     —  payload
//
// The 24-byte header is a multiple of 8, so a payload read into an 8-byte-
// aligned buffer keeps float64 audio samples aligned — that is what lets the
// server hand a chunk frame's payload to StreamingSession::feed without a
// copy (see server.cpp). All integers are little-endian on the wire,
// serialized byte-by-byte so the code is endian-agnostic. doubles travel as
// their IEEE-754 bit pattern (bit_cast to u64), which is what makes the
// networked analysis *bit-identical* to the in-process one: no text round-
// trip, no narrowing.
//
// A session is one request: Hello (sample rate + deadline) -> HelloAck or
// Reject -> Chunk* (audio) -> Finish -> Result or Error. Ping/Pong and
// Stats are connection-scoped (session id 0). Rejections are always
// explicit frames carrying a RejectCode + text — the protocol has no silent
// drop: every opened session terminates in exactly one of Result, Reject,
// or Error (or a transport failure the client observes as EOF).
//
// This header is socket-free on purpose: FrameDecoder consumes arbitrary
// byte streams, which is what tests/fuzz/frame_fuzz.cpp fuzzes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace earsonar::net {

inline constexpr std::uint16_t kMagic = 0x5345;  // "ES" little-endian
inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderSize = 24;
/// Hard ceiling on one frame's payload. Audio chunks above this are split by
/// the client; anything larger on the wire is a protocol error, which bounds
/// per-connection memory no matter what a peer claims in its length field.
inline constexpr std::size_t kMaxPayload = 1u << 20;  // 1 MiB = 131072 samples

enum class FrameType : std::uint8_t {
  kHello = 1,      ///< c->s: open a session (HelloPayload)
  kHelloAck = 2,   ///< s->c: session admitted (HelloAckPayload)
  kChunk = 3,      ///< c->s: float64 audio samples, length % 8 == 0
  kFinish = 4,     ///< c->s: end of audio; run the analysis (empty payload)
  kResult = 5,     ///< s->c: analysis result (ResultPayload)
  kReject = 6,     ///< s->c: admission refused (StatusPayload, RejectCode)
  kError = 7,      ///< s->c: protocol/processing error (StatusPayload, ErrorCode)
  kPing = 8,       ///< c->s: echo request (opaque payload)
  kPong = 9,       ///< s->c: echo reply (payload mirrored)
  kStats = 10,     ///< c->s: per-shard stats request (empty payload)
  kStatsReply = 11,///< s->c: StatsPayload
  kAdmin = 12,     ///< c->s: shard lifecycle op, session id 0 (AdminPayload)
  kAdminReply = 13 ///< s->c: op outcome + health snapshot (AdminReplyPayload)
};

/// True for the type values the protocol defines (decoders reject the rest).
[[nodiscard]] bool frame_type_known(std::uint8_t type);

/// Why an admission was refused. On the wire as the u16 head of a
/// StatusPayload in a kReject frame.
enum class RejectCode : std::uint16_t {
  kShardSessionsFull = 1,  ///< target shard has no free live-session slot
  kQueueFull = 2,          ///< shard's request queue rejected the finish
  kStopped = 3,            ///< server or shard is shutting down
  kTooManyConnections = 4, ///< connection-level admission cap reached
  kShardDraining = 5,      ///< target shard is draining; retry (remaps on drop)
  kShardRestarting = 6,    ///< target shard is down/restarting; retry shortly
};

/// Why a frame or session failed. On the wire as the u16 head of a
/// StatusPayload in a kError frame.
enum class ErrorCode : std::uint16_t {
  kProtocol = 1,         ///< malformed frame sequence or header
  kBadFrame = 2,         ///< CRC mismatch / bad length
  kUnsupportedRate = 3,  ///< Hello sample rate != shard pipeline rate
  kProcessing = 4,       ///< the analysis threw
  kDeadlineExceeded = 5, ///< shed or cancelled on the session deadline
  kStreamOverflow = 6,   ///< session sample buffer full (chunk rejected)
  kInternal = 7,         ///< server-side dispatch failure
  kShardRestart = 8,     ///< the session's shard was restarted mid-session
};

[[nodiscard]] const char* to_string(RejectCode code);
[[nodiscard]] const char* to_string(ErrorCode code);

struct FrameHeader {
  std::uint8_t version = kProtocolVersion;
  FrameType type = FrameType::kHello;
  std::uint32_t payload_len = 0;
  std::uint64_t session_id = 0;
  std::uint32_t crc = 0;
};

// ------------------------------------------------------------------ CRC32

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, the zlib crc32). Dependency-
/// free table implementation; crc32("123456789") == 0xCBF43926.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> bytes,
                                  std::uint32_t seed = 0);

// ------------------------------------------------- little-endian primitives

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v);
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v);
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v);
void put_f64(std::vector<std::uint8_t>& out, double v);
[[nodiscard]] std::uint16_t get_u16(std::span<const std::uint8_t> in, std::size_t at);
[[nodiscard]] std::uint32_t get_u32(std::span<const std::uint8_t> in, std::size_t at);
[[nodiscard]] std::uint64_t get_u64(std::span<const std::uint8_t> in, std::size_t at);
[[nodiscard]] double get_f64(std::span<const std::uint8_t> in, std::size_t at);

// ------------------------------------------------------------ frame codec

/// Serializes header + payload into one wire buffer (CRC computed here).
[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    FrameType type, std::uint64_t session_id, std::span<const std::uint8_t> payload);

/// Writes the 24 header bytes (CRC already computed over `payload`) into
/// `out`. The split form is what the socket layer uses to send a chunk
/// payload from the caller's buffer without concatenating.
void encode_header(std::span<std::uint8_t> out, FrameType type,
                   std::uint64_t session_id, std::span<const std::uint8_t> payload);

enum class DecodeStatus : std::uint8_t {
  kOk,           ///< header parsed
  kNeedMore,     ///< fewer than kHeaderSize bytes available
  kBadMagic,
  kBadVersion,
  kBadType,
  kBadLength,    ///< payload_len exceeds the decoder's max
  kBadReserved,
  kBadCrc,       ///< reported by check_crc / FrameDecoder, not parse_header
};

[[nodiscard]] const char* to_string(DecodeStatus status);

/// Parses and validates the fixed 24-byte header (everything except the
/// CRC, which needs the payload). `max_payload` bounds the length field.
[[nodiscard]] DecodeStatus parse_header(std::span<const std::uint8_t> bytes,
                                        FrameHeader& out,
                                        std::size_t max_payload = kMaxPayload);

/// Verifies header.crc against the actual header bytes + payload.
[[nodiscard]] bool check_crc(std::span<const std::uint8_t> header_bytes,
                             std::span<const std::uint8_t> payload,
                             const FrameHeader& header);

/// A decoded frame with an owning payload copy (the incremental decoder's
/// output; the server's blocking read path keeps payloads zero-copy in its
/// own aligned buffers instead — see server.cpp).
struct Frame {
  FrameHeader header;
  std::vector<std::uint8_t> payload;
};

/// Incremental decoder over an arbitrary byte stream. Push bytes as they
/// arrive; next() yields complete validated frames. The first malformed
/// byte sequence poisons the stream (error() != kOk and next() stays empty)
/// — exactly how a server connection reacts: report, then hang up. This is
/// the surface tests/fuzz/frame_fuzz.cpp fuzzes.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_payload = kMaxPayload);

  void push(std::span<const std::uint8_t> bytes);
  [[nodiscard]] std::optional<Frame> next();

  [[nodiscard]] DecodeStatus error() const { return error_; }
  [[nodiscard]] bool poisoned() const { return error_ != DecodeStatus::kOk; }
  /// Bytes buffered but not yet consumed as frames.
  [[nodiscard]] std::size_t pending_bytes() const { return buffer_.size() - consumed_; }

 private:
  std::size_t max_payload_;
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;
  DecodeStatus error_ = DecodeStatus::kOk;
};

// -------------------------------------------------------- payload structs

struct HelloPayload {
  double sample_rate = 48000.0;
  double deadline_ms = 0.0;  ///< 0 = no deadline
  /// serve::workload_index value: 0 = EarSonar (Chunk frames carry audio
  /// samples), 1 = wideband absorbance (Chunk frames carry curve bins).
  /// Wire back-compat: a legacy 16-byte Hello decodes as workload 0, so old
  /// clients keep working against new servers (docs/workloads.md).
  std::uint8_t workload = 0;
};

struct HelloAckPayload {
  std::uint32_t shard = 0;        ///< which shard the session landed on
  double sample_rate = 48000.0;   ///< the rate the shard's pipeline expects
};

/// kReject / kError body: a machine-readable code plus human-readable text.
struct StatusPayload {
  std::uint16_t code = 0;
  std::string message;
};

/// kResult body: the subset of serve::ServeResult a remote client needs,
/// including the raw feature vector so the loopback equivalence test can
/// compare the wire answer bit-for-bit against the in-process pipeline.
struct ResultPayload {
  bool usable = false;
  bool degraded = false;
  bool has_diagnosis = false;
  std::uint8_t state = 0;        ///< core::MeeState index when has_diagnosis
  double confidence = 0.0;
  std::uint32_t events = 0;
  std::uint32_t echoes = 0;
  std::uint64_t model_version = 0;
  double queue_ms = 0.0;
  double total_ms = 0.0;
  std::vector<double> features;  ///< empty when !usable
};

/// One shard's counters inside a kStatsReply (see shard.hpp for how the
/// pool assembles them).
struct ShardStatsWire {
  std::uint64_t accepted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t degraded = 0;
  std::uint64_t failed = 0;
  std::uint64_t chunks_fed = 0;
  std::uint64_t sessions_active = 0;
  std::uint64_t sessions_rejected = 0;
  std::uint64_t health = 0;    ///< ShardHealth value (shard.hpp)
  std::uint64_t epoch = 0;     ///< admission epoch; bumps on restart/drain overrun
  std::uint64_t restarts = 0;  ///< completed supervisor restarts
};

struct StatsPayload {
  std::vector<ShardStatsWire> shards;
};

// ------------------------------------------------------ admin (lifecycle)

/// What a session-0 kAdmin frame asks the shard pool to do. Gated behind
/// NetServerConfig::enable_admin; refused with ErrorCode::kProtocol when off.
enum class AdminOp : std::uint8_t {
  kAddShard = 1,      ///< grow the pool by one shard (minimal-remap ring insert)
  kDrainShard = 2,    ///< graceful drain: out of the ring, finish in-flight, retire
  kRestartShard = 3,  ///< kill the shard (supervisor restarts it)
  kHealth = 4,        ///< no-op; reply carries the health snapshot
};

struct AdminPayload {
  AdminOp op = AdminOp::kHealth;
  std::uint32_t shard = 0;  ///< target slot (ignored by kAddShard/kHealth)
};

/// One shard slot's lifecycle state inside a kAdminReply.
struct ShardHealthWire {
  std::uint32_t slot = 0;
  std::uint8_t health = 0;   ///< ShardHealth value (shard.hpp)
  std::uint8_t in_ring = 0;  ///< 1 when the slot still owns ring points
  std::uint64_t epoch = 0;
  std::uint64_t restarts = 0;
};

struct AdminReplyPayload {
  std::uint16_t code = 0;  ///< 0 = ok, nonzero = refused (message says why)
  std::string message;
  std::vector<ShardHealthWire> shards;
};

[[nodiscard]] std::vector<std::uint8_t> encode_hello(const HelloPayload& hello);
[[nodiscard]] std::vector<std::uint8_t> encode_hello_ack(const HelloAckPayload& ack);
[[nodiscard]] std::vector<std::uint8_t> encode_status(std::uint16_t code,
                                                      std::string_view message);
[[nodiscard]] std::vector<std::uint8_t> encode_result(const ResultPayload& result);
[[nodiscard]] std::vector<std::uint8_t> encode_stats(const StatsPayload& stats);
[[nodiscard]] std::vector<std::uint8_t> encode_admin(const AdminPayload& admin);
[[nodiscard]] std::vector<std::uint8_t> encode_admin_reply(
    const AdminReplyPayload& reply);

/// Decoders return nullopt on short/malformed payloads (a protocol error at
/// the call site, not an exception: remote bytes are data, not invariants).
[[nodiscard]] std::optional<HelloPayload> decode_hello(std::span<const std::uint8_t> p);
[[nodiscard]] std::optional<HelloAckPayload> decode_hello_ack(
    std::span<const std::uint8_t> p);
[[nodiscard]] std::optional<StatusPayload> decode_status(std::span<const std::uint8_t> p);
[[nodiscard]] std::optional<ResultPayload> decode_result(std::span<const std::uint8_t> p);
[[nodiscard]] std::optional<StatsPayload> decode_stats(std::span<const std::uint8_t> p);
[[nodiscard]] std::optional<AdminPayload> decode_admin(std::span<const std::uint8_t> p);
[[nodiscard]] std::optional<AdminReplyPayload> decode_admin_reply(
    std::span<const std::uint8_t> p);

}  // namespace earsonar::net
