#include "net/loadgen.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <numbers>
#include <sstream>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/wideband.hpp"
#include "net/client.hpp"
#include "net/shard.hpp"
#include "sim/absorbance.hpp"
#include "sim/probe.hpp"

namespace earsonar::net {

namespace {

using Clock = std::chrono::steady_clock;

/// One session's terminal outcome as the workers record it.
struct Record {
  SessionOutcome::Kind kind = SessionOutcome::Kind::kTransport;
  std::uint16_t code = 0;
  std::uint8_t workload = 0;  ///< serve::workload_index of this session
  double latency_ms = 0.0;
  std::size_t attempts = 1;
  Clock::time_point finished{};  ///< for the post-recovery tail split
};

/// What the chaos controller thread observed (single-writer; read after join).
struct ChaosOutcome {
  std::size_t events_fired = 0;
  double recovery_ms = -1.0;  ///< -1 until the pool converged
  bool all_healthy = false;
  Clock::time_point recovered_at{};
  bool have_recovered_at = false;
};

std::vector<audio::Waveform> build_population(const LoadGenConfig& config) {
  sim::SubjectFactory factory(static_cast<std::uint32_t>(config.seed));
  sim::ProbeConfig probe_config;
  probe_config.chirp_count = config.chirp_count;
  sim::EarProbe probe(probe_config);
  const auto states = sim::all_effusion_states();
  std::vector<audio::Waveform> recordings;
  recordings.reserve(config.population);
  for (std::size_t i = 0; i < config.population; ++i) {
    Rng rng(config.seed * 1000003ULL + i);
    recordings.push_back(probe.record_state(
        factory.make(static_cast<std::uint32_t>(i)), states[i % states.size()],
        sim::reference_earphone(), {}, rng));
  }
  return recordings;
}

/// The absorbance half of the population: one wideband curve per subject,
/// cycled through the effusion states like the recordings. The curve rides
/// the Waveform container unresampled (SessionOptions::workload tells the
/// client the values are bins, not audio).
std::vector<audio::Waveform> build_absorbance_population(
    const LoadGenConfig& config) {
  sim::SubjectFactory factory(static_cast<std::uint32_t>(config.seed));
  const std::vector<double> grid = core::wideband_frequency_grid();
  const auto states = sim::all_effusion_states();
  std::vector<audio::Waveform> curves;
  curves.reserve(config.population);
  for (std::size_t i = 0; i < config.population; ++i) {
    Rng rng(splitmix64(config.seed * 1000003ULL + i) ^ 0xab5ULL);
    curves.emplace_back(
        sim::absorbance_curve_state(factory.make(static_cast<std::uint32_t>(i)),
                                    states[i % states.size()], /*session=*/0,
                                    grid, rng),
        48000.0);
  }
  return curves;
}

/// Seeded per-session workload assignment: session i is absorbance with
/// probability `workload_mix`, independent of worker scheduling, so one seed
/// always replays one interleaving.
std::vector<std::uint8_t> build_workloads(const LoadGenConfig& config) {
  std::vector<std::uint8_t> workloads(config.sessions, 0);
  if (config.workload_mix <= 0.0) return workloads;
  Rng rng(splitmix64(config.seed ^ 0x3a1f00dULL));
  for (std::uint8_t& w : workloads)
    w = rng.bernoulli(config.workload_mix) ? 1 : 0;
  return workloads;
}

/// Poisson arrival offsets (seconds from run start), optionally modulated by
/// a diurnal curve: the run is one compressed "day", rate peaks mid-run.
std::vector<double> build_arrivals(const LoadGenConfig& config) {
  std::vector<double> arrivals;
  arrivals.reserve(config.sessions);
  Rng rng(config.seed ^ 0xa77ea15ULL);
  const double base = config.arrival_rate_hz;
  const double day_s = static_cast<double>(config.sessions) / base;
  const double ratio = config.diurnal ? config.diurnal_peak_to_trough : 1.0;
  const double m = (ratio - 1.0) / (ratio + 1.0);
  double t = 0.0;
  for (std::size_t i = 0; i < config.sessions; ++i) {
    const double frac = std::min(t / day_s, 1.0);
    const double rate =
        base * (1.0 - m * std::cos(2.0 * std::numbers::pi * frac));
    const double u = rng.uniform(0.0, 1.0);
    t += -std::log1p(-u) / rate;  // Exp(rate) inter-arrival
    arrivals.push_back(t);
  }
  return arrivals;
}

/// True when every non-retired shard in the snapshot is healthy — the
/// convergence predicate of the chaos drill. Retired slots are tombstones
/// of completed drains; they never become healthy again by design.
bool pool_healthy(const AdminReplyPayload& reply) {
  for (const ShardHealthWire& shard : reply.shards) {
    if (shard.health == static_cast<std::uint8_t>(ShardHealth::kRetired))
      continue;
    if (shard.health != static_cast<std::uint8_t>(ShardHealth::kHealthy))
      return false;
  }
  return !reply.shards.empty();
}

/// The drill's event loop: fires `chaos_events` seeded kill/drain/add
/// operations at evenly spaced points of the replay (watching the shared
/// dispatch counter), then polls health until the pool converges.
void chaos_controller(const LoadGenConfig& config,
                      const std::atomic<std::size_t>& next,
                      ChaosOutcome& out) {
  using namespace std::chrono_literals;
  try {
    NetClient admin(config.host, config.port, config.connect_timeout_ms,
                    config.read_timeout_ms);
    Rng rng(splitmix64(config.chaos_seed ^ 0xc4a05c4a05ULL));
    const std::size_t step = std::max<std::size_t>(
        1, config.sessions / (config.chaos_events + 1));
    Clock::time_point last_event{};
    for (std::size_t e = 1; e <= config.chaos_events; ++e) {
      const std::size_t threshold = std::min(e * step, config.sessions);
      while (next.load(std::memory_order_relaxed) < threshold)
        std::this_thread::sleep_for(2ms);
      const std::optional<AdminReplyPayload> health =
          admin.admin(AdminOp::kHealth);
      if (!health) return;  // admin channel broken; drill aborts silently
      std::vector<std::uint32_t> live;  // healthy, in-ring: valid targets
      for (const ShardHealthWire& shard : health->shards)
        if (shard.health == static_cast<std::uint8_t>(ShardHealth::kHealthy) &&
            shard.in_ring != 0)
          live.push_back(shard.slot);
      // 0 = kill, 1 = drain, 2 = add. A drain needs a survivor and a kill
      // needs a victim; infeasible draws degrade to an add (which always
      // grows capacity back).
      std::int64_t draw = rng.uniform_int(0, 2);
      if ((draw == 0 && live.empty()) || (draw == 1 && live.size() < 2))
        draw = 2;
      std::optional<AdminReplyPayload> reply;
      if (draw == 2) {
        reply = admin.admin(AdminOp::kAddShard);
      } else {
        const std::uint32_t victim = live[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1))];
        reply = admin.admin(
            draw == 0 ? AdminOp::kRestartShard : AdminOp::kDrainShard, victim);
      }
      if (!reply) return;
      ++out.events_fired;
      last_event = Clock::now();
    }
    if (out.events_fired == 0) return;
    // Recovery: poll until every surviving shard is healthy again. The
    // patience bound only caps the drill; a healthy pool converges in a few
    // supervisor ticks.
    const Clock::time_point patience = last_event + 30s;
    while (Clock::now() < patience) {
      const std::optional<AdminReplyPayload> health =
          admin.admin(AdminOp::kHealth);
      if (health && pool_healthy(*health)) {
        out.recovered_at = Clock::now();
        out.have_recovered_at = true;
        out.recovery_ms = std::chrono::duration<double, std::milli>(
                              out.recovered_at - last_event)
                              .count();
        out.all_healthy = true;
        return;
      }
      std::this_thread::sleep_for(10ms);
    }
  } catch (const std::exception&) {
    // The drill observes; it must never crash the measurement.
  }
}

double percentile(const std::vector<double>& sorted, double p) {
  // No samples means no latency statement. Returning 0.0 here made a
  // fully-rejected run report "p99_ms: 0" and read as fast; NaN propagates
  // into null-marked report fields instead.
  if (sorted.empty()) return std::numeric_limits<double>::quiet_NaN();
  const double rank = std::ceil(p * static_cast<double>(sorted.size()));
  const std::size_t index =
      std::min(sorted.size() - 1,
               static_cast<std::size_t>(rank > 1.0 ? rank - 1.0 : 0.0));
  return sorted[index];
}

/// JSON has no NaN literal; an absent measurement serialises as null.
std::string json_or_null(double value) {
  if (std::isnan(value)) return "null";
  std::ostringstream out;
  out << value;
  return out.str();
}

/// Text reports mark an absent measurement explicitly instead of printing 0.
std::string text_or_na(double value) {
  if (std::isnan(value)) return "n/a";
  std::ostringstream out;
  out << value;
  return out.str();
}

}  // namespace

void LoadGenConfig::validate() const {
  require(sessions >= 1, "LoadGenConfig: sessions must be >= 1");
  require(concurrency >= 1, "LoadGenConfig: concurrency must be >= 1");
  require(population >= 1, "LoadGenConfig: population must be >= 1");
  require(chunk_samples >= 1, "LoadGenConfig: chunk_samples must be >= 1");
  require(!open_loop || arrival_rate_hz > 0.0,
          "LoadGenConfig: open loop needs arrival_rate_hz > 0");
  require(diurnal_peak_to_trough >= 1.0,
          "LoadGenConfig: diurnal_peak_to_trough must be >= 1");
  require(time_scale >= 0.0, "LoadGenConfig: time_scale must be >= 0");
  require(max_attempts >= 1, "LoadGenConfig: max_attempts must be >= 1");
  require(retry_budget_ms >= 0.0,
          "LoadGenConfig: retry_budget_ms must be >= 0");
  require(connect_timeout_ms >= 0,
          "LoadGenConfig: connect_timeout_ms must be >= 0");
  require(read_timeout_ms >= 0, "LoadGenConfig: read_timeout_ms must be >= 0");
  require(!chaos || chaos_events >= 1,
          "LoadGenConfig: chaos needs chaos_events >= 1");
  require(workload_mix >= 0.0 && workload_mix <= 1.0,
          "LoadGenConfig: workload_mix must be in [0, 1]");
}

LoadReport run_loadgen(const LoadGenConfig& config) {
  config.validate();
  const std::vector<audio::Waveform> population = build_population(config);
  const std::vector<std::uint8_t> workloads = build_workloads(config);
  const std::vector<audio::Waveform> absorbance_population =
      config.workload_mix > 0.0 ? build_absorbance_population(config)
                                : std::vector<audio::Waveform>{};
  const std::vector<double> arrivals =
      config.open_loop ? build_arrivals(config) : std::vector<double>{};

  const double rate = 48000.0;  // probe rate; recordings are generated at it
  const double chunk_period_s =
      config.time_scale > 0.0
          ? config.time_scale * static_cast<double>(config.chunk_samples) / rate
          : 0.0;

  std::atomic<std::size_t> next{0};
  std::vector<std::vector<Record>> per_worker(config.concurrency);
  const auto t0 = Clock::now();

  const auto worker = [&](std::size_t worker_index) {
    std::vector<Record>& records = per_worker[worker_index];
    std::unique_ptr<NetClient> client;
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= config.sessions) break;
      Record record;
      // Tag before the try so a thrown dial still lands in the right
      // per-type bucket.
      record.workload = workloads[i];
      const auto scheduled =
          config.open_loop
              ? t0 + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(arrivals[i]))
              : Clock::now();
      if (config.open_loop) std::this_thread::sleep_until(scheduled);
      try {
        if (!client)
          client = std::make_unique<NetClient>(config.host, config.port,
                                               config.connect_timeout_ms,
                                               config.read_timeout_ms);
        const bool absorbance = workloads[i] != 0;
        SessionOptions options;
        options.session_id = i + 1;
        options.chunk_samples = config.chunk_samples;
        // Pacing models audio capture cadence; a 64-bin curve arrives whole.
        options.chunk_period_s = absorbance ? 0.0 : chunk_period_s;
        options.deadline_ms = config.deadline_ms;
        options.workload = workloads[i];
        const audio::Waveform& payload =
            absorbance ? absorbance_population[i % absorbance_population.size()]
                       : population[i % population.size()];
        SessionOutcome outcome;
        if (config.max_attempts > 1) {
          RetryPolicy policy;
          policy.max_attempts = config.max_attempts;
          policy.budget_ms = config.retry_budget_ms;
          policy.seed = config.seed;
          outcome = client->run_session_with_retry(payload, options, policy);
        } else {
          outcome = client->run_session(payload, options);
        }
        record.kind = outcome.kind;
        record.code = outcome.code;
        record.attempts = outcome.attempts;
        if (outcome.kind == SessionOutcome::Kind::kTransport)
          client.reset();  // the connection is dead; reconnect for the next
      } catch (const std::exception&) {
        record.kind = SessionOutcome::Kind::kTransport;
        client.reset();
      }
      // Open loop: latency counts from the *scheduled* arrival so time spent
      // waiting for a free worker is charged, not silently omitted.
      record.finished = Clock::now();
      record.latency_ms =
          std::chrono::duration<double, std::milli>(record.finished - scheduled)
              .count();
      records.push_back(record);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(config.concurrency);
  for (std::size_t w = 0; w < config.concurrency; ++w)
    threads.emplace_back(worker, w);
  ChaosOutcome chaos_out;
  std::thread chaos_thread;
  if (config.chaos)
    chaos_thread =
        std::thread(chaos_controller, std::cref(config), std::cref(next),
                    std::ref(chaos_out));
  for (std::thread& thread : threads) thread.join();
  if (chaos_thread.joinable()) chaos_thread.join();

  LoadReport report;
  report.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  std::vector<double> completed_latencies;
  std::vector<double> recovered_latencies;
  for (const std::vector<Record>& records : per_worker) {
    for (const Record& record : records) {
      ++report.attempted;
      report.retry_attempts += record.attempts - 1;
      WorkloadLoad& slice = report.per_workload[record.workload % 2];
      ++slice.attempted;
      if (record.kind == SessionOutcome::Kind::kResult &&
          (!chaos_out.have_recovered_at ||
           record.finished >= chaos_out.recovered_at))
        recovered_latencies.push_back(record.latency_ms);
      switch (record.kind) {
        case SessionOutcome::Kind::kResult:
          ++report.admitted;
          ++report.completed;
          ++slice.completed;
          completed_latencies.push_back(record.latency_ms);
          break;
        case SessionOutcome::Kind::kRejected:
          ++report.rejected;
          ++slice.rejected;
          if (record.code ==
              static_cast<std::uint16_t>(RejectCode::kShardSessionsFull))
            ++report.rejected_sessions_full;
          if (record.code == static_cast<std::uint16_t>(RejectCode::kQueueFull))
            ++report.rejected_queue_full;
          break;
        case SessionOutcome::Kind::kError:
          ++report.errored;
          ++slice.errored;
          if (record.code ==
              static_cast<std::uint16_t>(ErrorCode::kDeadlineExceeded))
            ++report.deadline_exceeded;
          break;
        case SessionOutcome::Kind::kTransport:
          ++report.transport_failures;
          ++slice.transport_failures;
          break;
      }
    }
  }
  report.completed_per_s =
      report.wall_s > 0.0 ? static_cast<double>(report.completed) / report.wall_s
                          : 0.0;
  std::sort(completed_latencies.begin(), completed_latencies.end());
  report.p50_ms = percentile(completed_latencies, 0.50);
  report.p99_ms = percentile(completed_latencies, 0.99);
  report.p999_ms = percentile(completed_latencies, 0.999);
  report.max_ms = completed_latencies.empty()
                      ? std::numeric_limits<double>::quiet_NaN()
                      : completed_latencies.back();
  std::sort(recovered_latencies.begin(), recovered_latencies.end());
  report.p99_recovered_ms = percentile(recovered_latencies, 0.99);

  report.chaos_events_fired = chaos_out.events_fired;
  report.recovery_ms = chaos_out.recovery_ms;
  report.all_healthy = config.chaos ? chaos_out.all_healthy : true;
  // A run where every session was attempted but none completed has no
  // latency evidence at all — treat it as an accounting failure so degenerate
  // chaos runs exit nonzero instead of reporting a null-latency "success".
  report.accounting_ok =
      report.attempted == config.sessions &&
      report.attempted == report.completed + report.rejected + report.errored +
                              report.transport_failures &&
      !(report.completed == 0 && report.attempted > 0);
  // The same exactness must hold inside every workload slice — a session
  // that terminated under the wrong type tag is an accounting bug even when
  // the totals happen to balance.
  for (const WorkloadLoad& slice : report.per_workload)
    if (slice.attempted != slice.completed + slice.rejected + slice.errored +
                               slice.transport_failures)
      report.accounting_ok = false;

  try {
    NetClient stats_client(config.host, config.port);
    if (std::optional<StatsPayload> stats = stats_client.fetch_stats()) {
      report.server = std::move(*stats);
      report.have_server_stats = true;
    }
  } catch (const std::exception&) {
    // Stats are best-effort; the client-side half of the report stands.
  }
  return report;
}

std::string LoadReport::text() const {
  std::ostringstream out;
  out << "sessions: " << attempted << " attempted, " << admitted
      << " admitted, " << completed << " completed\n";
  out << "refusals: " << rejected << " rejected ("
      << rejected_sessions_full << " sessions-full, " << rejected_queue_full
      << " queue-full), " << errored << " errored (" << deadline_exceeded
      << " deadline), " << transport_failures << " transport\n";
  out << "throughput: " << completed_per_s << " completed/s over " << wall_s
      << " s\n";
  out << "latency ms: p50 " << text_or_na(p50_ms) << ", p99 "
      << text_or_na(p99_ms) << ", p999 " << text_or_na(p999_ms) << ", max "
      << text_or_na(max_ms) << "\n";
  const char* kWorkloadNames[] = {"earsonar", "absorbance"};
  for (std::size_t w = 0; w < per_workload.size(); ++w) {
    const WorkloadLoad& slice = per_workload[w];
    if (slice.attempted == 0 && w != 0) continue;  // no absorbance traffic ran
    out << "workload " << kWorkloadNames[w] << ": " << slice.attempted
        << " attempted, " << slice.completed << " completed, "
        << slice.rejected << " rejected, " << slice.errored << " errored, "
        << slice.transport_failures << " transport\n";
  }
  if (retry_attempts > 0)
    out << "retries: " << retry_attempts << " extra attempts\n";
  if (chaos_events_fired > 0) {
    out << "chaos: " << chaos_events_fired << " events, recovery "
        << recovery_ms << " ms, all-healthy "
        << (all_healthy ? "yes" : "NO") << ", accounting "
        << (accounting_ok ? "ok" : "BROKEN") << ", post-recovery p99 "
        << text_or_na(p99_recovered_ms) << " ms\n";
  }
  if (have_server_stats) {
    for (std::size_t s = 0; s < server.shards.size(); ++s) {
      const ShardStatsWire& shard = server.shards[s];
      out << "shard " << s << ": accepted " << shard.accepted << ", completed "
          << shard.completed << ", queue-rejected " << shard.rejected_queue_full
          << ", deadline " << shard.deadline_exceeded << ", sessions-rejected "
          << shard.sessions_rejected << ", chunks " << shard.chunks_fed
          << ", restarts " << shard.restarts << "\n";
    }
  }
  return out.str();
}

std::string LoadReport::json() const {
  std::ostringstream out;
  out << "{\"attempted\": " << attempted << ", \"admitted\": " << admitted
      << ", \"completed\": " << completed << ", \"rejected\": " << rejected
      << ", \"rejected_sessions_full\": " << rejected_sessions_full
      << ", \"rejected_queue_full\": " << rejected_queue_full
      << ", \"errored\": " << errored
      << ", \"deadline_exceeded\": " << deadline_exceeded
      << ", \"transport_failures\": " << transport_failures
      << ", \"wall_s\": " << wall_s
      << ", \"completed_per_s\": " << completed_per_s
      << ", \"p50_ms\": " << json_or_null(p50_ms)
      << ", \"p99_ms\": " << json_or_null(p99_ms)
      << ", \"p999_ms\": " << json_or_null(p999_ms)
      << ", \"max_ms\": " << json_or_null(max_ms)
      << ", \"retry_attempts\": " << retry_attempts
      << ", \"chaos_events_fired\": " << chaos_events_fired
      << ", \"recovery_ms\": " << recovery_ms
      << ", \"all_healthy\": " << (all_healthy ? "true" : "false")
      << ", \"accounting_ok\": " << (accounting_ok ? "true" : "false")
      << ", \"p99_recovered_ms\": " << json_or_null(p99_recovered_ms)
      << ", \"workloads\": {";
  const char* kWorkloadNames[] = {"earsonar", "absorbance"};
  for (std::size_t w = 0; w < per_workload.size(); ++w) {
    const WorkloadLoad& slice = per_workload[w];
    out << (w ? ", " : "") << "\"" << kWorkloadNames[w]
        << "\": {\"attempted\": " << slice.attempted
        << ", \"completed\": " << slice.completed
        << ", \"rejected\": " << slice.rejected
        << ", \"errored\": " << slice.errored
        << ", \"transport_failures\": " << slice.transport_failures << "}";
  }
  out << "}, \"shards\": [";
  for (std::size_t s = 0; s < server.shards.size(); ++s) {
    const ShardStatsWire& shard = server.shards[s];
    out << (s ? ", " : "") << "{\"accepted\": " << shard.accepted
        << ", \"completed\": " << shard.completed
        << ", \"rejected_queue_full\": " << shard.rejected_queue_full
        << ", \"deadline_exceeded\": " << shard.deadline_exceeded
        << ", \"sessions_rejected\": " << shard.sessions_rejected
        << ", \"chunks_fed\": " << shard.chunks_fed << "}";
  }
  out << "]}";
  return out.str();
}

}  // namespace earsonar::net
