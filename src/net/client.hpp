// NetClient: a blocking wire-protocol client for one connection.
//
// run_session() is the whole device-side contract in one call: resample the
// recording to the server's pipeline rate locally (the same resampler the
// batch path runs, which is what keeps the networked answer bit-identical),
// open a session with Hello, stream Chunk frames — optionally paced at the
// recording's real-time cadence — then Finish and wait for the Result.
// Every outcome the protocol defines is surfaced explicitly: admitted +
// result, rejected (with the server's RejectCode), errored (ErrorCode), or
// a transport failure.
//
// One NetClient is one connection and is not thread-safe; the load
// generator opens one per worker (loadgen.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "audio/waveform.hpp"
#include "net/socket.hpp"

namespace earsonar::net {

struct SessionOptions {
  std::uint64_t session_id = 1;  ///< must be nonzero and connection-unique
  std::size_t chunk_samples = 4800;  ///< 100 ms at 48 kHz
  /// Seconds between chunk sends (0 = backlogged upload). Real-time device
  /// streaming = chunk_samples / sample_rate.
  double chunk_period_s = 0.0;
  double deadline_ms = 0.0;  ///< carried in Hello; 0 = server default
};

/// How a session ended. Exactly one of the protocol's terminal frames (or a
/// transport failure observed as kTransport).
struct SessionOutcome {
  enum class Kind : std::uint8_t { kResult, kRejected, kError, kTransport };
  Kind kind = Kind::kTransport;
  std::uint32_t shard = 0;      ///< from HelloAck (valid unless rejected at Hello)
  bool admitted = false;        ///< HelloAck received
  ResultPayload result;         ///< when kResult
  std::uint16_t code = 0;       ///< RejectCode / ErrorCode when k{Rejected,Error}
  std::string message;          ///< server text or transport error
  double rtt_ms = 0.0;          ///< Hello sent -> terminal frame received
};

class NetClient {
 public:
  /// Connects immediately; throws std::runtime_error on refusal.
  NetClient(const std::string& host, std::uint16_t port);

  /// Runs one full session (see file comment). The recording may be at any
  /// sample rate; it is resampled locally to `server_rate` learned from the
  /// connection's first HelloAck (before that, from `expected_rate`).
  SessionOutcome run_session(const audio::Waveform& recording,
                             const SessionOptions& options);

  /// Round-trips an opaque payload through Ping/Pong; nullopt on transport
  /// failure or mismatched echo. Returns the round-trip in milliseconds.
  std::optional<double> ping(std::size_t payload_size = 64);

  /// Requests the server's per-shard counters.
  std::optional<StatsPayload> fetch_stats();

  /// The pipeline rate Hello claims. Updated from each HelloAck; defaults
  /// to 48 kHz (the probe rate) before the first session.
  [[nodiscard]] double expected_rate() const { return expected_rate_; }
  void set_expected_rate(double rate) { expected_rate_ = rate; }

  void close() { stream_.close(); }

 private:
  TcpStream stream_;
  std::vector<double> arena_;  ///< read_frame payload buffer
  double expected_rate_ = 48000.0;
};

}  // namespace earsonar::net
