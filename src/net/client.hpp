// NetClient: a blocking wire-protocol client for one connection.
//
// run_session() is the whole device-side contract in one call: resample the
// recording to the server's pipeline rate locally (the same resampler the
// batch path runs, which is what keeps the networked answer bit-identical),
// open a session with Hello, stream Chunk frames — optionally paced at the
// recording's real-time cadence — then Finish and wait for the Result.
// Every outcome the protocol defines is surfaced explicitly: admitted +
// result, rejected (with the server's RejectCode), errored (ErrorCode), or
// a transport failure.
//
// run_session_with_retry() layers the failure-recovery contract on top:
// exponential backoff with jitter (the ModelReloader backoff shape), every
// sleep budgeted against the request deadline, reconnect on transport
// failure, and resume-vs-fail semantics per RejectCode — a draining or
// restarting shard is worth retrying (the key remaps or the shard comes
// back), a stopped server is not.
//
// One NetClient is one connection and is not thread-safe; the load
// generator opens one per worker (loadgen.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "audio/waveform.hpp"
#include "net/socket.hpp"

namespace earsonar::net {

struct SessionOptions {
  std::uint64_t session_id = 1;  ///< must be nonzero and connection-unique
  std::size_t chunk_samples = 4800;  ///< 100 ms at 48 kHz
  /// Seconds between chunk sends (0 = backlogged upload). Real-time device
  /// streaming = chunk_samples / sample_rate.
  double chunk_period_s = 0.0;
  double deadline_ms = 0.0;  ///< carried in Hello; 0 = server default
  /// serve::workload_index value carried in Hello (0 = EarSonar audio,
  /// 1 = wideband absorbance). For absorbance sessions the "recording" holds
  /// the raw curve bins: no resampling is applied and the Hello skips the
  /// sample-rate handshake server-side (docs/workloads.md).
  std::uint8_t workload = 0;
};

/// Retry policy for run_session_with_retry — the ModelReloader backoff shape
/// (initial × multiplier^k, capped) plus jitter and a wall-clock budget.
struct RetryPolicy {
  std::size_t max_attempts = 4;       ///< total attempts, including the first
  double initial_backoff_ms = 100.0;  ///< delay before the second attempt
  double max_backoff_ms = 10000.0;    ///< backoff ceiling
  double multiplier = 2.0;            ///< growth per consecutive failure
  /// Fractional jitter: each sleep is backoff × (1 ± jitter), seeded —
  /// desynchronizes a fleet of clients retrying into a recovering shard.
  double jitter = 0.2;
  /// Wall-clock budget in milliseconds across all attempts and sleeps
  /// (0 = unbudgeted). A sleep never overruns it: the retry loop gives up
  /// with the last outcome rather than blow the request deadline.
  double budget_ms = 0.0;
  std::uint64_t seed = 1;  ///< jitter RNG seed

  void validate() const;
};

/// How a session ended. Exactly one of the protocol's terminal frames (or a
/// transport failure observed as kTransport).
struct SessionOutcome {
  enum class Kind : std::uint8_t { kResult, kRejected, kError, kTransport };
  Kind kind = Kind::kTransport;
  std::uint32_t shard = 0;      ///< from HelloAck (valid unless rejected at Hello)
  bool admitted = false;        ///< HelloAck received
  ResultPayload result;         ///< when kResult
  std::uint16_t code = 0;       ///< RejectCode / ErrorCode when k{Rejected,Error}
  std::string message;          ///< server text or transport error
  double rtt_ms = 0.0;          ///< Hello sent -> terminal frame received
  std::size_t attempts = 1;     ///< total attempts run_session_with_retry made
};

class NetClient {
 public:
  /// Connects immediately; throws std::runtime_error on refusal,
  /// NetTimeoutError when connect_timeout_ms > 0 expires. read_timeout_ms
  /// bounds every read on the connection (0 = block forever).
  NetClient(const std::string& host, std::uint16_t port,
            int connect_timeout_ms = 0, int read_timeout_ms = 0);

  /// Runs one full session (see file comment). The recording may be at any
  /// sample rate; it is resampled locally to `server_rate` learned from the
  /// connection's first HelloAck (before that, from `expected_rate`).
  SessionOutcome run_session(const audio::Waveform& recording,
                             const SessionOptions& options);

  /// run_session with the retry contract: reconnects on transport failure,
  /// retries retryable outcomes (see retryable()) under exponential backoff
  /// with seeded jitter, never sleeping past policy.budget_ms. The returned
  /// outcome is the final attempt's, with `attempts` filled in.
  SessionOutcome run_session_with_retry(const audio::Waveform& recording,
                                        const SessionOptions& options,
                                        const RetryPolicy& policy);

  /// The resume-vs-fail contract: true when a retry can plausibly succeed.
  /// Transport failures — retry (reconnect). Rejects kShardSessionsFull,
  /// kQueueFull, kTooManyConnections, kShardDraining, kShardRestarting —
  /// retry (load drains, drains remap, restarts finish). Reject kStopped —
  /// fail (the server is going away). Error kShardRestart — retry (the
  /// replacement shard is healthy; the audio is resent from the start).
  /// Every other Error — fail (deterministic: a bad rate or a processing
  /// error will not improve on resend).
  [[nodiscard]] static bool retryable(const SessionOutcome& outcome);

  /// Round-trips an opaque payload through Ping/Pong; nullopt on transport
  /// failure or mismatched echo. Returns the round-trip in milliseconds.
  std::optional<double> ping(std::size_t payload_size = 64);

  /// Requests the server's per-shard counters.
  std::optional<StatsPayload> fetch_stats();

  /// Sends a session-0 Admin frame (requires NetServerConfig::enable_admin
  /// server-side); nullopt on transport failure. A refused op comes back
  /// with code != 0, not nullopt.
  std::optional<AdminReplyPayload> admin(AdminOp op, std::uint32_t shard = 0);

  /// The pipeline rate Hello claims. Updated from each HelloAck; defaults
  /// to 48 kHz (the probe rate) before the first session.
  [[nodiscard]] double expected_rate() const { return expected_rate_; }
  void set_expected_rate(double rate) { expected_rate_ = rate; }

  void close() { stream_.close(); }

 private:
  /// Tears down the current stream and dials host:port again with the
  /// construction-time timeouts. Throws like the constructor.
  void reconnect();

  std::string host_;
  std::uint16_t port_ = 0;
  int connect_timeout_ms_ = 0;
  int read_timeout_ms_ = 0;
  TcpStream stream_;
  std::vector<double> arena_;  ///< read_frame payload buffer
  double expected_rate_ = 48000.0;
};

}  // namespace earsonar::net
