// NetServer: the TCP front-end over a ShardPool.
//
//   accept loop ──▶ connection thread × M (bounded by max_connections)
//                        │ read_frame (zero-copy payload arena)
//                        │ Hello  → ShardPool::admit_session → HelloAck|Reject
//                        │ Chunk  → StreamingSession::feed (in-place span)
//                        │ Finish → shard engine submit → Result|Reject|Error
//                        └ Ping/Stats answered inline
//
// Admission is layered and every refusal is an explicit frame:
//   1. connection cap  — accept loop answers Reject(kTooManyConnections)
//                        and hangs up before a session can open;
//   2. session slots   — Hello answered with Reject(kShardSessionsFull)
//                        when the session's shard is at capacity;
//   3. request queue   — Finish answered with Reject(kQueueFull) when the
//                        shard's BoundedQueue refuses the finalization.
// Nothing is ever silently dropped: each opened session terminates in
// exactly one of Result, Reject, or Error.
//
// Zero-copy ingest: read_frame lands a chunk frame's payload in an 8-byte-
// aligned double arena owned by the connection; the samples are fed to the
// session as a span over that arena — the bytes the client sent are the
// bytes the filter reads.
//
// Threading: one accept thread plus one blocking thread per connection —
// the right complexity point while max_connections bounds the thread count
// (see socket.hpp). stop() shuts each connection's socket down to unblock
// its read, then joins everything.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "net/shard.hpp"
#include "net/socket.hpp"

namespace earsonar::net {

struct NetServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; see NetServer::port()
  /// Concurrent connections before the accept loop rejects (explicitly —
  /// the peer gets a Reject frame, not a hang).
  std::size_t max_connections = 256;
  /// How often the accept loop wakes to notice stop(), in milliseconds.
  int accept_poll_ms = 50;
  ShardConfig shards;
  /// Deadline applied to sessions whose Hello carries none (0 = none).
  double default_deadline_ms = 0.0;
  /// Accept session-0 kAdmin frames (live resize / drain / restart / health).
  /// Off by default: lifecycle control is an operator surface, not something
  /// every client should reach. When off, kAdmin is answered with
  /// Error{kProtocol}.
  bool enable_admin = false;

  void validate() const;
};

/// Connection-level counters (session/request counters live per shard in
/// ShardPool::stats()).
struct NetServerStats {
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> connections_rejected{0};
  std::atomic<std::int64_t> connections_active{0};
  std::atomic<std::uint64_t> frames_malformed{0};
  std::atomic<std::uint64_t> io_errors{0};
};

class NetServer {
 public:
  explicit NetServer(NetServerConfig config);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds the listener, starts the shard engines and the accept loop.
  void start();
  /// Stops accepting, unblocks and joins every connection, drains shards.
  void stop();

  [[nodiscard]] bool running() const { return running_.load(); }
  /// The bound port (resolves an ephemeral request).
  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }

  [[nodiscard]] ShardPool& shards() { return pool_; }
  [[nodiscard]] const NetServerStats& stats() const { return stats_; }
  [[nodiscard]] const NetServerConfig& config() const { return config_; }

 private:
  struct Connection {
    TcpStream stream;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void serve_connection(Connection& connection);
  /// Joins finished connection threads (called from the accept loop so the
  /// registry stays bounded over a long uptime).
  void reap_finished();

  NetServerConfig config_;
  ShardPool pool_;
  TcpListener listener_;
  std::thread accept_thread_;
  std::mutex connections_mutex_;
  std::list<std::unique_ptr<Connection>> connections_;
  NetServerStats stats_;
  std::atomic<bool> running_{false};
};

}  // namespace earsonar::net
