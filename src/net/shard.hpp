// Session-affine sharding: a consistent-hash ring over N serving engines.
//
// Why shard at all on one box: a live streaming session costs almost no CPU
// (the earbud paces chunks at wall-clock speed; filtering a 10 ms chunk takes
// microseconds) but occupies a *session slot* for its whole recording
// duration. The scaled resource is therefore slots, not cores — N shards hold
// N × max_sessions concurrent paced sessions, and the per-shard BoundedQueue
// keeps each shard's finalization backlog independent. bench_net measures
// exactly this: 4 shards sustain ≥2.5× the admitted session throughput of 1.
//
// Why a hash *ring* instead of `session_id % N`: session affinity must
// survive resizing. With modulo, going from N to N+1 shards remaps ~N/(N+1)
// of all sessions; on the ring only ~1/(N+1) move (only keys that now fall
// on the new shard's virtual nodes). tests/net_test.cpp pins both the
// balance (virtual nodes spread load within a factor) and the minimal-remap
// property.
//
// Fault point `net.shard.dispatch` fires at session admission — a fired
// fault looks like a shard refusing the session (transient dispatch
// failure), which the server must surface as an explicit Reject frame.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/frame.hpp"
#include "serve/engine.hpp"

namespace earsonar::net {

/// Consistent-hash ring mapping u64 session ids onto shard indices via
/// virtual nodes (`replicas` ring points per shard).
class HashRing {
 public:
  HashRing(std::size_t shards, std::size_t replicas);

  /// The shard owning `session_id`: the first ring point at or after the
  /// id's hash, wrapping at the top.
  [[nodiscard]] std::size_t shard_for(std::uint64_t session_id) const;

  [[nodiscard]] std::size_t shard_count() const { return shards_; }
  [[nodiscard]] std::size_t replicas() const { return replicas_; }

  /// The mixer used for ring points and keys (splitmix64 finalizer —
  /// avalanche-complete, so sequential session ids spread uniformly).
  [[nodiscard]] static std::uint64_t mix(std::uint64_t x);

 private:
  struct Point {
    std::uint64_t hash;
    std::uint32_t shard;
  };
  std::vector<Point> points_;  ///< sorted by hash
  std::size_t shards_;
  std::size_t replicas_;
};

struct ShardConfig {
  std::size_t shards = 1;
  std::size_t replicas = 64;  ///< virtual ring nodes per shard
  /// Live streaming sessions a shard holds at once — the admission layer
  /// above the engine's BoundedQueue. A paced session occupies its slot for
  /// the recording's wall-clock duration; the queue only sees the (cheap)
  /// finalization, so slots saturate first under real-time load.
  std::size_t max_sessions_per_shard = 64;
  /// Per-shard engine template. `dedicated_threads` is forced on by the
  /// pool: N engines leasing the shared parallel pool would serialize on
  /// its batch mutex (see EngineConfig::dedicated_threads).
  serve::EngineConfig engine;

  void validate() const;
};

/// What admission said. kDispatchFault is an injected/transient dispatch
/// failure — distinct so the server can report it honestly.
enum class Admission : std::uint8_t { kAdmitted, kSessionsFull, kStopped, kDispatchFault };

class ShardPool {
 public:
  explicit ShardPool(ShardConfig config);
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  void start();
  void stop();
  [[nodiscard]] bool running() const { return running_.load(); }

  [[nodiscard]] const HashRing& ring() const { return ring_; }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] std::size_t shard_for(std::uint64_t session_id) const {
    return ring_.shard_for(session_id);
  }
  [[nodiscard]] serve::ServingEngine& engine(std::size_t shard) {
    return *shards_[shard]->engine;
  }

  /// Tries to claim a live-session slot on `session_id`'s shard. On
  /// kAdmitted the caller owns one slot on `*shard_out` and must release it
  /// exactly once. Fires `net.shard.dispatch`.
  Admission admit_session(std::uint64_t session_id, std::size_t* shard_out);
  void release_session(std::size_t shard);

  [[nodiscard]] std::int64_t sessions_active(std::size_t shard) const {
    return shards_[shard]->sessions_active.load(std::memory_order_relaxed);
  }

  /// Installs a model into every shard's registry (same version counter per
  /// registry; shards are independent stores fed the same bytes).
  void install_model(const core::DetectorModel& model, const std::string& source);

  /// Per-shard counters in wire form (what a kStatsReply carries).
  [[nodiscard]] StatsPayload stats() const;

 private:
  struct Shard {
    std::unique_ptr<serve::ServingEngine> engine;
    std::atomic<std::int64_t> sessions_active{0};
    std::atomic<std::uint64_t> sessions_rejected{0};
  };

  ShardConfig config_;
  HashRing ring_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> running_{false};
};

}  // namespace earsonar::net
