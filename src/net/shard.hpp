// Session-affine sharding: a consistent-hash ring over N serving engines,
// plus the shard *lifecycle* layer — health-checked restart, graceful drain,
// and live resize.
//
// Why shard at all on one box: a live streaming session costs almost no CPU
// (the earbud paces chunks at wall-clock speed; filtering a 10 ms chunk takes
// microseconds) but occupies a *session slot* for its whole recording
// duration. The scaled resource is therefore slots, not cores — N shards hold
// N × max_sessions concurrent paced sessions, and the per-shard BoundedQueue
// keeps each shard's finalization backlog independent. bench_net measures
// exactly this: 4 shards sustain ≥2.5× the admitted session throughput of 1.
//
// Why a hash *ring* instead of `session_id % N`: session affinity must
// survive resizing. With modulo, going from N to N+1 shards remaps ~N/(N+1)
// of all sessions; on the ring only ~1/(N+1) move (only keys that now fall
// on the new shard's virtual nodes). tests/net_test.cpp pins both the
// balance (virtual nodes spread load within a factor) and the minimal-remap
// property — including under *live* add_shard/remove_shard.
//
// Shard lifecycle (docs/serving.md, "Shard lifecycle"):
//
//              ┌────────────────────────────────────────────┐
//              ▼                                            │
//   healthy ──kill/health-fault/wedge──▶ down ──▶ restarting┘
//      │
//      └──begin_drain──▶ draining ──in-flight done / deadline──▶ retired
//
//   * healthy     — in the ring, admitting. The supervisor thread probes the
//                   `net.shard.health` fault point and watches for a wedged
//                   engine (nonempty queue, no completion progress for
//                   wedge_timeout_ms).
//   * down        — crash observed. Still in the ring (sessions that hash
//                   here are rejected kShardRestarting — explicit, bounded,
//                   retryable — rather than silently remapped and back again
//                   a restart later). The admission epoch is bumped: every
//                   in-flight session on the shard is invalidated and its
//                   next frame answered with Error{kShardRestart}.
//   * restarting  — the supervisor tears the dedicated-thread ServingEngine
//                   down (its queue drain resolves every accepted future),
//                   builds a fresh one, reinstalls the last model, swaps it
//                   in, and returns the shard to healthy. `net.shard.restart`
//                   makes the restart attempt itself fail (retried next tick).
//   * draining    — out of the ring immediately (minimal-remap removal), no
//                   new Hellos, in-flight sessions finish normally until
//                   drain_deadline_ms, then the epoch bump invalidates
//                   stragglers and the engine stops.
//   * retired     — tombstone. Slot indices are stable (sessions and stats
//                   refer to them), so a drained slot is never reused.
//
// Fault points: `net.shard.dispatch` fires at session admission (transient
// dispatch failure → explicit Reject), `net.shard.health` makes the
// supervisor's next health probe of a shard observe a crash, and
// `net.admin.resize` fails a live add/drain before it mutates anything.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "serve/engine.hpp"

namespace earsonar::net {

/// Consistent-hash ring mapping u64 session ids onto shard indices via
/// virtual nodes (`replicas` ring points per shard). Supports live
/// membership changes: adding a shard only *inserts* its points and removing
/// one only *erases* its points, so every surviving key keeps its owner
/// unless the change itself took or gave that key (minimal remap).
class HashRing {
 public:
  HashRing(std::size_t shards, std::size_t replicas);

  /// The shard owning `session_id`: the first ring point at or after the
  /// id's hash, wrapping at the top. Undefined on an empty ring (the pool
  /// never drains its last member).
  [[nodiscard]] std::size_t shard_for(std::uint64_t session_id) const;

  /// Inserts `shard`'s replica points. No-op when already a member.
  void add_shard(std::size_t shard);
  /// Erases `shard`'s replica points. No-op when not a member.
  void remove_shard(std::size_t shard);
  [[nodiscard]] bool contains(std::size_t shard) const;

  /// Current member count (live shards, not historical slot count).
  [[nodiscard]] std::size_t shard_count() const { return members_; }
  [[nodiscard]] std::size_t replicas() const { return replicas_; }

  /// The mixer used for ring points and keys (splitmix64 finalizer —
  /// avalanche-complete, so sequential session ids spread uniformly).
  [[nodiscard]] static std::uint64_t mix(std::uint64_t x);

 private:
  struct Point {
    std::uint64_t hash;
    std::uint32_t shard;
  };
  [[nodiscard]] static Point make_point(std::size_t shard, std::size_t replica);

  std::vector<Point> points_;  ///< sorted by hash
  std::size_t members_;
  std::size_t replicas_;
};

/// Per-shard lifecycle state (the wire carries the raw value in
/// ShardStatsWire::health / ShardHealthWire::health).
enum class ShardHealth : std::uint8_t {
  kHealthy = 0,
  kDraining = 1,
  kDown = 2,
  kRestarting = 3,
  kRetired = 4,
};

[[nodiscard]] const char* to_string(ShardHealth health);

struct ShardConfig {
  std::size_t shards = 1;
  std::size_t replicas = 64;  ///< virtual ring nodes per shard
  /// Live streaming sessions a shard holds at once — the admission layer
  /// above the engine's BoundedQueue. A paced session occupies its slot for
  /// the recording's wall-clock duration; the queue only sees the (cheap)
  /// finalization, so slots saturate first under real-time load.
  std::size_t max_sessions_per_shard = 64;
  /// Per-shard engine template. `dedicated_threads` is forced on by the
  /// pool: N engines leasing the shared parallel pool would serialize on
  /// its batch mutex (see EngineConfig::dedicated_threads).
  serve::EngineConfig engine;
  /// Supervisor heartbeat period: how often shard health is probed and
  /// down/draining shards are advanced through the state machine.
  int supervisor_interval_ms = 20;
  /// How long a draining shard waits for in-flight sessions before the
  /// epoch bump invalidates the stragglers and the engine stops.
  double drain_deadline_ms = 5000.0;
  /// A healthy shard with a nonempty queue and no completion progress for
  /// this long is declared wedged (down). 0 disables wedge detection.
  double wedge_timeout_ms = 2000.0;
  /// Ceiling on total slots ever created (live + retired); add_shard refuses
  /// past it so a resize loop cannot grow without bound.
  std::size_t max_shards = 64;

  void validate() const;
};

/// What admission said. kDispatchFault is an injected/transient dispatch
/// failure — distinct so the server can report it honestly. kDraining /
/// kRestarting map to the RejectCodes of the same names: the client may
/// retry (a drained shard's keys remap once its points leave the ring; a
/// restarting shard comes back).
enum class Admission : std::uint8_t {
  kAdmitted,
  kSessionsFull,
  kStopped,
  kDispatchFault,
  kDraining,
  kRestarting,
};

class ShardPool {
 public:
  explicit ShardPool(ShardConfig config);
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  void start();
  void stop();
  [[nodiscard]] bool running() const { return running_.load(); }

  /// Total slots ever created, including retired tombstones (stable indices).
  [[nodiscard]] std::size_t shard_count() const;
  /// Slots currently in the ring (admitting new sessions).
  [[nodiscard]] std::size_t ring_members() const;
  [[nodiscard]] std::size_t shard_for(std::uint64_t session_id) const;

  /// The shard's engine, as a shared_ptr snapshot: a restart swaps the
  /// pointer, so callers hold the snapshot for the duration of one
  /// operation and the old engine outlives every in-flight reference.
  [[nodiscard]] std::shared_ptr<serve::ServingEngine> engine(std::size_t shard) const;

  /// The canonical per-shard engine configuration (identical across shards;
  /// restart-safe, unlike engine(s)->config() on a swapped-out engine).
  [[nodiscard]] const serve::EngineConfig& engine_config() const {
    return config_.engine;
  }

  /// Tries to claim a live-session slot on `session_id`'s shard. On
  /// kAdmitted the caller owns one slot on `*shard_out` and must release it
  /// exactly once; `*epoch_out` is the shard's admission epoch — a later
  /// mismatch (session_current() == false) means the shard restarted or
  /// drained out from under the session. Fires `net.shard.dispatch`.
  Admission admit_session(std::uint64_t session_id, std::size_t* shard_out,
                          std::uint64_t* epoch_out = nullptr);
  void release_session(std::size_t shard);

  /// True while a session admitted at `epoch` on `shard` is still valid:
  /// the shard is healthy-or-draining and has not bumped its epoch.
  [[nodiscard]] bool session_current(std::size_t shard, std::uint64_t epoch) const;

  [[nodiscard]] std::int64_t sessions_active(std::size_t shard) const;
  [[nodiscard]] ShardHealth shard_health(std::size_t shard) const;
  [[nodiscard]] std::uint64_t shard_epoch(std::size_t shard) const;

  // ------------------------------------------------------------ lifecycle

  /// Grows the pool by one shard slot (ring insert is minimal-remap). False
  /// with `*error` set when refused (`net.admin.resize` fault, max_shards,
  /// pool stopped).
  bool add_shard(std::string* error = nullptr);

  /// Graceful drain: the slot leaves the ring immediately (no new Hellos;
  /// its keys remap), in-flight sessions finish until drain_deadline_ms,
  /// then the supervisor retires the slot. False when refused (last ring
  /// member, not healthy, `net.admin.resize` fault).
  bool begin_drain(std::size_t shard, std::string* error = nullptr);

  /// Kills the shard as a crash would: health → down, epoch bump (every
  /// in-flight session gets Error{kShardRestart} on its next frame). The
  /// supervisor restarts it. False when the slot is not restartable.
  bool kill_shard(std::size_t shard, std::string* error = nullptr);

  /// Installs a model into every live shard's registry and remembers it so
  /// a supervisor restart can reinstall it into the replacement engine.
  void install_model(const core::DetectorModel& model, const std::string& source);

  /// Same contract for the absorbance workload's wideband screener: installed
  /// into every live shard, remembered for restart reinstall.
  void install_wideband(std::shared_ptr<const core::WidebandScreener> model);

  /// Per-shard counters in wire form (what a kStatsReply carries).
  [[nodiscard]] StatsPayload stats() const;

  /// Per-slot lifecycle state in wire form (what a kAdminReply carries).
  [[nodiscard]] std::vector<ShardHealthWire> health_snapshot() const;

  /// Prometheus-style lifecycle metrics (earsonar_net_shard_*), one sample
  /// per slot plus pool-level resize/restart counters.
  [[nodiscard]] std::string metrics_text() const;

  /// Wall-clock milliseconds the most recent completed restart took from
  /// crash detection back to healthy (0 before any restart).
  [[nodiscard]] double last_recovery_ms(std::size_t shard) const;

 private:
  struct Shard {
    std::shared_ptr<serve::ServingEngine> engine;
    std::atomic<std::int64_t> sessions_active{0};
    std::atomic<std::uint64_t> sessions_rejected{0};
    std::atomic<ShardHealth> health{ShardHealth::kHealthy};
    /// Admission epoch: sessions carry the epoch they were admitted under;
    /// restarts and drain-deadline overruns bump it, invalidating them.
    std::atomic<std::uint64_t> epoch{1};
    std::atomic<std::uint64_t> restarts{0};
    std::atomic<bool> in_ring{true};
    /// One fixed-point ms value (atomic<double> needs no lock here).
    std::atomic<double> last_recovery_ms{0.0};
    // Supervisor-thread-only bookkeeping (no locking needed).
    std::uint64_t last_completed = 0;
    std::chrono::steady_clock::time_point last_progress{};
    std::chrono::steady_clock::time_point drain_started{};
    std::chrono::steady_clock::time_point down_since{};
  };

  [[nodiscard]] std::shared_ptr<serve::ServingEngine> make_engine() const;
  void supervisor_loop();
  void supervise_once(std::chrono::steady_clock::time_point now);
  void restart_shard(std::size_t index,
                     std::chrono::steady_clock::time_point now);
  void retire_shard(std::size_t index);

  ShardConfig config_;
  /// Guards ring_ membership, shards_ growth, and Shard::engine swaps.
  /// Admission and stats take it shared; resize/restart take it exclusive
  /// only for the pointer/membership mutation itself (engine construction
  /// and teardown happen outside the lock).
  mutable std::shared_mutex membership_mutex_;
  HashRing ring_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::shared_ptr<const core::DetectorModel> model_;  ///< for restart reinstall
  std::string model_source_;
  std::shared_ptr<const core::WidebandScreener> wideband_;  ///< ditto
  std::atomic<std::uint64_t> resizes_{0};
  std::thread supervisor_;
  std::atomic<bool> running_{false};
};

}  // namespace earsonar::net
