// Dependency-free POSIX TCP wrappers for the serving front-end.
//
// Deliberately minimal: RAII file descriptors, a blocking listener with a
// poll()-based accept timeout (so the accept loop can notice stop()), and a
// blocking stream with read-exact/write-all framing helpers. Thread-per-
// connection blocking I/O is the right complexity point here — connection
// counts are bounded by admission control (NetServerConfig::max_connections)
// long before an event loop would pay for itself, and blocking reads keep
// the zero-copy chunk handoff trivial (the payload lands directly in the
// connection's aligned buffer; see server.cpp).
//
// Failure injection: `net.accept` makes accept() report a transient failure,
// `net.frame.read` / `net.frame.write` fail the frame-level I/O helpers —
// the chaos hooks tests use to prove a dying connection never takes the
// server down (docs/robustness.md catalogs all fault points).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/frame.hpp"

namespace earsonar::net {

/// A connect or read exceeded its configured timeout. Typed (rather than a
/// plain runtime_error) so callers can tell "the peer is slow/dead" from
/// "the byte stream broke" — the retry layer treats only the former as a
/// deadline-budgeted retryable condition.
struct NetTimeoutError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// RAII socket file descriptor. Move-only; closes on destruction. The fd is
/// atomic because close()/shutdown_both() are the documented cross-thread
/// wakeup mechanism (stop() closes a listener another thread is polling);
/// the atomic makes that hand-off race-free at the language level.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_.exchange(-1)) {}
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const { return fd_.load(std::memory_order_relaxed) >= 0; }
  [[nodiscard]] int fd() const { return fd_.load(std::memory_order_relaxed); }

  /// shutdown(SHUT_RDWR) without closing: unblocks a read in another thread
  /// while that thread still owns the fd's lifetime. Safe on closed sockets.
  void shutdown_both();
  void close();

 private:
  std::atomic<int> fd_{-1};
};

/// Blocking byte stream over a connected TCP socket.
class TcpStream {
 public:
  TcpStream() = default;
  explicit TcpStream(Socket socket);

  /// Connects to host:port (numeric IPv4 host, e.g. "127.0.0.1"). Throws
  /// std::runtime_error on failure. timeout_ms > 0 bounds the connect
  /// (non-blocking connect + poll; NetTimeoutError past the deadline);
  /// 0 keeps the kernel's blocking connect.
  static TcpStream connect(const std::string& host, std::uint16_t port,
                           int timeout_ms = 0);

  [[nodiscard]] bool valid() const { return socket_.valid(); }
  void shutdown_both() { socket_.shutdown_both(); }
  void close() { socket_.close(); }

  /// Bounds every subsequent read (SO_RCVTIMEO): a read that delivers no
  /// bytes within ms throws NetTimeoutError instead of blocking forever.
  /// 0 restores unbounded blocking reads.
  void set_read_timeout_ms(int ms);

  /// Reads exactly out.size() bytes. False on clean EOF at a frame boundary
  /// (no bytes read yet); throws std::runtime_error on mid-buffer EOF or a
  /// socket error, NetTimeoutError when a configured read timeout expires.
  bool read_exact(std::span<std::uint8_t> out);

  /// Writes the whole buffer or throws std::runtime_error.
  void write_all(std::span<const std::uint8_t> bytes);

 private:
  Socket socket_;
  int read_timeout_ms_ = 0;
};

/// Listening socket bound to 127.0.0.1:port (port 0 = ephemeral).
class TcpListener {
 public:
  TcpListener() = default;

  /// Binds and listens. Throws std::runtime_error when the port is taken.
  static TcpListener bind(const std::string& host, std::uint16_t port,
                          int backlog = 64);

  [[nodiscard]] bool valid() const { return socket_.valid(); }
  /// The actually bound port (resolves port 0 to the kernel's choice).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Waits up to timeout_ms for a connection. nullopt on timeout, on a
  /// transient accept failure (including an injected `net.accept` fault),
  /// or once close() has been called from another thread.
  [[nodiscard]] std::optional<TcpStream> accept(int timeout_ms);

  void close() { socket_.close(); }

 private:
  Socket socket_;
  std::uint16_t port_ = 0;
};

// ------------------------------------------------------- frame-level I/O

/// Outcome of read_frame: a full frame arrived, the peer hung up cleanly,
/// or the byte stream was malformed (status says how).
struct ReadFrameResult {
  enum class Kind : std::uint8_t { kFrame, kEof, kMalformed, kIoError };
  Kind kind = Kind::kIoError;
  FrameHeader header;
  DecodeStatus status = DecodeStatus::kOk;  ///< set when kMalformed
  std::string io_error;                     ///< set when kIoError
  bool timed_out = false;  ///< kIoError caused by a read timeout (NetTimeoutError)
};

/// Reads one frame. The payload lands in `payload_f64` — a double vector
/// used as an 8-byte-aligned byte arena — so a kChunk frame's samples can be
/// viewed in place: payload_f64[0 .. payload_len/8) ARE the samples, no
/// copy. Non-chunk payloads are viewed as bytes through payload_bytes().
/// Frame-level CRC and header validation happen here; `net.frame.read`
/// injects an I/O failure.
ReadFrameResult read_frame(TcpStream& stream, std::vector<double>& payload_f64,
                           std::size_t max_payload = kMaxPayload);

/// Byte view of a read_frame payload.
[[nodiscard]] std::span<const std::uint8_t> payload_bytes(
    const std::vector<double>& payload_f64, const FrameHeader& header);

/// Writes header + payload (single writev-style call sequence). Throws
/// std::runtime_error on failure; `net.frame.write` injects one.
void write_frame(TcpStream& stream, FrameType type, std::uint64_t session_id,
                 std::span<const std::uint8_t> payload);

/// write_frame for float64 sample payloads: the samples are sent directly
/// from the caller's buffer (their IEEE-754 bytes are the wire format — the
/// symmetric zero-copy of read_frame's chunk path).
void write_chunk_frame(TcpStream& stream, std::uint64_t session_id,
                       std::span<const double> samples);

}  // namespace earsonar::net
