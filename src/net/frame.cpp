#include "net/frame.hpp"

#include <array>
#include <bit>
#include <cstring>

#include "common/error.hpp"
#include "serve/workload.hpp"

namespace earsonar::net {

bool frame_type_known(std::uint8_t type) {
  return type >= static_cast<std::uint8_t>(FrameType::kHello) &&
         type <= static_cast<std::uint8_t>(FrameType::kAdminReply);
}

const char* to_string(RejectCode code) {
  switch (code) {
    case RejectCode::kShardSessionsFull: return "shard session slots full";
    case RejectCode::kQueueFull: return "shard queue full";
    case RejectCode::kStopped: return "server stopped";
    case RejectCode::kTooManyConnections: return "too many connections";
    case RejectCode::kShardDraining: return "shard draining";
    case RejectCode::kShardRestarting: return "shard restarting";
  }
  return "unknown reject code";
}

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kProtocol: return "protocol error";
    case ErrorCode::kBadFrame: return "bad frame";
    case ErrorCode::kUnsupportedRate: return "unsupported sample rate";
    case ErrorCode::kProcessing: return "processing error";
    case ErrorCode::kDeadlineExceeded: return "deadline exceeded";
    case ErrorCode::kStreamOverflow: return "stream buffer overflow";
    case ErrorCode::kInternal: return "internal error";
    case ErrorCode::kShardRestart: return "shard restarted mid-session";
  }
  return "unknown error code";
}

const char* to_string(DecodeStatus status) {
  switch (status) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kNeedMore: return "need more bytes";
    case DecodeStatus::kBadMagic: return "bad magic";
    case DecodeStatus::kBadVersion: return "unsupported version";
    case DecodeStatus::kBadType: return "unknown frame type";
    case DecodeStatus::kBadLength: return "payload length out of bounds";
    case DecodeStatus::kBadReserved: return "nonzero reserved field";
    case DecodeStatus::kBadCrc: return "crc mismatch";
  }
  return "unknown decode status";
}

// ------------------------------------------------------------------ CRC32

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const std::uint8_t b : bytes) c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

// ------------------------------------------------- little-endian primitives

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

std::uint16_t get_u16(std::span<const std::uint8_t> in, std::size_t at) {
  return static_cast<std::uint16_t>(in[at] | (std::uint16_t{in[at + 1]} << 8));
}

std::uint32_t get_u32(std::span<const std::uint8_t> in, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | in[at + static_cast<std::size_t>(i)];
  return v;
}

std::uint64_t get_u64(std::span<const std::uint8_t> in, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | in[at + static_cast<std::size_t>(i)];
  return v;
}

double get_f64(std::span<const std::uint8_t> in, std::size_t at) {
  return std::bit_cast<double>(get_u64(in, at));
}

// ------------------------------------------------------------ frame codec

namespace {

// Header bytes [0, 20): everything the CRC covers besides the payload.
void write_header_prefix(std::uint8_t* out, FrameType type, std::uint64_t session_id,
                         std::uint32_t payload_len) {
  out[0] = static_cast<std::uint8_t>(kMagic & 0xFF);
  out[1] = static_cast<std::uint8_t>(kMagic >> 8);
  out[2] = kProtocolVersion;
  out[3] = static_cast<std::uint8_t>(type);
  for (int i = 0; i < 4; ++i)
    out[4 + i] = static_cast<std::uint8_t>(payload_len >> (8 * i));
  for (int i = 0; i < 8; ++i)
    out[8 + i] = static_cast<std::uint8_t>(session_id >> (8 * i));
  for (int i = 0; i < 4; ++i) out[16 + i] = 0;  // reserved
}

}  // namespace

void encode_header(std::span<std::uint8_t> out, FrameType type,
                   std::uint64_t session_id, std::span<const std::uint8_t> payload) {
  require(out.size() >= kHeaderSize, "encode_header: buffer shorter than a header");
  require(payload.size() <= 0xFFFFFFFFu, "encode_header: payload too large");
  write_header_prefix(out.data(), type, session_id,
                      static_cast<std::uint32_t>(payload.size()));
  const std::uint32_t crc = crc32(payload, crc32(out.first(20)));
  for (int i = 0; i < 4; ++i)
    out[20 + static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(crc >> (8 * i));
}

std::vector<std::uint8_t> encode_frame(FrameType type, std::uint64_t session_id,
                                       std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> out(kHeaderSize + payload.size());
  encode_header(std::span<std::uint8_t>(out).first(kHeaderSize), type, session_id,
                payload);
  if (!payload.empty())
    std::memcpy(out.data() + kHeaderSize, payload.data(), payload.size());
  return out;
}

DecodeStatus parse_header(std::span<const std::uint8_t> bytes, FrameHeader& out,
                          std::size_t max_payload) {
  if (bytes.size() < kHeaderSize) return DecodeStatus::kNeedMore;
  if (get_u16(bytes, 0) != kMagic) return DecodeStatus::kBadMagic;
  if (bytes[2] != kProtocolVersion) return DecodeStatus::kBadVersion;
  if (!frame_type_known(bytes[3])) return DecodeStatus::kBadType;
  const std::uint32_t len = get_u32(bytes, 4);
  if (len > max_payload) return DecodeStatus::kBadLength;
  if (get_u32(bytes, 16) != 0) return DecodeStatus::kBadReserved;
  out.version = bytes[2];
  out.type = static_cast<FrameType>(bytes[3]);
  out.payload_len = len;
  out.session_id = get_u64(bytes, 8);
  out.crc = get_u32(bytes, 20);
  return DecodeStatus::kOk;
}

bool check_crc(std::span<const std::uint8_t> header_bytes,
               std::span<const std::uint8_t> payload, const FrameHeader& header) {
  return crc32(payload, crc32(header_bytes.first(20))) == header.crc;
}

FrameDecoder::FrameDecoder(std::size_t max_payload) : max_payload_(max_payload) {}

void FrameDecoder::push(std::span<const std::uint8_t> bytes) {
  if (poisoned()) return;
  // Compact the consumed prefix before growing — the buffer never holds more
  // than one partial frame plus whatever push() just delivered.
  if (consumed_ > 0) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

std::optional<Frame> FrameDecoder::next() {
  if (poisoned()) return std::nullopt;
  const std::span<const std::uint8_t> avail =
      std::span<const std::uint8_t>(buffer_).subspan(consumed_);
  FrameHeader header;
  const DecodeStatus status = parse_header(avail, header, max_payload_);
  if (status == DecodeStatus::kNeedMore) return std::nullopt;
  if (status != DecodeStatus::kOk) {
    error_ = status;
    return std::nullopt;
  }
  if (avail.size() < kHeaderSize + header.payload_len) return std::nullopt;
  const auto payload = avail.subspan(kHeaderSize, header.payload_len);
  if (!check_crc(avail, payload, header)) {
    error_ = DecodeStatus::kBadCrc;
    return std::nullopt;
  }
  consumed_ += kHeaderSize + header.payload_len;
  Frame frame;
  frame.header = header;
  frame.payload.assign(payload.begin(), payload.end());
  return frame;
}

// -------------------------------------------------------- payload structs

std::vector<std::uint8_t> encode_hello(const HelloPayload& hello) {
  std::vector<std::uint8_t> out;
  out.reserve(17);
  put_f64(out, hello.sample_rate);
  put_f64(out, hello.deadline_ms);
  out.push_back(hello.workload);
  return out;
}

std::optional<HelloPayload> decode_hello(std::span<const std::uint8_t> p) {
  // 16 bytes is the legacy (pre-workload) Hello: rate + deadline only,
  // implicitly the EarSonar workload. 17 bytes appends the workload tag.
  if (p.size() != 16 && p.size() != 17) return std::nullopt;
  HelloPayload hello;
  hello.sample_rate = get_f64(p, 0);
  hello.deadline_ms = get_f64(p, 8);
  if (p.size() == 17) {
    if (p[16] >= serve::kWorkloadTypeCount) return std::nullopt;
    hello.workload = p[16];
  }
  return hello;
}

std::vector<std::uint8_t> encode_hello_ack(const HelloAckPayload& ack) {
  std::vector<std::uint8_t> out;
  out.reserve(16);
  put_u32(out, ack.shard);
  put_u32(out, 0);
  put_f64(out, ack.sample_rate);
  return out;
}

std::optional<HelloAckPayload> decode_hello_ack(std::span<const std::uint8_t> p) {
  if (p.size() != 16) return std::nullopt;
  HelloAckPayload ack;
  ack.shard = get_u32(p, 0);
  ack.sample_rate = get_f64(p, 8);
  return ack;
}

std::vector<std::uint8_t> encode_status(std::uint16_t code, std::string_view message) {
  std::vector<std::uint8_t> out;
  out.reserve(2 + message.size());
  put_u16(out, code);
  out.insert(out.end(), message.begin(), message.end());
  return out;
}

std::optional<StatusPayload> decode_status(std::span<const std::uint8_t> p) {
  if (p.size() < 2) return std::nullopt;
  StatusPayload status;
  status.code = get_u16(p, 0);
  status.message.assign(reinterpret_cast<const char*>(p.data()) + 2, p.size() - 2);
  return status;
}

std::vector<std::uint8_t> encode_result(const ResultPayload& result) {
  std::vector<std::uint8_t> out;
  out.reserve(48 + result.features.size() * 8);
  out.push_back(result.usable ? 1 : 0);
  out.push_back(result.degraded ? 1 : 0);
  out.push_back(result.has_diagnosis ? 1 : 0);
  out.push_back(result.state);
  put_u32(out, result.events);
  put_u32(out, result.echoes);
  put_u32(out, static_cast<std::uint32_t>(result.features.size()));
  put_u64(out, result.model_version);
  put_f64(out, result.confidence);
  put_f64(out, result.queue_ms);
  put_f64(out, result.total_ms);
  for (const double f : result.features) put_f64(out, f);
  return out;
}

std::optional<ResultPayload> decode_result(std::span<const std::uint8_t> p) {
  constexpr std::size_t kFixed = 48;
  if (p.size() < kFixed) return std::nullopt;
  ResultPayload result;
  if (p[0] > 1 || p[1] > 1 || p[2] > 1) return std::nullopt;
  result.usable = p[0] != 0;
  result.degraded = p[1] != 0;
  result.has_diagnosis = p[2] != 0;
  result.state = p[3];
  result.events = get_u32(p, 4);
  result.echoes = get_u32(p, 8);
  const std::uint32_t feature_count = get_u32(p, 12);
  result.model_version = get_u64(p, 16);
  result.confidence = get_f64(p, 24);
  result.queue_ms = get_f64(p, 32);
  result.total_ms = get_f64(p, 40);
  if (p.size() != kFixed + std::size_t{feature_count} * 8) return std::nullopt;
  result.features.resize(feature_count);
  for (std::uint32_t i = 0; i < feature_count; ++i)
    result.features[i] = get_f64(p, kFixed + std::size_t{i} * 8);
  return result;
}

std::vector<std::uint8_t> encode_stats(const StatsPayload& stats) {
  std::vector<std::uint8_t> out;
  out.reserve(4 + stats.shards.size() * 96);
  put_u32(out, static_cast<std::uint32_t>(stats.shards.size()));
  for (const ShardStatsWire& s : stats.shards) {
    put_u64(out, s.accepted);
    put_u64(out, s.completed);
    put_u64(out, s.rejected_queue_full);
    put_u64(out, s.deadline_exceeded);
    put_u64(out, s.degraded);
    put_u64(out, s.failed);
    put_u64(out, s.chunks_fed);
    put_u64(out, s.sessions_active);
    put_u64(out, s.sessions_rejected);
    put_u64(out, s.health);
    put_u64(out, s.epoch);
    put_u64(out, s.restarts);
  }
  return out;
}

std::optional<StatsPayload> decode_stats(std::span<const std::uint8_t> p) {
  constexpr std::size_t kPerShard = 96;
  if (p.size() < 4) return std::nullopt;
  const std::uint32_t count = get_u32(p, 0);
  if (p.size() != 4 + std::size_t{count} * kPerShard) return std::nullopt;
  StatsPayload stats;
  stats.shards.resize(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::size_t at = 4 + std::size_t{i} * kPerShard;
    ShardStatsWire& s = stats.shards[i];
    s.accepted = get_u64(p, at);
    s.completed = get_u64(p, at + 8);
    s.rejected_queue_full = get_u64(p, at + 16);
    s.deadline_exceeded = get_u64(p, at + 24);
    s.degraded = get_u64(p, at + 32);
    s.failed = get_u64(p, at + 40);
    s.chunks_fed = get_u64(p, at + 48);
    s.sessions_active = get_u64(p, at + 56);
    s.sessions_rejected = get_u64(p, at + 64);
    s.health = get_u64(p, at + 72);
    s.epoch = get_u64(p, at + 80);
    s.restarts = get_u64(p, at + 88);
  }
  return stats;
}

std::vector<std::uint8_t> encode_admin(const AdminPayload& admin) {
  std::vector<std::uint8_t> out;
  out.reserve(8);
  out.push_back(static_cast<std::uint8_t>(admin.op));
  out.push_back(0);
  out.push_back(0);
  out.push_back(0);
  put_u32(out, admin.shard);
  return out;
}

std::optional<AdminPayload> decode_admin(std::span<const std::uint8_t> p) {
  if (p.size() != 8) return std::nullopt;
  const std::uint8_t op = p[0];
  if (op < static_cast<std::uint8_t>(AdminOp::kAddShard) ||
      op > static_cast<std::uint8_t>(AdminOp::kHealth))
    return std::nullopt;
  if (p[1] != 0 || p[2] != 0 || p[3] != 0) return std::nullopt;
  AdminPayload admin;
  admin.op = static_cast<AdminOp>(op);
  admin.shard = get_u32(p, 4);
  return admin;
}

std::vector<std::uint8_t> encode_admin_reply(const AdminReplyPayload& reply) {
  constexpr std::size_t kPerShard = 24;
  std::vector<std::uint8_t> out;
  out.reserve(2 + 4 + reply.message.size() + 4 + reply.shards.size() * kPerShard);
  put_u16(out, reply.code);
  put_u32(out, static_cast<std::uint32_t>(reply.message.size()));
  out.insert(out.end(), reply.message.begin(), reply.message.end());
  put_u32(out, static_cast<std::uint32_t>(reply.shards.size()));
  for (const ShardHealthWire& s : reply.shards) {
    put_u32(out, s.slot);
    out.push_back(s.health);
    out.push_back(s.in_ring);
    put_u16(out, 0);  // pad to 8-byte record alignment
    put_u64(out, s.epoch);
    put_u64(out, s.restarts);
  }
  return out;
}

std::optional<AdminReplyPayload> decode_admin_reply(std::span<const std::uint8_t> p) {
  constexpr std::size_t kPerShard = 24;
  if (p.size() < 6) return std::nullopt;
  AdminReplyPayload reply;
  reply.code = get_u16(p, 0);
  const std::uint32_t msg_len = get_u32(p, 2);
  if (p.size() < 6 + std::size_t{msg_len} + 4) return std::nullopt;
  reply.message.assign(reinterpret_cast<const char*>(p.data()) + 6, msg_len);
  const std::size_t at_count = 6 + std::size_t{msg_len};
  const std::uint32_t count = get_u32(p, at_count);
  if (p.size() != at_count + 4 + std::size_t{count} * kPerShard) return std::nullopt;
  reply.shards.resize(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::size_t at = at_count + 4 + std::size_t{i} * kPerShard;
    ShardHealthWire& s = reply.shards[i];
    s.slot = get_u32(p, at);
    s.health = p[at + 4];
    s.in_ring = p[at + 5];
    if (get_u16(p, at + 6) != 0) return std::nullopt;
    s.epoch = get_u64(p, at + 8);
    s.restarts = get_u64(p, at + 16);
  }
  return reply;
}

}  // namespace earsonar::net
