#include "serve/registry.hpp"

#include <mutex>
#include <utility>

namespace earsonar::serve {

std::uint64_t ModelRegistry::install(core::DetectorModel model, std::string source) {
  // A broken model must never become `current()` — same gate as load_file's
  // parser, applied to programmatic installs.
  core::validate_model(model);
  auto next = std::make_shared<const core::DetectorModel>(std::move(model));
  std::unique_lock<std::shared_mutex> lock(mutex_);
  model_ = std::move(next);
  source_ = std::move(source);
  return ++version_;
}

std::uint64_t ModelRegistry::load_file(const std::string& path) {
  // Parse outside the lock: a slow or failing load must not block readers.
  return install(core::load_detector_file(path), path);
}

std::shared_ptr<const core::DetectorModel> ModelRegistry::current() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return model_;
}

std::uint64_t ModelRegistry::version() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return version_;
}

std::string ModelRegistry::source() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return source_;
}

}  // namespace earsonar::serve
