#include "serve/registry.hpp"

#include <algorithm>
#include <mutex>
#include <utility>

#include "common/error.hpp"
#include "common/fault.hpp"

namespace earsonar::serve {

std::uint64_t ModelRegistry::install(core::DetectorModel model, std::string source) {
  // A broken model must never become `current()` — same gate as load_file's
  // parser, applied to programmatic installs.
  core::validate_model(model);
  auto next = std::make_shared<const core::DetectorModel>(std::move(model));
  std::unique_lock<std::shared_mutex> lock(mutex_);
  model_ = std::move(next);
  source_ = std::move(source);
  return ++version_;
}

std::uint64_t ModelRegistry::load_file(const std::string& path) {
  if (fault::point("serve.registry.load"))
    fail("injected fault: serve.registry.load");
  // Parse outside the lock: a slow or failing load must not block readers.
  return install(core::load_detector_file(path), path);
}

std::shared_ptr<const core::DetectorModel> ModelRegistry::current() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return model_;
}

std::uint64_t ModelRegistry::version() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return version_;
}

std::string ModelRegistry::source() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return source_;
}

ModelReloader::ModelReloader(ModelRegistry& registry, std::string path,
                             Config config,
                             std::atomic<std::uint64_t>* retry_counter)
    : registry_(registry),
      path_(std::move(path)),
      config_(config),
      retry_counter_(retry_counter),
      jitter_rng_(splitmix64(config.jitter_seed)) {
  require_positive("ModelReloader.initial_backoff_ms", config_.initial_backoff_ms);
  require(config_.max_backoff_ms >= config_.initial_backoff_ms,
          "ModelReloader: max_backoff_ms must be >= initial_backoff_ms");
  require(config_.multiplier >= 1.0, "ModelReloader: multiplier must be >= 1");
  require(config_.jitter >= 0.0 && config_.jitter < 1.0,
          "ModelReloader: jitter must be in [0, 1)");
  std::error_code ec;
  const auto mtime = std::filesystem::last_write_time(path_, ec);
  if (!ec) {
    last_mtime_ = mtime;
    have_mtime_ = true;
  }
}

ModelReloader::Status ModelReloader::poll(Clock::time_point now) {
  if (retry_pending_) {
    if (now < next_attempt_) return Status::kBackingOff;
    return attempt(now);
  }
  std::error_code ec;
  const auto mtime = std::filesystem::last_write_time(path_, ec);
  // A missing file is not a failure: an atomic rename-into-place briefly has
  // no file, and "serve the model you have" is the right behavior anyway.
  if (ec) return Status::kUnchanged;
  if (have_mtime_ && mtime == last_mtime_) return Status::kUnchanged;
  last_mtime_ = mtime;
  have_mtime_ = true;
  return attempt(now);
}

ModelReloader::Status ModelReloader::attempt(Clock::time_point now) {
  // Re-stat before a retry so a fixed file is picked up by this attempt.
  std::error_code ec;
  const auto mtime = std::filesystem::last_write_time(path_, ec);
  if (!ec) {
    last_mtime_ = mtime;
    have_mtime_ = true;
  }
  try {
    registry_.load_file(path_);
  } catch (const std::exception& e) {
    last_error_ = e.what();
    ++retries_;
    if (retry_counter_) retry_counter_->fetch_add(1, std::memory_order_relaxed);
    backoff_ms_ = retry_pending_
                      ? std::min(backoff_ms_ * config_.multiplier,
                                 config_.max_backoff_ms)
                      : config_.initial_backoff_ms;
    retry_pending_ = true;
    // Jitter perturbs only the scheduled wait, never the base ladder —
    // current_backoff_ms() stays exact while a fleet of reloaders watching
    // the same file spreads its retry storm.
    scheduled_delay_ms_ = backoff_ms_;
    if (config_.jitter > 0.0)
      scheduled_delay_ms_ *=
          1.0 + jitter_rng_.uniform(-config_.jitter, config_.jitter);
    next_attempt_ =
        now + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double, std::milli>(scheduled_delay_ms_));
    return Status::kFailedWillRetry;
  }
  retry_pending_ = false;
  backoff_ms_ = 0.0;
  scheduled_delay_ms_ = 0.0;
  last_error_.clear();
  ++reloads_;
  return Status::kReloaded;
}

}  // namespace earsonar::serve
