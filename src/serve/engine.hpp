// Concurrent serving engine: many recordings, many devices, one process.
//
// Architecture (see DESIGN.md §"Serving architecture"):
//
//   submit() ──try_push──▶ BoundedQueue ──pop──▶ worker_loop × N ──▶ promise
//                 │                                   │
//            reject with                     StreamingSession per request
//            reason when full                (chunked feed, finish, predict
//                                             against ModelRegistry::current)
//
// Backpressure is explicit: a full queue rejects the submission immediately
// with a reason (never blocks the caller, never drops accepted work), so an
// upstream load balancer can retry elsewhere. Workers run on the repo-wide
// `common/parallel` pool — start() leases `workers` pool threads through one
// long-running parallel_for batch until stop(); the engine therefore owns
// the pool while serving (batch stages like EarSonar::fit queue behind it),
// which matches the deployment shape: a process is either serving or
// training, never both at once.
//
// Each worker feeds its request through a StreamingSession in `chunk_samples`
// slices. Requests may carry `chunk_period_s` to replay the device's real
// arrival cadence (the worker waits between chunks as a live session would);
// bench_serve uses that to measure how many concurrent real-time sessions a
// worker count sustains.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "audio/waveform.hpp"
#include "core/detector.hpp"
#include "core/pipeline.hpp"
#include "core/wideband.hpp"
#include "pipeline/stage_graph.hpp"
#include "serve/metrics.hpp"
#include "serve/queue.hpp"
#include "serve/registry.hpp"
#include "serve/streaming.hpp"
#include "serve/workload.hpp"

namespace earsonar::serve {

struct EngineConfig {
  std::size_t workers = 2;          ///< request workers leased from the pool
  std::size_t queue_capacity = 64;  ///< pending requests before rejection
  std::size_t chunk_samples = 480;  ///< default ingestion slice (10 ms @ 48 kHz)
  StreamingConfig session;          ///< per-request streaming configuration
  /// Run workers on dedicated std::threads instead of leasing the shared
  /// parallel pool. The pool lease serializes concurrent engines (run() calls
  /// queue behind one batch mutex), so a sharded deployment — N engines alive
  /// at once under net::ShardPool — must use dedicated threads; a single
  /// in-process engine keeps the pool lease and its serving-or-training
  /// exclusivity (see the file comment).
  bool dedicated_threads = false;
  /// Cross-request batching: a worker that pops a request keeps collecting
  /// up to this many requests (lingering at most batch_wait_us for
  /// stragglers), then runs them through the stage graph as ONE batch —
  /// shared MultiBiquadCascade filter passes during ingest and
  /// cross-request x4 lanes in the echo-PSD stage (pipeline::BatchExecutor).
  /// 1 disables batching (the classic per-request path). Results are
  /// bit-identical either way; see docs/serving.md "Batching semantics".
  std::size_t batch_max = 1;
  /// Microseconds a batch-leading worker lingers for more requests after its
  /// first pop. 0 still batches whatever is already queued, adding no
  /// latency. Bounded by the request deadline rule: a request whose deadline
  /// expires during the linger is shed before any pipeline work.
  std::size_t batch_wait_us = 200;

  void validate() const;
};

struct ServeRequest {
  std::string id;                 ///< caller's tag, echoed in the result
  audio::Waveform recording;      ///< any sample rate; resampled like analyze()
  /// Which screening this request is (docs/workloads.md). kEarSonar requests
  /// carry `recording`/`session`; kAbsorbance requests carry `absorbance`.
  /// Declared after `recording` so `{id, recording}` aggregate init keeps
  /// meaning "an EarSonar request".
  WorkloadType workload = WorkloadType::kEarSonar;
  /// kAbsorbance payload: the measured 226 Hz-8 kHz absorbance curve (one
  /// value per wideband grid bin; length checked against the loaded model).
  std::vector<double> absorbance;
  std::size_t chunk_samples = 0;  ///< 0 = engine default
  /// Seconds between chunk arrivals (0 = backlogged upload, feed immediately).
  /// Real-time device streaming = chunk_samples / sample_rate.
  double chunk_period_s = 0.0;
  /// Request deadline in milliseconds from submit() (0 = none). An expired
  /// request is shed at dequeue — before any pipeline work — and a request
  /// that expires mid-pipeline is cancelled at the next stage boundary;
  /// either way the result carries deadline_exceeded = true and the request
  /// counts toward `requests_deadline_exceeded_total`, not `failed`.
  double timeout_ms = 0.0;
  /// Alternative payload: a StreamingSession someone else already fed (the
  /// networked front-end streams chunks into the session on the connection
  /// thread as they arrive, then submits only the finalization). When set,
  /// `recording` / chunking fields are ignored and the worker runs
  /// session->finish() + inference. The session must have been built with a
  /// causal pipeline config compatible with this engine's.
  std::unique_ptr<StreamingSession> session = nullptr;
};

struct ServeResult {
  std::string id;
  WorkloadType workload = WorkloadType::kEarSonar;  ///< echoed from the request
  bool usable = false;  ///< an echo was segmented and features extracted
  std::optional<core::Diagnosis> diagnosis;  ///< set when usable and a model is loaded
  std::size_t events = 0;
  std::size_t echoes = 0;
  core::StageTimings timings;   ///< per-stage pipeline latency
  core::AnalysisQuality quality;  ///< per-chirp degradation report
  /// The 105-dim feature vector when usable (what a remote caller needs to
  /// verify a networked answer bit-for-bit against the in-process pipeline).
  std::vector<double> features;
  double queue_ms = 0.0;        ///< time spent waiting in the queue
  double total_ms = 0.0;        ///< queue wait + processing
  std::uint64_t model_version = 0;
  bool deadline_exceeded = false;  ///< shed at dequeue or cancelled mid-pipeline
  std::string error;            ///< non-empty when processing threw
};

/// Outcome of submit(): either a future for the result, or a rejection with
/// the reason (queue full / engine stopped).
struct Submission {
  bool accepted = false;
  std::string reason;
  std::future<ServeResult> result;
};

class ServingEngine {
 public:
  explicit ServingEngine(EngineConfig config = {});
  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Leases worker threads from the shared pool and begins draining the
  /// queue. Idempotent while running.
  void start();

  /// Closes the queue, drains every accepted request, and releases the pool.
  /// Safe to call repeatedly; the destructor calls it.
  void stop();

  [[nodiscard]] bool running() const { return running_.load(); }

  /// Never blocks: accepted requests get a future, a full queue or stopped
  /// engine gets a reason. Accepted requests are always completed (their
  /// future becomes ready) even when stop() races the submission.
  Submission submit(ServeRequest request);

  /// The hot-swappable model store shared by all workers.
  [[nodiscard]] ModelRegistry& registry() { return registry_; }

  /// Installs the wideband screener for the absorbance workload (same
  /// reader-copies-the-shared_ptr discipline as ModelRegistry); returns the
  /// new wideband model version. Absorbance requests processed while no
  /// screener is installed complete usable but carry no diagnosis, mirroring
  /// the EarSonar path before its first model install.
  std::uint64_t install_wideband(std::shared_ptr<const core::WidebandScreener> model);

  /// The active wideband screener, or nullptr before the first install.
  [[nodiscard]] std::shared_ptr<const core::WidebandScreener> wideband_model() const;
  [[nodiscard]] std::uint64_t wideband_version() const {
    return wideband_version_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const ServeMetrics& metrics() const { return metrics_; }
  /// Mutable access for collaborators that feed engine counters from outside
  /// the request path (e.g. the CLI's model reloader incrementing
  /// `model_reload_retries`).
  [[nodiscard]] ServeMetrics& metrics() { return metrics_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  [[nodiscard]] const EngineConfig& config() const { return config_; }

  /// metrics().text_snapshot() plus engine-level gauges (queue capacity,
  /// worker count, batching knobs, model version/source) and the per-stage
  /// occupancy counters of the stage graph.
  [[nodiscard]] std::string metrics_snapshot() const;

  /// Per-stage occupancy of the batched execution path (see
  /// pipeline::StageGraph; unbatched occupancy lives in the latency
  /// histograms).
  [[nodiscard]] const pipeline::StageGraph& stage_graph() const {
    return stage_graph_;
  }

 private:
  struct Job {
    ServeRequest request;
    std::promise<ServeResult> promise;
    std::chrono::steady_clock::time_point enqueued;
    /// Absolute deadline, fixed at submit() from request.timeout_ms.
    std::optional<std::chrono::steady_clock::time_point> deadline;
  };

  void worker_loop();
  [[nodiscard]] ServeResult process(ServeRequest& request,
                                    const CancelToken& cancel);
  /// The absorbance workload's whole pipeline: classify the request's curve
  /// with the installed wideband screener. No streaming session, no stage
  /// graph — one scaler + softmax pass.
  [[nodiscard]] ServeResult process_absorbance(const ServeRequest& request);
  /// Dequeue-side bookkeeping shared by both paths: records queue wait,
  /// sheds the job (promise satisfied, nullopt returned) when its deadline
  /// already expired, else hands back the request's cancel token.
  [[nodiscard]] std::optional<CancelToken> admit_dequeued(Job& job,
                                                          double& queue_ms);
  /// process() for one dequeued job, with the error mapping and completion
  /// metrics — the classic per-request path.
  void handle_job(Job job, double queue_ms, const CancelToken& cancel);
  /// One collected batch: shed expired jobs, run paced jobs classically,
  /// batch the rest through feed_many + StreamingSession::finish_many.
  void process_batch(std::vector<Job> batch);
  /// The tail shared by process() and the batched path: result assembly from
  /// one analysis, stage-latency metrics, and inference.
  [[nodiscard]] ServeResult finalize_analysis(const std::string& id,
                                              core::EchoAnalysis analysis,
                                              double resample_ms);
  /// Total/outcome metrics + promise completion for one job.
  void finish_job(Job& job, ServeResult result, double queue_ms);

  EngineConfig config_;
  ModelRegistry registry_;
  /// Wideband screener for the absorbance workload. Guarded like the model
  /// registry: readers copy the shared_ptr under a shared lock.
  mutable std::shared_mutex wideband_mutex_;
  std::shared_ptr<const core::WidebandScreener> wideband_;
  std::atomic<std::uint64_t> wideband_version_{0};
  ServeMetrics metrics_;
  pipeline::StageGraph stage_graph_;
  BoundedQueue<Job> queue_;
  std::thread coordinator_;                ///< pool-lease mode
  std::vector<std::thread> dedicated_;     ///< dedicated_threads mode
  std::atomic<bool> running_{false};
};

}  // namespace earsonar::serve
