#include "serve/engine.hpp"

#include <algorithm>
#include <exception>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "dsp/interpolate.hpp"
#include "obs/trace.hpp"

namespace earsonar::serve {

namespace {
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}
}  // namespace

void EngineConfig::validate() const {
  require(workers >= 1, "EngineConfig: workers must be >= 1");
  require(queue_capacity >= 1, "EngineConfig: queue_capacity must be >= 1");
  require(chunk_samples >= 1, "EngineConfig: chunk_samples must be >= 1");
  require(batch_max >= 1, "EngineConfig: batch_max must be >= 1");
  session.validate();
}

ServingEngine::ServingEngine(EngineConfig config)
    : config_(std::move(config)), queue_(config_.queue_capacity) {
  config_.validate();
}

ServingEngine::~ServingEngine() { stop(); }

void ServingEngine::start() {
  if (running_.exchange(true)) return;
  queue_.reopen();
  if (config_.dedicated_threads) {
    // Sharded mode: the engine owns its worker threads outright so N shard
    // engines drain their queues concurrently (the pool lease below would
    // serialize them behind one batch mutex).
    dedicated_.reserve(config_.workers);
    for (std::size_t i = 0; i < config_.workers; ++i)
      dedicated_.emplace_back([this] { worker_loop(); });
    return;
  }
  // One coordinator thread leases `workers` pool threads through a single
  // long-running parallel_for batch; each index runs one worker loop until
  // the queue closes. The pool's batch mutex is held for the lease's
  // lifetime, so other parallel_for callers wait — a serving process is not
  // also training (see file comment in engine.hpp).
  coordinator_ = std::thread([this] {
    parallel_for(
        config_.workers, [this](std::size_t) { worker_loop(); }, config_.workers);
  });
}

void ServingEngine::stop() {
  if (!running_.exchange(false)) return;
  // close() wakes every worker; they drain the remaining accepted jobs before
  // pop() returns false, so no accepted request is dropped.
  queue_.close();
  if (coordinator_.joinable()) coordinator_.join();
  for (std::thread& worker : dedicated_)
    if (worker.joinable()) worker.join();
  dedicated_.clear();
}

Submission ServingEngine::submit(ServeRequest request) {
  Submission submission;
  const std::size_t widx = workload_index(request.workload);
  if (!running_.load()) {
    metrics_.rejected_stopped.fetch_add(1, std::memory_order_relaxed);
    submission.reason = "engine not running";
    return submission;
  }
  Job job{std::move(request), {}, Clock::now(), std::nullopt};
  if (job.request.timeout_ms > 0.0) {
    // The deadline clock starts at submission: queue wait counts against it,
    // which is what lets workers shed stale jobs without touching them.
    job.deadline = job.enqueued + std::chrono::duration_cast<Clock::duration>(
                                      std::chrono::duration<double, std::milli>(
                                          job.request.timeout_ms));
  }
  submission.result = job.promise.get_future();
  if (!queue_.try_push(std::move(job))) {
    submission.result = {};
    if (!running_.load() || queue_.closed()) {
      metrics_.rejected_stopped.fetch_add(1, std::memory_order_relaxed);
      submission.reason = "engine not running";
    } else {
      metrics_.rejected_queue_full.fetch_add(1, std::memory_order_relaxed);
      std::ostringstream reason;
      reason << "queue full (capacity " << config_.queue_capacity << ")";
      submission.reason = reason.str();
    }
    return submission;
  }
  metrics_.accepted.fetch_add(1, std::memory_order_relaxed);
  metrics_.workload[widx].accepted.fetch_add(1, std::memory_order_relaxed);
  metrics_.queue_depth.fetch_add(1, std::memory_order_relaxed);
  submission.accepted = true;
  return submission;
}

std::uint64_t ServingEngine::install_wideband(
    std::shared_ptr<const core::WidebandScreener> model) {
  std::unique_lock lock(wideband_mutex_);
  wideband_ = std::move(model);
  return wideband_version_.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::shared_ptr<const core::WidebandScreener> ServingEngine::wideband_model() const {
  std::shared_lock lock(wideband_mutex_);
  return wideband_;
}

void ServingEngine::worker_loop() {
  // One span per worker lease: its row in the trace viewer shows the
  // worker's occupancy between start() and stop().
  obs::Span worker_span("worker", "serve");
  Job job;
  while (queue_.pop(job)) {
    if (config_.batch_max <= 1) {
      double queue_ms = 0.0;
      if (std::optional<CancelToken> cancel = admit_dequeued(job, queue_ms))
        handle_job(std::move(job), queue_ms, *cancel);
      continue;
    }
    // Batching: the first pop leads a batch; linger up to batch_wait_us for
    // stragglers (or until the batch fills). A closed queue cuts the linger
    // short, so stop() still drains promptly.
    std::vector<Job> batch;
    batch.push_back(std::move(job));
    obs::Span collect_span("batch_collect", "serve");
    const auto linger_until =
        Clock::now() + std::chrono::microseconds(config_.batch_wait_us);
    Job extra;
    while (batch.size() < config_.batch_max &&
           queue_.try_pop_until(extra, linger_until))
      batch.push_back(std::move(extra));
    collect_span.set_arg("requests", static_cast<std::int64_t>(batch.size()));
    collect_span.end();
    process_batch(std::move(batch));
  }
}

std::optional<CancelToken> ServingEngine::admit_dequeued(Job& job,
                                                         double& queue_ms) {
  metrics_.queue_depth.fetch_sub(1, std::memory_order_relaxed);
  const auto dequeued = Clock::now();
  queue_ms =
      std::chrono::duration<double, std::milli>(dequeued - job.enqueued).count();
  metrics_.latency.queue_wait.record(queue_ms);
  // Queue wait spans submit() on one thread to pop() on another; record it
  // with explicit endpoints on the consuming worker's row.
  obs::TraceRecorder::instance().record_complete("queue_wait", "serve",
                                                 job.enqueued, dequeued);
  const CancelToken cancel = job.deadline ? CancelToken::with_deadline(*job.deadline)
                                          : CancelToken();
  if (cancel.expired()) {
    // Shed at dequeue: the caller's deadline passed while the job waited in
    // the queue (or in a leader's batch-collect linger), so no pipeline work
    // is worth doing. Counted separately from failures — the engine did
    // nothing wrong, it was just too busy.
    ServeResult shed;
    shed.id = job.request.id;
    shed.deadline_exceeded = true;
    shed.error = "deadline_exceeded: shed at dequeue";
    shed.workload = job.request.workload;
    shed.queue_ms = queue_ms;
    shed.total_ms = ms_since(job.enqueued);
    metrics_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
    metrics_.workload[workload_index(job.request.workload)]
        .deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
    job.promise.set_value(std::move(shed));
    return std::nullopt;
  }
  return cancel;
}

void ServingEngine::handle_job(Job job, double queue_ms, const CancelToken& cancel) {
  obs::Span request_span("serve_request", "serve");
  ServeResult result;
  try {
    result = process(job.request, cancel);
  } catch (const CancelledError& e) {
    result.id = job.request.id;
    result.deadline_exceeded = true;
    result.error = e.what();
  } catch (const std::exception& e) {
    result.id = job.request.id;
    result.error = e.what();
  } catch (...) {
    result.id = job.request.id;
    result.error = "unknown error";
  }
  finish_job(job, std::move(result), queue_ms);
}

void ServingEngine::finish_job(Job& job, ServeResult result, double queue_ms) {
  result.workload = job.request.workload;
  ServeMetrics::WorkloadCounters& per_type =
      metrics_.workload[workload_index(job.request.workload)];
  result.queue_ms = queue_ms;
  result.total_ms = ms_since(job.enqueued);
  metrics_.latency.total.record(result.total_ms);
  if (result.deadline_exceeded) {
    metrics_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
    per_type.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
  } else if (!result.error.empty()) {
    metrics_.failed.fetch_add(1, std::memory_order_relaxed);
    per_type.failed.fetch_add(1, std::memory_order_relaxed);
  } else {
    metrics_.completed.fetch_add(1, std::memory_order_relaxed);
    per_type.completed.fetch_add(1, std::memory_order_relaxed);
    if (!result.usable) metrics_.no_echo.fetch_add(1, std::memory_order_relaxed);
    if (result.quality.degraded)
      metrics_.degraded.fetch_add(1, std::memory_order_relaxed);
  }
  job.promise.set_value(std::move(result));
}

ServeResult ServingEngine::process_absorbance(const ServeRequest& request) {
  ServeResult result;
  result.id = request.id;
  result.workload = WorkloadType::kAbsorbance;
  require(request.session == nullptr,
          "absorbance request must not carry a streaming session");
  if (request.absorbance.empty()) {
    // Mirrors an EarSonar recording with no segmentable echo: the request
    // completes, but there is nothing to classify.
    result.usable = false;
    return result;
  }
  result.usable = true;
  result.features = request.absorbance;  // what a remote caller verifies against
  if (std::shared_ptr<const core::WidebandScreener> model = wideband_model()) {
    obs::Span inference_span("inference", "serve");
    result.diagnosis = model->classify(request.absorbance);
    inference_span.end();
    result.timings.inference_ms = inference_span.elapsed_ms();
    metrics_.latency.inference.record(result.timings.inference_ms);
    metrics_.inferences.fetch_add(1, std::memory_order_relaxed);
    result.model_version = wideband_version();
    stage_graph_.record(pipeline::StageId::kInference,
                        result.timings.inference_ms, 1, false);
  }
  return result;
}

ServeResult ServingEngine::process(ServeRequest& request,
                                   const CancelToken& cancel) {
  if (request.workload == WorkloadType::kAbsorbance)
    return process_absorbance(request);
  ServeResult result;
  result.id = request.id;

  double resample_ms = 0.0;
  StreamingSession* session = request.session.get();
  std::optional<StreamingSession> own_session;
  if (session == nullptr) {
    // Classic path: the engine owns ingestion, feeding the recording through
    // a fresh session in chunks (optionally paced at the device's cadence).
    own_session.emplace(config_.session);
    session = &*own_session;
    const double rate = config_.session.pipeline.chirp.sample_rate;

    // Streaming sessions ingest at the probe rate; resample other captures up
    // front (the batch path does the same inside analyze()).
    std::span<const double> samples = request.recording.view();
    std::vector<double> resampled;
    obs::Span resample_span("resample", "serve");
    if (request.recording.sample_rate() != rate) {
      resampled = dsp::resample_to_rate(samples, request.recording.sample_rate(), rate);
      samples = resampled;
    }
    resample_span.end();
    resample_ms = resample_span.elapsed_ms();

    const std::size_t chunk =
        request.chunk_samples > 0 ? request.chunk_samples : config_.chunk_samples;
    // The ingest span covers arrival pacing too: with chunk_period_s set its
    // length is the session's wall-clock lifetime, not CPU time.
    obs::Span ingest_span("stream_ingest", "serve");
    ingest_span.set_arg("chunks",
                        static_cast<std::int64_t>((samples.size() + chunk - 1) / chunk));
    for (std::size_t pos = 0; pos < samples.size(); pos += chunk) {
      cancel.check("stream_ingest");
      if (pos > 0 && request.chunk_period_s > 0.0) {
        // Real-time pacing: the next chunk has not arrived from the device yet.
        std::this_thread::sleep_for(std::chrono::duration<double>(request.chunk_period_s));
      }
      const std::size_t len = std::min(chunk, samples.size() - pos);
      session->feed(samples.subspan(pos, len));
      metrics_.chunks_fed.fetch_add(1, std::memory_order_relaxed);
    }
    ingest_span.end();
  }
  // else: networked path — the connection thread already fed every chunk
  // (and counted them in chunks_fed); only the finalization runs here.

  core::EchoAnalysis analysis = session->finish(cancel);
  return finalize_analysis(request.id, std::move(analysis), resample_ms);
}

ServeResult ServingEngine::finalize_analysis(const std::string& id,
                                             core::EchoAnalysis analysis,
                                             double resample_ms) {
  ServeResult result;
  result.id = id;
  result.usable = analysis.usable();
  result.events = analysis.events.size();
  result.echoes = analysis.echoes.size();
  result.quality = analysis.quality;
  result.timings = analysis.timings;
  result.timings.bandpass_ms = resample_ms;  // chunk filtering folds into feed()

  metrics_.latency.bandpass.record(result.timings.bandpass_ms);
  metrics_.latency.event_detect.record(result.timings.event_detect_ms);
  metrics_.latency.segment.record(result.timings.segment_ms);
  metrics_.latency.feature.record(result.timings.feature_ms);
  metrics_.events_detected.fetch_add(result.events, std::memory_order_relaxed);
  metrics_.echoes_segmented.fetch_add(result.echoes, std::memory_order_relaxed);

  if (result.usable) {
    if (std::shared_ptr<const core::DetectorModel> model = registry_.current()) {
      obs::Span inference_span("inference", "serve");
      result.diagnosis = model->predict(analysis.features);
      inference_span.end();
      result.timings.inference_ms = inference_span.elapsed_ms();
      metrics_.latency.inference.record(result.timings.inference_ms);
      metrics_.inferences.fetch_add(1, std::memory_order_relaxed);
      result.model_version = registry_.version();
      stage_graph_.record(pipeline::StageId::kInference,
                          result.timings.inference_ms, 1, false);
    }
    result.features = std::move(analysis.features);
  }
  return result;
}

void ServingEngine::process_batch(std::vector<Job> batch) {
  // Shed-before-work: every job's deadline is re-checked here, after the
  // batch-collect linger, so a request that expired while the leader waited
  // for stragglers never reaches the pipeline (docs/serving.md).
  struct Admitted {
    std::size_t job;      ///< index into `batch`
    CancelToken cancel;
    double queue_ms = 0.0;
  };
  std::vector<Admitted> live;
  live.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    double queue_ms = 0.0;
    if (std::optional<CancelToken> cancel = admit_dequeued(batch[i], queue_ms))
      live.push_back({i, *cancel, queue_ms});
  }
  if (live.empty()) return;

  // Partition by workload type FIRST: a pipeline batch never mixes types
  // (docs/workloads.md). Absorbance jobs form their own type-pure group —
  // they have no waveform to ingest, so they never enter feed_many /
  // finish_many. Paced EarSonar jobs (chunk_period_s > 0) hold wall-clock
  // sleeps between chunks; batching them would stall their lane-mates. They
  // — and a batch that collapsed to one job — take the classic per-request
  // path, which keeps batch_max=1 and batch-of-one behavior exactly the
  // unbatched code.
  std::vector<Admitted> batched;     ///< EarSonar jobs for the pipeline pass
  std::vector<Admitted> absorbance;  ///< type-pure absorbance group
  batched.reserve(live.size());
  for (const Admitted& a : live) {
    ServeRequest& request = batch[a.job].request;
    if (request.workload == WorkloadType::kAbsorbance)
      absorbance.push_back(a);
    else if (request.session == nullptr && request.chunk_period_s > 0.0)
      handle_job(std::move(batch[a.job]), a.queue_ms, a.cancel);
    else
      batched.push_back(a);
  }
  if (!absorbance.empty()) {
    ServeMetrics::WorkloadCounters& per_type =
        metrics_.workload[workload_index(WorkloadType::kAbsorbance)];
    if (absorbance.size() > 1) {
      per_type.batches.fetch_add(1, std::memory_order_relaxed);
      per_type.batched_requests.fetch_add(absorbance.size(),
                                          std::memory_order_relaxed);
    }
    for (const Admitted& a : absorbance) {
      ensure(batch[a.job].request.workload == WorkloadType::kAbsorbance,
             "batch type purity violated: non-absorbance job in absorbance group");
      handle_job(std::move(batch[a.job]), a.queue_ms, a.cancel);
    }
  }
  if (batched.empty()) return;
  if (batched.size() == 1) {
    const Admitted& a = batched.front();
    handle_job(std::move(batch[a.job]), a.queue_ms, a.cancel);
    return;
  }

  obs::Span request_span("serve_batch", "serve");
  request_span.set_arg("requests", static_cast<std::int64_t>(batched.size()));
  for (const Admitted& a : batched)
    ensure(batch[a.job].request.workload == WorkloadType::kEarSonar,
           "batch type purity violated: non-EarSonar job in pipeline batch");
  metrics_.batches.fetch_add(1, std::memory_order_relaxed);
  metrics_.batched_requests.fetch_add(batched.size(), std::memory_order_relaxed);
  {
    ServeMetrics::WorkloadCounters& per_type =
        metrics_.workload[workload_index(WorkloadType::kEarSonar)];
    per_type.batches.fetch_add(1, std::memory_order_relaxed);
    per_type.batched_requests.fetch_add(batched.size(),
                                        std::memory_order_relaxed);
  }

  // --- Ingest: jobs that arrived as whole recordings stream into fresh
  // sessions in chunk rounds; each round feeds every active job's next chunk
  // through ONE StreamingSession::feed_many call, whose interleaved
  // MultiBiquadCascade pass filters the lanes together (bit-identical to
  // per-session feeds). Pre-fed sessions (the networked path) skip this.
  struct Lane {
    StreamingSession* session = nullptr;
    std::unique_ptr<StreamingSession> own;  ///< engine-built (classic path)
    std::vector<double> resampled;          ///< owns off-rate sample storage
    std::span<const double> samples;
    std::size_t chunk = 0, pos = 0;
    double resample_ms = 0.0;
    bool failed = false;
    std::exception_ptr error;
  };
  std::vector<Lane> lanes(batched.size());
  const double rate = config_.session.pipeline.chirp.sample_rate;
  // Engine-owned lanes never read provisional state between feed and finish
  // (finish_many re-detects events from the buffered waveform — bit-identical
  // results), so skip the per-lane serial detector scan during shared ingest.
  StreamingConfig lane_config = config_.session;
  lane_config.defer_event_detection = true;
  for (std::size_t j = 0; j < batched.size(); ++j) {
    Lane& lane = lanes[j];
    ServeRequest& request = batch[batched[j].job].request;
    if (request.session != nullptr) {
      lane.session = request.session.get();
      continue;  // already fed by the connection thread
    }
    try {
      lane.own = std::make_unique<StreamingSession>(lane_config);
      lane.session = lane.own.get();
      lane.samples = request.recording.view();
      obs::Span resample_span("resample", "serve");
      if (request.recording.sample_rate() != rate) {
        lane.resampled =
            dsp::resample_to_rate(lane.samples, request.recording.sample_rate(), rate);
        lane.samples = lane.resampled;
      }
      resample_span.end();
      lane.resample_ms = resample_span.elapsed_ms();
      lane.chunk =
          request.chunk_samples > 0 ? request.chunk_samples : config_.chunk_samples;
    } catch (...) {
      lane.failed = true;
      lane.error = std::current_exception();
    }
  }

  bool feeding = true;
  while (feeding) {
    feeding = false;
    std::vector<StreamingSession*> round_sessions;
    std::vector<std::span<const double>> round_chunks;
    std::vector<std::size_t> round_lanes;
    for (std::size_t j = 0; j < batched.size(); ++j) {
      Lane& lane = lanes[j];
      if (lane.failed || lane.own == nullptr || lane.pos >= lane.samples.size())
        continue;
      try {
        batched[j].cancel.check("stream_ingest");
      } catch (...) {
        lane.failed = true;
        lane.error = std::current_exception();
        continue;
      }
      const std::size_t len = std::min(lane.chunk, lane.samples.size() - lane.pos);
      round_sessions.push_back(lane.session);
      round_chunks.push_back(lane.samples.subspan(lane.pos, len));
      round_lanes.push_back(j);
      lane.pos += len;
    }
    if (round_sessions.empty()) break;
    feeding = true;
    obs::Span filter_span("batch.filter", "serve");
    filter_span.set_arg("sessions",
                        static_cast<std::int64_t>(round_sessions.size()));
    try {
      (void)StreamingSession::feed_many(round_sessions, round_chunks);
      metrics_.chunks_fed.fetch_add(round_sessions.size(),
                                    std::memory_order_relaxed);
    } catch (...) {
      // feed_many failed as a unit (e.g. an injected serve.stream.feed
      // fault). Re-feed this round per session so the error lands on the
      // session that owns it and lane-mates survive.
      for (std::size_t r = 0; r < round_lanes.size(); ++r) {
        Lane& lane = lanes[round_lanes[r]];
        try {
          (void)lane.session->feed(round_chunks[r]);
          metrics_.chunks_fed.fetch_add(1, std::memory_order_relaxed);
        } catch (...) {
          lane.failed = true;
          lane.error = std::current_exception();
        }
      }
    }
    filter_span.end();
    stage_graph_.record(pipeline::StageId::kFilter, filter_span.elapsed_ms(),
                        round_sessions.size(), round_sessions.size() > 1);
  }

  // --- Finish: one batched pass over every surviving session; the echo-PSD
  // stage packs all requests' chirp windows into shared x4 lanes.
  std::vector<StreamingSession*> finish_sessions;
  std::vector<CancelToken> finish_cancels;
  std::vector<std::size_t> finish_lanes;
  for (std::size_t j = 0; j < batched.size(); ++j) {
    if (lanes[j].failed) continue;
    finish_sessions.push_back(lanes[j].session);
    finish_cancels.push_back(batched[j].cancel);
    finish_lanes.push_back(j);
  }
  pipeline::BatchRunInfo info;
  std::vector<pipeline::BatchOutcome> outcomes;
  if (!finish_sessions.empty())
    outcomes = StreamingSession::finish_many(finish_sessions, finish_cancels,
                                             &stage_graph_, &info);
  if (info.forced_fallback)
    metrics_.batch_fallbacks.fetch_add(1, std::memory_order_relaxed);

  for (std::size_t r = 0; r < finish_lanes.size(); ++r) {
    Lane& lane = lanes[finish_lanes[r]];
    if (outcomes[r].ok())
      continue;
    lane.failed = true;
    lane.error = outcomes[r].error;
  }

  // --- Per-job completion, identical outcome mapping to handle_job().
  std::size_t ok_cursor = 0;
  for (std::size_t j = 0; j < batched.size(); ++j) {
    Job& job = batch[batched[j].job];
    Lane& lane = lanes[j];
    ServeResult result;
    const bool finished_ok =
        ok_cursor < finish_lanes.size() && finish_lanes[ok_cursor] == j;
    if (finished_ok) ++ok_cursor;
    if (!lane.failed && finished_ok) {
      result = finalize_analysis(job.request.id,
                                 std::move(outcomes[ok_cursor - 1].analysis),
                                 lane.resample_ms);
    } else {
      try {
        std::rethrow_exception(lane.error);
      } catch (const CancelledError& e) {
        result.id = job.request.id;
        result.deadline_exceeded = true;
        result.error = e.what();
      } catch (const std::exception& e) {
        result.id = job.request.id;
        result.error = e.what();
      } catch (...) {
        result.id = job.request.id;
        result.error = "unknown error";
      }
    }
    finish_job(job, std::move(result), batched[j].queue_ms);
  }
}

std::string ServingEngine::metrics_snapshot() const {
  std::ostringstream out;
  out << "earsonar_serve_workers " << config_.workers << "\n";
  out << "earsonar_serve_queue_capacity " << config_.queue_capacity << "\n";
  out << "earsonar_serve_batch_max " << config_.batch_max << "\n";
  out << "earsonar_serve_batch_wait_us " << config_.batch_wait_us << "\n";
  out << "earsonar_serve_model_version " << registry_.version() << "\n";
  out << "earsonar_serve_wideband_model_version " << wideband_version() << "\n";
  const obs::TraceRecorder& recorder = obs::TraceRecorder::instance();
  out << "earsonar_serve_trace_enabled " << (recorder.enabled() ? 1 : 0) << "\n";
  out << "earsonar_serve_trace_spans_total " << recorder.size() << "\n";
  out << metrics_.text_snapshot();
  out << stage_graph_.text_snapshot();
  return out.str();
}

}  // namespace earsonar::serve
