#include "serve/engine.hpp"

#include <algorithm>
#include <exception>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "dsp/interpolate.hpp"
#include "obs/trace.hpp"

namespace earsonar::serve {

namespace {
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}
}  // namespace

void EngineConfig::validate() const {
  require(workers >= 1, "EngineConfig: workers must be >= 1");
  require(queue_capacity >= 1, "EngineConfig: queue_capacity must be >= 1");
  require(chunk_samples >= 1, "EngineConfig: chunk_samples must be >= 1");
  session.validate();
}

ServingEngine::ServingEngine(EngineConfig config)
    : config_(std::move(config)), queue_(config_.queue_capacity) {
  config_.validate();
}

ServingEngine::~ServingEngine() { stop(); }

void ServingEngine::start() {
  if (running_.exchange(true)) return;
  queue_.reopen();
  if (config_.dedicated_threads) {
    // Sharded mode: the engine owns its worker threads outright so N shard
    // engines drain their queues concurrently (the pool lease below would
    // serialize them behind one batch mutex).
    dedicated_.reserve(config_.workers);
    for (std::size_t i = 0; i < config_.workers; ++i)
      dedicated_.emplace_back([this] { worker_loop(); });
    return;
  }
  // One coordinator thread leases `workers` pool threads through a single
  // long-running parallel_for batch; each index runs one worker loop until
  // the queue closes. The pool's batch mutex is held for the lease's
  // lifetime, so other parallel_for callers wait — a serving process is not
  // also training (see file comment in engine.hpp).
  coordinator_ = std::thread([this] {
    parallel_for(
        config_.workers, [this](std::size_t) { worker_loop(); }, config_.workers);
  });
}

void ServingEngine::stop() {
  if (!running_.exchange(false)) return;
  // close() wakes every worker; they drain the remaining accepted jobs before
  // pop() returns false, so no accepted request is dropped.
  queue_.close();
  if (coordinator_.joinable()) coordinator_.join();
  for (std::thread& worker : dedicated_)
    if (worker.joinable()) worker.join();
  dedicated_.clear();
}

Submission ServingEngine::submit(ServeRequest request) {
  Submission submission;
  if (!running_.load()) {
    metrics_.rejected_stopped.fetch_add(1, std::memory_order_relaxed);
    submission.reason = "engine not running";
    return submission;
  }
  Job job{std::move(request), {}, Clock::now(), std::nullopt};
  if (job.request.timeout_ms > 0.0) {
    // The deadline clock starts at submission: queue wait counts against it,
    // which is what lets workers shed stale jobs without touching them.
    job.deadline = job.enqueued + std::chrono::duration_cast<Clock::duration>(
                                      std::chrono::duration<double, std::milli>(
                                          job.request.timeout_ms));
  }
  submission.result = job.promise.get_future();
  if (!queue_.try_push(std::move(job))) {
    submission.result = {};
    if (!running_.load() || queue_.closed()) {
      metrics_.rejected_stopped.fetch_add(1, std::memory_order_relaxed);
      submission.reason = "engine not running";
    } else {
      metrics_.rejected_queue_full.fetch_add(1, std::memory_order_relaxed);
      std::ostringstream reason;
      reason << "queue full (capacity " << config_.queue_capacity << ")";
      submission.reason = reason.str();
    }
    return submission;
  }
  metrics_.accepted.fetch_add(1, std::memory_order_relaxed);
  metrics_.queue_depth.fetch_add(1, std::memory_order_relaxed);
  submission.accepted = true;
  return submission;
}

void ServingEngine::worker_loop() {
  // One span per worker lease: its row in the trace viewer shows the
  // worker's occupancy between start() and stop().
  obs::Span worker_span("worker", "serve");
  Job job;
  while (queue_.pop(job)) {
    metrics_.queue_depth.fetch_sub(1, std::memory_order_relaxed);
    const auto dequeued = Clock::now();
    const double queue_ms =
        std::chrono::duration<double, std::milli>(dequeued - job.enqueued).count();
    metrics_.latency.queue_wait.record(queue_ms);
    // Queue wait spans submit() on one thread to pop() on another; record it
    // with explicit endpoints on the consuming worker's row.
    obs::TraceRecorder::instance().record_complete("queue_wait", "serve",
                                                   job.enqueued, dequeued);
    const CancelToken cancel = job.deadline
                                   ? CancelToken::with_deadline(*job.deadline)
                                   : CancelToken();
    if (cancel.expired()) {
      // Shed at dequeue: the caller's deadline passed while the job waited in
      // the queue, so no pipeline work is worth doing. Counted separately
      // from failures — the engine did nothing wrong, it was just too busy.
      ServeResult shed;
      shed.id = job.request.id;
      shed.deadline_exceeded = true;
      shed.error = "deadline_exceeded: shed at dequeue";
      shed.queue_ms = queue_ms;
      shed.total_ms = ms_since(job.enqueued);
      metrics_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
      job.promise.set_value(std::move(shed));
      continue;
    }
    obs::Span request_span("serve_request", "serve");
    ServeResult result;
    try {
      result = process(job.request, cancel);
    } catch (const CancelledError& e) {
      result.id = job.request.id;
      result.deadline_exceeded = true;
      result.error = e.what();
    } catch (const std::exception& e) {
      result.id = job.request.id;
      result.error = e.what();
    } catch (...) {
      result.id = job.request.id;
      result.error = "unknown error";
    }
    result.queue_ms = queue_ms;
    result.total_ms = ms_since(job.enqueued);
    metrics_.latency.total.record(result.total_ms);
    if (result.deadline_exceeded) {
      metrics_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
    } else if (!result.error.empty()) {
      metrics_.failed.fetch_add(1, std::memory_order_relaxed);
    } else {
      metrics_.completed.fetch_add(1, std::memory_order_relaxed);
      if (!result.usable) metrics_.no_echo.fetch_add(1, std::memory_order_relaxed);
      if (result.quality.degraded)
        metrics_.degraded.fetch_add(1, std::memory_order_relaxed);
    }
    job.promise.set_value(std::move(result));
  }
}

ServeResult ServingEngine::process(ServeRequest& request,
                                   const CancelToken& cancel) {
  ServeResult result;
  result.id = request.id;

  double resample_ms = 0.0;
  StreamingSession* session = request.session.get();
  std::optional<StreamingSession> own_session;
  if (session == nullptr) {
    // Classic path: the engine owns ingestion, feeding the recording through
    // a fresh session in chunks (optionally paced at the device's cadence).
    own_session.emplace(config_.session);
    session = &*own_session;
    const double rate = config_.session.pipeline.chirp.sample_rate;

    // Streaming sessions ingest at the probe rate; resample other captures up
    // front (the batch path does the same inside analyze()).
    std::span<const double> samples = request.recording.view();
    std::vector<double> resampled;
    obs::Span resample_span("resample", "serve");
    if (request.recording.sample_rate() != rate) {
      resampled = dsp::resample_to_rate(samples, request.recording.sample_rate(), rate);
      samples = resampled;
    }
    resample_span.end();
    resample_ms = resample_span.elapsed_ms();

    const std::size_t chunk =
        request.chunk_samples > 0 ? request.chunk_samples : config_.chunk_samples;
    // The ingest span covers arrival pacing too: with chunk_period_s set its
    // length is the session's wall-clock lifetime, not CPU time.
    obs::Span ingest_span("stream_ingest", "serve");
    ingest_span.set_arg("chunks",
                        static_cast<std::int64_t>((samples.size() + chunk - 1) / chunk));
    for (std::size_t pos = 0; pos < samples.size(); pos += chunk) {
      cancel.check("stream_ingest");
      if (pos > 0 && request.chunk_period_s > 0.0) {
        // Real-time pacing: the next chunk has not arrived from the device yet.
        std::this_thread::sleep_for(std::chrono::duration<double>(request.chunk_period_s));
      }
      const std::size_t len = std::min(chunk, samples.size() - pos);
      session->feed(samples.subspan(pos, len));
      metrics_.chunks_fed.fetch_add(1, std::memory_order_relaxed);
    }
    ingest_span.end();
  }
  // else: networked path — the connection thread already fed every chunk
  // (and counted them in chunks_fed); only the finalization runs here.

  core::EchoAnalysis analysis = session->finish(cancel);
  result.usable = analysis.usable();
  result.events = analysis.events.size();
  result.echoes = analysis.echoes.size();
  result.quality = analysis.quality;
  result.timings = analysis.timings;
  result.timings.bandpass_ms = resample_ms;  // chunk filtering folds into feed()

  metrics_.latency.bandpass.record(result.timings.bandpass_ms);
  metrics_.latency.event_detect.record(result.timings.event_detect_ms);
  metrics_.latency.segment.record(result.timings.segment_ms);
  metrics_.latency.feature.record(result.timings.feature_ms);
  metrics_.events_detected.fetch_add(result.events, std::memory_order_relaxed);
  metrics_.echoes_segmented.fetch_add(result.echoes, std::memory_order_relaxed);

  if (result.usable) {
    if (std::shared_ptr<const core::DetectorModel> model = registry_.current()) {
      obs::Span inference_span("inference", "serve");
      result.diagnosis = model->predict(analysis.features);
      inference_span.end();
      result.timings.inference_ms = inference_span.elapsed_ms();
      metrics_.latency.inference.record(result.timings.inference_ms);
      metrics_.inferences.fetch_add(1, std::memory_order_relaxed);
      result.model_version = registry_.version();
    }
    result.features = std::move(analysis.features);
  }
  return result;
}

std::string ServingEngine::metrics_snapshot() const {
  std::ostringstream out;
  out << "earsonar_serve_workers " << config_.workers << "\n";
  out << "earsonar_serve_queue_capacity " << config_.queue_capacity << "\n";
  out << "earsonar_serve_model_version " << registry_.version() << "\n";
  const obs::TraceRecorder& recorder = obs::TraceRecorder::instance();
  out << "earsonar_serve_trace_enabled " << (recorder.enabled() ? 1 : 0) << "\n";
  out << "earsonar_serve_trace_spans_total " << recorder.size() << "\n";
  out << metrics_.text_snapshot();
  return out.str();
}

}  // namespace earsonar::serve
