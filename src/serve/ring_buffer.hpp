// Fixed-capacity ring buffer — the storage primitive of the serving layer's
// bounded queues. Capacity is set once at construction and never grows;
// push() on a full ring fails instead of reallocating, which is what turns
// overload into explicit backpressure rather than unbounded memory growth.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace earsonar::serve {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : items_(capacity) {
    require_nonempty("RingBuffer capacity", capacity);
  }

  /// False (item untouched beyond the move) when the ring is full.
  bool push(T item) {
    if (count_ == items_.size()) return false;
    items_[(head_ + count_) % items_.size()] = std::move(item);
    ++count_;
    return true;
  }

  /// Removes and returns the oldest item; the ring must not be empty.
  T pop() {
    require(count_ > 0, "RingBuffer::pop on empty buffer");
    T item = std::move(items_[head_]);
    head_ = (head_ + 1) % items_.size();
    --count_;
    return item;
  }

  /// The i-th oldest item (0 = front); i must be < size().
  [[nodiscard]] const T& operator[](std::size_t i) const {
    require(i < count_, "RingBuffer: index out of range");
    return items_[(head_ + i) % items_.size()];
  }

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] std::size_t capacity() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] bool full() const { return count_ == items_.size(); }

 private:
  std::vector<T> items_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace earsonar::serve
