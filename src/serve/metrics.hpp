// Serving metrics: lock-free counters and latency histograms, exportable as
// a text snapshot (Prometheus exposition style). The histograms extend the
// pipeline's per-stage StageTimings to the serving path: every request
// records its band-pass / event / segmentation / feature / inference stage
// times plus queue wait and end-to-end latency, so a saturating stage shows
// up in the snapshot rather than only in offline benches.
//
// All mutation is relaxed atomics — recording a latency never takes a lock,
// so the hot serving path stays wait-free and the types are safe to share
// across worker threads (exercised under TSan by the `serve` test label).
#pragma once

#include <atomic>
#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "serve/workload.hpp"

namespace earsonar::serve {

/// Log2-bucketed latency histogram. Bucket b covers [2^(b-10), 2^(b-9)) ms,
/// i.e. ~1 us resolution at the bottom and ~16 s at the top; out-of-range
/// samples clamp to the edge buckets. Percentiles are read from the bucket
/// geometry (geometric midpoint), good to a factor of sqrt(2) — plenty to
/// spot a saturated stage, without per-sample storage.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 36;

  void record(double ms);

  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double mean_ms() const;
  /// Latency below which `quantile` (in [0, 1]) of samples fall; 0 when empty.
  /// Reads the geometric midpoint of the rank's bucket (factor-of-sqrt(2)
  /// granularity — every sample in a bucket reports the same value).
  [[nodiscard]] double percentile_ms(double quantile) const;
  /// percentile_ms with linear interpolation inside the rank's bucket: the
  /// rank's fractional position among the bucket's samples maps onto the
  /// bucket's [2^(b-10), 2^(b-9)) range. Same bucket storage, but tail
  /// quantiles (p99 vs p999) separate instead of collapsing onto one
  /// midpoint — what the load harness reports (docs/observability.md).
  [[nodiscard]] double percentile_interpolated_ms(double quantile) const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
};

/// Per-stage latency histograms for the serving path: the five StageTimings
/// stages, plus the two the engine adds (queue wait, end-to-end).
struct StageLatencies {
  LatencyHistogram bandpass;
  LatencyHistogram event_detect;
  LatencyHistogram segment;
  LatencyHistogram feature;
  LatencyHistogram inference;
  LatencyHistogram queue_wait;
  LatencyHistogram total;
};

/// Counters + histograms for one ServingEngine.
struct ServeMetrics {
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> rejected_queue_full{0};
  std::atomic<std::uint64_t> rejected_stopped{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> failed{0};    ///< processing threw
  std::atomic<std::uint64_t> no_echo{0};   ///< completed but unusable recording
  std::atomic<std::uint64_t> deadline_exceeded{0};  ///< shed or cancelled on deadline
  std::atomic<std::uint64_t> degraded{0};  ///< completed with a degraded quality report
  std::atomic<std::uint64_t> model_reload_retries{0};  ///< --watch reload backoff retries
  std::atomic<std::uint64_t> chunks_fed{0};
  std::atomic<std::int64_t> queue_depth{0};
  // Per-stage throughput counters fed from the pipeline's trace spans: how
  // much work each stage produced, complementing the latency histograms'
  // how-long (docs/observability.md enumerates all exported names).
  std::atomic<std::uint64_t> events_detected{0};   ///< chirp events, all requests
  std::atomic<std::uint64_t> echoes_segmented{0};  ///< segmented eardrum echoes
  std::atomic<std::uint64_t> inferences{0};        ///< detector predictions run
  // Cross-request batching (docs/serving.md "Batching semantics"): how many
  // multi-request batch passes ran, how many requests rode them, and how
  // many passes fell back to per-request processing (pipeline.batch fault or
  // a shared-pass failure).
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> batched_requests{0};
  std::atomic<std::uint64_t> batch_fallbacks{0};
  /// Per-workload-type accounting (docs/workloads.md): the engine carries
  /// mixed EarSonar + absorbance traffic; these split the request lifecycle
  /// by type so per-type accounting is exact —
  /// accepted == completed + failed + deadline_exceeded once drained —
  /// and batch passes are provably type-pure (a pass only ever ticks one
  /// type's batch counters).
  struct WorkloadCounters {
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> failed{0};
    std::atomic<std::uint64_t> deadline_exceeded{0};
    std::atomic<std::uint64_t> batches{0};           ///< type-pure batch passes
    std::atomic<std::uint64_t> batched_requests{0};  ///< requests riding them
  };
  std::array<WorkloadCounters, kWorkloadTypeCount> workload;
  StageLatencies latency;

  /// End-to-end latency percentile (interpolated) for `p` in [0, 1] — the
  /// one-call answer to "what is this engine's p50/p99/p999 right now",
  /// used by the stats frames the networked front-end serves and by the
  /// load generator's report.
  [[nodiscard]] double latency_percentile(double p) const {
    return latency.total.percentile_interpolated_ms(p);
  }

  /// Prometheus-style exposition text of every counter and histogram.
  [[nodiscard]] std::string text_snapshot() const;
};

}  // namespace earsonar::serve
