// Hot-swappable detector-model registry.
//
// A long-running serving engine outlives any single model: clinics retrain
// nightly, a bad model gets rolled back, an A/B candidate gets promoted. The
// registry holds the active DetectorModel behind a shared_mutex; readers
// (request workers) take a shared lock only long enough to copy the
// shared_ptr, so in-flight requests keep the model they started with while a
// swap installs the next one — no request ever observes a half-written model
// and no swap waits for inference to drain.
#pragma once

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>

#include "core/model_io.hpp"

namespace earsonar::serve {

class ModelRegistry {
 public:
  /// Installs a model; returns the new version number (1 for the first
  /// install, monotonically increasing).
  std::uint64_t install(core::DetectorModel model, std::string source);

  /// Loads a model file via core/model_io and installs it. Throws (and keeps
  /// the current model) when the file is missing or malformed — a bad reload
  /// never takes down serving.
  std::uint64_t load_file(const std::string& path);

  /// The active model, or nullptr before the first install. The returned
  /// pointer stays valid for the caller's lifetime regardless of later swaps.
  [[nodiscard]] std::shared_ptr<const core::DetectorModel> current() const;

  [[nodiscard]] std::uint64_t version() const;
  [[nodiscard]] std::string source() const;

 private:
  mutable std::shared_mutex mutex_;
  std::shared_ptr<const core::DetectorModel> model_;
  std::uint64_t version_ = 0;
  std::string source_;
};

}  // namespace earsonar::serve
