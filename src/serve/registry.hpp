// Hot-swappable detector-model registry.
//
// A long-running serving engine outlives any single model: clinics retrain
// nightly, a bad model gets rolled back, an A/B candidate gets promoted. The
// registry holds the active DetectorModel behind a shared_mutex; readers
// (request workers) take a shared lock only long enough to copy the
// shared_ptr, so in-flight requests keep the model they started with while a
// swap installs the next one — no request ever observes a half-written model
// and no swap waits for inference to drain.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <shared_mutex>
#include <string>

#include "common/rng.hpp"
#include "core/model_io.hpp"

namespace earsonar::serve {

class ModelRegistry {
 public:
  /// Installs a model; returns the new version number (1 for the first
  /// install, monotonically increasing).
  std::uint64_t install(core::DetectorModel model, std::string source);

  /// Loads a model file via core/model_io and installs it. Throws (and keeps
  /// the current model) when the file is missing or malformed — a bad reload
  /// never takes down serving.
  std::uint64_t load_file(const std::string& path);

  /// The active model, or nullptr before the first install. The returned
  /// pointer stays valid for the caller's lifetime regardless of later swaps.
  [[nodiscard]] std::shared_ptr<const core::DetectorModel> current() const;

  [[nodiscard]] std::uint64_t version() const;
  [[nodiscard]] std::string source() const;

 private:
  mutable std::shared_mutex mutex_;
  std::shared_ptr<const core::DetectorModel> model_;
  std::uint64_t version_ = 0;
  std::string source_;
};

/// Self-healing model-file watcher for the serving loop (`--watch`).
///
/// The registry already guarantees a bad reload never evicts the current
/// model; the reloader adds *recovery*: when a rewrite of the watched file
/// fails to parse (retrain job crashed mid-write, truncated copy), it retries
/// with exponential backoff — serving the last good model throughout — until
/// a load succeeds, then resets the backoff. poll() is cheap (one stat) and
/// meant to be called from the serving loop's idle ticks; the overload taking
/// an explicit `now` makes backoff timing deterministic in tests.
struct ReloaderConfig {
  double initial_backoff_ms = 100.0;  ///< delay after the first failure
  double max_backoff_ms = 10000.0;    ///< backoff ceiling
  double multiplier = 2.0;            ///< growth per consecutive failure
  /// Fractional jitter on the *scheduled* retry time: each failure waits
  /// backoff × (1 ± jitter), drawn from a seeded stream so tests can replay
  /// the exact schedule. 0 (the default) keeps the classic deterministic
  /// ladder; current_backoff_ms() always reports the un-jittered base.
  /// Jitter desynchronizes a fleet of engines all watching the same
  /// rewritten model file, so they do not re-stat and re-parse in lockstep.
  double jitter = 0.0;
  std::uint64_t jitter_seed = 1;  ///< seed for the jitter stream
};

class ModelReloader {
 public:
  using Clock = std::chrono::steady_clock;
  using Config = ReloaderConfig;

  enum class Status {
    kUnchanged,        ///< file not modified (or still missing); nothing done
    kReloaded,         ///< new model parsed and installed
    kBackingOff,       ///< a retry is pending but its backoff has not elapsed
    kFailedWillRetry,  ///< a load attempt failed; retry scheduled
  };

  /// Watches `path` for `registry`. The file's current mtime (if it exists)
  /// is taken as the already-loaded baseline — construct the reloader right
  /// after the initial load. `retry_counter`, when given, is incremented on
  /// every failed load attempt (the engine's `model_reload_retries` metric).
  ModelReloader(ModelRegistry& registry, std::string path, Config config = {},
                std::atomic<std::uint64_t>* retry_counter = nullptr);

  Status poll() { return poll(Clock::now()); }
  Status poll(Clock::time_point now);

  [[nodiscard]] std::uint64_t retries() const { return retries_; }
  [[nodiscard]] std::uint64_t reloads() const { return reloads_; }
  /// The un-jittered backoff base (jitter applies only to the scheduled
  /// retry time, so this stays an exact geometric ladder for assertions).
  [[nodiscard]] double current_backoff_ms() const { return backoff_ms_; }
  /// The actual delay scheduled for the pending retry, jitter included
  /// (equals current_backoff_ms() when jitter is 0 or no retry is pending).
  [[nodiscard]] double scheduled_delay_ms() const { return scheduled_delay_ms_; }
  [[nodiscard]] const std::string& last_error() const { return last_error_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  Status attempt(Clock::time_point now);

  ModelRegistry& registry_;
  std::string path_;
  Config config_;
  std::atomic<std::uint64_t>* retry_counter_;
  std::filesystem::file_time_type last_mtime_{};
  bool have_mtime_ = false;
  bool retry_pending_ = false;
  Clock::time_point next_attempt_{};
  double backoff_ms_ = 0.0;
  double scheduled_delay_ms_ = 0.0;
  Rng jitter_rng_;
  std::uint64_t retries_ = 0;
  std::uint64_t reloads_ = 0;
  std::string last_error_;
};

}  // namespace earsonar::serve
