// Streaming ingestion: chunk-at-a-time analysis sessions.
//
// Every batch entry point needs the complete recording in memory; a deployed
// screener receives audio as a stream of small chunks from the earbud. A
// StreamingSession accepts arbitrary-size chunks and runs the pipeline's
// front half incrementally as they arrive:
//
//   * band-pass filtering is stateful (`dsp::BiquadCascade` carried across
//     chunks) — bit-identical to filtering the concatenated signal, so the
//     session stores only *filtered* samples;
//   * a `core::StreamingEventDetector` scans the filtered stream causally and
//     finalizes chirp events with bounded latency;
//   * each finalized event is onset-aligned and parity-segmented immediately,
//     so per-chirp echoes (and, on demand, features over the echoes so far)
//     are available while audio is still arriving — `partial_analysis()`.
//
// finish() then produces the *authoritative* result by re-running the exact
// whole-signal pass (`EarSonar::analyze_filtered`) over the buffered filtered
// samples. Because causal filtering commutes with chunking, finish() is
// bit-identical — same features, same diagnosis — to `EarSonar::analyze` on
// the whole recording with the same (causal) configuration, at every chunk
// size. The incremental results are provisional: the whole-signal event
// detector gates against recording-global statistics that only exist at
// stream end (see StreamingEventDetector docs).
//
// The sample store is bounded. When a chunk would overflow it, the session
// either rejects the chunk (kReject — the backpressure signal a serving
// engine propagates to the device) or drops the oldest samples (kEvictOldest
// — continuous-monitoring mode, where finish() degrades to a best-effort
// analysis of the retained tail and truncated() reports the loss).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/event_detect.hpp"
#include "core/pipeline.hpp"
#include "core/segment.hpp"
#include "dsp/biquad.hpp"
#include "pipeline/batch.hpp"

namespace earsonar::serve {

struct StreamingConfig {
  core::PipelineConfig pipeline;  ///< must have preprocess.zero_phase = false
  /// Bound on buffered (filtered) samples: 20 s at the probe rate by default.
  std::size_t max_buffered_samples = 20UL * 48000UL;
  /// What to do with a chunk that would overflow the buffer.
  enum class OverflowPolicy {
    kReject,       ///< refuse the chunk; feed() returns kRejected
    kEvictOldest,  ///< drop oldest samples; finish() analyzes the tail only
  };
  OverflowPolicy overflow = OverflowPolicy::kReject;

  /// Skip the incremental (causal) event detector during feed(). The detector
  /// only feeds provisional results — partial_analysis() and the
  /// provisional_* accessors — which stay empty; finish()/finish_many() are
  /// bit-identical either way because the authoritative pass re-detects
  /// events from the buffered filtered waveform. A batching engine sets this
  /// for sessions it owns end-to-end (backlogged whole uploads, where nothing
  /// reads provisional state between feed and finish) to keep the shared
  /// ingest pass from paying a per-lane serial detector scan.
  bool defer_event_detection = false;

  void validate() const;
};

enum class FeedStatus { kAccepted, kRejected };

class StreamingSession {
 public:
  explicit StreamingSession(StreamingConfig config = {});

  /// Ingests one chunk at the pipeline sample rate (any size, including
  /// empty). Returns kRejected — with no state change — when the buffer is
  /// full under OverflowPolicy::kReject.
  FeedStatus feed(std::span<const double> chunk);

  /// feed() for one chunk per session, sharing band-pass filter passes:
  /// sessions with an identical filter design and equal chunk length are
  /// filtered together through one interleaved dsp::MultiBiquadCascade pass
  /// (N streams per SIMD sweep) instead of N sequential cascades; the rest
  /// fall back to individual processing. Per-session results — filter state,
  /// buffered samples, detected events, rejection status, fault injection —
  /// are bit-identical to calling sessions[i]->feed(chunks[i]) in order.
  /// Sessions must be distinct; a session may appear at most once per call.
  static std::vector<FeedStatus> feed_many(
      std::span<StreamingSession* const> sessions,
      std::span<const std::span<const double>> chunks);

  /// Exact finalization: the same events / echoes / spectrum / features /
  /// diagnosis-input the batch pipeline computes for everything fed (see the
  /// file comment for the evict-mode caveat). Ends the session. The result's
  /// `quality` is the batch pipeline's degradation report, with stream-level
  /// truncation folded in; `cancel` aborts between pipeline stages with
  /// CancelledError.
  core::EchoAnalysis finish(const CancelToken& cancel = {});

  /// finish() for many sessions in one batched pass: per-session event flush
  /// and waveform handoff run in submission order, then a
  /// pipeline::BatchExecutor walks the analysis stages with the echo-PSD
  /// stage batched across sessions (cross-request x4 lanes). Outcome [i] —
  /// analysis or captured error — is bit-identical to what
  /// sessions[i]->finish(cancels[i]) would have returned or thrown. Sessions
  /// must be distinct and built from one pipeline config (a serving engine
  /// constructs every session from its own); `graph` optionally receives
  /// per-stage occupancy and `info` reports how the pass batched.
  static std::vector<pipeline::BatchOutcome> finish_many(
      std::span<StreamingSession* const> sessions,
      std::span<const CancelToken> cancels,
      pipeline::StageGraph* graph = nullptr,
      pipeline::BatchRunInfo* info = nullptr);

  /// Provisional snapshot from the incremental path: events and echoes
  /// finalized so far, plus the feature vector over those echoes (computed
  /// on demand; empty until an echo has been segmented) and the session's
  /// incremental `quality` report. Unlike finish(), this does not apply
  /// whole-recording consensus re-anchoring.
  [[nodiscard]] core::EchoAnalysis partial_analysis() const;

  [[nodiscard]] std::size_t samples_fed() const { return samples_fed_; }
  [[nodiscard]] std::size_t samples_buffered() const { return filtered_.size(); }
  [[nodiscard]] std::size_t samples_dropped() const { return base_; }
  [[nodiscard]] std::size_t rejected_chunks() const { return rejected_chunks_; }
  [[nodiscard]] bool truncated() const { return base_ > 0; }
  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] std::size_t provisional_event_count() const { return events_.size(); }
  [[nodiscard]] const std::vector<core::EchoSegment>& provisional_echoes() const {
    return echoes_;
  }
  [[nodiscard]] const StreamingConfig& config() const { return config_; }

 private:
  void ingest_event(const core::Event& event);
  /// kReject-policy capacity gate; bumps rejected_chunks_ when it trips.
  bool reject_would_overflow(std::size_t incoming);
  /// Post-filter half of feed(): buffer the filtered chunk, apply eviction,
  /// scan for events. `fed` is the raw chunk length for samples_fed_.
  void ingest_filtered(std::span<const double> filtered, std::size_t fed);

  StreamingConfig config_;
  core::EarSonar pipeline_;  ///< finish() runs its analyze_filtered
  dsp::BiquadCascade filter_;
  core::StreamingEventDetector detector_;
  core::ParityEchoSegmenter segmenter_;
  core::FeatureExtractor extractor_;

  std::vector<double> filtered_;  ///< filtered_[i] = absolute sample base_ + i
  std::size_t base_ = 0;
  std::size_t samples_fed_ = 0;
  std::size_t rejected_chunks_ = 0;
  std::vector<core::Event> events_;       ///< provisional, absolute indices
  std::vector<core::EchoSegment> echoes_; ///< provisional, absolute indices
  core::AnalysisQuality quality_;         ///< incremental-path degradation report
  bool finished_ = false;
};

}  // namespace earsonar::serve
