// Workload types the serving substrate multiplexes.
//
// The engine carries more than one kind of screening on the same queue,
// workers, and metrics plane (ROADMAP item 4): the EarSonar echo pipeline
// (chunked 48 kHz audio through a StreamingSession) and wideband absorbance
// screening (a 226 Hz-8 kHz absorbance curve classified by the ml/ stack).
// Every ServeRequest carries its type; the tag rides the wire in Hello
// frames, keys the per-type metrics, and partitions cross-request batches —
// a pipeline batch NEVER mixes workload types (docs/workloads.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace earsonar::serve {

enum class WorkloadType : std::uint8_t {
  kEarSonar = 0,    ///< chunked audio through the echo pipeline
  kAbsorbance = 1,  ///< wideband absorbance curve classification
};

inline constexpr std::size_t kWorkloadTypeCount = 2;

/// Stable index (0..1) for metric arrays and wire encoding.
std::size_t workload_index(WorkloadType type);

/// Inverse of workload_index; throws when index is out of range.
WorkloadType workload_from_index(std::size_t index);

/// Metric-label spelling: "earsonar" / "absorbance".
std::string to_string(WorkloadType type);

/// Parses a to_string label (case-insensitive); throws on junk.
WorkloadType workload_from_string(const std::string& label);

}  // namespace earsonar::serve
