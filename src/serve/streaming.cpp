#include "serve/streaming.hpp"

#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "core/preprocess.hpp"
#include "dsp/multibiquad.hpp"
#include "obs/trace.hpp"

namespace earsonar::serve {

void StreamingConfig::validate() const {
  require(!pipeline.preprocess.zero_phase,
          "StreamingConfig: zero-phase (filtfilt) preprocessing has no "
          "streaming form; set pipeline.preprocess.zero_phase = false");
  require(max_buffered_samples >= 1024,
          "StreamingConfig: max_buffered_samples must be >= 1024");
}

StreamingSession::StreamingSession(StreamingConfig config)
    : config_(std::move(config)),
      pipeline_(config_.pipeline),
      filter_(core::Preprocessor(config_.pipeline.preprocess)
                  .streaming_filter(config_.pipeline.chirp.sample_rate)),
      detector_(config_.pipeline.events),
      segmenter_(config_.pipeline.segmenter),
      extractor_(config_.pipeline.features) {
  config_.validate();
  extractor_.set_reference(config_.pipeline.chirp);
  filtered_.reserve(std::min<std::size_t>(config_.max_buffered_samples, 1 << 20));
}

bool StreamingSession::reject_would_overflow(std::size_t incoming) {
  if (config_.overflow == StreamingConfig::OverflowPolicy::kReject &&
      filtered_.size() + incoming > config_.max_buffered_samples) {
    // Reject *before* touching the filter, so the accepted stream stays
    // contiguous and a later finish() is still exact for everything accepted.
    ++rejected_chunks_;
    return true;
  }
  return false;
}

void StreamingSession::ingest_filtered(std::span<const double> filtered,
                                       std::size_t fed) {
  samples_fed_ += fed;
  filtered_.insert(filtered_.end(), filtered.begin(), filtered.end());
  if (filtered_.size() > config_.max_buffered_samples) {
    // kEvictOldest: the detector still sees every sample (its state is O(1));
    // only the stored prefix is lost, taking finish()'s exactness with it.
    const std::size_t drop = filtered_.size() - config_.max_buffered_samples;
    filtered_.erase(filtered_.begin(),
                    filtered_.begin() + static_cast<std::ptrdiff_t>(drop));
    base_ += drop;
  }
  if (config_.defer_event_detection) return;
  for (const core::Event& event : detector_.push(filtered)) ingest_event(event);
}

FeedStatus StreamingSession::feed(std::span<const double> chunk) {
  require(!finished_, "StreamingSession: feed after finish");
  if (chunk.empty()) return FeedStatus::kAccepted;
  if (fault::point("serve.stream.feed")) fail("injected fault: serve.stream.feed");
  obs::Span feed_span("stream_feed", "stream");
  feed_span.set_arg("samples", static_cast<std::int64_t>(chunk.size()));

  if (reject_would_overflow(chunk.size())) return FeedStatus::kRejected;
  const std::vector<double> out = filter_.process(chunk);
  ingest_filtered(out, chunk.size());
  return FeedStatus::kAccepted;
}

std::vector<FeedStatus> StreamingSession::feed_many(
    std::span<StreamingSession* const> sessions,
    std::span<const std::span<const double>> chunks) {
  require(sessions.size() == chunks.size(),
          "StreamingSession::feed_many: one chunk per session required");
  std::vector<FeedStatus> status(sessions.size(), FeedStatus::kAccepted);
  if (sessions.empty()) return status;
  obs::Span many_span("stream_feed_many", "stream");
  many_span.set_arg("sessions", static_cast<std::int64_t>(sessions.size()));

  // Phase 1 — per-session admission, in order, with feed()'s exact gate
  // semantics (finish guard, empty fast-path, fault point, capacity check).
  std::vector<std::size_t> ready;
  ready.reserve(sessions.size());
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    StreamingSession* s = sessions[i];
    require(s != nullptr, "StreamingSession::feed_many: null session");
    require(!s->finished_, "StreamingSession: feed after finish");
    if (chunks[i].empty()) continue;
    if (fault::point("serve.stream.feed")) fail("injected fault: serve.stream.feed");
    if (s->reject_would_overflow(chunks[i].size())) {
      status[i] = FeedStatus::kRejected;
      continue;
    }
    ready.push_back(i);
  }

  // Phase 2 — group admitted sessions by identical filter design and equal
  // chunk length; each group runs one interleaved multi-channel filter pass.
  // Per-lane arithmetic matches BiquadCascade::process exactly, so every
  // session's stream is bit-identical to the sequential path.
  const auto same_design = [](const dsp::BiquadCascade& a, const dsp::BiquadCascade& b) {
    if (a.section_count() != b.section_count()) return false;
    for (std::size_t s = 0; s < a.section_count(); ++s) {
      const dsp::Biquad &x = a.sections()[s], &y = b.sections()[s];
      if (x.b0 != y.b0 || x.b1 != y.b1 || x.b2 != y.b2 || x.a1 != y.a1 ||
          x.a2 != y.a2)
        return false;
    }
    return true;
  };
  std::vector<bool> grouped(ready.size(), false);
  for (std::size_t a = 0; a < ready.size(); ++a) {
    if (grouped[a]) continue;
    std::vector<std::size_t> group{ready[a]};
    for (std::size_t b = a + 1; b < ready.size(); ++b) {
      if (grouped[b]) continue;
      if (chunks[ready[b]].size() != chunks[ready[a]].size()) continue;
      if (!same_design(sessions[ready[b]]->filter_, sessions[ready[a]]->filter_))
        continue;
      grouped[b] = true;
      group.push_back(ready[b]);
    }
    grouped[a] = true;

    if (group.size() == 1) {
      StreamingSession* s = sessions[group[0]];
      obs::Span feed_span("stream_feed", "stream");
      feed_span.set_arg("samples", static_cast<std::int64_t>(chunks[group[0]].size()));
      s->ingest_filtered(s->filter_.process(chunks[group[0]]), chunks[group[0]].size());
      continue;
    }

    const std::size_t n = chunks[group[0]].size();
    dsp::MultiBiquadCascade multi(sessions[group[0]]->filter_.sections(),
                                  group.size());
    std::vector<std::vector<double>> outs(group.size(), std::vector<double>(n));
    std::vector<std::span<const double>> ins(group.size());
    std::vector<std::span<double>> out_spans(group.size());
    for (std::size_t lane = 0; lane < group.size(); ++lane) {
      multi.set_channel_state(lane, sessions[group[lane]]->filter_.state());
      ins[lane] = chunks[group[lane]];
      out_spans[lane] = outs[lane];
    }
    multi.process(ins, out_spans);
    for (std::size_t lane = 0; lane < group.size(); ++lane) {
      StreamingSession* s = sessions[group[lane]];
      std::vector<dsp::BiquadCascade::State> state(s->filter_.section_count());
      multi.get_channel_state(lane, state);
      s->filter_.set_state(std::move(state));
      obs::Span feed_span("stream_feed", "stream");
      feed_span.set_arg("samples", static_cast<std::int64_t>(n));
      s->ingest_filtered(outs[lane], n);
    }
  }
  return status;
}

void StreamingSession::ingest_event(const core::Event& event) {
  // Absolute indices; an event whose samples were already evicted (possible
  // only with a capacity close to one event length) cannot be segmented.
  if (event.start < base_ || event.end > base_ + filtered_.size()) return;
  // Mirror the batch path per chirp — including its per-chirp error
  // isolation: a chirp whose alignment or segmentation throws is recorded in
  // the session's quality report, and the stream keeps flowing.
  const std::size_t chirp = events_.size();
  try {
    core::Event aligned{event.start - base_, event.end - base_};
    aligned.start = core::aligned_event_start(filtered_, aligned);
    core::Event absolute{aligned.start + base_, event.end};
    events_.push_back(absolute);
    if (std::optional<core::EchoSegment> echo =
            segmenter_.segment(filtered_, absolute, base_))
      echoes_.push_back(*echo);
  } catch (const std::exception& e) {
    quality_.drops.push_back({chirp, "segment", e.what()});
    quality_.degraded = true;
  }
}

core::EchoAnalysis StreamingSession::finish(const CancelToken& cancel) {
  require(!finished_, "StreamingSession: finish twice");
  require(samples_fed_ > 0, "StreamingSession: finish with no audio fed");
  obs::Span finish_span("stream_finish", "stream");
  finish_span.set_arg("samples", static_cast<std::int64_t>(samples_fed_));
  finished_ = true;
  if (!config_.defer_event_detection)
    for (const core::Event& event : detector_.flush()) ingest_event(event);
  audio::Waveform wave(std::move(filtered_), config_.pipeline.chirp.sample_rate);
  filtered_.clear();
  core::EchoAnalysis analysis = pipeline_.analyze_filtered(wave, cancel);
  if (truncated()) {
    // Evicted samples mean the authoritative pass only saw the retained
    // tail: the result is valid but partial — surface that as degradation.
    std::ostringstream os;
    os << "stream evicted " << base_ << " of " << samples_fed_ << " samples";
    analysis.quality.drops.push_back({core::ChirpDrop::kWholeStage, "stream", os.str()});
    analysis.quality.chirps_dropped = analysis.quality.drops.size();
    analysis.quality.degraded = true;
  }
  return analysis;
}

std::vector<pipeline::BatchOutcome> StreamingSession::finish_many(
    std::span<StreamingSession* const> sessions,
    std::span<const CancelToken> cancels, pipeline::StageGraph* graph,
    pipeline::BatchRunInfo* info) {
  require(sessions.size() == cancels.size(),
          "StreamingSession::finish_many: one cancel token per session");
  const std::size_t n = sessions.size();
  std::vector<pipeline::BatchOutcome> out(n);
  std::vector<audio::Waveform> waves(n);
  std::vector<pipeline::BatchItem> items;
  std::vector<std::size_t> idx;  // items[j] belongs to sessions[idx[j]]
  items.reserve(n);
  idx.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    StreamingSession* s = sessions[i];
    // Per-session capture: one session's finish-guard failure must not take
    // down its lane-mates.
    try {
      require(s != nullptr, "StreamingSession::finish_many: null session");
      require(!s->finished_, "StreamingSession: finish twice");
      require(s->samples_fed_ > 0, "StreamingSession: finish with no audio fed");
      obs::Span finish_span("stream_finish", "stream");
      finish_span.set_arg("samples", static_cast<std::int64_t>(s->samples_fed_));
      s->finished_ = true;
      if (!s->config_.defer_event_detection)
        for (const core::Event& event : s->detector_.flush()) s->ingest_event(event);
      waves[i] = audio::Waveform(std::move(s->filtered_),
                                 s->config_.pipeline.chirp.sample_rate);
      s->filtered_.clear();
      items.push_back({&waves[i], cancels[i]});
      idx.push_back(i);
    } catch (...) {
      out[i].error = std::current_exception();
    }
  }
  if (items.empty()) return out;
  const pipeline::BatchExecutor exec(graph);
  std::vector<pipeline::BatchOutcome> results =
      exec.analyze_filtered(sessions[idx.front()]->pipeline_, items, info);
  for (std::size_t j = 0; j < idx.size(); ++j) {
    const std::size_t i = idx[j];
    out[i] = std::move(results[j]);
    if (out[i].ok() && sessions[i]->truncated()) {
      // Same truncation fold as finish().
      std::ostringstream os;
      os << "stream evicted " << sessions[i]->base_ << " of "
         << sessions[i]->samples_fed_ << " samples";
      out[i].analysis.quality.drops.push_back(
          {core::ChirpDrop::kWholeStage, "stream", os.str()});
      out[i].analysis.quality.chirps_dropped = out[i].analysis.quality.drops.size();
      out[i].analysis.quality.degraded = true;
    }
  }
  return out;
}

core::EchoAnalysis StreamingSession::partial_analysis() const {
  obs::Span partial_span("stream_partial", "stream");
  core::EchoAnalysis analysis;
  analysis.events = events_;
  analysis.echoes = echoes_;
  analysis.quality = quality_;
  analysis.quality.chirps_total = events_.size();
  analysis.quality.chirps_used = echoes_.size();
  analysis.quality.chirps_dropped = quality_.drops.size();
  analysis.quality.min_usable = config_.pipeline.min_usable_chirps;
  analysis.quality.degraded = quality_.degraded || truncated();
  if (echoes_.empty() || filtered_.empty()) return analysis;

  // Shift echo anchors into the retained window; echoes whose event has been
  // evicted can no longer be re-windowed and drop out of the snapshot.
  std::vector<core::EchoSegment> usable;
  usable.reserve(echoes_.size());
  for (core::EchoSegment echo : echoes_) {
    if (echo.event_start < base_) continue;
    echo.event_start -= base_;
    echo.peak_index -= base_;
    echo.direct_peak_index -= base_;
    usable.push_back(echo);
  }
  if (usable.empty()) return analysis;
  const audio::Waveform window(filtered_, config_.pipeline.chirp.sample_rate);
  core::FeatureExtractor::Result extracted = extractor_.extract_full(window, usable);
  analysis.mean_spectrum = std::move(extracted.mean_spectrum);
  analysis.features = std::move(extracted.features);
  return analysis;
}

}  // namespace earsonar::serve
