#include "serve/streaming.hpp"

#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "core/preprocess.hpp"
#include "obs/trace.hpp"

namespace earsonar::serve {

void StreamingConfig::validate() const {
  require(!pipeline.preprocess.zero_phase,
          "StreamingConfig: zero-phase (filtfilt) preprocessing has no "
          "streaming form; set pipeline.preprocess.zero_phase = false");
  require(max_buffered_samples >= 1024,
          "StreamingConfig: max_buffered_samples must be >= 1024");
}

StreamingSession::StreamingSession(StreamingConfig config)
    : config_(std::move(config)),
      pipeline_(config_.pipeline),
      filter_(core::Preprocessor(config_.pipeline.preprocess)
                  .streaming_filter(config_.pipeline.chirp.sample_rate)),
      detector_(config_.pipeline.events),
      segmenter_(config_.pipeline.segmenter),
      extractor_(config_.pipeline.features) {
  config_.validate();
  extractor_.set_reference(config_.pipeline.chirp);
  filtered_.reserve(std::min<std::size_t>(config_.max_buffered_samples, 1 << 20));
}

FeedStatus StreamingSession::feed(std::span<const double> chunk) {
  require(!finished_, "StreamingSession: feed after finish");
  if (chunk.empty()) return FeedStatus::kAccepted;
  if (fault::point("serve.stream.feed")) fail("injected fault: serve.stream.feed");
  obs::Span feed_span("stream_feed", "stream");
  feed_span.set_arg("samples", static_cast<std::int64_t>(chunk.size()));

  if (config_.overflow == StreamingConfig::OverflowPolicy::kReject &&
      filtered_.size() + chunk.size() > config_.max_buffered_samples) {
    // Reject *before* touching the filter, so the accepted stream stays
    // contiguous and a later finish() is still exact for everything accepted.
    ++rejected_chunks_;
    return FeedStatus::kRejected;
  }

  const std::vector<double> out = filter_.process(chunk);
  samples_fed_ += chunk.size();
  filtered_.insert(filtered_.end(), out.begin(), out.end());
  if (filtered_.size() > config_.max_buffered_samples) {
    // kEvictOldest: the detector still sees every sample (its state is O(1));
    // only the stored prefix is lost, taking finish()'s exactness with it.
    const std::size_t drop = filtered_.size() - config_.max_buffered_samples;
    filtered_.erase(filtered_.begin(),
                    filtered_.begin() + static_cast<std::ptrdiff_t>(drop));
    base_ += drop;
  }
  for (const core::Event& event : detector_.push(out)) ingest_event(event);
  return FeedStatus::kAccepted;
}

void StreamingSession::ingest_event(const core::Event& event) {
  // Absolute indices; an event whose samples were already evicted (possible
  // only with a capacity close to one event length) cannot be segmented.
  if (event.start < base_ || event.end > base_ + filtered_.size()) return;
  // Mirror the batch path per chirp — including its per-chirp error
  // isolation: a chirp whose alignment or segmentation throws is recorded in
  // the session's quality report, and the stream keeps flowing.
  const std::size_t chirp = events_.size();
  try {
    core::Event aligned{event.start - base_, event.end - base_};
    aligned.start = core::aligned_event_start(filtered_, aligned);
    core::Event absolute{aligned.start + base_, event.end};
    events_.push_back(absolute);
    if (std::optional<core::EchoSegment> echo =
            segmenter_.segment(filtered_, absolute, base_))
      echoes_.push_back(*echo);
  } catch (const std::exception& e) {
    quality_.drops.push_back({chirp, "segment", e.what()});
    quality_.degraded = true;
  }
}

core::EchoAnalysis StreamingSession::finish(const CancelToken& cancel) {
  require(!finished_, "StreamingSession: finish twice");
  require(samples_fed_ > 0, "StreamingSession: finish with no audio fed");
  obs::Span finish_span("stream_finish", "stream");
  finish_span.set_arg("samples", static_cast<std::int64_t>(samples_fed_));
  finished_ = true;
  for (const core::Event& event : detector_.flush()) ingest_event(event);
  audio::Waveform wave(std::move(filtered_), config_.pipeline.chirp.sample_rate);
  filtered_.clear();
  core::EchoAnalysis analysis = pipeline_.analyze_filtered(wave, cancel);
  if (truncated()) {
    // Evicted samples mean the authoritative pass only saw the retained
    // tail: the result is valid but partial — surface that as degradation.
    std::ostringstream os;
    os << "stream evicted " << base_ << " of " << samples_fed_ << " samples";
    analysis.quality.drops.push_back({core::ChirpDrop::kWholeStage, "stream", os.str()});
    analysis.quality.chirps_dropped = analysis.quality.drops.size();
    analysis.quality.degraded = true;
  }
  return analysis;
}

core::EchoAnalysis StreamingSession::partial_analysis() const {
  obs::Span partial_span("stream_partial", "stream");
  core::EchoAnalysis analysis;
  analysis.events = events_;
  analysis.echoes = echoes_;
  analysis.quality = quality_;
  analysis.quality.chirps_total = events_.size();
  analysis.quality.chirps_used = echoes_.size();
  analysis.quality.chirps_dropped = quality_.drops.size();
  analysis.quality.min_usable = config_.pipeline.min_usable_chirps;
  analysis.quality.degraded = quality_.degraded || truncated();
  if (echoes_.empty() || filtered_.empty()) return analysis;

  // Shift echo anchors into the retained window; echoes whose event has been
  // evicted can no longer be re-windowed and drop out of the snapshot.
  std::vector<core::EchoSegment> usable;
  usable.reserve(echoes_.size());
  for (core::EchoSegment echo : echoes_) {
    if (echo.event_start < base_) continue;
    echo.event_start -= base_;
    echo.peak_index -= base_;
    echo.direct_peak_index -= base_;
    usable.push_back(echo);
  }
  if (usable.empty()) return analysis;
  const audio::Waveform window(filtered_, config_.pipeline.chirp.sample_rate);
  core::FeatureExtractor::Result extracted = extractor_.extract_full(window, usable);
  analysis.mean_spectrum = std::move(extracted.mean_spectrum);
  analysis.features = std::move(extracted.features);
  return analysis;
}

}  // namespace earsonar::serve
