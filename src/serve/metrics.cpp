#include "serve/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <sstream>

#include "common/fault.hpp"

namespace earsonar::serve {

namespace {

// Bucket b covers [2^(b-10), 2^(b-9)) milliseconds.
std::size_t bucket_of(double ms) {
  if (!(ms > 0.0)) return 0;
  const double b = std::floor(std::log2(ms)) + 10.0;
  if (b < 0.0) return 0;
  if (b >= static_cast<double>(LatencyHistogram::kBuckets))
    return LatencyHistogram::kBuckets - 1;
  return static_cast<std::size_t>(b);
}

double bucket_midpoint_ms(std::size_t bucket) {
  // Geometric midpoint of [2^(b-10), 2^(b-9)).
  return std::exp2(static_cast<double>(bucket) - 10.0) * std::numbers::sqrt2;
}

}  // namespace

void LatencyHistogram::record(double ms) {
  buckets_[bucket_of(ms)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  const double ns = ms * 1e6;
  sum_ns_.fetch_add(ns > 0.0 ? static_cast<std::uint64_t>(ns) : 0,
                    std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::count() const {
  return count_.load(std::memory_order_relaxed);
}

double LatencyHistogram::mean_ms() const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  return static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) / 1e6 /
         static_cast<double>(n);
}

double LatencyHistogram::percentile_ms(double quantile) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(quantile * static_cast<double>(n)));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen >= rank) return bucket_midpoint_ms(b);
  }
  return bucket_midpoint_ms(kBuckets - 1);
}

double LatencyHistogram::percentile_interpolated_ms(double quantile) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  if (quantile < 0.0) quantile = 0.0;
  if (quantile > 1.0) quantile = 1.0;
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(quantile * static_cast<double>(n)));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const std::uint64_t in_bucket = buckets_[b].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (seen + in_bucket >= rank) {
      // The rank falls in this bucket; place it linearly within the bucket's
      // [2^(b-10), 2^(b-9)) range by its position among the bucket's samples.
      const double lo = std::exp2(static_cast<double>(b) - 10.0);
      const double hi = lo * 2.0;
      const double position = rank > seen ? static_cast<double>(rank - seen) : 0.0;
      const double frac = position / static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::min(frac, 1.0);
    }
    seen += in_bucket;
  }
  return bucket_midpoint_ms(kBuckets - 1);
}

namespace {

void emit_counter(std::ostringstream& out, const char* name, std::uint64_t value) {
  out << "earsonar_serve_" << name << ' ' << value << '\n';
}

void emit_histogram(std::ostringstream& out, const char* stage,
                    const LatencyHistogram& h) {
  // p999 uses within-bucket interpolation: at log2 granularity the midpoint
  // estimate collapses p99 and p999 onto the same value whenever both ranks
  // land in one bucket, which is exactly the tail the stat exists to split.
  const char* kStats[] = {"mean", "p50", "p95", "p99", "p999"};
  const double values[] = {h.mean_ms(), h.percentile_ms(0.50), h.percentile_ms(0.95),
                           h.percentile_ms(0.99),
                           h.percentile_interpolated_ms(0.999)};
  out << "earsonar_serve_latency_count{stage=\"" << stage << "\"} " << h.count()
      << '\n';
  for (std::size_t i = 0; i < 5; ++i)
    out << "earsonar_serve_latency_ms{stage=\"" << stage << "\",stat=\"" << kStats[i]
        << "\"} " << values[i] << '\n';
}

}  // namespace

std::string ServeMetrics::text_snapshot() const {
  std::ostringstream out;
  emit_counter(out, "requests_accepted_total", accepted.load(std::memory_order_relaxed));
  emit_counter(out, "requests_rejected_total{reason=\"queue_full\"}",
               rejected_queue_full.load(std::memory_order_relaxed));
  emit_counter(out, "requests_rejected_total{reason=\"stopped\"}",
               rejected_stopped.load(std::memory_order_relaxed));
  emit_counter(out, "requests_completed_total", completed.load(std::memory_order_relaxed));
  emit_counter(out, "requests_failed_total", failed.load(std::memory_order_relaxed));
  emit_counter(out, "requests_no_echo_total", no_echo.load(std::memory_order_relaxed));
  emit_counter(out, "requests_deadline_exceeded_total",
               deadline_exceeded.load(std::memory_order_relaxed));
  emit_counter(out, "requests_degraded_total",
               degraded.load(std::memory_order_relaxed));
  emit_counter(out, "model_reload_retries_total",
               model_reload_retries.load(std::memory_order_relaxed));
  emit_counter(out, "faults_injected_total",
               fault::Registry::instance().injected_total());
  emit_counter(out, "chunks_fed_total", chunks_fed.load(std::memory_order_relaxed));
  emit_counter(out, "events_detected_total",
               events_detected.load(std::memory_order_relaxed));
  emit_counter(out, "echoes_segmented_total",
               echoes_segmented.load(std::memory_order_relaxed));
  emit_counter(out, "inferences_total", inferences.load(std::memory_order_relaxed));
  emit_counter(out, "batches_total", batches.load(std::memory_order_relaxed));
  emit_counter(out, "batched_requests_total",
               batched_requests.load(std::memory_order_relaxed));
  emit_counter(out, "batch_fallbacks_total",
               batch_fallbacks.load(std::memory_order_relaxed));
  for (std::size_t w = 0; w < kWorkloadTypeCount; ++w) {
    const std::string label = to_string(workload_from_index(w));
    const WorkloadCounters& c = workload[w];
    const char* kOutcomes[] = {"accepted", "completed", "failed",
                               "deadline_exceeded"};
    const std::uint64_t values[] = {
        c.accepted.load(std::memory_order_relaxed),
        c.completed.load(std::memory_order_relaxed),
        c.failed.load(std::memory_order_relaxed),
        c.deadline_exceeded.load(std::memory_order_relaxed)};
    for (std::size_t i = 0; i < 4; ++i)
      out << "earsonar_serve_workload_requests_total{workload=\"" << label
          << "\",outcome=\"" << kOutcomes[i] << "\"} " << values[i] << '\n';
    out << "earsonar_serve_workload_batches_total{workload=\"" << label
        << "\"} " << c.batches.load(std::memory_order_relaxed) << '\n';
    out << "earsonar_serve_workload_batched_requests_total{workload=\"" << label
        << "\"} " << c.batched_requests.load(std::memory_order_relaxed) << '\n';
  }
  out << "earsonar_serve_queue_depth "
      << queue_depth.load(std::memory_order_relaxed) << '\n';
  emit_histogram(out, "bandpass", latency.bandpass);
  emit_histogram(out, "event_detect", latency.event_detect);
  emit_histogram(out, "segment", latency.segment);
  emit_histogram(out, "feature", latency.feature);
  emit_histogram(out, "inference", latency.inference);
  emit_histogram(out, "queue_wait", latency.queue_wait);
  emit_histogram(out, "total", latency.total);
  return out.str();
}

}  // namespace earsonar::serve
