#include "serve/workload.hpp"

#include <algorithm>
#include <cctype>

#include "common/error.hpp"

namespace earsonar::serve {

std::size_t workload_index(WorkloadType type) {
  return static_cast<std::size_t>(type);
}

WorkloadType workload_from_index(std::size_t index) {
  require(index < kWorkloadTypeCount, "workload_from_index: index out of range");
  return static_cast<WorkloadType>(index);
}

std::string to_string(WorkloadType type) {
  switch (type) {
    case WorkloadType::kEarSonar: return "earsonar";
    case WorkloadType::kAbsorbance: return "absorbance";
  }
  fail("to_string: unknown WorkloadType");
}

WorkloadType workload_from_string(const std::string& label) {
  std::string lower = label;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "earsonar") return WorkloadType::kEarSonar;
  if (lower == "absorbance") return WorkloadType::kAbsorbance;
  fail("workload_from_string: unknown workload '" + label + "'");
}

}  // namespace earsonar::serve
