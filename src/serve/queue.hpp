// Bounded multi-producer/multi-consumer request queue with explicit
// backpressure: try_push on a full queue returns false immediately (the
// engine converts that into a rejected request with a reason) instead of
// blocking the producer or silently dropping work. close() wakes every
// blocked consumer; items already queued are still drained, so a graceful
// engine stop never loses accepted requests.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <utility>

#include "common/fault.hpp"
#include "serve/ring_buffer.hpp"

namespace earsonar::serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : items_(capacity) {}

  /// False when the queue is full or closed; the caller keeps the rejection.
  bool try_push(T item) {
    // Chaos hook: a fired fault looks exactly like a full queue, exercising
    // the caller's rejection path without actually filling the queue.
    if (fault::point("serve.queue.push")) return false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || !items_.push(std::move(item))) return false;
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks until an item arrives or the queue is closed *and* drained.
  /// Returns false only in the latter case.
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    out = items_.pop();
    return true;
  }

  /// pop() that gives up at `deadline`: returns false when no item arrived
  /// by then (or the queue closed and drained). A batching worker uses this
  /// to linger briefly for stragglers after its first pop without holding
  /// the batch open indefinitely.
  bool try_pop_until(T& out, std::chrono::steady_clock::time_point deadline) {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait_until(lock, deadline, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    out = items_.pop();
    return true;
  }

  /// Re-arms a closed queue (engine restart). Must not race concurrent
  /// producers/consumers; the engine calls it before leasing workers.
  void reopen() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = false;
  }

  /// Stops accepting new items and wakes all consumers.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }
  [[nodiscard]] std::size_t capacity() const { return items_.capacity(); }
  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  RingBuffer<T> items_;
  bool closed_ = false;
};

}  // namespace earsonar::serve
