// Seeded deterministic case generator for the differential oracle.
//
// Every oracle test draws its inputs from here: a fixed grid of transform
// sizes (1 through 8192, including primes so Bluestein's chirp-z path is
// exercised, and the powers of two the radix-2 path takes) crossed with a
// family of signal shapes chosen to hit DSP edge cases — DC and Nyquist
// tones, bin-exact and off-bin tones, constant and alternating-sign inputs,
// impulses, denormal-scale values, and seeded random noise. Everything is
// derived from an explicit seed through earsonar::Rng; no wall clock, no
// global RNG state, so a failing case reproduces bit-identically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace earsonar::check {

/// One generated test input.
struct SignalCase {
  std::string name;           ///< e.g. "n=97/off_bin_tone" — stable across runs
  std::vector<double> data;
};

/// The size grid: 1..8 densely, then selected composites, powers of two, and
/// primes (13, 17, 31, 61, 97, 127, 251, 509, 1021, 8191) up to `max_size`.
std::vector<std::size_t> oracle_sizes(std::size_t max_size);

/// The full case family for one size, derived from `seed`. Shapes that need
/// an even length (Nyquist tone) are skipped for odd sizes; single-sample
/// sizes reduce to the shapes that remain meaningful.
std::vector<SignalCase> cases_for_size(std::size_t size, std::uint64_t seed);

/// cases_for_size over the whole size grid up to `max_size`.
std::vector<SignalCase> standard_cases(std::uint64_t seed, std::size_t max_size);

}  // namespace earsonar::check
