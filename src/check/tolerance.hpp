// Tolerance policy for the differential-testing oracle (tests/oracle/).
//
// Every optimized numeric kernel in the library is paired with a deliberately
// naive reference implementation (src/check/reference.hpp). Each pair has one
// named entry in the policy table below stating exactly how far the optimized
// output may drift from the reference before the oracle calls it a bug.
//
// Acceptance rule for element i of a compared vector:
//
//   |got[i] - want[i]| <= abs + rel * max(|want[i]|, linf(want))
//
// The linf(want) term keeps near-zero elements of an otherwise large output
// (e.g. the stop-band bins of a transform) from demanding impossible relative
// accuracy — transform round-off scales with the norm of the whole output,
// not with each bin. Pairs documented as "bit-exact" use rel = abs = 0.
//
// The table is mirrored in docs/testing.md; scripts/check_docs.sh fails when
// a pair registered here is missing from the docs (and vice versa).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace earsonar::check {

/// How far an optimized result may drift from its reference.
struct Tolerance {
  double rel = 0.0;  ///< relative term, scaled by max(|want_i|, linf(want))
  double abs = 0.0;  ///< absolute floor
};

/// One optimized-vs-reference pair and its pinned tolerance.
struct PairPolicy {
  std::string name;       ///< stable id, e.g. "dsp.fft.forward"
  std::string optimized;  ///< the production entry point under test
  std::string reference;  ///< the naive oracle it is compared against
  Tolerance tol;
  std::string note;       ///< one-line rationale for the tolerance
};

/// The full pair catalog, in documentation order.
const std::vector<PairPolicy>& pair_policies();

/// Lookup by name; throws std::invalid_argument for an unknown pair.
const PairPolicy& pair_policy(std::string_view name);

/// Units-in-the-last-place distance between two finite doubles (large when
/// the signs differ; 0 when bit-identical). Exposed for tests and for pairs
/// whose policy is best expressed in ULPs.
std::uint64_t ulp_distance(double a, double b);

/// Worst element of a vector comparison under a tolerance.
struct CompareResult {
  bool ok = true;
  std::size_t index = 0;     ///< worst offending element
  double got = 0.0;
  double want = 0.0;
  double error = 0.0;        ///< |got - want| at that element
  double allowed = 0.0;      ///< the bound that element had to meet
};

/// Compares `got` against `want` element-wise under `tol` (sizes must match;
/// any non-finite element fails the comparison).
CompareResult compare_vectors(std::span<const double> got,
                              std::span<const double> want, const Tolerance& tol);

/// Scalar convenience wrapper around compare_vectors.
bool within_tolerance(double got, double want, const Tolerance& tol);

/// Human-readable one-line description of a failed comparison.
std::string describe_failure(std::string_view pair, const CompareResult& result);

}  // namespace earsonar::check
