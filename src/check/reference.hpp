// Deliberately naive reference implementations for the differential oracle.
//
// Each function here is the textbook form of an optimized kernel elsewhere in
// the library: O(n^2) DFT sums instead of the planned FFT, a full sort
// instead of nth_element, a per-sample direct-form-I recurrence instead of
// the transposed cascade, the literal MFCC formula chain instead of the
// planned extractor. They are written for obviousness, not speed, and share
// no code with the implementations they check — that independence is the
// point. tests/oracle/ drives each optimized/reference pair over the seeded
// case generator (src/check/cases.hpp) under the tolerance policy table
// (src/check/tolerance.hpp).
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

#include "dsp/biquad.hpp"
#include "dsp/mel.hpp"

namespace earsonar::check {

using Complex = std::complex<double>;

/// Textbook forward DFT: X[k] = sum_n x[n] e^{-2*pi*i*k*n/N}.
std::vector<Complex> dft_naive(std::span<const Complex> input);

/// Textbook inverse DFT (includes the 1/N normalization).
std::vector<Complex> idft_naive(std::span<const Complex> input);

/// dft_naive of a real signal, first N/2+1 bins (rfft's contract).
std::vector<Complex> rdft_naive(std::span<const double> input);

/// |X[k]|^2 / N over the non-negative-frequency bins (power_spectrum's
/// contract), via the naive real DFT.
std::vector<double> power_spectrum_naive(std::span<const double> input);

/// Literal DTFT magnitude |sum_n x[n] e^{-2*pi*i*f*n/fs}| at one frequency —
/// the reference for Goertzel at bin-exact *and* off-bin frequencies.
double dtft_magnitude_naive(std::span<const double> signal, double frequency_hz,
                            double sample_rate);

/// Direct O(NM) convolution, gather form (out[k] = sum_i a[i] b[k-i]).
std::vector<double> convolve_naive(std::span<const double> a, std::span<const double> b);

/// Direct full cross-correlation with dsp::cross_correlate's lag layout.
std::vector<double> cross_correlate_naive(std::span<const double> a,
                                          std::span<const double> b);

/// Literal orthonormal DCT-II.
std::vector<double> dct2_naive(std::span<const double> input);

/// Full-sort percentile with the same two-point linear interpolation contract
/// as earsonar::percentile.
double percentile_naive(std::span<const double> xs, double p);

/// Per-sample direct-form-I cascade: each section filters the whole signal
/// with the explicit difference equation before the next section runs.
std::vector<double> biquad_cascade_df1_naive(const std::vector<dsp::Biquad>& sections,
                                             std::span<const double> input);

/// Literal triangular mel filterbank weights (filter_count x fft_size/2+1),
/// including the documented nearest-bin fallback for filters narrower than
/// one bin spacing.
std::vector<std::vector<double>> mel_weights_naive(const dsp::MelFilterbankConfig& config);

/// Literal MFCC chain: zero-pad/truncate to fft_size, symmetric Hann window,
/// naive real DFT, |X|^2/N power, naive mel triangles, floored log, naive
/// DCT-II, truncate to coefficient_count. Mirrors MfccExtractor::compute.
std::vector<double> mfcc_naive(const dsp::MfccConfig& config, std::span<const double> frame);

/// Naive Welch PSD: per-segment Hann periodogram via the naive DFT, 50%
/// overlap, averaged — dsp::welch_psd's contract. `segment == signal.size()`
/// degenerates to the single-window periodogram.
std::vector<double> welch_psd_naive(std::span<const double> signal, double sample_rate,
                                    std::size_t segment);

}  // namespace earsonar::check
