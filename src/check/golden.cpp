#include "check/golden.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/pipeline.hpp"
#include "core/preprocess.hpp"
#include "ml/laplacian.hpp"
#include "sim/probe.hpp"
#include "sim/subject.hpp"

namespace earsonar::check {

namespace {

// Fixed generation parameters. Changing any of these is a fixture format
// change and requires scripts/regen_goldens.sh --force.
constexpr std::uint64_t kFactorySeed = 42;
constexpr std::uint64_t kRecordingSeed = 7;
constexpr std::size_t kChirpCount = 10;
constexpr std::size_t kFilteredHead = 2048;  ///< samples kept of the filtered chirp
constexpr std::size_t kCohortSubjects = 3;   ///< per effusion state
constexpr std::size_t kSelectedFeatures = 25;

audio::Waveform golden_recording(const sim::EarProbe& probe,
                                 const sim::SubjectFactory& factory,
                                 std::uint32_t subject, sim::EffusionState state,
                                 std::uint64_t stream) {
  Rng rng = Rng(kRecordingSeed).fork(stream);
  return probe.record_state(factory.make(subject), state, sim::reference_earphone(), {},
                            rng);
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::vector<GoldenVector> generate_goldens() {
  sim::SubjectFactory factory(kFactorySeed);
  sim::ProbeConfig pc;
  pc.chirp_count = kChirpCount;
  const sim::EarProbe probe(pc);
  const core::PipelineConfig cfg;  // the default batch pipeline
  const core::EarSonar pipeline(cfg);

  std::vector<GoldenVector> out;

  // 1 + 2 + 3: one fixed recording through the batch pipeline.
  const audio::Waveform recording =
      golden_recording(probe, factory, 0, sim::EffusionState::kMucoid, 0);
  const audio::Waveform filtered = core::Preprocessor(cfg.preprocess).process(recording);
  require(filtered.size() >= kFilteredHead, "generate_goldens: recording too short");
  out.push_back({"filtered_chirp", "golden.filtered_chirp",
                 {filtered.samples().begin(),
                  filtered.samples().begin() + static_cast<std::ptrdiff_t>(kFilteredHead)}});

  const core::EchoAnalysis analysis = pipeline.analyze(recording);
  require(analysis.usable(), "generate_goldens: golden recording produced no features");
  out.push_back({"echo_psd", "golden.echo_psd", analysis.mean_spectrum.psd});
  out.push_back({"feature_vector", "golden.features", analysis.features});

  // 4: Laplacian top-25 selection over a small balanced cohort.
  ml::Matrix features;
  std::uint64_t stream = 1;
  for (sim::EffusionState state : sim::all_effusion_states()) {
    for (std::uint32_t subject = 0; subject < kCohortSubjects; ++subject) {
      const audio::Waveform rec = golden_recording(probe, factory, subject, state, stream++);
      const core::EchoAnalysis a = pipeline.analyze(rec);
      require(a.usable(), "generate_goldens: cohort recording produced no features");
      features.push_back(a.features);
    }
  }
  const std::vector<double> scores = ml::laplacian_scores(features);
  const std::vector<std::size_t> selected =
      ml::select_best_features(scores, kSelectedFeatures);
  std::vector<double> selected_as_doubles(selected.begin(), selected.end());
  out.push_back({"laplacian_top25", "golden.laplacian_top25", std::move(selected_as_doubles)});

  return out;
}

std::string golden_filename(const GoldenVector& golden) { return golden.name + ".json"; }

std::string golden_to_json(const GoldenVector& golden) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"name\": \"" << golden.name << "\",\n";
  os << "  \"pair\": \"" << golden.pair << "\",\n";
  os << "  \"count\": " << golden.values.size() << ",\n";
  os << "  \"values\": [";
  for (std::size_t i = 0; i < golden.values.size(); ++i) {
    if (i % 4 == 0) os << "\n    ";
    os << format_double(golden.values[i]);
    if (i + 1 < golden.values.size()) os << ", ";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

namespace {

// Pulls the quoted value of `"key": "..."` out of the fixture text.
std::string parse_string_field(const std::string& json, const std::string& key,
                               const std::string& origin) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = json.find(needle);
  if (at == std::string::npos) fail("golden fixture " + origin + ": missing \"" + key + "\"");
  const std::size_t open = json.find('"', at + needle.size());
  const std::size_t close = open == std::string::npos ? std::string::npos
                                                      : json.find('"', open + 1);
  if (close == std::string::npos)
    fail("golden fixture " + origin + ": malformed \"" + key + "\"");
  return json.substr(open + 1, close - open - 1);
}

}  // namespace

GoldenVector golden_from_json(const std::string& json, const std::string& origin) {
  GoldenVector out;
  out.name = parse_string_field(json, "name", origin);
  out.pair = parse_string_field(json, "pair", origin);

  const std::size_t values_at = json.find("\"values\":");
  if (values_at == std::string::npos) fail("golden fixture " + origin + ": missing values");
  const std::size_t open = json.find('[', values_at);
  const std::size_t close = open == std::string::npos ? std::string::npos
                                                      : json.find(']', open);
  if (close == std::string::npos) fail("golden fixture " + origin + ": malformed values");

  const char* p = json.c_str() + open + 1;
  const char* end = json.c_str() + close;
  while (p < end) {
    char* next = nullptr;
    const double v = std::strtod(p, &next);
    if (next == p) {
      ++p;  // separator / whitespace
      continue;
    }
    out.values.push_back(v);
    p = next;
  }

  const std::size_t count_at = json.find("\"count\":");
  if (count_at != std::string::npos) {
    const std::size_t declared = std::strtoull(json.c_str() + count_at + 8, nullptr, 10);
    if (declared != out.values.size())
      fail("golden fixture " + origin + ": count mismatch (declared " +
           std::to_string(declared) + ", parsed " + std::to_string(out.values.size()) + ")");
  }
  return out;
}

GoldenVector load_golden(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("load_golden: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return golden_from_json(buffer.str(), path);
}

void save_golden(const std::string& path, const GoldenVector& golden) {
  std::ofstream out(path);
  if (!out) fail("save_golden: cannot open " + path);
  out << golden_to_json(golden);
  if (!out) fail("save_golden: write failed for " + path);
}

}  // namespace earsonar::check
