// Golden-vector corpus for pipeline-level outputs.
//
// The kernel-level oracle pairs (reference.hpp) prove each optimized kernel
// against its naive form; the golden corpus pins the *composition* — four
// checked-in JSON fixtures capture end-to-end pipeline outputs for one fixed
// simulated recording/cohort:
//
//   filtered_chirp   head of the band-pass-preprocessed recording
//   echo_psd         whole-recording mean eardrum-echo PSD (128 band bins)
//   feature_vector   the 105-dim feature vector
//   laplacian_top25  Laplacian-score top-25 feature selection over a cohort
//
// tests/oracle/oracle_golden_test.cpp recomputes all four and compares them
// under the golden.* tolerance entries (the drift gate);
// scripts/regen_goldens.sh regenerates the fixtures through
// tests/oracle/golden_regen_main.cpp, refusing to overwrite when the drift
// exceeds tolerance unless forced. Generation is fully deterministic: fixed
// seeds, no wall clock.
#pragma once

#include <string>
#include <vector>

namespace earsonar::check {

/// One named fixture: `pair` selects its tolerance entry in the policy table.
struct GoldenVector {
  std::string name;
  std::string pair;
  std::vector<double> values;
};

/// The four pipeline-level golden vectors, freshly computed (slow: runs the
/// full pipeline over a small simulated cohort).
std::vector<GoldenVector> generate_goldens();

/// Fixture file name for a golden vector ("<name>.json").
std::string golden_filename(const GoldenVector& golden);

/// Serializes a golden vector to its JSON fixture form (17 significant
/// digits, so doubles round-trip bit-exactly).
std::string golden_to_json(const GoldenVector& golden);

/// Parses a fixture produced by golden_to_json; throws std::runtime_error on
/// malformed input.
GoldenVector golden_from_json(const std::string& json, const std::string& origin);

/// Reads/writes a fixture file.
GoldenVector load_golden(const std::string& path);
void save_golden(const std::string& path, const GoldenVector& golden);

}  // namespace earsonar::check
