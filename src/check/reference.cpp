#include "check/reference.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace earsonar::check {

namespace {

constexpr double kPi = std::numbers::pi;

// Twiddle e^{sign * 2*pi*i * (k*n mod N) / N}. Reducing the index modulo N
// before the angle computation keeps the argument in [0, 2*pi), so the naive
// sums stay accurate enough to serve as the oracle even at n = 8192.
Complex unit_twiddle(std::size_t k, std::size_t n, std::size_t size, double sign) {
  const std::size_t reduced = (k * n) % size;
  const double angle = sign * 2.0 * kPi * static_cast<double>(reduced) /
                       static_cast<double>(size);
  return {std::cos(angle), std::sin(angle)};
}

}  // namespace

std::vector<Complex> dft_naive(std::span<const Complex> input) {
  require_nonempty("dft_naive input", input.size());
  const std::size_t n = input.size();
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc{0.0, 0.0};
    for (std::size_t i = 0; i < n; ++i) acc += input[i] * unit_twiddle(k, i, n, -1.0);
    out[k] = acc;
  }
  return out;
}

std::vector<Complex> idft_naive(std::span<const Complex> input) {
  require_nonempty("idft_naive input", input.size());
  const std::size_t n = input.size();
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc{0.0, 0.0};
    for (std::size_t i = 0; i < n; ++i) acc += input[i] * unit_twiddle(k, i, n, 1.0);
    out[k] = acc / static_cast<double>(n);
  }
  return out;
}

std::vector<Complex> rdft_naive(std::span<const double> input) {
  require_nonempty("rdft_naive input", input.size());
  const std::size_t n = input.size();
  std::vector<Complex> out(n / 2 + 1);
  for (std::size_t k = 0; k < out.size(); ++k) {
    Complex acc{0.0, 0.0};
    for (std::size_t i = 0; i < n; ++i) acc += input[i] * unit_twiddle(k, i, n, -1.0);
    out[k] = acc;
  }
  return out;
}

std::vector<double> power_spectrum_naive(std::span<const double> input) {
  const std::vector<Complex> bins = rdft_naive(input);
  std::vector<double> power(bins.size());
  for (std::size_t i = 0; i < bins.size(); ++i)
    power[i] = std::norm(bins[i]) / static_cast<double>(input.size());
  return power;
}

double dtft_magnitude_naive(std::span<const double> signal, double frequency_hz,
                            double sample_rate) {
  require_nonempty("dtft_magnitude_naive input", signal.size());
  require_positive("sample_rate", sample_rate);
  const double w = 2.0 * kPi * frequency_hz / sample_rate;
  double re = 0.0, im = 0.0;
  for (std::size_t n = 0; n < signal.size(); ++n) {
    const double angle = w * static_cast<double>(n);
    re += signal[n] * std::cos(angle);
    im -= signal[n] * std::sin(angle);
  }
  return std::hypot(re, im);
}

std::vector<double> convolve_naive(std::span<const double> a, std::span<const double> b) {
  require_nonempty("convolve_naive a", a.size());
  require_nonempty("convolve_naive b", b.size());
  std::vector<double> out(a.size() + b.size() - 1, 0.0);
  for (std::size_t k = 0; k < out.size(); ++k) {
    const std::size_t i_lo = k >= b.size() - 1 ? k - (b.size() - 1) : 0;
    const std::size_t i_hi = std::min(k, a.size() - 1);
    double acc = 0.0;
    for (std::size_t i = i_lo; i <= i_hi; ++i) acc += a[i] * b[k - i];
    out[k] = acc;
  }
  return out;
}

std::vector<double> cross_correlate_naive(std::span<const double> a,
                                          std::span<const double> b) {
  require_nonempty("cross_correlate_naive a", a.size());
  require_nonempty("cross_correlate_naive b", b.size());
  // r[m] = sum_i a[i] * b[i - (m - (|b|-1))]: convolution of a with reversed b.
  std::vector<double> reversed(b.rbegin(), b.rend());
  return convolve_naive(a, reversed);
}

std::vector<double> dct2_naive(std::span<const double> input) {
  require_nonempty("dct2_naive input", input.size());
  const std::size_t n = input.size();
  std::vector<double> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      acc += input[i] * std::cos(kPi * (2.0 * static_cast<double>(i) + 1.0) *
                                 static_cast<double>(k) / (2.0 * static_cast<double>(n)));
    const double scale =
        k == 0 ? std::sqrt(1.0 / static_cast<double>(n)) : std::sqrt(2.0 / static_cast<double>(n));
    out[k] = acc * scale;
  }
  return out;
}

double percentile_naive(std::span<const double> xs, double p) {
  require_nonempty("percentile_naive input", xs.size());
  require_in_range("percentile_naive p", p, 0.0, 100.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::vector<double> biquad_cascade_df1_naive(const std::vector<dsp::Biquad>& sections,
                                             std::span<const double> input) {
  std::vector<double> x(input.begin(), input.end());
  for (const dsp::Biquad& s : sections) {
    std::vector<double> y(x.size());
    double x1 = 0.0, x2 = 0.0, y1 = 0.0, y2 = 0.0;
    for (std::size_t n = 0; n < x.size(); ++n) {
      y[n] = s.b0 * x[n] + s.b1 * x1 + s.b2 * x2 - s.a1 * y1 - s.a2 * y2;
      x2 = x1;
      x1 = x[n];
      y2 = y1;
      y1 = y[n];
    }
    x = std::move(y);
  }
  return x;
}

std::vector<std::vector<double>> mel_weights_naive(const dsp::MelFilterbankConfig& config) {
  const std::size_t n_bins = config.fft_size / 2 + 1;
  const auto to_mel = [](double hz) { return 2595.0 * std::log10(1.0 + hz / 700.0); };
  const auto to_hz = [](double mel) {
    return 700.0 * (std::pow(10.0, mel / 2595.0) - 1.0);
  };
  const double mel_lo = to_mel(config.low_hz);
  const double mel_hi = to_mel(config.high_hz);
  std::vector<double> edges(config.filter_count + 2);
  for (std::size_t i = 0; i < edges.size(); ++i)
    edges[i] = to_hz(mel_lo + (mel_hi - mel_lo) * static_cast<double>(i) /
                                  static_cast<double>(edges.size() - 1));

  std::vector<std::vector<double>> weights(config.filter_count,
                                           std::vector<double>(n_bins, 0.0));
  for (std::size_t f = 0; f < config.filter_count; ++f) {
    const double left = edges[f], center = edges[f + 1], right = edges[f + 2];
    double total = 0.0;
    for (std::size_t b = 0; b < n_bins; ++b) {
      const double freq = static_cast<double>(b) * config.sample_rate /
                          static_cast<double>(config.fft_size);
      double w = 0.0;
      if (freq > left && freq < center) w = (freq - left) / (center - left);
      else if (freq >= center && freq < right) w = (right - freq) / (right - center);
      weights[f][b] = w;
      total += w;
    }
    if (total == 0.0) {
      // Documented degenerate-triangle fallback: a filter narrower than one
      // bin spacing collapses onto the bin nearest its center frequency.
      const auto nearest = static_cast<std::size_t>(std::lround(
          center / config.sample_rate * static_cast<double>(config.fft_size)));
      weights[f][std::min(nearest, n_bins - 1)] = 1.0;
    }
  }
  return weights;
}

std::vector<double> mfcc_naive(const dsp::MfccConfig& config, std::span<const double> frame) {
  require_nonempty("mfcc_naive frame", frame.size());
  const std::size_t n = config.filterbank.fft_size;

  // 1. zero-pad / truncate, then the symmetric Hann window.
  std::vector<double> padded(n, 0.0);
  std::copy_n(frame.begin(), std::min(frame.size(), n), padded.begin());
  for (std::size_t i = 0; i < n && n > 1; ++i)
    padded[i] *= 0.5 - 0.5 * std::cos(2.0 * kPi * static_cast<double>(i) /
                                      static_cast<double>(n - 1));

  // 2. naive real DFT and the |X|^2 / N power spectrum.
  const std::vector<double> power = power_spectrum_naive(padded);

  // 3. literal mel triangles, floored log.
  const std::vector<std::vector<double>> weights = mel_weights_naive(config.filterbank);
  std::vector<double> energies(weights.size());
  for (std::size_t f = 0; f < weights.size(); ++f) {
    double acc = 0.0;
    for (std::size_t b = 0; b < power.size(); ++b) acc += weights[f][b] * power[b];
    energies[f] = std::log(std::max(acc, config.log_floor));
  }

  // 4. naive DCT-II, leading coefficients only.
  std::vector<double> mfcc = dct2_naive(energies);
  mfcc.resize(config.coefficient_count);
  return mfcc;
}

std::vector<double> welch_psd_naive(std::span<const double> signal, double sample_rate,
                                    std::size_t segment) {
  require_nonempty("welch_psd_naive input", signal.size());
  require(segment >= 2 && segment <= signal.size(),
          "welch_psd_naive: segment must be in [2, signal length]");
  require_positive("sample_rate", sample_rate);

  std::vector<double> window(segment);
  for (std::size_t i = 0; i < segment; ++i)
    window[i] = 0.5 - 0.5 * std::cos(2.0 * kPi * static_cast<double>(i) /
                                     static_cast<double>(segment - 1));
  double window_energy = 0.0;
  for (double w : window) window_energy += w * w;
  const double norm = 1.0 / (sample_rate * window_energy);

  std::vector<double> acc(segment / 2 + 1, 0.0);
  std::size_t count = 0;
  for (std::size_t start = 0; start + segment <= signal.size(); start += segment / 2) {
    std::vector<double> xw(segment);
    for (std::size_t i = 0; i < segment; ++i) xw[i] = signal[start + i] * window[i];
    const std::vector<Complex> bins = rdft_naive(xw);
    for (std::size_t i = 0; i < acc.size(); ++i) {
      const double p = std::norm(bins[i]) * norm;
      // One-sided spectrum: double everything except DC and Nyquist.
      const bool edge = (i == 0) || (segment % 2 == 0 && i == acc.size() - 1);
      acc[i] += edge ? p : 2.0 * p;
    }
    ++count;
  }
  for (double& v : acc) v /= static_cast<double>(count);
  return acc;
}

}  // namespace earsonar::check
