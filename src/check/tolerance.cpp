#include "check/tolerance.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/error.hpp"

namespace earsonar::check {

namespace {

// Registration helper — scripts/check_docs.sh greps these call sites to gate
// the pair catalog against docs/testing.md, so every entry must go through
// add_pair with a literal name.
void add_pair(std::vector<PairPolicy>& table, const char* name, const char* optimized,
              const char* reference, Tolerance tol, const char* note) {
  table.push_back({name, optimized, reference, tol, note});
}

std::vector<PairPolicy> build_table() {
  std::vector<PairPolicy> t;
  add_pair(t, "dsp.fft.forward", "dsp::fft (planned radix-2 / Bluestein)",
           "check::dft_naive (textbook O(n^2) DFT)", {1e-9, 1e-12},
           "Bluestein round-off grows ~O(log n) of the output norm; 1e-9 holds to n = 8192");
  add_pair(t, "dsp.fft.inverse", "dsp::ifft", "check::idft_naive", {1e-9, 1e-12},
           "same error budget as the forward transform plus the 1/N scaling");
  add_pair(t, "dsp.fft.real", "dsp::rfft (half-length real algorithm)",
           "check::dft_naive over the real signal", {1e-9, 1e-12},
           "the split/merge step adds at most a few ULP over the complex path");
  add_pair(t, "dsp.fft.power_spectrum", "dsp::power_spectrum", "check::power_spectrum_naive",
           {2e-9, 1e-15}, "squaring doubles the forward transform's relative error");
  add_pair(t, "dsp.convolve.fft", "dsp::convolve_fft / dsp::convolve",
           "check::convolve_naive (direct O(NM) sum)", {1e-9, 1e-12},
           "three transforms of the zero-padded length; error tracks the padded norm");
  add_pair(t, "dsp.correlate.fft", "dsp::cross_correlate (FFT path)",
           "check::cross_correlate_naive", {1e-9, 1e-12},
           "identical transform budget to dsp.convolve.fft");
  add_pair(t, "dsp.goertzel", "dsp::goertzel_magnitude",
           "check::dtft_magnitude_naive (literal DTFT sum)", {1e-7, 1e-9},
           "the two-term recurrence loses ~O(N) ULP near cos(w) = +-1; 1e-7 holds to n = 8192");
  add_pair(t, "dsp.dct2", "dsp::dct2 / dsp::idct2", "check::dct2_naive (literal formula)",
           {1e-10, 1e-13}, "same O(n^2) math; only summation order differs");
  add_pair(t, "dsp.biquad.block", "dsp::BiquadCascade::process (direct-form II transposed)",
           "check::biquad_cascade_df1_naive (per-sample direct-form I)", {1e-6, 1e-9},
           "DF1 and DF2T round differently; the 8-pole band-pass has poles near |z| = 1 "
           "so per-sample differences are amplified by the filter's Q");
  add_pair(t, "dsp.simd.dispatch", "dsp::simd::kernel_set(kNative) kernels",
           "dsp::simd::kernel_set(kScalar) (Pack emulation, same lane count)", {0.0, 0.0},
           "bit-exact: both levels instantiate the identical templated op sequence "
           "(src/dsp/kernel_impl.hpp) at the same lane width with -ffp-contract=off");
  add_pair(t, "dsp.biquad.interleaved", "dsp::MultiBiquadCascade (interleaved channels)",
           "dsp::BiquadCascade::process per channel", {0.0, 0.0},
           "bit-exact: each interleaved lane runs the exact per-channel DF2T recurrence; "
           "only the channel loop is restructured");
  add_pair(t, "dsp.mel.filterbank", "dsp::MelFilterbank weights",
           "check::mel_weights_naive (literal triangle formula)", {0.0, 0.0},
           "bit-exact: identical arithmetic, independently coded");
  add_pair(t, "dsp.mfcc", "dsp::MfccExtractor::compute",
           "check::mfcc_naive (literal pad/window/DFT/mel/log/DCT chain)", {1e-7, 1e-9},
           "log() near the floor steepens the transform error; 1e-7 bounds the chain");
  add_pair(t, "dsp.fft.power_spectrum.f32", "dsp::FftPlan::power_spectrum_f32",
           "dsp::FftPlan::power_spectrum (float64)", {3e-5, 1e-12},
           "float32 butterflies accumulate ~ulp_f32 * log2(n) = 2^-23 * 12 relative "
           "error at n = 4096; squaring in power doubles the relative term");
  add_pair(t, "dsp.mel.filterbank.f32", "dsp::MelFilterbank::apply_f32",
           "dsp::MelFilterbank::apply (float64)", {2e-5, 1e-14},
           "float32 dot over <= 2049 nonnegative bins: error grows ~sqrt(n) * ulp_f32 "
           "with all-positive weights, no cancellation");
  add_pair(t, "dsp.features.f32", "core::EarSonar features, float32_kernels = true",
           "the same pipeline in float64", {5e-4, 1e-10},
           "end-to-end float32 PSD error passes through band ratios, logs, and "
           "divisions; the budget is the f32 kernel error amplified by the chain");
  add_pair(t, "dsp.welch", "dsp::welch_psd / dsp::periodogram", "check::welch_psd_naive",
           {2e-9, 1e-18}, "per-segment transform error, averaged; scaling is identical");
  add_pair(t, "common.percentile", "earsonar::percentile (two order statistics)",
           "check::percentile_naive (full std::sort)", {0.0, 0.0},
           "bit-exact: both paths interpolate the same two order statistics");
  add_pair(t, "serve.stream.filter", "dsp::BiquadCascade::process chunk-at-a-time",
           "one whole-signal process() call", {0.0, 0.0},
           "bit-exact: a causal IIR recurrence is invariant to chunk boundaries");
  add_pair(t, "serve.stream.finish", "serve::StreamingSession::finish",
           "core::EarSonar::analyze on the whole recording", {0.0, 0.0},
           "bit-exact by design (see src/serve/streaming.hpp); any drift is a bug");
  add_pair(t, "audio.wav.roundtrip_f32", "write_wav/read_wav float32",
           "the in-memory samples, clamped to [-1, 1]", {1.2e-7, 1e-37},
           "IEEE float quantization: half-ULP at 2^-24 relative");
  add_pair(t, "audio.wav.roundtrip_pcm16", "write_wav/read_wav int16",
           "the in-memory samples, clamped to [-1, 1]", {0.0, 1.6e-5},
           "one rounding step of the symmetric 1/32767 quantizer; +-1.0 is exact");
  add_pair(t, "golden.filtered_chirp", "core::Preprocessor::process head samples",
           "tests/oracle/fixtures/filtered_chirp.json", {1e-9, 1e-15},
           "drift gate: libm / re-association slack across toolchains");
  add_pair(t, "golden.echo_psd", "core::EarSonar::analyze mean echo-window PSD",
           "tests/oracle/fixtures/echo_psd.json", {1e-8, 1e-18},
           "drift gate: PSD ratios divide two transforms, doubling the slack");
  add_pair(t, "golden.features", "core::EarSonar::analyze 105-feature vector",
           "tests/oracle/fixtures/feature_vector.json", {1e-7, 1e-12},
           "drift gate: log-band and shape features sit behind divisions and logs");
  add_pair(t, "golden.laplacian_top25", "ml::laplacian_scores + select_best_features",
           "tests/oracle/fixtures/laplacian_top25.json", {0.0, 0.0},
           "bit-exact: a changed index means the selection itself changed");
  return t;
}

}  // namespace

const std::vector<PairPolicy>& pair_policies() {
  static const std::vector<PairPolicy> table = build_table();
  return table;
}

const PairPolicy& pair_policy(std::string_view name) {
  for (const PairPolicy& p : pair_policies())
    if (p.name == name) return p;
  throw std::invalid_argument("pair_policy: unknown oracle pair '" + std::string(name) + "'");
}

std::uint64_t ulp_distance(double a, double b) {
  if (a == b) return 0;
  if (!std::isfinite(a) || !std::isfinite(b)) return UINT64_MAX;
  // Map the sign-magnitude bit pattern onto a monotone integer line.
  const auto order = [](double x) {
    const auto bits = std::bit_cast<std::int64_t>(x);
    return bits < 0 ? std::numeric_limits<std::int64_t>::min() - bits : bits;
  };
  const std::int64_t ia = order(a);
  const std::int64_t ib = order(b);
  return ia > ib ? static_cast<std::uint64_t>(ia) - static_cast<std::uint64_t>(ib)
                 : static_cast<std::uint64_t>(ib) - static_cast<std::uint64_t>(ia);
}

CompareResult compare_vectors(std::span<const double> got, std::span<const double> want,
                              const Tolerance& tol) {
  require(got.size() == want.size(), "compare_vectors: size mismatch");
  double linf = 0.0;
  for (double w : want) linf = std::max(linf, std::abs(w));

  CompareResult worst;
  double worst_margin = -1.0;  // error minus allowance; > 0 means failure
  for (std::size_t i = 0; i < got.size(); ++i) {
    const bool finite = std::isfinite(got[i]) && std::isfinite(want[i]);
    const double error = finite ? std::abs(got[i] - want[i])
                                : std::numeric_limits<double>::infinity();
    const double allowed = tol.abs + tol.rel * std::max(std::abs(want[i]), linf);
    const double margin = error - allowed;
    if (margin > worst_margin) {
      worst_margin = margin;
      worst = {error <= allowed, i, got[i], want[i], error, allowed};
    }
  }
  return worst;
}

bool within_tolerance(double got, double want, const Tolerance& tol) {
  return compare_vectors({&got, 1}, {&want, 1}, tol).ok;
}

std::string describe_failure(std::string_view pair, const CompareResult& result) {
  std::ostringstream os;
  os.precision(17);
  os << "oracle pair '" << pair << "' diverged at index " << result.index << ": got "
     << result.got << ", reference " << result.want << " (|diff| = " << result.error
     << ", allowed " << result.allowed << ")";
  return os.str();
}

}  // namespace earsonar::check
