#include "check/cases.hpp"

#include <cmath>
#include <iterator>
#include <numbers>

#include "common/rng.hpp"

namespace earsonar::check {

namespace {

constexpr double kPi = std::numbers::pi;

void add_case(std::vector<SignalCase>& out, std::size_t size, const char* shape,
              std::vector<double> data) {
  out.push_back({"n=" + std::to_string(size) + "/" + shape, std::move(data)});
}

}  // namespace

std::vector<std::size_t> oracle_sizes(std::size_t max_size) {
  static const std::size_t grid[] = {1,   2,   3,   4,   5,    6,    7,    8,
                                     12,  13,  16,  17,  24,   31,   32,   61,
                                     64,  97,  100, 127, 128,  251,  256,  509,
                                     512, 768, 1021, 1024, 2048, 4096, 8191, 8192};
  std::vector<std::size_t> sizes;
  for (std::size_t n : grid)
    if (n <= max_size) sizes.push_back(n);
  return sizes;
}

std::vector<SignalCase> cases_for_size(std::size_t size, std::uint64_t seed) {
  std::vector<SignalCase> out;
  const auto n = static_cast<double>(size);

  add_case(out, size, "constant", std::vector<double>(size, 1.0));
  add_case(out, size, "impulse", [&] {
    std::vector<double> x(size, 0.0);
    x[0] = 1.0;
    return x;
  }());
  add_case(out, size, "dc_plus_offset", std::vector<double>(size, -0.75));

  if (size >= 2) {
    std::vector<double> alt(size);
    for (std::size_t i = 0; i < size; ++i) alt[i] = (i % 2 == 0) ? 1.0 : -1.0;
    add_case(out, size, "alternating_sign", std::move(alt));
  }
  if (size >= 2 && size % 2 == 0) {
    // The alternating-sign sequence *is* the Nyquist tone; add the phase-
    // shifted cosine form too so the imaginary bin path is exercised.
    std::vector<double> nyq(size);
    for (std::size_t i = 0; i < size; ++i) nyq[i] = 0.5 * std::cos(kPi * static_cast<double>(i));
    add_case(out, size, "nyquist_tone", std::move(nyq));
  }
  if (size >= 4) {
    // Bin-exact tone at roughly a third of the band, and an off-bin tone at a
    // deliberately irrational fraction of the bin spacing.
    const double bin = std::max(1.0, std::floor(n / 3.0));
    std::vector<double> exact(size), off(size);
    for (std::size_t i = 0; i < size; ++i) {
      exact[i] = std::sin(2.0 * kPi * bin * static_cast<double>(i) / n);
      off[i] = std::sin(2.0 * kPi * (bin + 1.0 / std::numbers::sqrt2) *
                        static_cast<double>(i) / n);
    }
    add_case(out, size, "bin_exact_tone", std::move(exact));
    add_case(out, size, "off_bin_tone", std::move(off));
  }

  Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * (size + 1)));
  std::vector<double> noise(size);
  for (double& v : noise) v = rng.uniform(-1.0, 1.0);
  add_case(out, size, "uniform_noise", noise);

  std::vector<double> denormal(size);
  for (std::size_t i = 0; i < size; ++i) denormal[i] = noise[i] * 1e-310;
  add_case(out, size, "denormal_scale", std::move(denormal));

  std::vector<double> wide(size);
  for (std::size_t i = 0; i < size; ++i)
    wide[i] = noise[i] * ((i % 3 == 0) ? 1e9 : ((i % 3 == 1) ? 1e-9 : 1.0));
  add_case(out, size, "wide_dynamic_range", std::move(wide));

  return out;
}

std::vector<SignalCase> standard_cases(std::uint64_t seed, std::size_t max_size) {
  std::vector<SignalCase> out;
  for (std::size_t size : oracle_sizes(max_size)) {
    std::vector<SignalCase> cases = cases_for_size(size, seed);
    out.insert(out.end(), std::make_move_iterator(cases.begin()),
               std::make_move_iterator(cases.end()));
  }
  return out;
}

}  // namespace earsonar::check
