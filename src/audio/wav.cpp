#include "audio/wav.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

#include "common/error.hpp"
#include "common/fault.hpp"

namespace earsonar::audio {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xff));
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
}

void put_tag(std::vector<std::uint8_t>& out, const char* tag) {
  out.insert(out.end(), tag, tag + 4);
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

}  // namespace

void write_wav(const std::string& path, const Waveform& waveform, WavEncoding encoding) {
  if (fault::point("wav.write")) fail("injected fault: wav.write: " + path);
  require_nonempty("write_wav samples", waveform.size());
  const std::uint16_t format = encoding == WavEncoding::kPcm16 ? 1 : 3;
  const std::uint16_t bits = encoding == WavEncoding::kPcm16 ? 16 : 32;
  const std::uint16_t channels = 1;
  const std::uint32_t rate = static_cast<std::uint32_t>(waveform.sample_rate());
  const std::uint16_t block = static_cast<std::uint16_t>(channels * bits / 8);
  const std::uint32_t data_bytes = static_cast<std::uint32_t>(waveform.size()) * block;

  std::vector<std::uint8_t> bytes;
  bytes.reserve(44 + data_bytes);
  put_tag(bytes, "RIFF");
  put_u32(bytes, 36 + data_bytes);
  put_tag(bytes, "WAVE");
  put_tag(bytes, "fmt ");
  put_u32(bytes, 16);
  put_u16(bytes, format);
  put_u16(bytes, channels);
  put_u32(bytes, rate);
  put_u32(bytes, rate * block);
  put_u16(bytes, block);
  put_u16(bytes, bits);
  put_tag(bytes, "data");
  put_u32(bytes, data_bytes);

  for (double s : waveform.samples()) {
    const double clipped = std::clamp(s, -1.0, 1.0);
    if (encoding == WavEncoding::kPcm16) {
      const auto v = static_cast<std::int16_t>(std::lround(clipped * 32767.0));
      put_u16(bytes, static_cast<std::uint16_t>(v));
    } else {
      const float f = static_cast<float>(clipped);
      std::uint32_t raw;
      std::memcpy(&raw, &f, sizeof raw);
      put_u32(bytes, raw);
    }
  }

  std::ofstream out(path, std::ios::binary);
  if (!out) fail("write_wav: cannot open " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) fail("write_wav: write failed for " + path);
}

Waveform parse_wav(std::span<const std::uint8_t> bytes, const std::string& name) {
  if (bytes.size() < 44) fail("read_wav: file too short: " + name);
  if (std::memcmp(bytes.data(), "RIFF", 4) != 0 || std::memcmp(bytes.data() + 8, "WAVE", 4) != 0)
    fail("read_wav: not a RIFF/WAVE file: " + name);

  // Walk chunks to find fmt and data. All arithmetic is in std::size_t with
  // the 32-bit chunk size widened first, so a hostile 0xFFFFFFFF size cannot
  // wrap the position; each chunk is bounds-checked before it is advanced
  // over or read.
  std::size_t pos = 12;
  std::uint16_t format = 0, channels = 0, bits = 0;
  std::uint32_t rate = 0;
  bool have_fmt = false;
  const std::uint8_t* data = nullptr;
  std::size_t data_bytes = 0;
  while (pos + 8 <= bytes.size()) {
    const std::size_t chunk_size = get_u32(bytes.data() + pos + 4);
    const std::size_t body = pos + 8;
    const std::size_t available = bytes.size() - body;
    if (std::memcmp(bytes.data() + pos, "fmt ", 4) == 0) {
      if (chunk_size < 16 || available < 16)
        fail("read_wav: truncated fmt chunk: " + name);
      format = get_u16(bytes.data() + body);
      channels = get_u16(bytes.data() + body + 2);
      rate = get_u32(bytes.data() + body + 4);
      bits = get_u16(bytes.data() + body + 14);
      have_fmt = true;
    } else if (std::memcmp(bytes.data() + pos, "data", 4) == 0) {
      data = bytes.data() + body;
      // A data size beyond the bytes present means a truncated file; the
      // frames that did arrive are still good, so cap rather than reject.
      data_bytes = std::min(chunk_size, available);
    }
    if (chunk_size > available) {
      if (data != nullptr) break;  // truncated trailing chunk after data
      fail("read_wav: chunk size overruns file: " + name);
    }
    pos = body + chunk_size + (chunk_size & 1);  // chunks are word-aligned
  }
  if (data == nullptr) fail("read_wav: no data chunk: " + name);
  if (!have_fmt || channels == 0 || rate == 0)
    fail("read_wav: no usable fmt chunk: " + name);

  const bool pcm16 = format == 1 && bits == 16;
  const bool f32 = format == 3 && bits == 32;
  if (!pcm16 && !f32) fail("read_wav: unsupported encoding in " + name);

  const std::size_t bytes_per_sample = bits / 8;
  const std::size_t frame_bytes = bytes_per_sample * channels;
  const std::size_t frames = data_bytes / frame_bytes;
  std::vector<double> samples(frames);
  for (std::size_t i = 0; i < frames; ++i) {
    const std::uint8_t* p = data + i * frame_bytes;  // first channel only
    if (pcm16) {
      const auto v = static_cast<std::int16_t>(get_u16(p));
      samples[i] = static_cast<double>(v) / 32767.0;
    } else {
      const std::uint32_t raw = get_u32(p);
      float f;
      std::memcpy(&f, &raw, sizeof f);
      samples[i] = static_cast<double>(f);
    }
  }
  return Waveform(std::move(samples), static_cast<double>(rate));
}

Waveform read_wav(const std::string& path) {
  if (fault::point("wav.read")) fail("injected fault: wav.read: " + path);
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("read_wav: cannot open " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return parse_wav(bytes, path);
}

}  // namespace earsonar::audio
