#include "audio/chirp.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "dsp/window.hpp"

namespace earsonar::audio {

std::size_t FmcwConfig::chirp_samples() const {
  return static_cast<std::size_t>(std::lround(duration_s * sample_rate));
}

std::size_t FmcwConfig::interval_samples() const {
  return static_cast<std::size_t>(std::lround(interval_s * sample_rate));
}

void FmcwConfig::validate() const {
  require_positive("FmcwConfig.sample_rate", sample_rate);
  require_positive("FmcwConfig.duration_s", duration_s);
  require_positive("FmcwConfig.bandwidth_hz", bandwidth_hz);
  require(start_hz > 0.0, "FmcwConfig: start_hz must be > 0");
  require(end_hz() <= sample_rate / 2.0, "FmcwConfig: chirp exceeds Nyquist");
  require(interval_s >= duration_s, "FmcwConfig: interval must be >= duration");
  require(amplitude > 0.0 && amplitude <= 1.0, "FmcwConfig: amplitude must be in (0, 1]");
  require(chirp_samples() >= 4, "FmcwConfig: chirp shorter than 4 samples");
}

Waveform make_chirp(const FmcwConfig& config) {
  config.validate();
  const std::size_t n = config.chirp_samples();
  std::vector<double> samples(n);
  const double slope = config.bandwidth_hz / config.duration_s;  // Hz per second
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / config.sample_rate;
    const double phase =
        2.0 * std::numbers::pi * (config.start_hz * t + 0.5 * slope * t * t);
    samples[i] = config.amplitude * std::sin(phase);
  }
  if (config.hann_shaped) {
    const std::vector<double> w = dsp::hann_window(n);
    dsp::apply_window_inplace(samples, w);
  }
  return Waveform(std::move(samples), config.sample_rate);
}

Waveform make_chirp_train(const FmcwConfig& config, std::size_t chirp_count) {
  config.validate();
  require(chirp_count >= 1, "make_chirp_train: need >= 1 chirp");
  const Waveform pulse = make_chirp(config);
  Waveform train = Waveform::silence(chirp_count * config.interval_samples(),
                                     config.sample_rate);
  for (std::size_t k = 0; k < chirp_count; ++k)
    train.add_at(pulse, chirp_start_sample(config, k));
  return train;
}

double chirp_instantaneous_hz(const FmcwConfig& config, double t_seconds) {
  require(t_seconds >= 0.0 && t_seconds <= config.duration_s,
          "chirp_instantaneous_hz: t outside [0, T]");
  return config.start_hz + config.bandwidth_hz * t_seconds / config.duration_s;
}

std::size_t chirp_start_sample(const FmcwConfig& config, std::size_t chirp_index) {
  return chirp_index * config.interval_samples();
}

}  // namespace earsonar::audio
