// Noise synthesis with dB-SPL calibration (paper §VI-C2 adds controlled
// background noise at 40-75 dB SPL to recorded data).
#pragma once

#include <cstddef>

#include "audio/waveform.hpp"
#include "common/rng.hpp"

namespace earsonar::audio {

enum class NoiseColor {
  kWhite,   ///< flat spectrum
  kPink,    ///< -3 dB/octave (1/f power)
  kBabble,  ///< speech-shaped: band-limited low-frequency-weighted hum
};

/// `count` samples of unit-RMS noise of the given color.
Waveform make_noise(NoiseColor color, std::size_t count, double sample_rate,
                    earsonar::Rng& rng);

/// Noise calibrated to `spl_db` under the library's full-scale convention.
Waveform make_noise_at_spl(NoiseColor color, double spl_db, std::size_t count,
                           double sample_rate, earsonar::Rng& rng);

/// Adds noise of the given color/SPL into `target` in place.
void add_noise_at_spl(Waveform& target, NoiseColor color, double spl_db,
                      earsonar::Rng& rng);

/// Adds white noise such that the resulting signal-to-noise ratio relative to
/// `target`'s current RMS is `snr_db`.
void add_noise_at_snr(Waveform& target, double snr_db, earsonar::Rng& rng);

/// Measured SNR (dB) of `signal` against `noise` RMS levels.
double snr_db(const Waveform& signal, const Waveform& noise);

}  // namespace earsonar::audio
