// Minimal RIFF/WAVE reader & writer (PCM16 and IEEE float32, mono).
// Lets examples persist simulated recordings and re-load them, standing in
// for the phone-app capture files the paper's prototype uploads to a laptop.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "audio/waveform.hpp"

namespace earsonar::audio {

enum class WavEncoding { kPcm16, kFloat32 };

/// Writes `waveform` as a mono WAV file. Samples are clipped to [-1, 1].
/// Throws std::runtime_error on I/O failure.
void write_wav(const std::string& path, const Waveform& waveform,
               WavEncoding encoding = WavEncoding::kPcm16);

/// Reads a mono (or first-channel-of-interleaved) WAV file written in PCM16
/// or float32. Throws std::runtime_error on malformed input.
Waveform read_wav(const std::string& path);

/// Decodes an in-memory WAV image (the body of read_wav, exposed for fuzzing
/// and for callers that already hold the bytes). `name` labels error
/// messages. Malformed input — truncated header, chunk sizes overflowing the
/// buffer, missing fmt/data — throws std::runtime_error; no input may crash
/// or read out of bounds. A data chunk whose declared size exceeds the bytes
/// actually present is capped to what is there (truncated uploads are
/// recoverable); any other overflowing chunk is rejected.
Waveform parse_wav(std::span<const std::uint8_t> bytes, const std::string& name);

}  // namespace earsonar::audio
