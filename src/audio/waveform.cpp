#include "audio/waveform.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"

namespace earsonar::audio {

Waveform::Waveform(std::vector<double> samples, double sample_rate)
    : samples_(std::move(samples)), sample_rate_(sample_rate) {
  require_positive("Waveform sample_rate", sample_rate);
}

Waveform Waveform::silence(std::size_t count, double sample_rate) {
  return Waveform(std::vector<double>(count, 0.0), sample_rate);
}

double Waveform::duration_seconds() const {
  return static_cast<double>(samples_.size()) / sample_rate_;
}

Waveform Waveform::slice(std::size_t start, std::size_t count) const {
  if (start >= samples_.size()) return Waveform({}, sample_rate_);
  const std::size_t end = std::min(samples_.size(), start + count);
  return Waveform(std::vector<double>(samples_.begin() + static_cast<std::ptrdiff_t>(start),
                                      samples_.begin() + static_cast<std::ptrdiff_t>(end)),
                  sample_rate_);
}

void Waveform::scale(double gain) {
  for (double& s : samples_) s *= gain;
}

void Waveform::add_at(const Waveform& other, std::size_t offset) {
  require(other.sample_rate_ == sample_rate_, "Waveform::add_at: sample-rate mismatch");
  require(offset + other.size() <= size(), "Waveform::add_at: out of range");
  for (std::size_t i = 0; i < other.size(); ++i) samples_[offset + i] += other.samples_[i];
}

void Waveform::mix(const Waveform& other) {
  require(other.sample_rate_ == sample_rate_, "Waveform::mix: sample-rate mismatch");
  require(other.size() == size(), "Waveform::mix: length mismatch");
  for (std::size_t i = 0; i < size(); ++i) samples_[i] += other.samples_[i];
}

double Waveform::rms() const {
  if (samples_.empty()) return 0.0;
  return earsonar::rms(samples_);
}

double Waveform::peak() const {
  double p = 0.0;
  for (double s : samples_) p = std::max(p, std::abs(s));
  return p;
}

void Waveform::normalize_peak(double target_peak) {
  require(target_peak >= 0.0, "normalize_peak: target must be >= 0");
  const double p = peak();
  if (p <= 0.0) return;
  scale(target_peak / p);
}

double Waveform::spl_to_rms_amplitude(double spl_db) {
  // Full-scale sine (peak 1.0) has RMS 1/sqrt(2) and is defined to measure
  // kFullScaleSpl. Scale down from there.
  const double full_scale_rms = 1.0 / std::sqrt(2.0);
  return full_scale_rms * db_to_amplitude(spl_db - kFullScaleSpl);
}

}  // namespace earsonar::audio
