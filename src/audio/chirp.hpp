// FMCW chirp synthesis (paper §IV-A).
//
// EarSonar probes the ear with linear up-chirps: f0 = 16 kHz, bandwidth
// B = 4 kHz, duration T = 0.5 ms, inter-chirp interval 5 ms, at a 48 kHz
// sample rate — intermittent so ear-canal multipath and the eardrum echo stay
// separable in time.
#pragma once

#include <cstddef>
#include <vector>

#include "audio/waveform.hpp"

namespace earsonar::audio {

/// Parameters of the probing FMCW chirp train, defaulting to the paper's.
struct FmcwConfig {
  double start_hz = 16000.0;      ///< f0, chirp start frequency
  double bandwidth_hz = 4000.0;   ///< B, swept bandwidth (f0 -> f0+B)
  double duration_s = 0.0005;     ///< T, single-chirp duration (0.5 ms)
  double interval_s = 0.005;      ///< spacing between chirp starts (5 ms)
  double sample_rate = 48000.0;
  /// Peak amplitude. The probe is deliberately quiet ("relatively weak and
  /// beyond the range of human hearing", paper §II-B): 0.12 of full scale is
  /// ~76 dB SPL under the library's calibration.
  double amplitude = 0.12;
  bool hann_shaped = true;        ///< taper each chirp with a Hann envelope

  [[nodiscard]] std::size_t chirp_samples() const;
  [[nodiscard]] std::size_t interval_samples() const;
  [[nodiscard]] double end_hz() const { return start_hz + bandwidth_hz; }

  /// Validates the physical constraints (band below Nyquist, T < interval).
  void validate() const;
};

/// One chirp pulse: amplitude * sin(2*pi*(f0 t + B t^2 / (2 T))).
Waveform make_chirp(const FmcwConfig& config);

/// A train of `chirp_count` chirps separated by the configured interval;
/// total length = chirp_count * interval_samples.
Waveform make_chirp_train(const FmcwConfig& config, std::size_t chirp_count);

/// Instantaneous frequency of the chirp at time t within [0, T].
double chirp_instantaneous_hz(const FmcwConfig& config, double t_seconds);

/// Start sample of chirp k within a train.
std::size_t chirp_start_sample(const FmcwConfig& config, std::size_t chirp_index);

}  // namespace earsonar::audio
