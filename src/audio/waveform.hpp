// The sampled-audio value type shared by the simulator and the pipeline.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace earsonar::audio {

/// A mono sampled signal with its sample rate. Value semantics; cheap moves.
/// Amplitude convention: 1.0 is digital full scale, and the calibration used
/// throughout the library maps full scale to kFullScaleSpl dB SPL.
class Waveform {
 public:
  /// dB SPL represented by a full-scale (amplitude 1.0) sine. 94 dB SPL at
  /// full scale is the common measurement-microphone calibration point.
  static constexpr double kFullScaleSpl = 94.0;

  Waveform() = default;
  Waveform(std::vector<double> samples, double sample_rate);

  /// Silent waveform of `count` samples.
  static Waveform silence(std::size_t count, double sample_rate);

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }
  [[nodiscard]] std::vector<double>& samples() { return samples_; }
  [[nodiscard]] std::span<const double> view() const { return samples_; }
  [[nodiscard]] double sample_rate() const { return sample_rate_; }
  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] double duration_seconds() const;

  /// Copy of samples [start, start+count); clamped to the signal end.
  [[nodiscard]] Waveform slice(std::size_t start, std::size_t count) const;

  /// Multiplies every sample by `gain`.
  void scale(double gain);

  /// Adds `other` into this waveform starting at `offset` samples; the other
  /// waveform must share this sample rate and fit (offset+other.size()<=size).
  void add_at(const Waveform& other, std::size_t offset);

  /// Element-wise sum with an equal-rate, equal-length waveform.
  void mix(const Waveform& other);

  [[nodiscard]] double rms() const;
  [[nodiscard]] double peak() const;

  /// Scales so the peak magnitude becomes `target_peak` (no-op on silence).
  void normalize_peak(double target_peak = 1.0);

  /// RMS amplitude corresponding to a sine at `spl_db` under the library's
  /// full-scale calibration.
  static double spl_to_rms_amplitude(double spl_db);

 private:
  std::vector<double> samples_;
  double sample_rate_ = 48000.0;
};

}  // namespace earsonar::audio
