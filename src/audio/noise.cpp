#include "audio/noise.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"
#include "dsp/biquad.hpp"
#include "dsp/butterworth.hpp"

namespace earsonar::audio {

namespace {

std::vector<double> white_samples(std::size_t count, earsonar::Rng& rng) {
  std::vector<double> xs(count);
  for (double& x : xs) x = rng.normal(0.0, 1.0);
  return xs;
}

// Paul Kellet's economy pink-noise filter (three leaky integrators).
std::vector<double> pink_samples(std::size_t count, earsonar::Rng& rng) {
  std::vector<double> xs(count);
  double b0 = 0.0, b1 = 0.0, b2 = 0.0;
  for (double& x : xs) {
    const double w = rng.normal(0.0, 1.0);
    b0 = 0.99765 * b0 + w * 0.0990460;
    b1 = 0.96300 * b1 + w * 0.2965164;
    b2 = 0.57000 * b2 + w * 1.0526913;
    x = b0 + b1 + b2 + w * 0.1848;
  }
  return xs;
}

void normalize_rms(std::vector<double>& xs) {
  double acc = 0.0;
  for (double x : xs) acc += x * x;
  const double r = std::sqrt(acc / static_cast<double>(xs.size()));
  if (r > 0.0)
    for (double& x : xs) x /= r;
}

}  // namespace

Waveform make_noise(NoiseColor color, std::size_t count, double sample_rate,
                    earsonar::Rng& rng) {
  require_nonempty("noise length", count);
  require_positive("sample_rate", sample_rate);
  std::vector<double> xs;
  switch (color) {
    case NoiseColor::kWhite:
      xs = white_samples(count, rng);
      break;
    case NoiseColor::kPink:
      xs = pink_samples(count, rng);
      break;
    case NoiseColor::kBabble: {
      // Speech-band emphasis: pink noise through a 300-4000 Hz band-pass with
      // slow amplitude modulation, approximating multi-talker babble.
      xs = pink_samples(count, rng);
      dsp::BiquadCascade bp = dsp::butterworth_bandpass(
          2, 300.0, std::min(4000.0, sample_rate / 2.0 * 0.9), sample_rate);
      xs = bp.process(xs);
      const double mod_hz = 3.0;  // syllabic rate
      for (std::size_t i = 0; i < xs.size(); ++i) {
        const double t = static_cast<double>(i) / sample_rate;
        xs[i] *= 0.7 + 0.3 * std::sin(2.0 * 3.14159265358979 * mod_hz * t +
                                      rng.uniform(0.0, 0.001));
      }
      break;
    }
  }
  normalize_rms(xs);
  return Waveform(std::move(xs), sample_rate);
}

Waveform make_noise_at_spl(NoiseColor color, double spl_db, std::size_t count,
                           double sample_rate, earsonar::Rng& rng) {
  Waveform noise = make_noise(color, count, sample_rate, rng);
  noise.scale(Waveform::spl_to_rms_amplitude(spl_db));
  return noise;
}

void add_noise_at_spl(Waveform& target, NoiseColor color, double spl_db,
                      earsonar::Rng& rng) {
  require_nonempty("add_noise target", target.size());
  Waveform noise =
      make_noise_at_spl(color, spl_db, target.size(), target.sample_rate(), rng);
  target.mix(noise);
}

void add_noise_at_snr(Waveform& target, double snr_db, earsonar::Rng& rng) {
  require_nonempty("add_noise target", target.size());
  const double signal_rms = target.rms();
  require(signal_rms > 0.0, "add_noise_at_snr: target is silent");
  Waveform noise =
      make_noise(NoiseColor::kWhite, target.size(), target.sample_rate(), rng);
  noise.scale(signal_rms / db_to_amplitude(snr_db));
  target.mix(noise);
}

double snr_db(const Waveform& signal, const Waveform& noise) {
  require(signal.rms() > 0.0 && noise.rms() > 0.0, "snr_db: silent input");
  return amplitude_to_db(signal.rms() / noise.rms());
}

}  // namespace earsonar::audio
