// Extension: binary home-screening mode (fluid vs no fluid) with ROC/AUC —
// the protocol the Chan et al. prior work reports (their smartphone system:
// 85% sensitivity/specificity).
#include "bench_util.hpp"

#include "core/screening.hpp"
#include "ml/crossval.hpp"
#include "ml/roc.hpp"

using namespace earsonar;

int main() {
  bench::print_header("Extension — binary fluid/no-fluid screening (ROC)",
                      "prior-work protocol: Chan et al. report ~85% sens/spec");

  sim::CohortConfig cc = bench::sweep_cohort();
  cc.subject_count = 48;
  std::printf("generating cohort (%zu subjects)...\n", cc.subject_count);
  const auto recordings = sim::CohortGenerator(cc).generate();

  core::EarSonar pipeline;
  ml::Matrix features;
  std::vector<std::size_t> states, groups;
  for (const auto& rec : recordings) {
    core::EchoAnalysis analysis = pipeline.analyze(rec.waveform);
    if (!analysis.usable()) continue;
    features.push_back(std::move(analysis.features));
    states.push_back(sim::state_index(rec.state));
    groups.push_back(rec.subject_id);
  }
  const std::vector<bool> truth = core::fluid_labels(states);

  // Leave-one-participant-out probability scores.
  std::vector<double> scores(features.size(), 0.0);
  for (const auto& split : ml::leave_one_group_out(groups)) {
    ml::Matrix tx;
    std::vector<bool> ty;
    for (std::size_t i : split.train) {
      tx.push_back(features[i]);
      ty.push_back(truth[i]);
    }
    core::BinaryScreener screener;
    screener.fit(tx, ty);
    for (std::size_t i : split.test)
      scores[i] = screener.fluid_probability(features[i]);
  }

  const double area = ml::auc(scores, truth);
  const double threshold = ml::best_youden_threshold(scores, truth);
  std::printf("\nLOOCV AUC: %.3f, best Youden threshold: %.2f\n", area, threshold);

  // Sensitivity/specificity at the chosen threshold.
  std::size_t tp = 0, fn = 0, tn = 0, fp = 0;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const bool flagged = scores[i] >= threshold;
    if (truth[i] && flagged) ++tp;
    else if (truth[i]) ++fn;
    else if (flagged) ++fp;
    else ++tn;
  }
  std::printf("at that threshold: sensitivity %.1f%%, specificity %.1f%% "
              "(prior work: ~85%%/85%%)\n",
              100.0 * tp / (tp + fn), 100.0 * tn / (tn + fp));

  std::printf("\nROC curve (selected points):\n");
  AsciiTable roc_table({"threshold", "TPR", "FPR"});
  const auto curve = ml::roc_curve(scores, truth);
  for (std::size_t i = 0; i < curve.size(); i += std::max<std::size_t>(1, curve.size() / 10))
    roc_table.add_row(AsciiTable::format(curve[i].threshold, 3),
                      {curve[i].true_positive_rate, curve[i].false_positive_rate}, 3);
  bench::print_table(roc_table);
  std::printf("\nexpected shape: near-perfect separation of fluid vs no-fluid "
              "(the binary task is much easier than 4-state grading; this is "
              "why home screening is viable).\n");
  return 0;
}
