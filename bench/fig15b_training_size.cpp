// Fig. 15(b): accuracy as a function of training-set size.
#include "bench_util.hpp"

using namespace earsonar;

int main() {
  bench::print_header("Fig. 15(b) — accuracy vs training-set size",
                      "paper: 91.6% already at 50% of the data, then saturating");

  core::EarSonar pipeline;
  sim::CohortConfig cc = bench::sweep_cohort();
  cc.subject_count = 48;
  std::printf("generating cohort (%zu subjects)...\n", cc.subject_count);
  const auto recs = sim::CohortGenerator(cc).generate();
  const eval::EvalDataset ds = eval::build_earsonar_dataset(recs, pipeline);

  const std::vector<double> fractions{0.25, 0.5, 0.75, 1.0};
  const auto accuracies =
      eval::training_size_sweep(ds, fractions, {}, /*holdout=*/0.3, /*seed=*/99);

  AsciiTable table({"training data used", "accuracy"});
  for (std::size_t i = 0; i < fractions.size(); ++i)
    table.add_row(bench::pct(fractions[i], 0), {100.0 * accuracies[i]}, 1);
  bench::print_table(table);
  std::printf("\nexpected shape: rising then saturating — most of the accuracy "
              "is reached by 50%% of the training data.\n");
  return 0;
}
