// Fig. 14(c-d): FAR/FRR under body movements — sitting, slight head
// movement, walking, nodding.
#include "bench_util.hpp"

using namespace earsonar;

int main() {
  bench::print_header(
      "Fig. 14(c-d) — FAR/FRR vs body movement",
      "paper: sit/head barely matter; walking and nodding degrade detection");

  core::EarSonar pipeline;
  const sim::CohortConfig train_cfg = bench::controlled(bench::sweep_cohort());
  std::printf("training reference model...\n");
  const auto train_recs = sim::CohortGenerator(train_cfg).generate();
  const eval::EvalDataset train = eval::build_earsonar_dataset(train_recs, pipeline);

  AsciiTable far_table({"movement", "Clear FAR", "Serous FAR", "Mucoid FAR",
                        "Purulent FAR", "mean FAR"});
  AsciiTable frr_table({"movement", "Clear FRR", "Serous FRR", "Mucoid FRR",
                        "Purulent FRR", "mean FRR"});
  AsciiTable acc_table({"movement", "accuracy"});
  for (sim::BodyMovement movement :
       {sim::BodyMovement::kSit, sim::BodyMovement::kHeadMovement,
        sim::BodyMovement::kWalking, sim::BodyMovement::kNodding}) {
    sim::CohortConfig cc = bench::controlled(bench::sweep_cohort(/*seed=*/779));
    cc.sessions_per_state = 1;
    cc.condition.movement = movement;
    const auto test_recs = sim::CohortGenerator(cc).generate();
    const eval::EvalDataset test = eval::build_earsonar_dataset(test_recs, pipeline);
    const ml::ConfusionMatrix cm = eval::transfer_earsonar(train, test, {});

    std::vector<double> fars, frrs;
    double far_sum = 0.0, frr_sum = 0.0;
    for (std::size_t c = 0; c < core::kMeeStateCount; ++c) {
      fars.push_back(100.0 * cm.false_acceptance_rate(c));
      frrs.push_back(100.0 * cm.false_rejection_rate(c));
      far_sum += fars.back();
      frr_sum += frrs.back();
    }
    fars.push_back(far_sum / 4.0);
    frrs.push_back(frr_sum / 4.0);
    far_table.add_row(sim::to_string(movement), fars, 1);
    frr_table.add_row(sim::to_string(movement), frrs, 1);
    acc_table.add_row(sim::to_string(movement), {100.0 * cm.accuracy()}, 1);
  }
  std::printf("\nfalse acceptance rate (%%):\n");
  bench::print_table(far_table);
  std::printf("\nfalse rejection rate (%%):\n");
  bench::print_table(frr_table);
  std::printf("\naccuracy summary:\n");
  bench::print_table(acc_table);
  std::printf("\nexpected shape: Sit ~= Head > Walking > Nodding "
              "(paper recommends testing while seated).\n");
  return 0;
}
