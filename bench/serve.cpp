// Serving-engine throughput bench: requests/sec vs worker count, ingestion
// chunk-size sweep, and overload (backpressure) behavior.
//
// The headline sweep replays *real-time* sessions: every request feeds its
// recording in 10 ms chunks with a 10 ms pause between them, exactly as a
// live earbud would deliver audio. A recording therefore occupies a worker
// for its full audio duration (~150 ms) while costing only ~3 ms of CPU, so
// adding workers multiplies how many concurrent live sessions the engine
// sustains — even on a single-core host, where the scaling comes from
// latency hiding rather than parallel compute.
//
// Prints human-readable tables by default; `--json` emits a single JSON
// object for bench/run_bench.sh to embed in the repo bench report.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/model_io.hpp"
#include "serve/engine.hpp"
#include "sim/probe.hpp"

using namespace earsonar;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

core::PipelineConfig causal_config() {
  core::PipelineConfig cfg;
  cfg.preprocess.zero_phase = false;  // streaming ingestion is causal
  return cfg;
}

// A minimal valid model so the bench exercises the full path including
// registry lookup + inference (inference is ~us; the model's weights are
// irrelevant to throughput).
core::DetectorModel bench_model() {
  core::DetectorModel model;
  const std::size_t dim = core::EarSonar(causal_config()).feature_dimension();
  model.scaler_mean.assign(dim, 0.0);
  model.scaler_std.assign(dim, 1.0);
  model.selected_features = {0, 1};
  model.centroids = {{-1.0, -1.0}, {1.0, 1.0}};
  model.cluster_to_state = {0, 2};
  return model;
}

audio::Waveform bench_recording() {
  sim::SubjectFactory factory(42);
  sim::ProbeConfig pc;
  pc.chirp_count = bench::smoke_mode() ? 6 : 30;
  sim::EarProbe probe(pc);
  Rng rng(7);
  return probe.record_state(factory.make(0), sim::EffusionState::kClear,
                            sim::reference_earphone(), {}, rng);
}

struct SweepPoint {
  std::size_t workers = 0;
  std::size_t requests = 0;
  double rps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
};

SweepPoint run_paced(const audio::Waveform& recording, std::size_t workers,
                     std::size_t requests, double chunk_period_s) {
  serve::EngineConfig cfg;
  cfg.workers = workers;
  cfg.queue_capacity = requests;  // the sweep measures service, not rejection
  cfg.session.pipeline = causal_config();
  serve::ServingEngine engine(cfg);
  engine.registry().install(bench_model(), "bench");
  engine.start();

  const auto t0 = Clock::now();
  std::vector<std::future<serve::ServeResult>> futures;
  futures.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    serve::ServeRequest request;
    request.id = "r" + std::to_string(i);
    request.recording = recording;
    request.chunk_period_s = chunk_period_s;
    serve::Submission sub = engine.submit(std::move(request));
    if (sub.accepted) futures.push_back(std::move(sub.result));
  }
  for (auto& future : futures) future.get();
  const double elapsed = seconds_since(t0);
  SweepPoint point;
  point.workers = workers;
  point.requests = futures.size();
  point.rps = static_cast<double>(futures.size()) / elapsed;
  point.p50_ms = engine.metrics().latency.total.percentile_ms(0.50);
  point.p95_ms = engine.metrics().latency.total.percentile_ms(0.95);
  engine.stop();
  return point;
}

struct ChunkPoint {
  std::size_t chunk = 0;
  double rps = 0.0;
  double mean_ms = 0.0;
};

ChunkPoint run_chunk(const audio::Waveform& recording, std::size_t chunk,
                     std::size_t requests) {
  serve::EngineConfig cfg;
  cfg.workers = 1;  // isolate per-request ingestion cost
  cfg.queue_capacity = requests;
  cfg.chunk_samples = chunk;
  cfg.session.pipeline = causal_config();
  serve::ServingEngine engine(cfg);
  engine.registry().install(bench_model(), "bench");
  engine.start();

  const auto t0 = Clock::now();
  std::vector<std::future<serve::ServeResult>> futures;
  for (std::size_t i = 0; i < requests; ++i) {
    serve::ServeRequest req;
    req.id = "c" + std::to_string(i);
    req.recording = recording;
    serve::Submission sub = engine.submit(std::move(req));
    if (sub.accepted) futures.push_back(std::move(sub.result));
  }
  for (auto& future : futures) future.get();
  const double elapsed = seconds_since(t0);
  ChunkPoint point;
  point.chunk = chunk;
  point.rps = static_cast<double>(futures.size()) / elapsed;
  point.mean_ms = engine.metrics().latency.total.mean_ms();
  engine.stop();
  return point;
}

struct OverloadResult {
  std::size_t submitted = 0;
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  std::size_t completed = 0;
};

OverloadResult run_overload(const audio::Waveform& recording) {
  serve::EngineConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 4;
  cfg.session.pipeline = causal_config();
  serve::ServingEngine engine(cfg);
  engine.registry().install(bench_model(), "bench");
  engine.start();

  OverloadResult result;
  result.submitted = 32;
  std::vector<std::future<serve::ServeResult>> futures;
  for (std::size_t i = 0; i < result.submitted; ++i) {
    serve::ServeRequest request;
    request.id = "o" + std::to_string(i);
    request.recording = recording;
    request.chunk_samples = recording.size() / 4 + 1;
    request.chunk_period_s = 0.005;  // slow enough that the burst outruns it
    serve::Submission sub = engine.submit(std::move(request));
    if (sub.accepted) futures.push_back(std::move(sub.result));
  }
  for (auto& future : futures) future.get();
  engine.stop();
  result.accepted = engine.metrics().accepted.load();
  result.rejected = engine.metrics().rejected_queue_full.load();
  result.completed = engine.metrics().completed.load();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = argc > 1 && std::strcmp(argv[1], "--json") == 0;

  const audio::Waveform recording = bench_recording();
  // 10 ms chunks arriving in real time; a session occupies its worker for
  // the recording's audio duration.
  const double chunk_period_s = 0.01;
  const std::size_t per_worker = bench::smoke_mode() ? 2 : 4;

  std::vector<SweepPoint> scaling;
  for (std::size_t workers : {1u, 2u, 4u, 8u})
    scaling.push_back(
        run_paced(recording, workers, per_worker * workers, chunk_period_s));
  const double speedup = scaling.back().rps / scaling.front().rps;

  const std::size_t chunk_requests = bench::smoke_mode() ? 4 : 16;
  std::vector<ChunkPoint> chunks;
  for (std::size_t chunk : {std::size_t{64}, std::size_t{480}, std::size_t{4800},
                            recording.size()})
    chunks.push_back(run_chunk(recording, chunk, chunk_requests));

  const OverloadResult overload = run_overload(recording);

  if (json) {
    std::ostringstream out;
    out << "{\n  \"recording_seconds\": "
        << recording.duration_seconds() << ",\n  \"thread_scaling\": [";
    for (std::size_t i = 0; i < scaling.size(); ++i) {
      const SweepPoint& p = scaling[i];
      out << (i ? ", " : "") << "{\"workers\": " << p.workers
          << ", \"requests\": " << p.requests << ", \"rps\": " << p.rps
          << ", \"p50_ms\": " << p.p50_ms << ", \"p95_ms\": " << p.p95_ms << "}";
    }
    out << "],\n  \"scaling_1_to_8\": " << speedup << ",\n  \"chunk_sweep\": [";
    for (std::size_t i = 0; i < chunks.size(); ++i) {
      const ChunkPoint& p = chunks[i];
      out << (i ? ", " : "") << "{\"chunk_samples\": " << p.chunk
          << ", \"rps\": " << p.rps << ", \"mean_ms\": " << p.mean_ms << "}";
    }
    out << "],\n  \"overload\": {\"submitted\": " << overload.submitted
        << ", \"accepted\": " << overload.accepted
        << ", \"rejected\": " << overload.rejected
        << ", \"completed\": " << overload.completed << "}\n}\n";
    std::fputs(out.str().c_str(), stdout);
    return 0;
  }

  bench::print_header("Serving engine throughput",
                      "deployment extension (no paper figure)");
  std::printf("recording: %.0f ms of audio, %zu samples\n\n",
              recording.duration_seconds() * 1000.0, recording.size());

  std::printf("real-time sessions (10 ms chunks at live pace) vs workers:\n");
  AsciiTable table({"workers", "requests", "req/s", "p50 ms", "p95 ms"});
  for (const SweepPoint& p : scaling)
    table.add_row({std::to_string(p.workers), std::to_string(p.requests),
                   AsciiTable::format(p.rps, 1), AsciiTable::format(p.p50_ms, 1),
                   AsciiTable::format(p.p95_ms, 1)});
  bench::print_table(table);
  std::printf("1 -> 8 worker scaling: %.1fx\n\n", speedup);

  std::printf("ingestion chunk-size sweep (1 worker, backlogged uploads):\n");
  AsciiTable chunk_table({"chunk", "req/s", "mean ms"});
  for (const ChunkPoint& p : chunks)
    chunk_table.add_row({std::to_string(p.chunk), AsciiTable::format(p.rps, 1),
                         AsciiTable::format(p.mean_ms, 2)});
  bench::print_table(chunk_table);

  std::printf("\noverload burst (32 paced requests, queue capacity 4):\n");
  std::printf("  accepted %zu, rejected %zu (explicit backpressure), "
              "completed %zu — accepted work is never dropped\n",
              overload.accepted, overload.rejected, overload.completed);
  return 0;
}
