// Ablation study of the design choices DESIGN.md calls out:
//   1. Laplacian-score feature selection (top 25 of 105) vs all features
//   2. Outlier removal before clustering
//   3. Class-mean k-means seeding (paper's "given cluster centers") vs k-means++
//   4. Window anchoring: event-start gate vs echo-peak vs direct gate
//   5. Unsupervised k-means head vs supervised kNN on the same features
#include "bench_util.hpp"

#include "ml/crossval.hpp"
#include "ml/knn.hpp"

using namespace earsonar;

namespace {

double knn_loocv(const eval::EvalDataset& ds, std::size_t k) {
  ml::ConfusionMatrix cm(core::kMeeStateCount);
  for (const auto& split : ml::leave_one_group_out(ds.groups)) {
    ml::Matrix tx;
    std::vector<std::size_t> ty;
    for (std::size_t i : split.train) {
      tx.push_back(ds.features[i]);
      ty.push_back(ds.labels[i]);
    }
    ml::StandardScaler scaler;
    scaler.fit(tx);
    ml::KnnClassifier knn(k);
    knn.fit(scaler.transform(tx), ty);
    for (std::size_t i : split.test)
      cm.add(ds.labels[i], knn.predict(scaler.transform(ds.features[i])));
  }
  return cm.accuracy();
}

}  // namespace

int main() {
  bench::print_header("Ablation — contribution of each design choice",
                      "design choices from DESIGN.md section 6");

  sim::CohortConfig cc = bench::sweep_cohort();
  cc.subject_count = 32;
  std::printf("generating cohort (%zu subjects)...\n", cc.subject_count);
  const auto recs = sim::CohortGenerator(cc).generate();

  AsciiTable table({"variant", "LOOCV accuracy", "delta vs full"});

  // Full pipeline (reference).
  core::EarSonar full_pipeline;
  const eval::EvalDataset full_ds = eval::build_earsonar_dataset(recs, full_pipeline);
  const double full = eval::loocv_earsonar(full_ds, {}).accuracy();
  table.add_row("full EarSonar pipeline", {100.0 * full, 0.0}, 1);

  const auto add_variant = [&](const std::string& name, double acc) {
    table.add_row(name, {100.0 * acc, 100.0 * (acc - full)}, 1);
  };

  // 1. No feature selection: all 105 features into the detector.
  {
    core::DetectorConfig dc;
    dc.selected_features = core::FeatureConfig{}.dimension();
    add_variant("no Laplacian selection (105 features)",
                eval::loocv_earsonar(full_ds, dc).accuracy());
  }

  // 2. No outlier removal.
  {
    core::DetectorConfig dc;
    dc.remove_outliers = false;
    add_variant("no outlier removal", eval::loocv_earsonar(full_ds, dc).accuracy());
  }

  // 3. k-means++ seeding instead of the paper's given class-mean centers.
  {
    core::DetectorConfig dc;
    dc.seed_with_class_means = false;
    add_variant("k-means++ seeding (no given centers)",
                eval::loocv_earsonar(full_ds, dc).accuracy());
  }

  // 4a. Echo-peak anchored analysis window (paper's literal wording).
  {
    core::PipelineConfig pc;
    pc.features.spectrum.anchor = core::WindowAnchor::kEchoPeak;
    core::EarSonar variant(pc);
    const eval::EvalDataset ds = eval::build_earsonar_dataset(recs, variant);
    add_variant("echo-peak window anchor", eval::loocv_earsonar(ds, {}).accuracy());
  }

  // 4b. Direct-gate (late ringing only) anchor.
  {
    core::PipelineConfig pc;
    pc.features.spectrum.anchor = core::WindowAnchor::kDirectGate;
    core::EarSonar variant(pc);
    const eval::EvalDataset ds = eval::build_earsonar_dataset(recs, variant);
    add_variant("direct-gate window anchor", eval::loocv_earsonar(ds, {}).accuracy());
  }

  // 5. Supervised kNN on the same 105 features.
  add_variant("kNN (k=5) instead of k-means head", knn_loocv(full_ds, 5));

  bench::print_table(table);
  std::printf("\nreading: the event-start window with reference normalization, "
              "class-mean seeding, and Laplacian selection each contribute; "
              "the unsupervised k-means head is competitive with supervised "
              "kNN (the paper's design premise).\n");
  return 0;
}
