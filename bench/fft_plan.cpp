// Microbenchmarks for the planned-FFT engine at the sizes the pipeline
// actually runs: the 512-point echo-window PSD, the Welch segments, the
// cross-correlation convolutions, and the Bluestein fallback for
// non-power-of-two lengths.
#include <benchmark/benchmark.h>

#include <cmath>
#include <complex>
#include <vector>

#include "roofline.hpp"
#include "dsp/convolution.hpp"
#include "dsp/fft.hpp"
#include "dsp/fft_plan.hpp"
#include "dsp/simd.hpp"

using namespace earsonar;

namespace {

std::vector<double> test_signal(std::size_t n) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = std::sin(0.37 * static_cast<double>(i)) +
           0.25 * std::cos(1.91 * static_cast<double>(i));
  return x;
}

std::vector<dsp::Complex> test_complex(std::size_t n) {
  const std::vector<double> x = test_signal(2 * n);
  std::vector<dsp::Complex> z(n);
  for (std::size_t i = 0; i < n; ++i) z[i] = {x[2 * i], x[2 * i + 1]};
  return z;
}

void BM_PlanComplexForward(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto plan = dsp::FftPlan::get(n, dsp::FftPlan::Kind::kComplex);
  dsp::FftScratch scratch;
  const std::vector<dsp::Complex> in = test_complex(n);
  std::vector<dsp::Complex> out(n);
  for (auto _ : state) {
    plan->forward(in, out, scratch);
    benchmark::DoNotOptimize(out.data());
  }
  // Bluestein sizes run three FFTs of the padded power-of-two length; the
  // roofline model here covers only the radix-2 case and is omitted otherwise.
  if ((n & (n - 1)) == 0)
    bench::set_roofline(state, bench::fft_flops(n), bench::fft_bytes(n, 16));
}
// 256 is the half-length transform behind the 512-point echo window; 8192
// covers the recording-scale correlations. 173 and 600 exercise Bluestein
// (prime and even-composite non-power-of-two).
BENCHMARK(BM_PlanComplexForward)->Arg(256)->Arg(1024)->Arg(8192)->Arg(173)->Arg(600);

void BM_PlanForwardReal(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto plan = dsp::FftPlan::get(n, dsp::FftPlan::Kind::kReal);
  dsp::FftScratch scratch;
  const std::vector<double> in = test_signal(n);
  std::vector<dsp::Complex> out(plan->real_bins());
  for (auto _ : state) {
    plan->forward_real(in, out, scratch);
    benchmark::DoNotOptimize(out.data());
  }
  // Half-length complex transform plus the O(n) untangling pass.
  bench::set_roofline(state,
                      bench::fft_flops(n / 2) + 8.0 * static_cast<double>(n),
                      bench::fft_bytes(n / 2, 16) + 32.0 * static_cast<double>(n));
}
BENCHMARK(BM_PlanForwardReal)->Arg(512)->Arg(4096);

void BM_PlanPowerSpectrum(benchmark::State& state) {
  // The echo-window hot path: one of these per chirp, hundreds per recording.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto plan = dsp::FftPlan::get(n, dsp::FftPlan::Kind::kReal);
  dsp::FftScratch scratch;
  const std::vector<double> in = test_signal(n);
  std::vector<double> psd(plan->real_bins());
  for (auto _ : state) {
    plan->power_spectrum(in, psd, 1.0 / static_cast<double>(n), scratch);
    benchmark::DoNotOptimize(psd.data());
  }
  bench::set_roofline(state,
                      bench::fft_flops(n / 2) + 10.0 * static_cast<double>(n),
                      bench::fft_bytes(n / 2, 16) + 48.0 * static_cast<double>(n));
}
BENCHMARK(BM_PlanPowerSpectrum)->Arg(512)->Arg(2048);

void BM_PlanRoundTripReal(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto plan = dsp::FftPlan::get(n, dsp::FftPlan::Kind::kReal);
  dsp::FftScratch scratch;
  const std::vector<double> in = test_signal(n);
  std::vector<dsp::Complex> bins(plan->real_bins());
  std::vector<double> back(n);
  for (auto _ : state) {
    plan->forward_real(in, bins, scratch);
    plan->inverse_real(bins, back, scratch);
    benchmark::DoNotOptimize(back.data());
  }
}
BENCHMARK(BM_PlanRoundTripReal)->Arg(512)->Arg(4096);

void BM_LibraryRfft(benchmark::State& state) {
  // Public fft.hpp entry point, including its output allocation.
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<double> in = test_signal(n);
  for (auto _ : state) benchmark::DoNotOptimize(dsp::rfft(in));
}
BENCHMARK(BM_LibraryRfft)->Arg(512)->Arg(4096);

void BM_CrossCorrelate(benchmark::State& state) {
  // Chirp-template correlation at recording scale (FFT path).
  const std::vector<double> signal = test_signal(static_cast<std::size_t>(state.range(0)));
  const std::vector<double> pulse = test_signal(240);
  for (auto _ : state) benchmark::DoNotOptimize(dsp::cross_correlate(signal, pulse));
}
BENCHMARK(BM_CrossCorrelate)->Arg(4800)->Arg(48000)->Unit(benchmark::kMillisecond);

void BM_Convolve(benchmark::State& state) {
  const std::vector<double> signal = test_signal(static_cast<std::size_t>(state.range(0)));
  const std::vector<double> kernel = test_signal(101);
  for (auto _ : state) benchmark::DoNotOptimize(dsp::convolve(signal, kernel));
}
BENCHMARK(BM_Convolve)->Arg(4800)->Arg(48000)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Report the effective SIMD dispatch in the benchmark context, so a JSON
  // report records which kernel set produced the numbers.
  benchmark::AddCustomContext("earsonar_simd_arch", dsp::simd::native_arch());
  benchmark::AddCustomContext("earsonar_simd_level", dsp::simd::active().name);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
