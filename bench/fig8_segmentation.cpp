// Fig. 8: adaptive-energy event detection (a) and eardrum-echo segmentation
// by parity decomposition (b).
#include "bench_util.hpp"

using namespace earsonar;

int main() {
  bench::print_header("Fig. 8 — event detection and echo segmentation",
                      "event start/end markers; segmented eardrum echo");

  sim::SubjectFactory factory(42);
  const sim::Subject subject = factory.make(2);
  sim::ProbeConfig pc;
  pc.chirp_count = 8;
  sim::EarProbe probe(pc);
  Rng rng(3);
  const audio::Waveform rec = probe.record_state(
      subject, sim::EffusionState::kSerous, sim::reference_earphone(), {}, rng);

  core::EarSonar pipeline;
  const core::EchoAnalysis analysis = pipeline.analyze(rec);

  std::printf("true canal length: %.1f mm (true echo offset %.1f samples)\n\n",
              subject.canal.length_m * 1000.0,
              2.0 * subject.canal.length_m / 343.0 * 48000.0);

  AsciiTable events({"event #", "start", "end", "length", "echo peak",
                     "echo distance (mm)", "parity ratio", "fallback"});
  for (std::size_t i = 0; i < analysis.events.size(); ++i) {
    const core::Event& e = analysis.events[i];
    std::vector<std::string> row{
        std::to_string(i), std::to_string(e.start), std::to_string(e.end),
        std::to_string(e.length())};
    if (i < analysis.echoes.size()) {
      const core::EchoSegment& echo = analysis.echoes[i];
      row.push_back(std::to_string(echo.peak_index));
      row.push_back(AsciiTable::format(echo.distance_m * 1000.0, 1));
      row.push_back(AsciiTable::format(echo.parity_ratio, 2));
      row.push_back(echo.from_fallback ? "yes" : "no");
    }
    events.add_row(row);
  }
  bench::print_table(events);

  std::printf("\nexpected shape: one event per transmitted chirp (8 chirps sent), "
              "each event yielding one eardrum echo at a 2-3.5 cm plausible "
              "distance after per-recording consensus re-anchoring.\n");
  std::printf("events found: %zu, echoes segmented: %zu\n", analysis.events.size(),
              analysis.echoes.size());
  return 0;
}
