// §VI-B headline claim: EarSonar is ~8 percentage points more accurate than
// the previous acoustic MEE method (Chan et al. 2019, smartphone + funnel).
#include "bench_util.hpp"

using namespace earsonar;

int main() {
  bench::print_header("Baseline comparison — EarSonar vs Chan et al. (2019)",
                      "paper: 92.8% vs <= 85% (+8 points)");

  sim::CohortConfig cc = bench::paper_cohort();
  cc.subject_count = 64;  // comparison cohort; fig13 runs the full 112

  std::printf("EarSonar: recording through the in-ear prototype...\n");
  const auto ours_recs = sim::CohortGenerator(cc).generate();
  core::EarSonar pipeline;
  const eval::EvalDataset ours_ds = eval::build_earsonar_dataset(ours_recs, pipeline);
  const ml::ConfusionMatrix ours = eval::loocv_earsonar(ours_ds, {});

  std::printf("Chan et al.: recording through the smartphone+funnel rig...\n");
  sim::CohortConfig chan_cc = cc;
  chan_cc.earphone = sim::smartphone_funnel();
  const auto chan_recs = sim::CohortGenerator(chan_cc).generate();
  baseline::ChanDetector chan;
  const eval::EvalDataset chan_ds = eval::build_chan_dataset(chan_recs, chan);
  const ml::ConfusionMatrix theirs = eval::loocv_chan(chan_ds, {});

  AsciiTable table({"system", "accuracy", "macro precision", "macro recall",
                    "macro F1"});
  table.add_row("EarSonar (ours)",
                {100.0 * ours.accuracy(), 100.0 * ours.macro_precision(),
                 100.0 * ours.macro_recall(), 100.0 * ours.macro_f1()},
                1);
  table.add_row("Chan et al. 2019",
                {100.0 * theirs.accuracy(), 100.0 * theirs.macro_precision(),
                 100.0 * theirs.macro_recall(), 100.0 * theirs.macro_f1()},
                1);
  bench::print_table(table);

  std::printf("\nadvantage: %+.1f points (paper: ~+8 points, '8%% higher than "
              "the previous method')\n",
              100.0 * (ours.accuracy() - theirs.accuracy()));
  return 0;
}
