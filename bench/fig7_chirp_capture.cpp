// Fig. 7: the captured chirp train (a) and the overlap between the direct
// signal and the eardrum reflection (b).
#include "bench_util.hpp"

#include "audio/chirp.hpp"

using namespace earsonar;

int main() {
  bench::print_header("Fig. 7 — the captured chirp and the direct/echo overlap",
                      "received chirp train; eardrum echo overlapping the chirp tail");

  sim::SubjectFactory factory(42);
  const sim::Subject subject = factory.make(0);
  sim::ProbeConfig pc;
  pc.chirp_count = 3;
  sim::EarProbe probe(pc);
  Rng rng(1);
  const audio::Waveform rec = probe.record_state(
      subject, sim::EffusionState::kClear, sim::reference_earphone(), {}, rng);

  // (a) Chirp-train timing.
  const audio::FmcwConfig chirp;
  AsciiTable timing({"chirp #", "start (ms)", "train rms in slot", "gap rms"});
  for (std::size_t k = 0; k < 3; ++k) {
    const std::size_t start = audio::chirp_start_sample(chirp, k);
    timing.add_row(std::to_string(k),
                   {static_cast<double>(start) / 48.0,
                    rec.slice(start, 60).rms(), rec.slice(start + 100, 100).rms()},
                   4);
  }
  bench::print_table(timing);

  // (b) Overlap: envelope through the first chirp + echo region.
  const double echo_delay =
      2.0 * subject.canal.length_m / 343.0 * 48000.0;  // samples
  std::printf("\ncanal length %.1f mm -> eardrum echo delay %.1f samples; the "
              "chirp itself is %zu samples long, so the echo overlaps the chirp "
              "tail exactly as Fig. 7(b) shows.\n\n",
              subject.canal.length_m * 1000.0, echo_delay, chirp.chirp_samples());

  AsciiTable envelope({"sample", "corresponds to", "|x| (4-sample mean)"});
  const auto env_at = [&](std::size_t i) {
    double acc = 0.0;
    for (std::size_t j = i; j < i + 4 && j < rec.size(); ++j)
      acc += std::abs(rec.samples()[j]);
    return acc / 4.0;
  };
  for (std::size_t i = 0; i <= 72; i += 4) {
    const bool in_chirp = i < 24;
    const bool in_echo =
        i + 4 > static_cast<std::size_t>(echo_delay) && i < echo_delay + 24;
    const bool in_tail = !in_echo && i >= 24 && i < echo_delay + 56;
    std::string what = "quiet";
    if (in_chirp && in_echo) what = "direct chirp + eardrum echo";
    else if (in_chirp) what = "direct chirp";
    else if (in_echo) what = "eardrum echo";
    else if (in_tail) what = "echo ringing tail";
    envelope.add_row({std::to_string(i), what, AsciiTable::format(env_at(i), 4)});
  }
  bench::print_table(envelope);
  return 0;
}
